#include "obs/metrics.h"

#include <algorithm>

namespace tpset::obs {

namespace internal {
std::atomic<bool> g_recording_enabled{true};
}  // namespace internal

const MetricSnapshot* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSnapshot& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: engine singletons (thread pools, executors in static
  // storage) may record during their own static destruction.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

template <typename M>
M& MetricsRegistry::GetOrCreate(
    std::map<std::string, std::pair<std::unique_ptr<M>, std::string>>* map,
    const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, fresh] = map->try_emplace(name);
  if (fresh) {
    it->second.first = std::make_unique<M>();
    it->second.second = help;
  }
  return *it->second.first;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetOrCreate(&counters_, name, help);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetOrCreate(&gauges_, name, help);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return GetOrCreate(&histograms_, name, help);
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, metric] : counters_) {
    MetricSnapshot m;
    m.name = name;
    m.help = metric.second;
    m.kind = MetricSnapshot::Kind::kCounter;
    m.counter = metric.first->Value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, metric] : gauges_) {
    MetricSnapshot m;
    m.name = name;
    m.help = metric.second;
    m.kind = MetricSnapshot::Kind::kGauge;
    m.gauge = metric.first->Value();
    snap.metrics.push_back(std::move(m));
  }
  for (const auto& [name, metric] : histograms_) {
    MetricSnapshot m;
    m.name = name;
    m.help = metric.second;
    m.kind = MetricSnapshot::Kind::kHistogram;
    metric.first->Snapshot(&m.buckets, &m.hist_count, &m.hist_sum);
    snap.metrics.push_back(std::move(m));
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return snap;
}

void MetricsRegistry::set_enabled(bool enabled) {
  internal::g_recording_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsRegistry::enabled() {
  return internal::g_recording_enabled.load(std::memory_order_relaxed);
}

std::uint64_t ElapsedUsec(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace tpset::obs
