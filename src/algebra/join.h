// TP equi-join — a further step toward the full relational algebra named as
// future work in §VIII.
//
// r ⋈Tp s pairs tuples whose selected attributes agree and whose intervals
// overlap; an output tuple carries the concatenated fact (all attributes of
// r followed by all attributes of s), the overlap interval, and the lineage
// and(λr, λs). The operation is snapshot reducible: at any time point t the
// result's snapshot equals the probabilistic equi-join of the input
// snapshots. For duplicate-free inputs the output is duplicate-free by
// construction (overlaps of distinct pairs with equal combined facts are
// disjoint), and change preservation holds because each output tuple's
// lineage names its unique generating pair.
//
// Implementation: hash s by its key attributes, then per matching key group
// a sort-merge sweep over the intervals — O(n log n + |output|), not the
// quadratic pair enumeration of the TPDB/NORM baselines.
#ifndef TPSET_ALGEBRA_JOIN_H_
#define TPSET_ALGEBRA_JOIN_H_

#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// r ⋈Tp s with equality on r_keys vs s_keys (attribute indices, same
/// length, pairwise equal types). Empty key lists give the TP
/// Cartesian-style temporal product.
Result<TpRelation> TpEquiJoin(const TpRelation& r, const TpRelation& s,
                              const std::vector<std::size_t>& r_keys,
                              const std::vector<std::size_t>& s_keys);

/// Natural-join convenience for single-attribute schemas: join on the fact.
Result<TpRelation> TpJoinOnFact(const TpRelation& r, const TpRelation& s);

}  // namespace tpset

#endif  // TPSET_ALGEBRA_JOIN_H_
