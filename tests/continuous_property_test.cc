// Property tests of the incremental continuous-query subsystem: for random
// append schedules, the accumulated state of every continuous query must
// equal a from-scratch Execute of the same query over the appended-to
// relations — same tuples, same intervals, probability-equal lineage
// (RelationsEquivalent compares lineages by canonical key). Additionally,
// the (inserted, retracted) delta stream must be coherent: a subscriber
// folding it into a multiset reconstructs the accumulated result exactly.
//
// Schedules exercised:
//  * in-order     — appends land at/after every operator frontier (resume);
//  * straddling   — one relation's timeline lags far behind the other's, so
//                   its appends reopen closed windows (resweep + retraction);
//  * hot fact     — every append extends one fact's chain (deep resume);
//  * mixed        — random relation, random fact, random gaps.
// Each schedule runs sequentially and with the parallel staged apply.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "incremental/continuous_query.h"
#include "query/executor.h"
#include "relation/relation.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

struct ScheduleSpec {
  std::size_t num_facts = 6;
  std::size_t epochs = 40;
  std::size_t rows_per_epoch = 3;
  // Per-relation probability weights of being chosen for an epoch.
  // max gap between consecutive intervals of one fact chain (0 = contiguous
  // chains, maximal window interaction).
  TimePoint max_gap = 3;
  TimePoint max_len = 4;
  bool hot_fact = false;       // all appends go to fact 0
  std::size_t lag_relation = ~std::size_t{0};  // this relation's clock lags
};

// Accumulates the delta stream of one query and checks coherence.
struct Folded {
  std::map<std::tuple<FactId, TimePoint, TimePoint, LineageId>, int> tuples;
  std::size_t epochs_seen = 0;
  EpochId last_epoch = 0;

  void Apply(const EpochDelta& d) {
    ++epochs_seen;
    EXPECT_GT(d.epoch, last_epoch) << "epochs must arrive in order";
    last_epoch = d.epoch;
    for (const TpTuple& t : d.delta.retracted) {
      auto key = std::make_tuple(t.fact, t.t.start, t.t.end, t.lineage);
      auto it = tuples.find(key);
      ASSERT_TRUE(it != tuples.end()) << "retraction of a tuple never inserted";
      if (--it->second == 0) tuples.erase(it);
    }
    for (const TpTuple& t : d.delta.inserted) {
      int& count = tuples[std::make_tuple(t.fact, t.t.start, t.t.end, t.lineage)];
      ++count;
      EXPECT_EQ(count, 1) << "accumulated result must stay duplicate-free";
    }
  }

  void ExpectMatches(const TpRelation& current) {
    std::map<std::tuple<FactId, TimePoint, TimePoint, LineageId>, int> got;
    for (const TpTuple& t : current.tuples()) {
      ++got[std::make_tuple(t.fact, t.t.start, t.t.end, t.lineage)];
    }
    EXPECT_EQ(got, tuples) << "folded delta stream != accumulated result";
  }
};

void RunSchedule(const ScheduleSpec& spec, std::size_t num_threads,
                 std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threads=" + std::to_string(num_threads));
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  Rng rng(seed);

  const std::vector<std::string> rel_names = {"r", "s", "u"};
  // Independent time cursor per (relation, fact); a lagging relation's
  // cursor advances while others run ahead, making its appends straddle
  // operator frontiers.
  std::vector<std::vector<TimePoint>> cursor(
      rel_names.size(), std::vector<TimePoint>(spec.num_facts, 0));

  for (const std::string& name : rel_names) {
    TpRelation rel(ctx, Schema::SingleInt("fact"), name);
    ASSERT_TRUE(exec.Register(rel).ok());
  }

  ContinuousOptions options;
  options.num_threads = num_threads;
  const std::vector<std::pair<std::string, std::string>> queries = {
      {"q_diff", "r - s"},
      {"q_mix", "(r | s) & u"},
      {"q_deep", "(r - s) | (s & u)"},
  };
  std::vector<ContinuousQuery*> cqs;
  std::vector<Folded> folded(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Result<ContinuousQuery*> cq =
        exec.RegisterContinuous(queries[i].first, queries[i].second, options);
    ASSERT_TRUE(cq.ok()) << cq.status().ToString();
    cqs.push_back(*cq);
    Folded* f = &folded[i];
    (*cq)->Subscribe([f](const EpochDelta& d) { f->Apply(d); });
  }

  for (std::size_t e = 0; e < spec.epochs; ++e) {
    // Pick the relation: the lagging relation is chosen rarely, so its
    // timeline falls behind and its appends straddle.
    std::size_t ri = static_cast<std::size_t>(rng.Below(rel_names.size()));
    if (ri == spec.lag_relation && e % 5 != 4) {
      ri = (ri + 1) % rel_names.size();
    }
    DeltaBatch batch;
    for (std::size_t k = 0; k < spec.rows_per_epoch; ++k) {
      const std::size_t fact =
          spec.hot_fact ? 0
                        : static_cast<std::size_t>(rng.Below(spec.num_facts));
      TimePoint& cur = cursor[ri][fact];
      cur += rng.Uniform(0, spec.max_gap);
      const TimePoint len = rng.Uniform(1, spec.max_len);
      batch.Add({Value(static_cast<std::int64_t>(fact))},
                Interval(cur, cur + len),
                0.1 + 0.8 * rng.NextDouble());
      cur += len;
    }
    Result<EpochId> epoch = exec.Append(rel_names[ri], batch);
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

    // Interleave a mid-schedule check so divergence is caught near its
    // cause, not only at the end.
    if (e % 13 == 12) {
      for (std::size_t i = 0; i < queries.size(); ++i) {
        Result<TpRelation> oneshot = exec.Execute(queries[i].second);
        ASSERT_TRUE(oneshot.ok());
        EXPECT_TRUE(RelationsEquivalent(cqs[i]->Current(), *oneshot))
            << queries[i].second << " diverged at epoch " << e;
      }
    }
  }

  for (std::size_t i = 0; i < queries.size(); ++i) {
    TpRelation current = cqs[i]->Current();
    EXPECT_TRUE(current.known_sorted());
    EXPECT_TRUE(current.IsSortedFactTime());
    folded[i].ExpectMatches(current);
    Result<TpRelation> oneshot = exec.Execute(queries[i].second);
    ASSERT_TRUE(oneshot.ok());
    EXPECT_TRUE(RelationsEquivalent(current, *oneshot)) << queries[i].second;
  }
}

TEST(ContinuousPropertyTest, MixedScheduleSequential) {
  for (std::uint64_t seed : testing::PropertySeeds({1, 2, 3, 4, 5})) {
    RunSchedule(ScheduleSpec{}, 1, seed);
  }
}

TEST(ContinuousPropertyTest, MixedScheduleParallelStaged) {
  for (std::uint64_t seed : testing::PropertySeeds({1, 2, 3})) {
    RunSchedule(ScheduleSpec{}, 4, seed);
  }
}

TEST(ContinuousPropertyTest, InOrderContiguousChains) {
  ScheduleSpec spec;
  spec.max_gap = 0;  // contiguous chains: maximal overlap between relations
  for (std::uint64_t seed : testing::PropertySeeds({11, 12, 13})) {
    RunSchedule(spec, 1, seed);
  }
}

TEST(ContinuousPropertyTest, FrontierStraddlingLaggedRelation) {
  ScheduleSpec spec;
  spec.lag_relation = 1;  // "s" lags: its appends reopen closed windows
  for (std::uint64_t seed : testing::PropertySeeds({21, 22, 23})) {
    RunSchedule(spec, 1, seed);
    RunSchedule(spec, 4, seed);
  }
}

TEST(ContinuousPropertyTest, SingleHotFactSkew) {
  ScheduleSpec spec;
  spec.hot_fact = true;
  spec.epochs = 60;
  for (std::uint64_t seed : testing::PropertySeeds({31, 32})) {
    RunSchedule(spec, 1, seed);
    RunSchedule(spec, 4, seed);
  }
}

TEST(ContinuousPropertyTest, LargeAlphabetManyFacts) {
  ScheduleSpec spec;
  spec.num_facts = 40;
  spec.epochs = 30;
  spec.rows_per_epoch = 8;
  for (std::uint64_t seed : testing::PropertySeeds({41, 42})) {
    RunSchedule(spec, 4, seed);
  }
}

}  // namespace
}  // namespace tpset
