// Pipelined (pull-based) execution of TP set operations.
//
// LawaSetOp materializes the whole answer. SetOpCursor exposes the same
// computation as an iterator: each Next() advances LAWA just far enough to
// produce one output tuple. Beyond the two sorted input copies, the cursor
// keeps only the advancer's O(1) status — the paper's constant-space claim
// (§VI-B) as an API: answers can be consumed, aggregated or spooled without
// ever holding them in memory.
#ifndef TPSET_ALGEBRA_CURSOR_H_
#define TPSET_ALGEBRA_CURSOR_H_

#include <vector>

#include "common/setop.h"
#include "lawa/advancer.h"
#include "lawa/set_ops.h"
#include "relation/relation.h"

namespace tpset {

/// Streaming evaluator for r opTp s. Preconditions as for LawaSetOp.
/// The input relations must outlive the cursor (their context is shared);
/// their tuples are copied and sorted on construction.
class SetOpCursor {
 public:
  SetOpCursor(SetOpKind op, const TpRelation& r, const TpRelation& s,
              SortMode sort_mode = SortMode::kComparison);

  /// Produces the next output tuple; false when the answer is exhausted.
  bool Next(TpTuple* out);

  /// Output tuples produced so far.
  std::size_t produced() const { return produced_; }

  /// Candidate windows examined so far (Proposition 1 bound applies).
  std::size_t windows_examined() const { return adv_.windows_produced(); }

 private:
  static std::vector<TpTuple> SortedCopy(const TpRelation& rel, SortMode mode);
  bool CanContinue() const;

  SetOpKind op_;
  LineageManager* mgr_;
  std::vector<TpTuple> r_;
  std::vector<TpTuple> s_;
  LineageAwareWindowAdvancer adv_;
  std::size_t produced_ = 0;
};

}  // namespace tpset

#endif  // TPSET_ALGEBRA_CURSOR_H_
