#include "obs/http_endpoints.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "query/executor.h"

namespace tpset::obs {

namespace {

using net::HttpRequest;
using net::HttpResponse;

void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string Quoted(const std::string& s) {
  std::string out = "\"";
  AppendEscaped(s, &out);
  out += '"';
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Parses `text` as a positive integer in [1, max]; returns fallback when
/// empty, 0 on garbage or out-of-range (callers answer 400).
long ParsePositive(const std::string& text, long fallback, long max) {
  if (text.empty()) return fallback;
  if (text.find_first_not_of("0123456789") != std::string::npos) return 0;
  errno = 0;
  const long v = std::strtol(text.c_str(), nullptr, 10);
  if (errno != 0 || v < 1 || v > max) return 0;
  return v;
}

HttpResponse Metrics(const HttpRequest& request) {
  // One shard-aggregation pass serves either rendering (the ScrapeSnapshot
  // fix: formats differ, the scrape does not).
  const ScrapeSnapshot scrape = TakeScrape();
  const std::string format = request.QueryParam("format");
  if (format == "json") return HttpResponse::Json(200, JsonLines(scrape));
  if (!format.empty() && format != "prometheus") {
    return HttpResponse::Text(
        400, "unknown format '" + format + "' (prometheus | json)\n");
  }
  HttpResponse response = HttpResponse::Text(200, PrometheusText(scrape));
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  return response;
}

HttpResponse Events(const HttpRequest& request) {
  const long n = ParsePositive(request.QueryParam("n"), 50, 100000);
  if (n == 0) {
    return HttpResponse::Text(
        400, "bad n='" + request.QueryParam("n") + "' (want 1..100000)\n");
  }
  const std::vector<Event> events =
      EventLog::Global().Snapshot(static_cast<std::size_t>(n));
  std::string body = "{\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) body += ',';
    body += "{\"seq\":" + std::to_string(e.seq) +
            ",\"ts_unix_us\":" + std::to_string(e.ts_unix_us) +
            ",\"severity\":" + Quoted(SeverityName(e.severity)) +
            ",\"subsystem\":" + Quoted(e.subsystem) +
            ",\"message\":" + Quoted(e.message) + "}";
  }
  body += "],\"emitted\":" + std::to_string(EventLog::Global().emitted()) +
          "}\n";
  return HttpResponse::Json(200, body);
}

HttpResponse Slow(const HttpRequest&) {
  const std::vector<SlowExemplar> slow = Recorder::Global().SlowQueries();
  std::string body = "{\"slow_queries\":[";
  for (std::size_t i = 0; i < slow.size(); ++i) {
    const SlowExemplar& s = slow[i];
    if (i > 0) body += ',';
    body += "{\"seq\":" + std::to_string(s.seq) +
            ",\"ts_unix_us\":" + std::to_string(s.ts_unix_us) +
            ",\"wall_ms\":" + FormatDouble(s.wall_ms) +
            ",\"threshold_ms\":" + FormatDouble(s.threshold_ms) +
            ",\"kind\":" + Quoted(s.kind) + ",\"label\":" + Quoted(s.label) +
            // Already JSON (a span tree or the literal null) — embed raw.
            ",\"profile\":" + (s.profile_json.empty() ? "null" : s.profile_json) +
            "}";
  }
  body += "],\"recorded\":" + std::to_string(Recorder::Global().slow_recorded()) +
          "}\n";
  return HttpResponse::Json(200, body);
}

HttpResponse Top(const HttpRequest& request) {
  const long window_sec =
      ParsePositive(request.QueryParam("window"), 10, 24 * 3600);
  if (window_sec == 0) {
    return HttpResponse::Text(
        400, "bad window='" + request.QueryParam("window") +
                 "' (want seconds, 1..86400)\n");
  }
  const std::chrono::milliseconds window(window_sec * 1000);
  Recorder& recorder = Recorder::Global();
  std::string body = "{\"window_sec\":" + std::to_string(window_sec) +
                     ",\"ticks\":" + std::to_string(recorder.ticks()) +
                     ",\"metrics\":[";
  bool first = true;
  for (const std::string& name : recorder.TrackedMetrics()) {
    const Result<HistoryStats> stats = recorder.History(name, window);
    if (!stats.ok()) continue;  // sampled once, then never again — skip
    if (!first) body += ',';
    first = false;
    const HistoryStats& h = *stats;
    const char* kind = h.kind == MetricSnapshot::Kind::kCounter   ? "counter"
                       : h.kind == MetricSnapshot::Kind::kGauge   ? "gauge"
                                                                  : "histogram";
    body += "{\"name\":" + Quoted(name) + ",\"kind\":\"" + kind +
            "\",\"samples\":" + std::to_string(h.samples) +
            ",\"window_sec\":" + FormatDouble(h.window_sec) +
            ",\"first\":" + std::to_string(h.first) +
            ",\"last\":" + std::to_string(h.last) +
            ",\"min\":" + std::to_string(h.min) +
            ",\"max\":" + std::to_string(h.max) +
            ",\"avg\":" + FormatDouble(h.avg) +
            ",\"rate_per_sec\":" + FormatDouble(h.rate_per_sec);
    if (h.kind == MetricSnapshot::Kind::kHistogram) {
      body += ",\"p99\":" + FormatDouble(h.p99) +
              ",\"avg_value\":" + FormatDouble(h.avg_value);
    }
    body += "}";
  }
  body += "]}\n";
  return HttpResponse::Json(200, body);
}

std::string QueriesJson(const QueryExecutor* executor) {
  std::string body = "{\"relations\":[";
  if (executor != nullptr) {
    const std::vector<RelationIntrospection> relations =
        executor->IntrospectRelations();
    for (std::size_t i = 0; i < relations.size(); ++i) {
      const RelationIntrospection& r = relations[i];
      if (i > 0) body += ',';
      body += "{\"name\":" + Quoted(r.name) +
              ",\"tuples\":" + std::to_string(r.tuples) +
              ",\"runs\":" + std::to_string(r.runs) + ",\"watermark\":" +
              (r.has_watermark ? std::to_string(r.watermark) : "null") +
              ",\"generation\":" + std::to_string(r.generation) +
              ",\"compaction_debt\":" + std::to_string(r.compaction_debt) +
              "}";
    }
  }
  body += "],\"continuous\":[";
  if (executor != nullptr) {
    const std::vector<ContinuousIntrospection> queries =
        executor->IntrospectContinuous();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const ContinuousIntrospection& q = queries[i];
      if (i > 0) body += ',';
      body += "{\"name\":" + Quoted(q.name) + ",\"query\":" + Quoted(q.text) +
              ",\"last_epoch\":" + std::to_string(q.last_epoch) +
              ",\"log_epoch\":" + std::to_string(q.log_epoch) +
              ",\"epochs_applied\":" + std::to_string(q.epochs_applied) +
              ",\"result_tuples\":" + std::to_string(q.result_tuples) +
              ",\"low_watermark\":" +
              (q.has_low_watermark ? std::to_string(q.low_watermark) : "null") +
              ",\"effective_watermark\":" +
              (q.has_effective_watermark ? std::to_string(q.effective_watermark)
                                         : "null") +
              ",\"subscribers\":[";
      for (std::size_t j = 0; j < q.subscribers.size(); ++j) {
        const auto& s = q.subscribers[j];
        if (j > 0) body += ',';
        body += "{\"id\":" + std::to_string(s.id) +
                ",\"last_delivered\":" + std::to_string(s.last_delivered) +
                ",\"lag\":" + std::to_string(s.lag) + "}";
      }
      body += "]}";
    }
  }
  body += "],\"last_epoch\":" +
          std::to_string(executor != nullptr
                             ? static_cast<std::uint64_t>(executor->last_epoch())
                             : 0) +
          "}\n";
  return body;
}

void AppendEscapedHtml(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      case '&': *out += "&amp;"; break;
      default: *out += c;
    }
  }
}

HttpResponse Statusz(const QueryExecutor* executor) {
  Recorder& recorder = Recorder::Global();
  std::string body =
      "<!DOCTYPE html><html><head><title>tpset /statusz</title>"
      "<style>body{font-family:monospace;margin:2em}table{border-collapse:"
      "collapse}td,th{border:1px solid #999;padding:2px 8px;text-align:left}"
      "h2{margin-top:1.2em}</style></head><body><h1>tpset introspection</h1>";

  body += "<h2>Recorder</h2><table><tr><th>running</th><th>ticks</th>"
          "<th>tick_ms</th><th>ring_capacity</th><th>slow_recorded</th></tr>";
  body += "<tr><td>" + std::string(recorder.running() ? "yes" : "no") +
          "</td><td>" + std::to_string(recorder.ticks()) + "</td><td>" +
          std::to_string(recorder.options().tick.count()) + "</td><td>" +
          std::to_string(recorder.options().ring_capacity) + "</td><td>" +
          std::to_string(recorder.slow_recorded()) + "</td></tr></table>";

  if (executor == nullptr) {
    body += "<h2>Engine</h2><p>no executor wired</p>";
  } else {
    body += "<h2>Relations</h2><table><tr><th>name</th><th>tuples</th>"
            "<th>runs</th><th>watermark</th><th>generation</th>"
            "<th>debt</th></tr>";
    for (const RelationIntrospection& r : executor->IntrospectRelations()) {
      body += "<tr><td>";
      AppendEscapedHtml(r.name, &body);
      body += "</td><td>" + std::to_string(r.tuples) + "</td><td>" +
              std::to_string(r.runs) + "</td><td>" +
              (r.has_watermark ? std::to_string(r.watermark)
                               : std::string("-")) +
              "</td><td>" + std::to_string(r.generation) + "</td><td>" +
              std::to_string(r.compaction_debt) + "</td></tr>";
    }
    body += "</table><h2>Continuous queries (last_epoch=" +
            std::to_string(static_cast<std::uint64_t>(executor->last_epoch())) +
            ")</h2><table><tr><th>name</th><th>query</th><th>last_epoch</th>"
            "<th>epochs_applied</th><th>tuples</th><th>low_wm</th>"
            "<th>subscribers (id:lag)</th></tr>";
    for (const ContinuousIntrospection& q : executor->IntrospectContinuous()) {
      body += "<tr><td>";
      AppendEscapedHtml(q.name, &body);
      body += "</td><td>";
      AppendEscapedHtml(q.text, &body);
      body += "</td><td>" + std::to_string(q.last_epoch) + "</td><td>" +
              std::to_string(q.epochs_applied) + "</td><td>" +
              std::to_string(q.result_tuples) + "</td><td>" +
              (q.has_low_watermark ? std::to_string(q.low_watermark)
                                   : std::string("-")) +
              "</td><td>";
      for (std::size_t j = 0; j < q.subscribers.size(); ++j) {
        if (j > 0) body += ", ";
        body += std::to_string(q.subscribers[j].id) + ":" +
                std::to_string(q.subscribers[j].lag);
      }
      body += "</td></tr>";
    }
    body += "</table>";
  }

  const std::vector<Event> events = EventLog::Global().Snapshot(10);
  body += "<h2>Recent events</h2><table><tr><th>seq</th><th>severity</th>"
          "<th>subsystem</th><th>message</th></tr>";
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    body += "<tr><td>" + std::to_string(it->seq) + "</td><td>" +
            SeverityName(it->severity) + "</td><td>";
    AppendEscapedHtml(it->subsystem, &body);
    body += "</td><td>";
    AppendEscapedHtml(it->message, &body);
    body += "</td></tr>";
  }
  body += "</table><p>endpoints: <a href=\"/metrics\">/metrics</a> "
          "<a href=\"/flight\">/flight</a> <a href=\"/events\">/events</a> "
          "<a href=\"/slow\">/slow</a> <a href=\"/top\">/top</a> "
          "<a href=\"/queries\">/queries</a> <a href=\"/healthz\">/healthz</a> "
          "<a href=\"/readyz\">/readyz</a></p></body></html>\n";
  return HttpResponse::Html(200, body);
}

}  // namespace

void RegisterIntrospectionEndpoints(net::HttpServer* server,
                                    const QueryExecutor* executor) {
  server->Route("/metrics", Metrics);
  server->Route("/healthz", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok\n");
  });
  server->Route("/readyz", [executor](const HttpRequest&) {
    // Liveness vs readiness: /healthz answers "the serving thread is up";
    // this answers "the engine behind it is" — an executor is wired and the
    // flight-recorder collector is sampling.
    if (executor == nullptr) {
      return HttpResponse::Text(503, "not ready: no executor wired\n");
    }
    if (!Recorder::Global().running()) {
      return HttpResponse::Text(503, "not ready: recorder not running\n");
    }
    return HttpResponse::Text(200, "ready\n");
  });
  server->Route("/flight", [](const HttpRequest&) {
    // FlightRecordJson serializes dumps on its own mutex; concurrent /flight
    // requests queue there, appends never do.
    return HttpResponse::Json(200, Recorder::Global().FlightRecordJson());
  });
  server->Route("/events", Events);
  server->Route("/slow", Slow);
  server->Route("/top", Top);
  server->Route("/queries", [executor](const HttpRequest&) {
    return HttpResponse::Json(200, QueriesJson(executor));
  });
  server->Route("/statusz", [executor](const HttpRequest&) {
    return Statusz(executor);
  });
  server->Route("/", [](const HttpRequest&) {
    HttpResponse r = HttpResponse::Text(
        200,
        "tpset introspection server\n"
        "endpoints: /metrics /healthz /readyz /flight /events?n= /slow "
        "/top?window= /queries /statusz\n");
    return r;
  });
}

}  // namespace tpset::obs
