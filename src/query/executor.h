// Execution of TP set queries over a named catalog of relations.
#ifndef TPSET_QUERY_EXECUTOR_H_
#define TPSET_QUERY_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>

#include "baselines/algorithm.h"
#include "common/status.h"
#include "query/ast.h"
#include "relation/relation.h"

namespace tpset {

/// Evaluates TP set queries bottom-up with a pluggable set-operation
/// algorithm (LAWA by default; any Table II approach that supports every
/// operator in the query can be chosen for comparison).
class QueryExecutor {
 public:
  /// All registered relations must share this context.
  explicit QueryExecutor(std::shared_ptr<TpContext> ctx) : ctx_(std::move(ctx)) {}

  /// Registers a relation under `rel.name()` (must be non-empty, unique,
  /// same context, duplicate-free).
  Status Register(const TpRelation& rel);

  /// Parses and executes a textual query ("c - (a | b)").
  Result<TpRelation> Execute(const std::string& query,
                             const SetOpAlgorithm* algorithm = nullptr) const;

  /// Executes a query tree.
  Result<TpRelation> Execute(const QueryNode& query,
                             const SetOpAlgorithm* algorithm = nullptr) const;

  /// Looks up a registered relation.
  Result<const TpRelation*> Find(const std::string& name) const;

  const std::shared_ptr<TpContext>& context() const { return ctx_; }

 private:
  std::shared_ptr<TpContext> ctx_;
  std::map<std::string, TpRelation> catalog_;
};

}  // namespace tpset

#endif  // TPSET_QUERY_EXECUTOR_H_
