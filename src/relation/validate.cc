#include "relation/validate.h"

#include <algorithm>
#include <vector>

namespace tpset {

Status ValidateWellFormed(const TpRelation& rel) {
  if (!rel.context()) {
    return Status::InvalidArgument("relation '" + rel.name() + "' has no context");
  }
  const FactDictionary& facts = rel.context()->facts();
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const TpTuple& t = rel[i];
    if (!t.t.IsValid()) {
      return Status::Corruption("tuple " + std::to_string(i) + " of '" + rel.name() +
                                "' has empty interval " + ToString(t.t));
    }
    if (t.lineage == kNullLineage) {
      return Status::Corruption("tuple " + std::to_string(i) + " of '" + rel.name() +
                                "' has null lineage");
    }
    if (!facts.Contains(t.fact)) {
      return Status::Corruption("tuple " + std::to_string(i) + " of '" + rel.name() +
                                "' references unknown fact id " +
                                std::to_string(t.fact));
    }
  }
  return Status::OK();
}

Status ValidateDuplicateFree(const TpRelation& rel) {
  std::vector<TpTuple> sorted = rel.tuples();
  std::sort(sorted.begin(), sorted.end(), FactTimeOrder());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const TpTuple& prev = sorted[i - 1];
    const TpTuple& cur = sorted[i];
    if (prev.fact == cur.fact && prev.t.Overlaps(cur.t)) {
      return Status::InvalidArgument(
          "relation '" + rel.name() + "' is not duplicate-free: fact " +
          ToString(rel.context()->facts().Get(cur.fact)) + " has overlapping intervals " +
          ToString(prev.t) + " and " + ToString(cur.t));
    }
  }
  return Status::OK();
}

Status ValidateSortedFactTime(const TpRelation& rel) {
  if (!rel.IsSortedFactTime()) {
    return Status::InvalidArgument(
        "relation '" + rel.name() +
        "' is not sorted by (fact, start); call SortFactTime() first");
  }
  return Status::OK();
}

Status ValidateSetOpInputs(const TpRelation& r, const TpRelation& s) {
  TPSET_RETURN_NOT_OK(ValidateWellFormed(r));
  TPSET_RETURN_NOT_OK(ValidateWellFormed(s));
  if (r.context() != s.context()) {
    return Status::InvalidArgument("relations '" + r.name() + "' and '" + s.name() +
                                   "' belong to different contexts");
  }
  if (!r.schema().CompatibleWith(s.schema())) {
    return Status::InvalidArgument("schemas of '" + r.name() + "' and '" + s.name() +
                                   "' are incompatible");
  }
  TPSET_RETURN_NOT_OK(ValidateDuplicateFree(r));
  TPSET_RETURN_NOT_OK(ValidateDuplicateFree(s));
  return Status::OK();
}

}  // namespace tpset
