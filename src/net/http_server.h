// Embedded HTTP/1.1 server: the network-facing substrate of the engine.
//
// The first consumer is the introspection plane (obs/http_endpoints.h):
// Prometheus scrapes, flight-record pulls, and query-state reads against a
// *live* engine. The design goal is therefore not throughput but containment
// — an observability port must never become the process's DoS vector, and a
// stuck scraper must never wedge the engine it observes:
//
//  * Bounded parsing. Requests are parsed incrementally (RequestParser), so
//    split reads are handled naturally, and every dimension is capped:
//    header bytes (431 when exceeded), body bytes (413), request-line shape
//    (400), HTTP version (505). A connection can cost at most
//    max_header_bytes + max_body_bytes of memory, ever.
//  * Bounded time. Every connection carries an absolute deadline
//    (request_timeout_ms). A client that trickles bytes or never finishes
//    its request gets a 408 and its socket closed; a client that stops
//    reading the response is cut off when the deadline passes (send(2) under
//    SO_SNDTIMEO).
//  * Bounded concurrency. Accepted connections wait in a fixed-capacity
//    queue served by a small worker pool. When the queue is full the accept
//    loop answers 503 immediately and closes — load-shedding at the door,
//    with the rejection counted (tpset_net_http_saturated_total) so
//    saturation is itself observable.
//  * Graceful shutdown. Stop() halts the accept loop, then lets the workers
//    drain every connection already accepted (in-flight requests complete,
//    queued ones are served) before joining. Nothing in flight is dropped;
//    new connections are refused the moment Stop begins.
//
// Handlers run on worker threads, concurrently with the engine — they must
// only touch thread-safe state (metric scrapes, seqlock ring copies, or
// reads behind the executor's write fence; see obs/http_endpoints.cc).
// Protocol surface is deliberately small: HTTP/1.1, GET and HEAD only, one
// request per connection (Connection: close), no TLS, loopback bind by
// default. The multi-query serving layer (ROADMAP item 1) will reuse this
// accept/worker substrate for client connections.
#ifndef TPSET_NET_HTTP_SERVER_H_
#define TPSET_NET_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace tpset::net {

/// One parsed request. Header names are lowercased; query parameters are
/// percent-decoded.
struct HttpRequest {
  std::string method;  ///< uppercase token (GET, HEAD, ...)
  std::string target;  ///< raw request-target as received
  std::string path;    ///< target up to '?'
  std::map<std::string, std::string> query;    ///< decoded ?key=value params
  std::map<std::string, std::string> headers;  ///< lowercased field names
  std::string body;

  /// Query parameter by name, or `fallback`.
  std::string QueryParam(const std::string& name,
                         const std::string& fallback = "") const;
};

/// One response. The server adds Content-Length and Connection: close.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(int status, std::string body);
  static HttpResponse Json(int status, std::string body);
  static HttpResponse Html(int status, std::string body);
};

/// Standard reason phrase for `status` ("OK", "Not Found", ...).
const char* StatusReason(int status);

/// Incremental HTTP/1.1 request parser with hard caps on every dimension.
/// Feed() accepts bytes as they arrive off the socket — a request split
/// across arbitrarily many reads parses identically to one delivered whole.
/// Exposed (rather than buried in the server) so request-parsing edge cases
/// are unit-testable without sockets.
class RequestParser {
 public:
  enum class State {
    kNeedMore,  ///< incomplete; feed more bytes
    kDone,      ///< request() is complete (trailing bytes are ignored)
    kError,     ///< malformed/oversized; error_status() says which
  };

  RequestParser(std::size_t max_header_bytes, std::size_t max_body_bytes);

  /// Consumes `n` bytes. Once kDone or kError is reached the parser stays
  /// there; further calls return the same state.
  State Feed(const char* data, std::size_t n);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }

  /// HTTP status describing the parse failure (400 bad request, 413 body
  /// too large, 431 headers too large, 505 unsupported version). 0 unless
  /// state() == kError.
  int error_status() const { return error_status_; }

 private:
  State Fail(int status);
  /// Parses the buffered header block; transitions to body collection or
  /// completion.
  State ParseHeaders(std::size_t header_end);

  const std::size_t max_header_bytes_;
  const std::size_t max_body_bytes_;
  State state_ = State::kNeedMore;
  int error_status_ = 0;
  bool in_body_ = false;
  std::size_t body_expected_ = 0;
  std::string buffer_;  ///< header bytes until the blank line, then body bytes
  HttpRequest request_;
};

struct HttpServerOptions {
  /// IPv4 address to bind. Loopback by default: introspection is for the
  /// operator on the box (or a port-forwarding sidecar), not the open net.
  std::string bind_address = "127.0.0.1";

  /// TCP port; 0 binds an ephemeral port (tests, CI) reported by port().
  std::uint16_t port = 0;

  /// Worker threads serving parsed requests.
  std::size_t worker_threads = 2;

  /// Accepted connections waiting for a worker. Beyond this the accept loop
  /// sheds load with an immediate 503.
  std::size_t max_queued_connections = 64;

  std::size_t max_header_bytes = 8 * 1024;
  std::size_t max_body_bytes = 64 * 1024;

  /// Absolute per-connection deadline covering read, parse, handle, write.
  int request_timeout_ms = 5000;
};

/// Served-traffic counters (monotone since Start). Also exported as
/// tpset_net_* process metrics; this struct is for tests and callers that
/// want this server instance's numbers, not the process-wide aggregate.
struct HttpServerStats {
  std::uint64_t accepted = 0;   ///< connections handed to the queue
  std::uint64_t served = 0;     ///< worker responses written (any status)
  std::uint64_t saturated = 0;  ///< shed with a canned 503 at accept
                                ///< (never reached a worker; not in served)
  std::uint64_t parse_errors = 0;
  std::uint64_t timeouts = 0;
};

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;
  ~HttpServer();  ///< Stop()s if running.

  /// Registers `handler` for exact-path GET/HEAD requests. Must be called
  /// before Start (routes are read lock-free while serving).
  void Route(const std::string& path, Handler handler);

  /// Binds, listens, and starts the accept loop + worker pool. Fails with
  /// InvalidArgument on a bad bind address and IoError when the socket
  /// layer refuses (port in use, privileged port). Idempotent error: a
  /// second Start on a running server is InvalidArgument.
  Status Start();

  /// Graceful shutdown: stop accepting, serve everything already accepted,
  /// join all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0) — valid after a successful Start.
  std::uint16_t port() const { return port_; }
  /// "host:port" of the bound listener.
  std::string address() const;

  HttpServerStats stats() const;

  const HttpServerOptions& options() const { return options_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  /// Reads, parses, dispatches, and answers one connection, honoring the
  /// absolute deadline. Always closes `fd`.
  void ServeConnection(int fd);
  /// Formats and writes `response` (headers + body unless HEAD) to `fd`.
  void WriteResponse(int fd, const HttpResponse& response, bool head_only);

  HttpServerOptions options_;
  std::map<std::string, Handler> routes_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool stop_requested_ = false;  // guarded by queue_mu_

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> saturated_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace tpset::net

#endif  // TPSET_NET_HTTP_SERVER_H_
