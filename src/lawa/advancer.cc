#include "lawa/advancer.h"

#include <cassert>
#include <limits>

namespace tpset {

LineageAwareWindowAdvancer::LineageAwareWindowAdvancer(
    const std::vector<TpTuple>& r, const std::vector<TpTuple>& s)
    : LineageAwareWindowAdvancer(r.data(), r.size(), s.data(), s.size()) {}

LineageAwareWindowAdvancer::LineageAwareWindowAdvancer(const TpTuple* r,
                                                       std::size_t nr,
                                                       const TpTuple* s,
                                                       std::size_t ns)
    : r_(r), s_(s), nr_(nr), ns_(ns) {}

AdvancerCheckpoint LineageAwareWindowAdvancer::Checkpoint() const {
  AdvancerCheckpoint ckpt;
  ckpt.ri = ri_;
  ckpt.si = si_;
  ckpt.r_valid = r_valid_;
  ckpt.s_valid = s_valid_;
  ckpt.r_valid_tuple = r_valid_tuple_;
  ckpt.s_valid_tuple = s_valid_tuple_;
  ckpt.have_fact = have_fact_;
  ckpt.curr_fact = curr_fact_;
  ckpt.prev_win_te = prev_win_te_;
  ckpt.windows_produced = windows_produced_;
  return ckpt;
}

void LineageAwareWindowAdvancer::Restore(const AdvancerCheckpoint& ckpt) {
  assert(ckpt.ri <= nr_ && ckpt.si <= ns_ &&
         "checkpoint cursors must lie within the (grown) inputs");
  ri_ = ckpt.ri;
  si_ = ckpt.si;
  r_valid_ = ckpt.r_valid;
  s_valid_ = ckpt.s_valid;
  r_valid_tuple_ = ckpt.r_valid_tuple;
  s_valid_tuple_ = ckpt.s_valid_tuple;
  have_fact_ = ckpt.have_fact;
  curr_fact_ = ckpt.curr_fact;
  prev_win_te_ = ckpt.prev_win_te;
  windows_produced_ = ckpt.windows_produced;
}

bool LineageAwareWindowAdvancer::Next(LineageAwareWindow* w) {
  const bool pend_r = HasPendingR();
  const bool pend_s = HasPendingS();

  TimePoint win_ts;
  if (!r_valid_ && !s_valid_) {
    // No tuple carries over: the next window group starts at a new tuple
    // (possibly of a new fact), or the sweep is done (Alg. 1 lines 2-15).
    if (!pend_r && !pend_s) return false;
    const TpTuple* next_r = pend_r ? &r_[ri_] : nullptr;
    const TpTuple* next_s = pend_s ? &s_[si_] : nullptr;
    const bool r_match = next_r && have_fact_ && next_r->fact == curr_fact_;
    const bool s_match = next_s && have_fact_ && next_s->fact == curr_fact_;
    if (r_match && !s_match) {
      win_ts = next_r->t.start;
    } else if (s_match && !r_match) {
      win_ts = next_s->t.start;
    } else {
      // Neither (or both) continue(s) the current fact: advance to the
      // lexicographically smallest pending (fact, start).
      const TpTuple* pick;
      if (!next_s) {
        pick = next_r;
      } else if (!next_r) {
        pick = next_s;
      } else if (next_r->fact != next_s->fact) {
        pick = next_r->fact < next_s->fact ? next_r : next_s;
      } else {
        pick = next_r->t.start <= next_s->t.start ? next_r : next_s;
      }
      win_ts = pick->t.start;
      curr_fact_ = pick->fact;
      have_fact_ = true;
    }
  } else {
    // A tuple is still valid: the new window is adjacent to the previous one
    // (Alg. 1 line 16).
    win_ts = prev_win_te_;
  }

  // Load tuples of the current fact that start exactly at winTs
  // (Alg. 1 lines 17-20). Duplicate-freeness guarantees at most one per side.
  if (HasPendingR() && r_[ri_].fact == curr_fact_ &&
      r_[ri_].t.start == win_ts) {
    r_valid_tuple_ = r_[ri_++];
    r_valid_ = true;
  }
  if (HasPendingS() && s_[si_].fact == curr_fact_ &&
      s_[si_].t.start == win_ts) {
    s_valid_tuple_ = s_[si_++];
    s_valid_ = true;
  }

  // Right boundary: smallest among the end points of the valid tuples and
  // the start points of the next tuples of the current fact (Alg. 1 line 21).
  TimePoint win_te = std::numeric_limits<TimePoint>::max();
  if (HasPendingR() && r_[ri_].fact == curr_fact_) {
    win_te = std::min(win_te, r_[ri_].t.start);
  }
  if (HasPendingS() && s_[si_].fact == curr_fact_) {
    win_te = std::min(win_te, s_[si_].t.start);
  }
  if (r_valid_) win_te = std::min(win_te, r_valid_tuple_.t.end);
  if (s_valid_) win_te = std::min(win_te, s_valid_tuple_.t.end);
  assert(win_te != std::numeric_limits<TimePoint>::max() &&
         "window must be bounded by a valid tuple");
  assert(win_te > win_ts && "windows advance strictly");

  w->fact = curr_fact_;
  w->t = Interval(win_ts, win_te);
  w->lr = r_valid_ ? r_valid_tuple_.lineage : kNullLineage;
  w->ls = s_valid_ ? s_valid_tuple_.lineage : kNullLineage;

  // Expire tuples that end exactly at the right boundary (lines 26-27).
  if (r_valid_ && r_valid_tuple_.t.end == win_te) r_valid_ = false;
  if (s_valid_ && s_valid_tuple_.t.end == win_te) s_valid_ = false;
  prev_win_te_ = win_te;
  ++windows_produced_;
  return true;
}

}  // namespace tpset
