// Parser for TP set queries in ASCII syntax.
//
//   query  := term (('|' | '-') term)*      union / except, left-assoc
//   term   := factor ('&' factor)*          intersect binds tighter
//   factor := identifier | '(' query ')'
//
// This follows SQL's convention (INTERSECT binds tighter than UNION/EXCEPT,
// which associate left at equal precedence).
#ifndef TPSET_QUERY_PARSER_H_
#define TPSET_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace tpset {

/// Parses `text` into a query tree.
Result<QueryPtr> ParseQuery(const std::string& text);

}  // namespace tpset

#endif  // TPSET_QUERY_PARSER_H_
