// StoredRelation: a catalog relation backed by the run index, published as a
// sequence of refcounted immutable *generations*.
//
// The executor's catalog used to hold a plain TpRelation, so every append
// epoch paid an O(n) MergeSortedAppend into it. A StoredRelation splits the
// physical layout into a *base level* (one big sorted TpRelation, the
// product of the last compaction) and a *tail* of sorted runs (run_index.h).
// Every published state of that layout is a StorageGeneration — an immutable
// {base, tail runs, watermark} triple held by shared_ptr. Mutations never
// edit the current generation in place: they build a successor (sharing
// every untouched run and usually the base) and swap the published pointer
// under a lock held O(1). A generation is freed when the last snapshot
// pinning it drops.
//
//  * AppendRun — O(batch) amortized. Validates the per-fact chain contract
//    against an O(1) fact-tail map (no binary search over n tuples), stamps
//    the run with its epoch (stale/duplicate epochs rejected) and publishes
//    a successor generation whose tail gained the run (roll policy applied).
//  * Snapshot — an O(1) epoch-pinned read view: the generation current at
//    the call, refcounted. Readers iterate its spans with no lock held while
//    appends land and compaction rewrites levels underneath; the snapshot's
//    content never changes.
//  * FoldedView / View — the one logical sorted relation. When tail runs
//    are pending, the fold claims them like a compaction pass (rolls
//    frozen, compact_mu_ try-locked) and merges *off-lock* on a snapshot,
//    so the fold publishes as a new generation even while appends land —
//    a read never blocks a writer, and a sustained writer cannot starve
//    the fold cache. This retires the old reader-thread in-lock fold.
//    O(1) when the tail is empty.
//  * ForEachTuple / Materialize — streaming and copying reads through the
//    merge iterator on a snapshot, without folding anything and without
//    holding the lock across callbacks.
//  * CompactStep — the budgeted compaction pass: claims the oldest ≤k runs,
//    merges them with the base *off-lock* applying *retention* (the monotone
//    per-relation watermark retires every tuple whose interval ends at or
//    below it; a straddling tuple survives), and publishes the successor.
//    Appends land concurrently (rolls are frozen while a claim is pending so
//    the claimed prefix stays positionally stable). Compact() is the
//    unbudgeted single pass over everything pending. Continuous queries that
//    read the relation must rebase their checkpoints after retention
//    (QueryExecutor::Retain drives both; see incremental_set_op.h Rebase).
//
// The fact-tail map deliberately survives retention: the stream contract
// stays monotone per fact — forgetting history does not rewind time, so an
// append below an already-seen tail is still rejected.
//
// Thread safety: all members are guarded by mu_, which is only ever held
// O(1) (pointer swaps, map updates) — never across a merge or a user
// callback. Mutations (AppendRun, SetWatermark, Compact, CompactStep) may
// run concurrently with each other and with any number of readers;
// compaction passes additionally serialize on compact_mu_. Reads taken
// through Snapshot()/FoldedView() are lock-free after the O(1) pointer
// acquisition.
#ifndef TPSET_STORAGE_STORED_RELATION_H_
#define TPSET_STORAGE_STORED_RELATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"
#include "storage/run_index.h"

namespace tpset {

class ThreadPool;

/// One immutable published version of a StoredRelation's physical layout.
/// Built by a mutation, published by an O(1) pointer swap, freed when the
/// last snapshot referencing it drops. `base_watermark` records the
/// retention watermark actually applied to the base level's content
/// (kNoWatermark when a fold moved unretained run tuples in — the
/// generation-swap replacement for the old `base_unretained_` flag, so
/// Compact's skip-when-unchanged check can never leak retained tuples).
struct StorageGeneration {
  StorageGeneration();
  ~StorageGeneration();
  StorageGeneration(const StorageGeneration&) = delete;
  StorageGeneration& operator=(const StorageGeneration&) = delete;

  std::shared_ptr<const TpRelation> base;
  RunIndex tail;
  TimePoint base_watermark = kNoWatermark;
  TimePoint watermark = kNoWatermark;
  std::uint64_t id = 0;
};

/// An epoch-pinned, immutable read view of a StoredRelation: the generation
/// current when Snapshot() was called, refcounted. Cheap to take (O(1)) and
/// to copy; holding one keeps every span it exposes valid, no matter how
/// many appends, folds or compactions publish newer generations meanwhile.
class StorageSnapshot {
 public:
  StorageSnapshot() = default;

  bool valid() const { return gen_ != nullptr; }

  /// Total logical tuple count (base + tail runs) at the pinned epoch.
  std::size_t size() const {
    return gen_ == nullptr ? 0 : gen_->base->size() + gen_->tail.size();
  }
  std::size_t run_count() const {
    return gen_ == nullptr ? 0 : gen_->tail.run_count();
  }
  /// Latest append epoch folded into this view (0 before any append).
  EpochId epoch() const { return gen_ == nullptr ? 0 : gen_->tail.last_epoch(); }
  /// Monotone id of the pinned generation (0 for an invalid snapshot).
  std::uint64_t generation() const { return gen_ == nullptr ? 0 : gen_->id; }
  /// Retention watermark of the relation when this generation published.
  TimePoint watermark() const {
    return gen_ == nullptr ? kNoWatermark : gen_->watermark;
  }
  bool has_watermark() const { return watermark() != kNoWatermark; }

  /// Borrowed spans of the base level plus every tail run, oldest first.
  /// Valid while this snapshot (or any copy) is alive.
  std::vector<TupleSpan> spans() const;

  /// Streams every tuple in (fact, start, end) order through the merge
  /// iterator. No lock is held; `fn` may do anything, including reading the
  /// owning StoredRelation.
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    const std::vector<TupleSpan> s = spans();
    for (RunMergeIterator it(s); it.Valid(); it.Next()) fn(it.Get());
  }

  /// Copies the pinned content into a fresh TpRelation (same context, schema
  /// and name; witness armed).
  TpRelation Materialize() const;

 private:
  friend class StoredRelation;
  explicit StorageSnapshot(std::shared_ptr<const StorageGeneration> gen)
      : gen_(std::move(gen)) {}

  std::shared_ptr<const StorageGeneration> gen_;
};

/// A run-indexed catalog relation published as refcounted generations. See
/// the file comment.
class StoredRelation {
 public:
  StoredRelation();
  /// Takes ownership of `base` as the base level. The relation must be
  /// (fact, start, end)-sorted with the witness armed (the executor
  /// validates at Register); the per-fact tail map is built in one O(n)
  /// scan.
  explicit StoredRelation(TpRelation base);
  ~StoredRelation();

  StoredRelation(const StoredRelation&) = delete;
  StoredRelation& operator=(const StoredRelation&) = delete;

  const std::shared_ptr<TpContext>& context() const { return proto_.context(); }
  const Schema& schema() const { return proto_.schema(); }
  const std::string& name() const { return proto_.name(); }

  /// Total logical tuple count (base + tail runs).
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Appends one (fact, start, end)-sorted batch as a run: O(batch)
  /// amortized, published as a successor generation (readers holding
  /// snapshots are unaffected). Every tuple must extend its fact's timeline
  /// (start at or after the fact's stored tail end — checked against the
  /// O(1) tail map, nothing is mutated on failure) and `epoch` must exceed
  /// every previously accepted epoch. Duplicate-freeness within the batch
  /// follows from the chain check; AppendLog validates the richer row-level
  /// contract first.
  Status AppendRun(std::vector<TpTuple> batch, EpochId epoch);

  /// Last stored interval end of `fact` across base and tails, or
  /// {false, 0} when the fact was never appended. O(1); counts a tail hit.
  std::pair<bool, TimePoint> FactTail(FactId fact) const;

  /// Maximum interval end ever stored (kNoWatermark while empty). Monotone
  /// and unaffected by retention — it tracks how far event time has
  /// advanced, which is what continuous-query low watermarks fold over.
  TimePoint max_interval_end() const;

  /// Sets the retention watermark (monotone: lowering it is rejected).
  /// Takes effect at the next compaction pass; QueryExecutor::Retain couples
  /// the two and rebases dependent continuous queries against the swapped-in
  /// generation.
  Status SetWatermark(TimePoint watermark);
  TimePoint watermark() const;
  bool has_watermark() const { return watermark() != kNoWatermark; }

  /// O(1): pins the current generation for lock-free reading. See
  /// StorageSnapshot.
  StorageSnapshot Snapshot() const;

  /// Unbudgeted compaction pass: merges the base and every tail run present
  /// at the claim into a fresh base level, retiring tuples at or below the
  /// watermark, and publishes the successor generation. O(n), off-lock;
  /// with `pool`, fact-range partitions merge concurrently
  /// (PartitionRunsByFact) and concatenate in order. Skips the merge when
  /// nothing could change (no pending runs and the watermark already applied
  /// to the base).
  void Compact(ThreadPool* pool = nullptr);

  /// Budgeted compaction step: like Compact but claims at most `max_runs`
  /// of the oldest tail runs. Returns the debt remaining after the pass —
  /// runs still pending plus one if the watermark is still unapplied — so
  /// background drivers know whether to reschedule. Passes serialize on an
  /// internal lock; appends proceed concurrently (rolls frozen while a claim
  /// is pending).
  std::size_t CompactStep(std::size_t max_runs, ThreadPool* pool = nullptr);

  /// Pending compaction work: tail run count, plus 1 when the watermark has
  /// not yet been applied to the base level.
  std::size_t compaction_debt() const;

  /// The one logical sorted relation, witness armed, refcounted. When tail
  /// runs are pending, claims them like a compaction pass (so concurrent
  /// appends cannot preempt the publish), merges them with the base
  /// *off-lock* on a snapshot and publishes the folded result as a
  /// successor generation; O(1) when the tail is empty. When a compaction
  /// pass holds the claim, falls back to an unpublished fold — correct for
  /// its snapshot either way. This is what query execution leaves read.
  std::shared_ptr<const TpRelation> FoldedView() const;

  /// Legacy reference-returning fold, kept for single-threaded callers
  /// (REPL, tests): FoldedView() with the result pinned inside this
  /// StoredRelation. The reference stays valid until the next View() call —
  /// concurrent readers should hold FoldedView()/Snapshot() instead.
  const TpRelation& View() const;

  /// Streams every tuple in (fact, start, end) order through the merge
  /// iterator on a snapshot. No lock is held across `fn`.
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    Snapshot().ForEachTuple(std::forward<Fn>(fn));
  }

  /// Materializes the logical content into a fresh TpRelation (same context,
  /// schema and name; witness armed) without mutating the storage layout.
  TpRelation Materialize() const { return Snapshot().Materialize(); }

  /// Pending tail runs (0 right after a full compaction or View fold).
  std::size_t run_count() const;
  /// Latest accepted append epoch (0 before any append).
  EpochId last_epoch() const;
  /// Monotone id of the currently published generation.
  std::uint64_t generation() const;
  /// Counter snapshot, by value: concurrent mutators bump the counters
  /// under the lock, so handing out a reference would race.
  StorageStats stats() const;

 private:
  /// Builds the successor-generation skeleton (no tail/base yet) — requires
  /// mu_.
  std::shared_ptr<StorageGeneration> NewGenerationLocked() const;
  /// Publishes `next` as the current generation — requires mu_.
  void PublishLocked(std::shared_ptr<StorageGeneration> next) const;

  mutable std::mutex mu_;
  /// Serializes compaction passes (claim → off-lock merge → publish).
  /// Mutable because FoldedView() (a const read) try-locks it to claim a
  /// roll-frozen prefix, which makes its fold publishable even while
  /// appends land concurrently.
  mutable std::mutex compact_mu_;
  /// The published generation; swapped under mu_, read via Snapshot().
  /// Mutable because FoldedView() (a const read) may publish the fold.
  mutable std::shared_ptr<const StorageGeneration> gen_;
  /// Keeps the last View() result alive for the legacy reference contract.
  mutable std::shared_ptr<const TpRelation> view_pin_;
  mutable StorageStats stats_;
  mutable std::uint64_t next_gen_id_ = 1;
  /// True while a compaction claim is outstanding: appends must not roll
  /// runs together, or the claimed prefix would shift under the compactor.
  mutable bool compacting_ = false;
  std::unordered_map<FactId, TimePoint> fact_tails_;
  TimePoint max_interval_end_ = kNoWatermark;
  TimePoint watermark_ = kNoWatermark;
  /// Empty relation carrying the stable context/schema/name, so the
  /// accessors hand out references that survive generation swaps.
  TpRelation proto_;
};

}  // namespace tpset

#endif  // TPSET_STORAGE_STORED_RELATION_H_
