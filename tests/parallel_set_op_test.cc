// Property tests for the partitioned parallel engine: ParallelSetOpAlgorithm
// must equal sequential LawaSetOp tuple for tuple (fact, interval AND
// lineage id — bit-identical), across skewed facts, single-fact inputs,
// more partitions than facts, and empty relations; the executor's
// concurrent path must equal its sequential path on whole query trees.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"
#include "query/executor.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

// Exact (bit-level) equality: same size and identical TpTuple triples,
// including the lineage ids.
void ExpectBitIdentical(const TpRelation& expected, const TpRelation& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "tuple " << i;
  }
  EXPECT_EQ(expected.name(), actual.name());
}

// Runs sequential first, parallel second, in ONE context. Hash-consing makes
// the parallel run's identical construction sequence dedup onto the very
// same lineage ids, so bit-identity is directly checkable.
void ExpectParallelMatchesSequential(const TpRelation& r, const TpRelation& s,
                                     std::size_t num_threads) {
  ParallelSetOpAlgorithm par(num_threads);
  for (SetOpKind op : kAllSetOps) {
    TpRelation expected = LawaSetOp(op, r, s);
    TpRelation actual = par.Compute(op, r, s);
    ExpectBitIdentical(expected, actual);
    EXPECT_TRUE(ValidateDuplicateFree(actual).ok());
    EXPECT_TRUE(actual.IsSortedFactTime());
  }
}

TEST(ParallelSetOpTest, PaperExampleAllOps) {
  SupermarketDb db;
  ExpectParallelMatchesSequential(db.a, db.c, 4);
}

TEST(ParallelSetOpTest, EmptyRelations) {
  SupermarketDb db;
  TpRelation empty(db.ctx, db.a.schema(), "empty");
  ExpectParallelMatchesSequential(db.a, empty, 4);
  ExpectParallelMatchesSequential(empty, db.a, 4);
  ExpectParallelMatchesSequential(empty, empty, 4);
}

TEST(ParallelSetOpTest, SingleFactInputs) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"milk", "r1", 0, 5, 0.5},
                               {"milk", "r2", 7, 9, 0.4},
                               {"milk", "r3", 12, 20, 0.9}});
  TpRelation s = MakeRelation(ctx, "s",
                              {{"milk", "s1", 3, 8, 0.6},
                               {"milk", "s2", 10, 14, 0.7}});
  // More threads (and partitions) than facts: everything collapses to one
  // partition and must still be exact.
  ExpectParallelMatchesSequential(r, s, 8);
}

TEST(ParallelSetOpTest, SkewedFactDistribution) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  // Fact "hot" holds ~90% of r; a tail of cold facts pads both sides.
  FactId hot = ctx->facts().Intern({Value(std::string("hot"))});
  for (int i = 0; i < 180; ++i) {
    r.AddBaseFast(hot, Interval(3 * i, 3 * i + 2), 0.5);
  }
  for (int i = 0; i < 10; ++i) {
    FactId cold = ctx->facts().Intern({Value("cold" + std::to_string(i))});
    r.AddBaseFast(cold, Interval(i, i + 4), 0.3);
    s.AddBaseFast(cold, Interval(i + 2, i + 8), 0.6);
    s.AddBaseFast(hot, Interval(30 * i + 1, 30 * i + 7), 0.8);
  }
  r.SortFactTime();
  s.SortFactTime();
  ASSERT_TRUE(ValidateSetOpInputs(r, s).ok());
  ExpectParallelMatchesSequential(r, s, 4);
}

TEST(ParallelSetOpTest, RandomizedSyntheticSweep) {
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    auto ctx = std::make_shared<TpContext>();
    Rng rng(seed);
    SyntheticPairSpec spec = TableIIIPreset(0.4 + 0.1 * (seed % 3));
    spec.num_tuples = 200 + rng.Below(400);
    spec.num_facts = 1 + rng.Below(30);
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    ExpectParallelMatchesSequential(r, s, 1 + seed % 5);
  }
}

TEST(ParallelSetOpTest, CountingSortModeAgrees) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(77);
  SyntheticPairSpec spec;
  spec.num_tuples = 300;
  spec.num_facts = 10;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  ParallelSetOpAlgorithm par(3, SortMode::kCounting);
  for (SetOpKind op : kAllSetOps) {
    TpRelation expected = LawaSetOp(op, r, s, SortMode::kCounting);
    ExpectBitIdentical(expected, par.Compute(op, r, s));
  }
}

TEST(ParallelSetOpTest, CrossContextBitIdenticalWithoutSharedArena) {
  // Same deterministic inputs in two fresh contexts: sequential in one,
  // parallel in the other. Equal tuple triples prove the parallel run
  // interned lineages in exactly the sequential order — not merely deduped
  // onto existing sequential nodes.
  auto make_pair = [](std::shared_ptr<TpContext> ctx) {
    Rng rng(321);
    SyntheticPairSpec spec;
    spec.num_tuples = 250;
    spec.num_facts = 12;
    return GenerateSyntheticPair(std::move(ctx), spec, &rng);
  };
  auto ctx_seq = std::make_shared<TpContext>();
  auto ctx_par = std::make_shared<TpContext>();
  auto [r1, s1] = make_pair(ctx_seq);
  auto [r2, s2] = make_pair(ctx_par);
  ParallelSetOpAlgorithm par(4);
  for (SetOpKind op : kAllSetOps) {
    TpRelation expected = LawaSetOp(op, r1, s1);
    TpRelation actual = par.Compute(op, r2, s2);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], actual[i]) << "tuple " << i;
    }
    EXPECT_EQ(ctx_seq->lineage().size(), ctx_par->lineage().size());
  }
}

TEST(ParallelSetOpTest, SingleThreadDegradesToSequential) {
  SupermarketDb db;
  ParallelSetOpAlgorithm par(1);
  for (SetOpKind op : kAllSetOps) {
    ExpectBitIdentical(LawaSetOp(op, db.a, db.c), par.Compute(op, db.a, db.c));
  }
}

TEST(ParallelSetOpTest, StatsMatchSequential) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(5);
  SyntheticPairSpec spec;
  spec.num_tuples = 150;
  spec.num_facts = 6;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  for (SetOpKind op : kAllSetOps) {
    LawaStats seq_stats, par_stats;
    LawaSetOp(op, r, s, SortMode::kComparison, &seq_stats);
    ParallelSetOpAlgorithm par(4);
    par.ComputeSequenced(op, r, s, nullptr, 0, &par_stats);
    // Candidate windows: a partition whose other input is empty skips the
    // dead (always-filtered) windows the sequential global sweep still
    // produces, so parallel counts at most the sequential number; the
    // Proposition 1 bound holds for both. Output tuples match exactly.
    EXPECT_LE(par_stats.windows_produced, seq_stats.windows_produced);
    EXPECT_GT(par_stats.windows_produced, 0u);
    EXPECT_EQ(seq_stats.output_tuples, par_stats.output_tuples);
  }
}

// ---- Executor integration ----

class ParallelExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(exec_.Register(db_.a).ok());
    ASSERT_TRUE(exec_.Register(db_.b).ok());
    ASSERT_TRUE(exec_.Register(db_.c).ok());
  }

  SupermarketDb db_;
  QueryExecutor exec_{db_.ctx};
};

TEST_F(ParallelExecutorTest, WholeTreeMatchesSequentialExecution) {
  const char* queries[] = {
      "a",
      "a | b",
      "c - (a | b)",
      "(a | b) & (c | a)",
      "((a | b) - (b & c)) | (c - a)",
      "(a - b) | (b - c) | (c - a)",
  };
  for (const char* q : queries) {
    Result<TpRelation> sequential = exec_.Execute(q);
    ASSERT_TRUE(sequential.ok()) << q;
    for (std::size_t threads : {2u, 4u, 8u}) {
      Result<TpRelation> concurrent = exec_.Execute(q, ExecOptions{threads});
      ASSERT_TRUE(concurrent.ok()) << q;
      ExpectBitIdentical(*sequential, *concurrent);
    }
  }
}

TEST_F(ParallelExecutorTest, OptionsWithOneThreadIsTheSequentialPath) {
  Result<TpRelation> a = exec_.Execute("c - (a | b)");
  Result<TpRelation> b = exec_.Execute("c - (a | b)", ExecOptions{1});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdentical(*a, *b);
}

TEST_F(ParallelExecutorTest, UnknownRelationErrorPropagates) {
  Result<TpRelation> result = exec_.Execute("a | nope", ExecOptions{4});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ParallelExecutorTest, UnsupportedAlgorithmIsRejectedUpFront) {
  // TI supports only intersection (Table II).
  const SetOpAlgorithm* ti = FindAlgorithm("TI");
  ASSERT_NE(ti, nullptr);
  Result<TpRelation> result = exec_.Execute("a | b", ExecOptions{4}, ti);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST_F(ParallelExecutorTest, ForeignAlgorithmRunsSerializedButCorrect) {
  const SetOpAlgorithm* norm = FindAlgorithm("NORM");
  ASSERT_NE(norm, nullptr);
  Result<TpRelation> sequential = exec_.Execute("c - (a | b)", norm);
  Result<TpRelation> concurrent = exec_.Execute("c - (a | b)", ExecOptions{4}, norm);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(concurrent.ok());
  EXPECT_TRUE(RelationsEquivalent(*sequential, *concurrent));
}

TEST(ParallelRegisterTest, RegisterRejectsUnsortedRelations) {
  auto ctx = std::make_shared<TpContext>();
  // Same fact out of (fact, start) order — duplicate-free but unsorted.
  TpRelation rel = MakeRelation(ctx, "unsorted",
                                {{"milk", "m1", 10, 12, 0.5},
                                 {"milk", "m2", 0, 2, 0.5}});
  QueryExecutor exec(ctx);
  Status st = exec.Register(rel);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  rel.SortFactTime();
  EXPECT_TRUE(exec.Register(rel).ok());
}

}  // namespace
}  // namespace tpset
