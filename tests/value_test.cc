// Values, facts, hashing and schemas.
#include <gtest/gtest.h>

#include "common/fact_dictionary.h"
#include "common/value.h"

namespace tpset {
namespace {

TEST(ValueTest, TypeOf) {
  EXPECT_EQ(TypeOf(Value(std::int64_t{42})), ValueType::kInt64);
  EXPECT_EQ(TypeOf(Value(3.5)), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value(std::string("milk"))), ValueType::kString);
}

TEST(ValueTest, ToStringFormats) {
  EXPECT_EQ(ToString(Value(std::int64_t{42})), "42");
  EXPECT_EQ(ToString(Value(std::string("milk"))), "'milk'");
  EXPECT_EQ(ToString(Fact{Value(std::string("milk"))}), "'milk'");
  EXPECT_EQ(ToString(Fact{Value(std::int64_t{1}), Value(std::string("x"))}),
            "(1, 'x')");
}

TEST(ValueTest, HashDistinguishesTypes) {
  // int64 42 and string "42" must not collide via type confusion.
  EXPECT_NE(HashValue(Value(std::int64_t{42})), HashValue(Value(std::string("42"))));
}

TEST(ValueTest, HashFactIsOrderSensitive) {
  Fact f1{Value(std::int64_t{1}), Value(std::int64_t{2})};
  Fact f2{Value(std::int64_t{2}), Value(std::int64_t{1})};
  EXPECT_NE(HashFact(f1), HashFact(f2));
  EXPECT_EQ(HashFact(f1), HashFact(f1));
}

TEST(SchemaTest, ValidateArityAndTypes) {
  Schema s({"id", "name"}, {ValueType::kInt64, ValueType::kString});
  EXPECT_TRUE(s.Validate({Value(std::int64_t{1}), Value(std::string("a"))}).ok());
  EXPECT_FALSE(s.Validate({Value(std::int64_t{1})}).ok()) << "wrong arity";
  EXPECT_FALSE(
      s.Validate({Value(std::string("a")), Value(std::string("b"))}).ok())
      << "wrong type";
}

TEST(SchemaTest, Compatibility) {
  Schema a = Schema::SingleString("Product");
  Schema b = Schema::SingleString("Item");
  Schema c = Schema::SingleInt("fact");
  EXPECT_TRUE(a.CompatibleWith(b)) << "names may differ";
  EXPECT_FALSE(a.CompatibleWith(c));
  EXPECT_TRUE(a.CompatibleWith(a));
}

TEST(FactDictionaryTest, InternIsIdempotent) {
  FactDictionary dict;
  Fact milk{Value(std::string("milk"))};
  Fact chips{Value(std::string("chips"))};
  FactId m1 = dict.Intern(milk);
  FactId c1 = dict.Intern(chips);
  EXPECT_NE(m1, c1);
  EXPECT_EQ(dict.Intern(milk), m1);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Get(m1), milk);
}

TEST(FactDictionaryTest, FindWithoutInterning) {
  FactDictionary dict;
  Fact milk{Value(std::string("milk"))};
  EXPECT_FALSE(dict.Find(milk).ok());
  FactId id = dict.Intern(milk);
  ASSERT_TRUE(dict.Find(milk).ok());
  EXPECT_EQ(*dict.Find(milk), id);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(FactDictionaryTest, ContainsChecksRange) {
  FactDictionary dict;
  FactId id = dict.Intern({Value(std::int64_t{7})});
  EXPECT_TRUE(dict.Contains(id));
  EXPECT_FALSE(dict.Contains(id + 1));
}

TEST(FactDictionaryTest, MultiAttributeFacts) {
  FactDictionary dict;
  Fact f1{Value(std::int64_t{1}), Value(std::string("a"))};
  Fact f2{Value(std::int64_t{1}), Value(std::string("b"))};
  EXPECT_NE(dict.Intern(f1), dict.Intern(f2));
}

}  // namespace
}  // namespace tpset
