// EXPLAIN for TP set queries: executes the plan bottom-up and annotates
// every node with its cardinalities, LAWA window counts (against the
// Proposition 1 bound) and the recommended probability-valuation method.
#ifndef TPSET_QUERY_EXPLAIN_H_
#define TPSET_QUERY_EXPLAIN_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "query/executor.h"

namespace tpset {

/// Renders an indented plan tree like:
///
///   except  [out=5, windows=8/9(bound)]
///     relation c  [4 tuples]
///     union  [out=6, windows=8/11(bound)]
///       relation a  [3 tuples]
///       relation b  [2 tuples]
///   non-repeating: yes -> valuation: read-once (linear, exact)
///
/// The query is actually executed (with LAWA), so the numbers are exact.
Result<std::string> ExplainQuery(const QueryExecutor& exec, const QueryNode& query);

/// Parses, then explains.
Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const std::string& query);

/// Explain under explicit execution options. With options.num_threads > 1
/// every set-op node runs the partitioned parallel algorithm (with the
/// requested apply mode) and its line additionally carries the per-phase
/// wall-time breakdown:
///
///   except  [out=5, windows=8/9(bound), sort=0.01ms split=0.00ms
///            advance=0.05ms apply=0.02ms]
///
/// `apply` is the sequential arena-mutating tail — the sequencer critical
/// section under concurrent subtree evaluation; staged mode shrinks it.
Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const QueryNode& query,
                                 const ExecOptions& options);

/// Parses, then explains with options.
Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const std::string& query,
                                 const ExecOptions& options);

}  // namespace tpset

#endif  // TPSET_QUERY_EXPLAIN_H_
