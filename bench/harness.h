// Shared benchmark harness: scaling knobs, timing, table output.
//
// Every bench_fig* binary regenerates one figure/table of the paper as a
// CSV series on stdout. Paper-scale runs are expensive; by default all
// dataset sizes are multiplied by TPSET_BENCH_SCALE (default 0.1) so that
// `for b in build/bench/*; do $b; done` finishes in minutes. Run with
// TPSET_BENCH_SCALE=1 (or pass --full) for the paper's sizes. Quadratic
// baselines are additionally capped; every applied cap is printed — no
// silent truncation.
#ifndef TPSET_BENCH_HARNESS_H_
#define TPSET_BENCH_HARNESS_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <functional>
#include <string>
#include <thread>

namespace tpset::bench {

/// Provenance fragment stamped into every committed BENCH_*.json head: the
/// host's CPU count, the widest worker-thread count the bench exercises,
/// the TPSET_OBS build mode (whether metric/event recording was compiled
/// in — numbers from an "off" build are not comparable to an "on" build),
/// and the ISO-8601 UTC generation timestamp — enough to judge whether two
/// committed runs are comparable. Returns `indent`-spaced lines ending in a
/// trailing comma, ready to splice into an object body:
///   "host_cpus": 2,
///   "threads": 8,
///   "obs": "on",
///   "generated_utc": "2026-08-08T12:34:56Z",
inline std::string ProvenanceJson(std::size_t threads, int indent = 2) {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char ts[32];
  std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &utc);
#ifdef TPSET_OBS_DISABLED
  const char* obs_mode = "off";
#else
  const char* obs_mode = "on";
#endif
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%s\"host_cpus\": %u,\n%s\"threads\": %zu,\n"
                "%s\"obs\": \"%s\",\n%s\"generated_utc\": \"%s\",\n",
                pad.c_str(), std::thread::hardware_concurrency(), pad.c_str(),
                threads, pad.c_str(), obs_mode, pad.c_str(), ts);
  return buf;
}

/// Dataset scale factor: TPSET_BENCH_SCALE env var, overridden to 1.0 by a
/// --full argument. Default 0.1.
inline double ScaleFactor(int argc = 0, char** argv = nullptr) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") return 1.0;
  }
  if (const char* env = std::getenv("TPSET_BENCH_SCALE")) {
    double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.1;
}

/// Scales a paper-sized cardinality.
inline std::size_t Scaled(std::size_t paper_n, double scale) {
  std::size_t n = static_cast<std::size_t>(static_cast<double>(paper_n) * scale);
  return n < 2 ? 2 : n;
}

/// Wall-clock time of one invocation, in milliseconds.
inline double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Prints the standard series header.
inline void PrintHeader(const char* experiment) {
  std::printf("# %s\n", experiment);
  std::printf("experiment,operation,approach,n,runtime_ms\n");
}

/// Prints one series row.
inline void PrintRow(const char* experiment, const char* operation,
                     const std::string& approach, std::size_t n, double ms) {
  std::printf("%s,%s,%s,%zu,%.3f\n", experiment, operation, approach.c_str(), n,
              ms);
  std::fflush(stdout);
}

/// Announces a skipped measurement (cap applied).
inline void PrintCap(const char* experiment, const char* operation,
                     const std::string& approach, std::size_t n,
                     std::size_t cap) {
  std::printf("%s,%s,%s,%zu,SKIPPED(cap=%zu; quadratic baseline)\n", experiment,
              operation, approach.c_str(), n, cap);
  std::fflush(stdout);
}

}  // namespace tpset::bench

#endif  // TPSET_BENCH_HARNESS_H_
