// Thread-scaling of the partitioned parallel engine: LAWA-P at 1/2/4/8
// threads against sequential LAWA on a 1M-tuple-per-relation synthetic pair
// (scaled by TPSET_BENCH_SCALE), all three operations, in both apply modes
// (bit-identical and staged; see parallel/parallel_set_op.h).
//
// Each LAWA-P measurement carries the per-phase wall-time breakdown
// (sort/split/advance/apply); `apply` is the sequential arena-mutating tail
// — the Amdahl term the staged mode attacks. The context uses hash-consing
// (the production default), which is what makes the bit-identical apply
// phase hash-heavy. Every rep runs against a freshly generated context and
// pair (same seed): a production operation builds lineage formulas the
// arena has not seen, so a warm-arena rerun — where every intern degrades
// to a cache hit — would systematically understate the apply phase.
//
// Output: the harness CSV rows, one "# json {...}" summary line per
// operation, and a machine-readable summary written to BENCH_parallel.json
// (override with --json <path>) so the perf trajectory is tracked across
// PRs.
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

struct Sample {
  double wall_ms = 0.0;
  PhaseTimings phases;
};

struct Workload {
  SyntheticPairSpec spec;

  // Fresh context + pair, deterministic across calls (fixed seed).
  std::pair<TpRelation, TpRelation> Fresh() const {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/true);
    Rng rng(0x9A7A11E1);
    return GenerateSyntheticPair(ctx, spec, &rng);
  }
};

// Best-of-reps wall time (with the fastest run's phase breakdown), each rep
// against a cold arena. Generation time is excluded from the measurement.
Sample BestTimedCold(int reps, const Workload& wl,
                     const ParallelSetOpAlgorithm& algo, SetOpKind op) {
  Sample best;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = wl.Fresh();
    PhaseTimings t;
    double ms = TimeMs([&]() {
      TpRelation out = algo.ComputeTimed(op, r, s, &t);
      (void)out;
    });
    if (i == 0 || ms < best.wall_ms) best = Sample{ms, t};
  }
  return best;
}

// Cold-arena best-of-reps for sequential LAWA.
double BestSequentialCold(int reps, const Workload& wl, SetOpKind op) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = wl.Fresh();
    double ms = TimeMs([&]() {
      TpRelation out = LawaSetOp(op, r, s);
      (void)out;
    });
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

void AppendPhaseJson(std::string* out, std::size_t threads, const Sample& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"t%zu\":{\"wall_ms\":%.3f,\"sort_ms\":%.3f,\"split_ms\":%.3f,"
                "\"advance_ms\":%.3f,\"apply_ms\":%.3f}",
                threads, s.wall_ms, s.phases.sort_ms, s.phases.split_ms,
                s.phases.advance_ms, s.phases.apply_ms);
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  const char* json_path = "BENCH_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("# parallel scaling: LAWA-P threads=1/2/4/8 (bit-identical and "
              "staged apply) vs LAWA, 1M tuples/relation (scale=%.3g), 1K "
              "facts, hash-consing on\n", scale);
  PrintHeader("parallel");

  const std::size_t n = Scaled(1000000, scale);
  Workload wl;
  wl.spec = TableIIIPreset(0.6);
  wl.spec.num_tuples = n;
  wl.spec.num_facts = std::max<std::size_t>(1, n / 1000);

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const int reps = 3;

  std::string json = "{\n  \"experiment\": \"parallel\",\n";
  {
    char head[256];
    std::snprintf(head, sizeof(head),
                  "  \"scale\": %.4g,\n  \"n_per_relation\": %zu,\n"
                  "  \"num_facts\": %zu,\n  \"reps\": %d,\n"
                  "  \"hash_consing\": true,\n  \"cold_arena\": true,\n"
                  "  \"operations\": [\n",
                  scale, n, wl.spec.num_facts, reps);
    json += head;
  }

  bool first_op = true;
  for (SetOpKind op : kAllSetOps) {
    const char* op_name = SetOpName(op);

    double seq_ms = BestSequentialCold(reps, wl, op);
    PrintRow("parallel", op_name, "LAWA", n, seq_ms);

    Sample bit_at[9], staged_at[9];
    for (std::size_t threads : thread_counts) {
      ParallelSetOpAlgorithm bit(threads, SortMode::kComparison, 4,
                                 ApplyMode::kBitIdentical);
      bit_at[threads] = BestTimedCold(reps, wl, bit, op);
      PrintRow("parallel", op_name, "LAWA-P/" + std::to_string(threads), n,
               bit_at[threads].wall_ms);

      ParallelSetOpAlgorithm staged(threads, SortMode::kComparison, 4,
                                    ApplyMode::kStaged);
      staged_at[threads] = BestTimedCold(reps, wl, staged, op);
      PrintRow("parallel", op_name, "LAWA-P-staged/" + std::to_string(threads),
               n, staged_at[threads].wall_ms);
    }

    const double apply_speedup =
        staged_at[8].phases.apply_ms > 0
            ? bit_at[8].phases.apply_ms / staged_at[8].phases.apply_ms
            : 0.0;
    std::printf(
        "# json {\"experiment\":\"parallel\",\"operation\":\"%s\",\"n\":%zu,"
        "\"lawa_ms\":%.3f,\"t8_bit_ms\":%.3f,\"t8_staged_ms\":%.3f,"
        "\"apply_ms_bit_t8\":%.3f,\"apply_ms_staged_t8\":%.3f,"
        "\"apply_speedup_staged_t8\":%.3f,"
        "\"speedup_8_over_1_bit\":%.3f,\"speedup_8_over_1_staged\":%.3f}\n",
        op_name, n, seq_ms, bit_at[8].wall_ms, staged_at[8].wall_ms,
        bit_at[8].phases.apply_ms, staged_at[8].phases.apply_ms, apply_speedup,
        bit_at[8].wall_ms > 0 ? bit_at[1].wall_ms / bit_at[8].wall_ms : 0.0,
        staged_at[8].wall_ms > 0 ? staged_at[1].wall_ms / staged_at[8].wall_ms
                                 : 0.0);

    if (!first_op) json += ",\n";
    first_op = false;
    char ophead[128];
    std::snprintf(ophead, sizeof(ophead),
                  "    {\"operation\": \"%s\", \"lawa_ms\": %.3f,\n", op_name,
                  seq_ms);
    json += ophead;
    json += "     \"bit_identical\": {";
    for (std::size_t i = 0; i < 4; ++i) {
      if (i > 0) json += ",";
      AppendPhaseJson(&json, thread_counts[i], bit_at[thread_counts[i]]);
    }
    json += "},\n     \"staged\": {";
    for (std::size_t i = 0; i < 4; ++i) {
      if (i > 0) json += ",";
      AppendPhaseJson(&json, thread_counts[i], staged_at[thread_counts[i]]);
    }
    json += "},\n";
    char optail[256];
    std::snprintf(optail, sizeof(optail),
                  "     \"apply_speedup_staged_t8\": %.3f,\n"
                  "     \"speedup_8_over_1_bit\": %.3f,\n"
                  "     \"speedup_8_over_1_staged\": %.3f}",
                  apply_speedup,
                  bit_at[8].wall_ms > 0 ? bit_at[1].wall_ms / bit_at[8].wall_ms
                                        : 0.0,
                  staged_at[8].wall_ms > 0
                      ? staged_at[1].wall_ms / staged_at[8].wall_ms
                      : 0.0);
    json += optail;
  }
  json += "\n  ]\n}\n";

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
