// Introspection-server tests: request-parser edge cases (split reads, size
// caps, bad request lines — all without sockets), server behavior over real
// loopback connections (routing, 404/405, HEAD, split-write clients, request
// timeout, 503 load-shedding at saturation, graceful drain), endpoint golden
// checks against a live executor, and an HTTP-scrape-while-appending race
// (this file carries the concurrency label and runs under the CI TSan job).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "incremental/continuous_query.h"
#include "net/http_server.h"
#include "obs/http_endpoints.h"
#include "obs/recorder.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using net::HttpRequest;
using net::HttpResponse;
using net::HttpServer;
using net::HttpServerOptions;
using net::RequestParser;

using State = RequestParser::State;

// ---- RequestParser ----------------------------------------------------------

TEST(RequestParserTest, ParsesSimpleGetDeliveredWhole) {
  RequestParser parser(8192, 8192);
  const std::string raw =
      "GET /metrics?format=json&x=a%20b HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom: Value \r\n"
      "\r\n";
  ASSERT_EQ(parser.Feed(raw.data(), raw.size()), State::kDone);
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.QueryParam("format"), "json");
  EXPECT_EQ(req.QueryParam("x"), "a b");  // percent-decoded
  EXPECT_EQ(req.QueryParam("missing", "fb"), "fb");
  // Header names lowercased, values trimmed.
  EXPECT_EQ(req.headers.at("host"), "localhost");
  EXPECT_EQ(req.headers.at("x-custom"), "Value");
}

TEST(RequestParserTest, ByteByByteSplitReadsParseIdentically) {
  RequestParser parser(8192, 8192);
  const std::string raw =
      "GET /flight HTTP/1.1\r\nHost: a\r\nContent-Length: 3\r\n\r\nxyz";
  for (char c : raw) {
    ASSERT_NE(parser.Feed(&c, 1), State::kError);
  }
  ASSERT_EQ(parser.state(), State::kDone);
  EXPECT_EQ(parser.request().path, "/flight");
  EXPECT_EQ(parser.request().body, "xyz");
}

TEST(RequestParserTest, OversizedHeadersAre431) {
  RequestParser parser(/*max_header_bytes=*/128, 8192);
  std::string raw = "GET / HTTP/1.1\r\nX-Big: ";
  raw.append(500, 'a');
  EXPECT_EQ(parser.Feed(raw.data(), raw.size()), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
  // Error state is sticky.
  EXPECT_EQ(parser.Feed("x", 1), State::kError);
}

TEST(RequestParserTest, OversizedBodyIs413) {
  RequestParser parser(8192, /*max_body_bytes=*/16);
  const std::string raw = "GET / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
  EXPECT_EQ(parser.Feed(raw.data(), raw.size()), State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(RequestParserTest, MalformedRequestsAre400) {
  const char* bad[] = {
      "NOT-A-REQUEST-LINE\r\n\r\n",          // no method/target/version split
      "GET /\r\n\r\n",                       // missing version
      "get / HTTP/1.1\r\n\r\n",              // lowercase method token
      "GET relative HTTP/1.1\r\n\r\n",       // target not starting with /
      "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
      "GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n",
      "GET / FTP/1.1\r\n\r\n",               // not an HTTP version at all
      "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
  };
  for (const char* raw : bad) {
    SCOPED_TRACE(raw);
    RequestParser parser(8192, 8192);
    EXPECT_EQ(parser.Feed(raw, std::strlen(raw)), State::kError);
    EXPECT_EQ(parser.error_status(), 400);
  }
}

TEST(RequestParserTest, UnsupportedHttpVersionIs505) {
  RequestParser parser(8192, 8192);
  const std::string raw = "GET / HTTP/2.0\r\n\r\n";
  EXPECT_EQ(parser.Feed(raw.data(), raw.size()), State::kError);
  EXPECT_EQ(parser.error_status(), 505);
}

// ---- Raw-socket test client -------------------------------------------------

/// Connects to 127.0.0.1:`port`, writes `request` in `chunks` pieces with a
/// small pause between them, then reads the whole response ("Connection:
/// close" framing — read to EOF).
std::string RawRequest(std::uint16_t port, const std::string& request,
                       int chunks = 1) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed: " << std::strerror(errno);
    return "";
  }
  const std::size_t per = (request.size() + chunks - 1) / chunks;
  for (std::size_t off = 0; off < request.size(); off += per) {
    const std::size_t n = std::min(per, request.size() - off);
    EXPECT_EQ(::send(fd, request.data() + off, n, 0),
              static_cast<ssize_t>(n));
    if (chunks > 1) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(std::uint16_t port, const std::string& target,
                int chunks = 1) {
  return RawRequest(port,
                    "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n", chunks);
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..." — anything shorter is a transport failure.
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

// ---- HttpServer behavior ----------------------------------------------------

TEST(HttpServerTest, RoutesAndErrorStatuses) {
  HttpServer server;  // ephemeral port
  server.Route("/hello", [](const HttpRequest& req) {
    return HttpResponse::Text(200, "hello " + req.QueryParam("who", "world"));
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);  // port 0 resolved to a real ephemeral port
  EXPECT_EQ(server.address(), "127.0.0.1:" + std::to_string(server.port()));

  std::string ok = Get(server.port(), "/hello?who=tpset");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_NE(ok.find("hello tpset"), std::string::npos);
  EXPECT_NE(ok.find("Connection: close"), std::string::npos);

  // A request split across many tiny writes parses identically.
  EXPECT_EQ(StatusOf(Get(server.port(), "/hello", /*chunks=*/7)), 200);

  EXPECT_EQ(StatusOf(Get(server.port(), "/nope")), 404);
  EXPECT_EQ(StatusOf(RawRequest(
                server.port(), "POST /hello HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(RawRequest(server.port(), "junk\r\n\r\n")), 400);
  EXPECT_EQ(StatusOf(RawRequest(server.port(),
                                "GET /hello HTTP/2.0\r\n\r\n")),
            505);

  // HEAD: headers only, no body.
  const std::string head = RawRequest(
      server.port(), "HEAD /hello HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_EQ(StatusOf(head), 200);
  EXPECT_EQ(head.find("hello world"), std::string::npos);

  const net::HttpServerStats stats = server.stats();
  EXPECT_GE(stats.served, 6u);
  EXPECT_GE(stats.parse_errors, 2u);

  // Second Start while running is an error; Stop is graceful + idempotent.
  EXPECT_FALSE(server.Start().ok());
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(HttpServerTest, OversizedHeadersRejectedOverTheWire) {
  HttpServerOptions options;
  options.max_header_bytes = 256;
  HttpServer server(options);
  server.Route("/", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());
  std::string big = "GET / HTTP/1.1\r\nX-Big: ";
  big.append(1024, 'a');
  big += "\r\n\r\n";
  EXPECT_EQ(StatusOf(RawRequest(server.port(), big)), 431);
  server.Stop();
}

TEST(HttpServerTest, StalledRequestTimesOutWith408) {
  HttpServerOptions options;
  options.request_timeout_ms = 150;
  HttpServer server(options);
  server.Route("/", [](const HttpRequest&) {
    return HttpResponse::Text(200, "ok");
  });
  ASSERT_TRUE(server.Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  // Half a request, then silence: the absolute deadline must fire.
  const char partial[] = "GET / HTTP/1.1\r\n";
  ASSERT_GT(::send(fd, partial, sizeof(partial) - 1, 0), 0);
  std::string response;
  char buf[512];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(StatusOf(response), 408);
  EXPECT_GE(server.stats().timeouts, 1u);
  server.Stop();
}

TEST(HttpServerTest, ShedsWith503AtSaturation) {
  HttpServerOptions options;
  options.worker_threads = 1;
  options.max_queued_connections = 1;
  options.request_timeout_ms = 30000;  // the blocked handler must not 408
  HttpServer server(options);
  std::atomic<bool> release{false};
  std::atomic<int> entered{0};
  server.Route("/slow", [&release, &entered](const HttpRequest&) {
    entered.fetch_add(1, std::memory_order_acq_rel);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return HttpResponse::Text(200, "done");
  });
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single worker deterministically: send a request on a raw
  // socket and wait until the handler is inside it.
  std::thread c1([&] { EXPECT_EQ(StatusOf(Get(server.port(), "/slow")), 200); });
  for (int i = 0; i < 5000 && entered.load(std::memory_order_acquire) < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(entered.load(std::memory_order_acquire), 1);

  // Fill the one-slot queue and wait until the accept loop has taken it.
  std::thread c2([&] { EXPECT_EQ(StatusOf(Get(server.port(), "/slow")), 200); });
  for (int i = 0; i < 5000 && server.stats().accepted < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server.stats().accepted, 2u);

  // Worker busy + queue full: the next connection is shed at the door with
  // an immediate 503 — no worker involved, no waiting.
  EXPECT_EQ(StatusOf(Get(server.port(), "/slow")), 503);
  EXPECT_GE(server.stats().saturated, 1u);

  release.store(true, std::memory_order_release);
  c1.join();
  c2.join();  // the queued connection was served, not dropped
  server.Stop();
  // Worker-served responses: c1 and c2. The shed 503 counts in saturated
  // only — it never reached a worker.
  EXPECT_GE(server.stats().served, 2u);
}

// ---- Introspection endpoints ------------------------------------------------

/// A live engine behind a serving introspection server: supermarket
/// relations, one watched continuous query with a subscriber, one applied
/// epoch.
struct ServedEngine {
  testing::SupermarketDb db;
  QueryExecutor exec{db.ctx};
  HttpServer server;

  ServedEngine() {
    for (TpRelation* rel : {&db.a, &db.b, &db.c}) {
      rel->SortFactTime();
      EXPECT_TRUE(exec.Register(*rel).ok());
    }
    Result<ContinuousQuery*> watch =
        exec.RegisterContinuous("w1", "c - (a | b)");
    EXPECT_TRUE(watch.ok());
    (*watch)->Subscribe([](const EpochDelta&) {});
    DeltaBatch batch;
    batch.Add({Value(std::string("milk"))}, Interval(12, 14), 0.5);
    EXPECT_TRUE(exec.Append("a", batch).ok());
    // One ad-hoc query so the exec metrics the goldens look for exist
    // (metrics register lazily on first use).
    EXPECT_TRUE(exec.Execute("c - (a | b)").ok());
    obs::RegisterIntrospectionEndpoints(&server, &exec);
    EXPECT_TRUE(server.Start().ok());
  }
  ~ServedEngine() { server.Stop(); }
};

TEST(HttpEndpointsTest, GoldenChecks) {
  ServedEngine engine;
  const std::uint16_t port = engine.server.port();

  const std::string metrics = Get(port, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(metrics.find("# TYPE tpset_exec_queries_total counter"),
            std::string::npos);

  // The JSON rendering serves the same scrape in the CI-validated format.
  const std::string json = Get(port, "/metrics?format=json");
  EXPECT_EQ(StatusOf(json), 200);
  EXPECT_NE(json.find("{\"name\":\"tpset_exec_queries_total\","
                      "\"type\":\"counter\""),
            std::string::npos);
  EXPECT_EQ(StatusOf(Get(port, "/metrics?format=xml")), 400);

  EXPECT_NE(Get(port, "/healthz").find("ok"), std::string::npos);
  // Append started the recorder and an executor is wired: ready.
  EXPECT_EQ(StatusOf(Get(port, "/readyz")), 200);

  const std::string flight = Get(port, "/flight");
  EXPECT_EQ(StatusOf(flight), 200);
  EXPECT_NE(flight.find("\"flight_record\":1"), std::string::npos);

  const std::string queries = Get(port, "/queries");
  EXPECT_EQ(StatusOf(queries), 200);
  EXPECT_NE(queries.find("\"name\":\"w1\""), std::string::npos);
  EXPECT_NE(queries.find("\"epochs_applied\":1"), std::string::npos);
  EXPECT_NE(queries.find("\"lag\":0"), std::string::npos);
  EXPECT_NE(queries.find("\"name\":\"a\""), std::string::npos);

  const std::string statusz = Get(port, "/statusz");
  EXPECT_EQ(StatusOf(statusz), 200);
  EXPECT_NE(statusz.find("text/html"), std::string::npos);
  EXPECT_NE(statusz.find("w1"), std::string::npos);

  EXPECT_EQ(StatusOf(Get(port, "/events?n=5")), 200);
  EXPECT_EQ(StatusOf(Get(port, "/events?n=junk")), 400);
  EXPECT_EQ(StatusOf(Get(port, "/slow")), 200);
  EXPECT_EQ(StatusOf(Get(port, "/top?window=5")), 200);
  EXPECT_EQ(StatusOf(Get(port, "/top?window=abc")), 400);
  EXPECT_EQ(StatusOf(Get(port, "/top?window=0")), 400);
}

TEST(HttpEndpointsTest, ReadyzReportsNotReadyWithoutExecutor) {
  HttpServer server;
  obs::RegisterIntrospectionEndpoints(&server, nullptr);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(StatusOf(Get(server.port(), "/healthz")), 200);
  EXPECT_EQ(StatusOf(Get(server.port(), "/readyz")), 503);
  // /queries degrades to empty catalogs, not an error.
  const std::string queries = Get(server.port(), "/queries");
  EXPECT_EQ(StatusOf(queries), 200);
  EXPECT_NE(queries.find("\"relations\":[]"), std::string::npos);
  server.Stop();
}

// The concurrency check behind the tentpole's safety claim: HTTP /metrics
// and /flight scrapes hammered from worker threads while the main thread
// applies epochs. Under the CI TSan job (this file is concurrency-labeled)
// any racy read path — registry scrape, ring CopyTrailing, dump formatting,
// the executor fence — fails here.
TEST(HttpEndpointsTest, ScrapesRaceEpochAppliesCleanly) {
  ServedEngine engine;
  const std::uint16_t port = engine.server.port();
  std::atomic<bool> stop{false};
  std::atomic<int> scrapes{0};

  std::thread metrics_scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (StatusOf(Get(port, "/metrics")) == 200) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread flight_scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (StatusOf(Get(port, "/flight")) == 200) {
        scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread state_scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Get(port, "/queries");
      Get(port, "/top?window=2");
    }
  });

  // Epochs apply while the scrapers run; every append fires the subscriber
  // and advances the rings the scrapes read.
  for (int i = 0; i < 40; ++i) {
    DeltaBatch batch;
    batch.Add({Value(std::string("beer"))},
              Interval(100 + 2 * i, 101 + 2 * i), 0.25);
    ASSERT_TRUE(engine.exec.Append(i % 2 == 0 ? "a" : "c", batch).ok());
    obs::Recorder::Global().TickOnce();
  }
  stop.store(true, std::memory_order_release);
  metrics_scraper.join();
  flight_scraper.join();
  state_scraper.join();
  EXPECT_GT(scrapes.load(std::memory_order_relaxed), 0);
}

}  // namespace
}  // namespace tpset
