// Pretty-printing (paper-style tables) and CSV persistence for TP relations.
#ifndef TPSET_RELATION_IO_H_
#define TPSET_RELATION_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// Options for PrintRelation.
struct PrintOptions {
  bool show_probability = true;     ///< add the p column (read-once valuation)
  bool ascii_lineage = false;       ///< use &,|,! instead of ∧,∨,¬
  ProbabilityMethod method = ProbabilityMethod::kReadOnce;
  std::size_t max_rows = 0;         ///< 0 = unlimited
};

/// Renders the relation as a fixed-width table in the style of the paper's
/// Fig. 1: one row per tuple with columns F..., λ, T, p.
void PrintRelation(std::ostream& os, const TpRelation& rel,
                   const PrintOptions& opts = {});

/// Convenience: PrintRelation into a string.
std::string RelationToString(const TpRelation& rel, const PrintOptions& opts = {});

/// Writes a relation as CSV. First line is a header naming the conventional
/// attributes with their types plus the fixed columns:
///   attr1:str,attr2:int,...,ts,te,p,var
/// Base-tuple rows store the variable's probability and (optional) name.
/// Only relations of base tuples (atomic lineages) can round-trip.
Status WriteCsv(const TpRelation& rel, const std::string& path);

/// Reads a CSV written by WriteCsv (or hand-authored in the same format)
/// into a new relation in `ctx`, registering one variable per row.
Result<TpRelation> ReadCsv(const std::string& path, std::shared_ptr<TpContext> ctx,
                           const std::string& relation_name);

/// Writes a derived relation (arbitrary lineage) as CSV with an ASCII
/// lineage column:
///   attr1:str,...,ts,te,lineage
/// Variable names must be stable to round-trip (anonymous variables print
/// as x<id>). String values must not contain commas.
Status WriteDerivedCsv(const TpRelation& rel, const std::string& path);

/// Reads a derived-relation CSV. Lineage expressions are parsed against the
/// variables already registered in `ctx` (load the base relations first);
/// unknown variable names are an error.
Result<TpRelation> ReadDerivedCsv(const std::string& path,
                                  std::shared_ptr<TpContext> ctx,
                                  const std::string& relation_name);

}  // namespace tpset

#endif  // TPSET_RELATION_IO_H_
