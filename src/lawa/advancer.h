// LAWA — the lineage-aware window advancer (paper Algorithm 1).
#ifndef TPSET_LAWA_ADVANCER_H_
#define TPSET_LAWA_ADVANCER_H_

#include <cstddef>
#include <vector>

#include "lawa/window.h"
#include "relation/tuple.h"

namespace tpset {

/// The advancer's complete status, detached from the input arrays. Because
/// one LAWA sweep visits (fact, time) in increasing order, this status is a
/// natural checkpoint: the incremental engine (src/incremental/) persists it
/// per fact after each epoch and later resumes the sweep over grown inputs —
/// provided the new tuples append in (start) order on their side and start
/// at or after `prev_win_te` (the fact's sweep frontier), the resumed window
/// stream equals the tail of a from-scratch sweep over the combined input.
/// Cursors are indices, not pointers, so the checkpoint survives input
/// vectors reallocating as they grow. A default-constructed checkpoint is
/// the state of a fresh advancer (resuming from it is a full sweep).
struct AdvancerCheckpoint {
  std::size_t ri = 0;
  std::size_t si = 0;
  bool r_valid = false;
  bool s_valid = false;
  TpTuple r_valid_tuple{};
  TpTuple s_valid_tuple{};
  bool have_fact = false;
  FactId curr_fact = kInvalidFact;
  TimePoint prev_win_te = -1;
  std::size_t windows_produced = 0;
};

/// Produces the stream of lineage-aware temporal windows for two
/// duplicate-free inputs sorted by (fact, start).
///
/// The advancer keeps the paper's status: the right boundary of the previous
/// window (prevWinTe), the fact currently being processed (currFact), the
/// tuple of each input valid over the current window (rValid / sValid), and
/// the next unprocessed tuple of each input (r / s, here cursor indices).
/// Each Next() call performs one LAWA invocation: it determines the left
/// boundary, loads newly-starting tuples into rValid/sValid, sets the right
/// boundary to the smallest relevant start/end point, and emits the window.
///
/// Deviations from the paper's pseudocode (defects repaired; see DESIGN.md):
///  * when neither pending tuple matches currFact, the next window group is
///    chosen by lexicographic (fact, start) order, not by start alone;
///  * minTs only considers pending tuples whose fact equals currFact (a
///    pending tuple of a different fact must not split the current window).
///
/// Complexity: each call is O(1); the total number of windows is bounded by
/// nr + ns − fd (Proposition 1), so a full sweep is O(|r| + |s|).
class LineageAwareWindowAdvancer {
 public:
  /// Both inputs must outlive the advancer, be duplicate-free and sorted by
  /// (fact, start) — see FactTimeOrder.
  LineageAwareWindowAdvancer(const std::vector<TpTuple>& r,
                             const std::vector<TpTuple>& s);

  /// Span form of the same contract: advances over r[0..nr) and s[0..ns).
  /// Used by the parallel engine to sweep one fact-range partition in place.
  LineageAwareWindowAdvancer(const TpTuple* r, std::size_t nr, const TpTuple* s,
                             std::size_t ns);

  /// One LAWA call. Returns true and fills *w if a window was produced;
  /// returns false when both inputs are exhausted and no tuple is valid.
  bool Next(LineageAwareWindow* w);

  /// status.r ≠ null: an unprocessed tuple of the left input remains.
  bool HasPendingR() const { return ri_ < nr_; }
  /// status.s ≠ null: an unprocessed tuple of the right input remains.
  bool HasPendingS() const { return si_ < ns_; }
  /// status.rValid ≠ null: a left tuple is valid past the previous window.
  bool HasValidR() const { return r_valid_; }
  /// status.sValid ≠ null: a right tuple is valid past the previous window.
  bool HasValidS() const { return s_valid_; }

  /// Windows emitted so far (for Proposition 1 checks and benchmarks).
  std::size_t windows_produced() const { return windows_produced_; }

  /// Snapshots the full status (see AdvancerCheckpoint).
  AdvancerCheckpoint Checkpoint() const;

  /// Restores a status saved from an earlier advancer over a *prefix* of
  /// this advancer's inputs: the first ckpt.ri / ckpt.si tuples of each side
  /// must be unchanged (new tuples only appended after them). Subsequent
  /// Next() calls then continue the sweep exactly where the checkpointed one
  /// stopped.
  void Restore(const AdvancerCheckpoint& ckpt);

 private:
  const TpTuple* r_;
  const TpTuple* s_;
  std::size_t nr_;
  std::size_t ns_;
  std::size_t ri_ = 0;
  std::size_t si_ = 0;
  bool r_valid_ = false;
  bool s_valid_ = false;
  TpTuple r_valid_tuple_{};
  TpTuple s_valid_tuple_{};
  bool have_fact_ = false;
  FactId curr_fact_ = kInvalidFact;
  TimePoint prev_win_te_ = -1;
  std::size_t windows_produced_ = 0;
};

}  // namespace tpset

#endif  // TPSET_LAWA_ADVANCER_H_
