// Mini query shell for TP set queries.
//
// Usage:
//   query_repl [--threads=N] [--serve=PORT] [name=file.csv ...]
//
// Loads the given CSV relations (see relation/io.h for the format) into one
// context — or, with no arguments, the paper's supermarket relations a, b,
// c — then reads one query per line from stdin and prints the answer with
// exact probabilities. With --threads=N (or the .threads command) queries
// run on the partitioned parallel engine: N pool threads per set operation
// and concurrent sibling subtrees, bit-identical to sequential evaluation.
// Commands:
//   \list                               show registered relations and watches
//   \show <name>                        print a relation
//   \threads [N]                        show or set the thread count
//   \append <rel> <fact> <ts> <te> <p>  append one tuple (one epoch); every
//                                       watch reading <rel> prints its delta
//   \watch <name> <query>               register a continuous query; appends
//                                       then stream (inserted, retracted)
//                                       deltas per epoch
//   \explain <name>                     continuous plan with resume/resweep
//                                       and storage counters
//   \retain <rel> <watermark>           advance the relation's retention
//                                       watermark and compact: tuples whose
//                                       interval ends at or below it are
//                                       retired, continuous queries rebase
//   \compact <rel>                      fold pending append runs into the
//                                       base level (applies the watermark)
//   \metrics [prefix]                   scrape the process-wide metrics
//                                       registry (Prometheus text format),
//                                       optionally filtered to names with
//                                       the given prefix
//   \top [window_sec]                   live per-metric rates over the
//                                       flight recorder's ring history
//   \events [n]                         recent structured events
//   \slow                               retained slow-query exemplars
//   \dump <path>                        write the flight record as JSON
//   \serve [port|stop]                  start (or stop) the introspection
//                                       HTTP server; port 0 binds an
//                                       ephemeral port, echoed on start.
//                                       --serve=PORT does this at startup
//   \profile [on|off]                   show or toggle profiling: when on,
//                                       every query and \append also prints
//                                       its trace-span tree (wall/CPU per
//                                       phase, LAWA counters)
//   \quit                               exit
// (.cmd spellings of every command are accepted too; \help lists them.)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "lineage/eval.h"
#include "net/http_server.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/http_endpoints.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "query/analyzer.h"
#include "query/executor.h"
#include "query/explain.h"
#include "query/parser.h"
#include "relation/io.h"

using namespace tpset;

namespace {

void AddSupermarketRelations(const std::shared_ptr<TpContext>& ctx,
                             QueryExecutor* exec) {
  struct Row {
    const char* rel;
    const char* product;
    const char* var;
    TimePoint ts, te;
    double p;
  };
  const Row rows[] = {
      {"a", "milk", "a1", 2, 10, 0.3}, {"a", "chips", "a2", 4, 7, 0.8},
      {"a", "dates", "a3", 1, 3, 0.6}, {"b", "milk", "b1", 5, 9, 0.6},
      {"b", "chips", "b2", 3, 6, 0.9}, {"c", "milk", "c1", 1, 4, 0.6},
      {"c", "milk", "c2", 6, 8, 0.7},  {"c", "chips", "c3", 4, 5, 0.7},
      {"c", "chips", "c4", 7, 9, 0.8},
  };
  TpRelation a(ctx, Schema::SingleString("Product"), "a");
  TpRelation b(ctx, Schema::SingleString("Product"), "b");
  TpRelation c(ctx, Schema::SingleString("Product"), "c");
  for (const Row& row : rows) {
    TpRelation* rel = row.rel[0] == 'a' ? &a : row.rel[0] == 'b' ? &b : &c;
    Result<VarId> added = rel->AddBase({Value(std::string(row.product))},
                                       Interval(row.ts, row.te), row.p, row.var);
    if (!added.ok()) {
      std::cerr << added.status().ToString() << '\n';
      std::exit(1);
    }
  }
  for (TpRelation* rel : {&a, &b, &c}) {
    rel->SortFactTime();  // Register rejects unsorted relations
    Status st = exec->Register(*rel);
    if (!st.ok()) {
      std::cerr << st.ToString() << '\n';
      std::exit(1);
    }
  }
  std::cout << "Loaded demo relations a, b, c (paper Fig. 1a). Try:\n"
               "  c - (a | b)\n";
}

// Parses a single-attribute fact value against the relation's schema.
// Numeric attributes are parsed strictly: trailing garbage is an error, not
// a silent fact 0.
Result<Fact> ParseFact(const Schema& schema, const std::string& text) {
  if (schema.num_attributes() != 1) {
    return Status::NotSupported(
        "\\append handles single-attribute schemas only");
  }
  char* end = nullptr;
  switch (schema.types()[0]) {
    case ValueType::kInt64: {
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("'" + text + "' is not an integer");
      }
      return Fact{Value(static_cast<std::int64_t>(v))};
    }
    case ValueType::kDouble: {
      const double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("'" + text + "' is not a number");
      }
      return Fact{Value(v)};
    }
    case ValueType::kString:
      return Fact{Value(text)};
  }
  return Status::InvalidArgument("unknown attribute type");
}

constexpr const char* kHelp =
    "  \\list                               relations and watches\n"
    "  \\show <name>                        print a relation\n"
    "  \\threads [N]                        show or set the thread count\n"
    "  \\append <rel> <fact> <ts> <te> <p>  append one tuple (one epoch)\n"
    "  \\watch <name> <query>               register a continuous query\n"
    "  \\explain <name>                     continuous plan with counters\n"
    "  \\retain <rel> <watermark>           advance retention, compact\n"
    "  \\compact <rel>                      fold append runs into the base\n"
    "  \\metrics [prefix]                   scrape the metrics registry\n"
    "  \\top [window_sec]                   live rates from ring history\n"
    "  \\events [n]                         recent structured events\n"
    "  \\slow                               retained slow-query exemplars\n"
    "  \\dump <path>                        write the flight-record JSON\n"
    "  \\serve [port|stop]                  start/stop the introspection\n"
    "                                      HTTP server (port 0 = ephemeral)\n"
    "  \\profile [on|off]                   print trace spans per query\n"
    "  \\quit                               exit\n";

// \top: one line per tracked metric with ring samples in the window,
// grouped by subsystem (the second `_`-separated component of the name).
void PrintTop(std::chrono::milliseconds window) {
  const obs::Recorder& rec = obs::Recorder::Global();
  if (rec.ticks() < 2) {
    std::cout << "(flight recorder warming up: " << rec.ticks()
              << " collector ticks so far)\n";
    return;
  }
  std::printf("%-44s %10s %12s %12s\n", "metric", "last", "rate/s", "p99");
  std::string current_subsystem;
  for (const std::string& name : rec.TrackedMetrics()) {
    Result<obs::HistoryStats> h = rec.History(name, window);
    if (!h.ok() || h->samples < 2) continue;
    // tpset_<subsystem>_<rest>
    const std::size_t first = name.find('_');
    const std::size_t second =
        first == std::string::npos ? std::string::npos
                                   : name.find('_', first + 1);
    const std::string subsystem =
        second == std::string::npos
            ? std::string("other")
            : name.substr(first + 1, second - first - 1);
    if (subsystem != current_subsystem) {
      std::printf("-- %s\n", subsystem.c_str());
      current_subsystem = subsystem;
    }
    if (h->kind == obs::MetricSnapshot::Kind::kHistogram) {
      std::printf("%-44s %10lld %12.2f %12.0f\n", name.c_str(),
                  static_cast<long long>(h->last), h->rate_per_sec, h->p99);
    } else {
      std::printf("%-44s %10lld %12.2f %12s\n", name.c_str(),
                  static_cast<long long>(h->last), h->rate_per_sec, "-");
    }
  }
  std::printf("(window %.1fs, tick %lldms, %llu ticks)\n",
              static_cast<double>(window.count()) / 1000.0,
              static_cast<long long>(rec.options().tick.count()),
              static_cast<unsigned long long>(rec.ticks()));
}

void PrintEvents(std::size_t max_events) {
  const std::vector<obs::Event> events =
      obs::EventLog::Global().Snapshot(max_events);
  if (events.empty()) {
    std::cout << "(no events)\n";
    return;
  }
  for (const obs::Event& e : events) {
    std::printf("%12lld  #%-5llu %-5s %-8s %s\n",
                static_cast<long long>(e.ts_unix_us),
                static_cast<unsigned long long>(e.seq),
                obs::SeverityName(e.severity), e.subsystem, e.message);
  }
}

void PrintSlowQueries() {
  const std::vector<obs::SlowExemplar> slow =
      obs::Recorder::Global().SlowQueries();
  if (slow.empty()) {
    std::cout << "(no slow executions retained; threshold query="
              << obs::Recorder::Global().SlowThresholdMs("query")
              << "ms epoch=" << obs::Recorder::Global().SlowThresholdMs("epoch")
              << "ms)\n";
    return;
  }
  for (const obs::SlowExemplar& e : slow) {
    std::printf("#%-5llu %-6s %10.2fms (threshold %.2fms)  %s\n",
                static_cast<unsigned long long>(e.seq), e.kind.c_str(),
                e.wall_ms, e.threshold_ms, e.label.c_str());
  }
  std::cout << "(profiles retained as JSON; \\dump <path> exports them)\n";
}

void PrintDelta(const std::string& watch_name, const EpochDelta& d,
                const TpContext& ctx) {
  std::cout << "[" << watch_name << "] epoch " << d.epoch << ": +"
            << d.delta.inserted.size() << " -" << d.delta.retracted.size()
            << '\n';
  auto print_tuple = [&](char sign, const TpTuple& t) {
    std::cout << "  " << sign << ' ' << ToString(ctx.facts().Get(t.fact))
              << "  T=[" << t.t.start << ',' << t.t.end << ")  p="
              << ProbabilityReadOnce(ctx.lineage(), t.lineage, ctx.vars())
              << '\n';
  };
  for (const TpTuple& t : d.delta.retracted) print_tuple('-', t);
  for (const TpTuple& t : d.delta.inserted) print_tuple('+', t);
}

// Starts (or replaces nothing — at most one runs) the introspection server
// on `port`, wiring every obs endpoint to `exec`. Prints the bound address
// (meaningful with port 0) or the failure.
std::unique_ptr<net::HttpServer> StartServing(std::uint16_t port,
                                              const QueryExecutor* exec) {
  net::HttpServerOptions options;
  options.port = port;
  auto server = std::make_unique<net::HttpServer>(options);
  obs::RegisterIntrospectionEndpoints(server.get(), exec);
  Status st = server->Start();
  if (!st.ok()) {
    std::cout << st.ToString() << '\n';
    return nullptr;
  }
  std::cout << "serving on http://" << server->address()
            << " (endpoints: /statusz /metrics /flight /queries ...)\n";
  return server;
}

}  // namespace

int main(int argc, char** argv) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  std::vector<std::string> names;
  std::size_t num_threads = 1;
  bool profile_on = false;
  bool serve = false;
  std::uint16_t serve_port = 0;

  std::vector<std::string> rel_args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      long v = std::atol(arg.c_str() + 10);
      if (v < 1) {
        std::cerr << "--threads expects a positive count, got '" << arg << "'\n";
        return 1;
      }
      num_threads = static_cast<std::size_t>(v);
    } else if (arg.rfind("--serve=", 0) == 0) {
      const char* text = arg.c_str() + 8;
      char* end = nullptr;
      const long v = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || v < 0 || v > 65535) {
        std::cerr << "--serve expects a port in [0, 65535], got '" << arg
                  << "'\n";
        return 1;
      }
      serve = true;
      serve_port = static_cast<std::uint16_t>(v);
    } else {
      rel_args.push_back(arg);
    }
  }

  if (rel_args.empty()) {
    AddSupermarketRelations(ctx, &exec);
    names = {"a", "b", "c"};
  } else {
    for (const std::string& arg : rel_args) {
      std::size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        std::cerr << "expected name=file.csv, got '" << arg << "'\n";
        return 1;
      }
      std::string name = arg.substr(0, eq);
      Result<TpRelation> rel = ReadCsv(arg.substr(eq + 1), ctx, name);
      if (!rel.ok()) {
        std::cerr << rel.status().ToString() << '\n';
        return 1;
      }
      rel->SortFactTime();  // Register rejects unsorted relations
      Status st = exec.Register(*rel);
      if (!st.ok()) {
        std::cerr << st.ToString() << '\n';
        return 1;
      }
      names.push_back(name);
      std::cout << "loaded " << name << " (" << rel->size() << " tuples)\n";
    }
  }
  if (num_threads > 1) {
    std::cout << "parallel execution: " << num_threads << " threads\n";
  }

  // The shell is interactive telemetry's natural home: start the flight
  // recorder's collector up front so \top has ring history immediately.
  // Env knobs (TPSET_OBS_SAMPLE_MS, TPSET_OBS_RING_CAP) are validated, not
  // clamped — a typo'd config refuses to run rather than silently sampling
  // at the wrong rate.
  Result<obs::RecorderOptions> recorder_options = obs::RecorderOptions::FromEnv();
  if (!recorder_options.ok()) {
    std::cerr << recorder_options.status().ToString() << '\n';
    return 1;
  }
  Status recorder_started = obs::Recorder::Global().Start(*recorder_options);
  if (!recorder_started.ok()) {
    std::cerr << recorder_started.ToString() << '\n';
    return 1;
  }

  std::unique_ptr<net::HttpServer> server;
  if (serve) {
    server = StartServing(serve_port, &exec);
    if (server == nullptr) return 1;
  }

  std::string line;
  std::cout << "tpset> " << std::flush;
  while (std::getline(std::cin, line)) {
    // Commands accept both \cmd and .cmd spellings.
    if (!line.empty() && line[0] == '.') line[0] = '\\';
    if (line == "\\quit" || line == "\\q") break;
    if (line.empty()) {
      std::cout << "tpset> " << std::flush;
      continue;
    }
    if (line == "\\list") {
      for (const std::string& n : names) {
        std::cout << "  " << n;
        Result<const StoredRelation*> stored = exec.FindStored(n);
        if (stored.ok()) {
          std::cout << "  (" << (*stored)->size() << " tuples, runs="
                    << (*stored)->run_count() << ", gen="
                    << (*stored)->generation();
          if ((*stored)->compaction_debt() > 0) {
            std::cout << ", debt=" << (*stored)->compaction_debt();
          }
          if ((*stored)->has_watermark()) {
            std::cout << ", watermark=" << (*stored)->watermark();
          }
          std::cout << ")";
        }
        std::cout << '\n';
      }
      for (const auto& [wname, cq] : exec.continuous()) {
        std::cout << "  watch " << wname << ": " << cq->text() << "  (epoch "
                  << cq->last_epoch() << ", " << cq->size() << " tuples)\n";
      }
    } else if (line.rfind("\\append ", 0) == 0) {
      std::istringstream args(line.substr(8));
      std::string rel, fact_text;
      TimePoint ts = 0, te = 0;
      double p = 0.0;
      if (!(args >> rel >> fact_text >> ts >> te >> p)) {
        std::cout << "usage: \\append <rel> <fact> <ts> <te> <p>\n";
      } else {
        Result<const TpRelation*> target = exec.Find(rel);
        if (!target.ok()) {
          std::cout << target.status().ToString() << '\n';
        } else {
          Result<Fact> fact = ParseFact((*target)->schema(), fact_text);
          if (!fact.ok()) {
            std::cout << fact.status().ToString() << '\n';
          } else {
            DeltaBatch batch;
            batch.Add(*fact, Interval(ts, te), p);
            Result<EpochId> epoch = exec.Append(rel, batch);
            if (!epoch.ok()) {
              std::cout << epoch.status().ToString() << '\n';
            } else {
              std::cout << "epoch " << *epoch << ": " << rel << " += "
                        << ToString(*fact) << " T=[" << ts << ',' << te
                        << ")\n";
              if (profile_on) {
                // Each watch that read <rel> just applied this epoch; its
                // ContinuousQuery keeps the span tree of that propagation.
                for (const auto& [wname, cq] : exec.continuous()) {
                  if (cq->last_epoch() == *epoch) {
                    std::cout << "[" << wname << "] epoch profile:\n"
                              << cq->last_profile().Render();
                  }
                }
              }
            }
          }
        }
      }
    } else if (line.rfind("\\watch ", 0) == 0) {
      std::istringstream args(line.substr(7));
      std::string wname;
      args >> wname;
      std::string query;
      std::getline(args, query);
      if (wname.empty() || query.find_first_not_of(' ') == std::string::npos) {
        std::cout << "usage: \\watch <name> <query>\n";
      } else {
        ContinuousOptions copt;  // reuse the repl thread setting for deltas
        copt.num_threads = num_threads;
        Result<ContinuousQuery*> cq = exec.RegisterContinuous(wname, query, copt);
        if (!cq.ok()) {
          std::cout << cq.status().ToString() << '\n';
        } else {
          const std::string registered_name = wname;
          const TpContext* ctx_ptr = ctx.get();
          (*cq)->Subscribe([registered_name, ctx_ptr](const EpochDelta& d) {
            PrintDelta(registered_name, d, *ctx_ptr);
          });
          std::cout << "watching " << registered_name << ": " << (*cq)->text()
                    << "  (" << (*cq)->size() << " tuples)\n";
        }
      }
    } else if (line.rfind("\\explain ", 0) == 0) {
      Result<std::string> plan = ExplainContinuous(exec, line.substr(9));
      if (plan.ok()) {
        std::cout << *plan;
      } else {
        std::cout << plan.status().ToString() << '\n';
      }
    } else if (line.rfind("\\retain ", 0) == 0) {
      std::istringstream args(line.substr(8));
      std::string rel;
      TimePoint watermark = 0;
      if (!(args >> rel >> watermark)) {
        std::cout << "usage: \\retain <rel> <watermark>\n";
      } else {
        Result<std::size_t> retired = exec.Retain(rel, watermark);
        if (!retired.ok()) {
          std::cout << retired.status().ToString() << '\n';
        } else {
          const StoredRelation* stored = exec.FindStored(rel).value();
          std::cout << "retained " << rel << " to watermark " << watermark
                    << ": retired " << *retired << " tuples, "
                    << stored->size() << " resident\n";
        }
      }
    } else if (line.rfind("\\compact ", 0) == 0) {
      const std::string rel = line.substr(9);
      Status st = exec.Compact(rel);
      if (!st.ok()) {
        std::cout << st.ToString() << '\n';
      } else {
        const StoredRelation* stored = exec.FindStored(rel).value();
        const StorageStats& ss = stored->stats();
        std::cout << "compacted " << rel << ": " << stored->size()
                  << " tuples, runs=" << stored->run_count()
                  << ", runs_merged=" << ss.runs_merged
                  << ", tuples_retired=" << ss.tuples_retired << '\n';
      }
    } else if (line == "\\help" || line == "\\h") {
      std::cout << kHelp;
    } else if (line == "\\metrics" || line.rfind("\\metrics ", 0) == 0) {
      const std::string prefix =
          line.size() > 9 ? line.substr(9) : std::string();
      obs::MetricsSnapshot snap = obs::TakeScrape().snapshot;
      if (!prefix.empty()) {
        std::erase_if(snap.metrics, [&prefix](const obs::MetricSnapshot& m) {
          return m.name.rfind(prefix, 0) != 0;
        });
        if (snap.metrics.empty()) {
          std::cout << "(no metrics with prefix '" << prefix << "')\n";
        }
      }
      std::cout << obs::PrometheusText(snap);
    } else if (line == "\\top" || line.rfind("\\top ", 0) == 0) {
      long window_sec =
          line.size() > 5 ? std::atol(line.c_str() + 5) : 10;
      if (window_sec < 1) window_sec = 10;
      PrintTop(std::chrono::milliseconds(window_sec * 1000));
    } else if (line == "\\events" || line.rfind("\\events ", 0) == 0) {
      long n = line.size() > 8 ? std::atol(line.c_str() + 8) : 20;
      if (n < 1) n = 20;
      PrintEvents(static_cast<std::size_t>(n));
    } else if (line == "\\slow") {
      PrintSlowQueries();
    } else if (line.rfind("\\dump ", 0) == 0) {
      const std::string path = line.substr(6);
      Status st = obs::Recorder::Global().DumpNow(path);
      if (st.ok()) {
        std::cout << "flight record written to " << path << '\n';
      } else {
        std::cout << st.ToString() << '\n';
      }
    } else if (line == "\\serve" || line.rfind("\\serve ", 0) == 0) {
      const std::string arg = line.size() > 7 ? line.substr(7) : std::string();
      if (arg == "stop") {
        if (server == nullptr) {
          std::cout << "not serving\n";
        } else {
          server->Stop();
          server.reset();
          std::cout << "introspection server stopped\n";
        }
      } else if (server != nullptr) {
        std::cout << "already serving on http://" << server->address()
                  << " (\\serve stop first)\n";
      } else {
        char* end = nullptr;
        const long v = arg.empty() ? 0 : std::strtol(arg.c_str(), &end, 10);
        if ((!arg.empty() && (end == arg.c_str() || *end != '\0')) || v < 0 ||
            v > 65535) {
          std::cout << "usage: \\serve [port|stop] (port 0 = ephemeral)\n";
        } else {
          server = StartServing(static_cast<std::uint16_t>(v), &exec);
        }
      }
    } else if (line == "\\profile" || line.rfind("\\profile ", 0) == 0) {
      const std::string arg =
          line.size() > 9 ? line.substr(9) : std::string();
      if (arg == "on") {
        profile_on = true;
      } else if (arg == "off") {
        profile_on = false;
      } else if (!arg.empty()) {
        std::cout << "usage: \\profile [on|off]\n";
      }
      std::cout << "profile: " << (profile_on ? "on" : "off") << '\n';
    } else if (line == "\\threads") {
      std::cout << "threads: " << num_threads << '\n';
    } else if (line.rfind("\\threads ", 0) == 0) {
      long v = std::atol(line.c_str() + 9);
      if (v < 1) {
        std::cout << "usage: \\threads N (N >= 1; 1 = sequential)\n";
      } else {
        num_threads = static_cast<std::size_t>(v);
        std::cout << "threads: " << num_threads
                  << (num_threads == 1 ? " (sequential)" : "") << '\n';
      }
    } else if (line.rfind("\\show ", 0) == 0) {
      Result<const TpRelation*> rel = exec.Find(line.substr(6));
      if (rel.ok()) {
        PrintRelation(std::cout, **rel);
      } else {
        std::cout << rel.status().ToString() << '\n';
      }
    } else {
      Result<QueryPtr> parsed = ParseQuery(line);
      if (!parsed.ok()) {
        std::cout << parsed.status().ToString() << '\n';
      } else {
        ExecOptions options;
        options.num_threads = num_threads;
        obs::QueryProfile profile("query");
        if (profile_on) options.profile = &profile;
        Result<TpRelation> answer = exec.Execute(**parsed, options);
        if (!answer.ok()) {
          std::cout << answer.status().ToString() << '\n';
        } else {
          PrintOptions opts;
          // Repeating queries need the exact valuation (Cor. 1 applies only
          // to non-repeating ones).
          opts.method = IsNonRepeating(**parsed) ? ProbabilityMethod::kReadOnce
                                                 : ProbabilityMethod::kExact;
          answer->set_name(QueryToString(**parsed));
          PrintRelation(std::cout, *answer, opts);
          if (profile_on) std::cout << profile.Render();
        }
      }
    }
    std::cout << "tpset> " << std::flush;
  }
  std::cout << '\n';
  return 0;
}
