#include "common/value.h"

#include <functional>
#include <ostream>
#include <sstream>

namespace tpset {

ValueType TypeOf(const Value& v) {
  return static_cast<ValueType>(v.index());
}

std::string ToString(const Value& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string ToString(const Fact& f) {
  if (f.size() == 1) return ToString(f[0]);
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (i > 0) os << ", ";
    os << f[i];
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt64:
      return os << std::get<std::int64_t>(v);
    case ValueType::kDouble:
      return os << std::get<double>(v);
    case ValueType::kString:
      return os << '\'' << std::get<std::string>(v) << '\'';
  }
  return os;
}

void HashCombine(std::size_t& seed, std::size_t h) {
  seed ^= h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

std::size_t HashValue(const Value& v) {
  std::size_t seed = v.index();
  switch (TypeOf(v)) {
    case ValueType::kInt64:
      HashCombine(seed, std::hash<std::int64_t>()(std::get<std::int64_t>(v)));
      break;
    case ValueType::kDouble:
      HashCombine(seed, std::hash<double>()(std::get<double>(v)));
      break;
    case ValueType::kString:
      HashCombine(seed, std::hash<std::string>()(std::get<std::string>(v)));
      break;
  }
  return seed;
}

std::size_t HashFact(const Fact& f) {
  std::size_t seed = f.size();
  for (const Value& v : f) HashCombine(seed, HashValue(v));
  return seed;
}

Schema::Schema(std::vector<std::string> names, std::vector<ValueType> types)
    : names_(std::move(names)), types_(std::move(types)) {}

Schema Schema::SingleString(const std::string& name) {
  return Schema({name}, {ValueType::kString});
}

Schema Schema::SingleInt(const std::string& name) {
  return Schema({name}, {ValueType::kInt64});
}

Status Schema::Validate(const Fact& f) const {
  if (f.size() != types_.size()) {
    return Status::InvalidArgument(
        "fact arity " + std::to_string(f.size()) + " does not match schema arity " +
        std::to_string(types_.size()));
  }
  for (std::size_t i = 0; i < f.size(); ++i) {
    if (TypeOf(f[i]) != types_[i]) {
      return Status::InvalidArgument("attribute " + names_[i] + " has wrong type");
    }
  }
  return Status::OK();
}

bool Schema::CompatibleWith(const Schema& other) const {
  return types_ == other.types_;
}

}  // namespace tpset
