// Introspection endpoints: the observability plane over HTTP.
//
// Wires the engine's existing read-side surfaces — metric scrapes, flight
// records, event/slow-query rings, executor introspection — onto a
// net::HttpServer. Every handler reads through a path that is already safe
// concurrent with the engine (registry Scrape, ring CopyTrailing, the
// executor's write fence); no handler takes a lock an Append hot path holds
// beyond the fence itself, and none mutate engine state.
//
// Endpoint catalog (DESIGN.md "Introspection server" is the operator-facing
// version):
//   GET /metrics            Prometheus text (one registry scrape);
//                           ?format=json renders the same scrape as the
//                           JSON-lines export CI validates
//   GET /healthz            liveness: 200 while the server thread is up
//   GET /readyz             readiness: 200 once an executor is wired AND the
//                           flight-recorder collector is running; 503 else
//   GET /flight             JSON flight record (schema: \dump /
//                           scripts/flight_record_schema.json)
//   GET /events?n=N         last N structured events (default 50) as JSON
//   GET /slow               retained slow-execution exemplars as JSON
//   GET /top?window=SEC     windowed rates/p99 per tracked metric from the
//                           recorder rings (default 10s)
//   GET /queries            stored relations + continuous queries with
//                           per-subscription lag, low watermark, epochs
//   GET /statusz            human-readable HTML summary of all of the above
//
// Handlers run on HTTP worker threads. The executor's Introspect* calls take
// the write fence, so they must never be reached from a continuous-query
// subscriber callback (which fires inside the fence) — serving HTTP from a
// subscriber callback would deadlock. The server owns no engine state; the
// engine owns no server state: the caller keeps `executor` alive while the
// server runs.
#ifndef TPSET_OBS_HTTP_ENDPOINTS_H_
#define TPSET_OBS_HTTP_ENDPOINTS_H_

#include "net/http_server.h"

namespace tpset {
class QueryExecutor;
}  // namespace tpset

namespace tpset::obs {

/// Registers every introspection route on `server` (call before Start).
/// `executor` may be null: metrics/flight/events/slow/top still serve, while
/// /readyz reports 503 and /queries serves empty catalogs. When non-null it
/// must outlive the server's serving lifetime.
void RegisterIntrospectionEndpoints(net::HttpServer* server,
                                    const QueryExecutor* executor);

}  // namespace tpset::obs

#endif  // TPSET_OBS_HTTP_ENDPOINTS_H_
