// Half-open time intervals [start, end) as used for the temporal attribute T.
#ifndef TPSET_COMMON_INTERVAL_H_
#define TPSET_COMMON_INTERVAL_H_

#include <algorithm>
#include <iosfwd>
#include <string>

#include "common/types.h"

namespace tpset {

/// A half-open interval [start, end) over the discrete time domain.
///
/// The paper writes intervals as [Ts, Te); a tuple is valid at every time
/// point t with start <= t < end. An interval is well formed iff start < end
/// (TP relations never carry empty intervals).
struct Interval {
  TimePoint start = 0;
  TimePoint end = 0;

  constexpr Interval() = default;
  constexpr Interval(TimePoint s, TimePoint e) : start(s), end(e) {}

  /// True iff the interval contains at least one time point.
  constexpr bool IsValid() const { return start < end; }

  /// Number of time points covered.
  constexpr TimePoint Duration() const { return end - start; }

  /// True iff time point t lies inside [start, end).
  constexpr bool Contains(TimePoint t) const { return start <= t && t < end; }

  /// True iff this interval fully contains `other`.
  constexpr bool Contains(const Interval& other) const {
    return start <= other.start && other.end <= end;
  }

  /// True iff the two intervals share at least one time point.
  constexpr bool Overlaps(const Interval& other) const {
    return start < other.end && other.start < end;
  }

  /// True iff this interval ends exactly where `other` starts or vice versa.
  constexpr bool Adjacent(const Interval& other) const {
    return end == other.start || other.end == start;
  }

  friend constexpr bool operator==(const Interval& a, const Interval& b) {
    return a.start == b.start && a.end == b.end;
  }
  friend constexpr bool operator!=(const Interval& a, const Interval& b) {
    return !(a == b);
  }
  /// Lexicographic (start, end) order.
  friend constexpr bool operator<(const Interval& a, const Interval& b) {
    return a.start != b.start ? a.start < b.start : a.end < b.end;
  }
};

/// Intersection of two intervals; returns an invalid interval (start >= end)
/// when they do not overlap.
constexpr Interval Intersect(const Interval& a, const Interval& b) {
  return Interval(std::max(a.start, b.start), std::min(a.end, b.end));
}

/// Smallest interval covering both inputs.
constexpr Interval Hull(const Interval& a, const Interval& b) {
  return Interval(std::min(a.start, b.start), std::max(a.end, b.end));
}

/// Renders "[start,end)".
std::string ToString(const Interval& iv);

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace tpset

#endif  // TPSET_COMMON_INTERVAL_H_
