// Ablations of the design choices DESIGN.md calls out:
//  1. Sorting: comparison (O(n log n)) vs counting/radix (O(n)) — §VI-B's
//     note that counting-based sorting makes the whole operation linear.
//  2. Fused vs decoupled λ-filtering: LAWA filters windows the moment they
//     are produced; the decoupled variant materializes all windows first
//     and filters afterwards (the "two separate steps" of prior work).
//  3. Lineage hash-consing on vs off for the output-construction path.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/dip.h"
#include "bench/harness.h"
#include "datagen/synthetic.h"
#include "lawa/advancer.h"
#include "lawa/set_ops.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

// Decoupled pipeline: stage 1 materializes every window, stage 2 filters
// and concatenates. Same output as LawaSetOp(kIntersect, ...).
TpRelation DecoupledIntersect(const TpRelation& r, const TpRelation& s) {
  std::vector<TpTuple> rs = r.tuples(), ss = s.tuples();
  SortTuples(&rs, SortMode::kComparison);
  SortTuples(&ss, SortMode::kComparison);
  std::vector<LineageAwareWindow> windows;
  LineageAwareWindowAdvancer adv(rs, ss);
  LineageAwareWindow w;
  while (adv.Next(&w)) windows.push_back(w);

  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(), "decoupled");
  for (const LineageAwareWindow& win : windows) {
    if (win.lr != kNullLineage && win.ls != kNullLineage) {
      out.AddDerived(win.fact, win.t, mgr.ConcatAnd(win.lr, win.ls));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::size_t n = Scaled(10000000, scale);
  std::printf("# Ablations (n=%zu, 1 fact, OF~0.6)\n", n);
  std::printf("ablation,variant,runtime_ms\n");

  // --- 1. sort mode ---
  {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(0xAB1A71);
    SyntheticPairSpec spec = TableIIIPreset(0.6);
    spec.num_tuples = n;
    spec.num_facts = 64;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    double cmp_ms = TimeMs([&] {
      TpRelation out = LawaSetOp(SetOpKind::kIntersect, r, s, SortMode::kComparison);
      (void)out;
    });
    std::printf("sort,comparison,%.3f\n", cmp_ms);
    double cnt_ms = TimeMs([&] {
      TpRelation out = LawaSetOp(SetOpKind::kIntersect, r, s, SortMode::kCounting);
      (void)out;
    });
    std::printf("sort,counting,%.3f\n", cnt_ms);
    std::fflush(stdout);
  }

  // --- 2. fused vs decoupled λ-filter ---
  {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(0xAB1A72);
    SyntheticPairSpec spec = TableIIIPreset(0.6);
    spec.num_tuples = n;
    spec.num_facts = 1;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    double fused_ms = TimeMs([&] {
      TpRelation out = LawaIntersect(r, s);
      (void)out;
    });
    std::printf("filter,fused,%.3f\n", fused_ms);
    double decoupled_ms = TimeMs([&] {
      TpRelation out = DecoupledIntersect(r, s);
      (void)out;
    });
    std::printf("filter,decoupled,%.3f\n", decoupled_ms);
    std::fflush(stdout);
  }

  // --- extra baseline: DIP (related-work ref [15], not in Table II) ---
  // §II claims disjoint-interval partitioning does not pay off for
  // duplicate-free TP relations: per fact the input is already disjoint,
  // so DIP's partition count is driven by cross-fact overlap and its merge
  // passes scan pairs the fact filter rejects.
  for (std::size_t facts : {std::size_t{1}, std::size_t{64}}) {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(0xAB1A74);
    SyntheticPairSpec spec = TableIIIPreset(0.6);
    spec.num_tuples = n / 10;  // DIP's partition-pair passes are pricey
    spec.num_facts = facts;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    double lawa_ms = TimeMs([&] {
      TpRelation out = LawaIntersect(r, s);
      (void)out;
    });
    DipStats dip_stats;
    double dip_ms = TimeMs([&] {
      Result<TpRelation> out = DipSetOp(SetOpKind::kIntersect, r, s, &dip_stats);
      (void)out;
    });
    std::printf("dip,facts=%zu:LAWA,%.3f\n", facts, lawa_ms);
    std::printf("dip,facts=%zu:DIP(partR=%zu),%.3f\n", facts,
                dip_stats.partitions_r, dip_ms);
    std::fflush(stdout);
  }

  // --- 3. lineage hash-consing during output construction ---
  for (bool consing : {false, true}) {
    auto ctx = std::make_shared<TpContext>(consing);
    Rng rng(0xAB1A73);
    SyntheticPairSpec spec = TableIIIPreset(0.6);
    spec.num_tuples = n;
    spec.num_facts = 1;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    double ms = TimeMs([&] {
      TpRelation out = LawaUnion(r, s);
      (void)out;
    });
    std::printf("lineage,%s,%.3f\n", consing ? "hash-consing" : "append-only", ms);
    std::fflush(stdout);
  }
  return 0;
}
