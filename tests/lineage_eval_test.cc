// Probability evaluators: read-once exactness, Shannon expansion on shared
// variables, Monte-Carlo convergence, and cross-validation among the three.
#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "lineage/eval.h"
#include "lineage/lineage.h"
#include "lineage/parse.h"

namespace tpset {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  LineageId Parse(const std::string& text) {
    Result<LineageId> r = ParseLineage(text, &mgr_, vars_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  LineageManager mgr_;
  VarTable vars_;
  VarId a_ = *vars_.AddNamed("a", 0.3);
  VarId b_ = *vars_.AddNamed("b", 0.6);
  VarId c_ = *vars_.AddNamed("c", 0.7);
  VarId d_ = *vars_.AddNamed("d", 0.5);
};

TEST_F(EvalTest, AssignmentEvaluation) {
  LineageId f = Parse("a & !(b | c)");
  EXPECT_TRUE(EvaluateAssignment(mgr_, f, {true, false, false}));
  EXPECT_FALSE(EvaluateAssignment(mgr_, f, {true, true, false}));
  EXPECT_FALSE(EvaluateAssignment(mgr_, f, {false, false, false}));
  EXPECT_TRUE(EvaluateAssignment(mgr_, mgr_.True(), {}));
  EXPECT_FALSE(EvaluateAssignment(mgr_, mgr_.False(), {}));
  // Variables beyond the assignment vector default to false.
  EXPECT_FALSE(EvaluateAssignment(mgr_, Parse("d"), {true, true, true}));
}

TEST_F(EvalTest, ReadOncePaperValues) {
  // The probabilities the paper reports for Fig. 1c / Fig. 3.
  EXPECT_NEAR(ProbabilityReadOnce(mgr_, Parse("c & !a"), vars_), 0.7 * 0.7, 1e-12);
  // c2 ∧ ¬(a1 ∨ b1) with p = 0.7, 0.3, 0.6: 0.7·(1−(1−(1−0.3)(1−0.6))) = 0.196.
  EXPECT_NEAR(ProbabilityReadOnce(mgr_, Parse("c & !(a | b)"), vars_), 0.196,
              1e-12);
  EXPECT_NEAR(ProbabilityReadOnce(mgr_, Parse("a | b"), vars_),
              0.3 + 0.6 - 0.18, 1e-12);
  EXPECT_NEAR(ProbabilityReadOnce(mgr_, Parse("a & b"), vars_), 0.18, 1e-12);
}

TEST_F(EvalTest, ReadOnceConstants) {
  EXPECT_DOUBLE_EQ(ProbabilityReadOnce(mgr_, mgr_.True(), vars_), 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityReadOnce(mgr_, mgr_.False(), vars_), 0.0);
}

TEST_F(EvalTest, ShannonMatchesReadOnceOn1OF) {
  for (const char* text : {"a", "!a", "a & b", "a | b", "a & !(b | c)",
                           "(a | b) & (c | d)", "a & b & c & d"}) {
    LineageId f = Parse(text);
    ASSERT_TRUE(mgr_.IsReadOnce(f)) << text;
    EXPECT_NEAR(ProbabilityExact(mgr_, f, vars_),
                ProbabilityReadOnce(mgr_, f, vars_), 1e-12)
        << text;
  }
}

TEST_F(EvalTest, ShannonHandlesSharedVariables) {
  // a ∨ (a ∧ b) ≡ a: exact probability must be P(a) = 0.3, while the naive
  // independent recursion overestimates.
  LineageId f = Parse("a | (a & b)");
  ASSERT_FALSE(mgr_.IsReadOnce(f));
  EXPECT_NEAR(ProbabilityExact(mgr_, f, vars_), 0.3, 1e-12);
  EXPECT_GT(ProbabilityReadOnce(mgr_, f, vars_), 0.3)
      << "read-once recursion is only an upper bound here";

  // a ∧ ¬a ≡ false.
  EXPECT_NEAR(ProbabilityExact(mgr_, Parse("a & !a"), vars_), 0.0, 1e-12);
  // a ∨ ¬a ≡ true.
  EXPECT_NEAR(ProbabilityExact(mgr_, Parse("a | !a"), vars_), 1.0, 1e-12);
  // (a∧b) ∨ (a∧c): P = P(a)·(P(b∨c)) = 0.3·(0.6+0.7−0.42) = 0.264.
  EXPECT_NEAR(ProbabilityExact(mgr_, Parse("(a&b) | (a&c)"), vars_), 0.264,
              1e-12);
}

TEST_F(EvalTest, ShannonBruteForceCrossCheck) {
  // Exhaustive enumeration over all assignments as the gold standard.
  const char* formulas[] = {
      "a | (b & !a)", "(a | b) & (!a | c)", "(a & b) | (b & c) | (c & d)",
      "!(a & b) & (a | b)", "((a|b)&(c|d)) | (a&d)"};
  for (const char* text : formulas) {
    LineageId f = Parse(text);
    double brute = 0.0;
    for (unsigned m = 0; m < 16; ++m) {
      std::vector<bool> assign = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0,
                                  (m & 8) != 0};
      if (!EvaluateAssignment(mgr_, f, assign)) continue;
      double p = 1.0;
      const double probs[] = {0.3, 0.6, 0.7, 0.5};
      for (int v = 0; v < 4; ++v) p *= assign[v] ? probs[v] : 1.0 - probs[v];
      brute += p;
    }
    EXPECT_NEAR(ProbabilityExact(mgr_, f, vars_), brute, 1e-12) << text;
  }
}

TEST_F(EvalTest, MonteCarloConvergesTo1OFTruth) {
  LineageId f = Parse("c & !(a | b)");
  double exact = ProbabilityReadOnce(mgr_, f, vars_);
  Rng rng(7);
  double estimate = ProbabilityMonteCarlo(mgr_, f, vars_, 200000, &rng);
  EXPECT_NEAR(estimate, exact, 0.01);
}

TEST_F(EvalTest, MonteCarloConvergesToShannonOnShared) {
  LineageId f = Parse("(a & b) | (a & c)");
  double exact = ProbabilityExact(mgr_, f, vars_);
  Rng rng(11);
  double estimate = ProbabilityMonteCarlo(mgr_, f, vars_, 200000, &rng);
  EXPECT_NEAR(estimate, exact, 0.01);
}

TEST_F(EvalTest, MonteCarloIsDeterministicGivenSeed) {
  LineageId f = Parse("a | b");
  Rng rng1(5), rng2(5);
  EXPECT_DOUBLE_EQ(ProbabilityMonteCarlo(mgr_, f, vars_, 1000, &rng1),
                   ProbabilityMonteCarlo(mgr_, f, vars_, 1000, &rng2));
}

TEST_F(EvalTest, DeepChainStaysExact) {
  // Union chain of 50 fresh variables: P = 1 − Π(1 − p_i); read-once
  // recursion must match the closed form.
  LineageManager mgr;
  VarTable vars;
  LineageId acc = kNullLineage;
  double expected_miss = 1.0;
  for (int i = 0; i < 50; ++i) {
    double p = 0.01 + 0.015 * i;
    VarId v = vars.Add(p);
    expected_miss *= 1.0 - p;
    acc = mgr.ConcatOr(acc, mgr.MakeVar(v));
  }
  EXPECT_NEAR(ProbabilityReadOnce(mgr, acc, vars), 1.0 - expected_miss, 1e-12);
  EXPECT_TRUE(mgr.IsReadOnce(acc));
}

}  // namespace
}  // namespace tpset
