#include "algebra/select_project.h"

#include <algorithm>

#include "relation/dedup.h"

namespace tpset {

TpRelation Select(const TpRelation& rel,
                  const std::function<bool(const Fact&)>& pred) {
  TpRelation out(rel.context(), rel.schema(), "select(" + rel.name() + ")");
  for (std::size_t i = 0; i < rel.size(); ++i) {
    if (pred(rel.FactOf(i))) {
      out.AddDerived(rel[i].fact, rel[i].t, rel[i].lineage);
    }
  }
  return out;
}

Result<TpRelation> SelectEquals(const TpRelation& rel, std::size_t attr,
                                const Value& value) {
  if (attr >= rel.schema().num_attributes()) {
    return Status::InvalidArgument("attribute index " + std::to_string(attr) +
                                   " out of range for schema of arity " +
                                   std::to_string(rel.schema().num_attributes()));
  }
  if (TypeOf(value) != rel.schema().types()[attr]) {
    return Status::InvalidArgument("selection value has wrong type for attribute " +
                                   rel.schema().names()[attr]);
  }
  return Select(rel, [attr, &value](const Fact& f) { return f[attr] == value; });
}

Result<TpRelation> Project(const TpRelation& rel,
                           const std::vector<std::size_t>& attrs) {
  const Schema& schema = rel.schema();
  std::vector<std::string> names;
  std::vector<ValueType> types;
  for (std::size_t a : attrs) {
    if (a >= schema.num_attributes()) {
      return Status::InvalidArgument("attribute index " + std::to_string(a) +
                                     " out of range");
    }
    names.push_back(schema.names()[a]);
    types.push_back(schema.types()[a]);
  }

  TpContext& ctx = *rel.context();
  TpRelation out(rel.context(), Schema(names, types), "project(" + rel.name() + ")");
  std::vector<TpTuple> projected;
  projected.reserve(rel.size());
  Fact reduced;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const Fact& f = rel.FactOf(i);
    reduced.clear();
    for (std::size_t a : attrs) reduced.push_back(f[a]);
    projected.push_back({ctx.facts().Intern(reduced), rel[i].t, rel[i].lineage});
  }
  // Duplicate elimination: collapsed facts may overlap; OR their lineages.
  MergeDuplicatesByOr(&projected, &ctx.lineage());
  for (const TpTuple& t : projected) out.AddDerived(t.fact, t.t, t.lineage);
  return out;
}

TpRelation CoalesceEquivalent(const TpRelation& rel) {
  const LineageManager& mgr = rel.context()->lineage();
  std::vector<TpTuple> sorted = rel.tuples();
  std::sort(sorted.begin(), sorted.end(), FactTimeOrder());
  TpRelation out(rel.context(), rel.schema(), "coalesce(" + rel.name() + ")");
  std::size_t i = 0;
  while (i < sorted.size()) {
    TpTuple cur = sorted[i];
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j].fact == cur.fact &&
           sorted[j].t.start == cur.t.end &&
           (sorted[j].lineage == cur.lineage ||
            mgr.CanonicalKey(sorted[j].lineage) == mgr.CanonicalKey(cur.lineage))) {
      cur.t.end = sorted[j].t.end;
      ++j;
    }
    out.AddDerived(cur.fact, cur.t, cur.lineage);
    i = j;
  }
  return out;
}

}  // namespace tpset
