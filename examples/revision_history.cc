// Revision-history scenario (the paper's Webkit dataset, §VII-C).
//
// A version-control system records, per file, the periods during which the
// file remained unchanged; flaky CI tooling attaches a confidence to each
// record. Two such histories (e.g. two mirrors of the repository) are
// compared with TP set operations:
//   * mirror agreement  = main ∩Tp mirror
//   * missing on mirror = main −Tp mirror
// The example also demonstrates swapping the set-operation backend: the
// same intersection is executed with every Table II approach that supports
// it, timing each — a miniature of the paper's Fig. 11a on bursty,
// many-fact data.
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>

#include "baselines/algorithm.h"
#include "datagen/realworld.h"
#include "datagen/stats.h"
#include "query/executor.h"
#include "relation/io.h"

using namespace tpset;

namespace {

double TimeMs(const std::function<void()>& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(404);

  WebkitSpec spec;
  spec.num_tuples = 30000;
  spec.num_files = 10000;
  spec.num_commits = 3000;
  TpRelation main_history = GenerateWebkitLike(ctx, spec, "main", &rng);
  TpRelation mirror = ShiftedCopy(main_history, "mirror", &rng);

  std::cout << "=== Repository histories ===\n";
  PrintStats(std::cout, "main", ComputeStats(main_history));
  std::cout << "(note the endpoint bursts: many files share one commit "
               "timestamp)\n\n";

  QueryExecutor exec(ctx);
  if (!exec.Register(main_history).ok() || !exec.Register(mirror).ok()) {
    std::cerr << "registration failed\n";
    return 1;
  }

  std::cout << "=== main ∩Tp mirror with every capable backend ===\n";
  std::printf("%-8s %12s %14s\n", "backend", "runtime_ms", "answer_tuples");
  for (const SetOpAlgorithm* algo : AllAlgorithms()) {
    if (!algo->Supports(SetOpKind::kIntersect)) continue;
    std::size_t answer_size = 0;
    double ms = TimeMs([&] {
      Result<TpRelation> out = exec.Execute("main & mirror", algo);
      if (out.ok()) answer_size = out->size();
    });
    std::printf("%-8s %12.2f %14zu\n", algo->name().c_str(), ms, answer_size);
  }

  std::cout << "\n=== Files recorded on main but (probably) not on the mirror "
               "===\n";
  Result<TpRelation> missing = exec.Execute("main - mirror");
  if (!missing.ok()) {
    std::cerr << missing.status().ToString() << '\n';
    return 1;
  }
  std::printf("%zu answer tuples; first rows:\n", missing->size());
  PrintOptions opts;
  opts.max_rows = 8;
  missing->set_name("");
  PrintRelation(std::cout, *missing, opts);

  std::cout << "\nEach row's p is the probability that the file's record "
               "exists on main and not on the mirror during T —\n"
               "a record with p < 1 on the mirror still leaves a non-zero "
               "chance of being missing (the probabilistic\ndimension of "
               "−Tp, paper §V-A case b).\n";
  return 0;
}
