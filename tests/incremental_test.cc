// Unit tests of the incremental continuous-query subsystem: append
// validation, epoch ordering, retraction emission, per-fact resume vs
// resweep, plan deduplication and the explain surface.
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "incremental/append_log.h"
#include "incremental/continuous_query.h"
#include "query/executor.h"
#include "query/explain.h"
#include "relation/relation.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

DeltaBatch OneRow(const std::string& fact, TimePoint ts, TimePoint te, double p,
                  const std::string& var = "") {
  DeltaBatch batch;
  batch.Add({Value(fact)}, Interval(ts, te), p, var);
  return batch;
}

// ---- AppendLog validation --------------------------------------------------

TEST(AppendLogTest, RejectsAppendBeforeFactTail) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 2, 10, 0.3}});
  a.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());

  // Overlapping the stored tail is out of fact-time order.
  Result<EpochId> bad = exec.Append("a", OneRow("milk", 5, 12, 0.5));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Adjacent (start == tail end) is fine; another fact at any time is fine.
  EXPECT_TRUE(exec.Append("a", OneRow("milk", 10, 12, 0.5)).ok());
  EXPECT_TRUE(exec.Append("a", OneRow("chips", 1, 3, 0.5)).ok());
}

TEST(AppendLogTest, RejectsOverlapWithinBatch) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 2, 4, 0.3}});
  a.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());

  DeltaBatch batch;
  batch.Add({Value(std::string("milk"))}, Interval(5, 9), 0.5);
  batch.Add({Value(std::string("milk"))}, Interval(7, 8), 0.5);
  EXPECT_FALSE(exec.Append("a", batch).ok());
  // The failed batch must not have touched the relation.
  EXPECT_EQ(exec.Find("a").value()->size(), 1u);
}

TEST(AppendLogTest, RejectsBadRowsWithoutSideEffects) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 2, 4, 0.3}});
  a.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());

  EXPECT_FALSE(exec.Append("a", OneRow("milk", 9, 9, 0.5)).ok());   // empty iv
  EXPECT_FALSE(exec.Append("a", OneRow("milk", 9, 12, 1.5)).ok());  // bad p
  EXPECT_FALSE(exec.Append("a", OneRow("milk", 9, 12, 0.5, "a1")).ok());  // dup var
  EXPECT_FALSE(exec.Append("nope", OneRow("milk", 9, 12, 0.5)).ok());
  const std::size_t vars_before = ctx->vars().size();
  DeltaBatch dup_in_batch;
  dup_in_batch.Add({Value(std::string("milk"))}, Interval(9, 10), 0.5, "z1");
  dup_in_batch.Add({Value(std::string("milk"))}, Interval(10, 11), 0.5, "z1");
  EXPECT_FALSE(exec.Append("a", dup_in_batch).ok());
  EXPECT_EQ(ctx->vars().size(), vars_before);  // no variable leaked
  EXPECT_EQ(exec.last_epoch(), 0u);
}

TEST(AppendLogTest, MergeKeepsOrderWitnessAndOneShotExecution) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  for (TpRelation* rel : {&db.a, &db.b, &db.c}) {
    rel->SortFactTime();
    ASSERT_TRUE(exec.Register(*rel).ok());
  }
  // "chips" sorts before "milk" in insertion (interning) order? Either way,
  // appending a fact that is not the maximal FactId forces a mid-vector
  // merge; the witness and duplicate-freeness must survive.
  ASSERT_TRUE(exec.Append("c", OneRow("milk", 9, 12, 0.4, "c5")).ok());
  ASSERT_TRUE(exec.Append("c", OneRow("dates", 2, 5, 0.9, "c6")).ok());
  const TpRelation* c = exec.Find("c").value();
  EXPECT_EQ(c->size(), 6u);
  EXPECT_TRUE(c->known_sorted());
  EXPECT_TRUE(c->IsSortedFactTime());

  Result<TpRelation> ans = exec.Execute("c - (a | b)");
  ASSERT_TRUE(ans.ok());
  EXPECT_GT(ans->size(), 0u);
}

TEST(AppendLogTest, EpochsAreMonotoneAcrossRelations) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  for (TpRelation* rel : {&db.a, &db.b}) {
    rel->SortFactTime();
    ASSERT_TRUE(exec.Register(*rel).ok());
  }
  EpochId e1 = exec.Append("a", OneRow("milk", 10, 12, 0.5)).value();
  EpochId e2 = exec.Append("b", OneRow("milk", 9, 11, 0.5)).value();
  EpochId e3 = exec.Append("a", OneRow("milk", 13, 14, 0.5)).value();
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
  EXPECT_EQ(exec.last_epoch(), e3);
}

// ---- Continuous queries ----------------------------------------------------

TEST(ContinuousQueryTest, InitialComputationMatchesOneShot) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  for (TpRelation* rel : {&db.a, &db.b, &db.c}) {
    rel->SortFactTime();
    ASSERT_TRUE(exec.Register(*rel).ok());
  }
  Result<ContinuousQuery*> cq = exec.RegisterContinuous("q", "c - (a | b)");
  ASSERT_TRUE(cq.ok());
  Result<TpRelation> oneshot = exec.Execute("c - (a | b)");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent((*cq)->Current(), *oneshot));
}

TEST(ContinuousQueryTest, EpochOrderingAndScopedDelivery) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  for (TpRelation* rel : {&db.a, &db.b, &db.c}) {
    rel->SortFactTime();
    ASSERT_TRUE(exec.Register(*rel).ok());
  }
  ContinuousQuery* on_ab = exec.RegisterContinuous("ab", "a | b").value();
  ContinuousQuery* on_c = exec.RegisterContinuous("conly", "c").value();

  std::vector<EpochId> ab_epochs, c_epochs;
  on_ab->Subscribe([&](const EpochDelta& d) { ab_epochs.push_back(d.epoch); });
  on_c->Subscribe([&](const EpochDelta& d) { c_epochs.push_back(d.epoch); });

  EpochId e1 = exec.Append("a", OneRow("milk", 10, 12, 0.5)).value();
  EpochId e2 = exec.Append("c", OneRow("milk", 9, 12, 0.4)).value();
  EpochId e3 = exec.Append("b", OneRow("chips", 6, 8, 0.5)).value();

  // Each query sees exactly the epochs of relations it reads, in order.
  EXPECT_EQ(ab_epochs, (std::vector<EpochId>{e1, e3}));
  EXPECT_EQ(c_epochs, (std::vector<EpochId>{e2}));
  EXPECT_EQ(on_ab->last_epoch(), e3);
  EXPECT_EQ(on_c->last_epoch(), e2);
}

TEST(ContinuousQueryTest, WatchOnPlainRelationStreamsAppends) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  db.a.SortFactTime();
  ASSERT_TRUE(exec.Register(db.a).ok());
  ContinuousQuery* cq = exec.RegisterContinuous("w", "a").value();
  TupleDelta last;
  cq->Subscribe([&](const EpochDelta& d) { last = d.delta; });
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 10, 12, 0.5)).ok());
  ASSERT_EQ(last.inserted.size(), 1u);
  EXPECT_TRUE(last.retracted.empty());
  EXPECT_EQ(last.inserted[0].t, Interval(10, 12));
  EXPECT_EQ(cq->size(), 4u);
}

TEST(ContinuousQueryTest, FrontierStraddleEmitsRetractions) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 0, 10, 0.5}});
  TpRelation b(ctx, Schema::SingleString("Product"), "b");
  a.SortFactTime();
  b.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());
  ASSERT_TRUE(exec.Register(b).ok());

  ContinuousQuery* cq = exec.RegisterContinuous("diff", "a - b").value();
  EXPECT_EQ(cq->size(), 1u);  // [0,10) with lineage a1

  EpochDelta got;
  cq->Subscribe([&](const EpochDelta& d) { got = d; });

  // b gains [2,4): valid for b (its timeline was empty) but before the
  // except node's frontier (10) — the open answer window [0,10) must be
  // retracted and replaced by the split windows around the b tuple.
  ASSERT_TRUE(exec.Append("b", OneRow("milk", 2, 4, 0.6, "b1")).ok());

  ASSERT_EQ(got.delta.retracted.size(), 1u);
  EXPECT_EQ(got.delta.retracted[0].t, Interval(0, 10));
  ASSERT_EQ(got.delta.inserted.size(), 3u);
  EXPECT_EQ(got.delta.inserted[0].t, Interval(0, 2));
  EXPECT_EQ(got.delta.inserted[1].t, Interval(2, 4));
  EXPECT_EQ(got.delta.inserted[2].t, Interval(4, 10));
  // The reopened window carries the ¬b lineage.
  const LineageManager& mgr = ctx->lineage();
  EXPECT_EQ(mgr.ToString(got.delta.inserted[1].lineage, ctx->vars(), true),
            "a1&!b1");
  EXPECT_EQ(cq->size(), 3u);

  Result<TpRelation> oneshot = exec.Execute("a - b");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent(cq->Current(), *oneshot));
}

TEST(ContinuousQueryTest, InOrderAppendsResumeWithoutRetraction) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 0, 4, 0.5}});
  TpRelation b = MakeRelation(ctx, "b", {{"milk", "b1", 2, 6, 0.6}});
  a.SortFactTime();
  b.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());
  ASSERT_TRUE(exec.Register(b).ok());
  ContinuousQuery* cq = exec.RegisterContinuous("u", "a | b").value();

  std::size_t retractions = 0;
  cq->Subscribe([&](const EpochDelta& d) {
    retractions += d.delta.retracted.size();
  });
  // Appends always at/after the union's frontier (last window te = 6).
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 6, 9, 0.5)).ok());
  ASSERT_TRUE(exec.Append("b", OneRow("milk", 9, 12, 0.6)).ok());
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 12, 13, 0.5)).ok());
  EXPECT_EQ(retractions, 0u);

  std::string plan = ExplainContinuous(exec, "u").value();
  // Initial build resumes the fresh fact; three delta epochs resume too.
  EXPECT_NE(plan.find("epochs_applied=4"), std::string::npos) << plan;
  EXPECT_NE(plan.find("facts_resumed=4"), std::string::npos) << plan;
  EXPECT_NE(plan.find("facts_reswept=0"), std::string::npos) << plan;

  Result<TpRelation> oneshot = exec.Execute("a | b");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent(cq->Current(), *oneshot));
}

TEST(ContinuousQueryTest, IntersectEarlyStopThenLateAppendResumes) {
  // ∩Tp stops sweeping a fact once one side drains; its frontier can sit
  // far behind the other side's timeline. An append on the drained side at
  // or after the frontier must resume, not resweep — and produce exactly
  // the from-scratch answer.
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 0, 30, 0.5}});
  TpRelation b = MakeRelation(ctx, "b", {{"milk", "b1", 0, 2, 0.6}});
  a.SortFactTime();
  b.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());
  ASSERT_TRUE(exec.Register(b).ok());
  ContinuousQuery* cq = exec.RegisterContinuous("i", "a & b").value();
  EXPECT_EQ(cq->size(), 1u);  // [0,2)

  EpochDelta got;
  cq->Subscribe([&](const EpochDelta& d) { got = d; });
  // Frontier after the initial sweep is 2 (the last window's end); b's
  // append at [10,20) is past it — pure insert.
  ASSERT_TRUE(exec.Append("b", OneRow("milk", 10, 20, 0.6, "b2")).ok());
  EXPECT_TRUE(got.delta.retracted.empty());
  ASSERT_EQ(got.delta.inserted.size(), 1u);
  EXPECT_EQ(got.delta.inserted[0].t, Interval(10, 20));

  std::string plan = ExplainContinuous(exec, "i").value();
  EXPECT_NE(plan.find("facts_reswept=0"), std::string::npos) << plan;

  Result<TpRelation> oneshot = exec.Execute("a & b");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent(cq->Current(), *oneshot));
}

TEST(ContinuousQueryTest, SharedSubtreesCollapseIntoDag) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  for (TpRelation* rel : {&db.a, &db.b}) {
    rel->SortFactTime();
    ASSERT_TRUE(exec.Register(*rel).ok());
  }
  // (a | b) - (a | b): the union subtree must be compiled once.
  QueryPtr q = QueryNode::SetOp(
      SetOpKind::kExcept,
      QueryNode::SetOp(SetOpKind::kUnion, QueryNode::Relation("a"),
                       QueryNode::Relation("b")),
      QueryNode::SetOp(SetOpKind::kUnion, QueryNode::Relation("a"),
                       QueryNode::Relation("b")));
  ContinuousQuery* cq = exec.RegisterContinuous("dag", *q).value();
  // The shared union subtree is deduplicated into one plan node.
  std::string plan = ExplainContinuous(exec, "dag").value();
  EXPECT_NE(plan.find("shared node"), std::string::npos) << plan;
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 10, 12, 0.5)).ok());
  Result<TpRelation> oneshot = exec.Execute(*q);
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent(cq->Current(), *oneshot));
}

TEST(ContinuousQueryTest, RegistrationErrors) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  db.a.SortFactTime();
  ASSERT_TRUE(exec.Register(db.a).ok());
  EXPECT_FALSE(exec.RegisterContinuous("", "a").ok());
  EXPECT_FALSE(exec.RegisterContinuous("q", "a | missing").ok());
  EXPECT_TRUE(exec.RegisterContinuous("q", "a").ok());
  EXPECT_FALSE(exec.RegisterContinuous("q", "a").ok());  // duplicate name
  EXPECT_FALSE(exec.FindContinuous("other").ok());
  EXPECT_TRUE(exec.FindContinuous("q").ok());
}

TEST(ContinuousQueryTest, UnsubscribeStopsDelivery) {
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  db.a.SortFactTime();
  ASSERT_TRUE(exec.Register(db.a).ok());
  ContinuousQuery* cq = exec.RegisterContinuous("q", "a").value();
  int calls = 0;
  ContinuousQuery::SubscriptionId id =
      cq->Subscribe([&](const EpochDelta&) { ++calls; });
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 10, 12, 0.5)).ok());
  cq->Unsubscribe(id);
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 12, 14, 0.5)).ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace tpset
