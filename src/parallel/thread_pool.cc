#include "parallel/thread_pool.h"

namespace tpset {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace tpset
