#include "parallel/scheduler.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace tpset {

namespace {

// Scheduler metrics, process-wide across every MorselBatch. The recording
// sits outside the sweep kernels (once per morsel, not per tuple), so the
// observer cost is two clock reads against a multi-thousand-tuple sweep.
obs::Counter& MorselsRunCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_sched_morsels_run_total", "morsels executed by all batches");
  return c;
}

obs::Counter& MorselsStolenCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_sched_morsels_stolen_total",
      "morsels a worker took from another worker's deque");
  return c;
}

obs::Counter& FactsSplitCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_sched_facts_split_total",
      "facts heavier than the morsel budget split at clean time boundaries");
  return c;
}

obs::Histogram& MorselLatencyHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tpset_sched_morsel_latency_usec",
      "wall microseconds per morsel body (sweep + staging)");
  return h;
}

// First index in tuples[begin..end) whose fact differs from `fact`.
std::size_t FactUpperBound(const TpTuple* tuples, std::size_t begin,
                           std::size_t end, FactId fact) {
  auto it = std::upper_bound(
      tuples + begin, tuples + end, fact,
      [](FactId f, const TpTuple& t) { return f < t.fact; });
  return static_cast<std::size_t>(it - tuples);
}

}  // namespace

std::vector<FactPartition> SplitFactAtTimeBoundaries(const TpTuple* r,
                                                     const TpTuple* s,
                                                     const FactPartition& part,
                                                     std::size_t budget) {
  if (budget == 0) budget = 1;
  std::vector<FactPartition> out;
  std::size_t ri = part.r_begin;
  std::size_t si = part.s_begin;
  std::size_t span_r = ri, span_s = si;  // start of the current sub-span
  std::size_t count = 0;                 // tuples consumed since the last cut
  TimePoint max_end = std::numeric_limits<TimePoint>::min();

  // Merged walk over both sides in start order. Before consuming a tuple
  // starting at T, a cut right here is clean iff every tuple already
  // consumed since the last cut ends at or before T (tuples before the
  // previous cut end at or before that cut's time <= T by induction) — then
  // no tuple, and therefore no window, spans the boundary.
  while (ri < part.r_end || si < part.s_end) {
    const bool take_r =
        si >= part.s_end ||
        (ri < part.r_end && r[ri].t.start <= s[si].t.start);
    const TpTuple& next = take_r ? r[ri] : s[si];
    if (count >= budget && max_end <= next.t.start) {
      out.push_back({span_r, ri, span_s, si});
      span_r = ri;
      span_s = si;
      count = 0;
    }
    max_end = std::max(max_end, next.t.end);
    ++count;
    if (take_r) {
      ++ri;
    } else {
      ++si;
    }
  }
  out.push_back({span_r, part.r_end, span_s, part.s_end});
  return out;
}

MorselPlan BuildMorsels(const TpTuple* r, const TpTuple* s,
                        const std::vector<FactPartition>& parts,
                        std::size_t budget) {
  if (budget == 0) budget = 1;
  MorselPlan plan;
  plan.morsels.reserve(parts.size());
  for (const FactPartition& part : parts) {
    if (part.size() <= budget) {
      plan.morsels.push_back(part);
      continue;
    }
    // Re-cut the partition fact by fact: light facts accumulate into a
    // pending morsel flushed at the budget; a heavy fact flushes the pending
    // morsel and is time-split on its own, keeping morsels in (fact, time)
    // order.
    FactPartition pending{part.r_begin, part.r_begin, part.s_begin,
                          part.s_begin};
    std::size_t ri = part.r_begin, si = part.s_begin;
    while (ri < part.r_end || si < part.s_end) {
      FactId fact;
      if (ri < part.r_end && si < part.s_end) {
        fact = std::min(r[ri].fact, s[si].fact);
      } else if (ri < part.r_end) {
        fact = r[ri].fact;
      } else {
        fact = s[si].fact;
      }
      const std::size_t rj = FactUpperBound(r, ri, part.r_end, fact);
      const std::size_t sj = FactUpperBound(s, si, part.s_end, fact);
      const std::size_t weight = (rj - ri) + (sj - si);
      if (weight > budget) {
        if (pending.size() > 0) plan.morsels.push_back(pending);
        std::vector<FactPartition> sub =
            SplitFactAtTimeBoundaries(r, s, {ri, rj, si, sj}, budget);
        if (sub.size() > 1) ++plan.facts_split;
        plan.morsels.insert(plan.morsels.end(), sub.begin(), sub.end());
        pending = {rj, rj, sj, sj};
      } else if (pending.size() + weight > budget) {
        if (pending.size() > 0) plan.morsels.push_back(pending);
        pending = {ri, rj, si, sj};
      } else {
        pending.r_end = rj;
        pending.s_end = sj;
      }
      ri = rj;
      si = sj;
    }
    if (pending.size() > 0) plan.morsels.push_back(pending);
  }
  if (plan.facts_split > 0) FactsSplitCounter().Increment(plan.facts_split);
  return plan;
}

// Shared between the batch handle and the worker tasks; workers hold a
// shared_ptr so the handle may be destroyed while stragglers finish.
struct MorselBatch::State {
  // One worker's slice of the index space. `items` is filled once before
  // the workers start and never grows; `head`/`tail` delimit the live
  // window. The owner pops at head (lowest morsel indices first), thieves
  // pop at tail — both under the deque mutex; the deques are small and cold
  // enough that a mutex beats a lock-free structure on clarity.
  struct Deque {
    std::mutex mu;
    std::vector<std::size_t> items;
    std::size_t head = 0;
    std::size_t tail = 0;  // one past the last live item
  };

  std::function<void(std::size_t)> body;
  std::vector<std::unique_ptr<Deque>> deques;  // unique_ptr: mutex pins them
  bool steal = true;

  // Completion plane. `done` flips under `mu` after the body ran, so a
  // waiter that observed done[i] also observes every write the body made
  // (the splice-readiness handoff the overlapped splice relies on).
  std::mutex mu;
  std::condition_variable cv;
  std::vector<char> done;
  std::size_t done_count = 0;
  std::size_t stolen = 0;
  std::exception_ptr error;
};

MorselBatch::MorselBatch(ThreadPool* pool, std::size_t count,
                         std::function<void(std::size_t)> body, bool steal)
    : state_(std::make_shared<State>()) {
  // Register the whole scheduler metric family up front. Steals and splits
  // may legitimately never happen in a run, but a scrape should still see
  // their counters at 0 rather than absent (absence reads as "renamed or
  // dropped" to the schema validator and to Prometheus rate() queries).
  MorselsRunCounter();
  MorselsStolenCounter();
  FactsSplitCounter();
  MorselLatencyHistogram();
  state_->body = std::move(body);
  state_->steal = steal;
  state_->done.assign(count, 0);
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(pool == nullptr ? 1 : pool->size(), count));
  state_->deques.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    state_->deques.push_back(std::make_unique<State::Deque>());
  }
  for (std::size_t w = 0; w < workers; ++w) {
    // Round-robin assignment: every deque holds a spread of low-to-high
    // indices, so the fronts collectively track the splice frontier.
    State::Deque& d = *state_->deques[w];
    d.items.reserve(count / workers + 1);
    for (std::size_t i = w; i < count; i += workers) d.items.push_back(i);
    d.tail = d.items.size();
  }
  if (count == 0) return;
  if (pool == nullptr) {
    RunWorker(state_, 0);
    return;
  }
  for (std::size_t w = 0; w < workers; ++w) {
    std::shared_ptr<State> st = state_;
    // Fire-and-forget: completion is tracked through State, not futures.
    pool->Submit([st, w]() { RunWorker(st, w); });
  }
}

void MorselBatch::RunWorker(const std::shared_ptr<State>& st,
                            std::size_t worker) {
  const std::size_t workers = st->deques.size();
  for (;;) {
    std::size_t index = 0;
    bool found = false;
    bool was_steal = false;
    {
      State::Deque& own = *st->deques[worker];
      std::lock_guard<std::mutex> lock(own.mu);
      if (own.head < own.tail) {
        index = own.items[own.head++];
        found = true;
      }
    }
    if (!found && st->steal) {
      for (std::size_t off = 1; off < workers && !found; ++off) {
        State::Deque& victim = *st->deques[(worker + off) % workers];
        std::lock_guard<std::mutex> lock(victim.mu);
        if (victim.head < victim.tail) {
          index = victim.items[--victim.tail];
          found = true;
          was_steal = true;
        }
      }
    }
    if (!found) return;
    std::exception_ptr error;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      st->body(index);
    } catch (...) {
      error = std::current_exception();
    }
    MorselLatencyHistogram().Observe(obs::ElapsedUsec(t0));
    MorselsRunCounter().Increment();
    if (was_steal) MorselsStolenCounter().Increment();
    {
      std::lock_guard<std::mutex> lock(st->mu);
      st->done[index] = 1;
      ++st->done_count;
      if (was_steal) ++st->stolen;
      if (error && !st->error) st->error = error;
    }
    st->cv.notify_all();
  }
}

MorselBatch::~MorselBatch() {
  // Swallow any pending error: the caller chose not to consume it (e.g. is
  // already unwinding). Waiting keeps the caller-owned result slots alive.
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&]() { return state_->done_count == state_->done.size(); });
}

void MorselBatch::WaitMorsel(std::size_t index) {
  assert(index < state_->done.size());
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&]() { return state_->done[index] != 0; });
  if (state_->error) {
    // Don't rethrow twice, and only after every worker settled so the
    // caller's slots stay valid during unwind.
    state_->cv.wait(
        lock, [&]() { return state_->done_count == state_->done.size(); });
    std::exception_ptr error = state_->error;
    state_->error = nullptr;
    std::rethrow_exception(error);
  }
}

void MorselBatch::WaitAll() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock,
                  [&]() { return state_->done_count == state_->done.size(); });
  if (state_->error) {
    std::exception_ptr error = state_->error;
    state_->error = nullptr;
    std::rethrow_exception(error);
  }
}

std::size_t MorselBatch::morsels_run() const { return state_->done.size(); }

std::size_t MorselBatch::morsels_stolen() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->stolen;
}

}  // namespace tpset
