// Static analysis of TP set queries: the tractability results of §V-B.
#ifndef TPSET_QUERY_ANALYZER_H_
#define TPSET_QUERY_ANALYZER_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "relation/relation.h"

namespace tpset {

/// All base relation names referenced by the query, with multiplicity, in
/// left-to-right order.
std::vector<std::string> ReferencedRelations(const QueryNode& q);

/// True iff every input relation occurs at most once (the paper's
/// "non-repeating" condition). By Theorem 1 such a query over
/// duplicate-free relations yields read-once (1OF) lineages, and by
/// Corollary 1 its probabilities are computable in PTIME.
bool IsNonRepeating(const QueryNode& q);

/// The probability method the analyzer recommends: kReadOnce for
/// non-repeating queries (exact by Theorem 1), kExact (Shannon) otherwise —
/// repeating queries are #P-hard in general (Khanna et al. [30]).
ProbabilityMethod RecommendedMethod(const QueryNode& q);

/// Number of set operators in the query tree.
std::size_t OperatorCount(const QueryNode& q);

}  // namespace tpset

#endif  // TPSET_QUERY_ANALYZER_H_
