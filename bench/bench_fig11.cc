// Fig. 11 (a,b,c): TP set operations on the Webkit-like dataset.
//
// The paper runs each operation over equally sized random subsets (20K-200K)
// of the 1.5M-tuple Webkit file-history dataset and a shifted counterpart.
// Paper shape: LAWA fastest; TI degrades badly (very many tuples share one
// commit timestamp, so its event-time pairing explodes before the fact
// filter applies); NORM does comparatively better than on Meteo because the
// fact count is huge (484K files) and its pair scans become selective.
#include <algorithm>
#include <memory>

#include "baselines/algorithm.h"
#include "bench/harness.h"
#include "datagen/realworld.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

TpRelation Subset(const TpRelation& rel, std::size_t n, Rng* rng) {
  TpRelation out(rel.context(), rel.schema(), rel.name() + "_subset");
  std::vector<std::size_t> idx(rel.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  n = std::min(n, idx.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = i + rng->Below(idx.size() - i);
    std::swap(idx[i], idx[j]);
    out.AddDerived(rel[idx[i]].fact, rel[idx[i]].t, rel[idx[i]].lineage);
  }
  out.SortFactTime();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::printf("# Fig. 11: Webkit-like dataset (many files, bursty commits), "
              "subsets 20K-200K, scale=%.3g\n", scale);
  PrintHeader("fig11");

  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  Rng rng(0xF16011);
  WebkitSpec webkit;
  webkit.num_tuples = std::max<std::size_t>(Scaled(1500000, scale), 30000);
  webkit.num_files = webkit.num_tuples / 3;
  webkit.num_commits = std::max<std::size_t>(webkit.num_tuples / 10, 1000);
  TpRelation base = GenerateWebkitLike(ctx, webkit, "webkit", &rng);
  TpRelation shifted = ShiftedCopy(base, "webkit_shifted", &rng);

  const std::size_t paper_sizes[] = {20000, 60000, 100000, 140000, 200000};
  const struct {
    const char* sub;
    SetOpKind op;
  } subfigures[] = {{"fig11a", SetOpKind::kIntersect},
                    {"fig11b", SetOpKind::kExcept},
                    {"fig11c", SetOpKind::kUnion}};

  for (const auto& sub : subfigures) {
    for (std::size_t paper_n : paper_sizes) {
      std::size_t n = Scaled(paper_n, scale);
      TpRelation r = Subset(base, n, &rng);
      TpRelation s = Subset(shifted, n, &rng);
      for (const SetOpAlgorithm* algo : AllAlgorithms()) {
        if (!algo->Supports(sub.op)) continue;
        // TI forms all pairs active at mass-commit timestamps; cap it like
        // the quadratic baselines so default runs terminate.
        if (algo->name() == "TI" && n > 100000) {
          PrintCap(sub.sub, SetOpName(sub.op), algo->name(), n, 100000);
          continue;
        }
        double ms = TimeMs([&] {
          TpRelation out = algo->Compute(sub.op, r, s);
          (void)out;
        });
        PrintRow(sub.sub, SetOpName(sub.op), algo->name(), n, ms);
      }
    }
  }
  return 0;
}
