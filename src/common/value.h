// Typed attribute values, facts (ordered attribute tuples) and schemas.
//
// The conventional attributes F = (A1 ... Am) of a TP tuple form a fact
// (paper §III). We keep facts fully generic (any mix of int64 / double /
// string attributes); the hot path never touches them because facts are
// interned to dense FactIds by FactDictionary.
#ifndef TPSET_COMMON_VALUE_H_
#define TPSET_COMMON_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace tpset {

/// One attribute value.
using Value = std::variant<std::int64_t, double, std::string>;

/// A fact: the ordered conventional-attribute values of a tuple.
using Fact = std::vector<Value>;

/// Attribute type tags for Schema.
enum class ValueType { kInt64 = 0, kDouble = 1, kString = 2 };

/// Runtime type of a value.
ValueType TypeOf(const Value& v);

/// Renders a value: strings quoted ('milk'), numbers plain.
std::string ToString(const Value& v);

/// Renders a fact: single attribute without parentheses, otherwise
/// "(v1, v2, ...)".
std::string ToString(const Fact& f);

std::ostream& operator<<(std::ostream& os, const Value& v);

/// Combines a hash into a running seed (boost::hash_combine recipe).
void HashCombine(std::size_t& seed, std::size_t h);

/// Hash of a single value (type-tagged).
std::size_t HashValue(const Value& v);

/// Hash of a fact.
std::size_t HashFact(const Fact& f);

/// Relation schema: named, typed conventional attributes. The temporal,
/// lineage and probability columns are implicit (every TP relation has them).
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from (name, type) pairs.
  Schema(std::vector<std::string> names, std::vector<ValueType> types);

  /// Convenience: single string-typed attribute (the common case in the
  /// paper's examples: Product).
  static Schema SingleString(const std::string& name);

  /// Convenience: single int64-typed attribute (synthetic workloads).
  static Schema SingleInt(const std::string& name);

  std::size_t num_attributes() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<ValueType>& types() const { return types_; }

  /// Checks that a fact matches this schema (arity and types).
  Status Validate(const Fact& f) const;

  /// True iff both schemas have the same attribute types (names may differ);
  /// this is the compatibility requirement for set operations.
  bool CompatibleWith(const Schema& other) const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.names_ == b.names_ && a.types_ == b.types_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<ValueType> types_;
};

}  // namespace tpset

#endif  // TPSET_COMMON_VALUE_H_
