// Synthetic workload generator (paper §VII-B).
//
// A relation is populated per fact as a sequence of non-overlapping
// intervals: lengths uniform in [1, max_interval_length], distances between
// consecutive same-fact intervals uniform in [0, max_time_distance]. The
// paper's robustness datasets (Table III) vary the two relations' maximum
// interval lengths to obtain different overlapping factors.
#ifndef TPSET_DATAGEN_SYNTHETIC_H_
#define TPSET_DATAGEN_SYNTHETIC_H_

#include <memory>
#include <string>
#include <utility>

#include "common/random.h"
#include "relation/relation.h"

namespace tpset {

/// Parameters of one synthetic relation.
struct SyntheticSpec {
  std::size_t num_tuples = 1000;
  std::size_t num_facts = 1;          ///< tuples are spread round-robin
  TimePoint max_interval_length = 3;  ///< lengths uniform in [1, this]
  TimePoint max_time_distance = 3;    ///< gaps uniform in [0, this]
  double min_probability = 0.1;
  double max_probability = 0.9;
};

/// Generates one relation (single int64 attribute "fact", values
/// 0..num_facts-1). Deterministic given the rng state. The result is
/// duplicate-free by construction and sorted by (fact, start).
///
/// `fact_offsets` (optional, size >= num_facts) staggers each fact's tuple
/// chain: fact f's first interval starts at fact_offsets[f] (plus its first
/// gap). Without offsets every chain starts near 0, which clusters all
/// facts at the beginning of the timeline; the pair generator uses shared
/// offsets so r and s chains of one fact still overlap.
TpRelation GenerateSynthetic(std::shared_ptr<TpContext> ctx,
                             const SyntheticSpec& spec, const std::string& name,
                             Rng* rng,
                             const std::vector<TimePoint>* fact_offsets = nullptr);

/// Parameters of an (r, s) pair for the robustness experiments; both
/// relations use the same fact set and time-distance bound but different
/// interval-length bounds (Table III).
struct SyntheticPairSpec {
  std::size_t num_tuples = 1000;  ///< per relation
  std::size_t num_facts = 1;
  TimePoint max_interval_length_r = 3;
  TimePoint max_interval_length_s = 3;
  TimePoint max_time_distance = 3;
  /// Stretch the gap bound of the shorter-pitched relation so both span a
  /// common horizon (otherwise a (100,3) preset crams all of s into the
  /// prefix of r's timeline and every preset measures the same overlap).
  bool align_spans = true;
};

/// Generates the pair in one shared context.
std::pair<TpRelation, TpRelation> GenerateSyntheticPair(
    std::shared_ptr<TpContext> ctx, const SyntheticPairSpec& spec, Rng* rng);

/// The paper's Table III parameter presets, keyed by the nominal
/// overlapping factor. Valid inputs: 0.03, 0.1, 0.4, 0.6, 0.8 (nearest
/// preset is chosen). num_tuples/num_facts are left at their defaults.
SyntheticPairSpec TableIIIPreset(double nominal_overlapping_factor);

/// Parameters of a fact-skewed (r, s) pair — the workloads the fact-range
/// partitioner cannot balance (a heavy fact is never cut at fact
/// granularity) and the morsel scheduler exists for. Exactly one of
/// `zipf_s` / `hot_fact_share` should be set.
struct SkewedPairSpec {
  std::size_t num_tuples = 1000;  ///< per relation
  std::size_t num_facts = 16;
  /// > 0: fact f gets weight 1/(f+1)^zipf_s (zipf over fact ranks).
  double zipf_s = 0.0;
  /// > 0: fact 0 carries this share of the tuples; the rest spread evenly.
  double hot_fact_share = 0.0;
  TimePoint max_interval_length_r = 3;
  TimePoint max_interval_length_s = 9;
  TimePoint max_time_distance = 3;
};

/// Per-fact tuple counts for `spec` (each fact gets at least one tuple);
/// exposed so benchmarks can report the realized skew.
std::vector<std::size_t> SkewedFactCounts(const SkewedPairSpec& spec);

/// Generates the skewed pair in one shared context: per-fact chains of
/// non-overlapping intervals on both sides (all chains of a fact start near
/// time 0, so the r and s chains of a fact overlap), duplicate-free and
/// sorted by (fact, start). Deterministic given the rng state.
std::pair<TpRelation, TpRelation> GenerateSkewedPair(
    std::shared_ptr<TpContext> ctx, const SkewedPairSpec& spec, Rng* rng);

}  // namespace tpset

#endif  // TPSET_DATAGEN_SYNTHETIC_H_
