#include "parallel/partition.h"

#include <algorithm>

#include "common/types.h"

namespace tpset {

namespace {

// First index of tuples[0..n) whose fact is >= f. Sorted-by-(fact, start)
// input makes this a pure fact lower bound.
std::size_t FactLowerBound(const TpTuple* tuples, std::size_t n, FactId f) {
  auto it = std::lower_bound(
      tuples, tuples + n, f,
      [](const TpTuple& t, FactId fact) { return t.fact < fact; });
  return static_cast<std::size_t>(it - tuples);
}

}  // namespace

std::vector<FactPartition> PartitionByFactRange(const std::vector<TpTuple>& r,
                                                const std::vector<TpTuple>& s,
                                                std::size_t max_partitions) {
  return PartitionByFactRange(r.data(), r.size(), s.data(), s.size(),
                              max_partitions);
}

std::vector<FactPartition> PartitionByFactRange(const TpTuple* r,
                                                std::size_t nr,
                                                const TpTuple* s,
                                                std::size_t ns,
                                                std::size_t max_partitions) {
  const std::size_t total = nr + ns;
  std::vector<FactPartition> parts;
  if (total == 0) return parts;
  if (max_partitions == 0) max_partitions = 1;

  // Combined count of tuples with fact < f; monotone in f, so the i-th cut is
  // the smallest fact bringing the running count to at least i/k of the total.
  auto count_below = [&](FactId f) {
    return FactLowerBound(r, nr, f) + FactLowerBound(s, ns, f);
  };

  std::size_t prev_r = 0, prev_s = 0;
  for (std::size_t i = 1; i < max_partitions; ++i) {
    const std::size_t target = total * i / max_partitions;
    FactId lo = 0, hi = kInvalidFact;  // no real fact is kInvalidFact
    while (lo < hi) {
      const FactId mid = lo + (hi - lo) / 2;
      if (count_below(mid) >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    const std::size_t r_cut = FactLowerBound(r, nr, lo);
    const std::size_t s_cut = FactLowerBound(s, ns, lo);
    if (r_cut == prev_r && s_cut == prev_s) continue;  // skewed fact: no split
    parts.push_back({prev_r, r_cut, prev_s, s_cut});
    prev_r = r_cut;
    prev_s = s_cut;
    if (prev_r == nr && prev_s == ns) break;
  }
  if (prev_r < nr || prev_s < ns) {
    parts.push_back({prev_r, nr, prev_s, ns});
  }
  return parts;
}

std::vector<WeightRange> PartitionByWeight(const std::vector<std::size_t>& weights,
                                           std::size_t max_groups) {
  std::vector<WeightRange> groups;
  const std::size_t n = weights.size();
  if (n == 0) return groups;
  if (max_groups == 0) max_groups = 1;

  std::size_t total = 0;
  for (std::size_t w : weights) total += w;

  // Greedy target walk, mirroring PartitionByFactRange: the k-th cut falls
  // where the running weight first reaches k/max_groups of the total.
  std::size_t begin = 0;
  std::size_t running = 0;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running += weights[i];
    const std::size_t remaining_groups = max_groups - emitted;
    if (remaining_groups <= 1) continue;
    const std::size_t target = total * (emitted + 1) / max_groups;
    if (running >= target && i + 1 < n) {
      groups.push_back({begin, i + 1});
      begin = i + 1;
      ++emitted;
    }
  }
  groups.push_back({begin, n});
  return groups;
}

}  // namespace tpset
