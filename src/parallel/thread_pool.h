// Fixed-size thread pool with a futures-based task API.
//
// Deliberately minimal: one shared FIFO queue, no work stealing. Tasks are
// the coarse units produced by FactRangePartitioner (tens per operation), so
// a single mutex-protected queue is nowhere near contention; what matters is
// that Submit returns a std::future so callers compose fan-out/fan-in with
// plain standard-library types. Tasks must never block on other pool tasks
// (the pool has no nested-wait rescue); the parallel set-op code keeps all
// blocking on caller threads.
#ifndef TPSET_PARALLEL_THREAD_POOL_H_
#define TPSET_PARALLEL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tpset {

/// A fixed set of worker threads draining one task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers. Pending tasks run to completion.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result. An exception thrown
  /// by the task is captured and rethrown by future::get(). Thread-safe.
  template <typename Fn, typename R = std::invoke_result_t<Fn&>>
  std::future<R> Submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Enqueue([task]() { (*task)(); });
    return result;
  }

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  /// True while the queue sits above the saturation threshold — edge-detects
  /// the "pool saturated" event so a sustained backlog emits once, not per
  /// enqueue (re-arms when the queue drains below half the threshold).
  bool saturated_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tpset

#endif  // TPSET_PARALLEL_THREAD_POOL_H_
