// Exporters for metrics snapshots: Prometheus text exposition format and a
// JSON-lines snapshot (one metric per line — the format scripts/ci.sh
// validates against scripts/metrics_schema.json after the bench smoke).
#ifndef TPSET_OBS_EXPORT_H_
#define TPSET_OBS_EXPORT_H_

#include <string>

#include "obs/metrics.h"

namespace tpset::obs {

/// One shard-aggregation pass over the registry, shared by every renderer.
/// Scraping is the expensive half of an export (16 shards x all metrics);
/// rendering is string formatting. Callers that serve multiple formats — or
/// stamp the scrape time into their output — take one TakeScrape() and feed
/// the same snapshot to PrometheusText and/or JsonLines.
struct ScrapeSnapshot {
  std::int64_t scraped_unix_us = 0;  ///< when the shards were aggregated
  MetricsSnapshot snapshot;
};

/// Aggregates `registry` (the process-global one by default) once.
ScrapeSnapshot TakeScrape(MetricsRegistry* registry = nullptr);

/// Prometheus text exposition format, version 0.0.4:
///
///   # HELP tpset_pool_tasks_total tasks executed by all thread pools
///   # TYPE tpset_pool_tasks_total counter
///   tpset_pool_tasks_total 42
///
/// Histograms emit the cumulative `_bucket{le="..."}` series (power-of-two
/// bounds, see HistogramBucketBound) plus `_sum` and `_count`.
std::string PrometheusText(const MetricsSnapshot& snapshot);
std::string PrometheusText(const ScrapeSnapshot& scrape);

/// JSON lines, one object per metric:
///
///   {"name":"tpset_pool_tasks_total","type":"counter","value":42}
///   {"name":"...","type":"histogram","count":7,"sum":123,
///    "bounds":[0,1,3,...],"buckets":[0,2,5,...]}
///
/// `buckets` are non-cumulative; their sum equals `count` (the consistency
/// invariant the CI validator checks).
std::string JsonLines(const MetricsSnapshot& snapshot);
std::string JsonLines(const ScrapeSnapshot& scrape);

/// The process-wide flight record (obs/recorder.h) as one JSON object:
/// recorder config, per-metric ring histories, recent events, slow-query
/// exemplars. Equivalent to Recorder::Global().FlightRecordJson();
/// scripts/flight_record_schema.json documents the shape.
std::string ExportFlightRecord();

}  // namespace tpset::obs

#endif  // TPSET_OBS_EXPORT_H_
