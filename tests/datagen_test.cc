// Generators: structural guarantees, Table III presets, Table IV-style
// statistics, real-world simulators and the shifted-copy construction.
#include <gtest/gtest.h>

#include "datagen/realworld.h"
#include "datagen/stats.h"
#include "datagen/synthetic.h"
#include "lawa/overlap_factor.h"
#include "relation/validate.h"

namespace tpset {
namespace {

TEST(SyntheticTest, GeneratesRequestedShape) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(1);
  SyntheticSpec spec;
  spec.num_tuples = 500;
  spec.num_facts = 10;
  spec.max_interval_length = 5;
  spec.max_time_distance = 2;
  TpRelation rel = GenerateSynthetic(ctx, spec, "r", &rng);
  EXPECT_EQ(rel.size(), 500u);
  EXPECT_TRUE(rel.IsSortedFactTime());
  EXPECT_TRUE(ValidateWellFormed(rel).ok());
  EXPECT_TRUE(ValidateDuplicateFree(rel).ok());
  DatasetStats stats = ComputeStats(rel);
  EXPECT_EQ(stats.num_facts, 10u);
  EXPECT_GE(stats.min_duration, 1);
  EXPECT_LE(stats.max_duration, 5);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticSpec spec;
  spec.num_tuples = 100;
  auto ctx1 = std::make_shared<TpContext>();
  auto ctx2 = std::make_shared<TpContext>();
  Rng rng1(7), rng2(7);
  TpRelation r1 = GenerateSynthetic(ctx1, spec, "r", &rng1);
  TpRelation r2 = GenerateSynthetic(ctx2, spec, "r", &rng2);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].t, r2[i].t) << i;
  }
}

TEST(SyntheticTest, ProbabilitiesWithinBounds) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(3);
  SyntheticSpec spec;
  spec.num_tuples = 200;
  spec.min_probability = 0.2;
  spec.max_probability = 0.4;
  TpRelation rel = GenerateSynthetic(ctx, spec, "r", &rng);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    double p = rel.TupleProbability(i);
    EXPECT_GE(p, 0.2);
    EXPECT_LE(p, 0.4);
  }
}

TEST(SyntheticTest, TableIIIPresetsOrderOverlapFactors) {
  // The measured overlapping factor must increase monotonically across the
  // presets (their nominal factors 0.03 < 0.1 < 0.4 < 0.6 < 0.8); absolute
  // values depend on generator details, the ordering is the property the
  // robustness experiment needs.
  double prev = -1.0;
  for (double nominal : {0.03, 0.1, 0.4, 0.6, 0.8}) {
    auto ctx = std::make_shared<TpContext>();
    Rng rng(42);
    SyntheticPairSpec spec = TableIIIPreset(nominal);
    spec.num_tuples = 4000;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    double factor = TimeWeightedOverlappingFactor(r, s);
    EXPECT_GT(factor, prev) << "nominal " << nominal;
    EXPECT_GE(factor, 0.0);
    EXPECT_LE(factor, 1.0);
    prev = factor;
  }
}

TEST(OverlapFactorTest, ExtremeCases) {
  auto ctx = std::make_shared<TpContext>();
  FactId f = ctx->facts().Intern({Value(std::int64_t{0})});
  TpRelation r(ctx, Schema::SingleInt("fact"), "r");
  TpRelation s(ctx, Schema::SingleInt("fact"), "s");
  r.AddBaseFast(f, Interval(0, 10), 0.5);
  s.AddBaseFast(f, Interval(0, 10), 0.5);
  EXPECT_DOUBLE_EQ(OverlappingFactor(r, s), 1.0) << "identical intervals";

  TpRelation s2(ctx, Schema::SingleInt("fact"), "s2");
  s2.AddBaseFast(f, Interval(20, 30), 0.5);
  EXPECT_DOUBLE_EQ(OverlappingFactor(r, s2), 0.0) << "disjoint intervals";

  TpRelation empty(ctx, Schema::SingleInt("fact"), "e");
  EXPECT_DOUBLE_EQ(OverlappingFactor(empty, empty), 0.0);

  TpRelation s3(ctx, Schema::SingleInt("fact"), "s3");
  s3.AddBaseFast(f, Interval(5, 15), 0.5);
  // Windows: [0,5) r-only, [5,10) both, [10,15) s-only -> 1/3.
  EXPECT_NEAR(OverlappingFactor(r, s3), 1.0 / 3.0, 1e-12);
}

TEST(StatsTest, ComputesTableIVColumns) {
  auto ctx = std::make_shared<TpContext>();
  FactId f = ctx->facts().Intern({Value(std::int64_t{0})});
  FactId g = ctx->facts().Intern({Value(std::int64_t{1})});
  TpRelation rel(ctx, Schema::SingleInt("fact"), "rel");
  rel.AddBaseFast(f, Interval(0, 10), 0.5);   // duration 10
  rel.AddBaseFast(g, Interval(5, 7), 0.5);    // duration 2
  rel.AddBaseFast(g, Interval(10, 14), 0.5);  // duration 4
  DatasetStats s = ComputeStats(rel);
  EXPECT_EQ(s.cardinality, 3u);
  EXPECT_EQ(s.time_range, 14);
  EXPECT_EQ(s.min_duration, 2);
  EXPECT_EQ(s.max_duration, 10);
  EXPECT_NEAR(s.avg_duration, 16.0 / 3.0, 1e-12);
  EXPECT_EQ(s.num_facts, 2u);
  // Distinct endpoints: 0,5,7,10,14 (10 is shared by two tuples).
  EXPECT_EQ(s.distinct_points, 5u);
  EXPECT_EQ(s.max_tuples_per_point, 2u);
  EXPECT_NEAR(s.avg_tuples_per_point, 6.0 / 5.0, 1e-12);
}

TEST(StatsTest, EmptyRelation) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel(ctx, Schema::SingleInt("fact"), "rel");
  DatasetStats s = ComputeStats(rel);
  EXPECT_EQ(s.cardinality, 0u);
  EXPECT_EQ(s.num_facts, 0u);
}

TEST(RealWorldTest, MeteoLikeShape) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(5);
  MeteoSpec spec;
  spec.num_tuples = 8000;
  TpRelation rel = GenerateMeteoLike(ctx, spec, "meteo", &rng);
  EXPECT_EQ(rel.size(), 8000u);
  EXPECT_TRUE(ValidateDuplicateFree(rel).ok());
  DatasetStats s = ComputeStats(rel);
  EXPECT_EQ(s.num_facts, 80u) << "80 stations, like Table IV";
  EXPECT_GE(s.min_duration, 600);
  EXPECT_LE(s.max_duration, spec.max_duration);
  // Grid-aligned endpoints collide across stations: far fewer distinct
  // points than endpoints (Table IV: 545K points for 10.2M tuples).
  EXPECT_LT(s.distinct_points, 2 * rel.size());
  EXPECT_GT(s.avg_tuples_per_point, 2.0);
}

TEST(RealWorldTest, WebkitLikeShape) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(6);
  WebkitSpec spec;
  spec.num_tuples = 20000;
  spec.num_files = 6500;
  spec.num_commits = 2000;
  TpRelation rel = GenerateWebkitLike(ctx, spec, "webkit", &rng);
  EXPECT_GT(rel.size(), 15000u);
  EXPECT_LE(rel.size(), 20000u);
  EXPECT_TRUE(ValidateDuplicateFree(rel).ok());
  DatasetStats s = ComputeStats(rel);
  EXPECT_GT(s.num_facts, 4000u) << "many facts, like Table IV";
  // Endpoint collisions: far fewer distinct points than endpoints, and a
  // large burst at mass-commit timestamps.
  EXPECT_LT(s.distinct_points, 2u * rel.size() / 3u);
  EXPECT_GT(s.max_tuples_per_point, s.avg_tuples_per_point * 5.0);
}

TEST(RealWorldTest, ShiftedCopyPreservesLengthsAndFacts) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(7);
  SyntheticSpec spec;
  spec.num_tuples = 1000;
  spec.num_facts = 20;
  spec.max_interval_length = 10;
  TpRelation rel = GenerateSynthetic(ctx, spec, "r", &rng);
  TpRelation shifted = ShiftedCopy(rel, "s", &rng);
  ASSERT_EQ(shifted.size(), rel.size());
  EXPECT_TRUE(ValidateDuplicateFree(shifted).ok());
  EXPECT_TRUE(ValidateWellFormed(shifted).ok());
  // Multiset of (fact, duration) is preserved.
  auto project = [](const TpRelation& x) {
    std::vector<std::pair<FactId, TimePoint>> v;
    for (const TpTuple& t : x.tuples()) v.emplace_back(t.fact, t.t.Duration());
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(project(rel), project(shifted));
  // Fresh variables were registered for the copies.
  EXPECT_EQ(ctx->vars().size(), 2000u);
}

TEST(RealWorldTest, ShiftedCopyActuallyShifts) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(8);
  SyntheticSpec spec;
  spec.num_tuples = 500;
  TpRelation rel = GenerateSynthetic(ctx, spec, "r", &rng);
  TpRelation shifted = ShiftedCopy(rel, "s", &rng);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    if (!(rel[i].t == shifted[i].t)) ++moved;
  }
  EXPECT_GT(moved, rel.size() / 2) << "most intervals moved";
}

}  // namespace
}  // namespace tpset
