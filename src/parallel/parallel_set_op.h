// Partitioned parallel LAWA: the paper's advancer run per fact-range
// partition on a thread pool.
//
// Execution of one operation (Fig. 5 pipeline, parallelized):
//   1. sort    — inputs are chunk-sorted and merged on the pool; an input
//                carrying the sortedness witness (TpRelation::known_sorted —
//                catalog relations, set-op outputs) is swept in place with
//                no copy and no sort at all (the zero-sort fast path);
//   2. split   — PartitionByFactRange cuts both inputs at fact boundaries,
//                then BuildMorsels refines the plan into ~morsel_size
//                chunks, time-splitting facts heavier than the budget at
//                clean time boundaries (see parallel/scheduler.h);
//   3. advance — morsels are swept by the sequential advancer on a
//                MorselBatch (per-worker deques + work stealing); what
//                happens to the surviving windows depends on the apply mode
//                (below);
//   4. apply   — the sequential, arena-mutating tail, gated by the
//                ApplySequencer when query subtrees race. With morsel
//                scheduling enabled the apply overlaps phase 3: morsel i is
//                applied as soon as morsels <= i finished sweeping, while
//                later morsels are still advancing — apply *order* (the
//                determinism invariant) is preserved, barrier completion is
//                not required.
//
// Two apply modes trade strictness of the equivalence guarantee for the
// size of the sequential term:
//
//  * ApplyMode::kBitIdentical (default): phase 3 emits *pending* windows
//    (fact, interval, λr, λs) and phase 4 runs the same Concat calls in the
//    same order as sequential LawaSetOp — the arena evolves identically and
//    every output tuple (fact, interval, lineage id) matches the sequential
//    run bit for bit.
//  * ApplyMode::kStaged: each partition sweep interns its concatenations
//    into a thread-local StagingArena during phase 3 and builds its output
//    tuples with partition-local ids; phase 4 shrinks to
//    LineageManager::SpliceStaged per partition (deterministic id remap +
//    append) plus a bulk tuple splice. Output is deterministic and equals
//    the sequential run tuple for tuple in (fact, interval) with
//    probability-equal lineage — node *ids* may differ (see
//    lineage/staging.h). The sequencer critical section shrinks from
//    O(output · intern cost) to O(staged cells), so concurrent subtrees
//    overlap far more.
//
// See DESIGN.md ("Partitioned parallel execution", "Staged apply") for the
// independence and determinism arguments.
#ifndef TPSET_PARALLEL_PARALLEL_SET_OP_H_
#define TPSET_PARALLEL_PARALLEL_SET_OP_H_

#include <memory>
#include <mutex>
#include <string>

#include "baselines/algorithm.h"
#include "common/setop.h"
#include "lawa/set_ops.h"
#include "obs/profile.h"
#include "parallel/scheduler.h"
#include "parallel/sequencer.h"
#include "parallel/thread_pool.h"
#include "relation/relation.h"

namespace tpset {

/// How the arena-mutating apply phase of a parallel set operation runs.
enum class ApplyMode {
  kBitIdentical = 0,  ///< serialized Concat replay; bit-equal to sequential
  kStaged = 1,        ///< per-partition staging arenas + sequential splice
};

/// Wall-clock breakdown of one parallel set operation, phase by phase.
/// `advance_ms` includes staged-mode lineage staging (it runs inside the
/// partition sweeps); `apply_ms` is the sequential arena-mutating tail —
/// the sequencer critical section under concurrent subtree evaluation.
/// With morsel scheduling enabled, apply overlaps the sweeps: `apply_ms`
/// is then the time actually spent splicing/replaying and `advance_ms` the
/// rest of the overlapped span (so the sum still approximates the combined
/// wall time of phases 3+4).
///
/// Since the observability layer (src/obs/), this struct is a *thin
/// adapter*: the engine records phases as child spans ("sort", "split",
/// "advance", "apply") of an obs::Span, and FromSpan projects those four
/// walls back out for callers (benches) that want plain numbers.
struct PhaseTimings {
  double sort_ms = 0.0;
  double split_ms = 0.0;
  double advance_ms = 0.0;
  double apply_ms = 0.0;

  double total_ms() const { return sort_ms + split_ms + advance_ms + apply_ms; }

  /// Projects a node span recorded by ComputeSequenced back into the four
  /// phase walls (a missing child reads as 0).
  static PhaseTimings FromSpan(const obs::Span& span);
};

/// LAWA over fact-range partitions on a private thread pool. Registered as
/// "LAWA-P"; supports all three operations (Table II row of LAWA).
class ParallelSetOpAlgorithm final : public SetOpAlgorithm {
 public:
  /// `num_threads` <= 1 degrades to plain sequential LawaSetOp (no pool is
  /// created; `apply_mode` is then irrelevant — the sequential algorithm is
  /// bit-identical by definition). `partitions_per_thread` oversubscribes
  /// the split so stragglers even out; the pool itself is created lazily on
  /// first use. `morsel` configures the work-stealing refinement of the
  /// partition plan (scheduler.h); MorselOptions{.enabled = false} restores
  /// the legacy one-task-per-partition model with a barrier before apply.
  /// `kernel` selects the sweep kernel for phase 3 (set_ops.h SweepKernel);
  /// morsels sweep column sub-spans of one shared SoA view under
  /// kColumnar. Kernel choice never changes the output — both kernels
  /// produce the identical window stream.
  explicit ParallelSetOpAlgorithm(std::size_t num_threads,
                                  SortMode sort_mode = SortMode::kComparison,
                                  std::size_t partitions_per_thread = 4,
                                  ApplyMode apply_mode = ApplyMode::kBitIdentical,
                                  MorselOptions morsel = {},
                                  SweepKernel kernel = SweepKernel::kAuto);
  ~ParallelSetOpAlgorithm() override;

  std::string name() const override { return "LAWA-P"; }
  bool Supports(SetOpKind) const override { return true; }

  /// Standalone entry point (registry / benchmarks). The caller must not
  /// mutate the shared context concurrently — the same contract as
  /// sequential LawaSetOp.
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override;

  /// Compute with per-phase wall times (and optionally stats) reported.
  TpRelation ComputeTimed(SetOpKind op, const TpRelation& r,
                          const TpRelation& s, PhaseTimings* timings,
                          LawaStats* stats = nullptr) const;

  /// Executor entry point for concurrent query-subtree evaluation: phases
  /// 1-3 run immediately, the arena-mutating apply phase waits for `ticket`
  /// on `seq`. Every concurrent evaluation against one context must go
  /// through one sequencer.
  ///
  /// `stats`: output_tuples matches the sequential run exactly;
  /// windows_produced may be smaller — a partition whose other input is
  /// empty never sweeps, skipping candidate windows the sequential global
  /// loop produces only to filter out. Proposition 1 bounds both counts.
  ///
  /// `span`: when non-null, the operation records its phase walls as child
  /// spans ("sort", "split", "advance", "apply"; the degenerate sequential
  /// path records only "advance" — the whole interleaved wall) and attaches
  /// the LawaStats to `span` itself. The span's own wall/cpu cover the full
  /// call including sequencer waits.
  TpRelation ComputeSequenced(SetOpKind op, const TpRelation& r,
                              const TpRelation& s, ApplySequencer* seq,
                              std::size_t ticket, LawaStats* stats = nullptr,
                              obs::Span* span = nullptr) const;

  std::size_t num_threads() const { return num_threads_; }
  ApplyMode apply_mode() const { return apply_mode_; }
  const MorselOptions& morsel_options() const { return morsel_; }
  SweepKernel sweep_kernel() const { return kernel_; }

 private:
  ThreadPool* pool() const;

  std::size_t num_threads_;
  SortMode sort_mode_;
  std::size_t partitions_per_thread_;
  ApplyMode apply_mode_;
  MorselOptions morsel_;
  SweepKernel kernel_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// Sorts into (fact, start, end) order using `pool`: chunks are sorted as
/// pool tasks (each with `mode`, see SortTuples) and merged pairwise.
void ParallelSortTuples(std::vector<TpTuple>* tuples, SortMode mode,
                        ThreadPool* pool);

/// Sorts `count` independent arrays at once, interleaving their chunk and
/// merge tasks on one pool so no array's merge tail leaves workers idle.
void ParallelSortBatch(std::vector<TpTuple>* const* arrays, std::size_t count,
                       SortMode mode, ThreadPool* pool);

}  // namespace tpset

#endif  // TPSET_PARALLEL_PARALLEL_SET_OP_H_
