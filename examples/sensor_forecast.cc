// Sensor/forecast scenario (the paper's Meteo Swiss motivation, §VII-C).
//
// Two weather models emit per-station stability predictions as TP relations:
// a tuple (station, λ, [ts,te), p) says "model believes station's
// temperature stays stable over [ts,te) with confidence p". The analyst
// asks, per time point:
//   * consensus   = modelA ∩Tp modelB  (both models predict stability)
//   * divergence  = modelA −Tp modelB  (A predicts it, B does not — or B is
//                                       unsure: the probabilistic dimension)
//   * coverage    = modelA ∪Tp modelB  (any model predicts it)
// The example runs the queries through the query executor, prints a sample
// of each answer with exact probabilities, and reports dataset statistics.
#include <cstdio>
#include <iostream>

#include "datagen/realworld.h"
#include "datagen/stats.h"
#include "lawa/overlap_factor.h"
#include "query/analyzer.h"
#include "query/executor.h"
#include "query/parser.h"
#include "relation/io.h"

using namespace tpset;

int main() {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(2026);

  // Model A: a Meteo-like dataset (80 stations, grid-aligned runs).
  MeteoSpec spec;
  spec.num_tuples = 4000;
  TpRelation model_a = GenerateMeteoLike(ctx, spec, "modelA", &rng);
  // Model B: an independent forecast — same run lengths, shifted phases.
  TpRelation model_b = ShiftedCopy(model_a, "modelB", &rng);

  std::cout << "=== Input statistics ===\n";
  PrintStats(std::cout, "modelA", ComputeStats(model_a));
  PrintStats(std::cout, "modelB", ComputeStats(model_b));
  std::printf("overlapping factor (windows): %.3f\n",
              OverlappingFactor(model_a, model_b));
  std::printf("overlapping factor (time-weighted): %.3f\n\n",
              TimeWeightedOverlappingFactor(model_a, model_b));

  QueryExecutor exec(ctx);
  if (!exec.Register(model_a).ok() || !exec.Register(model_b).ok()) {
    std::cerr << "registration failed\n";
    return 1;
  }

  const struct {
    const char* label;
    const char* query;
  } queries[] = {
      {"consensus (A and B agree)", "modelA & modelB"},
      {"divergence (A predicts, B does not)", "modelA - modelB"},
      {"coverage (any model predicts)", "modelA | modelB"},
  };

  PrintOptions opts;
  opts.max_rows = 5;
  for (const auto& q : queries) {
    Result<QueryPtr> parsed = ParseQuery(q.query);
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << '\n';
      return 1;
    }
    // Non-repeating queries guarantee read-once lineage -> the linear-time
    // valuation below is exact (Theorem 1 / Corollary 1).
    std::printf("=== %s: %s (non-repeating: %s) ===\n", q.label, q.query,
                IsNonRepeating(**parsed) ? "yes" : "no");
    Result<TpRelation> answer = exec.Execute(**parsed);
    if (!answer.ok()) {
      std::cerr << answer.status().ToString() << '\n';
      return 1;
    }
    std::printf("%zu answer tuples; first rows:\n", answer->size());
    answer->set_name("");
    PrintRelation(std::cout, *answer, opts);
    std::printf("\n");
  }

  // A repeating query: stations where exactly one model predicts stability.
  // 'modelA' and 'modelB' each appear twice -> the analyzer demands the
  // exact (Shannon) valuation instead of the read-once shortcut.
  const char* xor_query = "(modelA | modelB) - (modelA & modelB)";
  QueryPtr parsed = std::move(ParseQuery(xor_query)).value();
  std::printf("=== exactly-one-model: %s ===\n", xor_query);
  std::printf("non-repeating: %s -> valuation method: %s\n",
              IsNonRepeating(*parsed) ? "yes" : "no",
              RecommendedMethod(*parsed) == ProbabilityMethod::kReadOnce
                  ? "read-once (linear)"
                  : "Shannon expansion (exact)");
  Result<TpRelation> answer = exec.Execute(*parsed);
  if (!answer.ok()) {
    std::cerr << answer.status().ToString() << '\n';
    return 1;
  }
  std::printf("%zu answer tuples; first rows (p via Shannon expansion):\n",
              answer->size());
  PrintOptions exact_opts;
  exact_opts.max_rows = 5;
  exact_opts.method = ProbabilityMethod::kExact;
  answer->set_name("");
  PrintRelation(std::cout, *answer, exact_opts);
  return 0;
}
