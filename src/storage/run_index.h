// Run-indexed storage core: sorted runs, the size-tiered append policy, and
// the k-way merging iterator that presents one logical sorted view.
//
// The LSM-flavored answer to the ROADMAP item "per-epoch latency of a
// continuous query is bounded below by the O(n) MergeSortedAppend into the
// stored relation": an append batch lands as a new sorted run in O(batch)
// instead of merging into the full relation. A size-tiered roll policy —
// after every append, the incoming run merges with its predecessor while the
// predecessor is less than twice its size — keeps the run count logarithmic
// in the data appended since the last compaction, so amortized append work
// is O(batch · log(appended / batch)) and, crucially, independent of the
// size of the compacted base the runs sit in front of. Readers see one
// logical (fact, start, end)-sorted stream through RunMergeIterator,
// regardless of the physical run count; StoredRelation (stored_relation.h)
// wraps the index together with a base level, a per-fact tail map and the
// retention watermark.
//
// Runs are immutable once published and held by shared_ptr, which makes a
// RunIndex a cheap *persistent* value: copying one copies run pointers, not
// tuples. StoredRelation exploits this for its generation snapshots — an
// append or compaction builds a new index sharing every untouched run with
// the published one, and readers holding the old index keep valid spans for
// as long as they hold it.
#ifndef TPSET_STORAGE_RUN_INDEX_H_
#define TPSET_STORAGE_RUN_INDEX_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "relation/tuple.h"

namespace tpset {

/// "No retention": every tuple end is above this watermark.
inline constexpr TimePoint kNoWatermark = std::numeric_limits<TimePoint>::min();

/// A borrowed view of a (fact, start, end)-sorted tuple array.
struct TupleSpan {
  const TpTuple* data = nullptr;
  std::size_t size = 0;

  bool empty() const { return size == 0; }
  const TpTuple* begin() const { return data; }
  const TpTuple* end() const { return data + size; }
};

/// Cumulative counters of one relation's storage engine. Surfaced per leaf
/// by ExplainContinuous and mirrored into LawaStats' storage fields.
struct StorageStats {
  std::size_t appends = 0;         ///< accepted append batches
  std::size_t runs_merged = 0;     ///< source runs consumed by merges
  std::size_t compactions = 0;     ///< merges into the base level
  std::size_t tuples_retired = 0;  ///< tuples dropped below the watermark
  std::size_t tail_hits = 0;       ///< O(1) fact-tail lookups served
};

/// One immutable sorted run: a (fact, start, end)-sorted batch, stamped with
/// the latest epoch folded into it (0 = the base level, which predates the
/// epoch counter). Published runs are never mutated — snapshots borrow spans
/// into them.
struct SortedRun {
  std::vector<TpTuple> tuples;
  EpochId epoch = 0;
};

/// K-way merge over sorted spans, yielding tuples in global (fact, start,
/// end) order — the witness-preserving logical view of a run-indexed
/// relation. Ties (possible only for duplicate tuples, which validated
/// appends never produce) break toward the earlier span, keeping the order
/// deterministic either way. Spans must outlive the iterator.
class RunMergeIterator {
 public:
  explicit RunMergeIterator(const std::vector<TupleSpan>& spans);

  bool Valid() const { return !heap_.empty(); }
  const TpTuple& Get() const { return *heap_.front().cur; }
  void Next();

 private:
  struct Cursor {
    const TpTuple* cur;
    const TpTuple* end;
    std::size_t run;
  };

  /// std::*_heap comparator: true when `a` comes *after* `b` (max-heap order
  /// inverted into a min-heap on (tuple, run index)).
  static bool After(const Cursor& a, const Cursor& b);

  std::vector<Cursor> heap_;
};

/// Merges `spans` into `*out` (appended) in (fact, start, end) order,
/// dropping tuples with t.end <= watermark — a window entirely at or below
/// the watermark is retired, one merely straddling it survives intact.
/// Pass kNoWatermark to keep everything. Returns the number dropped.
std::size_t MergeRuns(const std::vector<TupleSpan>& spans, TimePoint watermark,
                      std::vector<TpTuple>* out);

/// The tail of a run-indexed relation: the sorted runs appended since the
/// last compaction, oldest first, with the size-tiered roll policy applied
/// on every append. A value type over shared immutable runs: copies are
/// O(run count) pointer copies and keep every borrowed span alive. Not
/// thread-safe (callers hold StoredRelation's lock or are single-writer);
/// distinct copies may be used from distinct threads freely.
class RunIndex {
 public:
  RunIndex() = default;
  RunIndex(const RunIndex&) = default;
  RunIndex& operator=(const RunIndex&) = default;
  RunIndex(RunIndex&&) = default;
  RunIndex& operator=(RunIndex&&) = default;

  /// Accepts one (fact, start, end)-sorted batch as a new run and applies
  /// the roll policy (merging the incoming run with its predecessors while
  /// sizes are within 2x, counting the consumed sources into
  /// stats->runs_merged). Rolls build fresh runs — published ones are
  /// immutable. With `allow_roll` false the batch lands as-is; StoredRelation
  /// freezes rolls while a compaction claim is pending so the claimed prefix
  /// stays positionally stable. Epochs must be strictly increasing: a stale
  /// or duplicate epoch is rejected — the fence against double-applied
  /// batches after a writer retry. An empty batch is accepted (it records
  /// the epoch, no run is created). O(batch) amortized.
  Status Append(std::vector<TpTuple> batch, EpochId epoch, StorageStats* stats,
                bool allow_roll = true);

  /// Total tuples across all runs.
  std::size_t size() const { return total_; }
  std::size_t run_count() const { return runs_.size(); }
  const std::vector<std::shared_ptr<const SortedRun>>& runs() const {
    return runs_;
  }

  /// Borrowed spans of every non-empty run, oldest first. Valid while any
  /// RunIndex copy holding the runs is alive.
  std::vector<TupleSpan> spans() const;

  /// The latest epoch accepted (0 before any append). Survives Clear() and
  /// WithoutPrefix(): a compaction folds runs away but must not reopen the
  /// epoch fence.
  EpochId last_epoch() const { return last_epoch_; }

  /// Copy of this index without its oldest `k` runs — what survives a
  /// compaction that claimed the k-run prefix. Keeps the epoch fence.
  RunIndex WithoutPrefix(std::size_t k) const;

  /// Drops all runs (after a compaction folded them into the base level).
  void Clear();

 private:
  std::vector<std::shared_ptr<const SortedRun>> runs_;
  std::size_t total_ = 0;
  EpochId last_epoch_ = 0;
};

}  // namespace tpset

#endif  // TPSET_STORAGE_RUN_INDEX_H_
