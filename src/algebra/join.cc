#include "algebra/join.h"

#include <algorithm>
#include <unordered_map>

#include "relation/validate.h"

namespace tpset {

namespace {

// Key of the join: the projected attribute values, hashed as a fact.
struct KeyHash {
  std::size_t operator()(const Fact& f) const { return HashFact(f); }
};

Fact ExtractKey(const Fact& f, const std::vector<std::size_t>& idx) {
  Fact key;
  key.reserve(idx.size());
  for (std::size_t i : idx) key.push_back(f[i]);
  return key;
}

}  // namespace

Result<TpRelation> TpEquiJoin(const TpRelation& r, const TpRelation& s,
                              const std::vector<std::size_t>& r_keys,
                              const std::vector<std::size_t>& s_keys) {
  if (r.context() != s.context()) {
    return Status::InvalidArgument("join inputs belong to different contexts");
  }
  if (r_keys.size() != s_keys.size()) {
    return Status::InvalidArgument("join key lists have different lengths");
  }
  const Schema& rs = r.schema();
  const Schema& ss = s.schema();
  for (std::size_t k = 0; k < r_keys.size(); ++k) {
    if (r_keys[k] >= rs.num_attributes() || s_keys[k] >= ss.num_attributes()) {
      return Status::InvalidArgument("join key index out of range");
    }
    if (rs.types()[r_keys[k]] != ss.types()[s_keys[k]]) {
      return Status::InvalidArgument("join key types do not match");
    }
  }
  TPSET_RETURN_NOT_OK(ValidateDuplicateFree(r));
  TPSET_RETURN_NOT_OK(ValidateDuplicateFree(s));

  // Output schema: attributes of r followed by attributes of s.
  std::vector<std::string> names = rs.names();
  std::vector<ValueType> types = rs.types();
  for (std::size_t c = 0; c < ss.num_attributes(); ++c) {
    names.push_back(ss.names()[c]);
    types.push_back(ss.types()[c]);
  }

  TpContext& ctx = *r.context();
  LineageManager& mgr = ctx.lineage();
  TpRelation out(r.context(), Schema(names, types),
                 "(" + r.name() + " join " + s.name() + ")");

  // Group both inputs by key.
  std::unordered_map<Fact, std::pair<std::vector<std::size_t>, std::vector<std::size_t>>,
                     KeyHash>
      groups;
  for (std::size_t i = 0; i < r.size(); ++i) {
    groups[ExtractKey(r.FactOf(i), r_keys)].first.push_back(i);
  }
  for (std::size_t j = 0; j < s.size(); ++j) {
    auto it = groups.find(ExtractKey(s.FactOf(j), s_keys));
    if (it != groups.end()) it->second.second.push_back(j);
  }

  // Per key group: event sweep with active sets. Within a key group the
  // intervals of one side may overlap freely (the key is only part of the
  // fact), so the sweep — not a merge of disjoint runs — is required.
  struct Event {
    TimePoint time;
    std::uint32_t idx;
    bool from_r;
    bool is_start;
  };
  std::vector<Event> events;
  std::vector<std::uint32_t> r_active, s_active;
  auto emit = [&](std::size_t i, std::size_t j) {
    Fact combined = r.FactOf(i);
    const Fact& sf = s.FactOf(j);
    combined.insert(combined.end(), sf.begin(), sf.end());
    out.AddDerived(ctx.facts().Intern(combined), Intersect(r[i].t, s[j].t),
                   mgr.ConcatAnd(r[i].lineage, s[j].lineage));
  };

  for (const auto& [key, group] : groups) {
    if (group.first.empty() || group.second.empty()) continue;
    events.clear();
    for (std::size_t i : group.first) {
      events.push_back({r[i].t.start, static_cast<std::uint32_t>(i), true, true});
      events.push_back({r[i].t.end, static_cast<std::uint32_t>(i), true, false});
    }
    for (std::size_t j : group.second) {
      events.push_back({s[j].t.start, static_cast<std::uint32_t>(j), false, true});
      events.push_back({s[j].t.end, static_cast<std::uint32_t>(j), false, false});
    }
    std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
      if (a.time != b.time) return a.time < b.time;
      return a.is_start < b.is_start;  // ends first: adjacency is no overlap
    });
    r_active.clear();
    s_active.clear();
    for (const Event& e : events) {
      if (!e.is_start) {
        auto& active = e.from_r ? r_active : s_active;
        active.erase(std::find(active.begin(), active.end(), e.idx));
        continue;
      }
      if (e.from_r) {
        for (std::uint32_t j : s_active) emit(e.idx, j);
        r_active.push_back(e.idx);
      } else {
        for (std::uint32_t i : r_active) emit(i, e.idx);
        s_active.push_back(e.idx);
      }
    }
  }
  out.SortFactTime();
  return out;
}

Result<TpRelation> TpJoinOnFact(const TpRelation& r, const TpRelation& s) {
  std::vector<std::size_t> r_keys(r.schema().num_attributes());
  std::vector<std::size_t> s_keys(s.schema().num_attributes());
  for (std::size_t i = 0; i < r_keys.size(); ++i) r_keys[i] = i;
  for (std::size_t i = 0; i < s_keys.size(); ++i) s_keys[i] = i;
  return TpEquiJoin(r, s, r_keys, s_keys);
}

}  // namespace tpset
