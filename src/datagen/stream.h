// Append-only streaming workload: per-fact interval chains with tracked
// cursors.
//
// The AppendLog contract (incremental/append_log.h) requires every appended
// tuple to extend its fact's timeline. This generator keeps one cursor per
// fact — where the fact's chain currently ends — so a seeded relation and
// every later delta batch form valid, non-overlapping chains. Shared by
// examples/streaming.cc and bench/bench_streaming.cc so both exercise the
// same workload shape.
#ifndef TPSET_DATAGEN_STREAM_H_
#define TPSET_DATAGEN_STREAM_H_

#include <vector>

#include "common/random.h"
#include "incremental/delta.h"
#include "relation/relation.h"

namespace tpset {

/// Shape of one chain workload. Gaps between consecutive intervals of a
/// fact are uniform in [0, max_gap], lengths in [1, max_len], probabilities
/// in [min_p, max_p].
struct ChainWorkloadSpec {
  TimePoint max_gap = 3;
  TimePoint max_len = 10;
  double min_p = 0.1;
  double max_p = 0.9;
};

/// Seeds `rel` (schema: single int64 attribute) with `num_tuples` tuples
/// spread round-robin over `cursors->size()` facts, advancing the cursors.
/// The relation is left sorted by (fact, start).
void SeedFactChains(TpRelation* rel, std::size_t num_tuples,
                    std::vector<TimePoint>* cursors, Rng* rng,
                    const ChainWorkloadSpec& spec = {});

/// Builds a delta batch of `rows` tuples continuing random facts' chains
/// past their cursors — always a valid append for the seeded relation.
DeltaBatch NextChainBatch(std::vector<TimePoint>* cursors, std::size_t rows,
                          Rng* rng, const ChainWorkloadSpec& spec = {});

}  // namespace tpset

#endif  // TPSET_DATAGEN_STREAM_H_
