#include "storage/run_index.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace tpset {

RunMergeIterator::RunMergeIterator(const std::vector<TupleSpan>& spans) {
  heap_.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].empty()) continue;
    heap_.push_back({spans[i].begin(), spans[i].end(), i});
  }
  std::make_heap(heap_.begin(), heap_.end(), After);
}

bool RunMergeIterator::After(const Cursor& a, const Cursor& b) {
  FactTimeOrder lt;
  if (lt(*b.cur, *a.cur)) return true;
  if (lt(*a.cur, *b.cur)) return false;
  return a.run > b.run;
}

void RunMergeIterator::Next() {
  assert(Valid());
  std::pop_heap(heap_.begin(), heap_.end(), After);
  Cursor& c = heap_.back();
  if (++c.cur == c.end) {
    heap_.pop_back();
  } else {
    std::push_heap(heap_.begin(), heap_.end(), After);
  }
}

std::size_t MergeRuns(const std::vector<TupleSpan>& spans, TimePoint watermark,
                      std::vector<TpTuple>* out) {
  std::size_t total = 0;
  for (const TupleSpan& s : spans) total += s.size;
  out->reserve(out->size() + total);
  std::size_t dropped = 0;
  for (RunMergeIterator it(spans); it.Valid(); it.Next()) {
    const TpTuple& t = it.Get();
    if (t.t.end <= watermark) {
      ++dropped;
      continue;
    }
    out->push_back(t);
  }
  return dropped;
}

Status RunIndex::Append(std::vector<TpTuple> batch, EpochId epoch,
                        StorageStats* stats) {
  if (epoch <= last_epoch_) {
    return Status::InvalidArgument(
        "stale or duplicate epoch " + std::to_string(epoch) +
        " (run index is at epoch " + std::to_string(last_epoch_) + ")");
  }
  assert(std::is_sorted(batch.begin(), batch.end(), FactTimeOrder()) &&
         "runs must be (fact, start, end)-sorted");
  last_epoch_ = epoch;
  if (batch.empty()) return Status::OK();

  total_ += batch.size();
  runs_.push_back({std::move(batch), epoch});

  // Size-tiered roll: fold the youngest run into its predecessor while the
  // predecessor is less than twice its size. Every tuple is re-merged
  // O(log(appended / batch)) times before a compaction claims it, and the
  // run count stays logarithmic — the classic binary-counter amortization.
  while (runs_.size() >= 2) {
    SortedRun& a = runs_[runs_.size() - 2];
    SortedRun& b = runs_.back();
    if (a.tuples.size() >= 2 * b.tuples.size()) break;
    const std::size_t mid = a.tuples.size();
    a.tuples.insert(a.tuples.end(), b.tuples.begin(), b.tuples.end());
    std::inplace_merge(a.tuples.begin(),
                       a.tuples.begin() + static_cast<std::ptrdiff_t>(mid),
                       a.tuples.end(), FactTimeOrder());
    a.epoch = b.epoch;
    runs_.pop_back();
    if (stats != nullptr) stats->runs_merged += 2;
  }
  return Status::OK();
}

std::vector<TupleSpan> RunIndex::spans() const {
  std::vector<TupleSpan> out;
  out.reserve(runs_.size());
  for (const SortedRun& r : runs_) {
    if (!r.tuples.empty()) out.push_back({r.tuples.data(), r.tuples.size()});
  }
  return out;
}

void RunIndex::Clear() {
  runs_.clear();
  total_ = 0;
}

}  // namespace tpset
