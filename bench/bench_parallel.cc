// Thread-scaling of the partitioned parallel engine: LAWA-P at 1/2/4/8
// threads against sequential LAWA on a 1M-tuple-per-relation synthetic pair
// (scaled by TPSET_BENCH_SCALE), all three operations.
//
// Expected shape on a multi-core box: near-linear until the sequential
// lineage-apply phase dominates (Amdahl); >1.5x at 4 threads for union.
// Emits the harness CSV rows plus one JSON summary line per operation
// ("# json {...}") with the speedups, for machine consumption.
#include <memory>
#include <string>

#include "bench/harness.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

// Best of `reps` wall-clock runs (threads warm after the first).
double BestMs(int reps, const std::function<void()>& fn) {
  double best = TimeMs(fn);
  for (int i = 1; i < reps; ++i) best = std::min(best, TimeMs(fn));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::printf("# parallel scaling: LAWA-P threads=1/2/4/8 vs LAWA, "
              "1M tuples/relation (scale=%.3g), 1K facts\n", scale);
  PrintHeader("parallel");

  const std::size_t n = Scaled(1000000, scale);
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  Rng rng(0x9A7A11E1);
  SyntheticPairSpec spec = TableIIIPreset(0.6);
  spec.num_tuples = n;
  spec.num_facts = std::max<std::size_t>(1, n / 1000);
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const int reps = 3;

  for (SetOpKind op : kAllSetOps) {
    const char* op_name = SetOpName(op);

    double seq_ms = BestMs(reps, [&]() {
      TpRelation out = LawaSetOp(op, r, s);
      (void)out;
    });
    PrintRow("parallel", op_name, "LAWA", n, seq_ms);

    double ms_at[9] = {0};
    for (std::size_t threads : thread_counts) {
      ParallelSetOpAlgorithm algo(threads);
      double ms = BestMs(reps, [&]() {
        TpRelation out = algo.Compute(op, r, s);
        (void)out;
      });
      ms_at[threads] = ms;
      PrintRow("parallel", op_name, "LAWA-P/" + std::to_string(threads), n, ms);
    }

    std::printf("# json {\"experiment\":\"parallel\",\"operation\":\"%s\","
                "\"n\":%zu,\"lawa_ms\":%.3f,\"t1_ms\":%.3f,\"t2_ms\":%.3f,"
                "\"t4_ms\":%.3f,\"t8_ms\":%.3f,\"speedup_4_over_1\":%.3f,"
                "\"speedup_8_over_1\":%.3f}\n",
                op_name, n, seq_ms, ms_at[1], ms_at[2], ms_at[4], ms_at[8],
                ms_at[4] > 0 ? ms_at[1] / ms_at[4] : 0.0,
                ms_at[8] > 0 ? ms_at[1] / ms_at[8] : 0.0);
  }
  return 0;
}
