// Dataset characteristics in the shape of the paper's Table IV.
#ifndef TPSET_DATAGEN_STATS_H_
#define TPSET_DATAGEN_STATS_H_

#include <iosfwd>
#include <string>

#include "relation/relation.h"

namespace tpset {

/// The Table IV columns for one dataset.
struct DatasetStats {
  std::size_t cardinality = 0;       ///< number of tuples
  TimePoint time_range = 0;          ///< max end − min start
  TimePoint min_duration = 0;
  TimePoint max_duration = 0;
  double avg_duration = 0.0;
  std::size_t num_facts = 0;         ///< distinct facts
  std::size_t distinct_points = 0;   ///< distinct start/end points
  /// Max/avg number of tuples *starting or ending* at one distinct time
  /// point (the Table IV reading consistent with Meteo avg 37 ≈ 2·10.2M/545K
  /// and Webkit max 369K = files touched by one mass commit).
  std::size_t max_tuples_per_point = 0;
  double avg_tuples_per_point = 0.0;
};

/// Computes the statistics with one sort + sweep over the endpoints.
DatasetStats ComputeStats(const TpRelation& rel);

/// Prints "name: cardinality=... time_range=..." rows, one property per line.
void PrintStats(std::ostream& os, const std::string& name, const DatasetStats& s);

}  // namespace tpset

#endif  // TPSET_DATAGEN_STATS_H_
