// Partitioned parallel LAWA: the paper's advancer run per fact-range
// partition on a thread pool, with results bit-identical to sequential LAWA.
//
// Execution of one operation (Fig. 5 pipeline, parallelized):
//   1. sort    — both inputs are chunk-sorted and merged on the pool;
//   2. split   — PartitionByFactRange cuts both inputs at fact boundaries;
//   3. advance — each partition is swept by the sequential advancer on the
//                pool, emitting *pending* windows (fact, interval, λr, λs)
//                that already passed the per-operation λ-filter;
//   4. apply   — the caller thread concatenates lineages and appends output
//                tuples partition by partition, in fact order.
//
// Phase 4 is the only phase touching the shared lineage arena, and it runs
// the same Concat calls in the same order as sequential LawaSetOp — so with
// or without hash-consing, the arena evolves identically and every output
// tuple (fact, interval, lineage id) matches the sequential run bit for bit.
// See DESIGN.md ("Partitioned parallel execution") for the independence
// argument.
#ifndef TPSET_PARALLEL_PARALLEL_SET_OP_H_
#define TPSET_PARALLEL_PARALLEL_SET_OP_H_

#include <memory>
#include <mutex>
#include <string>

#include "baselines/algorithm.h"
#include "common/setop.h"
#include "lawa/set_ops.h"
#include "parallel/sequencer.h"
#include "parallel/thread_pool.h"
#include "relation/relation.h"

namespace tpset {

/// LAWA over fact-range partitions on a private thread pool. Registered as
/// "LAWA-P"; supports all three operations (Table II row of LAWA).
class ParallelSetOpAlgorithm final : public SetOpAlgorithm {
 public:
  /// `num_threads` <= 1 degrades to plain sequential LawaSetOp (no pool is
  /// created). `partitions_per_thread` oversubscribes the split so stragglers
  /// even out; the pool itself is created lazily on first use.
  explicit ParallelSetOpAlgorithm(std::size_t num_threads,
                                  SortMode sort_mode = SortMode::kComparison,
                                  std::size_t partitions_per_thread = 4);
  ~ParallelSetOpAlgorithm() override;

  std::string name() const override { return "LAWA-P"; }
  bool Supports(SetOpKind) const override { return true; }

  /// Standalone entry point (registry / benchmarks). The caller must not
  /// mutate the shared context concurrently — the same contract as
  /// sequential LawaSetOp.
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override;

  /// Executor entry point for concurrent query-subtree evaluation: phases
  /// 1-3 run immediately, the arena-mutating apply phase waits for `ticket`
  /// on `seq`. Every concurrent evaluation against one context must go
  /// through one sequencer.
  ///
  /// `stats`: output_tuples matches the sequential run exactly;
  /// windows_produced may be smaller — a partition whose other input is
  /// empty never sweeps, skipping candidate windows the sequential global
  /// loop produces only to filter out. Proposition 1 bounds both counts.
  TpRelation ComputeSequenced(SetOpKind op, const TpRelation& r,
                              const TpRelation& s, ApplySequencer* seq,
                              std::size_t ticket,
                              LawaStats* stats = nullptr) const;

  std::size_t num_threads() const { return num_threads_; }

 private:
  ThreadPool* pool() const;

  std::size_t num_threads_;
  SortMode sort_mode_;
  std::size_t partitions_per_thread_;
  mutable std::once_flag pool_once_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

/// Sorts into (fact, start, end) order using `pool`: chunks are sorted as
/// pool tasks (each with `mode`, see SortTuples) and merged pairwise.
void ParallelSortTuples(std::vector<TpTuple>* tuples, SortMode mode,
                        ThreadPool* pool);

/// Sorts `count` independent arrays at once, interleaving their chunk and
/// merge tasks on one pool so no array's merge tail leaves workers idle.
void ParallelSortBatch(std::vector<TpTuple>* const* arrays, std::size_t count,
                       SortMode mode, ThreadPool* pool);

}  // namespace tpset

#endif  // TPSET_PARALLEL_PARALLEL_SET_OP_H_
