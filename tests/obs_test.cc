// Observability layer: sharded metrics (under concurrent hammering — this
// test carries the concurrency label and runs under the CI TSan job), the
// runtime kill switch, golden Prometheus/JSON exports, and span-tree
// well-formedness properties.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::PropertySeeds;

constexpr std::size_t kThreads = 8;

// N threads hammer one counter; the aggregate is exact — shards may split
// the increments any way, but none may be lost.
TEST(ObsMetricsTest, ConcurrentCounterIncrementsAreExact) {
  obs::Counter counter;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

// Concurrent histogram observations: total count and sum are exact and the
// per-bucket counts add up to the count (the CI validator's invariant).
TEST(ObsMetricsTest, ConcurrentHistogramObservationsAreExact) {
  obs::Histogram hist;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t]() {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hist.Observe(t * kPerThread + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0, sum = 0;
  hist.Snapshot(&buckets, &count, &sum);
  const std::uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(count, n);
  EXPECT_EQ(sum, n * (n - 1) / 2);  // sum of 0..n-1
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, count);
}

// Concurrent gauge adds cancel exactly.
TEST(ObsMetricsTest, ConcurrentGaugeAddsBalance) {
  obs::Gauge gauge;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge, t]() {
      const std::int64_t delta = t % 2 == 0 ? 7 : -7;
      for (int i = 0; i < 10000; ++i) gauge.Add(delta);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(gauge.Value(), 0);
}

// Property: a counter's Value() never decreases, even while writers are
// racing the reads (shards only grow; relaxed loads may lag, never exceed).
TEST(ObsMetricsTest, CounterIsMonotoneUnderConcurrency) {
  for (std::uint64_t seed : PropertySeeds({1, 7, 42})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    obs::Counter counter;
    std::atomic<bool> done{false};
    std::atomic<bool> monotone{true};
    std::thread reader([&]() {
      std::uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        const std::uint64_t v = counter.Value();
        if (v < last) monotone.store(false, std::memory_order_relaxed);
        last = v;
      }
    });
    std::uint64_t expected = 0;
    std::vector<std::uint64_t> written(4, 0);
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < 4; ++t) {
      writers.emplace_back([&counter, &written, seed, t]() {
        std::mt19937_64 rng(seed * 1000 + t);
        for (int i = 0; i < 5000; ++i) {
          const std::uint64_t n = rng() % 8;
          counter.Increment(n);
          written[t] += n;
        }
      });
    }
    for (std::thread& w : writers) w.join();
    done.store(true, std::memory_order_release);
    reader.join();
    for (std::uint64_t w : written) expected += w;
    EXPECT_TRUE(monotone.load());
    EXPECT_EQ(counter.Value(), expected);
  }
}

// The runtime kill switch freezes every metric kind; re-enabling resumes
// recording from the frozen value (scrapes keep working throughout).
TEST(ObsMetricsTest, RuntimeKillSwitchFreezesRecording) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  ASSERT_TRUE(obs::MetricsRegistry::enabled());
  obs::Counter counter;
  obs::Gauge gauge;
  obs::Histogram hist;
  counter.Increment(3);
  gauge.Set(5);
  hist.Observe(1);

  obs::MetricsRegistry::set_enabled(false);
  counter.Increment(100);
  gauge.Set(-1);
  gauge.Add(17);
  hist.Observe(9999);
  obs::MetricsRegistry::set_enabled(true);

  EXPECT_EQ(counter.Value(), 3u);
  EXPECT_EQ(gauge.Value(), 5);
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0, sum = 0;
  hist.Snapshot(&buckets, &count, &sum);
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(sum, 1u);

  counter.Increment(2);
  EXPECT_EQ(counter.Value(), 5u);
}

// Golden Prometheus text export from a locally-built registry with known
// values. Bucket lines are generated from the documented bounds — cumulative
// counts, +Inf last, then _sum/_count.
TEST(ObsExportTest, PrometheusTextGolden) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tpset_test_ops_total", "ops").Increment(42);
  registry.GetGauge("tpset_test_depth", "depth").Set(-3);
  obs::Histogram& hist = registry.GetHistogram("tpset_test_lat_usec", "lat");
  hist.Observe(0);  // bucket 0
  hist.Observe(5);  // bucket 3: [4, 8)
  hist.Observe(5);

  std::string expected =
      "# HELP tpset_test_depth depth\n"
      "# TYPE tpset_test_depth gauge\n"
      "tpset_test_depth -3\n"
      "# HELP tpset_test_lat_usec lat\n"
      "# TYPE tpset_test_lat_usec histogram\n";
  for (std::size_t b = 0; b < obs::kHistogramBuckets; ++b) {
    const std::uint64_t cumulative = b == 0 ? 1 : (b < 3 ? 1 : 3);
    const std::string le =
        b + 1 == obs::kHistogramBuckets
            ? "+Inf"
            : std::to_string(obs::HistogramBucketBound(b));
    expected += "tpset_test_lat_usec_bucket{le=\"" + le + "\"} " +
                std::to_string(cumulative) + "\n";
  }
  expected +=
      "tpset_test_lat_usec_sum 10\n"
      "tpset_test_lat_usec_count 3\n"
      "# HELP tpset_test_ops_total ops\n"
      "# TYPE tpset_test_ops_total counter\n"
      "tpset_test_ops_total 42\n";

  EXPECT_EQ(obs::PrometheusText(registry.Scrape()), expected);
}

// JSON-lines export: one object per metric, sorted by name; histogram
// buckets are non-cumulative and sum to the count.
TEST(ObsExportTest, JsonLinesShapeAndConsistency) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tpset_test_ops_total", "ops").Increment(7);
  obs::Histogram& hist = registry.GetHistogram("tpset_test_lat_usec", "lat");
  for (std::uint64_t v : {0, 1, 2, 100, 1000000}) hist.Observe(v);

  const obs::MetricsSnapshot snapshot = registry.Scrape();
  const obs::MetricSnapshot* h = snapshot.Find("tpset_test_lat_usec");
  ASSERT_NE(h, nullptr);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->hist_count);
  EXPECT_EQ(h->hist_count, 5u);
  EXPECT_EQ(h->hist_sum, 1000103u);

  const std::string lines = obs::JsonLines(snapshot);
  EXPECT_NE(lines.find("{\"name\":\"tpset_test_ops_total\",\"type\":"
                       "\"counter\",\"value\":7}\n"),
            std::string::npos)
      << lines;
  EXPECT_NE(lines.find("\"name\":\"tpset_test_lat_usec\",\"type\":"
                       "\"histogram\",\"count\":5,\"sum\":1000103"),
            std::string::npos)
      << lines;
  // One line per metric, each a braced object.
  std::size_t line_count = 0;
  for (char c : lines) line_count += c == '\n';
  EXPECT_EQ(line_count, snapshot.metrics.size());
}

// Scrape-while-record: exporters run against a registry that writers are
// mutating and extending (new metrics registering mid-scrape). Every export
// must be structurally complete — whole lines, no torn names — and once the
// writers quiesce the export carries the exact final values. TSan-clean.
TEST(ObsExportTest, ExportsStayWellFormedWhileRecording) {
  obs::MetricsRegistry registry;
  obs::Counter& ops = registry.GetCounter("tpset_race_ops_total", "ops");
  obs::Histogram& lat = registry.GetHistogram("tpset_race_lat_usec", "lat");
  obs::Gauge& depth = registry.GetGauge("tpset_race_depth", "depth");

  constexpr int kDynamic = 64;
  std::atomic<bool> done{false};
  std::atomic<bool> well_formed{true};
  std::thread mutator([&]() {
    std::int64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      ops.Increment();
      lat.Observe(static_cast<std::uint64_t>(i % 1024));
      depth.Set(i % 32 - 16);
      ++i;
    }
  });
  std::thread registrar([&registry]() {
    for (int i = 0; i < kDynamic; ++i) {
      registry
          .GetCounter("tpset_race_dyn" + std::to_string(i) + "_total", "dyn")
          .Increment(static_cast<std::uint64_t>(i));
    }
  });
  std::thread scraper([&]() {
    while (!done.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = registry.Scrape();
      // Prometheus: every line is a comment or starts with a metric name.
      const std::string prom = obs::PrometheusText(snap);
      std::size_t start = 0;
      while (start < prom.size()) {
        std::size_t end = prom.find('\n', start);
        if (end == std::string::npos) end = prom.size();
        const std::string line = prom.substr(start, end - start);
        if (!line.empty() && line[0] != '#' &&
            line.rfind("tpset_race_", 0) != 0) {
          well_formed.store(false, std::memory_order_relaxed);
        }
        start = end + 1;
      }
      // JSON lines: one braced object per line, name always present.
      const std::string lines = obs::JsonLines(snap);
      start = 0;
      while (start < lines.size()) {
        std::size_t end = lines.find('\n', start);
        if (end == std::string::npos) break;
        const std::string line = lines.substr(start, end - start);
        if (line.rfind("{\"name\":\"tpset_race_", 0) != 0 ||
            line.back() != '}') {
          well_formed.store(false, std::memory_order_relaxed);
        }
        start = end + 1;
      }
    }
  });
  registrar.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true, std::memory_order_release);
  mutator.join();
  scraper.join();
  EXPECT_TRUE(well_formed.load());

  // Quiesced: the final export is exact and internally consistent.
  const obs::MetricsSnapshot snap = registry.Scrape();
  EXPECT_EQ(snap.metrics.size(), 3u + kDynamic);
  const obs::MetricSnapshot* c = snap.Find("tpset_race_ops_total");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->counter, ops.Value());
  const obs::MetricSnapshot* h = snap.Find("tpset_race_lat_usec");
  ASSERT_NE(h, nullptr);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->hist_count);
  for (int i = 0; i < kDynamic; ++i) {
    const obs::MetricSnapshot* d =
        snap.Find("tpset_race_dyn" + std::to_string(i) + "_total");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->counter, static_cast<std::uint64_t>(i));
  }
}

// Re-registration returns the same metric (stable handles).
TEST(ObsMetricsTest, RegistrationIsIdempotent) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("tpset_test_x_total", "first");
  obs::Counter& b = registry.GetCounter("tpset_test_x_total", "second");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.Value(), 1u);
  EXPECT_EQ(registry.Scrape().Find("tpset_test_x_total")->help, "first");
}

// ---- Span trees -------------------------------------------------------------

// Counts spans and checks parent/child invariants recursively.
void CheckSpanTree(const obs::Span& span, std::size_t depth,
                   std::size_t* count, std::size_t max_depth) {
  ++*count;
  EXPECT_LE(depth, max_depth);
  EXPECT_FALSE(span.name.empty());
  for (const auto& child : span.children) {
    ASSERT_NE(child, nullptr);
    CheckSpanTree(*child, depth + 1, count, max_depth);
  }
}

// Property: randomly grown span trees stay well-formed — every AddChild is
// reachable exactly once, FindChild resolves first-by-name, Render emits one
// line per span at the right indentation, ToJson balances its braces.
TEST(ObsProfileTest, SpanTreeWellFormednessProperty) {
  for (std::uint64_t seed : PropertySeeds({3, 11, 99})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::mt19937_64 rng(seed);
    obs::QueryProfile profile("root");

    // Grow a random tree: repeatedly pick a span and add a child.
    std::vector<obs::Span*> spans = {&profile.root()};
    const std::size_t kSpans = 1 + rng() % 40;
    for (std::size_t i = 0; i < kSpans; ++i) {
      obs::Span* parent = spans[rng() % spans.size()];
      obs::Span* child = parent->AddChild("s" + std::to_string(i % 7));
      child->wall_ms = static_cast<double>(rng() % 1000) / 10.0;
      if (rng() % 2 == 0) child->SetAttr("out", std::size_t{i});
      if (rng() % 3 == 0) {
        LawaStats stats;
        stats.windows_produced = i;
        child->AttachStats(stats);
      }
      spans.push_back(child);
    }

    std::size_t count = 0;
    CheckSpanTree(profile.root(), 0, &count, kSpans + 1);
    EXPECT_EQ(count, spans.size());

    // Render: exactly one line per span.
    const std::string text = profile.Render();
    std::size_t line_count = 0;
    for (char c : text) line_count += c == '\n';
    EXPECT_EQ(line_count, count) << text;

    // FindChild returns the first child with the name.
    if (!profile.root().children.empty()) {
      const obs::Span* first = profile.root().children.front().get();
      EXPECT_EQ(profile.root().FindChild(first->name), first);
    }
    EXPECT_EQ(profile.root().FindChild("no-such-child"), nullptr);

    // ToJson: balanced braces and brackets, root name present.
    const std::string json = profile.ToJson();
    std::int64_t braces = 0, brackets = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      braces += c == '{';
      braces -= c == '}';
      brackets += c == '[';
      brackets -= c == ']';
      EXPECT_GE(braces, 0);
      EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0) << json;
    EXPECT_EQ(brackets, 0) << json;
    EXPECT_NE(json.find("\"name\":\"root\""), std::string::npos);
  }
}

// SpanTimer stamps wall/CPU on stop, is idempotent, and is null-safe.
TEST(ObsProfileTest, SpanTimerStampsAndNullIsNoop) {
  obs::Span span;
  span.name = "timed";
  {
    obs::SpanTimer timer(&span);
    timer.Stop();
    timer.Stop();  // idempotent
  }
  EXPECT_GE(span.wall_ms, 0.0);
  EXPECT_GT(span.start_unix_us, 0);

  obs::SpanTimer null_timer(nullptr);  // must not crash
  null_timer.Stop();
}

// A profile Reset produces a fresh root with a new admission timestamp.
TEST(ObsProfileTest, ResetProducesFreshRoot) {
  obs::QueryProfile profile("epoch");
  profile.root().AddChild("child");
  ASSERT_EQ(profile.root().children.size(), 1u);
  profile.Reset("epoch");
  EXPECT_TRUE(profile.root().children.empty());
  EXPECT_EQ(profile.root().name, "epoch");
  EXPECT_GT(profile.admitted_unix_us(), 0);
}

}  // namespace
}  // namespace tpset
