// TpContext (shared database state) and TpRelation (a set of TP tuples).
#ifndef TPSET_RELATION_RELATION_H_
#define TPSET_RELATION_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/fact_dictionary.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "common/value.h"
#include "lineage/lineage.h"
#include "relation/columnar.h"
#include "relation/tuple.h"

namespace tpset {

/// Shared state of one TP database: the fact dictionary, the Boolean
/// variables of all base tuples, and the lineage arena. Every relation that
/// participates in one query must share one context (facts and lineages are
/// only comparable within a context).
class TpContext {
 public:
  /// `hash_consing` is forwarded to the LineageManager; see lineage.h.
  explicit TpContext(bool hash_consing = true) : lineage_(hash_consing) {}

  TpContext(const TpContext&) = delete;
  TpContext& operator=(const TpContext&) = delete;

  FactDictionary& facts() { return facts_; }
  const FactDictionary& facts() const { return facts_; }
  VarTable& vars() { return vars_; }
  const VarTable& vars() const { return vars_; }
  LineageManager& lineage() { return lineage_; }
  const LineageManager& lineage() const { return lineage_; }

 private:
  FactDictionary facts_;
  VarTable vars_;
  LineageManager lineage_;
};

/// How to valuate a lineage into a probability (see lineage/eval.h).
enum class ProbabilityMethod {
  kReadOnce,    ///< linear; exact for 1OF lineages (non-repeating queries)
  kExact,       ///< Shannon expansion; exact for all lineages
  kMonteCarlo,  ///< sampling approximation
};

/// A temporal-probabilistic relation: a finite set of TP tuples plus the
/// schema of its conventional attributes. Tuples reference state in the
/// shared TpContext.
class TpRelation {
 public:
  TpRelation() = default;
  TpRelation(std::shared_ptr<TpContext> ctx, Schema schema, std::string name = "")
      : ctx_(std::move(ctx)), schema_(std::move(schema)), name_(std::move(name)) {}

  const std::shared_ptr<TpContext>& context() const { return ctx_; }
  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<TpTuple>& tuples() const { return tuples_; }
  /// Direct tuple access for bulk algorithms. Conservatively clears the
  /// sortedness flag (the caller may reorder arbitrarily); producers that
  /// append in order should re-assert with MarkSortedUnchecked(). The flag
  /// is cleared at *call* time only — do not retain the reference across a
  /// later SortFactTime/MarkSortedUnchecked and then mutate through it, or
  /// the witness goes stale and the zero-sort fast path reads unsorted data.
  std::vector<TpTuple>& mutable_tuples() {
    sorted_ = false;
    columnar_.Invalidate();
    return tuples_;
  }
  const TpTuple& operator[](std::size_t i) const { return tuples_[i]; }

  /// Adds a base tuple: interns the fact, registers a fresh Boolean variable
  /// with probability p (named `var_name` if non-empty), and stores the tuple
  /// with an atomic lineage. Returns the variable id.
  Result<VarId> AddBase(const Fact& fact, Interval iv, double p,
                        const std::string& var_name = "");

  /// Adds a base tuple for an already-interned fact (bulk/generator path;
  /// skips schema validation). Returns the fresh variable id.
  VarId AddBaseFast(FactId fact, Interval iv, double p);

  /// Adds a derived tuple with an existing lineage (algorithm output path).
  void AddDerived(FactId fact, Interval iv, LineageId lineage);

  /// Merges a (fact, start, end)-sorted batch into the relation in O(n + m),
  /// preserving the sortedness witness. This was the append path of the
  /// incremental engine before the run-indexed storage (src/storage/) moved
  /// appends off the O(n) merge — it remains the reference merge for
  /// StoredRelation's view fold and the baseline bench_storage measures the
  /// run index against. Requires the relation to carry the witness (catalog
  /// relations always do) and the batch to be sorted; both are asserted, not
  /// re-checked. Duplicate-freeness against existing tuples is the caller's
  /// contract (callers validate per fact before building the batch).
  void MergeSortedAppend(std::vector<TpTuple> batch);

  /// Sorts tuples into the (fact, start) order required by LAWA.
  void SortFactTime();

  /// True iff tuples are in (fact, start) order. Deliberately does NOT
  /// memoize into the witness: relations are read concurrently by the
  /// parallel engine, and a write-through-const would race. Callers that
  /// verified order and own the relation arm the witness explicitly
  /// (MarkSortedUnchecked), as QueryExecutor::Register does for its
  /// catalog copy.
  bool IsSortedFactTime() const;

  /// O(1) sortedness witness: true guarantees (fact, start, end) order —
  /// maintained incrementally by the Add* methods, set by SortFactTime /
  /// MarkSortedUnchecked, cleared by mutable_tuples(). False only means
  /// "unknown"; set operations use this to skip the per-operation copy +
  /// sort entirely (the §VI-B sort step) for inputs known sorted.
  bool known_sorted() const { return sorted_; }

  /// Asserts sortedness without the O(n) check. For algorithm outputs that
  /// are produced in (fact, start) order by construction (LAWA emits windows
  /// in fact order with increasing starts); the caller vouches for order.
  void MarkSortedUnchecked() { sorted_ = true; }

  /// The cached SoA projection of the tuple array, built lazily on first
  /// use and invalidated by every mutation alongside the sortedness state.
  /// Caller contract: only meaningful for sorted relations — callers hold
  /// the `known_sorted` witness (or have just sorted) before asking for
  /// columns, exactly as they do before sweeping the AoS tuples. Safe for
  /// concurrent readers of a non-mutated relation: the first caller builds
  /// under a lock, later callers share the immutable view.
  ColumnSpan columnar() const {
    return columnar_.GetOrBuild(tuples_.data(), tuples_.size());
  }

  /// Probability of tuple i under the chosen method. Monte-Carlo uses
  /// `samples` draws from `rng` (required for kMonteCarlo only).
  double TupleProbability(std::size_t i,
                          ProbabilityMethod method = ProbabilityMethod::kReadOnce,
                          std::size_t samples = 10000, Rng* rng = nullptr) const;

  /// The fact values of tuple i.
  const Fact& FactOf(std::size_t i) const {
    return ctx_->facts().Get(tuples_[i].fact);
  }

  /// Lineage of tuple i rendered with variable names.
  std::string LineageString(std::size_t i, bool ascii = false) const {
    return ctx_->lineage().ToString(tuples_[i].lineage, ctx_->vars(), ascii);
  }

 private:
  /// Incremental sortedness maintenance: appending a tuple that extends the
  /// (fact, start, end) order keeps the flag; one out-of-order append clears
  /// it until the next SortFactTime / IsSortedFactTime.
  void NoteAppended() {
    columnar_.Invalidate();  // one relaxed load while no view is cached
    if (sorted_ && tuples_.size() > 1 &&
        FactTimeOrder()(tuples_.back(), tuples_[tuples_.size() - 2])) {
      sorted_ = false;
    }
  }

  std::shared_ptr<TpContext> ctx_;
  Schema schema_;
  std::string name_;
  std::vector<TpTuple> tuples_;
  /// True ⟹ tuples_ is in (fact, start, end) order; empty relations are
  /// vacuously sorted. Written only by non-const methods, so concurrent
  /// readers of a non-mutated relation are race-free.
  bool sorted_ = true;
  /// Lazily-built SoA projection of tuples_; dropped on every mutation
  /// (the Add*/Merge/Sort methods and mutable_tuples), in lockstep with
  /// the sortedness bookkeeping above.
  mutable ColumnarCache columnar_;
};

/// Order-insensitive equivalence of two relations sharing one context:
/// same tuple multiset where lineages are compared up to commutativity /
/// associativity (LineageManager::CanonicalKey). Used by tests to compare
/// outputs of different algorithms.
bool RelationsEquivalent(const TpRelation& a, const TpRelation& b);

}  // namespace tpset

#endif  // TPSET_RELATION_RELATION_H_
