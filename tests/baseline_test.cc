// Baselines (NORM, TPDB, TI, OIP): Table II capabilities, paper-example
// correctness, and randomized equivalence against LAWA.
#include <gtest/gtest.h>

#include "baselines/algorithm.h"
#include "baselines/norm.h"
#include "baselines/oip.h"
#include "baselines/timeline_index.h"
#include "baselines/tpdb.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

// ---- Table II: the support matrix ----

TEST(BaselineTest, TableIISupportMatrix) {
  struct Row {
    const char* name;
    bool u, d, x;  // union, difference, intersection
  };
  // Table II of the paper, plus the partitioned parallel LAWA variant
  // (same support row as its sequential base).
  const Row expected[] = {
      {"LAWA", true, true, true}, {"LAWA-P", true, true, true},
      {"NORM", true, true, true}, {"TPDB", true, false, true},
      {"OIP", false, false, true}, {"TI", false, false, true},
  };
  for (const Row& row : expected) {
    const SetOpAlgorithm* algo = FindAlgorithm(row.name);
    ASSERT_NE(algo, nullptr) << row.name;
    EXPECT_EQ(algo->Supports(SetOpKind::kUnion), row.u) << row.name;
    EXPECT_EQ(algo->Supports(SetOpKind::kExcept), row.d) << row.name;
    EXPECT_EQ(algo->Supports(SetOpKind::kIntersect), row.x) << row.name;
  }
  EXPECT_EQ(AllAlgorithms().size(), 6u);
  EXPECT_EQ(FindAlgorithm("nope"), nullptr);
}

TEST(BaselineTest, UnsupportedOpsReturnNotSupported) {
  SupermarketDb db;
  EXPECT_EQ(TpdbSetOp(SetOpKind::kExcept, db.a, db.c).status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(OipSetOp(SetOpKind::kUnion, db.a, db.c).status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(OipSetOp(SetOpKind::kExcept, db.a, db.c).status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(TimelineSetOp(SetOpKind::kUnion, db.a, db.c).status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(TimelineSetOp(SetOpKind::kExcept, db.a, db.c).status().code(),
            StatusCode::kNotSupported);
}

// ---- paper example, every algorithm on every supported op ----

TEST(BaselineTest, PaperExampleAllAlgorithms) {
  SupermarketDb db;
  for (const SetOpAlgorithm* algo : AllAlgorithms()) {
    for (SetOpKind op : kAllSetOps) {
      if (!algo->Supports(op)) continue;
      TpRelation expected = LawaSetOp(op, db.a, db.c);
      TpRelation actual = algo->Compute(op, db.a, db.c);
      EXPECT_TRUE(RelationsEquivalent(expected, actual))
          << algo->name() << " " << SetOpName(op);
    }
  }
}

// ---- NORM specifics ----

TEST(BaselineTest, NormalizeSplitsAtOverlappingBoundaries) {
  SupermarketDb db;
  // Normalize a by c: milk a1 [2,10) splits at c1.end=4, c2.start=6,
  // c2.end=8 -> [2,4),[4,6),[6,8),[8,10).
  std::vector<TpTuple> na = Normalize(db.a.tuples(), db.c.tuples());
  int milk_fragments = 0;
  for (const TpTuple& t : na) {
    if (t.fact == db.a[0].fact) ++milk_fragments;
  }
  EXPECT_EQ(milk_fragments, 4);
  // dates a3 has no same-fact counterpart in c: stays whole.
  int dates_fragments = 0;
  for (const TpTuple& t : na) {
    if (t.fact == db.a[2].fact) ++dates_fragments;
  }
  EXPECT_EQ(dates_fragments, 1);
}

TEST(BaselineTest, NormalizeIsNotSymmetric) {
  SupermarketDb db;
  EXPECT_NE(Normalize(db.a.tuples(), db.c.tuples()).size(),
            Normalize(db.c.tuples(), db.a.tuples()).size());
}

// ---- TPDB specifics ----

TEST(BaselineTest, TpdbStatsCountRuleApplications) {
  SupermarketDb db;
  TpdbStats stats;
  Result<TpRelation> out = TpdbSetOp(SetOpKind::kIntersect, db.a, db.c, &stats);
  ASSERT_TRUE(out.ok());
  // Six rules, each scanning all same-fact pairs: milk 1x2, chips 1x2 -> 4
  // pairs per rule, 24 total.
  EXPECT_EQ(stats.pairs_tested, 24u);
  EXPECT_EQ(stats.grounded_tuples, 3u);
}

// ---- TI specifics ----

TEST(BaselineTest, TimelineIndexOrdersEndsBeforeStarts) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 5, 0.5}, {"f", "r2", 5, 9, 0.5}});
  TimelineIndex idx = TimelineIndex::Build(r.tuples());
  ASSERT_EQ(idx.events().size(), 4u);
  // At t=5 the end of r1 precedes the start of r2.
  EXPECT_EQ(idx.events()[1].time, 5);
  EXPECT_FALSE(idx.events()[1].is_start);
  EXPECT_EQ(idx.events()[2].time, 5);
  EXPECT_TRUE(idx.events()[2].is_start);
}

TEST(BaselineTest, TimelineJoinCountsPairsAcrossFacts) {
  // One fact in r and a different fact in s, overlapping in time: TI forms
  // the pair and then rejects it on the fact filter (its known weakness).
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 10, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"g", "s1", 2, 8, 0.5}});
  TimelineJoinStats stats;
  Result<TpRelation> out = TimelineSetOp(SetOpKind::kIntersect, r, s, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 0u);
  EXPECT_EQ(stats.pairs_formed, 1u) << "pair formed before filtering";
  EXPECT_EQ(stats.lookups, 2u);
}

TEST(BaselineTest, AdjacentIntervalsDoNotJoin) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 5, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"f", "s1", 5, 9, 0.5}});
  Result<TpRelation> ti = TimelineSetOp(SetOpKind::kIntersect, r, s);
  ASSERT_TRUE(ti.ok());
  EXPECT_EQ(ti->size(), 0u);
  Result<TpRelation> oip = OipSetOp(SetOpKind::kIntersect, r, s);
  ASSERT_TRUE(oip.ok());
  EXPECT_EQ(oip->size(), 0u);
}

// ---- OIP specifics ----

TEST(BaselineTest, OipPartitioningAssignsSmallestFit) {
  SupermarketDb db;
  OipStats stats;
  OipOptions options;
  options.num_granules = 4;
  Result<TpRelation> out =
      OipSetOp(SetOpKind::kIntersect, db.a, db.c, options, &stats);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 3u);
  EXPECT_GT(stats.partitions, 0u);
  EXPECT_GE(stats.pairs_tested, 3u);
}

TEST(BaselineTest, OipGranuleSweep) {
  // Correct output for any granule count.
  SupermarketDb db;
  TpRelation expected = LawaIntersect(db.a, db.c);
  for (std::size_t k : {1, 2, 3, 5, 8, 64, 1024}) {
    OipOptions options;
    options.num_granules = k;
    Result<TpRelation> out = OipSetOp(SetOpKind::kIntersect, db.a, db.c, options);
    ASSERT_TRUE(out.ok()) << k;
    EXPECT_TRUE(RelationsEquivalent(expected, *out)) << "k=" << k;
  }
}

// ---- randomized equivalence sweep ----

struct EquivCase {
  std::uint64_t seed;
  std::size_t tuples;
  std::size_t facts;
  TimePoint len_r, len_s, gap;
};

class BaselineEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(BaselineEquivalenceTest, AllAlgorithmsAgreeWithReference) {
  const EquivCase& c = GetParam();
  auto ctx = std::make_shared<TpContext>();
  Rng rng(c.seed);
  SyntheticPairSpec spec;
  spec.num_tuples = c.tuples;
  spec.num_facts = c.facts;
  spec.max_interval_length_r = c.len_r;
  spec.max_interval_length_s = c.len_s;
  spec.max_time_distance = c.gap;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  ASSERT_TRUE(ValidateSetOpInputs(r, s).ok());
  for (const SetOpAlgorithm* algo : AllAlgorithms()) {
    for (SetOpKind op : kAllSetOps) {
      if (!algo->Supports(op)) continue;
      TpRelation expected = LawaSetOp(op, r, s);
      TpRelation actual = algo->Compute(op, r, s);
      EXPECT_TRUE(RelationsEquivalent(expected, actual))
          << algo->name() << " " << SetOpName(op) << " seed=" << c.seed;
      EXPECT_TRUE(ValidateDuplicateFree(actual).ok())
          << algo->name() << " " << SetOpName(op);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineEquivalenceTest,
    ::testing::Values(EquivCase{21, 50, 1, 3, 3, 3}, EquivCase{22, 50, 1, 10, 10, 3},
                      EquivCase{23, 70, 1, 100, 3, 3}, EquivCase{24, 60, 4, 5, 5, 2},
                      EquivCase{25, 90, 9, 3, 3, 3}, EquivCase{26, 80, 2, 20, 1, 1},
                      EquivCase{27, 120, 40, 4, 4, 4}, EquivCase{28, 64, 64, 6, 6, 0},
                      EquivCase{29, 100, 1, 1, 1, 0}, EquivCase{30, 150, 5, 13, 7, 5}),
    [](const ::testing::TestParamInfo<EquivCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace tpset
