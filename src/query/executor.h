// Execution of TP set queries over a named catalog of relations.
#ifndef TPSET_QUERY_EXECUTOR_H_
#define TPSET_QUERY_EXECUTOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/algorithm.h"
#include "common/status.h"
#include "incremental/append_log.h"
#include "incremental/continuous_query.h"
#include "obs/profile.h"
#include "parallel/parallel_set_op.h"
#include "query/ast.h"
#include "relation/relation.h"
#include "storage/stored_relation.h"

namespace tpset {

/// Execution knobs for one query.
struct ExecOptions {
  /// 1 evaluates sequentially (the seed behavior). Above 1, leaf set
  /// operations run the partitioned parallel algorithm on this many pool
  /// threads AND independent query subtrees are evaluated concurrently.
  /// With apply_mode kBitIdentical, results are bit-identical to sequential
  /// execution either way (see DESIGN.md, "Partitioned parallel execution").
  ///
  /// Applies when the algorithm is defaulted or is plain "LAWA". An
  /// explicitly passed ParallelSetOpAlgorithm keeps its own thread count
  /// and apply mode (the instance was configured deliberately); any other
  /// explicit algorithm gets subtree concurrency only, serialized per node.
  std::size_t num_threads = 1;

  /// How parallel set operations mutate the shared lineage arena (only
  /// meaningful with num_threads > 1). kBitIdentical (default) keeps the
  /// whole-query result bit-equal to sequential execution; kStaged interns
  /// into per-partition staging arenas and splices under the sequencer — a
  /// far smaller critical section, deterministic output, same tuples with
  /// probability-equal lineage but possibly different node ids (see
  /// DESIGN.md, "Staged apply").
  ApplyMode apply_mode = ApplyMode::kBitIdentical;

  /// Combined (r + s) tuple budget per morsel for the work-stealing
  /// scheduler (parallel/scheduler.h); 0 picks an automatic size. Only
  /// meaningful with num_threads > 1. Results are unaffected — morsel
  /// granularity changes scheduling, not output.
  std::size_t morsel_size = 0;

  /// Work stealing between the scheduler's per-worker deques. Off, each
  /// worker drains only its round-robin share of the morsels (a skewed
  /// input then pins a worker again — the knob exists to isolate the
  /// stealing effect).
  bool steal = true;

  /// Which kernel runs the LAWA advance loop (set_ops.h SweepKernel):
  /// kAuto (default) picks columnar for large sweeps and scalar for tiny
  /// ones; kScalar / kColumnar pin it for A/B runs. Results are unaffected
  /// — both kernels produce the identical window stream (under kScalar vs
  /// kColumnar with apply_mode kBitIdentical, outputs are byte-equal).
  /// Applies under the same algorithm rules as num_threads, including the
  /// sequential (num_threads <= 1) path.
  SweepKernel sweep_kernel = SweepKernel::kAuto;

  /// When non-null, the execution records its span tree here: root (whole
  /// query; admission timestamp on start_unix_us) → "parse"/"analyze" →
  /// one span per plan node ("relation <name>" leaves, operator nodes with
  /// sort/split/advance/apply phase children and LawaStats attached).
  /// Results are unaffected; the caller owns the profile and must keep it
  /// alive for the call. Not part of the algorithm cache key.
  obs::QueryProfile* profile = nullptr;
};

/// Point-in-time description of one stored relation, for introspection
/// surfaces (the HTTP /queries and /statusz endpoints, obs/http_endpoints).
/// Plain values copied under the write fence — safe to format after the
/// fence is released, while appends continue.
struct RelationIntrospection {
  std::string name;
  std::size_t tuples = 0;      ///< resident stored tuples across all runs
  std::size_t runs = 0;        ///< physical runs (base + pending appends)
  bool has_watermark = false;
  TimePoint watermark = 0;     ///< meaningful when has_watermark
  std::uint64_t generation = 0;      ///< published generation id (monotone)
  std::size_t compaction_debt = 0;   ///< pending background compaction work
};

/// Point-in-time description of one continuous query (same contract).
struct ContinuousIntrospection {
  std::string name;
  std::string text;            ///< query text as registered
  EpochId last_epoch = 0;      ///< last epoch folded into the result
  EpochId log_epoch = 0;       ///< last epoch observed in the append log
  std::uint64_t epochs_applied = 0;  ///< ApplyAppend calls that touched it
  std::size_t result_tuples = 0;
  bool has_low_watermark = false;
  TimePoint low_watermark = 0;
  bool has_effective_watermark = false;
  TimePoint effective_watermark = 0;
  std::vector<ContinuousQuery::SubscriberInfo> subscribers;  ///< per-sub lag
};

/// Evaluates TP set queries bottom-up with a pluggable set-operation
/// algorithm (LAWA by default; any Table II approach that supports every
/// operator in the query can be chosen for comparison).
class QueryExecutor {
 public:
  /// All registered relations must share this context.
  explicit QueryExecutor(std::shared_ptr<TpContext> ctx) : ctx_(std::move(ctx)) {}

  /// Registers a relation under `rel.name()` (must be non-empty, unique,
  /// same context, duplicate-free).
  Status Register(const TpRelation& rel);

  /// Parses and executes a textual query ("c - (a | b)").
  Result<TpRelation> Execute(const std::string& query,
                             const SetOpAlgorithm* algorithm = nullptr) const;

  /// Executes a query tree.
  Result<TpRelation> Execute(const QueryNode& query,
                             const SetOpAlgorithm* algorithm = nullptr) const;

  /// Parses and executes with explicit execution options.
  Result<TpRelation> Execute(const std::string& query, const ExecOptions& options,
                             const SetOpAlgorithm* algorithm = nullptr) const;

  /// Executes a query tree with explicit execution options. With
  /// options.num_threads > 1, sibling subtrees are evaluated concurrently
  /// and leaf set operations are partition-parallel; the shared lineage
  /// arena is mutated in post-order turns, so the result (tuples and
  /// lineage ids) equals sequential execution exactly.
  Result<TpRelation> Execute(const QueryNode& query, const ExecOptions& options,
                             const SetOpAlgorithm* algorithm = nullptr) const;

  /// Looks up a registered relation as its one logical sorted view
  /// (StoredRelation::View — pending append runs are folded off-lock and
  /// published as a new generation, so the returned relation is
  /// (fact, start)-sorted and witness-armed regardless of the physical run
  /// count). The reference contract is single-threaded (REPL, tests);
  /// concurrent readers — including Execute's own leaves — go through
  /// StoredRelation::FoldedView / SnapshotRelation instead.
  Result<const TpRelation*> Find(const std::string& name) const;

  /// O(1) epoch-pinned read view of a registered relation: the generation
  /// current at the call, refcounted. Safe from any thread, at any time —
  /// appends and compactions publish successors without disturbing it.
  Result<StorageSnapshot> SnapshotRelation(const std::string& name) const;

  /// Looks up a relation's storage engine (run counts, watermark, storage
  /// stats) without folding anything.
  Result<const StoredRelation*> FindStored(const std::string& name) const;

  // ---- Incremental continuous queries (src/incremental/, src/storage/) --

  /// Appends a validated delta batch to a registered relation: one epoch,
  /// O(batch) amortized into the relation's run index (no O(n) merge — the
  /// one logical sorted view is re-folded lazily by the next Find). The
  /// delta propagates through every registered continuous query that reads
  /// the relation, delivering an EpochDelta to its subscribers. Returns the
  /// assigned monotone epoch id. Thread-safe: concurrent Append calls
  /// serialize on the epoch fence (distinct gapless epochs, propagation in
  /// epoch order); appends still must not race with Execute. Subscriber
  /// callbacks fire inside the fence — they must not call back into
  /// Append/Retain/Compact on this executor.
  Result<EpochId> Append(const std::string& relation, const DeltaBatch& batch);

  /// Retention: advances the relation's watermark (monotone), compacts its
  /// storage — retiring every tuple whose interval ends at or below the
  /// watermark — and rebases the state of every continuous query that reads
  /// the relation (IncrementalSetOp::Rebase; a query forgets only below the
  /// minimum watermark across all its leaves). Subscribers receive no
  /// deltas: retention forgets, it does not retract — above the watermark
  /// the accumulated state still folds to a from-scratch Execute (the
  /// clip-equivalence pinned by tests/retention_test.cc). Returns the
  /// number of stored tuples retired by the compaction.
  Result<std::size_t> Retain(const std::string& relation, TimePoint watermark);

  /// Explicitly compacts a relation's storage: folds all pending append
  /// runs into the base level, applying the current watermark (if any).
  Status Compact(const std::string& relation);

  /// Compiles `query` into a DAG of incremental operators over the catalog,
  /// runs the initial full computation, and registers it under `name`
  /// (unique among continuous queries). Subsequent Append calls maintain it
  /// incrementally; subscribe on the returned query to receive per-epoch
  /// (inserted, retracted) deltas.
  Result<ContinuousQuery*> RegisterContinuous(
      const std::string& name, const std::string& query,
      const ContinuousOptions& options = {});
  Result<ContinuousQuery*> RegisterContinuous(
      const std::string& name, const QueryNode& query,
      const ContinuousOptions& options = {});

  /// Looks up a registered continuous query.
  Result<ContinuousQuery*> FindContinuous(const std::string& name) const;

  /// All registered continuous queries, by name.
  const std::map<std::string, std::unique_ptr<ContinuousQuery>>& continuous()
      const {
    return continuous_;
  }

  /// The most recently assigned append epoch (0 before any append).
  EpochId last_epoch() const { return append_log_.last_epoch(); }

  // ---- Introspection (obs/http_endpoints.cc, REPL \status) --------------

  /// Copies a point-in-time description of every stored relation /
  /// continuous query out from under the write fence. Safe to call from any
  /// thread concurrently with Append/Retain/Compact — the copy serializes
  /// with writers on the fence, then formatting happens outside it. Must
  /// NOT be called from a continuous-query subscriber callback (those fire
  /// inside the fence; re-entering would deadlock).
  std::vector<RelationIntrospection> IntrospectRelations() const;
  std::vector<ContinuousIntrospection> IntrospectContinuous() const;

  const std::shared_ptr<TpContext>& context() const { return ctx_; }

  /// The executor-owned parallel algorithm for a (thread count, apply mode,
  /// morsel config) combination: lazily built, cached for the executor's
  /// lifetime (a handful of distinct configs in practice; each retains its
  /// pool threads once first used). Exposed so tools that execute plans
  /// themselves — EXPLAIN's per-node phase timing — reuse the warm pools
  /// instead of paying thread startup inside their measurements.
  const ParallelSetOpAlgorithm* ParallelAlgoFor(const ExecOptions& options) const;
  const ParallelSetOpAlgorithm* ParallelAlgoFor(std::size_t num_threads,
                                                ApplyMode apply_mode) const;

 private:
  /// The recursive bottom-up evaluation behind the public Execute overloads
  /// (which add per-query metrics once, at the top level).
  Result<TpRelation> ExecuteTree(const QueryNode& query,
                                 const SetOpAlgorithm* algorithm) const;

  /// Sequential evaluation recording a span per plan node into
  /// options.profile (num_threads <= 1 with a profile attached).
  Result<TpRelation> ExecuteProfiled(const QueryNode& query,
                                     const ExecOptions& options,
                                     const SetOpAlgorithm* algorithm) const;

  /// One recursion step of ExecuteProfiled: evaluates `node` under `span`'s
  /// freshly added child span.
  Result<TpRelation> ExecuteNode(const QueryNode& node,
                                 const SetOpAlgorithm* algorithm,
                                 const ParallelSetOpAlgorithm* parallel,
                                 obs::Span* span) const;

  Result<TpRelation> ExecuteConcurrent(const QueryNode& query,
                                       const ExecOptions& options,
                                       const SetOpAlgorithm* algorithm) const;

  /// The widest idle continuous-query pool for parallel compaction (null
  /// when no parallel continuous query ever registered — compact
  /// sequentially then).
  ThreadPool* CompactionPool() const;

  /// Queues one budgeted background compaction step for `stored` when its
  /// debt crossed kCompactDebtThreshold (deduplicated per relation; the step
  /// reschedules itself while debt remains). Called by Append after the
  /// epoch lands, so appends never pay the merge themselves.
  void ScheduleCompaction(StoredRelation& stored);

  /// Budget: tail runs one background compaction step may claim.
  static constexpr std::size_t kCompactBudgetRuns = 8;
  /// Debt at or above which Append schedules a background step.
  static constexpr std::size_t kCompactDebtThreshold = 4;

  std::shared_ptr<TpContext> ctx_;
  // Node-based map: StoredRelation addresses stay stable across Register
  // and Append, which is what lets continuous-query leaves hold plain
  // pointers.
  std::map<std::string, StoredRelation> catalog_;
  AppendLog append_log_;
  // Serializes Append/Retain/Compact (and, cold-path, Register /
  // RegisterContinuous / the Introspect* readers): epoch assignment,
  // storage mutation and continuous-query propagation happen atomically per
  // epoch, so concurrent writers observe a total epoch order end to end.
  // Mutable so const introspection can take the fence.
  mutable std::mutex write_fence_;
  std::map<std::string, std::unique_ptr<ContinuousQuery>> continuous_;
  // Continuous queries with the same thread count share one worker pool
  // (Append applies them one at a time, so at most one pool is ever busy).
  std::map<std::size_t, std::unique_ptr<ThreadPool>> continuous_pools_;
  mutable std::mutex parallel_mu_;
  mutable std::map<
      std::tuple<std::size_t, ApplyMode, std::size_t, bool, SweepKernel>,
      std::unique_ptr<ParallelSetOpAlgorithm>>
      parallel_algos_;
  // Background compaction: a lazily created single worker draining budgeted
  // CompactStep tasks; bg_scheduled_ deduplicates one in-flight step per
  // relation. Declared after catalog_ so destruction joins (and runs) any
  // pending steps while the relations they reference are still alive.
  mutable std::mutex bg_mu_;
  std::set<StoredRelation*> bg_scheduled_;
  std::unique_ptr<ThreadPool> bg_pool_;
};

}  // namespace tpset

#endif  // TPSET_QUERY_EXECUTOR_H_
