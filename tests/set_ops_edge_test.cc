// Edge cases for the TP set operations: extreme time points, unit
// intervals, probability-1 tuples, self-application, dense adjacency runs,
// and degenerate relation shapes.
#include <gtest/gtest.h>

#include <limits>

#include "lawa/set_ops.h"
#include "relation/snapshot.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;

TEST(SetOpsEdgeTest, UnitIntervals) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 1, 0.5}, {"f", "r2", 1, 2, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"f", "s1", 1, 2, 0.5}});
  TpRelation x = LawaIntersect(r, s);
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0].t, Interval(1, 2));
  EXPECT_EQ(x.LineageString(0), "r2∧s1");
  TpRelation d = LawaExcept(r, s);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d.LineageString(0), "r1");
  EXPECT_EQ(d.LineageString(1), "r2∧¬s1");
}

TEST(SetOpsEdgeTest, NegativeAndLargeTimePoints) {
  auto ctx = std::make_shared<TpContext>();
  const TimePoint big = std::numeric_limits<TimePoint>::max() / 4;
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  r.AddBaseFast(f, Interval(-big, -big + 10), 0.5);
  r.AddBaseFast(f, Interval(big, big + 10), 0.5);
  s.AddBaseFast(f, Interval(-big + 5, big + 5), 0.5);
  for (SetOpKind op : kAllSetOps) {
    TpRelation lawa = LawaSetOp(op, r, s);
    TpRelation ref = ReferenceSetOp(op, r, s);
    EXPECT_TRUE(RelationsEquivalent(ref, lawa)) << SetOpName(op);
    // Counting (radix) sort biases into unsigned space; must agree too.
    TpRelation counting = LawaSetOp(op, r, s, SortMode::kCounting);
    EXPECT_TRUE(RelationsEquivalent(ref, counting)) << SetOpName(op);
  }
}

TEST(SetOpsEdgeTest, ProbabilityOneTuples) {
  // p = 1 is inside Ωp = (0,1]; difference against a certain tuple yields a
  // zero-probability (but present!) tuple, per Def. 3's non-null filter.
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 10, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"f", "s1", 0, 10, 1.0}});
  TpRelation d = LawaExcept(r, s);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_EQ(d.LineageString(0), "r1∧¬s1");
  EXPECT_NEAR(d.TupleProbability(0), 0.0, 1e-12);
}

TEST(SetOpsEdgeTest, SelfApplication) {
  // r op r through the public API (same relation object on both sides).
  testing::SupermarketDb db;
  TpRelation u = LawaUnion(db.a, db.a);
  EXPECT_TRUE(RelationsEquivalent(u, db.a)) << "or(λ,λ) folds to λ";
  TpRelation x = LawaIntersect(db.a, db.a);
  EXPECT_TRUE(RelationsEquivalent(x, db.a)) << "and(λ,λ) folds to λ";
  TpRelation d = LawaExcept(db.a, db.a);
  // Every window has λr = λs -> lineage λ∧¬λ: present, probability 0.
  ASSERT_EQ(d.size(), db.a.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_NEAR(d.TupleProbability(i, ProbabilityMethod::kExact), 0.0, 1e-12);
  }
}

TEST(SetOpsEdgeTest, LongAdjacencyChains) {
  // 200 abutting unit tuples vs one covering tuple: union must produce 200
  // + boundary windows with no merging (all lineages differ).
  auto ctx = std::make_shared<TpContext>();
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  for (TimePoint t = 0; t < 200; ++t) {
    r.AddBaseFast(f, Interval(t, t + 1), 0.5);
  }
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  s.AddBaseFast(f, Interval(0, 200), 0.9);
  TpRelation u = LawaUnion(r, s);
  EXPECT_EQ(u.size(), 200u);
  TpRelation ref = ReferenceSetOp(SetOpKind::kUnion, r, s);
  EXPECT_TRUE(RelationsEquivalent(ref, u));
  TpRelation d = LawaExcept(s, r);
  EXPECT_EQ(d.size(), 200u) << "each unit window gets s∧¬r_i";
}

TEST(SetOpsEdgeTest, ManyFactsOneTupleEach) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  for (int i = 0; i < 100; ++i) {
    FactId f = ctx->facts().Intern({Value("f" + std::to_string(i))});
    r.AddBaseFast(f, Interval(0, 10), 0.5);
    if (i % 2 == 0) s.AddBaseFast(f, Interval(5, 15), 0.5);
  }
  TpRelation x = LawaIntersect(r, s);
  EXPECT_EQ(x.size(), 50u);
  TpRelation u = LawaUnion(r, s);
  // 50 overlapping facts yield 3 windows each ([0,5) r, [5,10) both,
  // [10,15) s); 50 r-only facts yield 1 window each.
  EXPECT_EQ(u.size(), 50u * 3 + 50u);
  TpRelation ref = ReferenceSetOp(SetOpKind::kUnion, r, s);
  EXPECT_TRUE(RelationsEquivalent(ref, u));
}

TEST(SetOpsEdgeTest, TouchingButDisjointInputs) {
  // r covers even slots, s covers odd slots of the same fact; intersection
  // is empty, union is one window per slot.
  auto ctx = std::make_shared<TpContext>();
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  for (TimePoint t = 0; t < 40; t += 2) {
    r.AddBaseFast(f, Interval(t, t + 1), 0.5);
    s.AddBaseFast(f, Interval(t + 1, t + 2), 0.5);
  }
  EXPECT_EQ(LawaIntersect(r, s).size(), 0u);
  EXPECT_EQ(LawaUnion(r, s).size(), 40u);
  EXPECT_EQ(LawaExcept(r, s).size(), 20u);
  EXPECT_TRUE(RelationsEquivalent(ReferenceSetOp(SetOpKind::kExcept, r, s),
                                  LawaExcept(r, s)));
}

TEST(SetOpsEdgeTest, OneRelationMuchDenserThanOther) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  r.AddBaseFast(f, Interval(0, 1000), 0.5);
  for (TimePoint t = 0; t < 1000; t += 10) {
    s.AddBaseFast(f, Interval(t, t + 3), 0.5);
  }
  for (SetOpKind op : kAllSetOps) {
    EXPECT_TRUE(RelationsEquivalent(ReferenceSetOp(op, r, s), LawaSetOp(op, r, s)))
        << SetOpName(op);
    EXPECT_TRUE(RelationsEquivalent(ReferenceSetOp(op, s, r), LawaSetOp(op, s, r)))
        << SetOpName(op) << " flipped";
  }
}

TEST(SetOpsEdgeTest, OutputOfOpFeedsNextOpCleanly) {
  // Derived relations (non-atomic lineage) as inputs: (a ∪ b) − c and
  // a ∪ (b − c) both validate and match the reference.
  testing::SupermarketDb db;
  TpRelation u = LawaUnion(db.a, db.b);
  TpRelation q1 = LawaExcept(u, db.c);
  EXPECT_TRUE(ValidateDuplicateFree(q1).ok());
  TpRelation ref1 = ReferenceSetOp(SetOpKind::kExcept, u, db.c);
  EXPECT_TRUE(RelationsEquivalent(ref1, q1));

  TpRelation d = LawaExcept(db.b, db.c);
  TpRelation q2 = LawaUnion(db.a, d);
  TpRelation ref2 = ReferenceSetOp(SetOpKind::kUnion, db.a, d);
  EXPECT_TRUE(RelationsEquivalent(ref2, q2));
}

}  // namespace
}  // namespace tpset
