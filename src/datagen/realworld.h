// Simulators for the paper's two real-world datasets (§VII-C, Table IV).
//
// The original data (Meteo Swiss temperature predictions; Webkit SVN file
// history) is not redistributable, so these generators synthesize datasets
// reproducing the characteristics Table IV reports — the properties that
// actually drive the comparated algorithms' behaviour:
//  * Meteo: very few facts (80 stations), ~10.2M tuples, durations from 600
//    to ~19.3M time units (ms granularity) over a ~347M range;
//  * Webkit: very many facts (484K files), ~1.5M tuples (≈3 intervals per
//    file), and heavy endpoint collisions — one commit timestamp can touch
//    hundreds of thousands of files (max tuples per time point 369K), which
//    is what degrades TI and changes NORM's relative standing in Fig. 11.
// The second input relation of each experiment is derived with the paper's
// own procedure: shift every interval to a random position, preserving its
// length and the endpoint distribution (ShiftedCopy).
#ifndef TPSET_DATAGEN_REALWORLD_H_
#define TPSET_DATAGEN_REALWORLD_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "relation/relation.h"

namespace tpset {

/// Meteo-like generator parameters (defaults scaled down from Table IV by
/// `scale`: cardinality 10.2M * scale).
struct MeteoSpec {
  std::size_t num_tuples = 200000;
  std::size_t num_stations = 80;
  TimePoint min_duration = 600;        ///< 10-minute granularity, seconds
  TimePoint max_duration = 19300000;   ///< Table IV max
  double duration_log_sigma = 2.0;     ///< log-normal spread of durations
};

/// Generates a Meteo-like relation: per station, a sequence of abutting
/// "stable temperature" runs with log-normal durations (consecutive
/// measurements merged while the temperature is stable, as in the paper's
/// preparation step).
TpRelation GenerateMeteoLike(std::shared_ptr<TpContext> ctx, const MeteoSpec& spec,
                             const std::string& name, Rng* rng);

/// Webkit-like generator parameters.
struct WebkitSpec {
  std::size_t num_tuples = 150000;
  /// Files ≈ tuples / 3.1 (Table IV: 1.5M tuples over 484K files).
  std::size_t num_files = 48400;
  /// Pool of commit timestamps; intervals start/end at commit times, so a
  /// small pool relative to num_tuples yields heavy endpoint collisions.
  std::size_t num_commits = 15000;
  TimePoint time_range = 7000000;
  /// Fraction of commits that are "mass" commits touching a large share of
  /// files (drives the 369K max-tuples-per-point property).
  double mass_commit_fraction = 0.002;
};

/// Generates a Webkit-like relation: each file's lifetime is segmented at
/// the commits that touched it; a few mass commits touch most files at one
/// timestamp.
TpRelation GenerateWebkitLike(std::shared_ptr<TpContext> ctx,
                              const WebkitSpec& spec, const std::string& name,
                              Rng* rng);

/// The paper's second-relation construction: copies `rel`, assigning each
/// tuple a new start uniform over the dataset's time range while preserving
/// the interval length, then resolving any same-fact overlap by shifting
/// forward (keeps the result duplicate-free). Fresh variables are created
/// for the copied tuples.
TpRelation ShiftedCopy(const TpRelation& rel, const std::string& name, Rng* rng);

}  // namespace tpset

#endif  // TPSET_DATAGEN_REALWORLD_H_
