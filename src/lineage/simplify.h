// Lineage simplification: equivalence-preserving local rewrites.
//
// Repeating queries build formulas like (x∨y)∧¬(x∧z) whose repeated
// variables slow down exact valuation. Simplify applies bottom-up local
// rules — idempotence and constant folding (already enforced by the
// constructors), complement (x∧¬x → ⊥, x∨¬x → ⊤) and absorption
// (x∧(x∨y) → x, x∨(x∧y) → x) — producing an equivalent, never-larger
// formula. It is a cheap pre-pass, not a canonicalizer: equivalent formulas
// may still differ syntactically.
#ifndef TPSET_LINEAGE_SIMPLIFY_H_
#define TPSET_LINEAGE_SIMPLIFY_H_

#include "lineage/lineage.h"

namespace tpset {

/// Returns an equivalent (possibly identical) formula id. Requires a
/// hash-consing manager. kNullLineage passes through.
LineageId Simplify(LineageManager& mgr, LineageId id);

}  // namespace tpset

#endif  // TPSET_LINEAGE_SIMPLIFY_H_
