// Fig. 9a: robustness against the overlapping factor — TP set intersection
// at a fixed cardinality (paper: 30M per relation) over the Table III
// parameter presets.
//
// Paper shape: OIP's runtime grows with the overlapping factor (fuller
// partitions, more nested-loop work); LAWA shows only minor variation —
// its cost depends on the input size alone.
#include <memory>

#include "baselines/oip.h"
#include "bench/harness.h"
#include "datagen/synthetic.h"
#include "lawa/overlap_factor.h"
#include "lawa/set_ops.h"

using namespace tpset;
using namespace tpset::bench;

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::size_t n = Scaled(30000000, scale);
  std::printf("# Fig. 9a: robustness vs overlapping factor, n=%zu (scale=%.3g)\n",
              n, scale);
  std::printf("experiment,nominal_of,measured_of,approach,runtime_ms\n");

  for (double nominal : {0.03, 0.1, 0.4, 0.6, 0.8}) {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(0xF1609A);
    SyntheticPairSpec spec = TableIIIPreset(nominal);
    spec.num_tuples = n;
    spec.num_facts = 1;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    double measured = TimeWeightedOverlappingFactor(r, s);

    double lawa_ms = TimeMs([&] {
      TpRelation out = LawaIntersect(r, s);
      (void)out;
    });
    std::printf("fig9a,%.2f,%.3f,LAWA,%.3f\n", nominal, measured, lawa_ms);
    std::fflush(stdout);

    double oip_ms = TimeMs([&] {
      Result<TpRelation> out = OipSetOp(SetOpKind::kIntersect, r, s);
      (void)out;
    });
    std::printf("fig9a,%.2f,%.3f,OIP,%.3f\n", nominal, measured, oip_ms);
    std::fflush(stdout);
  }
  return 0;
}
