#include "lineage/eval.h"

#include <cassert>
#include <unordered_map>

namespace tpset {

bool EvaluateAssignment(const LineageManager& mgr, LineageId id,
                        const std::vector<bool>& assignment) {
  assert(id != kNullLineage && "cannot evaluate a null lineage");
  const LineageNode& n = mgr.node(id);
  switch (n.kind) {
    case LineageKind::kFalse:
      return false;
    case LineageKind::kTrue:
      return true;
    case LineageKind::kVar:
      return n.var < assignment.size() && assignment[n.var];
    case LineageKind::kNot:
      return !EvaluateAssignment(mgr, n.left, assignment);
    case LineageKind::kAnd:
      return EvaluateAssignment(mgr, n.left, assignment) &&
             EvaluateAssignment(mgr, n.right, assignment);
    case LineageKind::kOr:
      return EvaluateAssignment(mgr, n.left, assignment) ||
             EvaluateAssignment(mgr, n.right, assignment);
  }
  return false;
}

double ProbabilityReadOnce(const LineageManager& mgr, LineageId id,
                           const VarTable& vars) {
  assert(id != kNullLineage && "cannot evaluate a null lineage");
  const LineageNode& n = mgr.node(id);
  switch (n.kind) {
    case LineageKind::kFalse:
      return 0.0;
    case LineageKind::kTrue:
      return 1.0;
    case LineageKind::kVar:
      return vars.probability(n.var);
    case LineageKind::kNot:
      return 1.0 - ProbabilityReadOnce(mgr, n.left, vars);
    case LineageKind::kAnd:
      return ProbabilityReadOnce(mgr, n.left, vars) *
             ProbabilityReadOnce(mgr, n.right, vars);
    case LineageKind::kOr: {
      double pl = ProbabilityReadOnce(mgr, n.left, vars);
      double pr = ProbabilityReadOnce(mgr, n.right, vars);
      return pl + pr - pl * pr;
    }
  }
  return 0.0;
}

namespace {

// Restriction cache for one (variable, value) pair: node id -> cofactor id.
using RestrictCache = std::unordered_map<LineageId, LineageId>;

LineageId Restrict(LineageManager& mgr, LineageId id, VarId v, bool value,
                   RestrictCache* cache) {
  const LineageNode n = mgr.node(id);  // copy: MakeAnd below may reallocate
  switch (n.kind) {
    case LineageKind::kFalse:
    case LineageKind::kTrue:
      return id;
    case LineageKind::kVar:
      if (n.var == v) return value ? mgr.True() : mgr.False();
      return id;
    default:
      break;
  }
  auto it = cache->find(id);
  if (it != cache->end()) return it->second;
  LineageId result;
  switch (n.kind) {
    case LineageKind::kNot:
      result = mgr.MakeNot(Restrict(mgr, n.left, v, value, cache));
      break;
    case LineageKind::kAnd:
      result = mgr.MakeAnd(Restrict(mgr, n.left, v, value, cache),
                           Restrict(mgr, n.right, v, value, cache));
      break;
    case LineageKind::kOr:
      result = mgr.MakeOr(Restrict(mgr, n.left, v, value, cache),
                          Restrict(mgr, n.right, v, value, cache));
      break;
    default:
      result = id;
      break;
  }
  cache->emplace(id, result);
  return result;
}

// Smallest variable in the formula, or kInvalidVar for constants.
VarId SmallestVar(const LineageManager& mgr, LineageId id) {
  const LineageNode& n = mgr.node(id);
  switch (n.kind) {
    case LineageKind::kFalse:
    case LineageKind::kTrue:
      return kInvalidVar;
    case LineageKind::kVar:
      return n.var;
    case LineageKind::kNot:
      return SmallestVar(mgr, n.left);
    case LineageKind::kAnd:
    case LineageKind::kOr: {
      VarId a = SmallestVar(mgr, n.left);
      VarId b = SmallestVar(mgr, n.right);
      return a < b ? a : b;
    }
  }
  return kInvalidVar;
}

double ShannonProb(LineageManager& mgr, LineageId id, const VarTable& vars,
                   std::unordered_map<LineageId, double>* memo) {
  const LineageNode& n = mgr.node(id);
  if (n.kind == LineageKind::kFalse) return 0.0;
  if (n.kind == LineageKind::kTrue) return 1.0;
  if (n.kind == LineageKind::kVar) return vars.probability(n.var);
  auto it = memo->find(id);
  if (it != memo->end()) return it->second;

  VarId v = SmallestVar(mgr, id);
  assert(v != kInvalidVar);
  RestrictCache hi_cache, lo_cache;
  LineageId hi = Restrict(mgr, id, v, true, &hi_cache);
  LineageId lo = Restrict(mgr, id, v, false, &lo_cache);
  double pv = vars.probability(v);
  double p = pv * ShannonProb(mgr, hi, vars, memo) +
             (1.0 - pv) * ShannonProb(mgr, lo, vars, memo);
  memo->emplace(id, p);
  return p;
}

}  // namespace

double ProbabilityExact(LineageManager& mgr, LineageId id, const VarTable& vars) {
  assert(id != kNullLineage && "cannot evaluate a null lineage");
  assert(mgr.hash_consing() &&
         "exact (Shannon) evaluation requires a hash-consing manager");
  std::unordered_map<LineageId, double> memo;
  return ShannonProb(mgr, id, vars, &memo);
}

double ProbabilityMonteCarlo(const LineageManager& mgr, LineageId id,
                             const VarTable& vars, std::size_t samples, Rng* rng) {
  assert(id != kNullLineage && "cannot evaluate a null lineage");
  assert(samples > 0);
  std::vector<VarId> formula_vars;
  mgr.CollectVars(id, &formula_vars);
  VarId max_var = 0;
  for (VarId v : formula_vars) max_var = std::max(max_var, v);
  std::vector<bool> assignment(formula_vars.empty() ? 0 : max_var + 1, false);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    for (VarId v : formula_vars) assignment[v] = rng->Bernoulli(vars.probability(v));
    if (EvaluateAssignment(mgr, id, assignment)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace tpset
