// Well-formedness and duplicate-freeness checks for TP relations.
#ifndef TPSET_RELATION_VALIDATE_H_
#define TPSET_RELATION_VALIDATE_H_

#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// Structural sanity: context present, every interval non-empty, every
/// lineage concrete (never kNullLineage), every fact id interned.
Status ValidateWellFormed(const TpRelation& rel);

/// The paper's duplicate-freeness (§III): for any two distinct tuples with
/// the same fact, the intervals must not overlap. O(n log n).
Status ValidateDuplicateFree(const TpRelation& rel);

/// The (fact, start) order required by LAWA and by the fact-range
/// partitioner. Enforced at the catalog boundary (QueryExecutor::Register)
/// so every registered relation is partition-ready; sort with
/// TpRelation::SortFactTime first. O(n).
Status ValidateSortedFactTime(const TpRelation& rel);

/// Preconditions for a binary TP set operation: both relations well formed,
/// duplicate-free, sharing one context, with compatible schemas.
Status ValidateSetOpInputs(const TpRelation& r, const TpRelation& s);

}  // namespace tpset

#endif  // TPSET_RELATION_VALIDATE_H_
