// EXPLAIN output for TP set queries.
#include <gtest/gtest.h>

#include "query/explain.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::SupermarketDb;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : exec_(db_.ctx) {
    EXPECT_TRUE(exec_.Register(db_.a).ok());
    EXPECT_TRUE(exec_.Register(db_.b).ok());
    EXPECT_TRUE(exec_.Register(db_.c).ok());
  }
  SupermarketDb db_;
  QueryExecutor exec_;
};

TEST_F(ExplainTest, AnnotatesCardinalitiesAndWindows) {
  Result<std::string> plan = ExplainQuery(exec_, "c - (a | b)");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& text = *plan;
  EXPECT_NE(text.find("query: c - (a | b)"), std::string::npos) << text;
  EXPECT_NE(text.find("relation c  [4 tuples]"), std::string::npos) << text;
  EXPECT_NE(text.find("relation a  [3 tuples]"), std::string::npos) << text;
  EXPECT_NE(text.find("relation b  [2 tuples]"), std::string::npos) << text;
  // The final answer has 5 tuples (Fig. 1c).
  EXPECT_NE(text.find("except  [out=5"), std::string::npos) << text;
  EXPECT_NE(text.find("union  [out="), std::string::npos) << text;
  EXPECT_NE(text.find("non-repeating: yes"), std::string::npos) << text;
  EXPECT_NE(text.find("read-once"), std::string::npos) << text;
}

TEST_F(ExplainTest, FlagsRepeatingQueries) {
  Result<std::string> plan = ExplainQuery(exec_, "(a | b) - (a & c)");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("non-repeating: no"), std::string::npos);
  EXPECT_NE(plan->find("Shannon"), std::string::npos);
}

TEST_F(ExplainTest, WindowCountsRespectBound) {
  Result<std::string> plan = ExplainQuery(exec_, "a & c");
  ASSERT_TRUE(plan.ok());
  // windows=X/Y(bound) with X <= Y; extract and compare.
  std::size_t pos = plan->find("windows=");
  ASSERT_NE(pos, std::string::npos);
  std::size_t slash = plan->find('/', pos);
  ASSERT_NE(slash, std::string::npos);
  int windows = std::stoi(plan->substr(pos + 8, slash - pos - 8));
  int bound = std::stoi(plan->substr(slash + 1));
  EXPECT_LE(windows, bound);
  EXPECT_GT(windows, 0);
}

TEST_F(ExplainTest, ErrorsPropagate) {
  EXPECT_FALSE(ExplainQuery(exec_, "a & nope").ok());
  EXPECT_FALSE(ExplainQuery(exec_, "a &").ok());
}

TEST_F(ExplainTest, ParallelOptionsAnnotatePhaseTimings) {
  ExecOptions options;
  options.num_threads = 4;
  Result<std::string> plan = ExplainQuery(exec_, "c - (a | b)", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& text = *plan;
  EXPECT_NE(text.find("parallel: threads=4 apply=bit-identical"),
            std::string::npos) << text;
  EXPECT_NE(text.find("sort="), std::string::npos) << text;
  EXPECT_NE(text.find("split="), std::string::npos) << text;
  std::size_t advance_pos = text.find("advance=");
  ASSERT_NE(advance_pos, std::string::npos) << text;
  // The per-node apply timing, not the "apply=bit-identical" header.
  EXPECT_NE(text.find("apply=", advance_pos), std::string::npos) << text;
  EXPECT_NE(text.find("except  [out=5"), std::string::npos) << text;

  options.apply_mode = ApplyMode::kStaged;
  Result<std::string> staged = ExplainQuery(exec_, "c - (a | b)", options);
  ASSERT_TRUE(staged.ok());
  EXPECT_NE(staged->find("parallel: threads=4 apply=staged"),
            std::string::npos) << *staged;
  EXPECT_NE(staged->find("except  [out=5"), std::string::npos) << *staged;

  // num_threads <= 1 falls back to the plain sequential explain.
  options.num_threads = 1;
  Result<std::string> seq = ExplainQuery(exec_, "c - (a | b)", options);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->find("parallel:"), std::string::npos);
}

}  // namespace
}  // namespace tpset
