#include "parallel/thread_pool.h"

#include <chrono>

#include "obs/events.h"
#include "obs/metrics.h"

namespace tpset {

namespace {

// Pool-wide metrics, shared by every ThreadPool in the process: queue depth
// (pending tasks across pools), tasks executed, and busy time — utilization
// is busy_usec / (size * wall) for whatever window the scraper tracks.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tpset_pool_queue_depth", "pending tasks across all thread pools");
  return g;
}

obs::Counter& TasksCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_pool_tasks_total", "tasks executed by all thread pools");
  return c;
}

obs::Counter& BusyUsecCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_pool_busy_usec_total",
      "wall microseconds thread-pool workers spent running tasks");
  return c;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  std::size_t depth;
  bool newly_saturated = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    depth = queue_.size();
    // Saturation: every worker busy and a full round of tasks per worker
    // already waiting. Edge-triggered (see saturated_ in the header).
    const std::size_t threshold = workers_.size() * 8;
    if (!saturated_ && depth >= threshold) {
      saturated_ = true;
      newly_saturated = true;
    } else if (saturated_ && depth < threshold / 2) {
      saturated_ = false;
    }
  }
  QueueDepthGauge().Add(1);
  if (newly_saturated) {
    obs::EmitEvent(obs::Severity::kWarn, "pool",
                   "pool saturated depth=%zu workers=%zu", depth,
                   workers_.size());
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge().Add(-1);
    const auto t0 = std::chrono::steady_clock::now();
    job();
    BusyUsecCounter().Increment(obs::ElapsedUsec(t0));
    TasksCounter().Increment();
  }
}

}  // namespace tpset
