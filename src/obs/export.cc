#include "obs/export.h"

#include "obs/profile.h"
#include "obs/recorder.h"

namespace tpset::obs {

namespace {

const char* TypeName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

ScrapeSnapshot TakeScrape(MetricsRegistry* registry) {
  if (registry == nullptr) registry = &MetricsRegistry::Global();
  ScrapeSnapshot scrape;
  scrape.scraped_unix_us = NowUnixUs();
  scrape.snapshot = registry->Scrape();
  return scrape;
}

std::string PrometheusText(const ScrapeSnapshot& scrape) {
  return PrometheusText(scrape.snapshot);
}

std::string JsonLines(const ScrapeSnapshot& scrape) {
  return JsonLines(scrape.snapshot);
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + m.help + "\n";
    }
    out += "# TYPE " + m.name + " " + TypeName(m.kind) + "\n";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += m.name + " " + std::to_string(m.counter) + "\n";
        break;
      case MetricSnapshot::Kind::kGauge:
        out += m.name + " " + std::to_string(m.gauge) + "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          cumulative += m.buckets[b];
          // The last bucket is unbounded: its `le` label is +Inf, which
          // also makes the final cumulative count equal `_count`.
          const std::string le =
              b + 1 == m.buckets.size()
                  ? "+Inf"
                  : std::to_string(HistogramBucketBound(b));
          out += m.name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += m.name + "_sum " + std::to_string(m.hist_sum) + "\n";
        out += m.name + "_count " + std::to_string(m.hist_count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string JsonLines(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSnapshot& m : snapshot.metrics) {
    out += "{\"name\":\"" + m.name + "\",\"type\":\"" + TypeName(m.kind) + "\"";
    switch (m.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += ",\"value\":" + std::to_string(m.counter);
        break;
      case MetricSnapshot::Kind::kGauge:
        out += ",\"value\":" + std::to_string(m.gauge);
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += ",\"count\":" + std::to_string(m.hist_count) +
               ",\"sum\":" + std::to_string(m.hist_sum) + ",\"bounds\":[";
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (b > 0) out += ',';
          out += b + 1 == m.buckets.size()
                     ? "null"  // +Inf
                     : std::to_string(HistogramBucketBound(b));
        }
        out += "],\"buckets\":[";
        for (std::size_t b = 0; b < m.buckets.size(); ++b) {
          if (b > 0) out += ',';
          out += std::to_string(m.buckets[b]);
        }
        out += ']';
        break;
      }
    }
    out += "}\n";
  }
  return out;
}

std::string ExportFlightRecord() {
  return Recorder::Global().FlightRecordJson();
}

}  // namespace tpset::obs
