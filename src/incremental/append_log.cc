#include "incremental/append_log.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>

#include "common/interval.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace tpset {

namespace {

obs::Counter& BelowWatermarkCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_storage_append_below_watermark_total",
      "appended rows dropped at the gate: interval ends at or below the "
      "retention watermark (dead on arrival)");
  return c;
}

}  // namespace

Result<EpochId> AppendLog::Append(StoredRelation* rel, const DeltaBatch& batch,
                                  std::vector<TpTuple>* applied) {
  assert(rel != nullptr && rel->context() != nullptr);
  std::lock_guard<std::mutex> fence(fence_);
  TpContext& ctx = *rel->context();

  // ---- Validation (no side effects on the context until it all passes) ---
  std::set<std::string> batch_vars;
  for (const DeltaRow& row : batch.rows) {
    TPSET_RETURN_NOT_OK(rel->schema().Validate(row.fact));
    if (!row.t.IsValid()) {
      return Status::InvalidArgument("empty interval " + ToString(row.t));
    }
    if (!(row.p > 0.0 && row.p <= 1.0)) {
      return Status::InvalidArgument("probability must be in (0,1]");
    }
    if (!row.var.empty()) {
      if (!batch_vars.insert(row.var).second ||
          ctx.vars().Find(row.var).ok()) {
        return Status::InvalidArgument("variable '" + row.var +
                                       "' already exists");
      }
    }
  }

  // Group row indices by fact value and check each fact's chain: start
  // ordered, non-overlapping, beginning at or after the stored tail (an
  // O(1) lookup in the relation's fact-tail map).
  std::map<Fact, std::vector<std::size_t>> by_fact;
  for (std::size_t i = 0; i < batch.rows.size(); ++i) {
    by_fact[batch.rows[i].fact].push_back(i);
  }
  for (auto& [fact, rows] : by_fact) {
    std::stable_sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
      const Interval& ta = batch.rows[a].t;
      const Interval& tb = batch.rows[b].t;
      return ta.start != tb.start ? ta.start < tb.start : ta.end < tb.end;
    });
    TimePoint tail = 0;
    bool have_tail = false;
    Result<FactId> existing = ctx.facts().Find(fact);
    if (existing.ok()) {
      auto [found, end] = rel->FactTail(*existing);
      have_tail = found;
      tail = end;
    }
    for (std::size_t idx : rows) {
      const Interval& t = batch.rows[idx].t;
      if (have_tail && t.start < tail) {
        return Status::InvalidArgument(
            "append violates fact-time order: " + ToString(fact) + " " +
            ToString(t) + " starts before the fact's tail (t=" +
            std::to_string(tail) + ")");
      }
      tail = t.end;
      have_tail = true;
    }
  }

  // ---- Apply: intern variables and facts, stamp the ticket, land the run --
  // The below-watermark gate: a row whose interval ends at or below the
  // relation's retention watermark is dead on arrival — the next compaction
  // pass would retire it unread, yet it would cost a run slot, a fact-tail
  // advance and an interned variable until then. Such rows are dropped here
  // (counted, warned), after the full batch validated: a malformed batch is
  // still rejected whole, and surviving rows keep their validated chain
  // (they start at or after the dead rows' ends, which sit at or below the
  // watermark). An all-dead batch still lands as an empty run recording its
  // epoch, so the writer's retry fence is unaffected.
  const TimePoint gate = rel->watermark();
  std::size_t below_watermark = 0;
  std::vector<TpTuple> tuples;
  tuples.reserve(batch.rows.size());
  for (const DeltaRow& row : batch.rows) {
    if (gate != kNoWatermark && row.t.end <= gate) {
      ++below_watermark;
      continue;
    }
    VarId v;
    if (row.var.empty()) {
      v = ctx.vars().Add(row.p);
    } else {
      Result<VarId> named = ctx.vars().AddNamed(row.var, row.p);
      assert(named.ok() && "name collisions were rejected above");
      v = *named;
    }
    FactId f = ctx.facts().Intern(row.fact);
    tuples.push_back({f, row.t, ctx.lineage().MakeVar(v)});
  }
  if (below_watermark > 0) {
    BelowWatermarkCounter().Increment(below_watermark);
    obs::EmitEvent(obs::Severity::kWarn, "storage",
                   "append below watermark relation=%.32s dropped=%zu "
                   "watermark=%lld",
                   rel->name().c_str(), below_watermark,
                   static_cast<long long>(gate));
  }
  std::sort(tuples.begin(), tuples.end(), FactTimeOrder());
  if (applied != nullptr) *applied = tuples;
  const EpochId epoch = next_epoch_.load(std::memory_order_relaxed);
  Status stored = rel->AppendRun(std::move(tuples), epoch);
  assert(stored.ok() && "chain and epoch were validated above");
  (void)stored;
  next_epoch_.store(epoch + 1, std::memory_order_release);
  return epoch;
}

}  // namespace tpset
