#include "algebra/aggregate.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace tpset {

std::vector<ExpectedCountStep> ExpectedCountSeries(const TpRelation& rel,
                                                   ProbabilityMethod method) {
  struct Event {
    TimePoint time;
    double delta;
  };
  std::vector<Event> events;
  events.reserve(rel.size() * 2);
  for (std::size_t i = 0; i < rel.size(); ++i) {
    double p = rel.TupleProbability(i, method);
    events.push_back({rel[i].t.start, p});
    events.push_back({rel[i].t.end, -p});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.time < b.time;
  });

  // Aggregate deltas per distinct time point.
  std::vector<std::pair<TimePoint, double>> deltas;
  for (std::size_t i = 0; i < events.size();) {
    TimePoint t = events[i].time;
    double d = 0.0;
    while (i < events.size() && events[i].time == t) d += events[i++].delta;
    deltas.emplace_back(t, d);
  }

  // Walk the elementary segments with the running sum, merging adjacent
  // segments whose expectation is (numerically) equal and skipping zeros.
  constexpr double kEps = 1e-12;
  std::vector<ExpectedCountStep> out;
  ExpectedCountStep pending;
  bool have_pending = false;
  double acc = 0.0;
  for (std::size_t k = 0; k + 1 < deltas.size(); ++k) {
    acc += deltas[k].second;
    Interval seg(deltas[k].first, deltas[k + 1].first);
    if (std::abs(acc) <= kEps) {
      if (have_pending) {
        out.push_back(pending);
        have_pending = false;
      }
      continue;
    }
    if (have_pending && pending.t.end == seg.start &&
        std::abs(pending.expected_count - acc) <= kEps) {
      pending.t.end = seg.end;
    } else {
      if (have_pending) out.push_back(pending);
      pending = {seg, acc};
      have_pending = true;
    }
  }
  if (have_pending) out.push_back(pending);
  return out;
}

std::vector<std::pair<FactId, double>> ExpectedDurationPerFact(
    const TpRelation& rel, ProbabilityMethod method) {
  std::map<FactId, double> acc;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    acc[rel[i].fact] += rel.TupleProbability(i, method) *
                        static_cast<double>(rel[i].t.Duration());
  }
  return {acc.begin(), acc.end()};
}

}  // namespace tpset
