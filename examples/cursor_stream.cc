// Constant-memory streaming consumption of a TP set operation (cursor demo;
// for the continuously-maintained query subsystem see streaming.cc).
//
// §VI-B observes that LAWA needs no intermediate buffers — "apart from very
// few pointers" — because windows are filtered and finalized the moment they
// are produced. SetOpCursor turns that property into an API: this example
// streams the difference of two million-tuple relations and computes
// aggregates (answer count, total covered time, top-confidence tuples)
// without ever materializing the answer relation.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "algebra/cursor.h"
#include "datagen/synthetic.h"
#include "lineage/eval.h"

using namespace tpset;

int main(int argc, char** argv) {
  std::size_t n = 1000000;
  if (argc > 1) n = static_cast<std::size_t>(std::atoll(argv[1]));

  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  Rng rng(7);
  SyntheticPairSpec spec;
  spec.num_tuples = n;
  spec.num_facts = 100;
  spec.max_interval_length_r = 10;
  spec.max_interval_length_s = 10;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  std::printf("inputs: 2 x %zu tuples, 100 facts\n", n);

  SetOpCursor cursor(SetOpKind::kExcept, r, s);
  const LineageManager& mgr = ctx->lineage();
  const VarTable& vars = ctx->vars();

  std::size_t count = 0;
  long long covered_time = 0;
  struct Best {
    double p;
    TpTuple t;
  };
  std::vector<Best> top;  // 3 highest-confidence answers

  TpTuple t;
  while (cursor.Next(&t)) {
    ++count;
    covered_time += t.t.Duration();
    double p = ProbabilityReadOnce(mgr, t.lineage, vars);
    if (top.size() < 3) {
      top.push_back({p, t});
      std::sort(top.begin(), top.end(),
                [](const Best& a, const Best& b) { return a.p > b.p; });
    } else if (p > top.back().p) {
      top.back() = {p, t};
      std::sort(top.begin(), top.end(),
                [](const Best& a, const Best& b) { return a.p > b.p; });
    }
  }

  std::printf("r -Tp s streamed: %zu answer tuples (never materialized)\n",
              count);
  std::printf("windows examined: %zu (Prop. 1 bound: %zu)\n",
              cursor.windows_examined(), 2 * r.size() + 2 * s.size() - 100);
  std::printf("total covered time: %lld points\n", covered_time);
  std::printf("top-confidence answers:\n");
  for (const Best& b : top) {
    std::printf("  fact #%u  T=[%lld,%lld)  p=%.4f\n", b.t.fact,
                static_cast<long long>(b.t.t.start),
                static_cast<long long>(b.t.t.end), b.p);
  }
  return 0;
}
