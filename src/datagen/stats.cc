#include "datagen/stats.h"

#include <algorithm>
#include <ostream>
#include <unordered_set>
#include <vector>

namespace tpset {

DatasetStats ComputeStats(const TpRelation& rel) {
  DatasetStats s;
  s.cardinality = rel.size();
  if (rel.empty()) return s;

  TimePoint min_start = rel[0].t.start;
  TimePoint max_end = rel[0].t.end;
  s.min_duration = rel[0].t.Duration();
  s.max_duration = rel[0].t.Duration();
  double total_duration = 0.0;
  std::unordered_set<FactId> facts;

  // All endpoints; runs of equal values give the per-point counts.
  std::vector<TimePoint> points;
  points.reserve(rel.size() * 2);
  for (const TpTuple& t : rel.tuples()) {
    min_start = std::min(min_start, t.t.start);
    max_end = std::max(max_end, t.t.end);
    TimePoint d = t.t.Duration();
    s.min_duration = std::min(s.min_duration, d);
    s.max_duration = std::max(s.max_duration, d);
    total_duration += static_cast<double>(d);
    facts.insert(t.fact);
    points.push_back(t.t.start);
    points.push_back(t.t.end);
  }
  std::sort(points.begin(), points.end());

  std::size_t distinct_points = 0;
  std::size_t i = 0;
  while (i < points.size()) {
    TimePoint t = points[i];
    std::size_t events_here = 0;
    while (i < points.size() && points[i] == t) {
      ++events_here;
      ++i;
    }
    ++distinct_points;
    s.max_tuples_per_point = std::max(s.max_tuples_per_point, events_here);
  }

  s.time_range = max_end - min_start;
  s.avg_duration = total_duration / static_cast<double>(rel.size());
  s.num_facts = facts.size();
  s.distinct_points = distinct_points;
  s.avg_tuples_per_point = static_cast<double>(2 * rel.size()) /
                           static_cast<double>(distinct_points);
  return s;
}

void PrintStats(std::ostream& os, const std::string& name, const DatasetStats& s) {
  os << name << ":\n"
     << "  cardinality            " << s.cardinality << '\n'
     << "  time range             " << s.time_range << '\n'
     << "  min duration           " << s.min_duration << '\n'
     << "  max duration           " << s.max_duration << '\n'
     << "  avg duration           " << s.avg_duration << '\n'
     << "  num facts              " << s.num_facts << '\n'
     << "  distinct points        " << s.distinct_points << '\n'
     << "  max tuples per point   " << s.max_tuples_per_point << '\n'
     << "  avg tuples per point   " << s.avg_tuples_per_point << '\n';
}

}  // namespace tpset
