#include "relation/io.h"

#include <fstream>

#include "lineage/parse.h"
#include <iomanip>
#include <ostream>
#include <sstream>
#include <vector>

namespace tpset {

namespace {

std::string FormatProbability(double p) {
  std::ostringstream os;
  os << std::setprecision(6) << std::noshowpoint << p;
  return os.str();
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

void PrintRelation(std::ostream& os, const TpRelation& rel,
                   const PrintOptions& opts) {
  const Schema& schema = rel.schema();
  std::size_t rows = rel.size();
  if (opts.max_rows > 0 && rows > opts.max_rows) rows = opts.max_rows;

  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (const std::string& n : schema.names()) header.push_back(n);
  header.push_back("λ");
  header.push_back("T");
  if (opts.show_probability) header.push_back("p");
  cells.push_back(header);

  Rng rng(42);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    const Fact& f = rel.FactOf(i);
    for (const Value& v : f) row.push_back(ToString(v));
    row.push_back(rel.LineageString(i, opts.ascii_lineage));
    row.push_back(ToString(rel[i].t));
    if (opts.show_probability) {
      row.push_back(
          FormatProbability(rel.TupleProbability(i, opts.method, 10000, &rng)));
    }
    cells.push_back(std::move(row));
  }

  std::vector<std::size_t> widths(cells[0].size(), 0);
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!rel.name().empty()) os << rel.name() << ":\n";
  for (std::size_t r = 0; r < cells.size(); ++r) {
    os << "  ";
    for (std::size_t c = 0; c < cells[r].size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[r][c];
    }
    os << '\n';
    if (r == 0) {
      os << "  ";
      std::size_t total = 0;
      for (std::size_t w : widths) total += w + 2;
      for (std::size_t i = 0; i < total; ++i) os << '-';
      os << '\n';
    }
  }
  if (rows < rel.size()) {
    os << "  ... (" << rel.size() - rows << " more rows)\n";
  }
}

std::string RelationToString(const TpRelation& rel, const PrintOptions& opts) {
  std::ostringstream os;
  PrintRelation(os, rel, opts);
  return os.str();
}

Status WriteCsv(const TpRelation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = rel.schema();
  const LineageManager& mgr = rel.context()->lineage();
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    const char* type = "str";
    switch (schema.types()[c]) {
      case ValueType::kInt64: type = "int"; break;
      case ValueType::kDouble: type = "float"; break;
      case ValueType::kString: type = "str"; break;
    }
    out << schema.names()[c] << ':' << type << ',';
  }
  out << "ts,te,p,var\n";
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const TpTuple& t = rel[i];
    const LineageNode& node = mgr.node(t.lineage);
    if (node.kind != LineageKind::kVar) {
      return Status::NotSupported(
          "WriteCsv requires base tuples with atomic lineage (tuple " +
          std::to_string(i) + " is derived)");
    }
    const Fact& f = rel.FactOf(i);
    for (const Value& v : f) {
      switch (TypeOf(v)) {
        case ValueType::kInt64: out << std::get<std::int64_t>(v); break;
        case ValueType::kDouble: out << std::get<double>(v); break;
        case ValueType::kString: out << std::get<std::string>(v); break;
      }
      out << ',';
    }
    out << t.t.start << ',' << t.t.end << ','
        << FormatProbability(rel.context()->vars().probability(node.var)) << ','
        << rel.context()->vars().name(node.var) << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Status WriteDerivedCsv(const TpRelation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  const Schema& schema = rel.schema();
  for (std::size_t c = 0; c < schema.num_attributes(); ++c) {
    const char* type = "str";
    switch (schema.types()[c]) {
      case ValueType::kInt64: type = "int"; break;
      case ValueType::kDouble: type = "float"; break;
      case ValueType::kString: type = "str"; break;
    }
    out << schema.names()[c] << ':' << type << ',';
  }
  out << "ts,te,lineage\n";
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const Fact& f = rel.FactOf(i);
    for (const Value& v : f) {
      switch (TypeOf(v)) {
        case ValueType::kInt64: out << std::get<std::int64_t>(v); break;
        case ValueType::kDouble: out << std::get<double>(v); break;
        case ValueType::kString: out << std::get<std::string>(v); break;
      }
      out << ',';
    }
    out << rel[i].t.start << ',' << rel[i].t.end << ','
        << rel.LineageString(i, /*ascii=*/true) << '\n';
  }
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

Result<TpRelation> ReadDerivedCsv(const std::string& path,
                                  std::shared_ptr<TpContext> ctx,
                                  const std::string& relation_name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("'" + path + "' is empty");

  std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 4 || header[header.size() - 1] != "lineage") {
    return Status::Corruption("'" + path + "': header must end in ts,te,lineage");
  }
  std::size_t num_attrs = header.size() - 3;
  std::vector<std::string> names;
  std::vector<ValueType> types;
  for (std::size_t c = 0; c < num_attrs; ++c) {
    std::size_t colon = header[c].find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("'" + path + "': attribute '" + header[c] +
                                "' lacks a :type suffix");
    }
    names.push_back(header[c].substr(0, colon));
    std::string type = header[c].substr(colon + 1);
    if (type == "int") {
      types.push_back(ValueType::kInt64);
    } else if (type == "float") {
      types.push_back(ValueType::kDouble);
    } else if (type == "str") {
      types.push_back(ValueType::kString);
    } else {
      return Status::Corruption("'" + path + "': unknown type '" + type + "'");
    }
  }

  TpRelation rel(ctx, Schema(names, types), relation_name);
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != num_attrs + 3) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": expected " + std::to_string(num_attrs + 3) +
                                " fields, got " + std::to_string(fields.size()));
    }
    Fact fact;
    for (std::size_t c = 0; c < num_attrs; ++c) {
      try {
        switch (types[c]) {
          case ValueType::kInt64:
            fact.emplace_back(static_cast<std::int64_t>(std::stoll(fields[c])));
            break;
          case ValueType::kDouble:
            fact.emplace_back(std::stod(fields[c]));
            break;
          case ValueType::kString:
            fact.emplace_back(fields[c]);
            break;
        }
      } catch (const std::exception&) {
        return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                  ": cannot parse value '" + fields[c] + "'");
      }
    }
    TimePoint ts, te;
    try {
      ts = std::stoll(fields[num_attrs]);
      te = std::stoll(fields[num_attrs + 1]);
    } catch (const std::exception&) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": cannot parse ts/te");
    }
    if (ts >= te) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": empty interval");
    }
    Result<LineageId> lineage =
        ParseLineage(fields[num_attrs + 2], &ctx->lineage(), ctx->vars());
    if (!lineage.ok()) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": " + lineage.status().message());
    }
    if (*lineage == kNullLineage) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": tuples cannot carry null lineage");
    }
    rel.AddDerived(ctx->facts().Intern(fact), Interval(ts, te), *lineage);
  }
  return rel;
}

Result<TpRelation> ReadCsv(const std::string& path, std::shared_ptr<TpContext> ctx,
                           const std::string& relation_name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("'" + path + "' is empty");

  std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() < 4) {
    return Status::Corruption("'" + path + "': header must end in ts,te,p,var");
  }
  std::size_t num_attrs = header.size() - 4;
  std::vector<std::string> names;
  std::vector<ValueType> types;
  for (std::size_t c = 0; c < num_attrs; ++c) {
    std::size_t colon = header[c].find(':');
    if (colon == std::string::npos) {
      return Status::Corruption("'" + path + "': attribute '" + header[c] +
                                "' lacks a :type suffix");
    }
    names.push_back(header[c].substr(0, colon));
    std::string type = header[c].substr(colon + 1);
    if (type == "int") {
      types.push_back(ValueType::kInt64);
    } else if (type == "float") {
      types.push_back(ValueType::kDouble);
    } else if (type == "str") {
      types.push_back(ValueType::kString);
    } else {
      return Status::Corruption("'" + path + "': unknown type '" + type + "'");
    }
  }

  TpRelation rel(std::move(ctx), Schema(names, types), relation_name);
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != num_attrs + 4) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": expected " + std::to_string(num_attrs + 4) +
                                " fields, got " + std::to_string(fields.size()));
    }
    Fact fact;
    for (std::size_t c = 0; c < num_attrs; ++c) {
      try {
        switch (types[c]) {
          case ValueType::kInt64:
            fact.emplace_back(static_cast<std::int64_t>(std::stoll(fields[c])));
            break;
          case ValueType::kDouble:
            fact.emplace_back(std::stod(fields[c]));
            break;
          case ValueType::kString:
            fact.emplace_back(fields[c]);
            break;
        }
      } catch (const std::exception&) {
        return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                  ": cannot parse value '" + fields[c] + "'");
      }
    }
    TimePoint ts, te;
    double p;
    try {
      ts = std::stoll(fields[num_attrs]);
      te = std::stoll(fields[num_attrs + 1]);
      p = std::stod(fields[num_attrs + 2]);
    } catch (const std::exception&) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": cannot parse ts/te/p");
    }
    Result<VarId> added =
        rel.AddBase(fact, Interval(ts, te), p, fields[num_attrs + 3]);
    if (!added.ok()) {
      return Status::Corruption("'" + path + "' line " + std::to_string(line_no) +
                                ": " + added.status().message());
    }
  }
  return rel;
}

}  // namespace tpset
