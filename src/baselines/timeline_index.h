// TI baseline: Timeline Index + Timeline Join (Kaufmann et al. [12],[16]).
//
// A Timeline Index maps every start or end point of a relation to the ids of
// the tuples starting/ending there (an event list sorted by time). Timeline
// Join merges the event lists of the two inputs, maintaining the set of
// active tuples per input; each start event pairs the new tuple with every
// active tuple of the other input. The joined (rid, sid) pairs then require
// fetching the original tuples both to apply the fact-equality condition and
// to build the output tuples — the two lookups the paper identifies as TI's
// bottleneck: with few distinct facts (or many tuples sharing one time
// point, as in Webkit), most pairs fail the filter after being materialized.
//
// TI supports TP set intersection only (Table II): the join emits exactly
// the overlapping same-fact pairs; their overlap intervals with and()
// lineage are the ∩Tp output for duplicate-free inputs.
#ifndef TPSET_BASELINES_TIMELINE_INDEX_H_
#define TPSET_BASELINES_TIMELINE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/setop.h"
#include "common/status.h"
#include "relation/relation.h"
#include "relation/tuple.h"

namespace tpset {

/// The Timeline Index of one relation: events sorted by (time, end-first).
/// End events sort before start events at the same time point so that
/// adjacent intervals [a,b) and [b,c) never count as overlapping.
class TimelineIndex {
 public:
  struct Event {
    TimePoint time;
    std::uint32_t tuple;  ///< index into the indexed relation's tuple vector
    bool is_start;
  };

  /// Builds the index over `tuples` (any order).
  static TimelineIndex Build(const std::vector<TpTuple>& tuples);

  const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

/// Per-run statistics: `pairs_formed` counts joined (rid, sid) pairs before
/// the fact filter; `lookups` counts fetches of original tuples.
struct TimelineJoinStats {
  std::size_t pairs_formed = 0;
  std::size_t lookups = 0;
};

/// Computes r ∩Tp s via Timeline Join. Only kIntersect is supported.
Result<TpRelation> TimelineSetOp(SetOpKind op, const TpRelation& r,
                                 const TpRelation& s,
                                 TimelineJoinStats* stats = nullptr);

}  // namespace tpset

#endif  // TPSET_BASELINES_TIMELINE_INDEX_H_
