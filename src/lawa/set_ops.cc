#include "lawa/set_ops.h"

#include <algorithm>
#include <cassert>

#include "lawa/advancer.h"
#include "relation/validate.h"

namespace tpset {

namespace {

// Stable LSD radix sort by the (fact, start, end) key using 16-bit counting
// passes — the §VI-B "counting-based sorting" variant, linear in input size.
// Start/end points are biased into unsigned space so negative time points
// sort correctly.
void RadixSortTuples(std::vector<TpTuple>* tuples) {
  const std::size_t n = tuples->size();
  if (n < 2) return;
  std::vector<TpTuple> scratch(n);

  auto pass = [&](auto key_of, int shift, int bits) {
    const std::size_t buckets = std::size_t{1} << bits;
    const std::size_t mask = buckets - 1;
    std::vector<std::size_t> count(buckets + 1, 0);
    for (const TpTuple& t : *tuples) {
      ++count[((key_of(t) >> shift) & mask) + 1];
    }
    for (std::size_t b = 1; b <= buckets; ++b) count[b] += count[b - 1];
    for (const TpTuple& t : *tuples) {
      scratch[count[(key_of(t) >> shift) & mask]++] = t;
    }
    tuples->swap(scratch);
  };

  auto end_key = [](const TpTuple& t) {
    return static_cast<std::uint64_t>(t.t.end) + (std::uint64_t{1} << 63);
  };
  auto start_key = [](const TpTuple& t) {
    return static_cast<std::uint64_t>(t.t.start) + (std::uint64_t{1} << 63);
  };
  auto fact_key = [](const TpTuple& t) { return std::uint64_t{t.fact}; };

  for (int shift = 0; shift < 64; shift += 16) pass(end_key, shift, 16);
  for (int shift = 0; shift < 64; shift += 16) pass(start_key, shift, 16);
  for (int shift = 0; shift < 32; shift += 16) pass(fact_key, shift, 16);
}

}  // namespace

void SortTuples(std::vector<TpTuple>* tuples, SortMode mode) {
  switch (mode) {
    case SortMode::kComparison:
      std::sort(tuples->begin(), tuples->end(), FactTimeOrder());
      break;
    case SortMode::kCounting:
      RadixSortTuples(tuples);
      break;
  }
}

TpRelation LawaSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                     SortMode sort_mode, LawaStats* stats) {
  assert(ValidateSetOpInputs(r, s).ok());
  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(),
                 "(" + r.name() + " " + SetOpName(op) + " " + s.name() + ")");

  // Step 1 of Fig. 5: sort both inputs by (F, Ts). An input carrying the
  // sortedness witness (catalog relations, set-op outputs) is swept in
  // place — no copy, no sort.
  std::size_t sort_skipped = 0;
  std::vector<TpTuple> rs, ss;
  const std::vector<TpTuple>* rv = &r.tuples();
  const std::vector<TpTuple>* sv = &s.tuples();
  if (r.known_sorted()) {
    ++sort_skipped;
  } else {
    rs = r.tuples();
    SortTuples(&rs, sort_mode);
    rv = &rs;
  }
  if (s.known_sorted()) {
    ++sort_skipped;
  } else {
    ss = s.tuples();
    SortTuples(&ss, sort_mode);
    sv = &ss;
  }

  // Steps 2-4: advance windows; filter on (λr, λs); concatenate lineages.
  // The drain conditions and λ-filters live in ForEachSurvivingWindow
  // (set_ops.h), shared with the parallel sweep kernels.
  LineageAwareWindowAdvancer adv(*rv, *sv);
  ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
    LineageId lineage = kNullLineage;
    switch (op) {
      case SetOpKind::kIntersect:
        lineage = mgr.ConcatAnd(w.lr, w.ls);
        break;
      case SetOpKind::kUnion:
        lineage = mgr.ConcatOr(w.lr, w.ls);
        break;
      case SetOpKind::kExcept:
        lineage = mgr.ConcatAndNot(w.lr, w.ls);
        break;
    }
    out.AddDerived(w.fact, w.t, lineage);
  });
  if (stats != nullptr) {
    stats->windows_produced = adv.windows_produced();
    stats->output_tuples = out.size();
    stats->sort_skipped = sort_skipped;
  }
  return out;
}

Result<TpRelation> LawaSetOpChecked(SetOpKind op, const TpRelation& r,
                                    const TpRelation& s, SortMode sort_mode) {
  TPSET_RETURN_NOT_OK(ValidateSetOpInputs(r, s));
  return LawaSetOp(op, r, s, sort_mode);
}

}  // namespace tpset
