#include "datagen/realworld.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tpset {

TpRelation GenerateMeteoLike(std::shared_ptr<TpContext> ctx, const MeteoSpec& spec,
                             const std::string& name, Rng* rng) {
  assert(spec.num_stations > 0);
  TpRelation rel(ctx, Schema::SingleInt("station"), name);
  std::vector<FactId> stations;
  stations.reserve(spec.num_stations);
  for (std::size_t i = 0; i < spec.num_stations; ++i) {
    stations.push_back(ctx->facts().Intern({Value(static_cast<std::int64_t>(i))}));
  }
  // Abutting "stable temperature" runs per station: a new run begins
  // whenever the prediction changes by more than the merge threshold, so
  // runs of one station never overlap and mostly abut.
  std::vector<TimePoint> cursor(spec.num_stations, 0);
  for (std::size_t i = 0; i < spec.num_tuples; ++i) {
    std::size_t st = i % spec.num_stations;
    // Log-normal-ish duration with a hard floor at the measurement period,
    // quantized to the 10-minute measurement grid: real runs start/end at
    // measurement instants, so endpoints collide across stations (545K
    // distinct points for 10.2M tuples in Table IV).
    double mag = std::exp(spec.duration_log_sigma * std::abs(rng->NextGaussian()));
    TimePoint dur = static_cast<TimePoint>(
        std::clamp<double>(static_cast<double>(spec.min_duration) * mag,
                           static_cast<double>(spec.min_duration),
                           static_cast<double>(spec.max_duration)));
    dur = (dur / spec.min_duration) * spec.min_duration;
    // Occasional measurement gaps (station offline), also grid-aligned.
    TimePoint gap =
        rng->Bernoulli(0.02) ? rng->Uniform(1, 60) * spec.min_duration : 0;
    TimePoint start = cursor[st] + gap;
    cursor[st] = start + dur;
    rel.AddBaseFast(stations[st], Interval(start, start + dur),
                    0.05 + 0.9 * rng->NextDouble());
  }
  rel.SortFactTime();
  return rel;
}

TpRelation GenerateWebkitLike(std::shared_ptr<TpContext> ctx,
                              const WebkitSpec& spec, const std::string& name,
                              Rng* rng) {
  assert(spec.num_commits >= 2);
  TpRelation rel(ctx, Schema::SingleInt("file"), name);

  // The global pool of commit timestamps: intervals of all files start and
  // end at these points (a file is valid-unchanged between two commits that
  // touch it). Sorted, distinct.
  std::vector<TimePoint> commits;
  commits.reserve(spec.num_commits);
  for (std::size_t i = 0; i < spec.num_commits; ++i) {
    commits.push_back(rng->Uniform(0, spec.time_range));
  }
  std::sort(commits.begin(), commits.end());
  commits.erase(std::unique(commits.begin(), commits.end()), commits.end());

  // A handful of mass commits (repo-wide reformat, branch merge, ...) touch
  // a large share of all files at one timestamp.
  std::size_t num_mass = std::max<std::size_t>(
      1, static_cast<std::size_t>(spec.mass_commit_fraction *
                                  static_cast<double>(commits.size())));
  std::vector<std::size_t> mass_commits;
  for (std::size_t i = 0; i < num_mass; ++i) {
    mass_commits.push_back(rng->Below(commits.size()));
  }
  std::sort(mass_commits.begin(), mass_commits.end());
  mass_commits.erase(std::unique(mass_commits.begin(), mass_commits.end()),
                     mass_commits.end());

  const double avg_per_file = std::max(
      1.0, static_cast<double>(spec.num_tuples) / static_cast<double>(spec.num_files));
  std::size_t produced = 0;
  std::vector<std::size_t> touches;
  for (std::size_t f = 0; f < spec.num_files && produced < spec.num_tuples; ++f) {
    FactId fact = ctx->facts().Intern({Value(static_cast<std::int64_t>(f))});
    // Number of unchanged-intervals for this file.
    std::size_t k = 1 + rng->Below(static_cast<std::uint64_t>(2.0 * avg_per_file));
    k = std::min(k, spec.num_tuples - produced);
    // k intervals need k+1 touch events; ~40% of touches come from the mass
    // commit pool, concentrating endpoints on few timestamps.
    touches.clear();
    for (std::size_t i = 0; i < k + 1; ++i) {
      if (!mass_commits.empty() && rng->Bernoulli(0.4)) {
        touches.push_back(mass_commits[rng->Below(mass_commits.size())]);
      } else {
        touches.push_back(rng->Below(commits.size()));
      }
    }
    std::sort(touches.begin(), touches.end());
    touches.erase(std::unique(touches.begin(), touches.end()), touches.end());
    for (std::size_t i = 0; i + 1 < touches.size() && produced < spec.num_tuples;
         ++i) {
      Interval iv(commits[touches[i]], commits[touches[i + 1]]);
      assert(iv.IsValid());
      rel.AddBaseFast(fact, iv, 0.05 + 0.9 * rng->NextDouble());
      ++produced;
    }
  }
  rel.SortFactTime();
  return rel;
}

TpRelation ShiftedCopy(const TpRelation& rel, const std::string& name, Rng* rng) {
  TpRelation out(rel.context(), rel.schema(), name);
  if (rel.empty()) return out;

  TimePoint t0 = rel[0].t.start, t1 = rel[0].t.end;
  for (const TpTuple& t : rel.tuples()) {
    t0 = std::min(t0, t.t.start);
    t1 = std::max(t1, t.t.end);
  }

  // Draw a random start for each copy, keeping the length.
  struct Shifted {
    FactId fact;
    Interval t;
    double p;
  };
  std::vector<Shifted> shifted;
  shifted.reserve(rel.size());
  const VarTable& vars = rel.context()->vars();
  const LineageManager& mgr = rel.context()->lineage();
  for (const TpTuple& t : rel.tuples()) {
    TimePoint len = t.t.Duration();
    TimePoint max_start = std::max(t0, t1 - len);
    TimePoint start = rng->Uniform(t0, max_start);
    const LineageNode& node = mgr.node(t.lineage);
    double p = node.kind == LineageKind::kVar ? vars.probability(node.var) : 0.5;
    shifted.push_back({t.fact, Interval(start, start + len), p});
  }

  // Resolve same-fact overlaps by pushing intervals forward; lengths and
  // the start distribution are preserved up to these minimal corrections.
  std::sort(shifted.begin(), shifted.end(), [](const Shifted& a, const Shifted& b) {
    if (a.fact != b.fact) return a.fact < b.fact;
    return a.t.start < b.t.start;
  });
  for (std::size_t i = 1; i < shifted.size(); ++i) {
    if (shifted[i].fact == shifted[i - 1].fact &&
        shifted[i].t.start < shifted[i - 1].t.end) {
      TimePoint len = shifted[i].t.Duration();
      shifted[i].t.start = shifted[i - 1].t.end;
      shifted[i].t.end = shifted[i].t.start + len;
    }
  }
  for (const Shifted& sh : shifted) {
    out.AddBaseFast(sh.fact, sh.t, sh.p);
  }
  return out;
}

}  // namespace tpset
