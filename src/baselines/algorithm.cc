#include "baselines/algorithm.h"

#include <cassert>

#include <thread>

#include "baselines/norm.h"
#include "baselines/oip.h"
#include "baselines/timeline_index.h"
#include "baselines/tpdb.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"

namespace tpset {

namespace {

class LawaAlgorithm final : public SetOpAlgorithm {
 public:
  std::string name() const override { return "LAWA"; }
  bool Supports(SetOpKind) const override { return true; }
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override {
    return LawaSetOp(op, r, s);
  }
};

class NormAlgorithm final : public SetOpAlgorithm {
 public:
  std::string name() const override { return "NORM"; }
  bool Supports(SetOpKind) const override { return true; }
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override {
    return NormSetOp(op, r, s);
  }
};

class TpdbAlgorithm final : public SetOpAlgorithm {
 public:
  std::string name() const override { return "TPDB"; }
  bool Supports(SetOpKind op) const override { return op != SetOpKind::kExcept; }
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override {
    Result<TpRelation> result = TpdbSetOp(op, r, s);
    assert(result.ok() && "unsupported op; check Supports() first");
    return std::move(result).value();
  }
};

class OipAlgorithm final : public SetOpAlgorithm {
 public:
  std::string name() const override { return "OIP"; }
  bool Supports(SetOpKind op) const override {
    return op == SetOpKind::kIntersect;
  }
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override {
    Result<TpRelation> result = OipSetOp(op, r, s);
    assert(result.ok() && "unsupported op; check Supports() first");
    return std::move(result).value();
  }
};

class TimelineAlgorithm final : public SetOpAlgorithm {
 public:
  std::string name() const override { return "TI"; }
  bool Supports(SetOpKind op) const override {
    return op == SetOpKind::kIntersect;
  }
  TpRelation Compute(SetOpKind op, const TpRelation& r,
                     const TpRelation& s) const override {
    Result<TpRelation> result = TimelineSetOp(op, r, s);
    assert(result.ok() && "unsupported op; check Supports() first");
    return std::move(result).value();
  }
};

}  // namespace

const std::vector<const SetOpAlgorithm*>& AllAlgorithms() {
  static const LawaAlgorithm lawa;
  // Partitioned parallel LAWA on all hardware threads; its pool is created
  // lazily, so merely listing the registry spawns nothing.
  static const ParallelSetOpAlgorithm lawa_p(std::thread::hardware_concurrency());
  static const NormAlgorithm norm;
  static const TpdbAlgorithm tpdb;
  static const OipAlgorithm oip;
  static const TimelineAlgorithm ti;
  static const std::vector<const SetOpAlgorithm*> all = {&lawa, &lawa_p, &norm,
                                                         &tpdb, &oip, &ti};
  return all;
}

const SetOpAlgorithm* FindAlgorithm(const std::string& name) {
  for (const SetOpAlgorithm* algo : AllAlgorithms()) {
    if (algo->name() == name) return algo;
  }
  return nullptr;
}

}  // namespace tpset
