// Morsel-driven work-stealing scheduler for partition sweeps.
//
// The fact-range partitioner hands the pool one task per partition. Two
// ceilings follow from that model (ROADMAP "NEXT"): a single heavy fact pins
// one worker while the rest idle (the partitioner never cuts inside a fact),
// and the sequential splice starts only after *every* sweep finishes. This
// file removes both, HyPer-style, without giving up determinism:
//
//  * morsels — the partition plan is refined into morsels of roughly
//    `morsel_size` combined tuples. Cuts happen first at fact boundaries
//    (free: windows never span facts) and, inside a fact heavier than the
//    budget, at *clean time boundaries*: a cut time T such that every tuple
//    of the fact either ends at or before T or starts at or after T. No
//    window spans such a cut (a window is bounded by the tuples valid over
//    it, and adjacency across a validity gap restarts at the next tuple's
//    start), so sweeping each sub-span with a fresh advancer yields exactly
//    the corresponding segment of the full fact's window stream — the
//    concatenation in morsel order IS the sequential stream. A fact with no
//    clean cut (one unbroken overlap chain) stays one morsel.
//
//  * work stealing — MorselBatch distributes morsel indices round-robin
//    over per-worker deques. A worker pops its own deque from the front
//    (lowest indices first, so the batch completes roughly in splice order);
//    when empty it steals from the *back* of a victim's deque (highest
//    indices — the work farthest from the splice frontier, and the cheapest
//    point to take without contending with the owner). Deques are tiny
//    (hundreds of indices) and mutex-protected; contention is one lock per
//    morsel plus one per steal attempt, noise next to a sweep.
//
//  * in-order completion waits — WaitMorsel(i) blocks until morsel i has
//    run, while later morsels keep executing. The caller drains the batch
//    in index order and splices each morsel's staged result as soon as it —
//    and everything before it — is done: splice *order* stays deterministic
//    (the invariant), splice *time* overlaps the remaining sweeps.
//
// Determinism: each morsel's result lands in its own slot and the caller
// consumes slots in index order, so outputs are independent of which worker
// ran which morsel and of steal timing. Only the stolen-counter is
// scheduling-dependent.
#ifndef TPSET_PARALLEL_SCHEDULER_H_
#define TPSET_PARALLEL_SCHEDULER_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "parallel/partition.h"
#include "parallel/thread_pool.h"
#include "relation/tuple.h"

namespace tpset {

/// Scheduling knobs of the parallel set-op engine (surface of
/// ExecOptions{morsel_size, steal} and the algorithm constructor).
struct MorselOptions {
  /// false = the legacy static model: one unit per fact-range partition (no
  /// heavy-fact splitting) and a full barrier before the splice. Units are
  /// still picked up dynamically (`steal` applies in both modes — with it
  /// on, an idle worker takes remaining partitions exactly like the old
  /// shared FIFO pool queue did), so the A/B against morsel mode isolates
  /// the *splitting + overlap* effect, not a strawman dispatcher. Kept as
  /// the measurable baseline (bench_parallel A/Bs it under skew).
  bool enabled = true;
  /// Combined (r + s) tuple budget per morsel; 0 picks a size that
  /// oversubscribes the workers ~8x beyond the partition plan
  /// (MorselAutoBudget). 1 is legal (every tuple its own morsel) — the
  /// property tests use it.
  std::size_t morsel_size = 0;
  /// Allow idle workers to steal from other deques. Off, each worker drains
  /// only its round-robin share — skew pins again, but the knob isolates the
  /// stealing effect in benchmarks.
  bool steal = true;
};

/// The engine's automatic morsel budget for a `total`-tuple operation:
/// ~8 morsels per partition slot, floored so per-morsel overhead (one
/// advancer, one staging arena) stays invisible. Shared with bench_parallel
/// so modeled plans match what the engine executes.
inline std::size_t MorselAutoBudget(std::size_t total, std::size_t workers,
                                    std::size_t partitions_per_thread) {
  const std::size_t slots = workers * partitions_per_thread * 8;
  return std::max<std::size_t>(2048, slots == 0 ? total : total / slots);
}

/// A refined partition plan: morsels in (fact, time) order. Morsels are
/// plain FactPartitions — contiguous index ranges of both inputs — because a
/// clean time cut of a start-sorted fact is also an index cut.
struct MorselPlan {
  std::vector<FactPartition> morsels;
  std::size_t facts_split = 0;  ///< facts cut at time boundaries (>1 morsel)
};

/// Splits one fact's spans (`part` must cover exactly one fact in both
/// inputs) at clean time boundaries into sub-spans of at most ~`budget`
/// combined tuples. A cut is placed before a tuple starting at T only when
/// every earlier tuple of the fact ends at or before T — cuts never bisect a
/// window-open (scheduler_test pins this). Returns one span when no clean
/// cut exists within budget. `budget` 0 is treated as 1.
std::vector<FactPartition> SplitFactAtTimeBoundaries(const TpTuple* r,
                                                     const TpTuple* s,
                                                     const FactPartition& part,
                                                     std::size_t budget);

/// Refines a fact-range partition plan into morsels of at most ~`budget`
/// combined tuples: partitions within budget pass through unchanged; larger
/// ones are re-cut at fact boundaries, and facts heavier than the budget are
/// time-split via SplitFactAtTimeBoundaries. Morsel order preserves
/// (fact, time) order, so concatenating per-morsel sweep outputs reproduces
/// the sequential window stream.
MorselPlan BuildMorsels(const TpTuple* r, const TpTuple* s,
                        const std::vector<FactPartition>& parts,
                        std::size_t budget);

/// One batch of morsels executing on a pool with per-worker deques and work
/// stealing. Construction schedules everything; the caller then waits —
/// typically WaitMorsel(0..n-1) in order, splicing as it goes.
///
/// `body(i)` runs morsel i exactly once on some pool thread; it must write
/// its result into a caller-owned slot for index i and must not touch other
/// morsels' slots. An exception thrown by a body is captured and rethrown by
/// the next Wait* call (after all workers drained — the batch never hangs).
///
/// The batch holds only shared state also owned by the workers, so it is
/// safe to destroy early (the destructor waits for stragglers to keep
/// caller-owned slots alive, matching std::async semantics).
class MorselBatch {
 public:
  /// Starts `count` morsels on min(pool->size(), count) workers. With
  /// `steal` false, workers drain only their own deque.
  MorselBatch(ThreadPool* pool, std::size_t count,
              std::function<void(std::size_t)> body, bool steal = true);

  MorselBatch(const MorselBatch&) = delete;
  MorselBatch& operator=(const MorselBatch&) = delete;

  ~MorselBatch();

  /// Blocks until morsel `index` has completed (not necessarily any other).
  void WaitMorsel(std::size_t index);

  /// Blocks until every morsel has completed.
  void WaitAll();

  /// Morsels executed (== count). Valid after WaitAll.
  std::size_t morsels_run() const;

  /// Morsels a worker took from another worker's deque. Valid after
  /// WaitAll; scheduling-dependent (the only non-deterministic observable).
  std::size_t morsels_stolen() const;

 private:
  struct State;
  static void RunWorker(const std::shared_ptr<State>& st, std::size_t worker);

  std::shared_ptr<State> state_;
};

}  // namespace tpset

#endif  // TPSET_PARALLEL_SCHEDULER_H_
