// Flight-recorder tests: crash-dump JSON from a forked child, deterministic
// ring-history statistics (delta rates, windowed p99), bounded ring memory,
// the subscriber-lag gauge against a hand-computed epoch schedule, slow-
// exemplar retention/eviction, and the lock-free read paths racing writers
// (this file carries the concurrency label and runs under the CI TSan job).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "incremental/continuous_query.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "query/executor.h"
#include "tests/test_util.h"

#if defined(__SANITIZE_THREAD__)
#define TPSET_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TPSET_TSAN_BUILD 1
#endif
#endif

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

constexpr std::chrono::milliseconds kWideWindow(3'600'000);

DeltaBatch OneRow(const std::string& fact, TimePoint ts, TimePoint te,
                  double p) {
  DeltaBatch batch;
  batch.Add({Value(fact)}, Interval(ts, te), p, "");
  return batch;
}

// String-aware balanced-braces check (the obs_test ToJson idiom): braces and
// brackets outside string literals must nest and balance.
void CheckBalancedJson(const std::string& json) {
  std::int64_t braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0) << json;
  EXPECT_EQ(brackets, 0) << json;
}

bool HasKey(const std::string& json, const std::string& key) {
  return json.find("\"" + key + "\":") != std::string::npos;
}

// A forked child installs the crash handler, raises SIGSEGV, and must leave
// behind a complete flight-record file written entirely from the signal
// handler (pre-allocated buffers + write(2); the child dies of the re-raised
// signal). The same structure is schema-validated by
// scripts/validate_flight_record.py in the CI smoke. Declared first in this
// file so the fork happens before any test spawns threads.
TEST(RecorderCrashTest, ForkedChildSignalDumpIsWellFormed) {
#ifdef TPSET_TSAN_BUILD
  GTEST_SKIP() << "fork + fatal-signal dump is not exercised under TSan";
#endif
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  const std::string path = ::testing::TempDir() + "recorder_crash_dump.json";
  unlink(path.c_str());

  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: a local recorder with two sampled metrics, one event, one slow
    // exemplar — then crash. No gtest machinery; the parent asserts.
    obs::MetricsRegistry registry;
    obs::Counter& ops =
        registry.GetCounter("tpset_test_crash_ops_total", "ops");
    obs::Histogram& lat =
        registry.GetHistogram("tpset_test_crash_lat_usec", "lat");
    obs::Recorder rec(&registry);
    ops.Increment(3);
    lat.Observe(5);
    rec.TickOnce();
    ops.Increment(4);
    lat.Observe(500);
    rec.TickOnce();
    obs::EmitEvent(obs::Severity::kWarn, "test", "about to crash on purpose");
    rec.RecordExecution("query", "crash exemplar", 1e6, nullptr);
    rec.InstallCrashHandler(path);
    raise(SIGSEGV);
    _exit(42);  // not reached: the handler re-raises with default disposition
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child exited normally, status=" << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no crash dump at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  ASSERT_FALSE(json.empty());

  EXPECT_EQ(json.rfind("{\"flight_record\":1", 0), 0u) << json.substr(0, 80);
  for (const char* key :
       {"generated_unix_us", "crash_signal", "tick_ms", "ring_capacity",
        "ticks", "metrics", "events", "slow_queries"}) {
    EXPECT_TRUE(HasKey(json, key)) << "missing top-level key " << key;
  }
  EXPECT_NE(json.find("\"crash_signal\":" + std::to_string(SIGSEGV)),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tpset_test_crash_ops_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tpset_test_crash_lat_usec\""),
            std::string::npos);
  EXPECT_NE(json.find("about to crash on purpose"), std::string::npos);
  EXPECT_NE(json.find("crash exemplar"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  CheckBalancedJson(json);
}

// ---- Ring history -----------------------------------------------------------

// Counter semantics: first/last are the cumulative window edges, min/max/avg
// are over per-tick deltas. Driven by manual TickOnce calls so the sampled
// values are exact.
TEST(RecorderHistoryTest, CounterDeltaStatsAreExact) {
  obs::MetricsRegistry registry;
  obs::Counter& ops = registry.GetCounter("tpset_test_ops_total", "ops");
  obs::Recorder rec(&registry);

  ops.Increment(5);
  rec.TickOnce();  // sample: 5
  ops.Increment(10);
  rec.TickOnce();  // sample: 15 (delta 10)
  rec.TickOnce();  // sample: 15 (delta 0)
  ops.Increment(20);
  rec.TickOnce();  // sample: 35 (delta 20)

  Result<obs::HistoryStats> h = rec.History("tpset_test_ops_total", kWideWindow);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->kind, obs::MetricSnapshot::Kind::kCounter);
  EXPECT_EQ(h->samples, 4u);
  EXPECT_EQ(h->first, 5);
  EXPECT_EQ(h->last, 35);
  EXPECT_EQ(h->min, 0);
  EXPECT_EQ(h->max, 20);
  EXPECT_DOUBLE_EQ(h->avg, 10.0);
  // The samples are microseconds apart; only the rate/window relationship is
  // deterministic: rate * window == last - first.
  if (h->window_sec > 0) {
    EXPECT_NEAR(h->rate_per_sec * h->window_sec, 30.0, 1e-6);
  }
}

// Gauge semantics: min/max/avg over the sampled values themselves, negatives
// preserved, rate pinned to zero.
TEST(RecorderHistoryTest, GaugeStatsCoverSampledValues) {
  obs::MetricsRegistry registry;
  obs::Gauge& depth = registry.GetGauge("tpset_test_depth", "depth");
  obs::Recorder rec(&registry);

  depth.Set(3);
  rec.TickOnce();
  depth.Set(-7);
  rec.TickOnce();
  depth.Set(12);
  rec.TickOnce();

  Result<obs::HistoryStats> h = rec.History("tpset_test_depth", kWideWindow);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->kind, obs::MetricSnapshot::Kind::kGauge);
  EXPECT_EQ(h->samples, 3u);
  EXPECT_EQ(h->first, 3);
  EXPECT_EQ(h->last, 12);
  EXPECT_EQ(h->min, -7);
  EXPECT_EQ(h->max, 12);
  EXPECT_DOUBLE_EQ(h->avg, (3.0 - 7.0 + 12.0) / 3.0);
  EXPECT_DOUBLE_EQ(h->rate_per_sec, 0.0);
}

// Histogram semantics: the p99 and mean come from *bucket deltas between the
// window edges*, so observations recorded before the window's baseline
// sample do not leak in.
TEST(RecorderHistoryTest, HistogramWindowedP99IgnoresPreWindowLoad) {
  obs::MetricsRegistry registry;
  obs::Histogram& lat = registry.GetHistogram("tpset_test_lat_usec", "lat");
  obs::Recorder rec(&registry);

  // Pre-window load: 50 large observations that must not affect the window.
  for (int i = 0; i < 50; ++i) lat.Observe(1'000'000);
  rec.TickOnce();  // baseline edge

  // In-window: 90 tiny + 10 at 1000 -> ceil(0.99 * 100) = 99th observation
  // lands in the [512, 1023] bucket.
  for (int i = 0; i < 90; ++i) lat.Observe(0);
  for (int i = 0; i < 10; ++i) lat.Observe(1000);
  rec.TickOnce();

  Result<obs::HistoryStats> h = rec.History("tpset_test_lat_usec", kWideWindow);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(h->kind, obs::MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(h->samples, 2u);
  EXPECT_EQ(h->first, 50);   // cumulative observation count at the baseline
  EXPECT_EQ(h->last, 150);
  EXPECT_EQ(h->min, 100);    // single per-tick delta
  EXPECT_EQ(h->max, 100);
  EXPECT_DOUBLE_EQ(h->p99, 1023.0);  // HistogramBucketBound(10)
  EXPECT_DOUBLE_EQ(h->avg_value, (90.0 * 0 + 10.0 * 1000) / 100.0);
}

TEST(RecorderHistoryTest, NotFoundBeforeAnySample) {
  obs::MetricsRegistry registry;
  registry.GetCounter("tpset_test_ops_total", "ops");  // registered, unticked
  obs::Recorder rec(&registry);
  EXPECT_FALSE(rec.History("tpset_test_ops_total", kWideWindow).ok());
  EXPECT_FALSE(rec.History("tpset_no_such_metric", kWideWindow).ok());
  EXPECT_TRUE(rec.TrackedMetrics().empty());
}

// Rings are fixed-size: a sustained run keeps only the trailing
// capacity-1 samples, options freeze on the first Start, and the recorder
// restarts cleanly after Stop.
TEST(RecorderHistoryTest, RingIsBoundedAndKeepsTrailingSamples) {
  obs::MetricsRegistry registry;
  obs::Counter& ops = registry.GetCounter("tpset_test_ops_total", "ops");
  obs::Recorder rec(&registry);

  obs::RecorderOptions options;
  options.tick = std::chrono::milliseconds(3'600'000);  // collector stays idle
  options.ring_capacity = 8;
  rec.Start(options);
  EXPECT_TRUE(rec.running());
  EXPECT_EQ(rec.options().ring_capacity, 8u);

  obs::RecorderOptions ignored;
  ignored.ring_capacity = 99;
  rec.Start(ignored);  // idempotent: options froze on the first Start
  EXPECT_EQ(rec.options().ring_capacity, 8u);

  for (int i = 0; i < 50; ++i) {
    ops.Increment(1);
    rec.TickOnce();
  }
  Result<obs::HistoryStats> h = rec.History("tpset_test_ops_total", kWideWindow);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_LE(h->samples, 7u);  // capacity-1: the newest slot may be mid-write
  EXPECT_EQ(h->last, 50);
  const std::vector<std::string> tracked = rec.TrackedMetrics();
  EXPECT_NE(std::find(tracked.begin(), tracked.end(), "tpset_test_ops_total"),
            tracked.end());

  rec.Stop();
  EXPECT_FALSE(rec.running());
  rec.Start(ignored);  // restart after Stop keeps the frozen options
  EXPECT_TRUE(rec.running());
  EXPECT_EQ(rec.options().ring_capacity, 8u);
  rec.Stop();
}

// ---- Slow-execution log -----------------------------------------------------

TEST(RecorderSlowLogTest, RetentionAndEviction) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  obs::MetricsRegistry registry;
  obs::Recorder rec(&registry);
  // No latency rings yet: the threshold is the configured floor.
  EXPECT_DOUBLE_EQ(rec.SlowThresholdMs("query"), 25.0);
  EXPECT_DOUBLE_EQ(rec.SlowThresholdMs("epoch"), 25.0);

  rec.RecordExecution("query", "fast", 10.0, nullptr);
  EXPECT_EQ(rec.slow_recorded(), 0u);
  EXPECT_TRUE(rec.SlowQueries().empty());

  obs::QueryProfile profile("slowroot");
  profile.root().AddChild("child");
  rec.RecordExecution("query", "first slow", 30.0, &profile);
  ASSERT_EQ(rec.slow_recorded(), 1u);
  std::vector<obs::SlowExemplar> slow = rec.SlowQueries();
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].seq, 1u);
  EXPECT_EQ(slow[0].kind, "query");
  EXPECT_EQ(slow[0].label, "first slow");
  EXPECT_DOUBLE_EQ(slow[0].wall_ms, 30.0);
  EXPECT_DOUBLE_EQ(slow[0].threshold_ms, 25.0);
  EXPECT_NE(slow[0].profile_json.find("\"name\":\"slowroot\""),
            std::string::npos);

  // An oversized span tree degrades to the literal null, not a torn string.
  obs::QueryProfile big("big");
  for (int i = 0; i < 300; ++i) {
    big.root().AddChild(std::string(40, 'x') + std::to_string(i));
  }
  rec.RecordExecution("epoch", "oversized profile", 40.0, &big);
  slow = rec.SlowQueries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[1].kind, "epoch");
  EXPECT_EQ(slow[1].profile_json, "null");

  // Fill past capacity (default 16): oldest evicted, order preserved.
  for (int i = 0; i < 20; ++i) {
    rec.RecordExecution("query", "q" + std::to_string(i), 26.0 + i, nullptr);
  }
  EXPECT_EQ(rec.slow_recorded(), 22u);
  slow = rec.SlowQueries();
  ASSERT_EQ(slow.size(), 16u);
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].seq, 7 + i);  // seqs 7..22 survive
    if (i > 0) {
      EXPECT_LT(slow[i - 1].seq, slow[i].seq);
    }
    EXPECT_EQ(slow[i].label, "q" + std::to_string(4 + i));
  }
}

// The retention threshold follows the latency ring's windowed p99 once the
// collector has sampled it.
TEST(RecorderSlowLogTest, ThresholdTracksRingP99) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  obs::MetricsRegistry registry;
  obs::Histogram& lat =
      registry.GetHistogram("tpset_exec_query_usec", "query wall");
  obs::Recorder rec(&registry);

  rec.TickOnce();  // baseline edge (count 0)
  for (int i = 0; i < 200; ++i) lat.Observe(100'000);  // 100ms per query
  rec.TickOnce();

  // p99 bucket bound of 100000usec is 131071usec -> 131.071ms threshold.
  EXPECT_NEAR(rec.SlowThresholdMs("query"), 131.071, 1e-9);
  EXPECT_DOUBLE_EQ(rec.SlowThresholdMs("epoch"), 25.0);  // no epoch ring

  rec.RecordExecution("query", "under p99", 50.0, nullptr);
  EXPECT_EQ(rec.slow_recorded(), 0u);
  rec.RecordExecution("query", "over p99", 200.0, nullptr);
  ASSERT_EQ(rec.slow_recorded(), 1u);
  EXPECT_NEAR(rec.SlowQueries()[0].threshold_ms, 131.071, 1e-9);
}

// ---- Flight-record JSON -----------------------------------------------------

TEST(RecorderDumpTest, FlightRecordJsonShapeAndDumpNow) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  obs::MetricsRegistry registry;
  obs::Counter& ops = registry.GetCounter("tpset_test_ops_total", "ops");
  obs::Recorder rec(&registry);
  ops.Increment(7);
  rec.TickOnce();
  ops.Increment(2);
  rec.TickOnce();
  rec.RecordExecution("query", "dump exemplar", 99.0, nullptr);

  const std::string json = rec.FlightRecordJson();
  EXPECT_EQ(json.rfind("{\"flight_record\":1", 0), 0u);
  EXPECT_NE(json.find("\"crash_signal\":0"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"tpset_test_ops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":[7,9]"), std::string::npos);
  EXPECT_NE(json.find("dump exemplar"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 2), "}\n");
  CheckBalancedJson(json);

  const std::string path = ::testing::TempDir() + "recorder_dump_now.json";
  ASSERT_TRUE(rec.DumpNow(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str().rfind("{\"flight_record\":1", 0), 0u);
  CheckBalancedJson(buf.str());
}

// ---- Event log --------------------------------------------------------------

TEST(RecorderOptionsTest, ValidateRejectsOutOfBoundsKnobs) {
  EXPECT_TRUE(obs::RecorderOptions{}.Validate().ok());

  obs::RecorderOptions bad;
  bad.tick = std::chrono::milliseconds(0);
  EXPECT_FALSE(bad.Validate().ok());
  bad.tick = std::chrono::milliseconds(2 * 60 * 60 * 1000);  // 2h > 1h cap
  EXPECT_FALSE(bad.Validate().ok());

  bad = obs::RecorderOptions{};
  bad.ring_capacity = 2;  // below the 4-sample floor readers rely on
  EXPECT_FALSE(bad.Validate().ok());
  bad.ring_capacity = (1u << 20) + 1;
  EXPECT_FALSE(bad.Validate().ok());

  bad = obs::RecorderOptions{};
  bad.slow_floor_ms = -1.0;
  EXPECT_FALSE(bad.Validate().ok());

  bad = obs::RecorderOptions{};
  bad.slow_capacity = 0;
  EXPECT_FALSE(bad.Validate().ok());

  // A rejected config never starts a recorder (reject, don't clamp).
  obs::MetricsRegistry registry;
  obs::Recorder rec(&registry);
  obs::RecorderOptions zero_tick;
  zero_tick.tick = std::chrono::milliseconds(0);
  EXPECT_FALSE(rec.Start(zero_tick).ok());
  EXPECT_FALSE(rec.running());
  EXPECT_TRUE(rec.Start(obs::RecorderOptions{}).ok());
  EXPECT_TRUE(rec.running());
  rec.Stop();
}

TEST(RecorderOptionsTest, FromEnvParsesAndValidates) {
  // Unset: defaults pass through.
  unsetenv("TPSET_OBS_SAMPLE_MS");
  unsetenv("TPSET_OBS_RING_CAP");
  Result<obs::RecorderOptions> options = obs::RecorderOptions::FromEnv();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->tick.count(), obs::RecorderOptions{}.tick.count());

  setenv("TPSET_OBS_SAMPLE_MS", "50", 1);
  setenv("TPSET_OBS_RING_CAP", "64", 1);
  options = obs::RecorderOptions::FromEnv();
  ASSERT_TRUE(options.ok());
  EXPECT_EQ(options->tick.count(), 50);
  EXPECT_EQ(options->ring_capacity, 64u);

  // Garbage and out-of-bounds values are errors naming the variable, never
  // silently clamped or ignored.
  setenv("TPSET_OBS_SAMPLE_MS", "fast", 1);
  Result<obs::RecorderOptions> bad = obs::RecorderOptions::FromEnv();
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("TPSET_OBS_SAMPLE_MS"),
            std::string::npos);

  setenv("TPSET_OBS_SAMPLE_MS", "0", 1);
  EXPECT_FALSE(obs::RecorderOptions::FromEnv().ok());

  setenv("TPSET_OBS_SAMPLE_MS", "250", 1);
  setenv("TPSET_OBS_RING_CAP", "3", 1);  // below the floor
  EXPECT_FALSE(obs::RecorderOptions::FromEnv().ok());
  setenv("TPSET_OBS_RING_CAP", "-5", 1);
  EXPECT_FALSE(obs::RecorderOptions::FromEnv().ok());

  unsetenv("TPSET_OBS_SAMPLE_MS");
  unsetenv("TPSET_OBS_RING_CAP");
}

TEST(EventLogTest, WrapKeepsNewestInOrder) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  obs::EventLog log(8);
  EXPECT_EQ(log.capacity(), 8u);
  EXPECT_EQ(obs::EventLog(3).capacity(), 8u);  // rounded up to the minimum

  for (int i = 0; i < 20; ++i) {
    log.Emit(obs::Severity::kInfo, "test", "event i=%d", i);
  }
  EXPECT_EQ(log.emitted(), 20u);
  const std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t j = 0; j < events.size(); ++j) {
    EXPECT_EQ(events[j].seq, 13 + j);  // seqs 13..20, oldest first
    EXPECT_STREQ(events[j].subsystem, "test");
    EXPECT_EQ(std::string(events[j].message),
              "event i=" + std::to_string(12 + j));
  }
  EXPECT_EQ(log.Snapshot(3).size(), 3u);
  EXPECT_EQ(log.Snapshot(3).front().seq, 18u);

  // Oversized messages truncate into the slot, NUL-terminated.
  log.Emit(obs::Severity::kError, "test", "%s", std::string(500, 'm').c_str());
  const obs::Event last = log.Snapshot(1).front();
  EXPECT_EQ(last.severity, obs::Severity::kError);
  EXPECT_EQ(std::string(last.message), std::string(103, 'm'));
}

// ---- Streaming telemetry ----------------------------------------------------

// Subscriber lag against a hand-computed schedule: wa reads a, wb reads b;
// epochs e1,e2 append to a (wb falls 2 behind), e3 appends to b (wb catches
// up, wa now 1 behind). The lag gauge tracks the last-touched query; the
// per-subscription truth lives on SubscriberInfos and in the explain body.
TEST(RecorderTelemetryTest, SubscriberLagMatchesHandComputedSchedule) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  SupermarketDb db;
  QueryExecutor exec(db.ctx);
  for (TpRelation* rel : {&db.a, &db.b}) {
    rel->SortFactTime();
    ASSERT_TRUE(exec.Register(*rel).ok());
  }
  ContinuousQuery* wa = exec.RegisterContinuous("wa", "a").value();
  ContinuousQuery* wb = exec.RegisterContinuous("wb", "b").value();
  std::vector<EpochId> wa_epochs, wb_epochs;
  wa->Subscribe([&](const EpochDelta& ed) { wa_epochs.push_back(ed.epoch); });
  wb->Subscribe([&](const EpochDelta& ed) { wb_epochs.push_back(ed.epoch); });

  auto e2e_count = [] {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Scrape();
    const obs::MetricSnapshot* e2e = snap.Find("tpset_incr_epoch_e2e_usec");
    return e2e != nullptr ? e2e->hist_count : 0;
  };
  const std::uint64_t e2e_before = e2e_count();

  const EpochId e1 = exec.Append("a", OneRow("milk", 10, 12, 0.5)).value();
  const EpochId e2 = exec.Append("a", OneRow("milk", 12, 14, 0.5)).value();

  auto lag_gauge = [] {
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Scrape();
    const obs::MetricSnapshot* g = snap.Find("tpset_incr_subscriber_lag");
    return g != nullptr ? g->gauge : -1;
  };
  // Last accounting action of e2: wb (map order) noting a log it has not
  // absorbed -> lag 2.
  EXPECT_EQ(lag_gauge(), 2);

  std::vector<ContinuousQuery::SubscriberInfo> infos = wb->SubscriberInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].last_delivered, 0u);
  EXPECT_EQ(infos[0].lag, 2u);
  EXPECT_EQ(wb->log_epoch(), e2);

  const EpochId e3 = exec.Append("b", OneRow("milk", 9, 11, 0.5)).value();
  // wb absorbed e3 (lag 0, the gauge's final write); wa is now 1 behind.
  EXPECT_EQ(lag_gauge(), 0);
  infos = wa->SubscriberInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].last_delivered, e2);
  EXPECT_EQ(infos[0].lag, 1u);
  infos = wb->SubscriberInfos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].last_delivered, e3);
  EXPECT_EQ(infos[0].lag, 0u);

  EXPECT_EQ(wa_epochs, (std::vector<EpochId>{e1, e2}));
  EXPECT_EQ(wb_epochs, (std::vector<EpochId>{e3}));

  // A subscription made now starts at the current log epoch, not lagging
  // behind history it never asked for.
  wb->Subscribe([](const EpochDelta&) {});
  infos = wb->SubscriberInfos();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[1].last_delivered, e3);
  EXPECT_EQ(infos[1].lag, 0u);

  // Event-time low watermarks: min over the DAG's leaves of the maximum
  // stored interval end (a: milk now ends 14; b: milk now ends 11).
  EXPECT_EQ(wa->LowWatermark(), 14);
  EXPECT_EQ(wb->LowWatermark(), 11);

  // End-to-end epoch latency observed once per applied epoch (e1,e2 -> wa,
  // e3 -> wb).
  EXPECT_EQ(e2e_count(), e2e_before + 3);

  // The explain body surfaces the same telemetry.
  const std::string described = wa->Describe();
  EXPECT_NE(described.find("log_epoch: 3"), std::string::npos) << described;
  EXPECT_NE(described.find("low_watermark: 14"), std::string::npos);
  EXPECT_NE(described.find("delivered=2, lag=1"), std::string::npos);
}

// ---- Concurrency ------------------------------------------------------------

// History reads, flight-record dumps, and manual ticks race the 1ms
// background collector while a writer mutates the registry: every read must
// come back untorn (counter history monotone, JSON balanced). TSan-clean.
TEST(RecorderConcurrencyTest, HistoryRacesCollectorTick) {
  obs::MetricsRegistry registry;
  obs::Counter& ops = registry.GetCounter("tpset_test_ops_total", "ops");
  obs::Histogram& lat = registry.GetHistogram("tpset_test_lat_usec", "lat");
  obs::Gauge& depth = registry.GetGauge("tpset_test_depth", "depth");
  obs::Recorder rec(&registry);
  obs::RecorderOptions options;
  options.tick = std::chrono::milliseconds(1);
  options.ring_capacity = 16;
  rec.Start(options);

  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  std::thread mutator([&] {
    std::int64_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      ops.Increment(1);
      lat.Observe(static_cast<std::uint64_t>(i % 4096));
      depth.Set(i % 64 - 32);
      ++i;
    }
  });
  std::thread history_reader([&] {
    std::int64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      Result<obs::HistoryStats> h =
          rec.History("tpset_test_ops_total", kWideWindow);
      if (!h.ok()) continue;  // not sampled yet, or reader lapped out
      if (h->last < last) monotone.store(false, std::memory_order_relaxed);
      last = h->last;
      (void)rec.History("tpset_test_lat_usec", kWideWindow);
      (void)rec.History("tpset_test_depth", kWideWindow);
    }
  });
  std::thread dumper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string json = rec.FlightRecordJson();
      if (json.rfind("{\"flight_record\":1", 0) != 0) {
        monotone.store(false, std::memory_order_relaxed);
      }
      (void)rec.TrackedMetrics();
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  while (std::chrono::steady_clock::now() < deadline) {
    rec.TickOnce();  // manual ticks race the background collector
  }
  done.store(true, std::memory_order_release);
  mutator.join();
  history_reader.join();
  dumper.join();
  rec.Stop();

  EXPECT_TRUE(monotone.load());
  rec.TickOnce();
  Result<obs::HistoryStats> h = rec.History("tpset_test_ops_total", kWideWindow);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_EQ(static_cast<std::uint64_t>(h->last), ops.Value());
}

// Slow-log writers race SlowQueries readers: each exemplar must come back
// internally consistent (label encodes the wall time it was stored with).
TEST(RecorderConcurrencyTest, SlowLogRacesReaders) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  obs::MetricsRegistry registry;
  obs::Recorder rec(&registry);

  constexpr int kWriters = 2;
  constexpr int kPerWriter = 400;
  std::atomic<bool> done{false};
  std::atomic<bool> consistent{true};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (const obs::SlowExemplar& e : rec.SlowQueries()) {
          const std::string expect =
              "q" + std::to_string(static_cast<long long>(e.wall_ms));
          if (e.label != expect || e.kind != "query") {
            consistent.store(false, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const int idx = w * kPerWriter + i;
        rec.RecordExecution("query", "q" + std::to_string(1000 + idx),
                            1000.0 + idx, nullptr);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_TRUE(consistent.load());
  EXPECT_EQ(rec.slow_recorded(),
            static_cast<std::uint64_t>(kWriters * kPerWriter));
  const std::vector<obs::SlowExemplar> slow = rec.SlowQueries();
  EXPECT_EQ(slow.size(), rec.options().slow_capacity);
  for (std::size_t i = 1; i < slow.size(); ++i) {
    EXPECT_LT(slow[i - 1].seq, slow[i].seq);
  }
}

// Concurrent emitters lapping a small event ring while snapshots run: no
// torn events, snapshot order strictly increasing, and once writers quiesce
// the newest capacity events are all present.
TEST(RecorderConcurrencyTest, EventEmittersRaceSnapshots) {
#ifdef TPSET_OBS_DISABLED
  GTEST_SKIP() << "recording compiled out";
#endif
  obs::EventLog log(16);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> done{false};
  std::atomic<bool> well_formed{true};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::uint64_t prev = 0;
      for (const obs::Event& e : log.Snapshot()) {
        if (e.seq <= prev || std::string(e.subsystem) != "test" ||
            std::string(e.message).rfind("w=", 0) != 0) {
          well_formed.store(false, std::memory_order_relaxed);
        }
        prev = e.seq;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        log.Emit(obs::Severity::kInfo, "test", "w=%d i=%d", w, i);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_TRUE(well_formed.load());
  EXPECT_EQ(log.emitted(),
            static_cast<std::uint64_t>(kWriters * kPerWriter));
  const std::vector<obs::Event> events = log.Snapshot();
  ASSERT_EQ(events.size(), log.capacity());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, kWriters * kPerWriter - log.capacity() + 1 + i);
  }
}

}  // namespace
}  // namespace tpset
