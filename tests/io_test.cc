// Pretty-printing and CSV persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "relation/io.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::SupermarketDb;

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& p : temp_files_) std::remove(p.c_str());
  }
  std::string TempPath(const std::string& name) {
    std::string p = ::testing::TempDir() + "/tpset_io_" + name;
    temp_files_.push_back(p);
    return p;
  }
  std::vector<std::string> temp_files_;
};

TEST_F(IoTest, PrintRelationContainsAllColumns) {
  SupermarketDb db;
  std::string text = RelationToString(db.a);
  EXPECT_NE(text.find("Product"), std::string::npos);
  EXPECT_NE(text.find("'milk'"), std::string::npos);
  EXPECT_NE(text.find("a1"), std::string::npos);
  EXPECT_NE(text.find("[2,10)"), std::string::npos);
  EXPECT_NE(text.find("0.3"), std::string::npos);
}

TEST_F(IoTest, PrintRelationMaxRows) {
  SupermarketDb db;
  PrintOptions opts;
  opts.max_rows = 1;
  std::string text = RelationToString(db.a, opts);
  EXPECT_NE(text.find("2 more rows"), std::string::npos);
}

TEST_F(IoTest, PrintRelationAsciiLineage) {
  SupermarketDb db;
  TpRelation q = [&] {
    // Build a derived tuple with compound lineage to exercise ascii mode.
    TpRelation rel(db.ctx, Schema::SingleString("Product"), "q");
    LineageManager& mgr = db.ctx->lineage();
    rel.AddDerived(db.c[0].fact, Interval(2, 4),
                   mgr.ConcatAndNot(db.c[0].lineage, db.a[0].lineage));
    return rel;
  }();
  PrintOptions opts;
  opts.ascii_lineage = true;
  std::string text = RelationToString(q, opts);
  EXPECT_NE(text.find("c1&!a1"), std::string::npos);
}

TEST_F(IoTest, CsvRoundTrip) {
  SupermarketDb db;
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(db.a, path).ok());

  auto ctx = std::make_shared<TpContext>();
  Result<TpRelation> loaded = ReadCsv(path, ctx, "a2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), db.a.size());
  for (std::size_t i = 0; i < db.a.size(); ++i) {
    EXPECT_EQ((*loaded)[i].t, db.a[i].t) << i;
    EXPECT_EQ(ToString(loaded->FactOf(i)), ToString(db.a.FactOf(i))) << i;
    EXPECT_NEAR(loaded->TupleProbability(i), db.a.TupleProbability(i), 1e-9) << i;
    EXPECT_EQ(loaded->LineageString(i), db.a.LineageString(i)) << i;
  }
}

TEST_F(IoTest, CsvRejectsDerivedTuples) {
  SupermarketDb db;
  TpRelation derived(db.ctx, Schema::SingleString("Product"), "d");
  LineageManager& mgr = db.ctx->lineage();
  derived.AddDerived(db.a[0].fact, Interval(0, 1),
                     mgr.MakeAnd(db.a[0].lineage, db.c[0].lineage));
  std::string path = TempPath("derived.csv");
  EXPECT_EQ(WriteCsv(derived, path).code(), StatusCode::kNotSupported);
}

TEST_F(IoTest, ReadCsvRejectsMalformedFiles) {
  auto ctx = std::make_shared<TpContext>();
  // Missing file.
  EXPECT_EQ(ReadCsv("/nonexistent/nope.csv", ctx, "x").status().code(),
            StatusCode::kIoError);
  // Bad header.
  std::string bad_header = TempPath("bad_header.csv");
  {
    std::ofstream f(bad_header);
    f << "Product,ts,te\n";
  }
  EXPECT_EQ(ReadCsv(bad_header, ctx, "x").status().code(), StatusCode::kCorruption);
  // Header attribute without type.
  std::string no_type = TempPath("no_type.csv");
  {
    std::ofstream f(no_type);
    f << "Product,ts,te,p,var\nmilk,1,2,0.5,v1\n";
  }
  EXPECT_EQ(ReadCsv(no_type, ctx, "x").status().code(), StatusCode::kCorruption);
  // Wrong field count in a row.
  std::string bad_row = TempPath("bad_row.csv");
  {
    std::ofstream f(bad_row);
    f << "Product:str,ts,te,p,var\nmilk,1,2\n";
  }
  EXPECT_EQ(ReadCsv(bad_row, ctx, "x").status().code(), StatusCode::kCorruption);
  // Unparsable number.
  std::string bad_num = TempPath("bad_num.csv");
  {
    std::ofstream f(bad_num);
    f << "Product:str,ts,te,p,var\nmilk,one,2,0.5,v1\n";
  }
  EXPECT_EQ(ReadCsv(bad_num, ctx, "x").status().code(), StatusCode::kCorruption);
  // Invalid interval (te <= ts).
  std::string bad_iv = TempPath("bad_iv.csv");
  {
    std::ofstream f(bad_iv);
    f << "Product:str,ts,te,p,var\nmilk,5,5,0.5,v1\n";
  }
  EXPECT_EQ(ReadCsv(bad_iv, ctx, "x").status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, DerivedCsvRoundTrip) {
  // A query answer (compound lineage) round-trips once the base variables
  // exist in the target context.
  SupermarketDb db;
  TpRelation q = [&] {
    LineageManager& mgr = db.ctx->lineage();
    TpRelation rel(db.ctx, Schema::SingleString("Product"), "q");
    rel.AddDerived(db.c[0].fact, Interval(2, 4),
                   mgr.ConcatAndNot(db.c[0].lineage, db.a[0].lineage));
    rel.AddDerived(db.c[2].fact, Interval(4, 5),
                   mgr.ConcatOr(db.c[2].lineage, db.a[1].lineage));
    return rel;
  }();
  std::string path = TempPath("derived_roundtrip.csv");
  ASSERT_TRUE(WriteDerivedCsv(q, path).ok());

  // Same context: variables resolve by name.
  Result<TpRelation> loaded = ReadDerivedCsv(path, db.ctx, "q2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    EXPECT_EQ((*loaded)[i].t, q[i].t);
    EXPECT_EQ((*loaded)[i].lineage, q[i].lineage)
        << "hash-consing makes the round-trip exact";
  }
}

TEST_F(IoTest, DerivedCsvRejectsUnknownVariables) {
  std::string path = TempPath("unknown_var.csv");
  {
    std::ofstream f(path);
    f << "Product:str,ts,te,lineage\nmilk,1,4,c1&!zz\n";
  }
  SupermarketDb db;
  Result<TpRelation> loaded = ReadDerivedCsv(path, db.ctx, "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(IoTest, DerivedCsvRejectsNullLineageAndBadIntervals) {
  SupermarketDb db;
  std::string null_lin = TempPath("null_lin.csv");
  {
    std::ofstream f(null_lin);
    f << "Product:str,ts,te,lineage\nmilk,1,4,null\n";
  }
  EXPECT_FALSE(ReadDerivedCsv(null_lin, db.ctx, "x").ok());
  std::string bad_iv = TempPath("derived_bad_iv.csv");
  {
    std::ofstream f(bad_iv);
    f << "Product:str,ts,te,lineage\nmilk,4,4,c1\n";
  }
  EXPECT_FALSE(ReadDerivedCsv(bad_iv, db.ctx, "x").ok());
}

TEST_F(IoTest, ReadCsvIntAttribute) {
  std::string path = TempPath("int.csv");
  {
    std::ofstream f(path);
    f << "fact:int,ts,te,p,var\n7,1,5,0.25,v1\n8,2,6,0.75,v2\n";
  }
  auto ctx = std::make_shared<TpContext>();
  Result<TpRelation> rel = ReadCsv(path, ctx, "ints");
  ASSERT_TRUE(rel.ok()) << rel.status().ToString();
  EXPECT_EQ(rel->size(), 2u);
  EXPECT_EQ(ToString(rel->FactOf(0)), "7");
  EXPECT_NEAR(rel->TupleProbability(1), 0.75, 1e-12);
}

}  // namespace
}  // namespace tpset
