// Bounded structured event log: the flight recorder's second data source.
//
// Metrics answer "how much / how fast"; events answer "what happened and
// when" — the state transitions a counter cannot express: an epoch was
// applied, a compaction ran, retention rebased a DAG, the morsel pool
// saturated, an append was rejected. Each event is one fixed-size slot
// (timestamp, severity, subsystem, preformatted message) in a process-wide
// ring:
//
//  * Append is lock-free for writers: a relaxed fetch_add claims a slot, the
//    payload is written into the slot's fixed char buffers (no allocation),
//    and a per-slot sequence stamp is published with release order.
//  * Readers (Snapshot, the crash-dump path) copy a slot and re-check its
//    stamp — a torn read (the ring lapped the slot mid-copy) is detected and
//    the slot skipped, never returned half-written. The retry count is
//    bounded, so the read path stays usable from a signal handler even if a
//    writer died mid-slot (fork, crash).
//  * The ring overwrites oldest-first; overwritten events count into
//    tpset_obs_events_dropped_total so saturation is itself observable.
//
// Emit formats with snprintf into the slot, so call sites pay one claim +
// one format — cheap enough for per-epoch emission, not meant for per-tuple
// loops. All of it honors the obs kill switches (runtime flag and
// TPSET_OBS_DISABLED), like every other record path.
#ifndef TPSET_OBS_EVENTS_H_
#define TPSET_OBS_EVENTS_H_

#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <string>
#include <vector>

namespace tpset::obs {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kError = 2 };

/// "info" / "warn" / "error".
const char* SeverityName(Severity s);

/// One logged state transition. Plain copyable data; char buffers are always
/// NUL-terminated.
struct Event {
  std::int64_t ts_unix_us = 0;  ///< microseconds since the Unix epoch
  std::uint64_t seq = 0;        ///< global emission order (1-based)
  Severity severity = Severity::kInfo;
  char subsystem[16] = {0};  ///< metric-subsystem spelling: incr, storage, ...
  char message[104] = {0};   ///< preformatted "key=value ..." payload
};

/// Fixed-capacity multi-writer event ring. See the file comment.
class EventLog {
 public:
  /// Capacity is rounded up to a power of two (minimum 8).
  explicit EventLog(std::size_t capacity = 1024);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  /// The process-wide log every subsystem emits into.
  static EventLog& Global();

  /// Appends one event; printf-style message formatting, truncated to the
  /// slot buffer. No-op when recording is disabled.
  void Emit(Severity severity, const char* subsystem, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));
  void EmitV(Severity severity, const char* subsystem, const char* fmt,
             va_list args);

  /// Events emitted since construction (including overwritten ones).
  std::uint64_t emitted() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return capacity_; }

  /// The most recent `max_events` events in emission order (oldest first).
  /// Safe to call concurrently with Emit: torn slots are skipped.
  std::vector<Event> Snapshot(std::size_t max_events = SIZE_MAX) const;

  /// Copies the most recent events into a caller-provided array without
  /// allocating — the async-signal-safe read path behind Recorder's crash
  /// dump. Returns the number of events written (oldest first).
  std::size_t SnapshotInto(Event* out, std::size_t max_events) const;

 private:
  // The payload is stored as relaxed-atomic words (not a plain Event): a
  // snapshot racing a lapping writer reads the words while they are being
  // rewritten, which the stamp check then discards — storing through atomics
  // makes that benign race well-defined (and TSan-clean) instead of UB.
  static constexpr std::size_t kEventWords = (sizeof(Event) + 7) / 8;

  struct Slot {
    // Even = published (seq of the event stored, times 2); odd = a writer is
    // mid-copy. 0 = never written.
    std::atomic<std::uint64_t> stamp{0};
    std::atomic<std::uint64_t> words[kEventWords] = {};

    void Store(const Event& e);
    Event Load() const;
  };

  std::size_t capacity_;  // power of two
  Slot* slots_;
  std::atomic<std::uint64_t> next_seq_{0};
};

/// Shorthand: EventLog::Global().Emit(...).
void EmitEvent(Severity severity, const char* subsystem, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace tpset::obs

#endif  // TPSET_OBS_EVENTS_H_
