#include "datagen/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace tpset {

TpRelation GenerateSynthetic(std::shared_ptr<TpContext> ctx,
                             const SyntheticSpec& spec, const std::string& name,
                             Rng* rng,
                             const std::vector<TimePoint>* fact_offsets) {
  assert(spec.num_facts > 0);
  assert(spec.max_interval_length >= 1);
  assert(spec.max_time_distance >= 0);
  assert(fact_offsets == nullptr || fact_offsets->size() >= spec.num_facts);
  TpRelation rel(ctx, Schema::SingleInt("fact"), name);

  // Intern the fact domain once.
  std::vector<FactId> facts;
  facts.reserve(spec.num_facts);
  for (std::size_t f = 0; f < spec.num_facts; ++f) {
    facts.push_back(ctx->facts().Intern({Value(static_cast<std::int64_t>(f))}));
  }

  // Per-fact cursor: the end of the previously generated interval.
  std::vector<TimePoint> cursor(spec.num_facts, 0);
  if (fact_offsets != nullptr) {
    for (std::size_t f = 0; f < spec.num_facts; ++f) cursor[f] = (*fact_offsets)[f];
  }
  const double p_span = spec.max_probability - spec.min_probability;
  for (std::size_t i = 0; i < spec.num_tuples; ++i) {
    std::size_t f = i % spec.num_facts;
    TimePoint gap = rng->Uniform(0, spec.max_time_distance);
    TimePoint len = rng->Uniform(1, spec.max_interval_length);
    TimePoint start = cursor[f] + gap;
    cursor[f] = start + len;
    double p = spec.min_probability + p_span * rng->NextDouble();
    rel.AddBaseFast(facts[f], Interval(start, start + len), p);
  }
  rel.SortFactTime();
  return rel;
}

std::pair<TpRelation, TpRelation> GenerateSyntheticPair(
    std::shared_ptr<TpContext> ctx, const SyntheticPairSpec& spec, Rng* rng) {
  SyntheticSpec r_spec;
  r_spec.num_tuples = spec.num_tuples;
  r_spec.num_facts = spec.num_facts;
  r_spec.max_interval_length = spec.max_interval_length_r;
  r_spec.max_time_distance = spec.max_time_distance;
  SyntheticSpec s_spec = r_spec;
  s_spec.max_interval_length = spec.max_interval_length_s;
  if (spec.align_spans) {
    // Expected per-tuple pitch = E[len] + E[gap] = (maxLen+1)/2 + maxGap/2.
    // Stretch the sparser side's gap bound so expected spans match:
    // maxGap' = 2·(pitch_other − E[len_own]).
    auto pitch = [&](TimePoint max_len, TimePoint max_gap) {
      return (static_cast<double>(max_len) + 1.0) / 2.0 +
             static_cast<double>(max_gap) / 2.0;
    };
    double pr = pitch(r_spec.max_interval_length, r_spec.max_time_distance);
    double ps = pitch(s_spec.max_interval_length, s_spec.max_time_distance);
    if (ps < pr) {
      s_spec.max_time_distance = static_cast<TimePoint>(
          2.0 * (pr - (static_cast<double>(s_spec.max_interval_length) + 1.0) / 2.0));
    } else if (pr < ps) {
      r_spec.max_time_distance = static_cast<TimePoint>(
          2.0 * (ps - (static_cast<double>(r_spec.max_interval_length) + 1.0) / 2.0));
    }
  }
  // Stagger the fact chains over the 1-fact-equivalent time range so that
  // the tuple density per time point is independent of the fact count
  // (paper §VII-B varies the fact count at fixed cardinality without
  // changing the timeline). Offsets are shared between r and s so their
  // same-fact chains still overlap.
  std::vector<TimePoint> offsets(spec.num_facts, 0);
  if (spec.num_facts > 1) {
    double pitch_r =
        (static_cast<double>(r_spec.max_interval_length) + 1.0) / 2.0 +
        static_cast<double>(r_spec.max_time_distance) / 2.0;
    TimePoint range = static_cast<TimePoint>(
        pitch_r * static_cast<double>(spec.num_tuples));
    double chain = pitch_r * (static_cast<double>(spec.num_tuples) /
                              static_cast<double>(spec.num_facts));
    TimePoint max_offset =
        std::max<TimePoint>(0, range - static_cast<TimePoint>(chain));
    for (std::size_t f = 0; f < spec.num_facts; ++f) {
      offsets[f] = rng->Uniform(0, max_offset);
    }
  }
  TpRelation r = GenerateSynthetic(ctx, r_spec, "r", rng, &offsets);
  TpRelation s = GenerateSynthetic(ctx, s_spec, "s", rng, &offsets);
  return {std::move(r), std::move(s)};
}

std::vector<std::size_t> SkewedFactCounts(const SkewedPairSpec& spec) {
  assert(spec.num_facts > 0);
  std::vector<double> weight(spec.num_facts, 1.0);
  if (spec.zipf_s > 0.0) {
    for (std::size_t f = 0; f < spec.num_facts; ++f) {
      weight[f] = 1.0 / std::pow(static_cast<double>(f + 1), spec.zipf_s);
    }
  } else if (spec.hot_fact_share > 0.0 && spec.num_facts > 1) {
    weight[0] = spec.hot_fact_share;
    for (std::size_t f = 1; f < spec.num_facts; ++f) {
      weight[f] = (1.0 - spec.hot_fact_share) /
                  static_cast<double>(spec.num_facts - 1);
    }
  }
  double norm = 0.0;
  for (double w : weight) norm += w;
  std::vector<std::size_t> counts(spec.num_facts);
  for (std::size_t f = 0; f < spec.num_facts; ++f) {
    counts[f] = std::max<std::size_t>(
        1, static_cast<std::size_t>(weight[f] / norm *
                                    static_cast<double>(spec.num_tuples)));
  }
  return counts;
}

std::pair<TpRelation, TpRelation> GenerateSkewedPair(
    std::shared_ptr<TpContext> ctx, const SkewedPairSpec& spec, Rng* rng) {
  const std::vector<std::size_t> counts = SkewedFactCounts(spec);
  std::vector<FactId> facts;
  facts.reserve(spec.num_facts);
  for (std::size_t f = 0; f < spec.num_facts; ++f) {
    facts.push_back(ctx->facts().Intern({Value(static_cast<std::int64_t>(f))}));
  }
  auto generate = [&](const std::string& name, TimePoint max_len) {
    TpRelation rel(ctx, Schema::SingleInt("fact"), name);
    for (std::size_t f = 0; f < spec.num_facts; ++f) {
      TimePoint cursor = 0;
      for (std::size_t i = 0; i < counts[f]; ++i) {
        TimePoint start = cursor + rng->Uniform(0, spec.max_time_distance);
        TimePoint end = start + rng->Uniform(1, max_len);
        rel.AddBaseFast(facts[f], Interval(start, end),
                        0.1 + 0.8 * rng->NextDouble());
        cursor = end;
      }
    }
    rel.SortFactTime();
    return rel;
  };
  TpRelation r = generate("r", spec.max_interval_length_r);
  TpRelation s = generate("s", spec.max_interval_length_s);
  return {std::move(r), std::move(s)};
}

SyntheticPairSpec TableIIIPreset(double nominal_overlapping_factor) {
  // Table III: overlapping factor -> (max len R, max len S); the time
  // distance is 3 for all presets.
  struct Preset {
    double factor;
    TimePoint len_r;
    TimePoint len_s;
  };
  static constexpr Preset kPresets[] = {
      {0.03, 100, 3}, {0.1, 100, 10}, {0.4, 50, 10}, {0.6, 3, 3}, {0.8, 10, 10},
  };
  const Preset* best = &kPresets[0];
  for (const Preset& p : kPresets) {
    if (std::abs(p.factor - nominal_overlapping_factor) <
        std::abs(best->factor - nominal_overlapping_factor)) {
      best = &p;
    }
  }
  SyntheticPairSpec spec;
  spec.max_interval_length_r = best->len_r;
  spec.max_interval_length_s = best->len_s;
  spec.max_time_distance = 3;
  return spec;
}

}  // namespace tpset
