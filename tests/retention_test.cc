// Retention + checkpoint rebase: the clip-equivalence property.
//
// Retention forgets, it does not retract: after QueryExecutor::Retain(rel, w)
// the storage retires every tuple ending at or below w and every continuous
// query reading the relation drops the same prefix from its per-fact state
// (side inputs, emitted windows, advancer-checkpoint cursors). Below the
// watermark the state is gone; *above* it, nothing changes — so the testable
// invariant is clip-equivalence: clipping both the accumulated continuous
// state and a from-scratch Execute of the same query to (w, ∞) — dropping
// windows ending at or below w, clamping starts up to w — must yield the
// same relation (same facts, clipped intervals, probability-equal lineage).
// The subscriber delta stream, folded and clipped the same way, must agree
// tuple-for-tuple (exact lineage ids). Checkpoints must stay *live* after a
// rebase: later in-order appends keep resuming instead of resweeping.
#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "incremental/continuous_query.h"
#include "query/executor.h"
#include "query/explain.h"
#include "relation/relation.h"
#include "storage/stored_relation.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;

// Clips a relation to the open ray above `w`: windows ending at or below w
// vanish, straddlers keep their lineage with the start clamped to w.
TpRelation ClipAbove(const TpRelation& rel, TimePoint w) {
  TpRelation out(rel.context(), rel.schema(), rel.name() + "|clip");
  for (const TpTuple& t : rel.tuples()) {
    if (t.t.end <= w) continue;
    out.AddDerived(t.fact, Interval(std::max(t.t.start, w), t.t.end), t.lineage);
  }
  return out;
}

// Folds a delta stream into a multiset without the duplicate-freeness
// assertion of the unretained tests: below the watermark, forgotten windows
// are never retracted and a resweep may re-insert an identical window, so
// only the clipped view is comparable.
struct RetentionFold {
  std::map<std::tuple<FactId, TimePoint, TimePoint, LineageId>, int> tuples;
  EpochId last_epoch = 0;

  void Apply(const EpochDelta& d) {
    EXPECT_GT(d.epoch, last_epoch) << "epochs must arrive in order";
    last_epoch = d.epoch;
    for (const TpTuple& t : d.delta.retracted) {
      auto key = std::make_tuple(t.fact, t.t.start, t.t.end, t.lineage);
      auto it = tuples.find(key);
      ASSERT_TRUE(it != tuples.end()) << "retraction of a tuple never inserted";
      if (--it->second == 0) tuples.erase(it);
    }
    for (const TpTuple& t : d.delta.inserted) {
      ++tuples[std::make_tuple(t.fact, t.t.start, t.t.end, t.lineage)];
    }
  }

  void ExpectClippedMatch(const TpRelation& current, TimePoint w) {
    std::map<std::tuple<FactId, TimePoint, TimePoint, LineageId>, int> want;
    for (const auto& [key, count] : tuples) {
      const auto& [fact, ts, te, lin] = key;
      if (te <= w) continue;
      want[std::make_tuple(fact, std::max(ts, w), te, lin)] += count;
    }
    std::map<std::tuple<FactId, TimePoint, TimePoint, LineageId>, int> got;
    for (const TpTuple& t : current.tuples()) {
      if (t.t.end <= w) continue;
      ++got[std::make_tuple(t.fact, std::max(t.t.start, w), t.t.end, t.lineage)];
    }
    EXPECT_EQ(got, want) << "clipped folded stream != clipped accumulated state";
  }
};

// ---- Randomized schedules with periodic retention --------------------------

void RunRetainedSchedule(std::size_t num_threads, std::uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " threads=" + std::to_string(num_threads));
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  Rng rng(seed);

  const std::size_t kFacts = 5;
  const std::size_t kEpochs = 60;
  const std::vector<std::string> rel_names = {"r", "s", "u"};
  std::vector<std::vector<TimePoint>> cursor(rel_names.size(),
                                             std::vector<TimePoint>(kFacts, 0));
  for (const std::string& name : rel_names) {
    TpRelation rel(ctx, Schema::SingleInt("fact"), name);
    ASSERT_TRUE(exec.Register(rel).ok());
  }

  ContinuousOptions options;
  options.num_threads = num_threads;
  const std::vector<std::pair<std::string, std::string>> queries = {
      {"q_diff", "r - s"},
      {"q_mix", "(r | s) & u"},
      {"q_deep", "(r - s) | (s & u)"},
  };
  std::vector<ContinuousQuery*> cqs;
  std::vector<RetentionFold> folded(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Result<ContinuousQuery*> cq =
        exec.RegisterContinuous(queries[i].first, queries[i].second, options);
    ASSERT_TRUE(cq.ok()) << cq.status().ToString();
    cqs.push_back(*cq);
    RetentionFold* f = &folded[i];
    (*cq)->Subscribe([f](const EpochDelta& d) { f->Apply(d); });
  }

  TimePoint watermark = 0;
  auto check_clip_equivalence = [&]() {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const TimePoint w = cqs[i]->effective_watermark();
      const TimePoint w_eff = w == kNoWatermark ? 0 : w;
      Result<TpRelation> oneshot = exec.Execute(queries[i].second);
      ASSERT_TRUE(oneshot.ok());
      TpRelation current = cqs[i]->Current();
      EXPECT_TRUE(RelationsEquivalent(ClipAbove(current, w_eff),
                                      ClipAbove(*oneshot, w_eff)))
          << queries[i].second << " diverged above watermark " << w_eff;
      folded[i].ExpectClippedMatch(current, w_eff);
    }
  };

  for (std::size_t e = 0; e < kEpochs; ++e) {
    const std::size_t ri = static_cast<std::size_t>(rng.Below(rel_names.size()));
    DeltaBatch batch;
    for (std::size_t k = 0; k < 3; ++k) {
      const std::size_t fact = static_cast<std::size_t>(rng.Below(kFacts));
      TimePoint& cur = cursor[ri][fact];
      cur += rng.Uniform(0, 3);
      const TimePoint len = rng.Uniform(1, 4);
      batch.Add({Value(static_cast<std::int64_t>(fact))},
                Interval(cur, cur + len), 0.1 + 0.8 * rng.NextDouble());
      cur += len;
    }
    Result<EpochId> epoch = exec.Append(rel_names[ri], batch);
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

    // Every 12 epochs: advance the watermark over all three relations and
    // verify clip-equivalence right after the rebase (divergence caught
    // near its cause) — and again 3 epochs later, after post-retention
    // appends exercised the rebased checkpoints.
    if (e % 12 == 11) {
      watermark += 6;
      for (const std::string& name : rel_names) {
        Result<std::size_t> retired = exec.Retain(name, watermark);
        ASSERT_TRUE(retired.ok()) << retired.status().ToString();
      }
      check_clip_equivalence();
    }
    if (e % 12 == 2 && e > 12) check_clip_equivalence();
  }
  check_clip_equivalence();

  // Retention must actually have dropped state somewhere.
  std::size_t retired_total = 0;
  for (const std::string& name : rel_names) {
    retired_total += exec.FindStored(name).value()->stats().tuples_retired;
  }
  EXPECT_GT(retired_total, 0u) << "schedule never retired anything";
}

TEST(RetentionPropertyTest, RandomScheduleSequential) {
  for (std::uint64_t seed : testing::PropertySeeds({101, 102, 103, 104})) {
    RunRetainedSchedule(1, seed);
  }
}

TEST(RetentionPropertyTest, RandomScheduleParallelStaged) {
  for (std::uint64_t seed : testing::PropertySeeds({111, 112})) {
    RunRetainedSchedule(4, seed);
  }
}

// ---- Targeted rebase semantics ---------------------------------------------

DeltaBatch OneRow(const std::string& fact, TimePoint ts, TimePoint te, double p,
                  const std::string& var = "") {
  DeltaBatch batch;
  batch.Add({Value(fact)}, Interval(ts, te), p, var);
  return batch;
}

TEST(RetentionRebaseTest, CheckpointsStayLiveAfterRebase) {
  // A rebase shifts the advancer cursors; later in-order appends must keep
  // taking the O(delta) resume path, not degrade to resweeps.
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation a = MakeRelation(ctx, "a", {{"milk", "a1", 0, 4, 0.5}});
  TpRelation b = MakeRelation(ctx, "b", {{"milk", "b1", 1, 3, 0.6}});
  a.SortFactTime();
  b.SortFactTime();
  ASSERT_TRUE(exec.Register(a).ok());
  ASSERT_TRUE(exec.Register(b).ok());
  ContinuousQuery* cq = exec.RegisterContinuous("d", "a - b").value();

  ASSERT_TRUE(exec.Append("a", OneRow("milk", 4, 8, 0.5)).ok());
  ASSERT_TRUE(exec.Append("b", OneRow("milk", 5, 7, 0.6)).ok());

  // Retire everything at or below 4: b's seed tuple [1,3) and the windows
  // it shaped go away; the [4,8) tail survives.
  ASSERT_TRUE(exec.Retain("a", 4).ok());
  ASSERT_TRUE(exec.Retain("b", 4).ok());
  EXPECT_EQ(cq->effective_watermark(), 4);

  const std::string plan_before = ExplainContinuous(exec, "d").value();

  // Post-retention in-order appends at/after the frontier: all must resume.
  // (The frontier after a's append is 11 — the [8,11) window's end — so b's
  // append lands exactly on it.)
  ASSERT_TRUE(exec.Append("a", OneRow("milk", 8, 11, 0.5)).ok());
  ASSERT_TRUE(exec.Append("b", OneRow("milk", 11, 13, 0.6)).ok());

  const std::string plan_after = ExplainContinuous(exec, "d").value();
  auto reswept_of = [](const std::string& plan) {
    const std::size_t at = plan.find("facts_reswept=");
    EXPECT_NE(at, std::string::npos) << plan;
    return plan.substr(at, plan.find(',', at) - at);
  };
  // The resweep counter did not move: both appends took the resume path
  // through the rebased checkpoint.
  EXPECT_EQ(reswept_of(plan_before), reswept_of(plan_after))
      << plan_before << plan_after;
  EXPECT_NE(plan_after.find("facts_resumed="), std::string::npos);

  Result<TpRelation> oneshot = exec.Execute("a - b");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent(ClipAbove(cq->Current(), 4),
                                  ClipAbove(*oneshot, 4)));
}

TEST(RetentionRebaseTest, StraddlingWindowRetractsExactlyAfterRetention) {
  // The classic reopened-window case (r − s gains an s tuple inside an
  // emitted window) must still work when the emitted window straddles the
  // watermark and parts of the input prefix were retired: the resweep
  // retracts the exact stored straddler and re-derives its pieces.
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  TpRelation r = MakeRelation(ctx, "r",
                              {{"milk", "r1", 0, 3, 0.5}, {"milk", "r2", 3, 20, 0.4}});
  TpRelation s = MakeRelation(ctx, "s", {});
  r.SortFactTime();
  ASSERT_TRUE(exec.Register(r).ok());
  ASSERT_TRUE(exec.Register(s).ok());
  ContinuousQuery* cq = exec.RegisterContinuous("d", "r - s").value();
  EXPECT_EQ(cq->size(), 2u);  // [0,3), [3,20)

  Result<std::size_t> retired_r = exec.Retain("r", 5);
  ASSERT_TRUE(retired_r.ok());
  EXPECT_EQ(*retired_r, 1u);  // r1's [0,3) retired; [3,20) straddles
  ASSERT_TRUE(exec.Retain("s", 5).ok());
  EXPECT_EQ(cq->size(), 1u);  // the [0,3) output window was forgotten too

  EpochDelta got;
  cq->Subscribe([&](const EpochDelta& d) { got = d; });
  ASSERT_TRUE(exec.Append("s", OneRow("milk", 8, 12, 0.6)).ok());

  // The straddler [3,20) splits: exactly one retraction (the stored tuple,
  // verbatim) and three insertions.
  ASSERT_EQ(got.delta.retracted.size(), 1u);
  EXPECT_EQ(got.delta.retracted[0].t, Interval(3, 20));
  ASSERT_EQ(got.delta.inserted.size(), 3u);
  EXPECT_EQ(got.delta.inserted[0].t, Interval(3, 8));
  EXPECT_EQ(got.delta.inserted[1].t, Interval(8, 12));
  EXPECT_EQ(got.delta.inserted[2].t, Interval(12, 20));

  Result<TpRelation> oneshot = exec.Execute("r - s");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(RelationsEquivalent(ClipAbove(cq->Current(), 5),
                                  ClipAbove(*oneshot, 5)));
}

TEST(RetentionRebaseTest, RetentionBoundsResidentState) {
  // An unbounded stream with a sliding retention horizon must keep both the
  // stored relations and the operator state bounded.
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  for (const char* name : {"r", "s"}) {
    TpRelation rel(ctx, Schema::SingleInt("fact"), name);
    ASSERT_TRUE(exec.Register(rel).ok());
  }
  ContinuousQuery* cq = exec.RegisterContinuous("d", "r - s").value();

  const TimePoint kHorizon = 16;
  std::size_t max_resident = 0;
  std::size_t max_acc = 0;
  TimePoint clock = 0;
  for (int e = 0; e < 200; ++e) {
    DeltaBatch batch;
    batch.Add({Value(static_cast<std::int64_t>(0))}, Interval(clock, clock + 2),
              0.5);
    clock += 2;
    ASSERT_TRUE(exec.Append(e % 4 == 3 ? "s" : "r", batch).ok());
    if (e % 10 == 9 && clock > kHorizon) {
      ASSERT_TRUE(exec.Retain("r", clock - kHorizon).ok());
      ASSERT_TRUE(exec.Retain("s", clock - kHorizon).ok());
    }
    max_resident = std::max(max_resident,
                            exec.FindStored("r").value()->size() +
                                exec.FindStored("s").value()->size());
    max_acc = std::max(max_acc, cq->size());
  }
  // 200 epochs x 1 tuple appended; resident state must stay near the
  // horizon (plus the inter-retention build-up), far below the total.
  EXPECT_LT(max_resident, 50u);
  EXPECT_LT(max_acc, 50u);
  EXPECT_GT(exec.FindStored("r").value()->stats().tuples_retired, 100u);

  const TimePoint w = cq->effective_watermark();
  Result<TpRelation> oneshot = exec.Execute("r - s");
  ASSERT_TRUE(oneshot.ok());
  EXPECT_TRUE(
      RelationsEquivalent(ClipAbove(cq->Current(), w), ClipAbove(*oneshot, w)));
}

}  // namespace
}  // namespace tpset
