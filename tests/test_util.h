// Shared helpers for the tpset test suite.
#ifndef TPSET_TESTS_TEST_UTIL_H_
#define TPSET_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace tpset::testing {

/// Seeds a property test should iterate. Normally returns `defaults`; when
/// the LAWA_TEST_SEED environment variable is set, returns just that seed —
/// so a failure logged as "seed=N ..." reproduces with
/// `LAWA_TEST_SEED=N ctest -R <test>`. Every caller must put the seed into
/// a SCOPED_TRACE so failures print it.
inline std::vector<std::uint64_t> PropertySeeds(
    std::vector<std::uint64_t> defaults) {
  if (const char* env = std::getenv("LAWA_TEST_SEED")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return {static_cast<std::uint64_t>(v)};
  }
  return defaults;
}

/// One base-tuple spec: fact value (single string attribute), variable name,
/// interval and probability.
struct TupleSpec {
  std::string fact;
  std::string var;
  TimePoint ts;
  TimePoint te;
  double p;
};

/// Builds a single-string-attribute relation from specs.
inline TpRelation MakeRelation(std::shared_ptr<TpContext> ctx,
                               const std::string& name,
                               const std::vector<TupleSpec>& specs) {
  TpRelation rel(std::move(ctx), Schema::SingleString("Product"), name);
  for (const TupleSpec& s : specs) {
    Result<VarId> added =
        rel.AddBase({Value(s.fact)}, Interval(s.ts, s.te), s.p, s.var);
    if (!added.ok()) {
      // Tests construct valid specs; fail loudly otherwise.
      throw std::runtime_error("MakeRelation: " + added.status().ToString());
    }
  }
  return rel;
}

/// The paper's running example (Fig. 1a): relations a (productsBought),
/// b (productsOrdered) and c (productsInStock) in one shared context.
struct SupermarketDb {
  std::shared_ptr<TpContext> ctx = std::make_shared<TpContext>();
  TpRelation a = MakeRelation(ctx, "a",
                              {{"milk", "a1", 2, 10, 0.3},
                               {"chips", "a2", 4, 7, 0.8},
                               {"dates", "a3", 1, 3, 0.6}});
  TpRelation b = MakeRelation(ctx, "b",
                              {{"milk", "b1", 5, 9, 0.6},
                               {"chips", "b2", 3, 6, 0.9}});
  TpRelation c = MakeRelation(ctx, "c",
                              {{"milk", "c1", 1, 4, 0.6},
                               {"milk", "c2", 6, 8, 0.7},
                               {"chips", "c3", 4, 5, 0.7},
                               {"chips", "c4", 7, 9, 0.8}});
};

/// One expected output row: fact, interval, lineage (rendered with unicode
/// connectives, paper style) and probability.
struct ExpectedRow {
  std::string fact;
  TimePoint ts;
  TimePoint te;
  std::string lineage;
  double p;
};

}  // namespace tpset::testing

#endif  // TPSET_TESTS_TEST_UTIL_H_
