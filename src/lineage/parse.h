// Parser for ASCII lineage expressions, e.g. "c1 & !(a1 | b1)".
//
// Grammar (standard precedence: ! > & > |):
//   expr   := term ('|' term)*
//   term   := factor ('&' factor)*
//   factor := '!' factor | '(' expr ')' | identifier | 'true' | 'false'
//
// Identifiers resolve against a VarTable; unknown names are an error.
// "null" parses to kNullLineage only when it is the entire input.
#ifndef TPSET_LINEAGE_PARSE_H_
#define TPSET_LINEAGE_PARSE_H_

#include <string>

#include "common/status.h"
#include "common/types.h"
#include "lineage/lineage.h"

namespace tpset {

/// Parses `text` into a formula owned by `mgr`.
Result<LineageId> ParseLineage(const std::string& text, LineageManager* mgr,
                               const VarTable& vars);

}  // namespace tpset

#endif  // TPSET_LINEAGE_PARSE_H_
