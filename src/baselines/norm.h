// NORM baseline: set operations via temporal alignment / normalization
// (Dignös et al. [2],[3]; Toman [11]).
//
// The normalization N(r, s) replicates each tuple of r, splitting its
// interval at the start/end points of same-fact tuples of s that fall inside
// it. After normalizing each input against the other, the intervals of
// matching fragments are either equal or disjoint, so the set operation
// reduces to a conventional (atemporal) merge-join on (fact, interval) plus
// the Table I lineage concatenation.
//
// The split step mirrors the paper's PostgreSQL implementation: an outer
// join with equality on the fact and *inequality* conditions on the time
// points. With few distinct facts this degenerates to a quadratic
// pair-scan — exactly the behaviour Figs. 7 and 9b show for NORM.
#ifndef TPSET_BASELINES_NORM_H_
#define TPSET_BASELINES_NORM_H_

#include <vector>

#include "common/setop.h"
#include "relation/relation.h"
#include "relation/tuple.h"

namespace tpset {

/// N(r, s): replicates the tuples of `r` with intervals split at the
/// boundary points of overlapping same-fact tuples of `s`. Inputs need not
/// be sorted. The result is sorted by (fact, start).
std::vector<TpTuple> Normalize(const std::vector<TpTuple>& r,
                               const std::vector<TpTuple>& s);

/// Computes r opTp s with the normalization approach. Supports all three
/// operations (Table II row NORM).
TpRelation NormSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s);

}  // namespace tpset

#endif  // TPSET_BASELINES_NORM_H_
