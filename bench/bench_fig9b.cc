// Fig. 9b: robustness against the number of distinct facts — TP set
// intersection at fixed cardinality (paper: 60K per relation, OF ~0.6) with
// the fact count swept over {1, 5, 10, 100, 30000} (paper's 1F..30000F).
//
// Paper shape: LAWA is flat; NORM/TPDB/TI improve as facts increase (their
// pair scans gain selectivity); OIP gains at first but pays the per-fact
// partitioning overhead when the fact count approaches the cardinality.
#include <memory>

#include "baselines/algorithm.h"
#include "bench/harness.h"
#include "datagen/synthetic.h"

using namespace tpset;
using namespace tpset::bench;

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::size_t n = Scaled(60000, scale);
  std::printf("# Fig. 9b: robustness vs number of distinct facts, n=%zu "
              "(scale=%.3g)\n", n, scale);
  std::printf("experiment,facts,approach,runtime_ms\n");

  const std::size_t paper_facts[] = {1, 5, 10, 100, 30000};
  for (std::size_t paper_f : paper_facts) {
    // The 30000F point is "half the dataset size" in the paper; scale it.
    std::size_t facts = paper_f == 30000 ? std::max<std::size_t>(1, n / 2)
                                         : std::min(paper_f, n);
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(0xF1609B + paper_f);
    SyntheticPairSpec spec = TableIIIPreset(0.6);
    spec.num_tuples = n;
    spec.num_facts = facts;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);

    for (const SetOpAlgorithm* algo : AllAlgorithms()) {
      if (!algo->Supports(SetOpKind::kIntersect)) continue;
      // NORM and TPDB at 1-10 facts are quadratic in n/facts; cap their
      // per-fact group size so the default run terminates.
      if ((algo->name() == "NORM" || algo->name() == "TPDB") &&
          n / std::max<std::size_t>(1, facts) > 30000) {
        std::printf("fig9b,%zu,%s,SKIPPED(group>30000; quadratic baseline)\n",
                    facts, algo->name().c_str());
        continue;
      }
      double ms = TimeMs([&] {
        TpRelation out = algo->Compute(SetOpKind::kIntersect, r, s);
        (void)out;
      });
      std::printf("fig9b,%zu,%s,%.3f\n", facts, algo->name().c_str(), ms);
      std::fflush(stdout);
    }
  }
  return 0;
}
