// Process-wide metrics registry: named counters, gauges and log-scale
// histograms, sharded per thread so hot paths (the scheduler's steal loop,
// the advancer's sweep drivers, storage appends) record with plain relaxed
// atomics and zero cross-thread contention. Aggregation happens only at
// scrape time.
//
// Naming scheme: `tpset_<subsystem>_<name>` with the unit suffixed
// (`_total` for counters, `_usec`/`_ms` for time-valued histograms), e.g.
// tpset_sched_morsels_stolen_total, tpset_storage_append_latency_usec.
// DESIGN.md ("Observability") documents the full catalog.
//
// Hot-path cost and the kill switches:
//  * Counter::Increment is one relaxed fetch_add on a cache-line-private
//    shard cell plus one relaxed flag load — no branch misprediction in the
//    steady state, no false sharing between recording threads.
//  * Runtime: MetricsRegistry::set_enabled(false) turns every record call
//    into a flag-load-and-return (scrapes still work; values freeze).
//  * Compile time: building with -DTPSET_OBS_DISABLED (cmake
//    -DTPSET_OBS=OFF) compiles the record bodies out entirely; the registry,
//    scrape and export APIs stay link-compatible and report zeros.
//
// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
// registry's lifetime (node-based storage), so call sites look them up once
// through a static local and then record lock-free:
//
//   static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
//       "tpset_pool_tasks_total", "tasks executed by all thread pools");
//   c.Increment();
#ifndef TPSET_OBS_METRICS_H_
#define TPSET_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tpset::obs {

/// Number of per-thread shard cells per metric. A power of two; threads map
/// onto cells by a once-per-thread hash of their id. 16 covers every pool
/// size the engine runs (8 workers + caller threads) with few collisions,
/// and a collision only means two threads share one atomic — correctness is
/// unaffected.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's shard index, computed once per thread.
inline std::size_t ShardIndex() {
  static thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) &
      (kMetricShards - 1);
  return shard;
}

namespace internal {
/// Process-wide runtime kill switch (default on). Checked relaxed on every
/// record call; scrapes ignore it.
extern std::atomic<bool> g_recording_enabled;

inline bool RecordingEnabled() {
#ifdef TPSET_OBS_DISABLED
  return false;
#else
  return g_recording_enabled.load(std::memory_order_relaxed);
#endif
}

/// One cache line per shard cell so two threads bumping the same metric
/// never invalidate each other's line.
struct alignas(64) ShardCell {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace internal

/// Monotone counter. Increment is wait-free and contention-free per shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(std::uint64_t n = 1) {
#ifdef TPSET_OBS_DISABLED
    (void)n;
#else
    if (!internal::RecordingEnabled()) return;
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
#endif
  }

  /// Sum over all shards. Monotone across successive calls (shards only
  /// grow; relaxed loads may lag concurrent increments, never exceed them).
  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const internal::ShardCell& s : shards_) {
      sum += s.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  internal::ShardCell shards_[kMetricShards];
};

/// Instantaneous signed value (queue depth, resident tuples). Set/Add are
/// single-atomic — gauges are updated at coarse points (under a pool or
/// storage lock), never in the sweep loop, so sharding would buy nothing
/// and Set would be ill-defined across shards.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) {
#ifdef TPSET_OBS_DISABLED
    (void)v;
#else
    if (!internal::RecordingEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
#endif
  }
  void Add(std::int64_t delta) {
#ifdef TPSET_OBS_DISABLED
    (void)delta;
#else
    if (!internal::RecordingEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#endif
  }

  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log-scale (base-2) histogram over non-negative integer-valued samples
/// (latencies in microseconds, sizes in tuples). Bucket 0 holds samples of
/// value 0; bucket i >= 1 holds [2^(i-1), 2^i). 40 buckets cover half a
/// trillion — two weeks in microseconds.
inline constexpr std::size_t kHistogramBuckets = 40;

/// Inclusive upper bound of bucket `i` (the Prometheus `le` label value);
/// the last bucket is unbounded (+Inf) by construction of BucketIndex.
inline std::uint64_t HistogramBucketBound(std::size_t i) {
  return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(std::uint64_t value) {
#ifdef TPSET_OBS_DISABLED
    (void)value;
#else
    if (!internal::RecordingEnabled()) return;
    Shard& s = shards_[ShardIndex()];
    s.buckets[BucketIndex(value)].value.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
#endif
  }

  /// Bucket for `value`: 0 for 0, else floor(log2(value)) + 1, clamped.
  static std::size_t BucketIndex(std::uint64_t value) {
    if (value == 0) return 0;
    std::size_t idx = 64 - static_cast<std::size_t>(__builtin_clzll(value));
    return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
  }

  /// Aggregated per-bucket counts (non-cumulative), total count and sum.
  void Snapshot(std::vector<std::uint64_t>* buckets, std::uint64_t* count,
                std::uint64_t* sum) const {
    buckets->assign(kHistogramBuckets, 0);
    *count = 0;
    *sum = 0;
    for (const Shard& s : shards_) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t v = s.buckets[b].value.load(std::memory_order_relaxed);
        (*buckets)[b] += v;
        *count += v;
      }
      *sum += s.sum.load(std::memory_order_relaxed);
    }
  }

 private:
  // Per-shard bucket array: the whole shard is one thread's private region;
  // only the shard *start* needs cache-line alignment.
  struct alignas(64) Shard {
    internal::ShardCell buckets[kHistogramBuckets];
    std::atomic<std::uint64_t> sum{0};
  };
  Shard shards_[kMetricShards];
};

/// One scraped metric, aggregated across shards.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string help;
  Kind kind = Kind::kCounter;
  std::uint64_t counter = 0;                    // kCounter
  std::int64_t gauge = 0;                       // kGauge
  std::vector<std::uint64_t> buckets;           // kHistogram, non-cumulative
  std::uint64_t hist_count = 0;                 // kHistogram
  std::uint64_t hist_sum = 0;                   // kHistogram
};

/// A full scrape: every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;

  /// The snapshot of `name`, or nullptr.
  const MetricSnapshot* Find(const std::string& name) const;
};

/// Registry of named metrics. Get* registers on first use and returns a
/// stable reference; re-registration with the same name returns the same
/// metric (the help string of the first registration wins). Thread-safe;
/// the per-metric record calls are lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every engine layer records into.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help);
  Gauge& GetGauge(const std::string& name, const std::string& help);
  Histogram& GetHistogram(const std::string& name, const std::string& help);

  /// Aggregates every registered metric, sorted by name. Safe to call
  /// concurrently with record calls (relaxed reads — a scrape racing an
  /// increment may miss it; the next scrape sees it).
  MetricsSnapshot Scrape() const;

  /// Runtime kill switch, process-wide (all registries share it): false
  /// freezes every metric at its current value. Compiled builds with
  /// TPSET_OBS_DISABLED are permanently off.
  static void set_enabled(bool enabled);
  static bool enabled();

 private:
  template <typename M>
  M& GetOrCreate(std::map<std::string, std::pair<std::unique_ptr<M>, std::string>>* map,
                 const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  // Node-based maps: handles stay valid as more metrics register.
  std::map<std::string, std::pair<std::unique_ptr<Counter>, std::string>> counters_;
  std::map<std::string, std::pair<std::unique_ptr<Gauge>, std::string>> gauges_;
  std::map<std::string, std::pair<std::unique_ptr<Histogram>, std::string>> histograms_;
};

/// Microseconds between `t0` and now, for histogram observations.
std::uint64_t ElapsedUsec(std::chrono::steady_clock::time_point t0);

}  // namespace tpset::obs

#endif  // TPSET_OBS_METRICS_H_
