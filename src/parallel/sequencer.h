// Ticket sequencer: serializes the arena-mutating phases of concurrently
// evaluated query nodes into a fixed (post-order) sequence.
//
// The lineage arena is shared, append-only state; the id a formula receives
// depends on every node interned before it. Concurrent query-subtree
// evaluation therefore splits each set operation into a parallel phase
// (sort, partition, advance — reads only) and an apply phase (lineage
// concatenation — writes). Apply phases take turns in ticket order, so the
// arena sees exactly the mutation sequence of a sequential post-order
// evaluation and the whole query result is bit-identical to single-threaded
// execution, regardless of scheduling.
#ifndef TPSET_PARALLEL_SEQUENCER_H_
#define TPSET_PARALLEL_SEQUENCER_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace tpset {

/// Admits ticket holders one at a time, in increasing ticket order starting
/// at 0. Every ticket in the range must eventually be released (via Done or
/// Skip), or later holders wait forever.
class ApplySequencer {
 public:
  ApplySequencer() = default;
  ApplySequencer(const ApplySequencer&) = delete;
  ApplySequencer& operator=(const ApplySequencer&) = delete;

  /// Blocks until `ticket` is the next turn.
  void WaitTurn(std::size_t ticket) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&]() { return next_ == ticket; });
  }

  /// Ends the turn of `ticket` (which must be current) and admits the next.
  /// A stale Done (ticket already passed) is ignored rather than rewinding.
  void Done(std::size_t ticket) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_ != ticket) return;
      next_ = ticket + 1;
    }
    cv_.notify_all();
  }

  /// Waits for and immediately releases `ticket` — used by a node that has
  /// nothing to apply (e.g. its subtree failed) but must keep the sequence
  /// moving.
  void Skip(std::size_t ticket) {
    WaitTurn(ticket);
    Done(ticket);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_ = 0;
};

/// RAII holder of one turn. Guarantees the ticket is released exactly once
/// even when the guarded scope unwinds via exception — an unreleased ticket
/// would block every later turn forever. Waiting lazily (on Release) is
/// equivalent to Skip for scopes that never reached their turn.
class TurnGuard {
 public:
  /// `seq` may be null (unsequenced execution); all operations no-op then.
  TurnGuard(ApplySequencer* seq, std::size_t ticket) : seq_(seq), ticket_(ticket) {}
  TurnGuard(const TurnGuard&) = delete;
  TurnGuard& operator=(const TurnGuard&) = delete;
  ~TurnGuard() { Release(); }

  /// Blocks until the turn starts.
  void Wait() {
    if (seq_ == nullptr || waited_) return;
    seq_->WaitTurn(ticket_);
    waited_ = true;
  }

  /// Ends the turn (waiting first if it never started). Idempotent.
  void Release() {
    if (seq_ == nullptr || released_) return;
    Wait();
    seq_->Done(ticket_);
    released_ = true;
  }

  /// Hands responsibility for the ticket to someone else (e.g. a callee
  /// that sequences the same ticket internally); the guard becomes a no-op.
  void Disarm() { released_ = true; }

 private:
  ApplySequencer* seq_;
  std::size_t ticket_;
  bool waited_ = false;
  bool released_ = false;
};

}  // namespace tpset

#endif  // TPSET_PARALLEL_SEQUENCER_H_
