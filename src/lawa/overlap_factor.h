// The overlapping factor of two TP relations (paper §VII-B).
#ifndef TPSET_LAWA_OVERLAP_FACTOR_H_
#define TPSET_LAWA_OVERLAP_FACTOR_H_

#include "relation/relation.h"

namespace tpset {

/// Paper definition: "the number of maximal subintervals during which a
/// tuple from r and s overlap, divided by the total number of maximal
/// subintervals"; value in [0, 1]. The maximal subintervals are exactly the
/// lineage-aware temporal windows, so one LAWA sweep measures the factor:
/// (#windows with λr ≠ null ∧ λs ≠ null) / (#windows). Returns 0 when the
/// inputs produce no windows.
double OverlappingFactor(const TpRelation& r, const TpRelation& s);

/// Duration-weighted variant: the fraction of covered *time* (summed over
/// all windows) during which tuples of both inputs are valid. This is the
/// measure that reproduces the paper's Table III factors on span-aligned
/// synthetic pairs (see DESIGN.md / EXPERIMENTS.md).
double TimeWeightedOverlappingFactor(const TpRelation& r, const TpRelation& s);

}  // namespace tpset

#endif  // TPSET_LAWA_OVERLAP_FACTOR_H_
