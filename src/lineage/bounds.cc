#include "lineage/bounds.h"

#include <cassert>
#include <unordered_map>

namespace tpset {

namespace {

using RestrictCache = std::unordered_map<LineageId, LineageId>;

// Same restriction as in eval.cc, local to keep the two files independent.
LineageId Restrict(LineageManager& mgr, LineageId id, VarId v, bool value,
                   RestrictCache* cache) {
  const LineageNode n = mgr.node(id);  // copy: arena may grow below
  switch (n.kind) {
    case LineageKind::kFalse:
    case LineageKind::kTrue:
      return id;
    case LineageKind::kVar:
      if (n.var == v) return value ? mgr.True() : mgr.False();
      return id;
    default:
      break;
  }
  auto it = cache->find(id);
  if (it != cache->end()) return it->second;
  LineageId result = id;
  switch (n.kind) {
    case LineageKind::kNot:
      result = mgr.MakeNot(Restrict(mgr, n.left, v, value, cache));
      break;
    case LineageKind::kAnd:
      result = mgr.MakeAnd(Restrict(mgr, n.left, v, value, cache),
                           Restrict(mgr, n.right, v, value, cache));
      break;
    case LineageKind::kOr:
      result = mgr.MakeOr(Restrict(mgr, n.left, v, value, cache),
                          Restrict(mgr, n.right, v, value, cache));
      break;
    default:
      break;
  }
  cache->emplace(id, result);
  return result;
}

VarId SmallestVar(const LineageManager& mgr, LineageId id) {
  const LineageNode& n = mgr.node(id);
  switch (n.kind) {
    case LineageKind::kFalse:
    case LineageKind::kTrue:
      return kInvalidVar;
    case LineageKind::kVar:
      return n.var;
    case LineageKind::kNot:
      return SmallestVar(mgr, n.left);
    case LineageKind::kAnd:
    case LineageKind::kOr: {
      VarId a = SmallestVar(mgr, n.left);
      VarId b = SmallestVar(mgr, n.right);
      return a < b ? a : b;
    }
  }
  return kInvalidVar;
}

ProbabilityInterval Go(LineageManager& mgr, LineageId id, const VarTable& vars,
                       std::size_t* budget) {
  const LineageNode& n = mgr.node(id);
  if (n.kind == LineageKind::kFalse) return {0.0, 0.0};
  if (n.kind == LineageKind::kTrue) return {1.0, 1.0};
  if (n.kind == LineageKind::kVar) {
    double p = vars.probability(n.var);
    return {p, p};
  }
  if (*budget == 0) return {0.0, 1.0};
  --*budget;
  VarId v = SmallestVar(mgr, id);
  assert(v != kInvalidVar);
  RestrictCache hi_cache, lo_cache;
  LineageId hi = Restrict(mgr, id, v, true, &hi_cache);
  LineageId lo = Restrict(mgr, id, v, false, &lo_cache);
  double pv = vars.probability(v);
  ProbabilityInterval hi_iv = Go(mgr, hi, vars, budget);
  ProbabilityInterval lo_iv = Go(mgr, lo, vars, budget);
  return {pv * hi_iv.lower + (1.0 - pv) * lo_iv.lower,
          pv * hi_iv.upper + (1.0 - pv) * lo_iv.upper};
}

}  // namespace

ProbabilityInterval ProbabilityAnytime(LineageManager& mgr, LineageId id,
                                       const VarTable& vars,
                                       std::size_t max_expansions) {
  assert(id != kNullLineage);
  assert(mgr.hash_consing());
  std::size_t budget = max_expansions;
  return Go(mgr, id, vars, &budget);
}

}  // namespace tpset
