// Regression tests for the zero-sort fast path: TpRelation's sortedness
// witness (known_sorted) must be maintained incrementally, armed by
// Register/IsSortedFactTime/SortFactTime, cleared by mutable_tuples — and
// both the sequential and the partitioned set operations must skip the
// per-operation copy + sort exactly when the witness is present
// (LawaStats::sort_skipped), with bit-identical results either way.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>

#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

// Copy of `rel` with the sortedness witness dropped (tuples untouched).
TpRelation WithoutWitness(const TpRelation& rel) {
  TpRelation copy = rel;
  copy.mutable_tuples();  // conservatively clears the flag
  return copy;
}

void ExpectBitIdentical(const TpRelation& expected, const TpRelation& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << "tuple " << i;
  }
}

TEST(SortedWitnessTest, MaintainedIncrementallyOnAppend) {
  auto ctx = std::make_shared<TpContext>();
  // Specs already in (fact, start) order: the witness survives every append.
  TpRelation sorted = MakeRelation(ctx, "sorted",
                                   {{"chips", "c1", 1, 3, 0.5},
                                    {"chips", "c2", 5, 8, 0.5},
                                    {"milk", "m1", 0, 2, 0.5}});
  EXPECT_TRUE(sorted.known_sorted());
  EXPECT_TRUE(sorted.IsSortedFactTime());

  // Same fact out of start order: one bad append clears the witness.
  TpRelation unsorted = MakeRelation(ctx, "unsorted",
                                     {{"soap", "s1", 10, 12, 0.5},
                                      {"soap", "s2", 0, 2, 0.5}});
  EXPECT_FALSE(unsorted.known_sorted());
  EXPECT_FALSE(unsorted.IsSortedFactTime());
  unsorted.SortFactTime();
  EXPECT_TRUE(unsorted.known_sorted());
}

TEST(SortedWitnessTest, MutableTuplesClearsTheWitness) {
  SupermarketDb db;
  ASSERT_TRUE(db.a.known_sorted());
  db.a.mutable_tuples();  // caller could have reordered — witness gone
  EXPECT_FALSE(db.a.known_sorted());
  // The O(n) check still answers truthfully but does NOT re-arm the
  // witness (it is const and must stay race-free under concurrent reads);
  // owners re-arm explicitly, as Register does.
  EXPECT_TRUE(db.a.IsSortedFactTime());
  EXPECT_FALSE(db.a.known_sorted());
  db.a.MarkSortedUnchecked();
  EXPECT_TRUE(db.a.known_sorted());

  // After a real reorder the check fails and the witness stays down.
  std::vector<TpTuple>& tuples = db.c.mutable_tuples();
  std::swap(tuples.front(), tuples.back());
  EXPECT_FALSE(db.c.IsSortedFactTime());
  EXPECT_FALSE(db.c.known_sorted());
}

TEST(SortedWitnessTest, EmptyRelationIsVacuouslySorted) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation empty(ctx, Schema::SingleString("Product"), "empty");
  EXPECT_TRUE(empty.known_sorted());
}

TEST(ZeroSortFastPathTest, SequentialSkipsSortedInputsBitIdentically) {
  SupermarketDb db;
  ASSERT_TRUE(db.a.known_sorted());
  ASSERT_TRUE(db.c.known_sorted());
  for (SetOpKind op : kAllSetOps) {
    LawaStats fast_stats, slow_stats;
    TpRelation fast = LawaSetOp(op, db.a, db.c, SortMode::kComparison,
                                &fast_stats);
    TpRelation slow = LawaSetOp(op, WithoutWitness(db.a), WithoutWitness(db.c),
                                SortMode::kComparison, &slow_stats);
    EXPECT_EQ(fast_stats.sort_skipped, 2u);
    EXPECT_EQ(slow_stats.sort_skipped, 0u);
    ExpectBitIdentical(slow, fast);
    EXPECT_EQ(fast_stats.windows_produced, slow_stats.windows_produced);
  }
}

TEST(ZeroSortFastPathTest, UnsortedInputsStillSortedOnDemand) {
  // A shuffled input without the witness must be sorted by the operation and
  // produce the same result as the sorted original.
  auto ctx = std::make_shared<TpContext>();
  Rng rng(7);
  SyntheticPairSpec spec;
  spec.num_tuples = 200;
  spec.num_facts = 8;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  TpRelation shuffled = r;
  {
    std::vector<TpTuple>& tuples = shuffled.mutable_tuples();
    std::mt19937 gen(42);
    std::shuffle(tuples.begin(), tuples.end(), gen);
  }
  ASSERT_FALSE(shuffled.known_sorted());
  for (SetOpKind op : kAllSetOps) {
    LawaStats stats;
    TpRelation expected = LawaSetOp(op, r, s);
    TpRelation actual = LawaSetOp(op, shuffled, s, SortMode::kComparison,
                                  &stats);
    EXPECT_EQ(stats.sort_skipped, 1u);  // s still carries the witness
    ExpectBitIdentical(expected, actual);
  }
}

TEST(ZeroSortFastPathTest, ParallelSkipsSortedInputsBitIdentically) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(11);
  SyntheticPairSpec spec;
  spec.num_tuples = 300;
  spec.num_facts = 10;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  ASSERT_TRUE(r.known_sorted());
  ASSERT_TRUE(s.known_sorted());
  ParallelSetOpAlgorithm par(4);
  for (SetOpKind op : kAllSetOps) {
    LawaStats fast_stats, slow_stats;
    TpRelation expected = LawaSetOp(op, r, s);
    TpRelation fast = par.ComputeSequenced(op, r, s, nullptr, 0, &fast_stats);
    TpRelation slow = par.ComputeSequenced(op, WithoutWitness(r),
                                           WithoutWitness(s), nullptr, 0,
                                           &slow_stats);
    EXPECT_EQ(fast_stats.sort_skipped, 2u);
    EXPECT_EQ(slow_stats.sort_skipped, 0u);
    ExpectBitIdentical(expected, fast);
    ExpectBitIdentical(expected, slow);
  }
}

TEST(ZeroSortFastPathTest, SetOpOutputsCarryTheWitness) {
  // Outputs are emitted in (fact, start) order, so a chained operation takes
  // the zero-sort path on both inputs — the whole tree runs sort-free.
  SupermarketDb db;
  TpRelation u = LawaUnion(db.a, db.b);
  EXPECT_TRUE(u.known_sorted());
  ParallelSetOpAlgorithm par(4);
  TpRelation pu = par.Compute(SetOpKind::kUnion, db.a, db.b);
  EXPECT_TRUE(pu.known_sorted());

  LawaStats stats;
  TpRelation chained = LawaSetOp(SetOpKind::kExcept, db.c, u,
                                 SortMode::kComparison, &stats);
  EXPECT_EQ(stats.sort_skipped, 2u);

  ParallelSetOpAlgorithm staged(4, SortMode::kComparison, 4, ApplyMode::kStaged);
  TpRelation su = staged.Compute(SetOpKind::kUnion, db.a, db.b);
  EXPECT_TRUE(su.known_sorted());
}

TEST(ZeroSortFastPathTest, RegisterArmsTheWitnessForCatalogRelations) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel = MakeRelation(ctx, "r",
                                {{"milk", "m1", 0, 2, 0.5},
                                 {"milk", "m2", 4, 6, 0.5}});
  rel.mutable_tuples();  // drop the witness; tuples are still in order
  ASSERT_FALSE(rel.known_sorted());
  QueryExecutor exec(ctx);
  ASSERT_TRUE(exec.Register(rel).ok());
  // ValidateSortedFactTime ran the O(n) check and memoized it; the catalog
  // copy carries the witness, so every query leaf skips its sort.
  Result<const TpRelation*> found = exec.Find("r");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE((*found)->known_sorted());
}

}  // namespace
}  // namespace tpset
