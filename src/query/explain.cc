#include "query/explain.h"

#include <cstdio>
#include <set>
#include <sstream>

#include "lawa/set_ops.h"
#include "obs/profile.h"
#include "parallel/parallel_set_op.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace tpset {

namespace {

std::size_t DistinctFacts(const TpRelation& r, const TpRelation& s) {
  std::set<FactId> facts;
  for (const TpTuple& t : r.tuples()) facts.insert(t.fact);
  for (const TpTuple& t : s.tuples()) facts.insert(t.fact);
  return facts.size();
}

// Executes the plan bottom-up, recording one span per plan node under
// `span`. All numbers EXPLAIN later renders live on the spans: relation
// leaves carry kind/tuples attrs, operator nodes carry kind/out/bound attrs
// plus the phase children and LawaStats that ComputeSequenced attaches.
// Sequential explains run the same recorder through the degenerate
// (num_threads <= 1) partitioned algorithm, so both render identical
// sections from identical span shapes.
Result<TpRelation> ExplainNode(const QueryExecutor& exec, const QueryNode& q,
                               const ParallelSetOpAlgorithm& parallel,
                               obs::Span* span) {
  if (q.kind == QueryNode::Kind::kRelation) {
    Result<const TpRelation*> rel = exec.Find(q.relation_name);
    if (!rel.ok()) return rel.status();
    obs::Span* child = span->AddChild("relation " + q.relation_name);
    child->SetAttr("kind", "relation");
    child->SetAttr("tuples", (*rel)->size());
    return **rel;
  }
  obs::Span* child = span->AddChild(SetOpName(q.op));
  child->SetAttr("kind", "setop");
  Result<TpRelation> left = ExplainNode(exec, *q.left, parallel, child);
  if (!left.ok()) return left;
  Result<TpRelation> right = ExplainNode(exec, *q.right, parallel, child);
  if (!right.ok()) return right;
  TpRelation result = parallel.ComputeSequenced(
      q.op, *left, *right, /*seq=*/nullptr, /*ticket=*/0, /*stats=*/nullptr,
      child);
  child->SetAttr("bound", 2 * left->size() + 2 * right->size() -
                              DistinctFacts(*left, *right));
  return result;
}

// One plan node's line, rebuilt purely from its span. Children stream out
// first (depth-first), the node's own line follows with the depth marker —
// the same bottom-up-per-level layout EXPLAIN always used.
void RenderNode(const obs::Span& span, int depth, std::string* out) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (span.Attr("kind") == "relation") {
    *out += indent + span.name + "  [" + span.Attr("tuples") + " tuples]\n";
    return;
  }
  for (const auto& child : span.children) {
    if (!child->Attr("kind").empty()) RenderNode(*child, depth + 1, out);
  }
  const PhaseTimings t = PhaseTimings::FromSpan(span);
  char phases[224];
  std::snprintf(phases, sizeof(phases),
                ", sort=%.2fms split=%.2fms advance=%.2fms apply=%.2fms"
                ", morsels=%zu stolen=%zu facts_split=%zu",
                t.sort_ms, t.split_ms, t.advance_ms, t.apply_ms,
                span.stats.morsels_run, span.stats.morsels_stolen,
                span.stats.facts_split);
  // Which sweep kernel ran this node, from the attached LawaStats (a
  // parallel node sweeps one kernel across all morsels; "mixed" can only
  // appear on aggregated spans, e.g. incremental per-epoch deltas).
  const char* kernel = span.stats.sweeps_columnar > 0
                           ? (span.stats.sweeps_scalar > 0 ? "mixed"
                                                           : "columnar")
                           : "scalar";
  *out += indent + span.name + "  [out=" + span.Attr("out") +
          ", windows=" + std::to_string(span.stats.windows_produced) + "/" +
          span.Attr("bound") + "(bound)" + phases + " kernel=" + kernel +
          "]\n";
}

Result<std::string> ExplainInto(const QueryExecutor& exec,
                                const QueryNode& query,
                                const ParallelSetOpAlgorithm* parallel,
                                bool parallel_header,
                                obs::QueryProfile* profile) {
  std::ostringstream out;
  out << "query: " << QueryToString(query) << "\n";
  if (parallel_header) {
    out << "parallel: threads=" << parallel->num_threads() << " apply="
        << (parallel->apply_mode() == ApplyMode::kStaged ? "staged"
                                                         : "bit-identical");
    const MorselOptions& morsel = parallel->morsel_options();
    if (morsel.enabled) {
      out << " scheduler=morsel(size=";
      if (morsel.morsel_size == 0) {
        out << "auto";
      } else {
        out << morsel.morsel_size;
      }
      out << (morsel.steal ? ", steal" : ", no-steal") << ")";
    } else {
      out << " scheduler=static";
    }
    out << "\n";
  }
  obs::Span& root = profile->root();
  obs::SpanTimer timer(&root);
  Result<TpRelation> result = ExplainNode(exec, query, *parallel, &root);
  timer.Stop();
  if (!result.ok()) return result.status();
  root.SetAttr("out", result->size());
  out << RenderExplainPlan(root);
  bool non_repeating = IsNonRepeating(query);
  out << "non-repeating: " << (non_repeating ? "yes" : "no")
      << " -> valuation: "
      << (non_repeating ? "read-once (linear, exact by Theorem 1)"
                        : "Shannon expansion (exact; #P-hard in general)")
      << "\n";
  return out.str();
}

}  // namespace

std::string RenderExplainPlan(const obs::Span& root) {
  std::string out;
  for (const auto& child : root.children) {
    if (!child->Attr("kind").empty()) RenderNode(*child, 0, &out);
  }
  return out;
}

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const QueryNode& query) {
  obs::QueryProfile profile("explain");
  return ExplainQuery(exec, query, ExecOptions{}, &profile);
}

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const std::string& query) {
  Result<QueryPtr> parsed = ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  return ExplainQuery(exec, **parsed);
}

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const QueryNode& query,
                                 const ExecOptions& options) {
  obs::QueryProfile profile("explain");
  return ExplainQuery(exec, query, options, &profile);
}

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const QueryNode& query,
                                 const ExecOptions& options,
                                 obs::QueryProfile* profile) {
  // Explain walks the tree bottom-up on one thread (no subtree concurrency,
  // so no sequencer needed); each node runs the partitioned algorithm to
  // surface its true phase profile — degenerating to sequential LawaSetOp
  // at num_threads <= 1, so sequential and parallel explains share one
  // recorder and one renderer. The executor's cached instance keeps
  // pool-thread startup out of the first node's timings.
  return ExplainInto(exec, query, exec.ParallelAlgoFor(options),
                     /*parallel_header=*/options.num_threads > 1, profile);
}

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const std::string& query,
                                 const ExecOptions& options) {
  Result<QueryPtr> parsed = ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  return ExplainQuery(exec, **parsed, options);
}

Result<std::string> ExplainContinuous(const QueryExecutor& exec,
                                      const std::string& name) {
  Result<ContinuousQuery*> cq = exec.FindContinuous(name);
  if (!cq.ok()) return cq.status();
  std::string out = (*cq)->Describe();
  if ((*cq)->last_epoch() != 0) {
    // The last applied epoch's span tree (per-operator walls + per-epoch
    // LawaStats deltas), straight from the query's reusable profile.
    out += "last epoch:\n" + (*cq)->last_profile().Render();
  }
  return out;
}

}  // namespace tpset
