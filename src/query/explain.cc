#include "query/explain.h"

#include <set>
#include <sstream>

#include "lawa/set_ops.h"
#include "query/analyzer.h"
#include "query/parser.h"

namespace tpset {

namespace {

std::size_t DistinctFacts(const TpRelation& r, const TpRelation& s) {
  std::set<FactId> facts;
  for (const TpTuple& t : r.tuples()) facts.insert(t.fact);
  for (const TpTuple& t : s.tuples()) facts.insert(t.fact);
  return facts.size();
}

Result<TpRelation> Explain(const QueryExecutor& exec, const QueryNode& q,
                           int depth, std::ostringstream* out) {
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (q.kind == QueryNode::Kind::kRelation) {
    Result<const TpRelation*> rel = exec.Find(q.relation_name);
    if (!rel.ok()) return rel.status();
    *out << indent << "relation " << q.relation_name << "  [" << (*rel)->size()
         << " tuples]\n";
    return **rel;
  }
  // Reserve the line for this node, fill in after the children are known.
  Result<TpRelation> left = Explain(exec, *q.left, depth + 1, out);
  if (!left.ok()) return left;
  Result<TpRelation> right = Explain(exec, *q.right, depth + 1, out);
  if (!right.ok()) return right;

  LawaStats stats;
  TpRelation result = LawaSetOp(q.op, *left, *right, SortMode::kComparison, &stats);
  std::size_t bound =
      2 * left->size() + 2 * right->size() - DistinctFacts(*left, *right);
  // Children were streamed into `out` first; emit this node after them with
  // the depth marker so the tree still reads top-down per level.
  *out << indent << SetOpName(q.op) << "  [out=" << result.size()
       << ", windows=" << stats.windows_produced << "/" << bound << "(bound)]\n";
  return result;
}

}  // namespace

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const QueryNode& query) {
  std::ostringstream out;
  out << "query: " << QueryToString(query) << "\n";
  Result<TpRelation> result = Explain(exec, query, 0, &out);
  if (!result.ok()) return result.status();
  bool non_repeating = IsNonRepeating(query);
  out << "non-repeating: " << (non_repeating ? "yes" : "no")
      << " -> valuation: "
      << (non_repeating ? "read-once (linear, exact by Theorem 1)"
                        : "Shannon expansion (exact; #P-hard in general)")
      << "\n";
  return out.str();
}

Result<std::string> ExplainQuery(const QueryExecutor& exec,
                                 const std::string& query) {
  Result<QueryPtr> parsed = ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  return ExplainQuery(exec, **parsed);
}

}  // namespace tpset
