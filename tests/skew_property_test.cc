// Skew property belt for the morsel scheduler: randomized zipf, one-hot-fact
// and all-one-fact workloads, asserting that morsel-scheduled execution is
// (a) valuation-equivalent to sequential LAWA — exactly tuple-equal in
// kBitIdentical mode, probability-equal lineage in kStaged mode — and
// (b) run-to-run deterministic: the same configuration over a fresh but
// identically seeded context reproduces the output bit for bit, across
// thread counts 1/2/4/8 and morsel sizes including the pathological
// morsel_size = 1. The skew shapes are exactly the inputs the static
// partitioner cannot balance (a heavy fact is never cut at fact
// granularity), so these tests pin the correctness side of the scheduler's
// reason to exist; the performance side lives in bench_parallel.
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"
#include "relation/relation.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

// Per-fact tuple counts for a zipf(s) distribution over `facts` ranks,
// scaled to roughly `total` tuples (each fact gets at least 1).
std::vector<std::size_t> ZipfCounts(std::size_t facts, double s,
                                    std::size_t total) {
  std::vector<double> weight(facts);
  double norm = 0.0;
  for (std::size_t f = 0; f < facts; ++f) {
    weight[f] = 1.0 / std::pow(static_cast<double>(f + 1), s);
    norm += weight[f];
  }
  std::vector<std::size_t> counts(facts);
  for (std::size_t f = 0; f < facts; ++f) {
    counts[f] = std::max<std::size_t>(
        1, static_cast<std::size_t>(weight[f] / norm * static_cast<double>(total)));
  }
  return counts;
}

// Generates one relation with a prescribed tuple count per fact: per-fact
// chains of non-overlapping intervals, like GenerateSynthetic but with the
// fact weights under test control. Both relations of a pair share the
// cursor origin so their same-fact chains overlap.
TpRelation SkewedRelation(std::shared_ptr<TpContext> ctx,
                          const std::string& name,
                          const std::vector<std::size_t>& counts,
                          TimePoint max_len, TimePoint max_gap, Rng* rng) {
  TpRelation rel(ctx, Schema::SingleInt("fact"), name);
  for (std::size_t f = 0; f < counts.size(); ++f) {
    FactId fact = ctx->facts().Intern({Value(static_cast<std::int64_t>(f))});
    TimePoint cursor = 0;
    for (std::size_t i = 0; i < counts[f]; ++i) {
      TimePoint start = cursor + rng->Uniform(0, max_gap);
      TimePoint end = start + rng->Uniform(1, max_len);
      rel.AddBaseFast(fact, Interval(start, end),
                      0.1 + 0.8 * rng->NextDouble());
      cursor = end;
    }
  }
  rel.SortFactTime();
  return rel;
}

struct SkewShape {
  std::string name;
  std::vector<std::size_t> counts_r;
  std::vector<std::size_t> counts_s;
};

std::vector<SkewShape> Shapes(std::size_t scale) {
  std::vector<SkewShape> shapes;
  // zipf s=1.2 over 20 facts.
  shapes.push_back({"zipf", ZipfCounts(20, 1.2, scale),
                    ZipfCounts(20, 1.2, scale)});
  // one-hot: fact 0 carries ~90% of the weight.
  {
    std::vector<std::size_t> hot(8, std::max<std::size_t>(1, scale / 80));
    hot[0] = scale * 9 / 10;
    shapes.push_back({"one_hot", hot, hot});
  }
  // all-one-fact: the static partitioner's degenerate case.
  shapes.push_back({"all_one_fact",
                    std::vector<std::size_t>{scale},
                    std::vector<std::size_t>{scale}});
  return shapes;
}

// One workload instance: fresh context + pair, deterministic per seed.
std::pair<TpRelation, TpRelation> FreshPair(const SkewShape& shape,
                                            std::uint64_t seed,
                                            std::shared_ptr<TpContext>* ctx_out) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(seed);
  TpRelation r = SkewedRelation(ctx, "r", shape.counts_r, 6, 3, &rng);
  TpRelation s = SkewedRelation(ctx, "s", shape.counts_s, 9, 2, &rng);
  *ctx_out = ctx;
  return {std::move(r), std::move(s)};
}

// Exact bit-level equality including lineage ids.
void ExpectBitEqual(const TpRelation& a, const TpRelation& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " tuple " << i;
  }
}

// Valuation equivalence across *different* (identically seeded) contexts:
// same (fact, interval) multiset with canonically equal lineage, each
// formula rendered by its own arena. Var ids coincide because the contexts
// were built by the same deterministic generation.
void ExpectValuationEqual(const TpRelation& expected, const TpRelation& actual,
                          const std::string& what) {
  ASSERT_EQ(expected.size(), actual.size()) << what;
  using Key = std::tuple<FactId, TimePoint, TimePoint, std::string>;
  std::vector<Key> ke, ka;
  ke.reserve(expected.size());
  ka.reserve(actual.size());
  const LineageManager& me = expected.context()->lineage();
  const LineageManager& ma = actual.context()->lineage();
  for (const TpTuple& t : expected.tuples()) {
    ke.emplace_back(t.fact, t.t.start, t.t.end, me.CanonicalKey(t.lineage));
  }
  for (const TpTuple& t : actual.tuples()) {
    ka.emplace_back(t.fact, t.t.start, t.t.end, ma.CanonicalKey(t.lineage));
  }
  std::sort(ke.begin(), ke.end());
  std::sort(ka.begin(), ka.end());
  EXPECT_TRUE(ke == ka) << what;
}

void RunShape(const SkewShape& shape, std::uint64_t seed) {
  SCOPED_TRACE("shape=" + shape.name + " seed=" + std::to_string(seed));

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const std::size_t morsel_sizes[] = {1, 16, 0};  // 0 = auto

  for (SetOpKind op : kAllSetOps) {
    SCOPED_TRACE(SetOpName(op));
    // Sequential oracle on its own fresh context — every run below also
    // starts from a fresh identically seeded context, so in bit-identical
    // mode even the lineage ids must coincide.
    std::shared_ptr<TpContext> seq_ctx;
    auto [seq_r, seq_s] = FreshPair(shape, seed, &seq_ctx);
    ASSERT_TRUE(ValidateSetOpInputs(seq_r, seq_s).ok());
    TpRelation expected = LawaSetOp(op, seq_r, seq_s);
    for (std::size_t threads : thread_counts) {
      for (std::size_t morsel_size : morsel_sizes) {
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " morsel_size=" + std::to_string(morsel_size));
        MorselOptions morsel;
        morsel.morsel_size = morsel_size;
        for (ApplyMode mode : {ApplyMode::kBitIdentical, ApplyMode::kStaged}) {
          SCOPED_TRACE(mode == ApplyMode::kStaged ? "staged" : "bit-identical");
          ParallelSetOpAlgorithm algo(threads, SortMode::kComparison, 2, mode,
                                      morsel);
          // Two runs over fresh, identically seeded contexts: run-to-run
          // determinism must hold bit for bit (tuples AND lineage ids).
          std::shared_ptr<TpContext> ctx1, ctx2;
          auto [r1, s1] = FreshPair(shape, seed, &ctx1);
          auto [r2, s2] = FreshPair(shape, seed, &ctx2);
          TpRelation out1 = algo.Compute(op, r1, s1);
          TpRelation out2 = algo.Compute(op, r2, s2);
          ExpectBitEqual(out1, out2, "rerun determinism");

          // Valuation equivalence against the sequential oracle; exact
          // equality in bit-identical mode (contexts evolve identically).
          if (mode == ApplyMode::kBitIdentical) {
            ExpectBitEqual(out1, expected, "bit-identity vs sequential");
          } else {
            ExpectValuationEqual(expected, out1, "staged vs sequential");
          }
        }
      }
    }
  }
}

TEST(SkewPropertyTest, Zipf) {
  for (std::uint64_t seed : testing::PropertySeeds({61, 62})) {
    RunShape(Shapes(600)[0], seed);
  }
}

TEST(SkewPropertyTest, OneHotFact) {
  for (std::uint64_t seed : testing::PropertySeeds({71, 72})) {
    RunShape(Shapes(600)[1], seed);
  }
}

TEST(SkewPropertyTest, AllOneFact) {
  for (std::uint64_t seed : testing::PropertySeeds({81, 82})) {
    RunShape(Shapes(600)[2], seed);
  }
}

// The heavy-fact splitter must engage on these shapes at small budgets:
// otherwise the belt is testing the old one-partition-per-fact path.
TEST(SkewPropertyTest, SplitterEngagesOnHotFact) {
  std::shared_ptr<TpContext> ctx;
  auto [r, s] = FreshPair(Shapes(800)[1], 7, &ctx);
  MorselOptions morsel;
  morsel.morsel_size = 32;
  ParallelSetOpAlgorithm algo(4, SortMode::kComparison, 2, ApplyMode::kStaged,
                              morsel);
  LawaStats stats;
  TpRelation out = algo.ComputeTimed(SetOpKind::kIntersect, r, s, nullptr,
                                     &stats);
  (void)out;
  EXPECT_GE(stats.facts_split, 1u);
  EXPECT_GT(stats.morsels_run, 4u);
}

}  // namespace
}  // namespace tpset
