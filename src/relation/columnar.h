// Struct-of-arrays (SoA) projection of a sorted tuple array, for the
// columnar sweep kernel (lawa/columnar_advancer.h).
//
// TpTuple is a 24-byte AoS record; the advancer's compare-advance loop reads
// only the two 8-byte endpoints of each tuple, so sweeping the AoS layout
// strides over lineage ids it never touches and defeats vectorization. A
// ColumnarView splits one sorted tuple span into four contiguous columns
// (start / end / fact / lineage); the columnar kernel then runs its endpoint
// math over dense 8-byte lanes, and a fact-range morsel is simply a sub-span
// of the columns — no per-morsel rebuild (parallel morsel bounds are tuple
// indices, which slice all four columns at once).
//
// Relations cache their view next to the `known_sorted` witness
// (TpRelation::columnar): built lazily on first use, shared by every sweep
// until the next mutation invalidates it together with the tuple content it
// snapshots. See DESIGN.md, "Columnar sweep kernel".
#ifndef TPSET_RELATION_COLUMNAR_H_
#define TPSET_RELATION_COLUMNAR_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "relation/tuple.h"

namespace tpset {

/// A borrowed, contiguous slice of SoA columns: tuple i of the slice is
/// {fact[i], [start[i], end[i]), lineage[i]}. Plain pointers — the backing
/// ColumnarView (or the columns' owner) must outlive every slice.
struct ColumnSpan {
  const TimePoint* start = nullptr;
  const TimePoint* end = nullptr;
  const FactId* fact = nullptr;
  const LineageId* lineage = nullptr;
  std::size_t n = 0;

  /// The sub-span [begin, end_index) — a fact-range morsel's share.
  ColumnSpan Slice(std::size_t begin, std::size_t end_index) const {
    return {start + begin, end + begin, fact + begin, lineage + begin,
            end_index - begin};
  }
};

/// Owning SoA projection of a (fact, start, end)-sorted tuple array.
struct ColumnarView {
  std::vector<TimePoint> start;
  std::vector<TimePoint> end;
  std::vector<FactId> fact;
  std::vector<LineageId> lineage;

  std::size_t size() const { return fact.size(); }

  /// (Re)builds the columns from `tuples[0..n)`. Records the build latency
  /// into the tpset_lawa_columnar_build_usec histogram.
  void Build(const TpTuple* tuples, std::size_t n);

  ColumnSpan Columns() const {
    return {start.data(), end.data(), fact.data(), lineage.data(), size()};
  }
};

/// Lazily-built, copyable cache cell for a relation's ColumnarView.
///
/// Concurrency contract (the same one TpRelation already lives by): readers
/// of a non-mutated relation may race freely — the mutex below serializes
/// only the one first-use build among concurrent GetOrBuild callers (e.g.
/// two query leaves naming the same catalog relation); mutation must not
/// race with reads, so Invalidate never contends with a build. Invalidate
/// is called from every tuple-mutating TpRelation method, including the
/// per-tuple Add* hot path — the relaxed `has_` pre-check keeps it at one
/// relaxed load (no lock) for relations that never built a view, which is
/// every output relation under construction.
///
/// Copies share the (immutable once built) view; moves behave like copies —
/// both exist so TpRelation keeps its implicitly-defined copy/move members
/// despite the mutex.
class ColumnarCache {
 public:
  ColumnarCache() = default;
  ColumnarCache(const ColumnarCache& other) { StoreUnlocked(other.Snapshot()); }
  ColumnarCache(ColumnarCache&& other) noexcept {
    StoreUnlocked(other.Snapshot());
  }
  ColumnarCache& operator=(const ColumnarCache& other) {
    if (this != &other) Store(other.Snapshot());
    return *this;
  }
  ColumnarCache& operator=(ColumnarCache&& other) noexcept {
    if (this != &other) Store(other.Snapshot());
    return *this;
  }

  /// The cached columns, building them from `tuples[0..n)` on first use.
  /// The returned span is valid until the next Invalidate (i.e. the next
  /// mutation of the owning relation).
  ColumnSpan GetOrBuild(const TpTuple* tuples, std::size_t n) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (view_ == nullptr) {
      auto v = std::make_shared<ColumnarView>();
      v->Build(tuples, n);
      view_ = std::move(v);
      has_.store(true, std::memory_order_relaxed);
    }
    return view_->Columns();
  }

  /// Drops the cached view (the owning relation mutated).
  void Invalidate() {
    if (!has_.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    view_.reset();
    has_.store(false, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const ColumnarView> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return view_;
  }
  void Store(std::shared_ptr<const ColumnarView> v) {
    std::lock_guard<std::mutex> lock(mu_);
    StoreHeld(std::move(v));
  }
  // For constructors: members are freshly built, no lock needed yet.
  void StoreUnlocked(std::shared_ptr<const ColumnarView> v) {
    StoreHeld(std::move(v));
  }
  void StoreHeld(std::shared_ptr<const ColumnarView> v) {
    has_.store(v != nullptr, std::memory_order_relaxed);
    view_ = std::move(v);
  }

  mutable std::mutex mu_;
  mutable std::shared_ptr<const ColumnarView> view_;
  mutable std::atomic<bool> has_{false};
};

}  // namespace tpset

#endif  // TPSET_RELATION_COLUMNAR_H_
