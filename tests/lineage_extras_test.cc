// Anytime probability bounds and lineage simplification.
#include <gtest/gtest.h>

#include "lineage/bounds.h"
#include "lineage/eval.h"
#include "lineage/parse.h"
#include "lineage/simplify.h"

namespace tpset {
namespace {

class LineageExtrasTest : public ::testing::Test {
 protected:
  LineageId Parse(const std::string& text) {
    Result<LineageId> r = ParseLineage(text, &mgr_, vars_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  }

  // Gold-standard probability by exhaustive enumeration (<= 4 vars).
  double BruteForce(LineageId f) {
    const double probs[] = {0.3, 0.6, 0.7, 0.5};
    double total = 0.0;
    for (unsigned m = 0; m < 16; ++m) {
      std::vector<bool> assign = {(m & 1) != 0, (m & 2) != 0, (m & 4) != 0,
                                  (m & 8) != 0};
      if (!EvaluateAssignment(mgr_, f, assign)) continue;
      double p = 1.0;
      for (int v = 0; v < 4; ++v) p *= assign[v] ? probs[v] : 1.0 - probs[v];
      total += p;
    }
    return total;
  }

  LineageManager mgr_;
  VarTable vars_;
  VarId a_ = *vars_.AddNamed("a", 0.3);
  VarId b_ = *vars_.AddNamed("b", 0.6);
  VarId c_ = *vars_.AddNamed("c", 0.7);
  VarId d_ = *vars_.AddNamed("d", 0.5);
};

// ---- anytime bounds ----

TEST_F(LineageExtrasTest, ZeroBudgetGivesTrivialBoundsOnCompound) {
  LineageId f = Parse("a & b");
  ProbabilityInterval iv = ProbabilityAnytime(mgr_, f, vars_, 0);
  EXPECT_DOUBLE_EQ(iv.lower, 0.0);
  EXPECT_DOUBLE_EQ(iv.upper, 1.0);
}

TEST_F(LineageExtrasTest, AtomsAreExactEvenWithZeroBudget) {
  ProbabilityInterval iv = ProbabilityAnytime(mgr_, Parse("a"), vars_, 0);
  EXPECT_DOUBLE_EQ(iv.lower, 0.3);
  EXPECT_DOUBLE_EQ(iv.upper, 0.3);
  EXPECT_DOUBLE_EQ(ProbabilityAnytime(mgr_, mgr_.True(), vars_, 0).lower, 1.0);
  EXPECT_DOUBLE_EQ(ProbabilityAnytime(mgr_, mgr_.False(), vars_, 0).upper, 0.0);
}

TEST_F(LineageExtrasTest, BoundsEncloseExactAndShrinkMonotonically) {
  const char* formulas[] = {"a & !(b | c)", "(a | b) & (!a | c)",
                            "(a & b) | (b & c) | (c & d)", "a | (b & !a)"};
  for (const char* text : formulas) {
    LineageId f = Parse(text);
    double exact = BruteForce(f);
    double prev_width = 2.0;
    for (std::size_t budget : {0u, 1u, 2u, 4u, 8u, 32u, 1024u}) {
      ProbabilityInterval iv = ProbabilityAnytime(mgr_, f, vars_, budget);
      EXPECT_LE(iv.lower, exact + 1e-12) << text << " budget " << budget;
      EXPECT_GE(iv.upper, exact - 1e-12) << text << " budget " << budget;
      EXPECT_LE(iv.width(), prev_width + 1e-12) << text << " budget " << budget;
      prev_width = iv.width();
    }
    // A generous budget collapses the interval to the exact value.
    ProbabilityInterval final_iv = ProbabilityAnytime(mgr_, f, vars_, 100000);
    EXPECT_NEAR(final_iv.lower, exact, 1e-12) << text;
    EXPECT_NEAR(final_iv.upper, exact, 1e-12) << text;
  }
}

TEST_F(LineageExtrasTest, BoundsAgreeWithShannonOnConvergence) {
  LineageId g = Parse("(a | b) & (a | c)");
  ProbabilityInterval iv = ProbabilityAnytime(mgr_, g, vars_, 100000);
  EXPECT_NEAR(iv.lower, ProbabilityExact(mgr_, g, vars_), 1e-12);
}

// ---- simplification ----

TEST_F(LineageExtrasTest, SimplifyComplementRules) {
  EXPECT_EQ(Simplify(mgr_, Parse("a & !a")), mgr_.False());
  EXPECT_EQ(Simplify(mgr_, Parse("!a & a")), mgr_.False());
  EXPECT_EQ(Simplify(mgr_, Parse("a | !a")), mgr_.True());
  EXPECT_EQ(Simplify(mgr_, Parse("b & (a & !a)")), mgr_.False())
      << "inner contradiction propagates through constant folding";
}

TEST_F(LineageExtrasTest, SimplifyAbsorption) {
  LineageId va = mgr_.MakeVar(a_);
  EXPECT_EQ(Simplify(mgr_, Parse("a & (a | b)")), va);
  EXPECT_EQ(Simplify(mgr_, Parse("(a | b) & a")), va);
  EXPECT_EQ(Simplify(mgr_, Parse("a | (a & b)")), va);
  EXPECT_EQ(Simplify(mgr_, Parse("(a & b) | a")), va);
  // Deeper chain: a ∨ (b ∧ (a ∨ c)) is NOT absorbable by these local rules;
  // it must survive unchanged but equivalent.
  LineageId f = Parse("a | (b & (a | c))");
  LineageId simplified = Simplify(mgr_, f);
  EXPECT_NEAR(BruteForce(simplified), BruteForce(f), 1e-12);
}

TEST_F(LineageExtrasTest, SimplifyChainDedup) {
  LineageId va = mgr_.MakeVar(a_);
  LineageId vb = mgr_.MakeVar(b_);
  EXPECT_EQ(Simplify(mgr_, Parse("a & (a & b)")), mgr_.MakeAnd(va, vb));
  EXPECT_EQ(Simplify(mgr_, Parse("a | (a | b)")), mgr_.MakeOr(va, vb));
}

TEST_F(LineageExtrasTest, SimplifyPreservesSemantics) {
  const char* formulas[] = {
      "a",
      "!a",
      "a & b",
      "a | (a & b)",
      "(a | b) & (!a | c)",
      "((a & b) | (a & !b)) | (c & d)",
      "!(a & (a | b))",
      "(a | !a) & (b | c)",
      "a & !(a | b)",
  };
  for (const char* text : formulas) {
    LineageId f = Parse(text);
    LineageId simplified = Simplify(mgr_, f);
    EXPECT_NEAR(BruteForce(simplified), BruteForce(f), 1e-12) << text;
    EXPECT_LE(mgr_.CountVarOccurrences(simplified), mgr_.CountVarOccurrences(f))
        << text << ": simplification must never grow the formula";
  }
}

TEST_F(LineageExtrasTest, SimplifyHandlesNull) {
  EXPECT_EQ(Simplify(mgr_, kNullLineage), kNullLineage);
}

TEST_F(LineageExtrasTest, SimplifySpeedsUpRepeatingQueryLineage) {
  // (a∨b) ∧ ¬(a∧b) stays; but (a∨b) ∧ (a∨b) collapses via idempotence at
  // construction, and a∧(a∨b) absorbs — the pattern produced by repeating
  // set queries over the same relation.
  LineageId f = Parse("(a | b) & (a | b)");
  EXPECT_EQ(mgr_.CountVarOccurrences(f), 2u) << "consing already deduplicates";
  LineageId g = Parse("a & (a | b)");
  EXPECT_EQ(mgr_.CountVarOccurrences(Simplify(mgr_, g)), 1u);
}

}  // namespace
}  // namespace tpset
