// TP set queries: parser, analyzer (Theorem 1 / Corollary 1), executor.
#include <gtest/gtest.h>

#include "lawa/set_ops.h"
#include "lineage/eval.h"
#include "query/analyzer.h"
#include "query/executor.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::SupermarketDb;

// ---- parser ----

TEST(QueryParserTest, SingleRelation) {
  Result<QueryPtr> q = ParseQuery("a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->kind, QueryNode::Kind::kRelation);
  EXPECT_EQ((*q)->relation_name, "a");
}

TEST(QueryParserTest, PrecedenceIntersectOverUnion) {
  Result<QueryPtr> q = ParseQuery("a | b & c");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->op, SetOpKind::kUnion);
  EXPECT_EQ((*q)->right->op, SetOpKind::kIntersect);
  EXPECT_EQ(QueryToString(**q), "a | b & c");
}

TEST(QueryParserTest, LeftAssociativityOfUnionExcept) {
  Result<QueryPtr> q = ParseQuery("a - b | c");
  ASSERT_TRUE(q.ok());
  // ((a - b) | c)
  EXPECT_EQ((*q)->op, SetOpKind::kUnion);
  EXPECT_EQ((*q)->left->op, SetOpKind::kExcept);
}

TEST(QueryParserTest, Parentheses) {
  Result<QueryPtr> q = ParseQuery("c - (a | b)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->op, SetOpKind::kExcept);
  EXPECT_EQ((*q)->right->op, SetOpKind::kUnion);
  EXPECT_EQ(QueryToString(**q), "c - (a | b)");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("a |").ok());
  EXPECT_FALSE(ParseQuery("(a | b").ok());
  EXPECT_FALSE(ParseQuery("a b").ok());
  EXPECT_FALSE(ParseQuery("| a").ok());
}

// ---- analyzer ----

TEST(QueryAnalyzerTest, NonRepeatingDetection) {
  EXPECT_TRUE(IsNonRepeating(**ParseQuery("c - (a | b)")));
  EXPECT_TRUE(IsNonRepeating(**ParseQuery("a")));
  // The paper's #P-hard example: (r1 ∪ r2) − (r1 ∩ r3).
  EXPECT_FALSE(IsNonRepeating(**ParseQuery("(r1 | r2) - (r1 & r3)")));
}

TEST(QueryAnalyzerTest, RecommendedMethod) {
  EXPECT_EQ(RecommendedMethod(**ParseQuery("c - (a | b)")),
            ProbabilityMethod::kReadOnce);
  EXPECT_EQ(RecommendedMethod(**ParseQuery("(r1 | r2) - (r1 & r3)")),
            ProbabilityMethod::kExact);
}

TEST(QueryAnalyzerTest, ReferencedRelationsAndOperatorCount) {
  QueryPtr q = std::move(ParseQuery("(a | b) & (c - d)")).value();
  EXPECT_EQ(ReferencedRelations(*q),
            (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(OperatorCount(*q), 3u);
  EXPECT_EQ(OperatorCount(**ParseQuery("a")), 0u);
}

// ---- executor ----

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : exec_(db_.ctx) {
    EXPECT_TRUE(exec_.Register(db_.a).ok());
    EXPECT_TRUE(exec_.Register(db_.b).ok());
    EXPECT_TRUE(exec_.Register(db_.c).ok());
  }
  SupermarketDb db_;
  QueryExecutor exec_;
};

TEST_F(ExecutorTest, ExecutesPaperQuery) {
  Result<TpRelation> q = exec_.Execute("c - (a | b)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  TpRelation expected = LawaExcept(db_.c, LawaUnion(db_.a, db_.b));
  EXPECT_TRUE(RelationsEquivalent(expected, *q));
  EXPECT_EQ(q->size(), 5u);  // Fig. 1c
}

TEST_F(ExecutorTest, SingleRelationQueryReturnsCopy) {
  Result<TpRelation> q = exec_.Execute("a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), db_.a.size());
}

TEST_F(ExecutorTest, UnknownRelation) {
  Result<TpRelation> q = exec_.Execute("a | nope");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, AlgorithmCapabilityIsEnforced) {
  // TPDB cannot run set difference.
  Result<TpRelation> q = exec_.Execute("c - a", FindAlgorithm("TPDB"));
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotSupported);
  // But it can run the union/intersection parts.
  Result<TpRelation> u = exec_.Execute("a | c", FindAlgorithm("TPDB"));
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(RelationsEquivalent(LawaUnion(db_.a, db_.c), *u));
}

TEST_F(ExecutorTest, AllBackendsAgreeOnIntersection) {
  TpRelation expected = LawaIntersect(db_.a, db_.c);
  for (const char* name : {"NORM", "TPDB", "OIP", "TI"}) {
    Result<TpRelation> q = exec_.Execute("a & c", FindAlgorithm(name));
    ASSERT_TRUE(q.ok()) << name;
    EXPECT_TRUE(RelationsEquivalent(expected, *q)) << name;
  }
}

TEST_F(ExecutorTest, RegistrationValidation) {
  // Unnamed relations are rejected.
  TpRelation unnamed(db_.ctx, Schema::SingleString("Product"), "");
  EXPECT_FALSE(exec_.Register(unnamed).ok());
  // Duplicate names are rejected.
  EXPECT_FALSE(exec_.Register(db_.a).ok());
  // Foreign context rejected.
  auto other = std::make_shared<TpContext>();
  TpRelation foreign(other, Schema::SingleString("Product"), "foreign");
  EXPECT_FALSE(exec_.Register(foreign).ok());
  // Non-duplicate-free relations are rejected.
  TpRelation dup(db_.ctx, Schema::SingleString("Product"), "dup");
  ASSERT_TRUE(dup.AddBase({Value(std::string("x"))}, Interval(0, 5), 0.5).ok());
  ASSERT_TRUE(dup.AddBase({Value(std::string("x"))}, Interval(3, 8), 0.5).ok());
  EXPECT_FALSE(exec_.Register(dup).ok());
}

// ---- Theorem 1 / Corollary 1 over nested queries ----

TEST_F(ExecutorTest, Theorem1NonRepeatingYields1OF) {
  const char* queries[] = {"c - (a | b)", "(a & c) | b", "a - b", "(a | b) | c",
                           "a & b & c"};
  LineageManager& mgr = db_.ctx->lineage();
  for (const char* text : queries) {
    QueryPtr q = std::move(ParseQuery(text)).value();
    ASSERT_TRUE(IsNonRepeating(*q)) << text;
    Result<TpRelation> out = exec_.Execute(*q);
    ASSERT_TRUE(out.ok()) << text;
    for (std::size_t i = 0; i < out->size(); ++i) {
      EXPECT_TRUE(mgr.IsReadOnce((*out)[i].lineage))
          << text << " tuple " << i << ": " << out->LineageString(i);
      // Corollary 1: the linear-time valuation is exact.
      EXPECT_NEAR(out->TupleProbability(i, ProbabilityMethod::kReadOnce),
                  out->TupleProbability(i, ProbabilityMethod::kExact), 1e-9);
    }
  }
}

TEST_F(ExecutorTest, RepeatingQueryMayViolate1OF) {
  // (a | b) - (a & c): 'a' repeats; some lineage mentions a tuple of a twice.
  QueryPtr q = std::move(ParseQuery("(a | b) - (a & c)")).value();
  ASSERT_FALSE(IsNonRepeating(*q));
  Result<TpRelation> out = exec_.Execute(*q);
  ASSERT_TRUE(out.ok());
  LineageManager& mgr = db_.ctx->lineage();
  bool some_not_read_once = false;
  for (std::size_t i = 0; i < out->size(); ++i) {
    if (!mgr.IsReadOnce((*out)[i].lineage)) some_not_read_once = true;
  }
  EXPECT_TRUE(some_not_read_once);
  // The Shannon valuation still works and stays within [0,1].
  for (std::size_t i = 0; i < out->size(); ++i) {
    double p = out->TupleProbability(i, ProbabilityMethod::kExact);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(ExecutorTest, RepeatingQueryExactMatchesMonteCarlo) {
  Result<TpRelation> out = exec_.Execute("(a | c) - (a & c)");
  ASSERT_TRUE(out.ok());
  Rng rng(99);
  for (std::size_t i = 0; i < out->size(); ++i) {
    double exact = out->TupleProbability(i, ProbabilityMethod::kExact);
    double mc =
        out->TupleProbability(i, ProbabilityMethod::kMonteCarlo, 100000, &rng);
    EXPECT_NEAR(exact, mc, 0.015) << out->LineageString(i);
  }
}

}  // namespace
}  // namespace tpset
