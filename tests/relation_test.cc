// TpRelation construction, validation and equivalence.
#include <gtest/gtest.h>

#include "relation/relation.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;

TEST(RelationTest, AddBaseRegistersVariableAndFact) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel(ctx, Schema::SingleString("Product"), "r");
  Result<VarId> v = rel.AddBase({Value(std::string("milk"))}, Interval(2, 10),
                                0.3, "a1");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(ctx->vars().probability(*v), 0.3);
  EXPECT_EQ(ctx->vars().name(*v), "a1");
  EXPECT_EQ(rel.LineageString(0), "a1");
  EXPECT_EQ(ToString(rel.FactOf(0)), "'milk'");
  EXPECT_NEAR(rel.TupleProbability(0), 0.3, 1e-12);
}

TEST(RelationTest, AddBaseRejectsBadInput) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel(ctx, Schema::SingleString("Product"), "r");
  EXPECT_FALSE(rel.AddBase({Value(std::string("x"))}, Interval(5, 5), 0.5).ok())
      << "empty interval";
  EXPECT_FALSE(rel.AddBase({Value(std::string("x"))}, Interval(5, 4), 0.5).ok())
      << "inverted interval";
  EXPECT_FALSE(rel.AddBase({Value(std::string("x"))}, Interval(0, 1), 0.0).ok())
      << "probability 0 excluded by Ωp = (0,1]";
  EXPECT_FALSE(rel.AddBase({Value(std::string("x"))}, Interval(0, 1), 1.1).ok());
  EXPECT_FALSE(rel.AddBase({Value(std::int64_t{1})}, Interval(0, 1), 0.5).ok())
      << "schema mismatch";
  EXPECT_TRUE(rel.AddBase({Value(std::string("x"))}, Interval(0, 1), 1.0).ok())
      << "probability 1 is allowed";
  EXPECT_EQ(rel.size(), 1u);
}

TEST(RelationTest, DuplicateVarNameRejected) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel(ctx, Schema::SingleString("Product"), "r");
  ASSERT_TRUE(rel.AddBase({Value(std::string("x"))}, Interval(0, 1), 0.5, "v").ok());
  EXPECT_FALSE(rel.AddBase({Value(std::string("y"))}, Interval(0, 1), 0.5, "v").ok());
}

TEST(RelationTest, SortFactTime) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel = MakeRelation(ctx, "r",
                                {{"b", "v1", 5, 6, 0.5},
                                 {"a", "v2", 7, 9, 0.5},
                                 {"a", "v3", 1, 3, 0.5}});
  EXPECT_FALSE(rel.IsSortedFactTime());
  rel.SortFactTime();
  EXPECT_TRUE(rel.IsSortedFactTime());
  // Facts sort by FactId (interning order: b first, then a).
  EXPECT_EQ(rel[0].fact, rel[1].fact == rel[2].fact ? rel[0].fact : rel[0].fact);
  EXPECT_LE(rel[1].t.start, rel[2].t.start);
}

TEST(RelationTest, EquivalenceIgnoresOrderAndLineageCommutativity) {
  auto ctx = std::make_shared<TpContext>();
  LineageManager& mgr = ctx->lineage();
  VarTable& vars = ctx->vars();
  VarId x = vars.Add(0.5);
  VarId y = vars.Add(0.5);
  FactId f = ctx->facts().Intern({Value(std::string("f"))});

  TpRelation r1(ctx, Schema::SingleString("Product"), "r1");
  r1.AddDerived(f, Interval(0, 5), mgr.MakeAnd(mgr.MakeVar(x), mgr.MakeVar(y)));
  r1.AddDerived(f, Interval(5, 9), mgr.MakeVar(x));

  TpRelation r2(ctx, Schema::SingleString("Product"), "r2");
  r2.AddDerived(f, Interval(5, 9), mgr.MakeVar(x));
  r2.AddDerived(f, Interval(0, 5), mgr.MakeAnd(mgr.MakeVar(y), mgr.MakeVar(x)));

  EXPECT_TRUE(RelationsEquivalent(r1, r2));

  TpRelation r3(ctx, Schema::SingleString("Product"), "r3");
  r3.AddDerived(f, Interval(0, 5), mgr.MakeOr(mgr.MakeVar(x), mgr.MakeVar(y)));
  r3.AddDerived(f, Interval(5, 9), mgr.MakeVar(x));
  EXPECT_FALSE(RelationsEquivalent(r1, r3)) << "∧ vs ∨ differ";

  TpRelation r4(ctx, Schema::SingleString("Product"), "r4");
  r4.AddDerived(f, Interval(0, 5), mgr.MakeAnd(mgr.MakeVar(x), mgr.MakeVar(y)));
  EXPECT_FALSE(RelationsEquivalent(r1, r4)) << "different sizes";
}

TEST(RelationTest, EquivalenceRequiresSharedContext) {
  auto ctx1 = std::make_shared<TpContext>();
  auto ctx2 = std::make_shared<TpContext>();
  TpRelation r1 = MakeRelation(ctx1, "r1", {{"f", "v1", 0, 5, 0.5}});
  TpRelation r2 = MakeRelation(ctx2, "r2", {{"f", "v2", 0, 5, 0.5}});
  EXPECT_FALSE(RelationsEquivalent(r1, r2));
}

TEST(ValidateTest, WellFormedAcceptsBaseRelations) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel = MakeRelation(ctx, "r", {{"f", "v1", 0, 5, 0.5}});
  EXPECT_TRUE(ValidateWellFormed(rel).ok());
}

TEST(ValidateTest, WellFormedRejectsCorruptTuples) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel = MakeRelation(ctx, "r", {{"f", "v1", 0, 5, 0.5}});
  // Inject corruption through the mutable accessor (failure injection).
  rel.mutable_tuples()[0].t = Interval(5, 5);
  EXPECT_EQ(ValidateWellFormed(rel).code(), StatusCode::kCorruption);

  TpRelation rel2 = MakeRelation(ctx, "r2", {{"f", "v2", 0, 5, 0.5}});
  rel2.mutable_tuples()[0].lineage = kNullLineage;
  EXPECT_EQ(ValidateWellFormed(rel2).code(), StatusCode::kCorruption);

  TpRelation rel3 = MakeRelation(ctx, "r3", {{"f", "v3", 0, 5, 0.5}});
  rel3.mutable_tuples()[0].fact = 999999;
  EXPECT_EQ(ValidateWellFormed(rel3).code(), StatusCode::kCorruption);

  TpRelation no_ctx;
  EXPECT_EQ(ValidateWellFormed(no_ctx).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateTest, DuplicateFree) {
  auto ctx = std::make_shared<TpContext>();
  // Same fact, non-overlapping: fine (even adjacent).
  TpRelation ok = MakeRelation(ctx, "ok",
                               {{"f", "v1", 0, 5, 0.5}, {"f", "v2", 5, 9, 0.5}});
  EXPECT_TRUE(ValidateDuplicateFree(ok).ok());
  // Same fact, overlapping: rejected.
  TpRelation bad = MakeRelation(ctx, "bad",
                                {{"f", "v3", 0, 5, 0.5}, {"f", "v4", 4, 9, 0.5}});
  EXPECT_EQ(ValidateDuplicateFree(bad).code(), StatusCode::kInvalidArgument);
  // Different facts may overlap freely.
  TpRelation mixed = MakeRelation(ctx, "mixed",
                                  {{"f", "v5", 0, 5, 0.5}, {"g", "v6", 0, 5, 0.5}});
  EXPECT_TRUE(ValidateDuplicateFree(mixed).ok());
}

TEST(ValidateTest, SetOpInputsSchemaCompatibility) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "v1", 0, 5, 0.5}});
  TpRelation s(ctx, Schema::SingleInt("fact"), "s");
  ASSERT_TRUE(s.AddBase({Value(std::int64_t{1})}, Interval(0, 5), 0.5).ok());
  EXPECT_EQ(ValidateSetOpInputs(r, s).code(), StatusCode::kInvalidArgument);
}

TEST(RelationTest, ProbabilityMethodsAgreeOnBaseTuples) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel = MakeRelation(ctx, "r", {{"f", "v1", 0, 5, 0.37}});
  EXPECT_NEAR(rel.TupleProbability(0, ProbabilityMethod::kReadOnce), 0.37, 1e-12);
  EXPECT_NEAR(rel.TupleProbability(0, ProbabilityMethod::kExact), 0.37, 1e-12);
  Rng rng(3);
  EXPECT_NEAR(rel.TupleProbability(0, ProbabilityMethod::kMonteCarlo, 100000, &rng),
              0.37, 0.01);
}

}  // namespace
}  // namespace tpset
