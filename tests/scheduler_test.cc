// Unit tests of the morsel scheduler (parallel/scheduler.h): deque/steal
// mechanics, heavy-fact time-boundary splitting (cuts never bisect a
// window-open; stitched sub-sweeps reproduce the full sweep), and
// overlapped-splice ordering (a slow later morsel does not delay waiting on
// an earlier one; splices happen strictly in morsel order).
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"
#include "parallel/partition.h"
#include "parallel/scheduler.h"
#include "parallel/thread_pool.h"
#include "relation/relation.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

// ---- MorselBatch: deque and steal behavior --------------------------------

TEST(MorselBatchTest, RunsEveryMorselExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 100;
  std::vector<std::atomic<int>> runs(kCount);
  MorselBatch batch(&pool, kCount,
                    [&](std::size_t i) { runs[i].fetch_add(1); });
  batch.WaitAll();
  EXPECT_EQ(batch.morsels_run(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
}

TEST(MorselBatchTest, ZeroMorselsCompletesImmediately) {
  ThreadPool pool(2);
  MorselBatch batch(&pool, 0, [](std::size_t) { FAIL(); });
  batch.WaitAll();
  EXPECT_EQ(batch.morsels_run(), 0u);
  EXPECT_EQ(batch.morsels_stolen(), 0u);
}

TEST(MorselBatchTest, NullPoolRunsInline) {
  std::vector<std::size_t> order;
  MorselBatch batch(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  batch.WaitAll();
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(batch.morsels_stolen(), 0u);
}

TEST(MorselBatchTest, NoStealRunsOnlyOwnDeque) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> runs(kCount);
  MorselBatch batch(&pool, kCount, [&](std::size_t i) { runs[i].fetch_add(1); },
                    /*steal=*/false);
  batch.WaitAll();
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  EXPECT_EQ(batch.morsels_stolen(), 0u);
}

// A morsel pinned behind a dependency that only a *steal* can satisfy: with
// 2 workers and round-robin assignment, worker 0 owns {0, 2} and worker 1
// owns {1, 3}. Morsel 0 blocks until morsel 2 ran — worker 0 is pinned, so
// morsel 2 can only run if worker 1 steals it after draining its own deque.
// Completion of the batch therefore *proves* the steal path works (without
// it this test would hang, which the harness turns into a failure).
TEST(MorselBatchTest, StealRescuesPinnedWorker) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool morsel2_done = false;
  MorselBatch batch(&pool, 4, [&](std::size_t i) {
    if (i == 2) {
      std::lock_guard<std::mutex> lock(mu);
      morsel2_done = true;
      cv.notify_all();
    } else if (i == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&]() { return morsel2_done; });
    }
  });
  batch.WaitAll();
  EXPECT_EQ(batch.morsels_run(), 4u);
  EXPECT_GE(batch.morsels_stolen(), 1u);
}

TEST(MorselBatchTest, ExceptionPropagatesWithoutHanging) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  MorselBatch batch(&pool, 20, [&](std::size_t i) {
    ran.fetch_add(1);
    if (i == 7) throw std::runtime_error("morsel 7 failed");
  });
  EXPECT_THROW(batch.WaitAll(), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);  // workers drained the batch despite the error
}

// ---- Overlapped-splice ordering -------------------------------------------

// Injects a slow morsel *after* the first one: waiting on morsel 0 must
// return while morsel 1 is still blocked — the overlap the engine exploits
// to splice partition i while later partitions are still advancing. The
// consumption loop then records splice order, which must equal morsel
// order no matter how completion interleaved.
TEST(MorselBatchTest, WaitMorselOverlapsSlowLaterMorsels) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release_morsel1 = false;
  std::atomic<bool> morsel1_running{false};
  MorselBatch batch(&pool, 4, [&](std::size_t i) {
    if (i == 1) {
      morsel1_running.store(true);
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&]() { return release_morsel1; });
    }
  });

  batch.WaitMorsel(0);  // must not require morsel 1 to finish
  std::vector<std::size_t> splice_order{0};

  // Morsel 1 is still pinned (its worker blocks until released); the wait
  // above returning is the overlap property itself. Release and drain in
  // order, as the engine's apply loop does.
  {
    std::lock_guard<std::mutex> lock(mu);
    release_morsel1 = true;
  }
  cv.notify_all();
  for (std::size_t i = 1; i < 4; ++i) {
    batch.WaitMorsel(i);
    splice_order.push_back(i);
  }
  EXPECT_EQ(splice_order, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_TRUE(morsel1_running.load());
}

// ---- Heavy-fact time-boundary splitting -----------------------------------

// One fact's worth of random, duplicate-free, start-sorted tuples per side.
std::vector<TpTuple> OneFactChain(Rng* rng, std::size_t n, TimePoint max_len,
                                  TimePoint max_gap) {
  std::vector<TpTuple> out;
  out.reserve(n);
  TimePoint cursor = 0;
  for (std::size_t i = 0; i < n; ++i) {
    TimePoint start = cursor + rng->Uniform(0, max_gap);
    TimePoint end = start + rng->Uniform(1, max_len);
    out.push_back({/*fact=*/7, Interval(start, end),
                   static_cast<LineageId>(100 + i)});
    cursor = start;  // next start >= this start: overlap chains possible
    if (rng->Bernoulli(0.5)) cursor = end;  // sometimes leave a clean gap
  }
  return out;
}

// Asserts the split invariant: a cut at the boundary between consecutive
// sub-spans never bisects a window-open — every tuple of the prefix ends at
// or before every tuple start of the suffix.
void ExpectCleanCuts(const std::vector<TpTuple>& r, const std::vector<TpTuple>& s,
                     const std::vector<FactPartition>& sub) {
  ASSERT_FALSE(sub.empty());
  for (std::size_t k = 0; k + 1 < sub.size(); ++k) {
    // The cut time is the smallest start on either side of the suffix.
    TimePoint cut = std::numeric_limits<TimePoint>::max();
    if (sub[k + 1].r_begin < r.size()) {
      cut = std::min(cut, r[sub[k + 1].r_begin].t.start);
    }
    if (sub[k + 1].s_begin < s.size()) {
      cut = std::min(cut, s[sub[k + 1].s_begin].t.start);
    }
    for (std::size_t i = 0; i < sub[k + 1].r_begin; ++i) {
      EXPECT_LE(r[i].t.end, cut) << "r tuple " << i << " straddles cut " << k;
    }
    for (std::size_t i = 0; i < sub[k + 1].s_begin; ++i) {
      EXPECT_LE(s[i].t.end, cut) << "s tuple " << i << " straddles cut " << k;
    }
  }
}

TEST(HeavyFactSplitTest, CutsNeverBisectAWindowOpen) {
  for (std::uint64_t seed : testing::PropertySeeds({1, 2, 3, 4, 5, 6})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::vector<TpTuple> r = OneFactChain(&rng, 200, 6, 4);
    std::vector<TpTuple> s = OneFactChain(&rng, 150, 9, 2);
    for (std::size_t budget : {1u, 8u, 37u, 100u}) {
      FactPartition whole{0, r.size(), 0, s.size()};
      std::vector<FactPartition> sub =
          SplitFactAtTimeBoundaries(r.data(), s.data(), whole, budget);
      // Sub-spans are contiguous and cover the whole fact.
      ASSERT_EQ(sub.front().r_begin, 0u);
      ASSERT_EQ(sub.front().s_begin, 0u);
      ASSERT_EQ(sub.back().r_end, r.size());
      ASSERT_EQ(sub.back().s_end, s.size());
      for (std::size_t k = 0; k + 1 < sub.size(); ++k) {
        ASSERT_EQ(sub[k].r_end, sub[k + 1].r_begin);
        ASSERT_EQ(sub[k].s_end, sub[k + 1].s_begin);
      }
      ExpectCleanCuts(r, s, sub);
    }
  }
}

TEST(HeavyFactSplitTest, UnbrokenOverlapChainStaysOneMorsel) {
  // Every tuple overlaps the next: no clean cut exists anywhere.
  std::vector<TpTuple> r;
  for (int i = 0; i < 50; ++i) {
    r.push_back({7, Interval(i, i + 2), static_cast<LineageId>(10 + i)});
  }
  std::vector<TpTuple> s;  // empty side
  FactPartition whole{0, r.size(), 0, 0};
  std::vector<FactPartition> sub =
      SplitFactAtTimeBoundaries(r.data(), s.data(), whole, 5);
  EXPECT_EQ(sub.size(), 1u);
}

// Stitched sub-sweeps must reproduce the full-fact sweep: for every
// operation, concatenating each sub-morsel's surviving windows (fresh
// advancer per sub-span) equals the surviving windows of one sweep over the
// whole fact.
TEST(HeavyFactSplitTest, StitchedSubSweepsEqualFullSweep) {
  struct Win {
    FactId fact;
    Interval t;
    LineageId lr, ls;
    bool operator==(const Win& o) const {
      return fact == o.fact && t == o.t && lr == o.lr && ls == o.ls;
    }
  };
  for (std::uint64_t seed : testing::PropertySeeds({11, 12, 13, 14})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    std::vector<TpTuple> r = OneFactChain(&rng, 120, 5, 3);
    std::vector<TpTuple> s = OneFactChain(&rng, 160, 7, 5);
    for (std::size_t budget : {1u, 10u, 64u}) {
      SCOPED_TRACE("budget=" + std::to_string(budget));
      FactPartition whole{0, r.size(), 0, s.size()};
      std::vector<FactPartition> sub =
          SplitFactAtTimeBoundaries(r.data(), s.data(), whole, budget);
      for (SetOpKind op : kAllSetOps) {
        SCOPED_TRACE(SetOpName(op));
        std::vector<Win> full;
        {
          LineageAwareWindowAdvancer adv(r.data(), r.size(), s.data(), s.size());
          ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
            full.push_back({w.fact, w.t, w.lr, w.ls});
          });
        }
        std::vector<Win> stitched;
        for (const FactPartition& part : sub) {
          LineageAwareWindowAdvancer adv(
              r.data() + part.r_begin, part.r_end - part.r_begin,
              s.data() + part.s_begin, part.s_end - part.s_begin);
          ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
            stitched.push_back({w.fact, w.t, w.lr, w.ls});
          });
        }
        EXPECT_EQ(stitched.size(), full.size());
        EXPECT_TRUE(stitched == full);
      }
    }
  }
}

TEST(BuildMorselsTest, RefinesOversizedPartitionsInOrder) {
  Rng rng(99);
  // Several facts with very different weights, all in one partition.
  std::vector<TpTuple> r, s;
  for (FactId f : {1u, 2u, 3u}) {
    std::size_t n = f == 2 ? 300 : 20;  // fact 2 is heavy
    TimePoint cursor = 0;
    for (std::size_t i = 0; i < n; ++i) {
      TimePoint start = cursor + rng.Uniform(0, 3);
      TimePoint end = start + rng.Uniform(1, 4);
      (rng.Bernoulli(0.5) ? r : s).push_back({f, Interval(start, end), 5});
      cursor = rng.Bernoulli(0.3) ? start : end;
    }
  }
  std::sort(r.begin(), r.end(), FactTimeOrder());
  std::sort(s.begin(), s.end(), FactTimeOrder());
  std::vector<FactPartition> parts = {{0, r.size(), 0, s.size()}};
  MorselPlan plan = BuildMorsels(r.data(), s.data(), parts, 40);
  ASSERT_GT(plan.morsels.size(), 1u);
  EXPECT_GE(plan.facts_split, 1u);  // fact 2 must have been time-split
  // Morsels are contiguous, ordered, and cover both inputs.
  EXPECT_EQ(plan.morsels.front().r_begin, 0u);
  EXPECT_EQ(plan.morsels.front().s_begin, 0u);
  EXPECT_EQ(plan.morsels.back().r_end, r.size());
  EXPECT_EQ(plan.morsels.back().s_end, s.size());
  for (std::size_t k = 0; k + 1 < plan.morsels.size(); ++k) {
    EXPECT_EQ(plan.morsels[k].r_end, plan.morsels[k + 1].r_begin);
    EXPECT_EQ(plan.morsels[k].s_end, plan.morsels[k + 1].s_begin);
  }
}

TEST(BuildMorselsTest, WithinBudgetPartitionsPassThrough) {
  std::vector<TpTuple> r = {{1, Interval(0, 3), 5}, {2, Interval(1, 4), 6}};
  std::vector<TpTuple> s = {{1, Interval(2, 5), 7}};
  std::vector<FactPartition> parts = {{0, 2, 0, 1}};
  MorselPlan plan = BuildMorsels(r.data(), s.data(), parts, 100);
  ASSERT_EQ(plan.morsels.size(), 1u);
  EXPECT_EQ(plan.facts_split, 0u);
  EXPECT_EQ(plan.morsels[0].r_end, 2u);
  EXPECT_EQ(plan.morsels[0].s_end, 1u);
}

// ---- End to end through the engine ----------------------------------------

// A one-hot-fact workload through ParallelSetOpAlgorithm with a small
// morsel budget: results stay bit-identical to sequential LAWA (the
// kBitIdentical contract survives time splitting), and the stats show the
// heavy fact actually was split.
TEST(SchedulerEngineTest, OneHotFactBitIdenticalWithSplitting) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(0xB0B);
  SyntheticPairSpec spec;
  spec.num_tuples = 4000;
  spec.num_facts = 10;  // round-robin: every fact gets 400 tuples...
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);

  TpRelation seq = LawaSetOp(SetOpKind::kUnion, r, s);

  MorselOptions morsel;
  morsel.morsel_size = 64;
  ParallelSetOpAlgorithm algo(4, SortMode::kComparison, 2,
                              ApplyMode::kBitIdentical, morsel);
  LawaStats stats;
  TpRelation par = algo.ComputeTimed(SetOpKind::kUnion, r, s, nullptr, &stats);

  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < par.size(); ++i) {
    EXPECT_EQ(par[i], seq[i]) << "tuple " << i;
  }
  EXPECT_GT(stats.morsels_run, 4u);
  EXPECT_GE(stats.facts_split, 1u);  // 400-tuple facts vs budget 64
}

}  // namespace
}  // namespace tpset
