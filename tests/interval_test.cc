// Half-open interval semantics.
#include <gtest/gtest.h>

#include "common/interval.h"

namespace tpset {
namespace {

TEST(IntervalTest, Validity) {
  EXPECT_TRUE(Interval(1, 2).IsValid());
  EXPECT_FALSE(Interval(2, 2).IsValid());
  EXPECT_FALSE(Interval(3, 2).IsValid());
  EXPECT_TRUE(Interval(-5, -1).IsValid()) << "negative time points are allowed";
}

TEST(IntervalTest, Duration) {
  EXPECT_EQ(Interval(2, 10).Duration(), 8);
  EXPECT_EQ(Interval(-3, 4).Duration(), 7);
}

TEST(IntervalTest, ContainsPoint) {
  Interval iv(2, 5);
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_TRUE(iv.Contains(2)) << "start is inclusive";
  EXPECT_TRUE(iv.Contains(4));
  EXPECT_FALSE(iv.Contains(5)) << "end is exclusive";
}

TEST(IntervalTest, ContainsInterval) {
  Interval iv(2, 10);
  EXPECT_TRUE(iv.Contains(Interval(2, 10)));
  EXPECT_TRUE(iv.Contains(Interval(3, 9)));
  EXPECT_FALSE(iv.Contains(Interval(1, 9)));
  EXPECT_FALSE(iv.Contains(Interval(3, 11)));
}

TEST(IntervalTest, Overlaps) {
  EXPECT_TRUE(Interval(1, 5).Overlaps(Interval(4, 8)));
  EXPECT_TRUE(Interval(4, 8).Overlaps(Interval(1, 5)));
  EXPECT_TRUE(Interval(1, 10).Overlaps(Interval(3, 4)));
  EXPECT_FALSE(Interval(1, 5).Overlaps(Interval(5, 8)))
      << "adjacent half-open intervals do not overlap";
  EXPECT_FALSE(Interval(5, 8).Overlaps(Interval(1, 5)));
  EXPECT_FALSE(Interval(1, 2).Overlaps(Interval(3, 4)));
}

TEST(IntervalTest, Adjacent) {
  EXPECT_TRUE(Interval(1, 5).Adjacent(Interval(5, 8)));
  EXPECT_TRUE(Interval(5, 8).Adjacent(Interval(1, 5)));
  EXPECT_FALSE(Interval(1, 5).Adjacent(Interval(6, 8)));
  EXPECT_FALSE(Interval(1, 5).Adjacent(Interval(4, 8)));
}

TEST(IntervalTest, IntersectAndHull) {
  EXPECT_EQ(Intersect(Interval(1, 5), Interval(3, 8)), Interval(3, 5));
  EXPECT_EQ(Intersect(Interval(3, 8), Interval(1, 5)), Interval(3, 5));
  EXPECT_FALSE(Intersect(Interval(1, 3), Interval(5, 8)).IsValid());
  EXPECT_EQ(Hull(Interval(1, 3), Interval(5, 8)), Interval(1, 8));
}

TEST(IntervalTest, Ordering) {
  EXPECT_LT(Interval(1, 5), Interval(2, 3));
  EXPECT_LT(Interval(1, 3), Interval(1, 5)) << "end breaks ties";
  EXPECT_FALSE(Interval(1, 5) < Interval(1, 5));
}

TEST(IntervalTest, ToString) {
  EXPECT_EQ(ToString(Interval(2, 10)), "[2,10)");
  EXPECT_EQ(ToString(Interval(-1, 4)), "[-1,4)");
}

}  // namespace
}  // namespace tpset
