// Fig. 8: TP set intersection on large synthetic datasets (paper: 5M-50M
// tuples per relation, overlapping factor 0.6) — LAWA vs OIP, the only two
// approaches that scale past 10M.
//
// Paper shape: both grow roughly linearly; beyond ~30M LAWA is at least 2x
// faster than OIP and keeps scaling better (OIP's partitions fill up and
// the per-partition nested loop dominates). LAWA's difference/union
// runtimes match its intersection runtime, so they are reported too.
#include <memory>

#include "baselines/oip.h"
#include "bench/harness.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"

using namespace tpset;
using namespace tpset::bench;

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::printf("# Fig. 8: synthetic, 1 fact, OF~0.6, 5M-50M tuples, scale=%.3g\n",
              scale);
  PrintHeader("fig8");

  const std::size_t paper_sizes[] = {5000000,  10000000, 20000000,
                                     30000000, 40000000, 50000000};
  for (std::size_t paper_n : paper_sizes) {
    std::size_t n = Scaled(paper_n, scale);
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(0xF16008 + paper_n);
    SyntheticPairSpec spec = TableIIIPreset(0.6);
    spec.num_tuples = n;
    spec.num_facts = 1;
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);

    double lawa_ms = TimeMs([&] {
      TpRelation out = LawaIntersect(r, s);
      (void)out;
    });
    PrintRow("fig8", "intersect", "LAWA", n, lawa_ms);

    double oip_ms = TimeMs([&] {
      Result<TpRelation> out = OipSetOp(SetOpKind::kIntersect, r, s);
      (void)out;
    });
    PrintRow("fig8", "intersect", "OIP", n, oip_ms);

    // §VII-B: "As far as TP set difference and TP set union are concerned,
    // LAWA has similar runtime as in the case of TP set intersection."
    double except_ms = TimeMs([&] {
      TpRelation out = LawaExcept(r, s);
      (void)out;
    });
    PrintRow("fig8", "except", "LAWA", n, except_ms);
    double union_ms = TimeMs([&] {
      TpRelation out = LawaUnion(r, s);
      (void)out;
    });
    PrintRow("fig8", "union", "LAWA", n, union_ms);
  }
  return 0;
}
