// Run-indexed stream storage vs the O(n) merge append path.
//
// Three experiments, 1M tuples/relation at full scale (TPSET_BENCH_SCALE):
//
//  * append — per-epoch append latency at 0.1% batches, as stored relation
//    size grows: TpRelation::MergeSortedAppend (the pre-storage engine, O(n)
//    per epoch) vs StoredRelation::AppendRun (O(batch) amortized through the
//    run index). The acceptance bar is >= 10x at 1M stored tuples; the run
//    index should also be *flat* in relation size while the merge path grows
//    linearly.
//  * compact — amortization: total cost of E run-index appends plus one full
//    compaction, per epoch, vs the merge path's per-epoch cost; plus the
//    standalone compaction latency (sequential and 8-thread fact-range
//    parallel).
//  * retention — a continuous `r - s` over an unbounded stream with a
//    sliding Retain horizon: max resident tuples stay bounded while the
//    unretained twin grows linearly.
//  * mixed — the snapshot-isolation claim: a reader thread scanning the
//    relation while a writer appends and a compactor folds runs. Snapshot
//    mode pins epoch generations (lock-free reads); locked mode emulates
//    the pre-snapshot engine, where a View() fold required exclusive access
//    against writers. Reader p50/p99 full-scan latency and writer
//    throughput; acceptance: snapshot reader p99 with active compaction at
//    or below the locked baseline.
//
// Output: harness CSV rows, one "# json {...}" line per point, and a
// machine-readable summary in BENCH_storage.json (--json <path>).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "datagen/stream.h"
#include "incremental/continuous_query.h"
#include "parallel/thread_pool.h"
#include "query/executor.h"
#include "storage/stored_relation.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

using Cursors = std::vector<TimePoint>;

// Pre-interned sorted tuple batches: the workload both append paths consume,
// built outside the timed region (validation + interning cost is identical
// on both paths and not what this bench compares).
std::vector<std::vector<TpTuple>> BuildBatches(TpRelation* rel,
                                               std::size_t batch_rows,
                                               std::size_t epochs,
                                               Cursors* cursors, Rng* rng) {
  std::vector<std::vector<TpTuple>> batches;
  batches.reserve(epochs);
  TpContext& ctx = *rel->context();
  for (std::size_t e = 0; e < epochs; ++e) {
    DeltaBatch delta = NextChainBatch(cursors, batch_rows, rng);
    std::vector<TpTuple> tuples;
    tuples.reserve(delta.rows.size());
    for (const DeltaRow& row : delta.rows) {
      VarId v = ctx.vars().Add(row.p);
      FactId f = ctx.facts().Intern(row.fact);
      tuples.push_back({f, row.t, ctx.lineage().MakeVar(v)});
    }
    std::sort(tuples.begin(), tuples.end(), FactTimeOrder());
    batches.push_back(std::move(tuples));
  }
  return batches;
}

struct AppendPoint {
  std::size_t n = 0;
  std::size_t batch_rows = 0;
  double merge_ms = 0;      // MergeSortedAppend, mean per epoch
  double runindex_ms = 0;   // AppendRun, mean per epoch
  double amortized_ms = 0;  // AppendRun + one final Compact, mean per epoch
  double compact_seq_ms = 0;
  double compact_par_ms = 0;
  std::size_t runs_after = 0;
  double speedup = 0;  // merge / runindex
};

AppendPoint MeasureAppend(std::size_t n, std::size_t batch_rows,
                          std::size_t epochs) {
  AppendPoint p;
  p.n = n;
  p.batch_rows = batch_rows;

  auto ctx = std::make_shared<TpContext>();
  const std::size_t num_facts = n >= 1000 ? n / 1000 : 1;
  Rng rng(0x5704A6E);
  Cursors cursors(num_facts, 0);
  TpRelation seed(ctx, Schema::SingleInt("fact"), "r");
  SeedFactChains(&seed, n, &cursors, &rng);

  // Identical twins: one keeps the O(n) merge path, one goes through the
  // run index. Batches are shared (tuples are value types).
  TpRelation merge_rel = seed;
  StoredRelation stored{[&] {
    TpRelation base = seed;
    base.MarkSortedUnchecked();
    return base;
  }()};
  std::vector<std::vector<TpTuple>> batches =
      BuildBatches(&seed, p.batch_rows, epochs, &cursors, &rng);

  double merge_total = 0;
  for (const std::vector<TpTuple>& b : batches) {
    std::vector<TpTuple> copy = b;
    merge_total += TimeMs([&]() { merge_rel.MergeSortedAppend(std::move(copy)); });
  }
  p.merge_ms = merge_total / static_cast<double>(batches.size());

  double run_total = 0;
  EpochId epoch = 1;
  for (const std::vector<TpTuple>& b : batches) {
    std::vector<TpTuple> copy = b;
    run_total += TimeMs([&]() {
      Status st = stored.AppendRun(std::move(copy), epoch++);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        std::exit(1);
      }
    });
  }
  p.runindex_ms = run_total / static_cast<double>(batches.size());
  p.runs_after = stored.run_count();

  p.compact_seq_ms = TimeMs([&]() { stored.Compact(); });
  p.amortized_ms =
      (run_total + p.compact_seq_ms) / static_cast<double>(batches.size());
  p.speedup = p.runindex_ms > 0 ? p.merge_ms / p.runindex_ms : 0.0;

  // Parallel compaction, measured on a rebuilt tail: another generation of
  // chain batches (the cursors keep every append valid) lands as fresh runs,
  // then an 8-thread fact-range compaction folds them.
  {
    Cursors par_cursors = cursors;
    std::vector<std::vector<TpTuple>> more =
        BuildBatches(&seed, p.batch_rows, epochs, &par_cursors, &rng);
    for (std::vector<TpTuple>& b : more) {
      Status st = stored.AppendRun(std::move(b), epoch++);
      if (!st.ok()) std::exit(1);
    }
    ThreadPool pool(8);
    p.compact_par_ms = TimeMs([&]() { stored.Compact(&pool); });
  }
  return p;
}

struct RetentionPoint {
  std::size_t n = 0;
  std::size_t epochs = 0;
  std::size_t max_resident_retained = 0;
  std::size_t final_resident_unretained = 0;
  std::size_t tuples_retired = 0;
  std::size_t max_acc_retained = 0;
};

RetentionPoint MeasureRetention(std::size_t batch_rows, std::size_t epochs) {
  RetentionPoint out;
  out.n = batch_rows;
  out.epochs = epochs;
  const std::size_t num_facts = std::max<std::size_t>(1, batch_rows);

  // An unbounded stream: relations start empty and grow one batch per epoch,
  // so resident state is all stream — the quantity retention must bound.
  for (int retained = 0; retained < 2; ++retained) {
    auto ctx = std::make_shared<TpContext>();
    QueryExecutor exec(ctx);
    Rng rng(0x8E7E4710);
    std::vector<Cursors> cursors(2, Cursors(num_facts, 0));
    for (std::size_t side = 0; side < 2; ++side) {
      TpRelation rel(ctx, Schema::SingleInt("fact"), side == 0 ? "r" : "s");
      Status st = exec.Register(rel);
      if (!st.ok()) std::exit(1);
    }
    Result<ContinuousQuery*> cq = exec.RegisterContinuous("diff", "r - s");
    if (!cq.ok()) std::exit(1);

    std::size_t max_resident = 0;
    std::size_t max_acc = 0;
    for (std::size_t e = 0; e < epochs; ++e) {
      const std::size_t side = e % 2;
      DeltaBatch batch = NextChainBatch(&cursors[side], batch_rows, &rng);
      Result<EpochId> epoch = exec.Append(side == 0 ? "r" : "s", batch);
      if (!epoch.ok()) std::exit(1);
      if (retained == 1 && e % 8 == 7) {
        // Slide the horizon: forget everything older than the slowest
        // fact's cursor minus a small margin, on both relations.
        TimePoint low = cursors[0][0];
        for (const Cursors& c : cursors) {
          for (TimePoint t : c) low = std::min(low, t);
        }
        const TimePoint watermark = low - 8;
        if (watermark > 0) {
          for (const char* rel : {"r", "s"}) {
            Result<std::size_t> retired = exec.Retain(rel, watermark);
            if (!retired.ok()) std::exit(1);
          }
        }
      }
      max_resident = std::max(max_resident,
                              exec.FindStored("r").value()->size() +
                                  exec.FindStored("s").value()->size());
      max_acc = std::max(max_acc, (*cq)->size());
    }
    if (retained == 1) {
      out.max_resident_retained = max_resident;
      out.max_acc_retained = max_acc;
      out.tuples_retired = exec.FindStored("r").value()->stats().tuples_retired +
                           exec.FindStored("s").value()->stats().tuples_retired;
    } else {
      out.final_resident_unretained = exec.FindStored("r").value()->size() +
                                      exec.FindStored("s").value()->size();
    }
  }
  return out;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t i = std::min(
      v.size() - 1, static_cast<std::size_t>(q * static_cast<double>(v.size())));
  return v[i];
}

struct MixedPoint {
  std::size_t n = 0;
  std::size_t reads = 0;
  std::size_t appends = 0;
  double reader_p50_ms = 0;
  double reader_p99_ms = 0;
  double append_p99_ms = 0;  // includes the lock wait in locked mode
  double appends_per_sec = 0;
};

// One mixed read/write run: a writer appending chain batches, a reader
// repeatedly scanning the whole relation, and (snapshot mode) a compactor
// folding runs underneath. `locked` emulates the pre-snapshot engine: one
// exclusive lock serializes the reader's View() fold against every append —
// the reader-blocks-writer regime this PR retires.
MixedPoint MeasureMixed(std::size_t n, std::size_t batch_rows,
                        std::size_t epochs, bool locked) {
  MixedPoint p;
  p.n = n;

  auto ctx = std::make_shared<TpContext>();
  const std::size_t num_facts = n >= 1000 ? n / 1000 : 1;
  Rng rng(0x31AED5E);
  Cursors cursors(num_facts, 0);
  TpRelation seed(ctx, Schema::SingleInt("fact"), "r");
  SeedFactChains(&seed, n, &cursors, &rng);
  StoredRelation stored{[&] {
    TpRelation base = seed;
    base.MarkSortedUnchecked();
    return base;
  }()};
  std::vector<std::vector<TpTuple>> batches =
      BuildBatches(&seed, batch_rows, epochs, &cursors, &rng);

  std::mutex view_mu;  // locked mode only
  std::atomic<bool> done{false};
  std::vector<double> read_ms;
  read_ms.reserve(4096);
  // Retention horizon: the watermark walks linearly to half the seeded
  // span over the run, so compaction has real retirement work in both
  // modes and the resident set stays comparable.
  const TimePoint half_span = stored.max_interval_end() / 2;

  // Deadline-paced stream: append i lands no earlier than t0 + i*pace, so
  // both modes apply identical write work at an identical cadence — reader
  // latency is then the only variable. The pace grows with n to stay above
  // the worst-case in-lock fold, so even the blocked locked-mode writer can
  // hold the schedule instead of silently doing less work.
  const auto pace = std::chrono::microseconds(200 + n / 30);
  const auto writer_t0 = std::chrono::steady_clock::now();
  std::vector<double> append_ms;
  append_ms.reserve(epochs);
  std::thread writer([&] {
    EpochId epoch = 1;
    for (std::size_t i = 0; i < batches.size(); ++i) {
      std::this_thread::sleep_until(writer_t0 + (i + 1) * pace);
      Status st;
      append_ms.push_back(TimeMs([&] {
        if (locked) {
          std::lock_guard<std::mutex> lock(view_mu);
          st = stored.AppendRun(std::move(batches[i]), epoch++);
        } else {
          st = stored.AppendRun(std::move(batches[i]), epoch++);
        }
      }));
      if (!st.ok()) std::exit(1);
    }
    done.store(true, std::memory_order_release);
  });

  // Retention + compaction, one thread, both modes advancing the same
  // watermark schedule. Snapshot mode is the new engine: watermarks apply
  // through budgeted off-lock CompactSteps, append debt drains only when it
  // builds up (reads drain the tail too — every published fold empties it).
  // Locked mode is the old engine: Retain was a stop-the-world
  // SetWatermark + full Compact under the one lock readers and the writer
  // share.
  std::thread compactor([&] {
    std::size_t tick = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(pace);
      ++tick;
      if (tick % 8 == 0 && half_span > 0) {
        const TimePoint wm = static_cast<TimePoint>(
            static_cast<double>(half_span) *
            std::min(1.0, static_cast<double>(tick) /
                              static_cast<double>(epochs)));
        if (wm > 0) {
          if (locked) {
            std::lock_guard<std::mutex> lock(view_mu);
            if (stored.SetWatermark(wm).ok()) stored.Compact();
          } else if (stored.SetWatermark(wm).ok()) {
            stored.CompactStep(8);
          }
        }
      } else if (!locked && stored.compaction_debt() >= 4) {
        stored.CompactStep(8);
      }
    }
  });

  // The reader runs on the bench thread: scan the whole relation, one
  // latency sample per scan, until the writer finishes.
  std::uint64_t checksum = 0;
  while (!done.load(std::memory_order_acquire)) {
    read_ms.push_back(TimeMs([&] {
      std::uint64_t local = 0;
      if (locked) {
        std::lock_guard<std::mutex> lock(view_mu);
        const TpRelation& view = stored.View();
        for (const TpTuple& t : view.tuples()) local += t.fact;
      } else {
        // The engine's read path: pin a snapshot, fold off-lock if the tail
        // is dirty (the claimed fold publishes, so the next read is a flat
        // scan), and scan — while appends and compaction land underneath.
        const std::shared_ptr<const TpRelation> view = stored.FoldedView();
        for (const TpTuple& t : view->tuples()) local += t.fact;
      }
      checksum += local;
    }));
  }
  writer.join();
  const auto writer_t1 = std::chrono::steady_clock::now();
  compactor.join();
  if (checksum == 0xdead) std::printf("# impossible\n");

  p.reads = read_ms.size();
  p.appends = epochs;
  p.reader_p50_ms = Percentile(read_ms, 0.50);
  p.reader_p99_ms = Percentile(read_ms, 0.99);
  p.append_p99_ms = Percentile(append_ms, 0.99);
  const double secs =
      std::chrono::duration<double>(writer_t1 - writer_t0).count();
  p.appends_per_sec = secs > 0 ? static_cast<double>(epochs) / secs : 0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  const char* json_path = "BENCH_storage.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("# storage: run-indexed append path vs MergeSortedAppend; "
              "0.1%% batches, per-fact chains (scale=%.3g)\n", scale);
  PrintHeader("storage");

  std::string json = "{\n  \"experiment\": \"storage\",\n";
  json += ProvenanceJson(/*threads=*/8);
  {
    char head[96];
    std::snprintf(head, sizeof(head), "  \"scale\": %.4g,\n  \"append\": [\n",
                  scale);
    json += head;
  }

  // Fixed batch size across relation sizes: per-epoch run-index cost should
  // be flat in n (it is O(batch)) while the merge path grows linearly. At
  // 1M the batch is the acceptance point's 0.1%.
  const std::size_t sizes[] = {Scaled(100000, scale), Scaled(1000000, scale)};
  const std::size_t batch_rows = std::max<std::size_t>(1, Scaled(1000, scale));
  const std::size_t epochs = 40;
  bool first = true;
  for (std::size_t n : sizes) {
    AppendPoint p = MeasureAppend(n, batch_rows, epochs);
    PrintRow("storage", "append", "merge-sorted-append", n, p.merge_ms);
    PrintRow("storage", "append", "run-index", n, p.runindex_ms);
    PrintRow("storage", "append", "run-index+compact", n, p.amortized_ms);
    PrintRow("storage", "compact", "sequential", n, p.compact_seq_ms);
    PrintRow("storage", "compact", "parallel/8", n, p.compact_par_ms);

    char line[384];
    std::snprintf(line, sizeof(line),
                  "{\"n\": %zu, \"batch_rows\": %zu, \"merge_ms\": %.4f, "
                  "\"runindex_ms\": %.4f, \"amortized_ms\": %.4f, "
                  "\"compact_seq_ms\": %.3f, \"compact_par8_ms\": %.3f, "
                  "\"runs_after\": %zu, \"speedup\": %.1f}",
                  p.n, p.batch_rows, p.merge_ms, p.runindex_ms, p.amortized_ms,
                  p.compact_seq_ms, p.compact_par_ms, p.runs_after, p.speedup);
    std::printf("# json %s\n", line);
    if (!first) json += ",\n";
    first = false;
    json += std::string("    ") + line;
  }
  json += "\n  ],\n";

  // Mixed read/write: same relation size and batch shape as the append
  // experiment's large point; the two modes run identical workloads.
  {
    const std::size_t n = Scaled(1000000, scale);
    const std::size_t mixed_epochs = 60;
    MixedPoint snap = MeasureMixed(n, batch_rows, mixed_epochs, false);
    MixedPoint lock = MeasureMixed(n, batch_rows, mixed_epochs, true);
    PrintRow("storage", "mixed", "snapshot-reader-p99", n, snap.reader_p99_ms);
    PrintRow("storage", "mixed", "locked-reader-p99", n, lock.reader_p99_ms);
    PrintRow("storage", "mixed", "snapshot-append-p99", n, snap.append_p99_ms);
    PrintRow("storage", "mixed", "locked-append-p99", n, lock.append_p99_ms);
    char line[512];
    std::snprintf(
        line, sizeof(line),
        "{\"n\": %zu, \"appends\": %zu,\n"
        "    \"snapshot\": {\"reads\": %zu, \"reader_p50_ms\": %.4f, "
        "\"reader_p99_ms\": %.4f, \"append_p99_ms\": %.4f, "
        "\"appends_per_sec\": %.1f},\n"
        "    \"locked\": {\"reads\": %zu, \"reader_p50_ms\": %.4f, "
        "\"reader_p99_ms\": %.4f, \"append_p99_ms\": %.4f, "
        "\"appends_per_sec\": %.1f}}",
        snap.n, snap.appends, snap.reads, snap.reader_p50_ms,
        snap.reader_p99_ms, snap.append_p99_ms, snap.appends_per_sec,
        lock.reads, lock.reader_p50_ms, lock.reader_p99_ms, lock.append_p99_ms,
        lock.appends_per_sec);
    std::printf("# json %s\n", line);
    json += std::string("  \"mixed\": ") + line + ",\n";
  }

  {
    RetentionPoint r = MeasureRetention(Scaled(1000, scale), 200);
    PrintRow("storage", "retention", "max-resident-retained", r.n,
             static_cast<double>(r.max_resident_retained));
    PrintRow("storage", "retention", "final-resident-unretained", r.n,
             static_cast<double>(r.final_resident_unretained));
    char line[320];
    std::snprintf(line, sizeof(line),
                  "{\"batch_rows\": %zu, \"epochs\": %zu, "
                  "\"max_resident_retained\": %zu, "
                  "\"final_resident_unretained\": %zu, "
                  "\"tuples_retired\": %zu, \"max_acc_retained\": %zu}",
                  r.n, r.epochs, r.max_resident_retained,
                  r.final_resident_unretained, r.tuples_retired,
                  r.max_acc_retained);
    std::printf("# json %s\n", line);
    json += std::string("  \"retention\": ") + line + "\n}\n";
  }

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "bench_storage: cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
