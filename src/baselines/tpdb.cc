#include "baselines/tpdb.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <vector>

#include "relation/tuple.h"

namespace tpset {

namespace {

// One Allen-pattern deduction rule for overlapping intervals: a predicate on
// the endpoint order. The six patterns are pairwise disjoint and together
// cover every overlapping configuration, so grounding produces no duplicate
// (r, s) pair.
using AllenRule = bool (*)(const Interval&, const Interval&);

bool RuleEqual(const Interval& r, const Interval& s) {
  return r.start == s.start && r.end == s.end;
}
bool RuleStarts(const Interval& r, const Interval& s) {
  return r.start == s.start && r.end < s.end;
}
bool RuleStartedBy(const Interval& r, const Interval& s) {
  return r.start == s.start && r.end > s.end;
}
bool RuleOverlapsOrFinishedBy(const Interval& r, const Interval& s) {
  return r.start < s.start && s.start < r.end && r.end <= s.end;
}
bool RuleContains(const Interval& r, const Interval& s) {
  return r.start < s.start && s.end < r.end;
}
bool RuleDuringOrFinishesOrOverlappedBy(const Interval& r, const Interval& s) {
  return s.start < r.start && r.start < s.end;
}

constexpr AllenRule kIntersectionRules[] = {
    RuleEqual,    RuleStarts,   RuleStartedBy,
    RuleOverlapsOrFinishedBy, RuleContains, RuleDuringOrFinishesOrOverlappedBy,
};

std::unordered_map<FactId, std::vector<std::size_t>> GroupByFact(
    const std::vector<TpTuple>& tuples) {
  std::unordered_map<FactId, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    groups[tuples[i].fact].push_back(i);
  }
  return groups;
}

}  // namespace

Result<TpRelation> TpdbSetOp(SetOpKind op, const TpRelation& r,
                             const TpRelation& s, TpdbStats* stats) {
  if (op == SetOpKind::kExcept) {
    return Status::NotSupported(
        "TPDB deduction rules cannot express TP set difference: output "
        "subintervals may exist in neither input (paper §II)");
  }
  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(),
                 "(" + r.name() + " " + SetOpName(op) + " " + s.name() + ")");
  TpdbStats local;

  if (op == SetOpKind::kIntersect) {
    // Grounding: one inner join per Allen rule. The equality condition on
    // the fact restricts pairs; within a fact the endpoint (in)equalities
    // are evaluated pair by pair.
    const std::vector<TpTuple>& rt = r.tuples();
    const std::vector<TpTuple>& st = s.tuples();
    auto s_groups = GroupByFact(st);
    std::vector<TpTuple> grounded;
    for (const AllenRule rule : kIntersectionRules) {
      for (const TpTuple& x : rt) {
        auto it = s_groups.find(x.fact);
        if (it == s_groups.end()) continue;
        for (std::size_t j : it->second) {
          const TpTuple& y = st[j];
          ++local.pairs_tested;
          if (rule(x.t, y.t)) {
            grounded.push_back({x.fact, Intersect(x.t, y.t),
                                mgr.ConcatAnd(x.lineage, y.lineage)});
          }
        }
      }
    }
    // Deduplication: grounded tuples of one fact are disjoint because the
    // rules are disjoint and the inputs duplicate-free; the step reduces to
    // a sort plus a disjointness scan (interval adjustment never fires).
    std::sort(grounded.begin(), grounded.end(), FactTimeOrder());
    for (std::size_t i = 0; i < grounded.size(); ++i) {
      assert(i == 0 || grounded[i - 1].fact != grounded[i].fact ||
             !grounded[i - 1].t.Overlaps(grounded[i].t));
      out.AddDerived(grounded[i].fact, grounded[i].t, grounded[i].lineage);
    }
    local.grounded_tuples = grounded.size();
  } else {
    // Union grounding: the rule is a conventional union — copy both inputs.
    std::vector<TpTuple> grounded = r.tuples();
    grounded.insert(grounded.end(), s.tuples().begin(), s.tuples().end());
    local.grounded_tuples = grounded.size();

    // Deduplication: same-fact tuples from the two sides may overlap; their
    // intervals are adjusted by splitting at all boundary points and OR-ing
    // the lineages of the covering tuples, merging adjacent equal results.
    std::sort(grounded.begin(), grounded.end(), FactTimeOrder());
    std::size_t i = 0;
    std::vector<TimePoint> bounds;
    while (i < grounded.size()) {
      std::size_t j = i;
      while (j < grounded.size() && grounded[j].fact == grounded[i].fact) ++j;
      bounds.clear();
      for (std::size_t k = i; k < j; ++k) {
        bounds.push_back(grounded[k].t.start);
        bounds.push_back(grounded[k].t.end);
      }
      std::sort(bounds.begin(), bounds.end());
      bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
      Interval pending;
      LineageId pending_lin = kNullLineage;
      bool have_pending = false;
      // Active-set sweep over the fact group: tuples are sorted by start,
      // and each input side is duplicate-free, so at most two tuples cover
      // any segment.
      std::size_t next = i;
      std::vector<std::size_t> active;
      for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
        Interval seg(bounds[b], bounds[b + 1]);
        while (next < j && grounded[next].t.start == seg.start) {
          active.push_back(next++);
        }
        std::erase_if(active, [&](std::size_t k) {
          return grounded[k].t.end <= seg.start;
        });
        LineageId acc = kNullLineage;
        for (std::size_t k : active) {
          ++local.pairs_tested;
          acc = mgr.ConcatOr(acc, grounded[k].lineage);
        }
        if (acc == kNullLineage) {
          if (have_pending) {
            out.AddDerived(grounded[i].fact, pending, pending_lin);
            have_pending = false;
          }
          continue;
        }
        if (have_pending && pending.end == seg.start && pending_lin == acc) {
          pending.end = seg.end;
        } else {
          if (have_pending) out.AddDerived(grounded[i].fact, pending, pending_lin);
          pending = seg;
          pending_lin = acc;
          have_pending = true;
        }
      }
      if (have_pending) out.AddDerived(grounded[i].fact, pending, pending_lin);
      i = j;
    }
  }
  out.SortFactTime();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tpset
