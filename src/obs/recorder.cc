#include "obs/recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace tpset::obs {

namespace {

obs::Counter& CollectorTicksCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_obs_collector_ticks_total",
      "flight-recorder collector passes (registry scrapes into the rings)");
  return c;
}

obs::Counter& SlowExecsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_obs_slow_execs_total",
      "executions retained as slow-query exemplars");
  return c;
}

constexpr std::size_t kHistWidth = 2 + kHistogramBuckets;  // count, sum, buckets

const char* KindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "counter";
}

}  // namespace

// ---- RecorderOptions --------------------------------------------------------

Status RecorderOptions::Validate() const {
  if (tick.count() < kMinTickMs || tick.count() > kMaxTickMs) {
    return Status::InvalidArgument(
        "recorder tick must be in [" + std::to_string(kMinTickMs) + "ms, " +
        std::to_string(kMaxTickMs) + "ms], got " +
        std::to_string(tick.count()) + "ms");
  }
  if (ring_capacity < kMinRingCapacity || ring_capacity > kMaxRingCapacity) {
    return Status::InvalidArgument(
        "recorder ring_capacity must be in [" +
        std::to_string(kMinRingCapacity) + ", " +
        std::to_string(kMaxRingCapacity) + "], got " +
        std::to_string(ring_capacity));
  }
  if (!(slow_floor_ms >= 0.0)) {  // negation catches NaN too
    return Status::InvalidArgument(
        "recorder slow_floor_ms must be >= 0, got " +
        std::to_string(slow_floor_ms));
  }
  if (slow_capacity < 1 || slow_capacity > kMaxSlowCapacity) {
    return Status::InvalidArgument(
        "recorder slow_capacity must be in [1, " +
        std::to_string(kMaxSlowCapacity) + "], got " +
        std::to_string(slow_capacity));
  }
  return Status::OK();
}

namespace {

/// Parses env var `name` as a non-negative integer into `*out`. Unset or
/// empty leaves `*out` alone; garbage is InvalidArgument naming the var.
Status EnvInt(const char* name, long long* out) {
  const char* text = std::getenv(name);
  if (text == nullptr || *text == '\0') return Status::OK();
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 0) {
    return Status::InvalidArgument(std::string(name) + "='" + text +
                                   "' is not a non-negative integer");
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Result<RecorderOptions> RecorderOptions::FromEnv() {
  return FromEnv(RecorderOptions{});
}

Result<RecorderOptions> RecorderOptions::FromEnv(RecorderOptions base) {
  long long tick_ms = base.tick.count();
  TPSET_RETURN_NOT_OK(EnvInt("TPSET_OBS_SAMPLE_MS", &tick_ms));
  base.tick = std::chrono::milliseconds(tick_ms);
  long long ring_cap = static_cast<long long>(base.ring_capacity);
  TPSET_RETURN_NOT_OK(EnvInt("TPSET_OBS_RING_CAP", &ring_cap));
  base.ring_capacity = static_cast<std::size_t>(ring_cap);
  TPSET_RETURN_NOT_OK(base.Validate());
  return base;
}

// ---- MetricRing -------------------------------------------------------------

// Single-writer ring of fixed-width samples stored as relaxed-atomic words.
// The writer fills the slot for sample n, then publishes by storing count =
// n+1 with release order; readers copy at most capacity-1 trailing samples
// after an acquire load of count and re-check count afterwards — if the
// writer lapped into the copied range the copy retries. See recorder.h.
struct Recorder::MetricRing {
  MetricRing(MetricSnapshot::Kind k, std::size_t w, std::size_t cap)
      : kind(k),
        width(w),
        capacity(cap < 4 ? 4 : cap),
        data(new std::atomic<std::uint64_t>[capacity * width]),
        ts(new std::atomic<std::int64_t>[capacity]) {
    for (std::size_t i = 0; i < capacity * width; ++i) data[i] = 0;
    for (std::size_t i = 0; i < capacity; ++i) ts[i] = 0;
  }

  void Append(const std::uint64_t* sample, std::int64_t now_us) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    const std::size_t slot = static_cast<std::size_t>(n % capacity);
    for (std::size_t i = 0; i < width; ++i) {
      data[slot * width + i].store(sample[i], std::memory_order_relaxed);
    }
    ts[slot].store(now_us, std::memory_order_relaxed);
    count.store(n + 1, std::memory_order_release);
  }

  /// Copies up to `want` trailing samples (oldest first) into `out`
  /// (`want * width` words) and `out_ts`. Returns the number copied.
  std::size_t CopyTrailing(std::uint64_t* out, std::int64_t* out_ts,
                           std::size_t want) const {
    if (want > capacity - 1) want = capacity - 1;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::uint64_t n1 = count.load(std::memory_order_acquire);
      const std::size_t k =
          static_cast<std::size_t>(n1 < want ? n1 : want);
      if (k == 0) return 0;
      const std::uint64_t start = n1 - k;
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t slot = static_cast<std::size_t>((start + j) % capacity);
        for (std::size_t i = 0; i < width; ++i) {
          out[j * width + i] =
              data[slot * width + i].load(std::memory_order_relaxed);
        }
        out_ts[j] = ts[slot].load(std::memory_order_relaxed);
      }
      const std::uint64_t n2 = count.load(std::memory_order_acquire);
      // The writer may be filling sample n2's slot right now; the copy is
      // untorn iff no copied slot was reused, i.e. n2 stayed strictly within
      // one lap of the oldest copied sample.
      if (n2 - start < capacity) return k;
    }
    return 0;  // persistently lapped (collector tick far faster than reader)
  }

  const MetricSnapshot::Kind kind;
  const std::size_t width;
  const std::size_t capacity;
  std::unique_ptr<std::atomic<std::uint64_t>[]> data;
  std::unique_ptr<std::atomic<std::int64_t>[]> ts;
  std::atomic<std::uint64_t> count{0};
};

// ---- SlowSlot ---------------------------------------------------------------

struct Recorder::SlowSlot {
  struct Payload {
    std::uint64_t seq = 0;
    std::int64_t ts_unix_us = 0;
    double wall_ms = 0.0;
    double threshold_ms = 0.0;
    char kind[16] = {0};
    char label[104] = {0};
    char profile_json[8056] = {0};  // "null" when absent or oversized
  };
  static constexpr std::size_t kWords = (sizeof(Payload) + 7) / 8;

  // Stamp protocol as in EventLog: odd = writing, seq*2 = published.
  std::atomic<std::uint64_t> stamp{0};
  std::atomic<std::uint64_t> words[kWords] = {};

  void Store(const Payload& p) {
    std::uint64_t packed[kWords] = {0};
    std::memcpy(packed, &p, sizeof(Payload));
    for (std::size_t i = 0; i < kWords; ++i) {
      words[i].store(packed[i], std::memory_order_relaxed);
    }
  }

  /// Copies the payload words into `out` (sizeof(Payload) bytes, suitably
  /// aligned scratch). No allocation; signal-safe.
  void LoadInto(void* out) const {
    std::uint64_t packed[8];  // stream in chunks to keep stack use small
    auto* dst = static_cast<unsigned char*>(out);
    std::size_t i = 0;
    while (i < kWords) {
      const std::size_t n = std::min<std::size_t>(8, kWords - i);
      for (std::size_t j = 0; j < n; ++j) {
        packed[j] = words[i + j].load(std::memory_order_relaxed);
      }
      const std::size_t bytes =
          std::min(sizeof(Payload) - i * 8, n * 8);
      std::memcpy(dst + i * 8, packed, bytes);
      i += n;
    }
  }
};

// ---- Stats ------------------------------------------------------------------

namespace {

// Windowed statistics over `k` sample rows (oldest first). No allocation.
HistoryStats ComputeStats(MetricSnapshot::Kind kind, const std::uint64_t* rows,
                          const std::int64_t* ts, std::size_t k,
                          std::size_t width) {
  HistoryStats h;
  h.kind = kind;
  h.samples = k;
  if (k == 0) return h;
  h.window_sec =
      k >= 2 ? static_cast<double>(ts[k - 1] - ts[0]) / 1e6 : 0.0;

  auto value = [&](std::size_t j) {
    // Counters/gauges: the sampled value. Histograms: cumulative count.
    return rows[j * width];
  };

  if (kind == MetricSnapshot::Kind::kGauge) {
    const auto signed_value = [&](std::size_t j) {
      return static_cast<std::int64_t>(value(j));
    };
    h.first = signed_value(0);
    h.last = signed_value(k - 1);
    h.min = h.max = h.first;
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const std::int64_t v = signed_value(j);
      h.min = std::min(h.min, v);
      h.max = std::max(h.max, v);
      sum += static_cast<double>(v);
    }
    h.avg = sum / static_cast<double>(k);
    return h;
  }

  // Counter or histogram: monotone cumulative series; stats over per-tick
  // deltas, rate over the window. A counter reset (fresh registry in tests)
  // would make a delta negative; clamp to 0 rather than wrap.
  h.first = static_cast<std::int64_t>(value(0));
  h.last = static_cast<std::int64_t>(value(k - 1));
  if (k >= 2) {
    double sum = 0.0;
    for (std::size_t j = 0; j + 1 < k; ++j) {
      const std::uint64_t a = value(j), b = value(j + 1);
      const std::int64_t d =
          b >= a ? static_cast<std::int64_t>(b - a) : 0;
      if (j == 0) {
        h.min = h.max = d;
      } else {
        h.min = std::min(h.min, d);
        h.max = std::max(h.max, d);
      }
      sum += static_cast<double>(d);
    }
    h.avg = sum / static_cast<double>(k - 1);
    if (h.window_sec > 0) {
      h.rate_per_sec =
          static_cast<double>(h.last - h.first) / h.window_sec;
    }
  }

  if (kind == MetricSnapshot::Kind::kHistogram && k >= 2) {
    const std::uint64_t* first_row = rows;
    const std::uint64_t* last_row = rows + (k - 1) * width;
    const std::uint64_t count_delta =
        last_row[0] >= first_row[0] ? last_row[0] - first_row[0] : 0;
    const std::uint64_t sum_delta =
        last_row[1] >= first_row[1] ? last_row[1] - first_row[1] : 0;
    if (count_delta > 0) {
      h.avg_value =
          static_cast<double>(sum_delta) / static_cast<double>(count_delta);
      // Windowed p99: walk the bucket-count deltas to the 99th-percentile
      // observation; report that bucket's inclusive upper bound.
      const std::uint64_t target =
          (count_delta * 99 + 99) / 100;  // ceil(0.99 * delta)
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        const std::uint64_t ba = first_row[2 + b], bb = last_row[2 + b];
        cumulative += bb >= ba ? bb - ba : 0;
        if (cumulative >= target) {
          h.p99 = static_cast<double>(HistogramBucketBound(b));
          break;
        }
      }
    }
  }
  return h;
}

}  // namespace

// ---- Recorder lifecycle -----------------------------------------------------

Recorder::Recorder(const MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()) {}

Recorder::~Recorder() {
  Stop();
  const std::size_t n = tracked_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) delete tracked_[i].ring;
  delete[] slow_slots_.load(std::memory_order_acquire);
}

Recorder& Recorder::Global() {
  // Leaked like the registry: the crash handler may fire at any point of
  // static destruction.
  static Recorder* global = new Recorder();
  return *global;
}

Status Recorder::Start(const RecorderOptions& options) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    if (!running_.load(std::memory_order_acquire)) {
      stop_requested_ = false;
      collector_ = std::thread([this]() { CollectorLoop(); });
      running_.store(true, std::memory_order_release);
    }
    return Status::OK();
  }
  // Out-of-bounds knobs are rejected, not clamped: a recorder running with
  // a config the operator didn't ask for is worse than one that refuses.
  TPSET_RETURN_NOT_OK(options.Validate());
  // EnsureStarted passes options_ itself; skip the self-assignment so the
  // no-op write cannot race a concurrent reader taking a snapshot below.
  if (&options != &options_) options_ = options;
  started_ = true;
  PreallocateDumpBuffers();
  stop_requested_ = false;
  collector_ = std::thread([this]() { CollectorLoop(); });
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

void Recorder::EnsureStarted() {
  if (running_.load(std::memory_order_acquire)) return;
  // options_ is either the validated frozen config or the (valid) defaults,
  // so this Start cannot fail on bounds; surface anything unexpected.
  const Status status = Start(options_);
  if (!status.ok()) {
    EmitEvent(Severity::kError, "obs", "recorder start failed: %.80s",
              status.message().c_str());
  }
}

void Recorder::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!running_.load(std::memory_order_acquire)) return;
    stop_requested_ = true;
    stop_cv_.notify_all();
    to_join = std::move(collector_);
  }
  if (to_join.joinable()) to_join.join();
  running_.store(false, std::memory_order_release);
}

void Recorder::CollectorLoop() {
  std::unique_lock<std::mutex> lock(lifecycle_mu_);
  while (!stop_requested_) {
    lock.unlock();
    TickOnce();
    lock.lock();
    stop_cv_.wait_for(lock, options_.tick, [this]() { return stop_requested_; });
  }
}

// ---- Sampling ---------------------------------------------------------------

Recorder::MetricRing* Recorder::RingFor(const std::string& name,
                                        MetricSnapshot::Kind kind,
                                        std::size_t width) {
  const std::size_t n = tracked_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (name == tracked_[i].name) return tracked_[i].ring;
  }
  if (n >= kMaxTracked || name.size() >= sizeof(TrackedMetric::name)) {
    return nullptr;  // table full / name oversized: skip, keep sampling rest
  }
  std::memcpy(tracked_[n].name, name.c_str(), name.size() + 1);
  tracked_[n].ring = new MetricRing(kind, width, options_.ring_capacity);
  tracked_count_.store(n + 1, std::memory_order_release);
  return tracked_[n].ring;
}

const Recorder::MetricRing* Recorder::FindRing(const char* name) const {
  const std::size_t n = tracked_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::strcmp(name, tracked_[i].name) == 0) return tracked_[i].ring;
  }
  return nullptr;
}

void Recorder::TickOnce() {
  std::lock_guard<std::mutex> lock(tick_mu_);
  const MetricsSnapshot snap = registry_->Scrape();
  const std::int64_t now = NowUnixUs();
  std::uint64_t sample[kHistWidth];
  for (const MetricSnapshot& m : snap.metrics) {
    const bool hist = m.kind == MetricSnapshot::Kind::kHistogram;
    const std::size_t width = hist ? kHistWidth : 1;
    MetricRing* ring = RingFor(m.name, m.kind, width);
    if (ring == nullptr) continue;
    if (hist) {
      sample[0] = m.hist_count;
      sample[1] = m.hist_sum;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        sample[2 + b] = b < m.buckets.size() ? m.buckets[b] : 0;
      }
    } else if (m.kind == MetricSnapshot::Kind::kCounter) {
      sample[0] = m.counter;
    } else {
      sample[0] = static_cast<std::uint64_t>(m.gauge);
    }
    ring->Append(sample, now);
  }
  ticks_.fetch_add(1, std::memory_order_release);
  CollectorTicksCounter().Increment();
}

// ---- History ----------------------------------------------------------------

Result<HistoryStats> Recorder::History(const std::string& name,
                                       std::chrono::milliseconds window) const {
  const MetricRing* ring = FindRing(name.c_str());
  if (ring == nullptr) {
    return Status::NotFound("no ring samples for metric '" + name +
                            "' (collector not started, or metric never "
                            "registered)");
  }
  std::vector<std::uint64_t> rows((ring->capacity - 1) * ring->width);
  std::vector<std::int64_t> ts(ring->capacity - 1);
  const std::size_t k =
      ring->CopyTrailing(rows.data(), ts.data(), ring->capacity - 1);
  if (k == 0) {
    return Status::NotFound("metric '" + name + "' has no samples yet");
  }
  // Trim to the trailing window, keeping the newest sample at or before the
  // window start as the delta baseline (deltas need an edge sample).
  const std::int64_t cutoff = ts[k - 1] - window.count() * 1000;
  std::size_t begin = 0;
  for (std::size_t j = 0; j < k; ++j) {
    if (ts[j] >= cutoff) {
      begin = j > 0 ? j - 1 : 0;
      break;
    }
  }
  return ComputeStats(ring->kind, rows.data() + begin * ring->width,
                      ts.data() + begin, k - begin, ring->width);
}

std::vector<std::string> Recorder::TrackedMetrics() const {
  const std::size_t n = tracked_count_.load(std::memory_order_acquire);
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.emplace_back(tracked_[i].name);
  std::sort(names.begin(), names.end());
  return names;
}

// ---- Slow-execution log -----------------------------------------------------

double Recorder::SlowThresholdMs(const char* kind) const {
  const char* metric = std::strcmp(kind, "epoch") == 0
                           ? "tpset_incr_epoch_usec"
                           : "tpset_exec_query_usec";
  // Snapshot the knobs under the lifecycle lock: a first Start (possibly
  // triggered by a concurrent writer's EnsureStarted) freezes options_ while
  // query threads call in here.
  RecorderOptions opts;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    opts = options_;
  }
  const auto window = opts.tick * static_cast<int>(opts.ring_capacity);
  Result<HistoryStats> h =
      History(metric, std::chrono::duration_cast<std::chrono::milliseconds>(
                          window));
  double threshold = opts.slow_floor_ms;
  if (h.ok() && h->samples >= 2 && h->p99 > 0) {
    threshold = std::max(threshold, h->p99 / 1000.0);
  }
  return threshold;
}

void Recorder::RecordExecution(const char* kind, const std::string& label,
                               double wall_ms, const QueryProfile* profile) {
#ifdef TPSET_OBS_DISABLED
  (void)kind;
  (void)label;
  (void)wall_ms;
  (void)profile;
#else
  if (!internal::RecordingEnabled()) return;
  const double threshold = SlowThresholdMs(kind);
  if (wall_ms < threshold) return;

  std::lock_guard<std::mutex> lock(slow_mu_);
  SlowSlot* slots = slow_slots_.load(std::memory_order_relaxed);
  if (slots == nullptr) {
    slow_capacity_ = options_.slow_capacity;
    slots = new SlowSlot[slow_capacity_];
    slow_slots_.store(slots, std::memory_order_release);
  }
  auto payload = std::make_unique<SlowSlot::Payload>();
  const std::uint64_t seq =
      slow_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  payload->seq = seq;
  payload->ts_unix_us = NowUnixUs();
  payload->wall_ms = wall_ms;
  payload->threshold_ms = threshold;
  std::snprintf(payload->kind, sizeof(payload->kind), "%s", kind);
  std::snprintf(payload->label, sizeof(payload->label), "%s", label.c_str());
  std::strcpy(payload->profile_json, "null");
  if (profile != nullptr) {
    const std::string json = profile->ToJson();
    if (json.size() < sizeof(payload->profile_json)) {
      std::memcpy(payload->profile_json, json.c_str(), json.size() + 1);
    }
  }
  SlowSlot& slot = slots[(seq - 1) % slow_capacity_];
  slot.stamp.store(seq * 2 - 1, std::memory_order_release);
  slot.Store(*payload);
  slot.stamp.store(seq * 2, std::memory_order_release);
  SlowExecsCounter().Increment();
  EmitEvent(Severity::kWarn, "obs",
            "slow %s wall_ms=%.2f threshold_ms=%.2f label=%.40s", kind,
            wall_ms, threshold, label.c_str());
#endif
}

std::vector<SlowExemplar> Recorder::SlowQueries() const {
  std::vector<SlowExemplar> out;
  const SlowSlot* slots = slow_slots_.load(std::memory_order_acquire);
  if (slots == nullptr) return out;
  const std::uint64_t emitted = slow_seq_.load(std::memory_order_acquire);
  const std::uint64_t want =
      emitted < slow_capacity_ ? emitted : slow_capacity_;
  auto payload = std::make_unique<SlowSlot::Payload>();
  for (std::uint64_t seq = emitted - want + 1; seq <= emitted; ++seq) {
    const SlowSlot& slot = slots[(seq - 1) % slow_capacity_];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 != seq * 2) continue;
    slot.LoadInto(payload.get());
    if (slot.stamp.load(std::memory_order_acquire) != s1) continue;
    SlowExemplar e;
    e.seq = payload->seq;
    e.ts_unix_us = payload->ts_unix_us;
    e.wall_ms = payload->wall_ms;
    e.threshold_ms = payload->threshold_ms;
    e.kind = payload->kind;
    e.label = payload->label;
    e.profile_json = payload->profile_json;
    out.push_back(std::move(e));
  }
  return out;
}

// ---- Flight records ---------------------------------------------------------

namespace {

// Minimal JSON emission over a sink with `void Append(const char*, size_t)`.
// Everything here is allocation-free and async-signal-safe; the only callers
// that may allocate are the sinks themselves (StringSink).

template <typename Sink>
void Put(Sink* s, const char* text) {
  s->Append(text, std::strlen(text));
}

template <typename Sink>
void PutU64(Sink* s, std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  s->Append(p, static_cast<std::size_t>(buf + sizeof(buf) - p));
}

template <typename Sink>
void PutI64(Sink* s, std::int64_t v) {
  if (v < 0) {
    Put(s, "-");
    PutU64(s, static_cast<std::uint64_t>(-(v + 1)) + 1);
  } else {
    PutU64(s, static_cast<std::uint64_t>(v));
  }
}

// Fixed three decimals; clamps to +/-9e15 (flight records are diagnostics,
// not accounting).
template <typename Sink>
void PutDouble(Sink* s, double v) {
  if (!(v == v)) {  // NaN
    Put(s, "0");
    return;
  }
  if (v > 9e15) v = 9e15;
  if (v < -9e15) v = -9e15;
  if (v < 0) {
    Put(s, "-");
    v = -v;
  }
  const std::uint64_t scaled =
      static_cast<std::uint64_t>(v * 1000.0 + 0.5);
  PutU64(s, scaled / 1000);
  Put(s, ".");
  char frac[4] = {
      static_cast<char>('0' + scaled / 100 % 10),
      static_cast<char>('0' + scaled / 10 % 10),
      static_cast<char>('0' + scaled % 10), '\0'};
  Put(s, frac);
}

template <typename Sink>
void PutJsonString(Sink* s, const char* text) {
  Put(s, "\"");
  for (const char* p = text; *p != '\0'; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      char esc[3] = {'\\', *p, '\0'};
      Put(s, esc);
    } else if (c < 0x20) {
      Put(s, " ");
    } else {
      s->Append(p, 1);
    }
  }
  Put(s, "\"");
}

struct StringSink {
  std::string out;
  void Append(const char* s, std::size_t n) { out.append(s, n); }
};

// Buffered fd writer over a caller-provided (pre-allocated) buffer.
struct FdSink {
  int fd;
  char* buf;
  std::size_t cap;
  std::size_t len = 0;
  std::size_t written = 0;

  void Flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;  // best effort: a crash dump cannot retry forever
      off += static_cast<std::size_t>(n);
    }
    written += off;
    len = 0;
  }

  void Append(const char* s, std::size_t n) {
    while (n > 0) {
      if (len == cap) Flush();
      const std::size_t take = n < cap - len ? n : cap - len;
      std::memcpy(buf + len, s, take);
      len += take;
      s += take;
      n -= take;
    }
  }
};

}  // namespace

void Recorder::PreallocateDumpBuffers() const {
  if (!dump_buf_.empty()) return;
  dump_buf_.resize(64 * 1024);
  event_scratch_.resize(EventLog::Global().capacity());
  ring_scratch_.resize(options_.ring_capacity * kHistWidth);
  slow_scratch_.resize(sizeof(SlowSlot::Payload) + 8);
}

template <typename Sink>
void Recorder::WriteFlightRecord(Sink* sink, int crash_signal) const {
  Put(sink, "{\"flight_record\":1,\"generated_unix_us\":");
  PutI64(sink, NowUnixUs());
  Put(sink, ",\"crash_signal\":");
  PutI64(sink, crash_signal);
  Put(sink, ",\"tick_ms\":");
  PutI64(sink, static_cast<std::int64_t>(options_.tick.count()));
  Put(sink, ",\"ring_capacity\":");
  PutU64(sink, options_.ring_capacity);
  Put(sink, ",\"ticks\":");
  PutU64(sink, ticks_.load(std::memory_order_acquire));

  // Per-metric ring summaries plus a short trailing series.
  Put(sink, ",\"metrics\":[");
  const std::size_t n = tracked_count_.load(std::memory_order_acquire);
  bool first_metric = true;
  for (std::size_t i = 0; i < n; ++i) {
    const MetricRing* ring = tracked_[i].ring;
    std::uint64_t* rows = ring_scratch_.data();
    // Timestamp scratch stays on the stack (bounded, signal-safe); rings
    // larger than this emit their newest 512 samples.
    std::int64_t ts_buf[512];
    const std::size_t max_samples =
        std::min<std::size_t>(ring->capacity - 1,
                              sizeof(ts_buf) / sizeof(ts_buf[0]));
    const std::size_t k = ring->CopyTrailing(rows, ts_buf, max_samples);
    if (k == 0) continue;
    const HistoryStats h =
        ComputeStats(ring->kind, rows, ts_buf, k, ring->width);
    if (!first_metric) Put(sink, ",");
    first_metric = false;
    Put(sink, "{\"name\":");
    PutJsonString(sink, tracked_[i].name);
    Put(sink, ",\"kind\":\"");
    Put(sink, KindName(ring->kind));
    Put(sink, "\",\"samples\":");
    PutU64(sink, h.samples);
    Put(sink, ",\"window_sec\":");
    PutDouble(sink, h.window_sec);
    Put(sink, ",\"first\":");
    PutI64(sink, h.first);
    Put(sink, ",\"last\":");
    PutI64(sink, h.last);
    Put(sink, ",\"min\":");
    PutI64(sink, h.min);
    Put(sink, ",\"max\":");
    PutI64(sink, h.max);
    Put(sink, ",\"avg\":");
    PutDouble(sink, h.avg);
    Put(sink, ",\"rate_per_sec\":");
    PutDouble(sink, h.rate_per_sec);
    Put(sink, ",\"p99\":");
    PutDouble(sink, h.p99);
    // Trailing raw series (newest-last): sampled values for counters and
    // gauges, cumulative observation counts for histograms.
    Put(sink, ",\"series\":[");
    const std::size_t series = k < 64 ? k : 64;
    for (std::size_t j = k - series; j < k; ++j) {
      if (j != k - series) Put(sink, ",");
      if (ring->kind == MetricSnapshot::Kind::kGauge) {
        PutI64(sink, static_cast<std::int64_t>(rows[j * ring->width]));
      } else {
        PutU64(sink, rows[j * ring->width]);
      }
    }
    Put(sink, "]}");
  }
  Put(sink, "]");

  // Recent events, oldest first.
  Put(sink, ",\"events\":[");
  const std::size_t num_events = EventLog::Global().SnapshotInto(
      event_scratch_.data(), event_scratch_.size());
  for (std::size_t i = 0; i < num_events; ++i) {
    const Event& e = event_scratch_[i];
    if (i != 0) Put(sink, ",");
    Put(sink, "{\"ts_unix_us\":");
    PutI64(sink, e.ts_unix_us);
    Put(sink, ",\"seq\":");
    PutU64(sink, e.seq);
    Put(sink, ",\"severity\":\"");
    Put(sink, SeverityName(e.severity));
    Put(sink, "\",\"subsystem\":");
    PutJsonString(sink, e.subsystem);
    Put(sink, ",\"message\":");
    PutJsonString(sink, e.message);
    Put(sink, "}");
  }
  Put(sink, "]");

  // Slow-execution exemplars, oldest retained first.
  Put(sink, ",\"slow_queries\":[");
  const SlowSlot* slots = slow_slots_.load(std::memory_order_acquire);
  if (slots != nullptr) {
    auto* payload =
        reinterpret_cast<SlowSlot::Payload*>(slow_scratch_.data());
    const std::uint64_t emitted = slow_seq_.load(std::memory_order_acquire);
    const std::uint64_t want =
        emitted < slow_capacity_ ? emitted : slow_capacity_;
    bool first_slow = true;
    for (std::uint64_t seq = emitted - want + 1; seq <= emitted; ++seq) {
      const SlowSlot& slot = slots[(seq - 1) % slow_capacity_];
      const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
      if (s1 != seq * 2) continue;
      slot.LoadInto(payload);
      if (slot.stamp.load(std::memory_order_acquire) != s1) continue;
      if (!first_slow) Put(sink, ",");
      first_slow = false;
      Put(sink, "{\"seq\":");
      PutU64(sink, payload->seq);
      Put(sink, ",\"ts_unix_us\":");
      PutI64(sink, payload->ts_unix_us);
      Put(sink, ",\"wall_ms\":");
      PutDouble(sink, payload->wall_ms);
      Put(sink, ",\"threshold_ms\":");
      PutDouble(sink, payload->threshold_ms);
      Put(sink, ",\"kind\":");
      PutJsonString(sink, payload->kind);
      Put(sink, ",\"label\":");
      PutJsonString(sink, payload->label);
      Put(sink, ",\"profile\":");
      // Already valid JSON (QueryProfile::ToJson) or the literal null.
      Put(sink, payload->profile_json);
      Put(sink, "}");
    }
  }
  Put(sink, "]}");
  Put(sink, "\n");
}

std::string Recorder::FlightRecordJson(int crash_signal) const {
  std::lock_guard<std::mutex> lock(dump_mu_);
  PreallocateDumpBuffers();
  StringSink sink;
  WriteFlightRecord(&sink, crash_signal);
  return std::move(sink.out);
}

Status Recorder::DumpNow(const std::string& path) const {
  const std::string json = FlightRecordJson(0);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open flight-record path '" + path +
                                   "'");
  }
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.close();
  if (!out) {
    return Status::InvalidArgument("short write to flight-record path '" +
                                   path + "'");
  }
  return Status::OK();
}

std::size_t Recorder::DumpToFdSignalSafe(int fd, int crash_signal) const {
  if (dump_buf_.empty()) return 0;  // Start/InstallCrashHandler never ran
  FdSink sink{fd, dump_buf_.data(), dump_buf_.size()};
  WriteFlightRecord(&sink, crash_signal);
  sink.Flush();
  return sink.written;
}

// ---- Crash handler ----------------------------------------------------------

namespace {

std::atomic<Recorder*> g_crash_recorder{nullptr};
char g_crash_dump_path[256] = {0};
std::atomic<bool> g_crash_dumping{false};

void CrashHandler(int sig) {
  // First crasher wins; a second signal (possibly *caused by* the dump) must
  // not recurse into it.
  if (!g_crash_dumping.exchange(true, std::memory_order_acq_rel)) {
    Recorder* recorder = g_crash_recorder.load(std::memory_order_acquire);
    if (recorder != nullptr && g_crash_dump_path[0] != '\0') {
      const int fd = ::open(g_crash_dump_path,
                            O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd >= 0) {
        recorder->DumpToFdSignalSafe(fd, sig);
        ::close(fd);
      }
    }
  }
  // SA_RESETHAND already restored the default action; re-raise so the
  // process terminates (and cores) the way it would have without us.
  ::raise(sig);
}

}  // namespace

void Recorder::InstallCrashHandler(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(dump_mu_);
    PreallocateDumpBuffers();
  }
  std::snprintf(g_crash_dump_path, sizeof(g_crash_dump_path), "%s",
                path.c_str());
  g_crash_recorder.store(this, std::memory_order_release);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (int sig : {SIGSEGV, SIGABRT, SIGTERM}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

}  // namespace tpset::obs
