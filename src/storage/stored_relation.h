// StoredRelation: a catalog relation backed by the run index.
//
// The executor's catalog used to hold a plain TpRelation, so every append
// epoch paid an O(n) MergeSortedAppend into it. A StoredRelation splits the
// physical layout into a *base level* (one big sorted TpRelation, the
// product of the last compaction) and a *tail* of sorted runs (run_index.h):
//
//  * AppendRun — O(batch) amortized. Validates the per-fact chain contract
//    against an O(1) fact-tail map (no binary search over n tuples), stamps
//    the run with its epoch (stale/duplicate epochs rejected) and hands it
//    to the RunIndex roll policy.
//  * View — the one logical sorted relation. Folds pending tail runs into
//    the base level (a merge through RunMergeIterator, witness re-armed) and
//    returns it; O(1) when no tails are pending. Query-side code — the
//    sequential and parallel sweep engines behind QueryExecutor::Find — sees
//    a single (fact, start)-sorted TpRelation regardless of how many
//    physical runs the appends left behind.
//  * ForEachTuple / Materialize — streaming and copying reads through the
//    merge iterator without folding anything (used by continuous-query
//    registration and Current()).
//  * Compact — explicit full merge of base + tails applying *retention*: a
//    monotone per-relation watermark retires every tuple whose interval ends
//    at or below it (a tuple straddling the watermark survives intact).
//    With a thread pool, the merge fans out over PartitionRunsByFact
//    fact-range partitions. Continuous queries that read the relation must
//    rebase their checkpoints afterwards (QueryExecutor::Retain drives
//    both; see incremental_set_op.h Rebase).
//
// The fact-tail map deliberately survives retention: the stream contract
// stays monotone per fact — forgetting history does not rewind time, so an
// append below an already-seen tail is still rejected.
//
// Thread safety: mutations (AppendRun, Compact, SetWatermark) follow the
// global single-writer contract, like every other context mutation. Reads
// are safe to run concurrently with each other: View's fold of tail runs
// into the base is a physical re-layout of identical logical content,
// guarded by an internal lock (the members it touches are mutable for
// exactly this reason). ForEachTuple holds that lock across the callback —
// the callback must not reenter the same StoredRelation.
#ifndef TPSET_STORAGE_STORED_RELATION_H_
#define TPSET_STORAGE_STORED_RELATION_H_

#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"
#include "storage/run_index.h"

namespace tpset {

class ThreadPool;

/// A run-indexed catalog relation. See the file comment.
class StoredRelation {
 public:
  StoredRelation() = default;
  /// Takes ownership of `base` as the base level. The relation must be
  /// (fact, start, end)-sorted with the witness armed (the executor
  /// validates at Register); the per-fact tail map is built in one O(n)
  /// scan.
  explicit StoredRelation(TpRelation base);
  ~StoredRelation();

  StoredRelation(const StoredRelation&) = delete;
  StoredRelation& operator=(const StoredRelation&) = delete;

  const std::shared_ptr<TpContext>& context() const { return base_.context(); }
  const Schema& schema() const { return base_.schema(); }
  const std::string& name() const { return base_.name(); }

  /// Total logical tuple count (base + tail runs).
  std::size_t size() const;
  bool empty() const { return size() == 0; }

  /// Appends one (fact, start, end)-sorted batch as a run: O(batch)
  /// amortized. Every tuple must extend its fact's timeline (start at or
  /// after the fact's stored tail end — checked against the O(1) tail map,
  /// nothing is mutated on failure) and `epoch` must exceed every previously
  /// accepted epoch. Duplicate-freeness within the batch follows from the
  /// chain check; AppendLog validates the richer row-level contract first.
  Status AppendRun(std::vector<TpTuple> batch, EpochId epoch);

  /// Last stored interval end of `fact` across base and tails, or
  /// {false, 0} when the fact was never appended. O(1); counts a tail hit.
  std::pair<bool, TimePoint> FactTail(FactId fact) const;

  /// Maximum interval end ever stored (kNoWatermark while empty). Monotone
  /// and unaffected by retention — it tracks how far event time has
  /// advanced, which is what continuous-query low watermarks fold over.
  TimePoint max_interval_end() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_interval_end_;
  }

  /// Sets the retention watermark (monotone: lowering it is rejected).
  /// Takes effect at the next Compact(); QueryExecutor::Retain couples the
  /// two and rebases dependent continuous queries.
  Status SetWatermark(TimePoint watermark);
  TimePoint watermark() const { return watermark_; }
  bool has_watermark() const { return watermark_ != kNoWatermark; }

  /// Merges base + tail runs into a fresh base level, retiring tuples at or
  /// below the watermark. O(n); with `pool`, fact-range partitions merge
  /// concurrently (PartitionRunsByFact) and concatenate in order.
  void Compact(ThreadPool* pool = nullptr);

  /// The one logical sorted relation, witness armed. Folds pending tail
  /// runs into the base level first (no retention — that is Compact's job);
  /// O(1) when the tail is empty. The reference stays valid for the
  /// StoredRelation's lifetime; its tuple storage may move on later folds,
  /// like any appended-to relation.
  const TpRelation& View() const;

  /// Streams every tuple in (fact, start, end) order through the merge
  /// iterator without folding or copying. `fn` must not reenter this
  /// StoredRelation (the internal lock is held).
  template <typename Fn>
  void ForEachTuple(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TupleSpan> spans = SpansLocked();
    for (RunMergeIterator it(spans); it.Valid(); it.Next()) fn(it.Get());
  }

  /// Materializes the logical content into a fresh TpRelation (same context,
  /// schema and name; witness armed) without mutating the storage layout.
  TpRelation Materialize() const;

  /// Pending tail runs (0 right after a compaction or View fold).
  std::size_t run_count() const;
  /// Latest accepted append epoch (0 before any append).
  EpochId last_epoch() const;
  /// Counter snapshot, by value: concurrent reads may fold (View) and bump
  /// the counters under the lock, so handing out a reference would race.
  StorageStats stats() const;

 private:
  /// Spans of the base level plus every tail run, oldest first.
  std::vector<TupleSpan> SpansLocked() const;
  /// Merges all spans into a fresh base honoring `watermark`; requires mu_.
  void CompactLocked(TimePoint watermark, ThreadPool* pool) const;

  // base_ and tail_ describe one logical relation in two physical layouts;
  // View() folds the second into the first under mu_, which is why they are
  // mutable (see the thread-safety note above).
  mutable TpRelation base_;
  mutable RunIndex tail_;
  mutable StorageStats stats_;
  mutable std::mutex mu_;
  std::unordered_map<FactId, TimePoint> fact_tails_;
  TimePoint max_interval_end_ = kNoWatermark;
  TimePoint watermark_ = kNoWatermark;
  /// Watermark the base level was last retention-compacted to; lets
  /// Compact() skip the O(n) re-merge when nothing changed.
  TimePoint compacted_watermark_ = kNoWatermark;
  /// True when a View() fold moved tuples into the base without applying a
  /// set watermark — the next Compact() must not skip.
  mutable bool base_unretained_ = false;
};

}  // namespace tpset

#endif  // TPSET_STORAGE_STORED_RELATION_H_
