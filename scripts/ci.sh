#!/usr/bin/env bash
# Tier-1 verification, as CI runs it: configure with warnings-as-errors,
# build everything (library, tests, benches, examples), run ctest, then
# smoke-run bench_parallel at a tiny scale so the bench binary and its
# BENCH_parallel.json emitter cannot bitrot. A second build under
# ThreadSanitizer reruns the concurrency-labelled test subset (morsel
# scheduler, staged/overlapped apply, incremental staged delta apply,
# storage epoch fence).
#
# Env knobs: TPSET_TSAN_ONLY=1 runs just the TSan stage (the dedicated CI
# job); TPSET_SKIP_TSAN=1 skips it (the main job, which runs everything
# else).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

run_tsan() {
  # ThreadSanitizer over the concurrency subset: a data race in the
  # work-stealing deques, the overlapped splices or the epoch fence fails
  # CI here, not in production.
  cmake -B "$TSAN_BUILD_DIR" -S . -DTPSET_TSAN=ON
  cmake --build "$TSAN_BUILD_DIR" -j "$JOBS"
  ctest --test-dir "$TSAN_BUILD_DIR" -L concurrency --output-on-failure -j "$JOBS"
  echo "tsan concurrency suite OK"
}

if [[ "${TPSET_TSAN_ONLY:-0}" == "1" ]]; then
  run_tsan
  exit 0
fi

cmake -B "$BUILD_DIR" -S . -DTPSET_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Bench smoke: ~2K tuples/relation, JSON into the build dir (the committed
# BENCH_parallel.json is produced by a full-scale manual run, not by CI).
TPSET_BENCH_SCALE=0.002 "$BUILD_DIR/bench/bench_parallel" \
  --json "$BUILD_DIR/BENCH_parallel.json" \
  --metrics "$BUILD_DIR/metrics.jsonl" > "$BUILD_DIR/bench_parallel.out"
test -s "$BUILD_DIR/BENCH_parallel.json"
grep -q '"operations"' "$BUILD_DIR/BENCH_parallel.json"
grep -q '"skew"' "$BUILD_DIR/BENCH_parallel.json"
grep -q '"host_cpus"' "$BUILD_DIR/BENCH_parallel.json"
grep -q '"obs"' "$BUILD_DIR/BENCH_parallel.json"
grep -q '"kernel_ab"' "$BUILD_DIR/BENCH_parallel.json"
echo "bench_parallel smoke OK"

# Kernel A/B gate: the columnar sweep must emit the identical window stream
# (bench_parallel already exits non-zero on divergence; "identical": true is
# the belt to that suspender) and must not regress the pure t1 sweep below
# scalar on the majority of operations. The 1.25x tolerance absorbs smoke-
# scale timer noise — the committed full-scale run is where the >= 1.3x
# speedup claim is checked by hand.
python3 - "$BUILD_DIR/BENCH_parallel.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
ab = doc["kernel_ab"]
assert len(ab) == 3, f"expected 3 kernel_ab operations, got {len(ab)}"
bad = [e["operation"] for e in ab if not e["identical"]]
assert not bad, f"columnar kernel diverged from scalar on: {bad}"
slow = [e["operation"] for e in ab
        if e["sweep_columnar_t1_ms"] > 1.25 * e["sweep_scalar_t1_ms"]]
assert len(slow) <= 1, (
    f"columnar t1 sweep regressed vs scalar on {slow} "
    f"(> 1.25x tolerance on more than one operation)")
print("kernel A/B gate OK")
EOF

# Metrics export validation: the registry scrape the bench just wrote must
# match the checked-in schema — every required metric present with the right
# type, counters non-negative, histogram bucket sums consistent. A malformed
# export (dropped instrumentation, renamed metric, broken emitter) fails the
# build here.
python3 scripts/validate_metrics.py "$BUILD_DIR/metrics.jsonl" \
  scripts/metrics_schema.json
echo "metrics export OK"

# Streaming smoke: tiny relations, verifies the incremental-vs-recompute
# sweep and its BENCH_streaming.json emitter still run end to end (the
# committed BENCH_streaming.json comes from a full-scale manual run).
TPSET_BENCH_SCALE=0.002 "$BUILD_DIR/bench/bench_streaming" \
  --json "$BUILD_DIR/BENCH_streaming.json" > "$BUILD_DIR/bench_streaming.out"
test -s "$BUILD_DIR/BENCH_streaming.json"
grep -q '"points"' "$BUILD_DIR/BENCH_streaming.json"
echo "bench_streaming smoke OK"

# Flight-record smoke: drive a continuous workload through the REPL (which
# starts the obs::Recorder collector), hold the session open long enough for
# a few collector ticks, dump the flight record, and validate it against the
# checked-in schema. A malformed dump (broken seqlock read, bad JSON
# formatter, dropped field) fails the build here — the same validator is the
# oracle for the crash-handler test in tests/recorder_test.cc.
{
  printf '\\watch w1 c - (a | b)\n'
  printf '\\append a milk 12 14 0.5\n'
  printf '\\append b beer 1 9 0.25\n'
  printf '\\append a milk 2 6 0.75\n'
  sleep 1
  printf '\\dump %s/flight_record.json\n' "$BUILD_DIR"
  printf '\\quit\n'
} | "$BUILD_DIR/examples/query_repl" > "$BUILD_DIR/repl_smoke.out"
python3 scripts/validate_flight_record.py "$BUILD_DIR/flight_record.json" \
  scripts/flight_record_schema.json
echo "flight record smoke OK"

# Introspection-server smoke: start the REPL with --serve=0 (ephemeral port)
# over a live parallel workload — 128-tuple CSV relations so the columnar
# kernel and morsel scheduler register their metric families — then scrape
# every contract from outside the process: /healthz, /metrics (Prometheus and
# JSON, the latter against metrics_schema.json), /flight against the
# flight-record schema, and /queries for continuous-query state. The wire
# and the in-process exporters must agree because they share one snapshot
# path (obs::TakeScrape).
python3 - "$BUILD_DIR" <<'EOF'
import sys
build = sys.argv[1]
for rel in ("a", "b", "c"):
    with open(f"{build}/serve_{rel}.csv", "w") as f:
        f.write("Product:str,ts,te,p,var\n")
        for i in range(128):
            f.write(f"p{i % 16},{i},{i + 7},0.5,{rel}x{i}\n")
EOF
SERVE_FIFO="$BUILD_DIR/serve_smoke.fifo"
rm -f "$SERVE_FIFO"; mkfifo "$SERVE_FIFO"
"$BUILD_DIR/examples/query_repl" --threads=2 --serve=0 \
  a="$BUILD_DIR/serve_a.csv" b="$BUILD_DIR/serve_b.csv" \
  c="$BUILD_DIR/serve_c.csv" \
  < "$SERVE_FIFO" > "$BUILD_DIR/serve_smoke.out" 2>&1 &
SERVE_PID=$!
exec 9> "$SERVE_FIFO"  # hold the fifo open so the REPL's stdin stays live
printf '\\watch w1 c - (a | b)\n' >&9
printf 'c - (a | b)\n' >&9
printf '\\append a milk 200 204 0.5\n' >&9
for _ in $(seq 1 100); do
  grep -q 'serving on http://' "$BUILD_DIR/serve_smoke.out" && break
  sleep 0.1
done
SERVE_ADDR="$(grep -o 'http://[0-9.]*:[0-9]*' "$BUILD_DIR/serve_smoke.out" \
  | head -1 | sed 's#http://##')"
test -n "$SERVE_ADDR"
sleep 1  # a few collector ticks so /flight and /top carry ring history
curl -fsS "http://$SERVE_ADDR/healthz" | grep -q 'ok'
curl -fsS "http://$SERVE_ADDR/readyz" | grep -q 'ready'
curl -fsS "http://$SERVE_ADDR/metrics" \
  | grep -q '^tpset_net_http_requests_total '
curl -fsS "http://$SERVE_ADDR/metrics?format=json" \
  > "$BUILD_DIR/serve_metrics.jsonl"
python3 scripts/validate_metrics.py "$BUILD_DIR/serve_metrics.jsonl" \
  scripts/metrics_schema.json
curl -fsS "http://$SERVE_ADDR/flight" > "$BUILD_DIR/serve_flight.json"
python3 scripts/validate_flight_record.py "$BUILD_DIR/serve_flight.json" \
  scripts/flight_record_schema.json
curl -fsS "http://$SERVE_ADDR/queries" | grep -q '"name":"w1"'
printf '\\quit\n' >&9
exec 9>&-
wait "$SERVE_PID"
rm -f "$SERVE_FIFO"
echo "introspection server smoke OK"

# Storage smoke: run-index append path vs MergeSortedAppend, compaction and
# the retention-bounds-resident-state sweep, plus the BENCH_storage.json
# emitter (the committed BENCH_storage.json comes from a full-scale run).
TPSET_BENCH_SCALE=0.002 "$BUILD_DIR/bench/bench_storage" \
  --json "$BUILD_DIR/BENCH_storage.json" > "$BUILD_DIR/bench_storage.out"
test -s "$BUILD_DIR/BENCH_storage.json"
grep -q '"append"' "$BUILD_DIR/BENCH_storage.json"
grep -q '"retention"' "$BUILD_DIR/BENCH_storage.json"
grep -q '"mixed"' "$BUILD_DIR/BENCH_storage.json"

# Snapshot-isolation gate: with a writer and background compaction active,
# the lock-free snapshot reader's p99 full-scan latency must not regress
# against the locked-View emulation (the pre-snapshot reader-blocks-writer
# engine). The 1.5x tolerance absorbs smoke-scale timer noise; the committed
# full-scale BENCH_storage.json is where the <= 1x claim is checked by hand.
python3 - "$BUILD_DIR/BENCH_storage.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
mixed = doc["mixed"]
snap, locked = mixed["snapshot"], mixed["locked"]
assert snap["reads"] > 0 and locked["reads"] > 0, \
    f"mixed bench sampled no reads: {mixed}"
assert snap["reader_p99_ms"] <= 1.5 * locked["reader_p99_ms"] + 0.005, (
    f"snapshot reader p99 {snap['reader_p99_ms']}ms regressed vs locked-View "
    f"baseline {locked['reader_p99_ms']}ms (> 1.5x + 5us smoke tolerance)")
print("snapshot mixed read/write gate OK")
EOF
echo "bench_storage smoke OK"

if [[ "${TPSET_SKIP_TSAN:-0}" != "1" ]]; then
  run_tsan
fi
