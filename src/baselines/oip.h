// OIP baseline: Overlap Interval Partition join (Dignös et al. [13]).
//
// OIP splits the time domain into k granules of equal size; a partition is a
// range of adjacent granules, and every tuple is assigned to the smallest
// partition that fits its interval. The join enumerates pairs of partitions
// with overlapping granule ranges (fast) and runs a nested loop over their
// tuples (slow). Following the paper's §VII-A setup, the implementation is
// extended for TP set intersection by first splitting each input into
// per-fact groups, running OIP partitioning + join per group and merging the
// results — which is exactly the overhead that hurts OIP when the number of
// facts approaches the number of tuples (Fig. 9b), while heavily overlapping
// intervals inflate partition sizes and the nested loop (Figs. 8, 9a).
#ifndef TPSET_BASELINES_OIP_H_
#define TPSET_BASELINES_OIP_H_

#include "common/setop.h"
#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// OIP tuning and counters.
struct OipOptions {
  /// Number of granules per fact group; 0 = auto (≈ sqrt of group size,
  /// clamped to [1, 4096]).
  std::size_t num_granules = 0;
};

struct OipStats {
  std::size_t partitions = 0;       ///< total partitions over all groups
  std::size_t pairs_tested = 0;     ///< nested-loop tuple pairs
  std::size_t output_tuples = 0;
};

/// Computes r ∩Tp s with the fact-grouped OIP join. Only kIntersect is
/// supported (Table II): OIP finds overlapping pairs; difference and union
/// need non-overlap intervals it cannot produce.
Result<TpRelation> OipSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                            const OipOptions& options = {},
                            OipStats* stats = nullptr);

}  // namespace tpset

#endif  // TPSET_BASELINES_OIP_H_
