// Lineage expression parser.
#include <gtest/gtest.h>

#include "common/random.h"
#include "lineage/lineage.h"
#include "lineage/parse.h"

namespace tpset {
namespace {

class ParseTest : public ::testing::Test {
 protected:
  LineageManager mgr_;
  VarTable vars_;
  VarId a1_ = *vars_.AddNamed("a1", 0.3);
  VarId b1_ = *vars_.AddNamed("b1", 0.6);
  VarId c1_ = *vars_.AddNamed("c1", 0.7);
};

TEST_F(ParseTest, Atom) {
  Result<LineageId> r = ParseLineage("a1", &mgr_, vars_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, mgr_.MakeVar(a1_));
}

TEST_F(ParseTest, PrecedenceNotOverAndOverOr) {
  Result<LineageId> r = ParseLineage("a1 | b1 & c1", &mgr_, vars_);
  ASSERT_TRUE(r.ok());
  LineageId expected =
      mgr_.MakeOr(mgr_.MakeVar(a1_), mgr_.MakeAnd(mgr_.MakeVar(b1_), mgr_.MakeVar(c1_)));
  EXPECT_EQ(*r, expected);

  r = ParseLineage("!a1 & b1", &mgr_, vars_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, mgr_.MakeAnd(mgr_.MakeNot(mgr_.MakeVar(a1_)), mgr_.MakeVar(b1_)));
}

TEST_F(ParseTest, Parentheses) {
  Result<LineageId> r = ParseLineage("c1 & !(a1 | b1)", &mgr_, vars_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(mgr_.ToString(*r, vars_), "c1∧¬(a1∨b1)");
}

TEST_F(ParseTest, RoundTripThroughToString) {
  for (const char* text :
       {"a1", "!a1", "a1&b1", "a1|b1", "c1&!(a1|b1)", "(a1|b1)&c1"}) {
    Result<LineageId> r = ParseLineage(text, &mgr_, vars_);
    ASSERT_TRUE(r.ok()) << text;
    std::string printed = mgr_.ToString(*r, vars_, /*ascii=*/true);
    Result<LineageId> r2 = ParseLineage(printed, &mgr_, vars_);
    ASSERT_TRUE(r2.ok()) << printed;
    EXPECT_EQ(*r, *r2) << "parse(print(f)) == f via hash-consing";
  }
}

TEST_F(ParseTest, Constants) {
  EXPECT_EQ(*ParseLineage("true", &mgr_, vars_), mgr_.True());
  EXPECT_EQ(*ParseLineage("false", &mgr_, vars_), mgr_.False());
  EXPECT_EQ(*ParseLineage("null", &mgr_, vars_), kNullLineage);
}

TEST_F(ParseTest, Whitespace) {
  EXPECT_TRUE(ParseLineage("  a1  &  ! ( b1 | c1 ) ", &mgr_, vars_).ok());
}

// Random token soup must either parse or fail cleanly — never crash or
// hang — and successfully parsed strings must re-parse to the same formula
// after printing.
TEST_F(ParseTest, FuzzRandomTokenSoup) {
  const std::string alphabet = "a1b1c1&|!()  ";
  Rng rng(1234);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input;
    std::size_t len = rng.Below(24);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Below(alphabet.size())]);
    }
    Result<LineageId> r = ParseLineage(input, &mgr_, vars_);
    if (r.ok() && *r != kNullLineage) {
      ++parsed_ok;
      std::string printed = mgr_.ToString(*r, vars_, /*ascii=*/true);
      Result<LineageId> r2 = ParseLineage(printed, &mgr_, vars_);
      ASSERT_TRUE(r2.ok()) << input << " -> " << printed;
      EXPECT_EQ(*r, *r2) << input;
    }
  }
  EXPECT_GT(parsed_ok, 0) << "fuzz should occasionally produce valid input";
}

TEST_F(ParseTest, Errors) {
  EXPECT_FALSE(ParseLineage("", &mgr_, vars_).ok());
  EXPECT_FALSE(ParseLineage("a1 &", &mgr_, vars_).ok());
  EXPECT_FALSE(ParseLineage("(a1", &mgr_, vars_).ok());
  EXPECT_FALSE(ParseLineage("a1 b1", &mgr_, vars_).ok()) << "trailing input";
  EXPECT_FALSE(ParseLineage("unknown", &mgr_, vars_).ok()) << "unknown variable";
  EXPECT_FALSE(ParseLineage("null | a1", &mgr_, vars_).ok())
      << "null only stands alone";
  EXPECT_FALSE(ParseLineage("&a1", &mgr_, vars_).ok());
}

}  // namespace
}  // namespace tpset
