#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/events.h"
#include "obs/metrics.h"

namespace tpset::net {

namespace {

obs::Counter& RequestsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_net_http_requests_total",
      "HTTP responses written by the introspection server (any status)");
  return c;
}

obs::Counter& ErrorsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_net_http_errors_total",
      "HTTP responses with a 4xx/5xx status (parse errors, unknown paths, "
      "timeouts, saturation)");
  return c;
}

obs::Counter& SaturatedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_net_http_saturated_total",
      "connections shed with an immediate 503 because the pending queue was "
      "full");
  return c;
}

obs::Histogram& RequestLatencyHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tpset_net_http_request_usec",
      "wall microseconds per served connection (read to response written)");
  return h;
}

obs::Gauge& PendingGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tpset_net_http_pending_connections",
      "accepted connections waiting for a worker");
  return g;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string PercentDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 2 < text.size()) {
      const int hi = HexValue(text[i + 1]), lo = HexValue(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(text[i] == '+' ? ' ' : text[i]);
  }
  return out;
}

std::string_view TrimSpace(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Writes all of `data` to `fd`, tolerating short writes; gives up on error
/// or send-timeout expiry (the peer stopped reading — abandon, don't block).
bool SendAll(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

// ---- HttpRequest / HttpResponse ---------------------------------------------

std::string HttpRequest::QueryParam(const std::string& name,
                                    const std::string& fallback) const {
  auto it = query.find(name);
  return it == query.end() ? fallback : it->second;
}

HttpResponse HttpResponse::Text(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Json(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Html(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/html; charset=utf-8";
  r.body = std::move(body);
  return r;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Response";
  }
}

// ---- RequestParser ----------------------------------------------------------

RequestParser::RequestParser(std::size_t max_header_bytes,
                             std::size_t max_body_bytes)
    : max_header_bytes_(max_header_bytes < 64 ? 64 : max_header_bytes),
      max_body_bytes_(max_body_bytes) {}

RequestParser::State RequestParser::Fail(int status) {
  state_ = State::kError;
  error_status_ = status;
  buffer_.clear();
  return state_;
}

RequestParser::State RequestParser::Feed(const char* data, std::size_t n) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(data, n);
  if (!in_body_) {
    // Look for the end of the header block. CRLFCRLF per spec; bare LFLF is
    // tolerated (hand-typed requests over netcat).
    std::size_t header_end = buffer_.find("\r\n\r\n");
    std::size_t sep_len = 4;
    if (header_end == std::string::npos) {
      header_end = buffer_.find("\n\n");
      sep_len = 2;
    }
    if (header_end == std::string::npos) {
      if (buffer_.size() > max_header_bytes_) return Fail(431);
      return State::kNeedMore;
    }
    if (header_end > max_header_bytes_) return Fail(431);
    const State parsed = ParseHeaders(header_end);
    if (parsed == State::kError) return parsed;
    // Shift any body bytes that arrived with the headers to the front.
    buffer_.erase(0, header_end + sep_len);
    in_body_ = true;
  }
  if (buffer_.size() >= body_expected_) {
    request_.body = buffer_.substr(0, body_expected_);
    buffer_.clear();
    state_ = State::kDone;
  }
  return state_;
}

RequestParser::State RequestParser::ParseHeaders(std::size_t header_end) {
  const std::string_view block(buffer_.data(), header_end);

  // Request line: METHOD SP request-target SP HTTP/major.minor
  const std::size_t line_end = block.find('\n');
  std::string_view line =
      TrimSpace(block.substr(0, std::min(line_end, block.size())));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) return Fail(400);
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = TrimSpace(line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target[0] != '/') return Fail(400);
  for (char c : method) {
    if (!std::isupper(static_cast<unsigned char>(c))) return Fail(400);
  }
  if (version.rfind("HTTP/", 0) != 0) return Fail(400);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return Fail(505);
  request_.method.assign(method);
  request_.target.assign(target);

  // Split target into path + decoded query parameters.
  const std::size_t qmark = target.find('?');
  request_.path = PercentDecode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    std::string_view qs = target.substr(qmark + 1);
    while (!qs.empty()) {
      const std::size_t amp = qs.find('&');
      const std::string_view pair = qs.substr(0, amp);
      const std::size_t eq = pair.find('=');
      if (!pair.empty()) {
        request_.query[PercentDecode(pair.substr(0, eq))] =
            eq == std::string_view::npos
                ? std::string()
                : PercentDecode(pair.substr(eq + 1));
      }
      if (amp == std::string_view::npos) break;
      qs.remove_prefix(amp + 1);
    }
  }

  // Header fields: Name ':' value, one per line.
  std::size_t pos = line_end == std::string_view::npos ? block.size()
                                                       : line_end + 1;
  while (pos < block.size()) {
    std::size_t eol = block.find('\n', pos);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view raw = TrimSpace(block.substr(pos, eol - pos));
    pos = eol + 1;
    if (raw.empty()) continue;
    const std::size_t colon = raw.find(':');
    if (colon == std::string_view::npos || colon == 0) return Fail(400);
    std::string name(TrimSpace(raw.substr(0, colon)));
    std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    request_.headers[std::move(name)] =
        std::string(TrimSpace(raw.substr(colon + 1)));
  }

  // Body length. Chunked encoding is not supported (the introspection plane
  // is GET-shaped); reject rather than misread the framing.
  auto te = request_.headers.find("transfer-encoding");
  if (te != request_.headers.end() && !te->second.empty()) return Fail(400);
  auto cl = request_.headers.find("content-length");
  if (cl != request_.headers.end()) {
    const std::string& text = cl->second;
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
      return Fail(400);
    }
    errno = 0;
    const unsigned long long v = std::strtoull(text.c_str(), nullptr, 10);
    if (errno != 0 || v > max_body_bytes_) return Fail(413);
    body_expected_ = static_cast<std::size_t>(v);
  }
  return State::kNeedMore;
}

// ---- HttpServer lifecycle ---------------------------------------------------

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.max_queued_connections < 1) options_.max_queued_connections = 1;
  if (options_.request_timeout_ms < 10) options_.request_timeout_ms = 10;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& path, Handler handler) {
  routes_[path] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("HTTP server is already running on " +
                                   address());
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(fd, 128) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("getsockname: " + err);
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;

  stop_requested_ = false;
  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.worker_threads);
  for (std::size_t i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  acceptor_ = std::thread([this]() { AcceptLoop(); });
  obs::EmitEvent(obs::Severity::kInfo, "net",
                 "http server listening addr=%.32s port=%u workers=%zu",
                 options_.bind_address.c_str(), static_cast<unsigned>(port_),
                 options_.worker_threads);
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_requested_ = true;
  }
  queue_cv_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Workers drain everything already accepted (graceful), then exit on the
  // empty queue + stop flag.
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  running_.store(false, std::memory_order_release);
  obs::EmitEvent(obs::Severity::kInfo, "net",
                 "http server stopped port=%u served=%llu shed=%llu",
                 static_cast<unsigned>(port_),
                 static_cast<unsigned long long>(
                     served_.load(std::memory_order_relaxed)),
                 static_cast<unsigned long long>(
                     saturated_.load(std::memory_order_relaxed)));
}

std::string HttpServer::address() const {
  return options_.bind_address + ":" + std::to_string(port_);
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.saturated = saturated_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  return s;
}

// ---- Accept loop ------------------------------------------------------------

void HttpServer::AcceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stop_requested_) return;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout (recheck stop) or EINTR
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // Per-connection socket deadlines: a read that stalls past the request
    // timeout wakes ServeConnection (which checks the absolute deadline); a
    // peer that stops reading its response unblocks send() the same way.
    timeval tv;
    tv.tv_sec = options_.request_timeout_ms / 1000;
    tv.tv_usec = (options_.request_timeout_ms % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (stop_requested_ || pending_.size() >= options_.max_queued_connections) {
        shed = true;
      } else {
        pending_.push_back(conn);
        PendingGauge().Set(static_cast<std::int64_t>(pending_.size()));
      }
    }
    if (shed) {
      // Load-shedding at the door: answer 503 without consuming a worker.
      // Observability must not become the DoS vector — beyond the bounded
      // queue, every connection costs one canned write and nothing else.
      static constexpr char k503[] =
          "HTTP/1.1 503 Service Unavailable\r\n"
          "Content-Type: text/plain; charset=utf-8\r\n"
          "Content-Length: 21\r\nConnection: close\r\n\r\n"
          "server saturated, 503";
      SendAll(conn, k503, sizeof(k503) - 1);
      ::close(conn);
      saturated_.fetch_add(1, std::memory_order_relaxed);
      SaturatedCounter().Increment();
      ErrorsCounter().Increment();
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    queue_cv_.notify_one();
  }
}

// ---- Workers ----------------------------------------------------------------

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this]() { return stop_requested_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop requested and fully drained
      fd = pending_.front();
      pending_.pop_front();
      PendingGauge().Set(static_cast<std::int64_t>(pending_.size()));
    }
    ServeConnection(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto deadline =
      t0 + std::chrono::milliseconds(options_.request_timeout_ms);
  RequestParser parser(options_.max_header_bytes, options_.max_body_bytes);
  char buf[4096];
  bool closed_early = false;

  while (parser.state() == RequestParser::State::kNeedMore) {
    if (std::chrono::steady_clock::now() >= deadline) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      WriteResponse(fd, HttpResponse::Text(408, "request timeout\n"),
                    /*head_only=*/false);
      ::close(fd);
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      parser.Feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;  // interrupted or SO_RCVTIMEO tick; the deadline check rules
    }
    closed_early = true;  // peer hung up mid-request
    break;
  }

  if (parser.state() == RequestParser::State::kError) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    WriteResponse(fd,
                  HttpResponse::Text(parser.error_status(),
                                     std::string(StatusReason(
                                         parser.error_status())) +
                                         "\n"),
                  /*head_only=*/false);
    ::close(fd);
    return;
  }
  if (closed_early || parser.state() != RequestParser::State::kDone) {
    ::close(fd);  // nothing (or half a request) arrived; no one is listening
    return;
  }

  const HttpRequest& request = parser.request();
  const bool head_only = request.method == "HEAD";
  HttpResponse response;
  if (request.method != "GET" && !head_only) {
    response = HttpResponse::Text(
        405, "method " + request.method + " not allowed; this server is "
             "GET/HEAD only\n");
  } else {
    auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response = HttpResponse::Text(404, "no endpoint " + request.path + "\n");
    } else {
      try {
        response = it->second(request);
      } catch (const std::exception& e) {
        response = HttpResponse::Text(
            500, std::string("handler failed: ") + e.what() + "\n");
      } catch (...) {
        response = HttpResponse::Text(500, "handler failed\n");
      }
    }
  }
  WriteResponse(fd, response, head_only);
  ::close(fd);
  RequestLatencyHistogram().Observe(obs::ElapsedUsec(t0));
}

void HttpServer::WriteResponse(int fd, const HttpResponse& response,
                               bool head_only) {
  std::string out;
  out.reserve(128 + (head_only ? 0 : response.body.size()));
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (!head_only) out += response.body;
  SendAll(fd, out.data(), out.size());
  served_.fetch_add(1, std::memory_order_relaxed);
  RequestsCounter().Increment();
  if (response.status >= 400) ErrorsCounter().Increment();
}

}  // namespace tpset::net
