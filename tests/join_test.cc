// TP equi-join: correctness, snapshot reducibility, duplicate-freeness.
#include <gtest/gtest.h>

#include "algebra/join.h"
#include "lawa/set_ops.h"
#include "lineage/eval.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

TEST(JoinTest, JoinOnFactEqualsIntersectionModuloSchema) {
  // For equal single-attribute schemas, joining on the fact produces the
  // same intervals and lineages as ∩Tp; only the output fact is doubled.
  SupermarketDb db;
  Result<TpRelation> joined = TpJoinOnFact(db.a, db.c);
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  TpRelation intersected = LawaIntersect(db.a, db.c);
  ASSERT_EQ(joined->size(), intersected.size());
  const LineageManager& mgr = db.ctx->lineage();
  // Combined facts intern fresh ids, so the sort orders differ; compare as
  // multisets of (interval, canonical lineage).
  auto project = [&](const TpRelation& rel) {
    std::vector<std::pair<std::string, std::string>> keys;
    for (const TpTuple& t : rel.tuples()) {
      keys.emplace_back(ToString(t.t), mgr.CanonicalKey(t.lineage));
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(project(*joined), project(intersected));
  for (std::size_t i = 0; i < joined->size(); ++i) {
    EXPECT_EQ(joined->FactOf(i).size(), 2u) << "concatenated fact";
  }
  EXPECT_TRUE(ValidateDuplicateFree(*joined).ok());
}

TEST(JoinTest, MultiAttributeEquiJoin) {
  auto ctx = std::make_shared<TpContext>();
  Schema sales({"product", "store"}, {ValueType::kString, ValueType::kString});
  Schema supply({"item", "supplier"}, {ValueType::kString, ValueType::kString});
  TpRelation r(ctx, sales, "sales");
  TpRelation s(ctx, supply, "supply");
  ASSERT_TRUE(r.AddBase({Value(std::string("milk")), Value(std::string("s1"))},
                        Interval(0, 10), 0.5, "r1")
                  .ok());
  ASSERT_TRUE(r.AddBase({Value(std::string("tea")), Value(std::string("s1"))},
                        Interval(0, 10), 0.5, "r2")
                  .ok());
  ASSERT_TRUE(s.AddBase({Value(std::string("milk")), Value(std::string("acme"))},
                        Interval(5, 20), 0.5, "s1v")
                  .ok());
  ASSERT_TRUE(s.AddBase({Value(std::string("milk")), Value(std::string("blue"))},
                        Interval(8, 12), 0.5, "s2v")
                  .ok());
  // Join sales.product = supply.item.
  Result<TpRelation> joined = TpEquiJoin(r, s, {0}, {0});
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  // milk x acme over [5,10), milk x blue over [8,10); tea matches nothing.
  ASSERT_EQ(joined->size(), 2u);
  EXPECT_EQ(joined->schema().num_attributes(), 4u);
  EXPECT_TRUE(ValidateDuplicateFree(*joined).ok());
  bool saw_acme = false, saw_blue = false;
  for (std::size_t i = 0; i < joined->size(); ++i) {
    std::string f = ToString(joined->FactOf(i));
    if (f.find("acme") != std::string::npos) {
      saw_acme = true;
      EXPECT_EQ((*joined)[i].t, Interval(5, 10));
      EXPECT_EQ(joined->LineageString(i), "r1∧s1v");
    }
    if (f.find("blue") != std::string::npos) {
      saw_blue = true;
      EXPECT_EQ((*joined)[i].t, Interval(8, 10));
    }
  }
  EXPECT_TRUE(saw_acme && saw_blue);
}

TEST(JoinTest, OverlappingSameKeyTuplesAllPair) {
  // Two s tuples share the key but differ in a non-key attribute and
  // overlap in time — both must pair with the covering r tuple.
  auto ctx = std::make_shared<TpContext>();
  Schema one({"k"}, {ValueType::kString});
  Schema two({"k", "v"}, {ValueType::kString, ValueType::kString});
  TpRelation r(ctx, one, "r");
  TpRelation s(ctx, two, "s");
  ASSERT_TRUE(r.AddBase({Value(std::string("k1"))}, Interval(0, 100), 0.5, "x").ok());
  ASSERT_TRUE(s.AddBase({Value(std::string("k1")), Value(std::string("a"))},
                        Interval(10, 50), 0.5, "y1")
                  .ok());
  ASSERT_TRUE(s.AddBase({Value(std::string("k1")), Value(std::string("b"))},
                        Interval(20, 60), 0.5, "y2")
                  .ok());
  Result<TpRelation> joined = TpEquiJoin(r, s, {0}, {0});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 2u);
}

TEST(JoinTest, AdjacentIntervalsDoNotJoin) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 5, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"f", "s1", 5, 9, 0.5}});
  Result<TpRelation> joined = TpJoinOnFact(r, s);
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(joined->size(), 0u);
}

TEST(JoinTest, SnapshotReducibility) {
  // At every time point, the join's snapshot equals the pairing of the
  // input snapshots.
  SupermarketDb db;
  Result<TpRelation> joined = TpJoinOnFact(db.a, db.c);
  ASSERT_TRUE(joined.ok());
  for (TimePoint t = 0; t <= 11; ++t) {
    std::size_t expected = 0;
    for (std::size_t i = 0; i < db.a.size(); ++i) {
      for (std::size_t j = 0; j < db.c.size(); ++j) {
        if (db.a[i].fact == db.c[j].fact && db.a[i].t.Contains(t) &&
            db.c[j].t.Contains(t)) {
          ++expected;
        }
      }
    }
    std::size_t actual = 0;
    for (std::size_t i = 0; i < joined->size(); ++i) {
      if ((*joined)[i].t.Contains(t)) ++actual;
    }
    EXPECT_EQ(actual, expected) << "t=" << t;
  }
}

TEST(JoinTest, ProbabilityOfJoinedTupleIsProduct) {
  SupermarketDb db;
  Result<TpRelation> joined = TpJoinOnFact(db.a, db.c);
  ASSERT_TRUE(joined.ok());
  for (std::size_t i = 0; i < joined->size(); ++i) {
    // Each lineage is and(x, y) over independent variables.
    EXPECT_TRUE(db.ctx->lineage().IsReadOnce((*joined)[i].lineage));
    double p = joined->TupleProbability(i);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(JoinTest, ValidationErrors) {
  auto ctx = std::make_shared<TpContext>();
  auto ctx2 = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 5, 0.5}});
  TpRelation s = MakeRelation(ctx2, "s", {{"f", "s1", 0, 5, 0.5}});
  EXPECT_FALSE(TpJoinOnFact(r, s).ok()) << "foreign contexts";

  TpRelation s2 = MakeRelation(ctx, "s2", {{"f", "s2v", 0, 5, 0.5}});
  EXPECT_FALSE(TpEquiJoin(r, s2, {0, 1}, {0}).ok()) << "key arity mismatch";
  EXPECT_FALSE(TpEquiJoin(r, s2, {3}, {0}).ok()) << "key index out of range";

  TpRelation ints(ctx, Schema::SingleInt("fact"), "ints");
  ASSERT_TRUE(ints.AddBase({Value(std::int64_t{1})}, Interval(0, 5), 0.5).ok());
  EXPECT_FALSE(TpEquiJoin(r, ints, {0}, {0}).ok()) << "key type mismatch";
}

TEST(JoinTest, EmptyInputs) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 5, 0.5}});
  TpRelation empty(ctx, Schema::SingleString("Product"), "e");
  EXPECT_EQ(TpJoinOnFact(r, empty)->size(), 0u);
  EXPECT_EQ(TpJoinOnFact(empty, r)->size(), 0u);
}

}  // namespace
}  // namespace tpset
