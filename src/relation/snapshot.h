// Snapshot semantics: the timeslice operator τpt and a literal, per-time-point
// reference implementation of the TP set operations (Defs. 1-3).
//
// The reference evaluator executes the definitions directly: it enumerates
// the lineage λ^{r,f}_t of each fact at each relevant time point, applies the
// per-operation filter and lineage-concatenation function (Table I), and then
// merges consecutive time points with syntactically equal lineage into
// maximal intervals (change preservation, Def. 2). It is the oracle against
// which LAWA and all baselines are property-tested; it is O(n^2)-ish and only
// suitable for tests.
#ifndef TPSET_RELATION_SNAPSHOT_H_
#define TPSET_RELATION_SNAPSHOT_H_

#include <utility>
#include <vector>

#include "common/setop.h"
#include "relation/relation.h"

namespace tpset {

/// The timeslice operator τpt: all tuples valid at t, with interval [t, t+1)
/// (paper §IV). The result shares the input's context.
TpRelation TimesliceRelation(const TpRelation& rel, TimePoint t);

/// The probabilistic snapshot set operation opp applied to the timeslices of
/// r and s at time t: returns the (fact, lineage) pairs that Def. 3 admits at
/// t. Requires duplicate-free inputs.
std::vector<std::pair<FactId, LineageId>> SnapshotSetOp(SetOpKind op,
                                                        const TpRelation& r,
                                                        const TpRelation& s,
                                                        TimePoint t);

/// Literal implementation of Def. 3 + Def. 2 over all time points.
/// Result tuples are sorted by (fact, start). Test oracle only.
TpRelation ReferenceSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s);

}  // namespace tpset

#endif  // TPSET_RELATION_SNAPSHOT_H_
