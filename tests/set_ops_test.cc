// TP set operations via LAWA against the paper's worked examples
// (Figs. 1, 3 and 6) plus structural output guarantees.
#include <gtest/gtest.h>

#include <algorithm>

#include "lawa/set_ops.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::ExpectedRow;
using testing::MakeRelation;
using testing::SupermarketDb;

std::string RelationToStringForDebug(const TpRelation& rel) {
  std::string out = rel.name() + " has " + std::to_string(rel.size()) + " tuples\n";
  for (std::size_t i = 0; i < rel.size(); ++i) {
    out += ToString(rel.FactOf(i)) + " " + ToString(rel[i].t) + " " +
           rel.LineageString(i) + "\n";
  }
  return out;
}

// Checks that `rel` consists of exactly the expected rows (order by fact
// value string, then start, for determinism).
void ExpectRelation(const TpRelation& rel, std::vector<ExpectedRow> expected) {
  ASSERT_EQ(rel.size(), expected.size()) << RelationToStringForDebug(rel);
  struct ActualRow {
    std::string fact;
    TimePoint ts, te;
    std::string lineage;
    double p;
  };
  std::vector<ActualRow> actual;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    actual.push_back({ToString(std::get<std::string>(rel.FactOf(i)[0])),
                      rel[i].t.start, rel[i].t.end, rel.LineageString(i),
                      rel.TupleProbability(i)});
  }
  auto by_fact_start = [](const auto& x, const auto& y) {
    return x.fact != y.fact ? x.fact < y.fact
                            : (x.ts != y.ts ? x.ts < y.ts : x.te < y.te);
  };
  std::sort(actual.begin(), actual.end(), by_fact_start);
  std::sort(expected.begin(), expected.end(), [](const auto& x, const auto& y) {
    std::string xf = "'" + x.fact + "'";
    std::string yf = "'" + y.fact + "'";
    return xf != yf ? xf < yf : (x.ts != y.ts ? x.ts < y.ts : x.te < y.te);
  });
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].fact, "'" + expected[i].fact + "'") << "row " << i;
    EXPECT_EQ(actual[i].ts, expected[i].ts) << "row " << i;
    EXPECT_EQ(actual[i].te, expected[i].te) << "row " << i;
    EXPECT_EQ(actual[i].lineage, expected[i].lineage) << "row " << i;
    EXPECT_NEAR(actual[i].p, expected[i].p, 1e-9) << "row " << i;
  }
}

// ---- Fig. 3: all three set operations between a and c ----

TEST(LawaSetOps, PaperFig3Union) {
  SupermarketDb db;
  TpRelation u = LawaUnion(db.a, db.c);
  ExpectRelation(u, {
                        {"milk", 1, 2, "c1", 0.6},
                        {"milk", 2, 4, "a1∨c1", 0.72},
                        {"milk", 4, 6, "a1", 0.3},
                        {"milk", 6, 8, "a1∨c2", 0.79},
                        {"milk", 8, 10, "a1", 0.3},
                        {"chips", 4, 5, "a2∨c3", 0.94},
                        {"chips", 5, 7, "a2", 0.8},
                        {"chips", 7, 9, "c4", 0.8},
                        {"dates", 1, 3, "a3", 0.6},
                    });
}

TEST(LawaSetOps, PaperFig3Except) {
  SupermarketDb db;
  TpRelation d = LawaExcept(db.a, db.c);
  ExpectRelation(d, {
                        {"milk", 2, 4, "a1∧¬c1", 0.12},
                        {"milk", 4, 6, "a1", 0.3},
                        {"milk", 6, 8, "a1∧¬c2", 0.09},
                        {"milk", 8, 10, "a1", 0.3},
                        {"chips", 4, 5, "a2∧¬c3", 0.24},
                        {"chips", 5, 7, "a2", 0.8},
                        {"dates", 1, 3, "a3", 0.6},
                    });
}

TEST(LawaSetOps, PaperFig3Intersect) {
  SupermarketDb db;
  TpRelation x = LawaIntersect(db.a, db.c);
  ExpectRelation(x, {
                        {"milk", 2, 4, "a1∧c1", 0.18},
                        {"milk", 6, 8, "a1∧c2", 0.21},
                        {"chips", 4, 5, "a2∧c3", 0.56},
                    });
}

// ---- Fig. 1c: the full query Q = c −Tp (a ∪Tp b) ----

TEST(LawaSetOps, PaperFig1Query) {
  SupermarketDb db;
  TpRelation u = LawaUnion(db.a, db.b);
  TpRelation q = LawaExcept(db.c, u);
  ExpectRelation(q, {
                        {"milk", 1, 2, "c1", 0.6},
                        {"milk", 2, 4, "c1∧¬a1", 0.42},
                        {"milk", 6, 8, "c2∧¬(a1∨b1)", 0.196},
                        {"chips", 4, 5, "c3∧¬(a2∨b2)", 0.014},
                        {"chips", 7, 9, "c4", 0.8},
                    });
}

// ---- Fig. 2: selected output tuples of a −Tp c ----

TEST(LawaSetOps, PaperFig2SelectedTuples) {
  SupermarketDb db;
  TpRelation d = LawaExcept(db.a, db.c);
  bool found_dates = false, found_chips = false, found_milk = false;
  for (std::size_t i = 0; i < d.size(); ++i) {
    std::string lin = d.LineageString(i);
    if (lin == "a3" && d[i].t == Interval(1, 3)) {
      found_dates = true;
      EXPECT_NEAR(d.TupleProbability(i), 0.6, 1e-9);
    }
    if (lin == "a2∧¬c3" && d[i].t == Interval(4, 5)) {
      found_chips = true;
      EXPECT_NEAR(d.TupleProbability(i), 0.24, 1e-9);
    }
    if (lin == "a1∧¬c2" && d[i].t == Interval(6, 8)) {
      found_milk = true;
      EXPECT_NEAR(d.TupleProbability(i), 0.09, 1e-9);
    }
  }
  EXPECT_TRUE(found_dates && found_chips && found_milk);
}

// ---- Fig. 6: σ(c) −Tp σ(a) restricted to 'milk' ----

TEST(LawaSetOps, PaperFig6MilkExcept) {
  SupermarketDb db;
  auto ctx = db.ctx;
  // Selections σF='milk' realized by building the filtered relations.
  TpRelation c_milk(ctx, Schema::SingleString("Product"), "c_milk");
  TpRelation a_milk(ctx, Schema::SingleString("Product"), "a_milk");
  for (std::size_t i = 0; i < db.c.size(); ++i) {
    if (std::get<std::string>(db.c.FactOf(i)[0]) == "milk") {
      c_milk.AddDerived(db.c[i].fact, db.c[i].t, db.c[i].lineage);
    }
  }
  for (std::size_t i = 0; i < db.a.size(); ++i) {
    if (std::get<std::string>(db.a.FactOf(i)[0]) == "milk") {
      a_milk.AddDerived(db.a[i].fact, db.a[i].t, db.a[i].lineage);
    }
  }
  TpRelation d = LawaExcept(c_milk, a_milk);
  ExpectRelation(d, {
                        {"milk", 1, 2, "c1", 0.6},
                        {"milk", 2, 4, "c1∧¬a1", 0.42},
                        {"milk", 6, 8, "c2∧¬a1", 0.49},
                    });
}

// ---- structural guarantees of every LAWA output ----

TEST(LawaSetOps, OutputIsDuplicateFreeAndSorted) {
  SupermarketDb db;
  for (SetOpKind op : kAllSetOps) {
    TpRelation out = LawaSetOp(op, db.a, db.c);
    EXPECT_TRUE(ValidateWellFormed(out).ok()) << SetOpName(op);
    EXPECT_TRUE(ValidateDuplicateFree(out).ok()) << SetOpName(op);
    EXPECT_TRUE(out.IsSortedFactTime()) << SetOpName(op);
  }
}

TEST(LawaSetOps, EmptyInputs) {
  SupermarketDb db;
  TpRelation empty(db.ctx, Schema::SingleString("Product"), "empty");
  EXPECT_EQ(LawaUnion(db.a, empty).size(), db.a.size());
  EXPECT_EQ(LawaUnion(empty, db.a).size(), db.a.size());
  EXPECT_EQ(LawaIntersect(db.a, empty).size(), 0u);
  EXPECT_EQ(LawaIntersect(empty, db.a).size(), 0u);
  EXPECT_EQ(LawaExcept(db.a, empty).size(), db.a.size());
  EXPECT_EQ(LawaExcept(empty, db.a).size(), 0u);
  EXPECT_EQ(LawaUnion(empty, empty).size(), 0u);
}

TEST(LawaSetOps, ExceptDrainsLongLeftTuple) {
  // Regression for the pseudocode defect: r = [0,100) split by two short s
  // tuples must yield 5 output tuples, not 2 (see DESIGN.md).
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 100, 0.5}});
  TpRelation s = MakeRelation(ctx, "s",
                              {{"f", "s1", 10, 20, 0.5}, {"f", "s2", 30, 40, 0.5}});
  TpRelation d = LawaExcept(r, s);
  ExpectRelation(d, {
                        {"f", 0, 10, "r1", 0.5},
                        {"f", 10, 20, "r1∧¬s1", 0.25},
                        {"f", 20, 30, "r1", 0.5},
                        {"f", 30, 40, "r1∧¬s2", 0.25},
                        {"f", 40, 100, "r1", 0.5},
                    });
}

TEST(LawaSetOps, IntersectDrainsTrailingOverlap) {
  // Regression: r = [0,10) vs s = {[0,5), [5,10)} must produce two
  // intersection tuples even though both fetch cursors exhaust early.
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 10, 0.5}});
  TpRelation s = MakeRelation(ctx, "s",
                              {{"f", "s1", 0, 5, 0.5}, {"f", "s2", 5, 10, 0.5}});
  TpRelation x = LawaIntersect(r, s);
  ExpectRelation(x, {
                        {"f", 0, 5, "r1∧s1", 0.25},
                        {"f", 5, 10, "r1∧s2", 0.25},
                    });
}

TEST(LawaSetOps, UnionDrainsTrailingTuple) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 10, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"f", "s1", 0, 20, 0.5}});
  TpRelation u = LawaUnion(r, s);
  ExpectRelation(u, {
                        {"f", 0, 10, "r1∨s1", 0.75},
                        {"f", 10, 20, "s1", 0.5},
                    });
}

TEST(LawaSetOps, AdjacentTuplesAreNotMerged) {
  // Change preservation: distinct base tuples with adjacent intervals keep
  // separate outputs because their lineages differ (Def. 2).
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 5, 0.5}, {"f", "r2", 5, 10, 0.5}});
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  TpRelation u = LawaUnion(r, s);
  ExpectRelation(u, {
                        {"f", 0, 5, "r1", 0.5},
                        {"f", 5, 10, "r2", 0.5},
                    });
}

TEST(LawaSetOps, CheckedRejectsDuplicateInput) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 5, 0.5}, {"f", "r2", 3, 8, 0.5}});
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  Result<TpRelation> out = LawaSetOpChecked(SetOpKind::kUnion, r, s);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(LawaSetOps, CheckedRejectsForeignContexts) {
  auto ctx1 = std::make_shared<TpContext>();
  auto ctx2 = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx1, "r", {{"f", "r1", 0, 5, 0.5}});
  TpRelation s = MakeRelation(ctx2, "s", {{"f", "s1", 0, 5, 0.5}});
  Result<TpRelation> out = LawaSetOpChecked(SetOpKind::kIntersect, r, s);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(LawaSetOps, CountingSortMatchesComparisonSort) {
  SupermarketDb db;
  for (SetOpKind op : kAllSetOps) {
    TpRelation cmp = LawaSetOp(op, db.a, db.c, SortMode::kComparison);
    TpRelation cnt = LawaSetOp(op, db.a, db.c, SortMode::kCounting);
    EXPECT_TRUE(RelationsEquivalent(cmp, cnt)) << SetOpName(op);
  }
}

}  // namespace
}  // namespace tpset
