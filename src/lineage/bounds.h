// Anytime probability bounds (paper refs [25],[26],[29]).
//
// Repeating TP set queries are #P-hard in general (§V-B), so exact Shannon
// expansion can blow up. ProbabilityAnytime performs a budgeted expansion:
// whenever the budget is exhausted on a residual subformula, that subformula
// contributes the trivial interval [0,1], weighted by the probability mass
// of the branch. The result is a guaranteed enclosure of the exact
// probability whose width shrinks monotonically to 0 as the budget grows.
#ifndef TPSET_LINEAGE_BOUNDS_H_
#define TPSET_LINEAGE_BOUNDS_H_

#include <cstddef>

#include "lineage/lineage.h"

namespace tpset {

/// A closed interval guaranteed to contain the exact probability.
struct ProbabilityInterval {
  double lower = 0.0;
  double upper = 1.0;
  double width() const { return upper - lower; }
};

/// Budgeted Shannon expansion: at most `max_expansions` variable branchings
/// are performed in total. With a sufficient budget the interval collapses
/// to the exact value. May allocate cofactor nodes in `mgr` (hash-consing
/// required).
ProbabilityInterval ProbabilityAnytime(LineageManager& mgr, LineageId id,
                                       const VarTable& vars,
                                       std::size_t max_expansions);

}  // namespace tpset

#endif  // TPSET_LINEAGE_BOUNDS_H_
