// A continuously-maintained TP set query: a DAG of incremental operators.
//
// RegisterContinuous compiles a query tree into a plan whose leaves are
// registered catalog relations and whose interior nodes are IncrementalSetOp
// states. Common subtrees are deduplicated (two occurrences of `a | b`
// share one node), so the plan is a DAG and a delta is applied once per
// distinct operator. When an epoch appends to a relation, the leaf delta
// propagates bottom-up: each operator turns its input deltas into an output
// delta (per-fact resume or resweep, see incremental_set_op.h), interior
// nodes consume their children's deltas — including retractions — and the
// root's delta is delivered to every Subscription as an EpochDelta.
//
// The accumulated result (Current(), or a subscriber folding the delta
// stream) always equals a from-scratch Execute of the same query over the
// appended-to relations — tuples, intervals, and probability-equal lineage.
#ifndef TPSET_INCREMENTAL_CONTINUOUS_QUERY_H_
#define TPSET_INCREMENTAL_CONTINUOUS_QUERY_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "incremental/delta.h"
#include "incremental/incremental_set_op.h"
#include "obs/profile.h"
#include "parallel/thread_pool.h"
#include "query/ast.h"
#include "relation/relation.h"
#include "storage/stored_relation.h"

namespace tpset {

/// Execution knobs of one continuous query.
struct ContinuousOptions {
  /// 1 applies deltas sequentially. Above 1, each operator partitions the
  /// facts touched by a delta batch into fact ranges, applies them on a
  /// shared pool with per-range lineage staging, and splices the staged
  /// cells in fact order (deterministic; same tuples, probability-equal
  /// lineage — the staged-apply contract, see DESIGN.md).
  std::size_t num_threads = 1;

  /// Fact-range oversubscription per thread, so straggler facts even out.
  std::size_t partitions_per_thread = 2;

  /// Sweep kernel for the per-fact applies (set_ops.h SweepKernel). kAuto
  /// resolves per apply on the tuples actually swept, so small per-epoch
  /// deltas stay scalar while bulk resweeps/catch-ups go columnar.
  SweepKernel sweep_kernel = SweepKernel::kAuto;
};

/// A registered continuous query. Created by QueryExecutor::RegisterContinuous;
/// epochs are driven by QueryExecutor::Append. Not thread-safe (single-writer,
/// like all context mutation).
class ContinuousQuery {
 public:
  using Callback = std::function<void(const EpochDelta&)>;
  using SubscriptionId = std::size_t;

  /// Compiles `query` over the catalog. `resolve` maps a relation name to
  /// the executor's stored catalog entry (whose address must stay stable,
  /// which the executor's node-based map guarantees). `pool` is the shared
  /// worker pool for the parallel staged apply (required when
  /// options.num_threads > 1, must outlive the query; the executor shares
  /// one pool per thread count across its continuous queries). Runs the
  /// initial full computation — every leaf's current content, read through
  /// the run-merge iterator, applied as one insert-only delta — so the
  /// query is ready to absorb appends.
  static Result<std::unique_ptr<ContinuousQuery>> Compile(
      std::string name, const QueryNode& query,
      const std::function<Result<const StoredRelation*>(const std::string&)>&
          resolve,
      std::shared_ptr<TpContext> ctx, const ContinuousOptions& options,
      ThreadPool* pool);

  /// Registers a per-epoch delta callback; fires for every epoch that
  /// appends to a relation this query reads (even if the output delta is
  /// empty — subscribers can track epoch progression).
  SubscriptionId Subscribe(Callback cb);
  void Unsubscribe(SubscriptionId id);
  std::size_t subscriber_count() const { return subscribers_.size(); }

  /// Streaming-telemetry view of one subscription.
  struct SubscriberInfo {
    SubscriptionId id = 0;
    EpochId last_delivered = 0;  ///< last epoch whose delta reached the callback
    std::uint64_t lag = 0;       ///< log_epoch() - last_delivered
  };
  std::vector<SubscriberInfo> SubscriberInfos() const;

  /// Applies one epoch: `delta` is the leaf insert delta (the batch's
  /// tuples grouped per fact, GroupInsertsByFact) for relation
  /// `relation_name`. Called by the executor's Append for every query that
  /// reads the relation; the map is shared across queries, not copied.
  /// `fence_t0` is when the epoch entered the executor's write fence — the
  /// end-to-end latency histogram (tpset_incr_epoch_e2e_usec) measures fence
  /// to delta-delivered, so it includes storage append and queueing, not
  /// just propagation.
  void ApplyAppend(EpochId epoch, const std::string& relation_name,
                   const DeltaMap& delta,
                   std::chrono::steady_clock::time_point fence_t0 =
                       std::chrono::steady_clock::now());

  /// Records that the append log advanced to `epoch` (whether or not this
  /// query reads the appended relation) and refreshes the subscriber-lag
  /// gauge. Called by the executor for every registered query on every
  /// Append; ApplyAppend follows for readers, zeroing their lag.
  void NoteLogEpoch(EpochId epoch);

  /// Latest log epoch observed via NoteLogEpoch/ApplyAppend (0 if none).
  EpochId log_epoch() const { return log_epoch_; }

  /// Event-time low watermark of the DAG: the minimum over the leaves of
  /// the maximum interval end each leaf has stored — no future delta can
  /// carry an interval ending at or before it (appends extend fact
  /// timelines monotonically). kNoWatermark while any leaf is empty.
  TimePoint LowWatermark() const;

  /// True iff the query reads `relation_name`.
  bool Reads(const std::string& relation_name) const {
    return leaves_.count(relation_name) > 0;
  }

  /// Retention rebase: recomputes the query's *effective watermark* — the
  /// minimum of its leaves' storage watermarks (a query only forgets what
  /// every input has forgotten; a single unretained leaf pins it at
  /// "nothing") — and, when it advanced, drops every interior node's state
  /// at or below it (IncrementalSetOp::Rebase). Called by
  /// QueryExecutor::Retain after compacting a leaf's storage; no deltas are
  /// emitted (retention forgets, it does not retract). Returns the output
  /// windows retired across the DAG.
  std::size_t Rebase();

  /// The watermark the operator states were last rebased to (kNoWatermark
  /// before any retention reached this query).
  TimePoint effective_watermark() const { return rebased_watermark_; }

  const std::string& name() const { return name_; }
  std::string text() const;
  const ContinuousOptions& options() const { return options_; }
  /// Last epoch applied to this query (0 if none since registration).
  EpochId last_epoch() const { return last_epoch_; }
  /// Total ApplyAppend epochs that touched this query (epochs appending to
  /// relations it does not read advance log_epoch() but not this count).
  std::uint64_t epochs_applied() const { return epochs_applied_; }
  /// Current accumulated result size.
  std::size_t size() const;

  /// Materializes the accumulated result as a relation (named after the
  /// query text, sorted, witness armed).
  TpRelation Current() const;

  /// Indented plan description with the per-node maintenance counters
  /// (epochs_applied / facts_resumed / facts_reswept, accumulated size,
  /// cumulative advancer windows) — the continuous-plan EXPLAIN body.
  std::string Describe() const;

  /// Span tree of the most recent ApplyAppend epoch: root "epoch" (attrs
  /// epoch/relation/inserted/retracted) with one child per interior operator
  /// apply, per-epoch LawaStats deltas attached. Before the first epoch it
  /// holds only the (untimed) root.
  const obs::QueryProfile& last_profile() const { return profile_; }

 private:
  struct PlanNode {
    bool leaf = false;
    std::string relation_name;                  // leaf
    const StoredRelation* relation = nullptr;   // leaf
    SetOpKind op = SetOpKind::kUnion;           // interior
    int left = -1, right = -1;                  // interior: child plan indices
    std::unique_ptr<IncrementalSetOp> state;    // interior
  };

  ContinuousQuery() = default;

  int CompileNode(
      const QueryNode& q,
      const std::function<Result<const StoredRelation*>(const std::string&)>&
          resolve,
      std::map<std::string, int>* memo, Status* status);

  /// Propagates leaf deltas bottom-up; returns the root's output delta.
  /// When `span` is non-null, each interior apply records a child span with
  /// its per-epoch LawaStats delta attached.
  TupleDelta Propagate(const std::map<std::string, const DeltaMap*>& leaf_deltas,
                       obs::Span* span = nullptr);

  void DescribeNode(int index, int depth, std::set<int>* visited,
                    std::string* out) const;

  struct Subscriber {
    SubscriptionId id = 0;
    Callback cb;
    EpochId last_delivered = 0;
  };

  std::string name_;
  QueryPtr query_;
  std::shared_ptr<TpContext> ctx_;
  ContinuousOptions options_;
  std::vector<PlanNode> nodes_;  // post-order; root last
  std::set<std::string> leaves_;
  Schema schema_;
  EpochId last_epoch_ = 0;
  EpochId log_epoch_ = 0;
  std::uint64_t epochs_applied_ = 0;
  TimePoint rebased_watermark_ = kNoWatermark;
  std::vector<Subscriber> subscribers_;
  SubscriptionId next_subscription_ = 1;
  ThreadPool* pool_ = nullptr;  // shared, executor-owned; null = sequential
  obs::QueryProfile profile_{"epoch"};  // last-epoch span tree (reused)
};

}  // namespace tpset

#endif  // TPSET_INCREMENTAL_CONTINUOUS_QUERY_H_
