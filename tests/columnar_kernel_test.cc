// Differential belt for the columnar SoA sweep kernel: ColumnarAdvancer
// must be indistinguishable from LineageAwareWindowAdvancer at every
// observable surface — the window stream (fact, interval, λr, λs in emit
// order), the final advancer status (AdvancerCheckpoint), the sequential
// LawaSetOp output (byte-equal, lineage ids included), the parallel
// bit-identical output across thread counts and morsel sizes, and the
// incremental engine's accumulated state under forced-kernel continuous
// queries. Checkpoints are additionally round-tripped across kernels in
// both directions: state saved by one kernel, restored into the other,
// must continue the sweep identically.
//
// Shapes are the ones that stress distinct kernel paths: zipf and one-hot
// fact skew (many short groups vs one huge group), all-one-fact (a single
// group, the bulk fast path's home turf once a side drains), and the
// hand-built paper example plus empty/one-sided edges.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "incremental/continuous_query.h"
#include "lawa/advancer.h"
#include "lawa/columnar_advancer.h"
#include "lawa/set_ops.h"
#include "parallel/parallel_set_op.h"
#include "query/executor.h"
#include "relation/columnar.h"
#include "relation/relation.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

// One emitted window, as both kernels must produce it.
struct Win {
  FactId fact;
  TimePoint start, end;
  LineageId lr, ls;
  bool operator==(const Win& o) const {
    return fact == o.fact && start == o.start && end == o.end && lr == o.lr &&
           ls == o.ls;
  }
};

struct SweepResult {
  std::vector<Win> windows;
  AdvancerCheckpoint ckpt;
};

SweepResult ScalarSweep(SetOpKind op, const std::vector<TpTuple>& r,
                        const std::vector<TpTuple>& s) {
  SweepResult out;
  LineageAwareWindowAdvancer adv(r.data(), r.size(), s.data(), s.size());
  ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
    out.windows.push_back({w.fact, w.t.start, w.t.end, w.lr, w.ls});
  });
  out.ckpt = adv.Checkpoint();
  return out;
}

SweepResult ColumnarSweep(SetOpKind op, const std::vector<TpTuple>& r,
                          const std::vector<TpTuple>& s) {
  ColumnarView rv, sv;
  rv.Build(r.data(), r.size());
  sv.Build(s.data(), s.size());
  SweepResult out;
  ColumnarAdvancer adv(rv.Columns(), sv.Columns());
  adv.Sweep(op, [&](const LineageAwareWindow& w) {
    out.windows.push_back({w.fact, w.t.start, w.t.end, w.lr, w.ls});
  });
  out.ckpt = adv.Checkpoint();
  return out;
}

// Field-wise checkpoint equality; the held valid tuples are only compared
// while their flag is set (when clear, the slot is stale by contract — the
// scalar advancer never clears it on expiry, and the columnar kernel only
// writes it back when it loaded one, so the don't-care bytes may differ).
void ExpectCkptEqual(const AdvancerCheckpoint& a, const AdvancerCheckpoint& b,
                     const std::string& what) {
  EXPECT_EQ(a.ri, b.ri) << what;
  EXPECT_EQ(a.si, b.si) << what;
  EXPECT_EQ(a.r_valid, b.r_valid) << what;
  EXPECT_EQ(a.s_valid, b.s_valid) << what;
  EXPECT_EQ(a.have_fact, b.have_fact) << what;
  EXPECT_EQ(a.curr_fact, b.curr_fact) << what;
  EXPECT_EQ(a.prev_win_te, b.prev_win_te) << what;
  EXPECT_EQ(a.windows_produced, b.windows_produced) << what;
  if (a.r_valid && b.r_valid) {
    EXPECT_EQ(a.r_valid_tuple, b.r_valid_tuple) << what;
  }
  if (a.s_valid && b.s_valid) {
    EXPECT_EQ(a.s_valid_tuple, b.s_valid_tuple) << what;
  }
}

void ExpectBitEqual(const TpRelation& a, const TpRelation& b,
                    const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << what << " tuple " << i;
  }
}

// Per-fact chain generation (non-overlapping intervals per fact, the input
// contract), fact weights under test control — same scheme as the skew
// property belt.
TpRelation ChainRelation(std::shared_ptr<TpContext> ctx,
                         const std::string& name,
                         const std::vector<std::size_t>& counts,
                         TimePoint max_len, TimePoint max_gap, Rng* rng) {
  TpRelation rel(ctx, Schema::SingleInt("fact"), name);
  for (std::size_t f = 0; f < counts.size(); ++f) {
    FactId fact = ctx->facts().Intern({Value(static_cast<std::int64_t>(f))});
    TimePoint cursor = 0;
    for (std::size_t i = 0; i < counts[f]; ++i) {
      TimePoint start = cursor + rng->Uniform(0, max_gap);
      TimePoint end = start + rng->Uniform(1, max_len);
      rel.AddBaseFast(fact, Interval(start, end),
                      0.1 + 0.8 * rng->NextDouble());
      cursor = end;
    }
  }
  rel.SortFactTime();
  return rel;
}

std::vector<std::size_t> ZipfCounts(std::size_t facts, double s,
                                    std::size_t total) {
  std::vector<double> weight(facts);
  double norm = 0.0;
  for (std::size_t f = 0; f < facts; ++f) {
    weight[f] = 1.0 / std::pow(static_cast<double>(f + 1), s);
    norm += weight[f];
  }
  std::vector<std::size_t> counts(facts);
  for (std::size_t f = 0; f < facts; ++f) {
    counts[f] = std::max<std::size_t>(
        1,
        static_cast<std::size_t>(weight[f] / norm * static_cast<double>(total)));
  }
  return counts;
}

struct Shape {
  std::string name;
  std::vector<std::size_t> counts_r, counts_s;
};

std::vector<Shape> Shapes(std::size_t scale) {
  std::vector<Shape> shapes;
  shapes.push_back({"zipf", ZipfCounts(20, 1.2, scale),
                    ZipfCounts(20, 1.2, scale)});
  {
    std::vector<std::size_t> hot(8, std::max<std::size_t>(1, scale / 80));
    hot[0] = scale * 9 / 10;
    shapes.push_back({"one_hot", hot, hot});
  }
  shapes.push_back({"all_one_fact", std::vector<std::size_t>{scale},
                    std::vector<std::size_t>{scale}});
  // Lopsided: r-heavy and one-sided facts, so one side drains early and the
  // bulk fast paths run long.
  shapes.push_back({"lopsided",
                    std::vector<std::size_t>{scale, 1, scale / 2, 0, 3},
                    std::vector<std::size_t>{2, scale / 2, 0, scale / 4, 3}});
  return shapes;
}

std::pair<TpRelation, TpRelation> FreshPair(const Shape& shape,
                                            std::uint64_t seed,
                                            std::shared_ptr<TpContext>* ctx) {
  *ctx = std::make_shared<TpContext>();
  Rng rng(seed);
  TpRelation r = ChainRelation(*ctx, "r", shape.counts_r, 6, 3, &rng);
  TpRelation s = ChainRelation(*ctx, "s", shape.counts_s, 9, 2, &rng);
  return {std::move(r), std::move(s)};
}

// ---- Window stream + final checkpoint, property shapes --------------------

TEST(ColumnarKernelTest, StreamAndCheckpointEqualScalarOnShapes) {
  for (std::uint64_t seed : testing::PropertySeeds({101, 102, 103})) {
    for (const Shape& shape : Shapes(500)) {
      SCOPED_TRACE("shape=" + shape.name + " seed=" + std::to_string(seed));
      std::shared_ptr<TpContext> ctx;
      auto [r, s] = FreshPair(shape, seed, &ctx);
      for (SetOpKind op : kAllSetOps) {
        SCOPED_TRACE(SetOpName(op));
        SweepResult scalar = ScalarSweep(op, r.tuples(), s.tuples());
        SweepResult columnar = ColumnarSweep(op, r.tuples(), s.tuples());
        EXPECT_TRUE(scalar.windows == columnar.windows)
            << "window streams differ: scalar " << scalar.windows.size()
            << " vs columnar " << columnar.windows.size();
        ExpectCkptEqual(scalar.ckpt, columnar.ckpt, "final checkpoint");
      }
    }
  }
}

// ---- Hand-built edges -----------------------------------------------------

TEST(ColumnarKernelTest, HandBuiltEdges) {
  testing::SupermarketDb db;
  const std::vector<std::pair<const TpRelation*, const TpRelation*>> pairs = {
      {&db.a, &db.b}, {&db.a, &db.c}, {&db.c, &db.a}, {&db.b, &db.c}};
  for (const auto& [r, s] : pairs) {
    for (SetOpKind op : kAllSetOps) {
      SCOPED_TRACE(std::string(r->name()) + " " + SetOpName(op) + " " +
                   s->name());
      // The paper relations are added via AddBase in sorted-enough order;
      // sort copies to satisfy the advancer contract explicitly.
      std::vector<TpTuple> rt = r->tuples(), st = s->tuples();
      SortTuples(&rt, SortMode::kComparison);
      SortTuples(&st, SortMode::kComparison);
      SweepResult scalar = ScalarSweep(op, rt, st);
      SweepResult columnar = ColumnarSweep(op, rt, st);
      EXPECT_TRUE(scalar.windows == columnar.windows);
      ExpectCkptEqual(scalar.ckpt, columnar.ckpt, "final checkpoint");
    }
  }
}

TEST(ColumnarKernelTest, EmptyAndOneSidedInputs) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(7);
  TpRelation r = ChainRelation(ctx, "r", {4, 0, 2}, 5, 2, &rng);
  TpRelation empty(ctx, Schema::SingleInt("fact"), "empty");
  empty.SortFactTime();
  for (SetOpKind op : kAllSetOps) {
    SCOPED_TRACE(SetOpName(op));
    for (const auto& [a, b] : {std::make_pair(&r, &empty),
                               std::make_pair(&empty, &r),
                               std::make_pair(&empty, &empty)}) {
      SweepResult scalar = ScalarSweep(op, a->tuples(), b->tuples());
      SweepResult columnar = ColumnarSweep(op, a->tuples(), b->tuples());
      EXPECT_TRUE(scalar.windows == columnar.windows);
      ExpectCkptEqual(scalar.ckpt, columnar.ckpt, "final checkpoint");
    }
  }
}

// ---- Sequential LawaSetOp: byte-equal outputs -----------------------------

TEST(ColumnarKernelTest, SequentialLawaByteEqual) {
  for (std::uint64_t seed : testing::PropertySeeds({111, 112})) {
    for (const Shape& shape : Shapes(400)) {
      SCOPED_TRACE("shape=" + shape.name + " seed=" + std::to_string(seed));
      for (SetOpKind op : kAllSetOps) {
        SCOPED_TRACE(SetOpName(op));
        // Fresh, identically seeded contexts: with identical window streams
        // the concatenation order — and so every interned lineage id — must
        // coincide.
        std::shared_ptr<TpContext> ctx1, ctx2;
        auto [r1, s1] = FreshPair(shape, seed, &ctx1);
        auto [r2, s2] = FreshPair(shape, seed, &ctx2);
        TpRelation scalar = LawaSetOp(op, r1, s1, SortMode::kComparison,
                                      nullptr, SweepKernel::kScalar);
        TpRelation columnar = LawaSetOp(op, r2, s2, SortMode::kComparison,
                                        nullptr, SweepKernel::kColumnar);
        ExpectBitEqual(scalar, columnar, "sequential scalar vs columnar");
      }
    }
  }
}

// ---- Parallel bit-identical: byte-equal across threads and morsels --------

TEST(ColumnarKernelTest, ParallelBitIdenticalByteEqual) {
  const std::size_t thread_counts[] = {1, 4, 8};
  const std::size_t morsel_sizes[] = {1, 16, 0};  // 0 = auto
  for (std::uint64_t seed : testing::PropertySeeds({121})) {
    for (const Shape& shape : Shapes(400)) {
      SCOPED_TRACE("shape=" + shape.name + " seed=" + std::to_string(seed));
      for (SetOpKind op : kAllSetOps) {
        SCOPED_TRACE(SetOpName(op));
        std::shared_ptr<TpContext> oracle_ctx;
        auto [ro, so] = FreshPair(shape, seed, &oracle_ctx);
        TpRelation expected = LawaSetOp(op, ro, so, SortMode::kComparison,
                                        nullptr, SweepKernel::kScalar);
        for (std::size_t threads : thread_counts) {
          for (std::size_t morsel_size : morsel_sizes) {
            SCOPED_TRACE("threads=" + std::to_string(threads) +
                         " morsel_size=" + std::to_string(morsel_size));
            MorselOptions morsel;
            morsel.morsel_size = morsel_size;
            ParallelSetOpAlgorithm algo(threads, SortMode::kComparison, 2,
                                        ApplyMode::kBitIdentical, morsel,
                                        SweepKernel::kColumnar);
            std::shared_ptr<TpContext> ctx;
            auto [r, s] = FreshPair(shape, seed, &ctx);
            TpRelation out = algo.Compute(op, r, s);
            ExpectBitEqual(out, expected, "columnar parallel vs scalar seq");
          }
        }
      }
    }
  }
}

// ---- Checkpoint round-trips across kernels --------------------------------

TEST(ColumnarKernelTest, CheckpointRoundTripsAcrossKernels) {
  for (std::uint64_t seed : testing::PropertySeeds({131, 132})) {
    std::shared_ptr<TpContext> ctx;
    auto [r, s] = FreshPair(Shapes(300)[0], seed, &ctx);
    const std::vector<TpTuple>& rt = r.tuples();
    const std::vector<TpTuple>& st = s.tuples();
    for (SetOpKind op : kAllSetOps) {
      // Cut both sides mid-array (any per-side prefix of chain inputs is a
      // valid advancer input) and sweep the prefix to its drain point under
      // each kernel — the saved status must already be identical.
      for (const auto& [fr, fs] : {std::make_pair(2, 3), std::make_pair(3, 2),
                                   std::make_pair(1, 1)}) {
        SCOPED_TRACE(std::string(SetOpName(op)) + " seed=" +
                     std::to_string(seed) + " cut=" + std::to_string(fr) +
                     "/" + std::to_string(fs));
        std::vector<TpTuple> rp(rt.begin(),
                                rt.begin() + rt.size() * fr / (fr + fs));
        std::vector<TpTuple> sp(st.begin(),
                                st.begin() + st.size() * fs / (fr + fs));
        SweepResult scalar_prefix = ScalarSweep(op, rp, sp);
        SweepResult columnar_prefix = ColumnarSweep(op, rp, sp);
        EXPECT_TRUE(scalar_prefix.windows == columnar_prefix.windows);
        ExpectCkptEqual(scalar_prefix.ckpt, columnar_prefix.ckpt,
                        "prefix checkpoint");

        // Cross-restore over the full inputs: the columnar-saved status
        // continues under the scalar kernel and vice versa; continuation
        // streams and final status must agree.
        SweepResult cont_scalar;
        {
          LineageAwareWindowAdvancer adv(rt.data(), rt.size(), st.data(),
                                         st.size());
          adv.Restore(columnar_prefix.ckpt);
          ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
            cont_scalar.windows.push_back(
                {w.fact, w.t.start, w.t.end, w.lr, w.ls});
          });
          cont_scalar.ckpt = adv.Checkpoint();
        }
        SweepResult cont_columnar;
        {
          ColumnarView rv, sv;
          rv.Build(rt.data(), rt.size());
          sv.Build(st.data(), st.size());
          ColumnarAdvancer adv(rv.Columns(), sv.Columns());
          adv.Restore(scalar_prefix.ckpt);
          adv.Sweep(op, [&](const LineageAwareWindow& w) {
            cont_columnar.windows.push_back(
                {w.fact, w.t.start, w.t.end, w.lr, w.ls});
          });
          cont_columnar.ckpt = adv.Checkpoint();
        }
        EXPECT_TRUE(cont_scalar.windows == cont_columnar.windows)
            << "continuation streams differ: scalar "
            << cont_scalar.windows.size() << " vs columnar "
            << cont_columnar.windows.size();
        ExpectCkptEqual(cont_scalar.ckpt, cont_columnar.ckpt,
                        "continuation checkpoint");
      }
    }
  }
}

// ---- Incremental engine under forced kernels ------------------------------

// Runs one deterministic append schedule on a fresh executor with the given
// continuous-query kernel and returns the accumulated results.
std::vector<TpRelation> RunContinuousSchedule(std::uint64_t seed,
                                              SweepKernel kernel) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  Rng rng(seed);
  const std::vector<std::string> rel_names = {"r", "s", "u"};
  for (const std::string& name : rel_names) {
    TpRelation rel(ctx, Schema::SingleInt("fact"), name);
    EXPECT_TRUE(exec.Register(rel).ok());
  }
  ContinuousOptions options;
  options.sweep_kernel = kernel;
  const std::vector<std::string> queries = {"r - s", "(r | s) & u"};
  std::vector<ContinuousQuery*> cqs;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    Result<ContinuousQuery*> cq = exec.RegisterContinuous(
        "q" + std::to_string(i), queries[i], options);
    EXPECT_TRUE(cq.ok()) << cq.status().ToString();
    if (cq.ok()) cqs.push_back(*cq);
  }
  const std::size_t num_facts = 5;
  std::vector<std::vector<TimePoint>> cursor(
      rel_names.size(), std::vector<TimePoint>(num_facts, 0));
  for (std::size_t e = 0; e < 30; ++e) {
    std::size_t ri = static_cast<std::size_t>(rng.Below(rel_names.size()));
    DeltaBatch batch;
    for (std::size_t k = 0; k < 4; ++k) {
      const std::size_t fact = static_cast<std::size_t>(rng.Below(num_facts));
      TimePoint& cur = cursor[ri][fact];
      cur += rng.Uniform(0, 3);
      const TimePoint len = rng.Uniform(1, 4);
      batch.Add({Value(static_cast<std::int64_t>(fact))},
                Interval(cur, cur + len), 0.1 + 0.8 * rng.NextDouble());
      cur += len;
    }
    Result<EpochId> epoch = exec.Append(rel_names[ri], batch);
    EXPECT_TRUE(epoch.ok()) << epoch.status().ToString();
  }
  std::vector<TpRelation> out;
  for (ContinuousQuery* cq : cqs) out.push_back(cq->Current());
  return out;
}

TEST(ColumnarKernelTest, IncrementalKernelEquivalence) {
  for (std::uint64_t seed : testing::PropertySeeds({141, 142})) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    std::vector<TpRelation> scalar =
        RunContinuousSchedule(seed, SweepKernel::kScalar);
    std::vector<TpRelation> columnar =
        RunContinuousSchedule(seed, SweepKernel::kColumnar);
    std::vector<TpRelation> autok =
        RunContinuousSchedule(seed, SweepKernel::kAuto);
    ASSERT_EQ(scalar.size(), columnar.size());
    ASSERT_EQ(scalar.size(), autok.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      SCOPED_TRACE("query " + std::to_string(i));
      // Sequential apply with identical window streams concatenates in the
      // same order on identically seeded contexts: ids must coincide.
      ExpectBitEqual(scalar[i], columnar[i], "incremental scalar vs columnar");
      ExpectBitEqual(scalar[i], autok[i], "incremental scalar vs auto");
    }
  }
}

// ---- Auto threshold -------------------------------------------------------

TEST(ColumnarKernelTest, AutoResolvesByCombinedSize) {
  EXPECT_EQ(ResolveSweepKernel(SweepKernel::kAuto, kColumnarAutoThreshold),
            SweepKernel::kColumnar);
  EXPECT_EQ(ResolveSweepKernel(SweepKernel::kAuto, kColumnarAutoThreshold - 1),
            SweepKernel::kScalar);
  EXPECT_EQ(ResolveSweepKernel(SweepKernel::kScalar, 1u << 20),
            SweepKernel::kScalar);
  EXPECT_EQ(ResolveSweepKernel(SweepKernel::kColumnar, 0),
            SweepKernel::kColumnar);
}

// The executor honors a pinned kernel on the sequential no-profile path
// (the routing exercised by EXPLAIN-less A/B runs).
TEST(ColumnarKernelTest, ExecutorSequentialPinnedKernel) {
  for (SweepKernel kernel : {SweepKernel::kScalar, SweepKernel::kColumnar}) {
    auto ctx1 = std::make_shared<TpContext>();
    auto ctx2 = std::make_shared<TpContext>();
    Rng rng1(55), rng2(55);
    QueryExecutor scalar_exec(ctx1);
    QueryExecutor pinned_exec(ctx2);
    {
      TpRelation r = ChainRelation(ctx1, "r", {40, 40}, 6, 3, &rng1);
      TpRelation s = ChainRelation(ctx1, "s", {40, 40}, 9, 2, &rng1);
      ASSERT_TRUE(scalar_exec.Register(r).ok());
      ASSERT_TRUE(scalar_exec.Register(s).ok());
    }
    {
      TpRelation r = ChainRelation(ctx2, "r", {40, 40}, 6, 3, &rng2);
      TpRelation s = ChainRelation(ctx2, "s", {40, 40}, 9, 2, &rng2);
      ASSERT_TRUE(pinned_exec.Register(r).ok());
      ASSERT_TRUE(pinned_exec.Register(s).ok());
    }
    Result<TpRelation> plain = scalar_exec.Execute("(r & s) | (r - s)");
    ExecOptions options;
    options.sweep_kernel = kernel;
    Result<TpRelation> pinned =
        pinned_exec.Execute("(r & s) | (r - s)", options);
    ASSERT_TRUE(plain.ok());
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
    ExpectBitEqual(*plain, *pinned,
                   std::string("executor pinned kernel ") +
                       SweepKernelName(kernel));
  }
}

}  // namespace
}  // namespace tpset
