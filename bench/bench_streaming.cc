// Incremental continuous-query maintenance vs full recompute.
//
// Sweeps relation size (0.1x and 1x of 1M tuples/relation, scaled by
// TPSET_BENCH_SCALE) and delta size (0.01% / 0.1% / 1% of the relation) for
// the continuous query `r - s`. For each point it measures:
//   * inc/1, inc/8 — mean per-epoch latency of QueryExecutor::Append with
//     the query maintained sequentially / with the 8-thread staged apply
//     (epochs alternate r and s appends, so both the pure-resume and the
//     retraction-heavy path are in the mean);
//   * full — one-shot Execute over the grown relations (best of 3), i.e.
//     what serving the query without the subsystem would cost per batch.
// The headline number is speedup = full / inc-1; the acceptance bar is
// >= 5x for deltas <= 1% of a 1M-tuple relation.
//
// Output: harness CSV rows, one "# json {...}" line per point, and a
// machine-readable summary in BENCH_streaming.json (--json <path>).
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/random.h"
#include "datagen/stream.h"
#include "incremental/continuous_query.h"
#include "query/executor.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

using Cursors = std::vector<TimePoint>;

// Seeds and registers one relation of per-fact chains.
void SeedRelation(QueryExecutor* exec, const std::shared_ptr<TpContext>& ctx,
                  const char* name, std::size_t n, Cursors* cursors, Rng* rng) {
  TpRelation rel(ctx, Schema::SingleInt("fact"), name);
  SeedFactChains(&rel, n, cursors, rng);
  Status st = exec->Register(rel);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    std::exit(1);
  }
}

struct Point {
  std::size_t n;
  std::size_t delta_rows;
  double inc1_ms;
  double inc8_ms;
  double full_ms;
  double speedup;  // full / inc1
};

// One sweep point: fresh context, seeded pair, continuous `r - s`,
// `epochs` appends alternating sides.
Point Measure(std::size_t n, double delta_frac, std::size_t num_threads,
              double* out_full_ms) {
  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  Rng rng(0x57AE4417);
  const std::size_t num_facts = n >= 1000 ? n / 1000 : 1;
  std::vector<Cursors> cursors(2, Cursors(num_facts, 0));
  SeedRelation(&exec, ctx, "r", n, &cursors[0], &rng);
  SeedRelation(&exec, ctx, "s", n, &cursors[1], &rng);

  ContinuousOptions options;
  options.num_threads = num_threads;
  Result<ContinuousQuery*> cq = exec.RegisterContinuous("diff", "r - s", options);
  if (!cq.ok()) {
    std::fprintf(stderr, "%s\n", cq.status().ToString().c_str());
    std::exit(1);
  }

  const std::size_t delta_rows =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(n) * delta_frac));
  const int epochs = 6;
  double inc_total = 0.0;
  for (int e = 0; e < epochs; ++e) {
    const std::size_t side = static_cast<std::size_t>(e) % 2;
    DeltaBatch batch = NextChainBatch(&cursors[side], delta_rows, &rng);
    const char* rel = side == 0 ? "r" : "s";
    inc_total += TimeMs([&]() {
      Result<EpochId> epoch = exec.Append(rel, batch);
      if (!epoch.ok()) {
        std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
        std::exit(1);
      }
    });
  }

  // Full recompute over the grown relations (what each batch would cost
  // without incremental maintenance), best of 3.
  double full = 0.0;
  for (int i = 0; i < 3; ++i) {
    double ms = TimeMs([&]() {
      Result<TpRelation> out = exec.Execute("r - s");
      if (!out.ok()) std::exit(1);
    });
    if (i == 0 || ms < full) full = ms;
  }
  if (out_full_ms != nullptr) *out_full_ms = full;

  Point p{};
  p.n = n;
  p.delta_rows = delta_rows;
  p.inc1_ms = inc_total / epochs;
  p.full_ms = full;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  const char* json_path = "BENCH_streaming.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }

  std::printf("# streaming: continuous `r - s` append epochs vs full "
              "recompute; 1M tuples/relation (scale=%.3g), per-fact chains, "
              "deltas alternate r/s\n", scale);
  PrintHeader("streaming");

  const std::size_t sizes[] = {Scaled(100000, scale), Scaled(1000000, scale)};
  const double fracs[] = {0.0001, 0.001, 0.01};

  std::string json = "{\n  \"experiment\": \"streaming\",\n";
  json += ProvenanceJson(/*threads=*/8);
  {
    char head[128];
    std::snprintf(head, sizeof(head), "  \"scale\": %.4g,\n  \"points\": [\n",
                  scale);
    json += head;
  }

  bool first = true;
  for (std::size_t n : sizes) {
    for (double frac : fracs) {
      Point p1 = Measure(n, frac, /*num_threads=*/1, nullptr);
      Point p8 = Measure(n, frac, /*num_threads=*/8, nullptr);
      p1.inc8_ms = p8.inc1_ms;
      p1.speedup = p1.inc1_ms > 0 ? p1.full_ms / p1.inc1_ms : 0.0;

      const std::string label = "delta=" + std::to_string(p1.delta_rows);
      PrintRow("streaming", "except", "incremental/1 " + label, n, p1.inc1_ms);
      PrintRow("streaming", "except", "incremental/8 " + label, n, p1.inc8_ms);
      PrintRow("streaming", "except", "full-recompute " + label, n, p1.full_ms);

      char line[320];
      std::snprintf(line, sizeof(line),
                    "{\"n\": %zu, \"delta_rows\": %zu, \"delta_frac\": %.4g, "
                    "\"incremental_ms_t1\": %.3f, \"incremental_ms_t8\": %.3f, "
                    "\"full_recompute_ms\": %.3f, \"speedup_t1\": %.2f}",
                    p1.n, p1.delta_rows, frac, p1.inc1_ms, p1.inc8_ms,
                    p1.full_ms, p1.speedup);
      std::printf("# json %s\n", line);
      if (!first) json += ",\n";
      first = false;
      json += std::string("    ") + line;
    }
  }
  json += "\n  ]\n}\n";

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "bench_streaming: cannot write %s\n", json_path);
    return 1;
  }
  return 0;
}
