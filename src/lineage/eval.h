// Probability computation over lineage formulas.
//
// The marginal probability of a result tuple is the probability that its
// lineage formula is true under independent Boolean variables (paper §III).
// Three evaluators are provided, mirroring the paper's references:
//  * ProbabilityReadOnce — linear time, exact for read-once (1OF) formulas,
//    i.e. for every non-repeating TP set query (Theorem 1 / Corollary 1).
//  * ProbabilityExact — Shannon expansion with hash-consed cofactors and
//    memoization (OBDD-style, refs [22]-[24]); exact for any formula,
//    exponential in the worst case (#P-hard in general).
//  * ProbabilityMonteCarlo — sampling approximation (refs [25]-[29]).
#ifndef TPSET_LINEAGE_EVAL_H_
#define TPSET_LINEAGE_EVAL_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "lineage/lineage.h"

namespace tpset {

/// Truth value of the formula under a complete assignment; `assignment[v]`
/// is the value of variable v. Variables beyond the vector are false.
bool EvaluateAssignment(const LineageManager& mgr, LineageId id,
                        const std::vector<bool>& assignment);

/// Exact probability for read-once formulas: independence of subformulas
/// holds because no variable is shared, so P(a∧b) = P(a)·P(b) and
/// P(a∨b) = 1−(1−P(a))(1−P(b)). For non-read-once formulas the result is
/// only an approximation (callers should check LineageManager::IsReadOnce).
double ProbabilityReadOnce(const LineageManager& mgr, LineageId id,
                           const VarTable& vars);

/// Exact probability for arbitrary formulas via Shannon expansion
/// P(f) = p_v·P(f|v=1) + (1−p_v)·P(f|v=0), always branching on the smallest
/// variable so cofactors hash-cons into an ROBDD-like DAG whose node
/// probabilities are memoized. May allocate new nodes in `mgr`.
double ProbabilityExact(LineageManager& mgr, LineageId id, const VarTable& vars);

/// Monte-Carlo estimate with `samples` independent draws of all variables
/// occurring in the formula.
double ProbabilityMonteCarlo(const LineageManager& mgr, LineageId id,
                             const VarTable& vars, std::size_t samples, Rng* rng);

}  // namespace tpset

#endif  // TPSET_LINEAGE_EVAL_H_
