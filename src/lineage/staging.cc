#include "lineage/staging.h"

#include <functional>

#include "common/value.h"

namespace tpset {

std::size_t StagingArena::CellKeyHash::operator()(const CellKey& k) const {
  std::size_t seed = static_cast<std::size_t>(k.kind);
  HashCombine(seed, std::hash<std::uint32_t>()(k.left));
  HashCombine(seed, std::hash<std::uint32_t>()(k.right));
  return seed;
}

LineageId StagingArena::Intern(LineageKind kind, LineageId left,
                               LineageId right) {
  if (hash_consing_) {
    auto [it, inserted] = cons_.try_emplace(
        CellKey{kind, left, right},
        static_cast<LineageId>(frozen_ + cells_.size()));
    if (inserted) cells_.push_back({kind, kInvalidVar, left, right});
    return it->second;
  }
  LineageId id = static_cast<LineageId>(frozen_ + cells_.size());
  cells_.push_back({kind, kInvalidVar, left, right});
  return id;
}

LineageId StagingArena::MakeNot(LineageId a) {
  assert(a != kNullLineage && "MakeNot over null lineage");
  if (a == LineageManager::kFalseId) return LineageManager::kTrueId;
  if (a == LineageManager::kTrueId) return LineageManager::kFalseId;
  // ¬¬x = x, but only for cells this arena owns; base nodes are unreadable
  // here (see the header's safety note).
  if (a >= frozen_ && cells_[a - frozen_].kind == LineageKind::kNot) {
    return cells_[a - frozen_].left;
  }
  return Intern(LineageKind::kNot, a, kNullLineage);
}

LineageId StagingArena::MakeAnd(LineageId a, LineageId b) {
  assert(a != kNullLineage && b != kNullLineage && "MakeAnd over null lineage");
  if (a == LineageManager::kFalseId || b == LineageManager::kFalseId) {
    return LineageManager::kFalseId;
  }
  if (a == LineageManager::kTrueId) return b;
  if (b == LineageManager::kTrueId) return a;
  if (a == b) return a;
  return Intern(LineageKind::kAnd, a, b);
}

LineageId StagingArena::MakeOr(LineageId a, LineageId b) {
  assert(a != kNullLineage && b != kNullLineage && "MakeOr over null lineage");
  if (a == LineageManager::kTrueId || b == LineageManager::kTrueId) {
    return LineageManager::kTrueId;
  }
  if (a == LineageManager::kFalseId) return b;
  if (b == LineageManager::kFalseId) return a;
  if (a == b) return a;
  return Intern(LineageKind::kOr, a, b);
}

void LineageManager::SpliceStaged(const StagingArena& staged,
                                  std::vector<LineageId>* remap) {
  const LineageId frozen = staged.frozen_size();
  const std::vector<LineageNode>& cells = staged.cells();
  assert(frozen <= nodes_.size() &&
         "staging arena was frozen against a longer prefix than this arena");
  remap->assign(cells.size(), kNullLineage);

  // Cells are appended verbatim in creation order, so the remap is a pure
  // affine shift: staged id frozen + i lands at base + i. Child references
  // to earlier cells shift by the same delta; frozen base ids and the null
  // sentinel of kNot cells pass through untouched. Deliberately NO consing
  // here — hashing every cell into the shared map would cost exactly the
  // serialized per-node intern work staging exists to avoid. Deduplication
  // is local per staging arena; a cell structurally equal to a node of
  // another partition (or a pre-existing one) becomes a duplicate arena
  // node — semantically neutral (valuation and canonical keys see through
  // it), bounded by the cross-partition sharing rate, and accepted as the
  // memory cost of an O(cells) mostly-memcpy merge.
  const LineageId base = static_cast<LineageId>(nodes_.size());
  // No reserve here: an exact-size reserve per splice would defeat the
  // vector's geometric growth — with many small morsel splices that turns
  // into a full arena copy per splice, O(nodes · splices).
  auto resolve = [&](LineageId id) -> LineageId {
    if (id == kNullLineage || id < frozen) return id;
    return id - frozen + base;
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const LineageNode& c = cells[i];
    (*remap)[i] = static_cast<LineageId>(nodes_.size());
    nodes_.push_back({c.kind, c.var, resolve(c.left), resolve(c.right)});
  }
}

}  // namespace tpset
