#include "lineage/parse.h"

#include <cctype>

namespace tpset {

namespace {

class Parser {
 public:
  Parser(const std::string& text, LineageManager* mgr, const VarTable& vars)
      : text_(text), mgr_(mgr), vars_(vars) {}

  Result<LineageId> Parse() {
    SkipSpace();
    if (Peek() == 'n' && text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      SkipSpace();
      if (pos_ != text_.size()) {
        return Status::InvalidArgument("'null' must be the entire expression");
      }
      return kNullLineage;
    }
    Result<LineageId> e = ParseExpr();
    if (!e.ok()) return e;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(pos_) + " in '" + text_ + "'");
    }
    return e;
  }

 private:
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool Consume(char c) {
    SkipSpace();
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<LineageId> ParseExpr() {
    Result<LineageId> left = ParseTerm();
    if (!left.ok()) return left;
    LineageId acc = *left;
    while (Consume('|')) {
      Result<LineageId> right = ParseTerm();
      if (!right.ok()) return right;
      acc = mgr_->MakeOr(acc, *right);
    }
    return acc;
  }

  Result<LineageId> ParseTerm() {
    Result<LineageId> left = ParseFactor();
    if (!left.ok()) return left;
    LineageId acc = *left;
    while (Consume('&')) {
      Result<LineageId> right = ParseFactor();
      if (!right.ok()) return right;
      acc = mgr_->MakeAnd(acc, *right);
    }
    return acc;
  }

  Result<LineageId> ParseFactor() {
    SkipSpace();
    if (Consume('!')) {
      Result<LineageId> inner = ParseFactor();
      if (!inner.ok()) return inner;
      return mgr_->MakeNot(*inner);
    }
    if (Consume('(')) {
      Result<LineageId> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) {
        return Status::InvalidArgument("expected ')' at offset " +
                                       std::to_string(pos_));
      }
      return inner;
    }
    return ParseIdent();
  }

  Result<LineageId> ParseIdent() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at offset " +
                                     std::to_string(start) + " in '" + text_ + "'");
    }
    std::string name = text_.substr(start, pos_ - start);
    if (name == "true") return mgr_->True();
    if (name == "false") return mgr_->False();
    Result<VarId> v = vars_.Find(name);
    if (!v.ok()) return v.status();
    return mgr_->MakeVar(*v);
  }

  const std::string& text_;
  LineageManager* mgr_;
  const VarTable& vars_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<LineageId> ParseLineage(const std::string& text, LineageManager* mgr,
                               const VarTable& vars) {
  return Parser(text, mgr, vars).Parse();
}

}  // namespace tpset
