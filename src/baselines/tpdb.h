// TPDB baseline: grounding + deduplication (Dylla et al. [1]).
//
// TPDB evaluates Datalog deduction rules with temporal predicates. For TP
// set intersection this becomes six rules, one per Allen overlap pattern,
// each translated to an inner join whose conditions are (in)equalities on
// the interval endpoints; the joins enumerate same-fact tuple pairs and
// test the pattern — a quadratic pair scan when facts have low selectivity
// (Figs. 7a, 9b). Lineage is maintained in an application-layer structure
// (here: the shared LineageManager). The subsequent deduplication step
// sorts the grounded tuples and adjusts intervals of duplicates.
//
// TP set union grounds with a conventional union rule (cheap) and leaves
// the interval adjustment to deduplication. TP set difference is NOT
// expressible (results may contain subintervals present in neither rule
// head), matching Table II.
#ifndef TPSET_BASELINES_TPDB_H_
#define TPSET_BASELINES_TPDB_H_

#include "common/setop.h"
#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// Statistics of a TPDB run (rule applications are the paper's grounding
/// cost driver).
struct TpdbStats {
  std::size_t pairs_tested = 0;    ///< same-fact pairs enumerated by the rules
  std::size_t grounded_tuples = 0; ///< tuples produced by grounding
};

/// Computes r opTp s with grounding + deduplication. kExcept returns
/// NotSupported (Table II).
Result<TpRelation> TpdbSetOp(SetOpKind op, const TpRelation& r,
                             const TpRelation& s, TpdbStats* stats = nullptr);

}  // namespace tpset

#endif  // TPSET_BASELINES_TPDB_H_
