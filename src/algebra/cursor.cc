#include "algebra/cursor.h"

#include <cassert>

#include "relation/validate.h"

namespace tpset {

std::vector<TpTuple> SetOpCursor::SortedCopy(const TpRelation& rel,
                                             SortMode mode) {
  std::vector<TpTuple> copy = rel.tuples();
  SortTuples(&copy, mode);
  return copy;
}

SetOpCursor::SetOpCursor(SetOpKind op, const TpRelation& r, const TpRelation& s,
                         SortMode sort_mode)
    : op_(op),
      mgr_(&r.context()->lineage()),
      r_(SortedCopy(r, sort_mode)),
      s_(SortedCopy(s, sort_mode)),
      adv_(r_, s_) {
  assert(ValidateSetOpInputs(r, s).ok());
}

bool SetOpCursor::CanContinue() const {
  switch (op_) {
    case SetOpKind::kIntersect:
      return (adv_.HasPendingR() || adv_.HasValidR()) &&
             (adv_.HasPendingS() || adv_.HasValidS());
    case SetOpKind::kUnion:
      return adv_.HasPendingR() || adv_.HasPendingS() || adv_.HasValidR() ||
             adv_.HasValidS();
    case SetOpKind::kExcept:
      return adv_.HasPendingR() || adv_.HasValidR();
  }
  return false;
}

bool SetOpCursor::Next(TpTuple* out) {
  LineageAwareWindow w;
  while (CanContinue()) {
    bool produced = adv_.Next(&w);
    assert(produced);
    (void)produced;
    switch (op_) {
      case SetOpKind::kIntersect:
        if (w.lr == kNullLineage || w.ls == kNullLineage) continue;
        *out = {w.fact, w.t, mgr_->ConcatAnd(w.lr, w.ls)};
        break;
      case SetOpKind::kUnion:
        *out = {w.fact, w.t, mgr_->ConcatOr(w.lr, w.ls)};
        break;
      case SetOpKind::kExcept:
        if (w.lr == kNullLineage) continue;
        *out = {w.fact, w.t, mgr_->ConcatAndNot(w.lr, w.ls)};
        break;
    }
    ++produced_;
    return true;
  }
  return false;
}

}  // namespace tpset
