// Continuously-maintained TP set queries over an append-only stream.
//
// The one-shot engine freezes its inputs: every new batch of temporal data
// would force a full recompute. This example exercises the incremental
// subsystem (src/incremental/) instead: it registers `diff = r - s` as a
// continuous query, then appends delta batches in a loop. Each append is one
// epoch; the engine resumes the per-fact LAWA sweep from its checkpoint
// (resweeping only frontier-straddling facts) and pushes an (inserted,
// retracted) delta to the subscriber. At the end, the accumulated result is
// checked against a from-scratch Execute of the same query.
//
// Usage: streaming [n_per_relation] [epochs] [--threads=N]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/stream.h"
#include "incremental/continuous_query.h"
#include "query/executor.h"
#include "relation/relation.h"

using namespace tpset;

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 1000000;
  std::size_t epochs = 20;
  std::size_t threads = 1;
  std::size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::atoll(argv[i] + 10));
    } else if (positional++ == 0) {
      n = static_cast<std::size_t>(std::atoll(argv[i]));
    } else {
      epochs = static_cast<std::size_t>(std::atoll(argv[i]));
    }
  }
  const std::size_t num_facts = n >= 1000 ? n / 1000 : 1;
  const std::size_t batch_rows = n >= 100 ? n / 100 : 1;  // 1% deltas

  auto ctx = std::make_shared<TpContext>();
  QueryExecutor exec(ctx);
  Rng rng(7);

  // Seed both relations with per-fact interval chains, tracking each
  // chain's cursor so appends always extend the timeline.
  std::vector<std::vector<TimePoint>> cursors(2,
                                              std::vector<TimePoint>(num_facts, 0));
  const char* names[2] = {"r", "s"};
  for (int ri = 0; ri < 2; ++ri) {
    TpRelation rel(ctx, Schema::SingleInt("fact"), names[ri]);
    SeedFactChains(&rel, n, &cursors[ri], &rng);
    Status st = exec.Register(rel);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("inputs: 2 x %zu tuples, %zu facts\n", n, num_facts);

  ContinuousOptions options;
  options.num_threads = threads;
  Clock::time_point t0 = Clock::now();
  Result<ContinuousQuery*> reg = exec.RegisterContinuous("diff", "r - s", options);
  if (!reg.ok()) {
    std::fprintf(stderr, "%s\n", reg.status().ToString().c_str());
    return 1;
  }
  ContinuousQuery* cq = *reg;
  std::printf("registered continuous query diff: r - s  (initial build: "
              "%.1f ms, %zu answer tuples, threads=%zu)\n",
              MsSince(t0), cq->size(), threads);

  std::size_t inserted = 0, retracted = 0;
  cq->Subscribe([&](const EpochDelta& d) {
    inserted = d.delta.inserted.size();
    retracted = d.delta.retracted.size();
  });

  double total_ms = 0.0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const std::size_t side = e % 2;  // alternate r and s appends
    DeltaBatch batch = NextChainBatch(&cursors[side], batch_rows, &rng);
    t0 = Clock::now();
    Result<EpochId> epoch = exec.Append(names[side], batch);
    const double ms = MsSince(t0);
    if (!epoch.ok()) {
      std::fprintf(stderr, "%s\n", epoch.status().ToString().c_str());
      return 1;
    }
    total_ms += ms;
    std::printf("epoch %2llu: +%zu tuples -> %s  delta: +%zu -%zu  acc=%zu  "
                "latency=%.2f ms\n",
                static_cast<unsigned long long>(*epoch), batch.size(),
                names[side], inserted, retracted, cq->size(), ms);
  }
  std::printf("applied %zu epochs (%.0f%% deltas) in %.1f ms total, "
              "%.2f ms/epoch\n",
              epochs, 100.0 * static_cast<double>(batch_rows) / static_cast<double>(n),
              total_ms, total_ms / static_cast<double>(epochs));

  // Cross-check: the accumulated state equals a full recompute.
  t0 = Clock::now();
  Result<TpRelation> oneshot = exec.Execute("r - s");
  const double full_ms = MsSince(t0);
  if (!oneshot.ok()) {
    std::fprintf(stderr, "%s\n", oneshot.status().ToString().c_str());
    return 1;
  }
  const bool equal = RelationsEquivalent(cq->Current(), *oneshot);
  std::printf("full recompute: %.1f ms (%zu tuples) -> accumulated state %s; "
              "incremental epoch is %.0fx faster\n",
              full_ms, oneshot->size(), equal ? "MATCHES" : "DIVERGED",
              full_ms / (total_ms / static_cast<double>(epochs)));
  return equal ? 0 : 1;
}
