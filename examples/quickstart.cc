// Quickstart: the paper's supermarket scenario (Fig. 1).
//
// Builds the three base relations, runs the TP set query
//   Q = c −Tp (a ∪Tp b)
// ("the product is in stock but nobody buys or orders it"), and prints the
// inputs, the intermediate union, all three set operations between a and c
// (the paper's Fig. 3), and the final answer with probabilities.
#include <iostream>

#include "lawa/set_ops.h"
#include "relation/io.h"
#include "relation/relation.h"

using namespace tpset;

namespace {

TpRelation MakeRelation(const std::shared_ptr<TpContext>& ctx, const char* name,
                        std::initializer_list<std::tuple<const char*, const char*,
                                                         TimePoint, TimePoint, double>>
                            rows) {
  TpRelation rel(ctx, Schema::SingleString("Product"), name);
  for (const auto& [product, var, ts, te, p] : rows) {
    Result<VarId> added = rel.AddBase({Value(std::string(product))},
                                      Interval(ts, te), p, var);
    if (!added.ok()) {
      std::cerr << "failed to add tuple: " << added.status().ToString() << '\n';
      std::exit(1);
    }
  }
  return rel;
}

}  // namespace

int main() {
  auto ctx = std::make_shared<TpContext>();

  // Fig. 1a: the input relations.
  TpRelation a = MakeRelation(ctx, "a (productsBought)",
                              {{"milk", "a1", 2, 10, 0.3},
                               {"chips", "a2", 4, 7, 0.8},
                               {"dates", "a3", 1, 3, 0.6}});
  TpRelation b = MakeRelation(ctx, "b (productsOrdered)",
                              {{"milk", "b1", 5, 9, 0.6},
                               {"chips", "b2", 3, 6, 0.9}});
  TpRelation c = MakeRelation(ctx, "c (productsInStock)",
                              {{"milk", "c1", 1, 4, 0.6},
                               {"milk", "c2", 6, 8, 0.7},
                               {"chips", "c3", 4, 5, 0.7},
                               {"chips", "c4", 7, 9, 0.8}});

  std::cout << "=== Input relations (paper Fig. 1a) ===\n";
  PrintRelation(std::cout, a);
  PrintRelation(std::cout, b);
  PrintRelation(std::cout, c);

  // Fig. 3: the three TP set operations between a and c.
  std::cout << "\n=== TP set operations between a and c (paper Fig. 3) ===\n";
  TpRelation auc = LawaUnion(a, c);
  auc.set_name("a ∪Tp c");
  PrintRelation(std::cout, auc);
  TpRelation amc = LawaExcept(a, c);
  amc.set_name("a −Tp c");
  PrintRelation(std::cout, amc);
  TpRelation aic = LawaIntersect(a, c);
  aic.set_name("a ∩Tp c");
  PrintRelation(std::cout, aic);

  // Fig. 1b/1c: the query plan and its answer.
  std::cout << "\n=== Query Q = c −Tp (a ∪Tp b) (paper Fig. 1b) ===\n";
  TpRelation u = LawaUnion(a, b);
  u.set_name("a ∪Tp b");
  PrintRelation(std::cout, u);
  TpRelation q = LawaExcept(c, u);
  q.set_name("Q = c −Tp (a ∪Tp b)   (paper Fig. 1c)");
  PrintRelation(std::cout, q);

  std::cout << "\nReading Q: tuple ('milk', c1∧¬a1, [2,4), 0.42) says that with\n"
               "probability 0.42 milk is in stock but neither bought nor ordered\n"
               "on days 2 and 3.\n";
  return 0;
}
