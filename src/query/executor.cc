#include "query/executor.h"

#include <future>
#include <utility>
#include <vector>

#include "parallel/parallel_set_op.h"
#include "parallel/sequencer.h"
#include "query/parser.h"
#include "relation/validate.h"

namespace tpset {

Status QueryExecutor::Register(const TpRelation& rel) {
  if (rel.name().empty()) {
    return Status::InvalidArgument("relations must be named to be registered");
  }
  if (rel.context() != ctx_) {
    return Status::InvalidArgument("relation '" + rel.name() +
                                   "' belongs to a different context");
  }
  TPSET_RETURN_NOT_OK(ValidateWellFormed(rel));
  TPSET_RETURN_NOT_OK(ValidateDuplicateFree(rel));
  TPSET_RETURN_NOT_OK(ValidateSortedFactTime(rel));
  if (catalog_.count(rel.name()) > 0) {
    return Status::InvalidArgument("relation '" + rel.name() +
                                   "' is already registered");
  }
  // ValidateSortedFactTime just proved the order, so the catalog copy gets
  // the sortedness witness — every query leaf then takes the zero-sort
  // fast path. Armed here, on the copy we own, rather than memoized
  // through the caller's const reference (which could race). The copy
  // becomes the base level of the relation's run-indexed storage.
  TpRelation copy = rel;
  copy.MarkSortedUnchecked();
  catalog_.emplace(std::piecewise_construct, std::forward_as_tuple(rel.name()),
                   std::forward_as_tuple(std::move(copy)));
  return Status::OK();
}

Result<const TpRelation*> QueryExecutor::Find(const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation named '" + name + "' is registered");
  }
  return &it->second.View();
}

Result<const StoredRelation*> QueryExecutor::FindStored(
    const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation named '" + name + "' is registered");
  }
  return &it->second;
}

Result<EpochId> QueryExecutor::Append(const std::string& relation,
                                      const DeltaBatch& batch) {
  std::lock_guard<std::mutex> fence(write_fence_);
  auto it = catalog_.find(relation);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation named '" + relation +
                            "' is registered");
  }
  std::vector<TpTuple> applied;
  Result<EpochId> epoch = append_log_.Append(&it->second, batch, &applied);
  if (!epoch.ok()) return epoch;
  const DeltaMap grouped = GroupInsertsByFact(applied);  // shared, not copied
  for (auto& [name, cq] : continuous_) {
    (void)name;
    if (cq->Reads(relation)) cq->ApplyAppend(*epoch, relation, grouped);
  }
  return epoch;
}

Result<std::size_t> QueryExecutor::Retain(const std::string& relation,
                                          TimePoint watermark) {
  std::lock_guard<std::mutex> fence(write_fence_);
  auto it = catalog_.find(relation);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation named '" + relation +
                            "' is registered");
  }
  StoredRelation& stored = it->second;
  TPSET_RETURN_NOT_OK(stored.SetWatermark(watermark));
  const std::size_t retired_before = stored.stats().tuples_retired;
  stored.Compact(CompactionPool());
  for (auto& [name, cq] : continuous_) {
    (void)name;
    if (cq->Reads(relation)) cq->Rebase();
  }
  return stored.stats().tuples_retired - retired_before;
}

Status QueryExecutor::Compact(const std::string& relation) {
  std::lock_guard<std::mutex> fence(write_fence_);
  auto it = catalog_.find(relation);
  if (it == catalog_.end()) {
    return Status::NotFound("no relation named '" + relation +
                            "' is registered");
  }
  it->second.Compact(CompactionPool());
  return Status::OK();
}

ThreadPool* QueryExecutor::CompactionPool() const {
  // Compactions run under the write fence, so no continuous query is
  // propagating and its pool is idle — reuse the widest one for the
  // fact-range-parallel merge instead of compacting sequentially.
  return continuous_pools_.empty() ? nullptr
                                   : continuous_pools_.rbegin()->second.get();
}

Result<ContinuousQuery*> QueryExecutor::RegisterContinuous(
    const std::string& name, const std::string& query,
    const ContinuousOptions& options) {
  Result<QueryPtr> parsed = ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  return RegisterContinuous(name, **parsed, options);
}

Result<ContinuousQuery*> QueryExecutor::RegisterContinuous(
    const std::string& name, const QueryNode& query,
    const ContinuousOptions& options) {
  if (name.empty()) {
    return Status::InvalidArgument("continuous queries must be named");
  }
  if (continuous_.count(name) > 0) {
    return Status::InvalidArgument("continuous query '" + name +
                                   "' is already registered");
  }
  ThreadPool* pool = nullptr;
  if (options.num_threads > 1) {
    std::unique_ptr<ThreadPool>& slot = continuous_pools_[options.num_threads];
    if (slot == nullptr) slot = std::make_unique<ThreadPool>(options.num_threads);
    pool = slot.get();
  }
  Result<std::unique_ptr<ContinuousQuery>> cq = ContinuousQuery::Compile(
      name, query, [this](const std::string& rel) { return FindStored(rel); },
      ctx_, options, pool);
  if (!cq.ok()) return cq.status();
  ContinuousQuery* ptr = cq->get();
  continuous_.emplace(name, std::move(*cq));
  return ptr;
}

Result<ContinuousQuery*> QueryExecutor::FindContinuous(
    const std::string& name) const {
  auto it = continuous_.find(name);
  if (it == continuous_.end()) {
    return Status::NotFound("no continuous query named '" + name +
                            "' is registered");
  }
  return it->second.get();
}

Result<TpRelation> QueryExecutor::Execute(const std::string& query,
                                          const SetOpAlgorithm* algorithm) const {
  Result<QueryPtr> parsed = ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  return Execute(**parsed, algorithm);
}

Result<TpRelation> QueryExecutor::Execute(const QueryNode& query,
                                          const SetOpAlgorithm* algorithm) const {
  if (algorithm == nullptr) algorithm = FindAlgorithm("LAWA");
  if (query.kind == QueryNode::Kind::kRelation) {
    Result<const TpRelation*> rel = Find(query.relation_name);
    if (!rel.ok()) return rel.status();
    return **rel;
  }
  if (!algorithm->Supports(query.op)) {
    return Status::NotSupported("algorithm " + algorithm->name() +
                                " does not support TP set " +
                                SetOpName(query.op) + " (Table II)");
  }
  Result<TpRelation> left = Execute(*query.left, algorithm);
  if (!left.ok()) return left;
  Result<TpRelation> right = Execute(*query.right, algorithm);
  if (!right.ok()) return right;
  return algorithm->Compute(query.op, *left, *right);
}

Result<TpRelation> QueryExecutor::Execute(const std::string& query,
                                          const ExecOptions& options,
                                          const SetOpAlgorithm* algorithm) const {
  Result<QueryPtr> parsed = ParseQuery(query);
  if (!parsed.ok()) return parsed.status();
  return Execute(**parsed, options, algorithm);
}

Result<TpRelation> QueryExecutor::Execute(const QueryNode& query,
                                          const ExecOptions& options,
                                          const SetOpAlgorithm* algorithm) const {
  if (options.num_threads <= 1) return Execute(query, algorithm);
  return ExecuteConcurrent(query, options, algorithm);
}

const ParallelSetOpAlgorithm* QueryExecutor::ParallelAlgoFor(
    const ExecOptions& options) const {
  std::lock_guard<std::mutex> lock(parallel_mu_);
  std::unique_ptr<ParallelSetOpAlgorithm>& slot = parallel_algos_[{
      options.num_threads, options.apply_mode, options.morsel_size,
      options.steal}];
  if (slot == nullptr) {
    MorselOptions morsel;
    morsel.morsel_size = options.morsel_size;
    morsel.steal = options.steal;
    slot = std::make_unique<ParallelSetOpAlgorithm>(
        options.num_threads, SortMode::kComparison,
        /*partitions_per_thread=*/4, options.apply_mode, morsel);
  }
  return slot.get();
}

const ParallelSetOpAlgorithm* QueryExecutor::ParallelAlgoFor(
    std::size_t num_threads, ApplyMode apply_mode) const {
  ExecOptions options;
  options.num_threads = num_threads;
  options.apply_mode = apply_mode;
  return ParallelAlgoFor(options);
}

namespace {

// First operator of the tree (post-order) that `algorithm` cannot compute;
// OK when the whole tree is supported.
Status CheckSupported(const QueryNode& q, const SetOpAlgorithm& algorithm) {
  if (q.kind == QueryNode::Kind::kRelation) return Status::OK();
  TPSET_RETURN_NOT_OK(CheckSupported(*q.left, algorithm));
  TPSET_RETURN_NOT_OK(CheckSupported(*q.right, algorithm));
  if (!algorithm.Supports(q.op)) {
    return Status::NotSupported("algorithm " + algorithm.name() +
                                " does not support TP set " + SetOpName(q.op) +
                                " (Table II)");
  }
  return Status::OK();
}

}  // namespace

Result<TpRelation> QueryExecutor::ExecuteConcurrent(
    const QueryNode& query, const ExecOptions& options,
    const SetOpAlgorithm* algorithm) const {
  if (algorithm == nullptr) algorithm = FindAlgorithm("LAWA");
  // Plain LAWA is transparently upgraded to its partitioned variant; any
  // other algorithm keeps its own Compute but is serialized per node (see
  // below), since only the partitioned algorithm can defer arena writes.
  const auto* parallel = dynamic_cast<const ParallelSetOpAlgorithm*>(algorithm);
  if (parallel == nullptr && algorithm->name() == "LAWA") {
    parallel = ParallelAlgoFor(options);
    algorithm = parallel;
  }
  TPSET_RETURN_NOT_OK(CheckSupported(query, *algorithm));

  // One std::async task per set-op node, joined through shared_futures; the
  // arena-mutating phase of node i waits for turn i of a post-order ticket
  // sequence, making the result bit-identical to sequential evaluation.
  // Query trees are user-written and small, so a thread per node is cheap;
  // the heavy data parallelism lives inside the partitioned algorithm.
  ApplySequencer sequencer;
  using NodeFuture = std::shared_future<Result<TpRelation>>;
  std::size_t next_ticket = 0;

  auto eval = [&](auto&& self, const QueryNode& node) -> NodeFuture {
    if (node.kind == QueryNode::Kind::kRelation) {
      std::promise<Result<TpRelation>> ready;
      Result<const TpRelation*> rel = Find(node.relation_name);
      if (!rel.ok()) {
        ready.set_value(rel.status());
      } else {
        ready.set_value(**rel);
      }
      return ready.get_future().share();
    }
    NodeFuture left = self(self, *node.left);
    NodeFuture right = self(self, *node.right);
    const std::size_t ticket = next_ticket++;  // post-order: children first
    const SetOpAlgorithm* algo = algorithm;
    const ParallelSetOpAlgorithm* par = parallel;
    ApplySequencer* seq = &sequencer;
    SetOpKind op = node.op;
    return std::async(std::launch::async,
                      [left, right, ticket, algo, par, seq, op]() {
                        // The guard keeps the ticket sequence alive on every
                        // exit, including exceptions rethrown by get() — an
                        // unreleased ticket would hang all later turns.
                        TurnGuard turn(seq, ticket);
                        const Result<TpRelation>& l = left.get();
                        const Result<TpRelation>& r = right.get();
                        if (!l.ok() || !r.ok()) {
                          return !l.ok() ? l : r;  // guard skips the turn
                        }
                        if (par != nullptr) {
                          turn.Disarm();  // ComputeSequenced owns the ticket
                          return Result<TpRelation>(
                              par->ComputeSequenced(op, *l, *r, seq, ticket));
                        }
                        // Foreign algorithm: its whole compute is the turn.
                        turn.Wait();
                        TpRelation out = algo->Compute(op, *l, *r);
                        turn.Release();
                        return Result<TpRelation>(std::move(out));
                      })
        .share();
  };

  return eval(eval, query).get();
}

}  // namespace tpset
