#include "query/parser.h"

#include <cctype>

namespace tpset {

std::string QueryToString(const QueryNode& q) {
  if (q.kind == QueryNode::Kind::kRelation) return q.relation_name;
  auto wrap = [](const QueryNode& child, bool need_parens) {
    std::string s = QueryToString(child);
    return need_parens ? "(" + s + ")" : s;
  };
  const char* sym = q.op == SetOpKind::kUnion      ? " | "
                    : q.op == SetOpKind::kIntersect ? " & "
                                                     : " - ";
  // Parenthesize children of lower precedence, and right-hand children at
  // equal precedence (the operators associate left).
  auto prec = [](SetOpKind op) { return op == SetOpKind::kIntersect ? 2 : 1; };
  bool left_parens = q.left->kind == QueryNode::Kind::kSetOp &&
                     prec(q.left->op) < prec(q.op);
  bool right_parens = q.right->kind == QueryNode::Kind::kSetOp &&
                      prec(q.right->op) <= prec(q.op);
  return wrap(*q.left, left_parens) + sym + wrap(*q.right, right_parens);
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<QueryPtr> Parse() {
    Result<QueryPtr> q = ParseUnionExcept();
    if (!q.ok()) return q;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(pos_) + " in '" + text_ + "'");
    }
    return q;
  }

 private:
  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<QueryPtr> ParseUnionExcept() {
    Result<QueryPtr> left = ParseIntersect();
    if (!left.ok()) return left;
    QueryPtr acc = std::move(*left);
    while (true) {
      char c = Peek();
      if (c != '|' && c != '-') break;
      ++pos_;
      Result<QueryPtr> right = ParseIntersect();
      if (!right.ok()) return right;
      acc = QueryNode::SetOp(c == '|' ? SetOpKind::kUnion : SetOpKind::kExcept,
                             std::move(acc), std::move(*right));
    }
    return acc;
  }

  Result<QueryPtr> ParseIntersect() {
    Result<QueryPtr> left = ParseFactor();
    if (!left.ok()) return left;
    QueryPtr acc = std::move(*left);
    while (Peek() == '&') {
      ++pos_;
      Result<QueryPtr> right = ParseFactor();
      if (!right.ok()) return right;
      acc = QueryNode::SetOp(SetOpKind::kIntersect, std::move(acc),
                             std::move(*right));
    }
    return acc;
  }

  Result<QueryPtr> ParseFactor() {
    char c = Peek();
    if (c == '(') {
      ++pos_;
      Result<QueryPtr> inner = ParseUnionExcept();
      if (!inner.ok()) return inner;
      if (Peek() != ')') {
        return Status::InvalidArgument("expected ')' at offset " +
                                       std::to_string(pos_) + " in '" + text_ + "'");
      }
      ++pos_;
      return inner;
    }
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected relation name at offset " +
                                     std::to_string(start) + " in '" + text_ + "'");
    }
    return QueryNode::Relation(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> ParseQuery(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace tpset
