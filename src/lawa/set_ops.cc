#include "lawa/set_ops.h"

#include <algorithm>
#include <cassert>

#include "lawa/advancer.h"
#include "relation/validate.h"

namespace tpset {

namespace {

// Stable LSD radix sort by the (fact, start, end) key using 16-bit counting
// passes — the §VI-B "counting-based sorting" variant, linear in input size.
// Start/end points are biased into unsigned space so negative time points
// sort correctly.
void RadixSortTuples(std::vector<TpTuple>* tuples) {
  const std::size_t n = tuples->size();
  if (n < 2) return;
  std::vector<TpTuple> scratch(n);

  auto pass = [&](auto key_of, int shift, int bits) {
    const std::size_t buckets = std::size_t{1} << bits;
    const std::size_t mask = buckets - 1;
    std::vector<std::size_t> count(buckets + 1, 0);
    for (const TpTuple& t : *tuples) {
      ++count[((key_of(t) >> shift) & mask) + 1];
    }
    for (std::size_t b = 1; b <= buckets; ++b) count[b] += count[b - 1];
    for (const TpTuple& t : *tuples) {
      scratch[count[(key_of(t) >> shift) & mask]++] = t;
    }
    tuples->swap(scratch);
  };

  auto end_key = [](const TpTuple& t) {
    return static_cast<std::uint64_t>(t.t.end) + (std::uint64_t{1} << 63);
  };
  auto start_key = [](const TpTuple& t) {
    return static_cast<std::uint64_t>(t.t.start) + (std::uint64_t{1} << 63);
  };
  auto fact_key = [](const TpTuple& t) { return std::uint64_t{t.fact}; };

  for (int shift = 0; shift < 64; shift += 16) pass(end_key, shift, 16);
  for (int shift = 0; shift < 64; shift += 16) pass(start_key, shift, 16);
  for (int shift = 0; shift < 32; shift += 16) pass(fact_key, shift, 16);
}

}  // namespace

void SortTuples(std::vector<TpTuple>* tuples, SortMode mode) {
  switch (mode) {
    case SortMode::kComparison:
      std::sort(tuples->begin(), tuples->end(), FactTimeOrder());
      break;
    case SortMode::kCounting:
      RadixSortTuples(tuples);
      break;
  }
}

TpRelation LawaSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                     SortMode sort_mode, LawaStats* stats) {
  assert(ValidateSetOpInputs(r, s).ok());
  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(),
                 "(" + r.name() + " " + SetOpName(op) + " " + s.name() + ")");

  // Step 1 of Fig. 5: sort both inputs by (F, Ts).
  std::vector<TpTuple> rs = r.tuples();
  std::vector<TpTuple> ss = s.tuples();
  SortTuples(&rs, sort_mode);
  SortTuples(&ss, sort_mode);

  // Steps 2-4: advance windows; filter on (λr, λs); concatenate lineages.
  // The loop conditions extend the paper's Algorithms 2-4 to also drain
  // still-valid tuples (see DESIGN.md, faithfulness note 3): windows keep
  // coming while the operation can still produce output.
  // parallel/parallel_set_op.cc mirrors these loops per fact-range
  // partition; keep any change to the conditions or filters in sync there.
  LineageAwareWindowAdvancer adv(rs, ss);
  LineageAwareWindow w;
  switch (op) {
    case SetOpKind::kIntersect:
      while ((adv.HasPendingR() || adv.HasValidR()) &&
             (adv.HasPendingS() || adv.HasValidS())) {
        bool produced = adv.Next(&w);
        assert(produced);
        (void)produced;
        if (w.lr != kNullLineage && w.ls != kNullLineage) {
          out.AddDerived(w.fact, w.t, mgr.ConcatAnd(w.lr, w.ls));
        }
      }
      break;
    case SetOpKind::kUnion:
      while (adv.HasPendingR() || adv.HasPendingS() || adv.HasValidR() ||
             adv.HasValidS()) {
        bool produced = adv.Next(&w);
        assert(produced);
        (void)produced;
        // Every window overlaps at least one valid tuple, so the ∪Tp filter
        // (λr ≠ null ∨ λs ≠ null) always passes.
        out.AddDerived(w.fact, w.t, mgr.ConcatOr(w.lr, w.ls));
      }
      break;
    case SetOpKind::kExcept:
      while (adv.HasPendingR() || adv.HasValidR()) {
        bool produced = adv.Next(&w);
        assert(produced);
        (void)produced;
        if (w.lr != kNullLineage) {
          out.AddDerived(w.fact, w.t, mgr.ConcatAndNot(w.lr, w.ls));
        }
      }
      break;
  }
  if (stats != nullptr) {
    stats->windows_produced = adv.windows_produced();
    stats->output_tuples = out.size();
  }
  return out;
}

Result<TpRelation> LawaSetOpChecked(SetOpKind op, const TpRelation& r,
                                    const TpRelation& s, SortMode sort_mode) {
  TPSET_RETURN_NOT_OK(ValidateSetOpInputs(r, s));
  return LawaSetOp(op, r, s, sort_mode);
}

}  // namespace tpset
