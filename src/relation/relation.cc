#include "relation/relation.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "lineage/eval.h"

namespace tpset {

Result<VarId> TpRelation::AddBase(const Fact& fact, Interval iv, double p,
                                  const std::string& var_name) {
  assert(ctx_ && "relation has no context");
  TPSET_RETURN_NOT_OK(schema_.Validate(fact));
  if (!iv.IsValid()) {
    return Status::InvalidArgument("empty interval " + ToString(iv));
  }
  if (!(p > 0.0 && p <= 1.0)) {
    return Status::InvalidArgument("probability must be in (0,1]");
  }
  VarId v;
  if (var_name.empty()) {
    v = ctx_->vars().Add(p);
  } else {
    Result<VarId> named = ctx_->vars().AddNamed(var_name, p);
    if (!named.ok()) return named.status();
    v = *named;
  }
  FactId f = ctx_->facts().Intern(fact);
  tuples_.push_back({f, iv, ctx_->lineage().MakeVar(v)});
  NoteAppended();
  return v;
}

VarId TpRelation::AddBaseFast(FactId fact, Interval iv, double p) {
  assert(ctx_ && "relation has no context");
  assert(iv.IsValid());
  VarId v = ctx_->vars().Add(p);
  tuples_.push_back({fact, iv, ctx_->lineage().MakeVar(v)});
  NoteAppended();
  return v;
}

void TpRelation::AddDerived(FactId fact, Interval iv, LineageId lineage) {
  assert(iv.IsValid());
  assert(lineage != kNullLineage && "derived tuples carry concrete lineage");
  tuples_.push_back({fact, iv, lineage});
  NoteAppended();
}

void TpRelation::MergeSortedAppend(std::vector<TpTuple> batch) {
  assert(sorted_ && "MergeSortedAppend requires the sortedness witness");
  assert(std::is_sorted(batch.begin(), batch.end(), FactTimeOrder()));
  if (batch.empty()) return;
  columnar_.Invalidate();
  const std::size_t old_size = tuples_.size();
  tuples_.insert(tuples_.end(), batch.begin(), batch.end());
  std::inplace_merge(tuples_.begin(), tuples_.begin() + old_size,
                     tuples_.end(), FactTimeOrder());
  sorted_ = true;  // merging two sorted runs preserves the witness
}

void TpRelation::SortFactTime() {
  columnar_.Invalidate();
  std::sort(tuples_.begin(), tuples_.end(), FactTimeOrder());
  sorted_ = true;
}

bool TpRelation::IsSortedFactTime() const {
  if (sorted_) return true;
  return std::is_sorted(tuples_.begin(), tuples_.end(), FactTimeOrder());
}

double TpRelation::TupleProbability(std::size_t i, ProbabilityMethod method,
                                    std::size_t samples, Rng* rng) const {
  const LineageId lin = tuples_[i].lineage;
  switch (method) {
    case ProbabilityMethod::kReadOnce:
      return ProbabilityReadOnce(ctx_->lineage(), lin, ctx_->vars());
    case ProbabilityMethod::kExact:
      return ProbabilityExact(ctx_->lineage(), lin, ctx_->vars());
    case ProbabilityMethod::kMonteCarlo: {
      assert(rng != nullptr && "Monte-Carlo valuation needs an Rng");
      return ProbabilityMonteCarlo(ctx_->lineage(), lin, ctx_->vars(), samples, rng);
    }
  }
  return 0.0;
}

bool RelationsEquivalent(const TpRelation& a, const TpRelation& b) {
  if (a.context() != b.context()) return false;
  if (a.size() != b.size()) return false;
  const LineageManager& mgr = a.context()->lineage();
  using Key = std::tuple<FactId, TimePoint, TimePoint, std::string>;
  std::vector<Key> ka, kb;
  ka.reserve(a.size());
  kb.reserve(b.size());
  for (const TpTuple& t : a.tuples()) {
    ka.emplace_back(t.fact, t.t.start, t.t.end, mgr.CanonicalKey(t.lineage));
  }
  for (const TpTuple& t : b.tuples()) {
    kb.emplace_back(t.fact, t.t.start, t.t.end, mgr.CanonicalKey(t.lineage));
  }
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace tpset
