// Minimal Status / Result error-handling types (RocksDB/Arrow idiom).
//
// Fallible user-facing APIs (validation, parsing, IO) return Status or
// Result<T>; internal invariants use assertions. No exceptions on hot paths.
#ifndef TPSET_COMMON_STATUS_H_
#define TPSET_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tpset {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kCorruption,
  kNotSupported,
  kIoError,
};

/// Outcome of a fallible operation: OK, or a code plus message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kNotFound: name = "NotFound"; break;
      case StatusCode::kCorruption: name = "Corruption"; break;
      case StatusCode::kNotSupported: name = "NotSupported"; break;
      case StatusCode::kIoError: name = "IoError"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): ergonomic returns.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define TPSET_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::tpset::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (false)

}  // namespace tpset

#endif  // TPSET_COMMON_STATUS_H_
