// Selection and projection over TP relations — the first step toward the
// full relational algebra the paper names as future work (§VIII).
//
// Selection filters on the conventional attributes only; intervals, lineage
// and probabilities pass through unchanged (σ commutes with the timeslice
// operator, so TP snapshot reducibility is trivially preserved).
//
// Projection maps each fact onto a subset of its attributes. Two tuples that
// disagreed on a projected-away attribute can collapse onto one fact with
// overlapping intervals; duplicate-freeness is re-established by OR-merging
// (relation/dedup.h), which mirrors probabilistic projection with duplicate
// elimination. Note that the merged lineages may repeat variables after
// further operations — projection is exactly where the hierarchy behind
// Theorem 1 can break, so the analyzer's read-once check (not the query
// shape) decides the valuation method for projected relations.
#ifndef TPSET_ALGEBRA_SELECT_PROJECT_H_
#define TPSET_ALGEBRA_SELECT_PROJECT_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// σ_pred(rel): keeps the tuples whose fact satisfies `pred`.
TpRelation Select(const TpRelation& rel,
                  const std::function<bool(const Fact&)>& pred);

/// Convenience: σ_{attr = value}(rel). `attr` is an index into the schema.
Result<TpRelation> SelectEquals(const TpRelation& rel, std::size_t attr,
                                const Value& value);

/// π_{attrs}(rel): projects every fact onto the given attribute indices
/// (in the given order), OR-merging tuples that collapse onto one fact.
Result<TpRelation> Project(const TpRelation& rel,
                           const std::vector<std::size_t>& attrs);

/// Merges adjacent same-fact tuples whose lineages are equivalent up to
/// commutativity/associativity — a normalization for hand-built relations
/// (outputs of the set operations are already change-preserved).
TpRelation CoalesceEquivalent(const TpRelation& rel);

}  // namespace tpset

#endif  // TPSET_ALGEBRA_SELECT_PROJECT_H_
