#!/usr/bin/env bash
# Tier-1 verification, as CI runs it: configure with warnings-as-errors,
# build everything (library, tests, benches, examples), run ctest.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . -DTPSET_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
