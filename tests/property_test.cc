// Randomized property tests: LAWA against the literal Def. 1-3 reference
// evaluator, change preservation, snapshot reducibility, Proposition 1 and
// Theorem 1, swept over dataset shapes with parameterized gtest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "lawa/advancer.h"
#include "lawa/set_ops.h"
#include "lineage/eval.h"
#include "relation/snapshot.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

struct PropertyCase {
  std::uint64_t seed;
  std::size_t tuples;
  std::size_t facts;
  TimePoint len_r;
  TimePoint len_s;
  TimePoint gap;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  return "seed" + std::to_string(c.seed) + "_n" + std::to_string(c.tuples) + "_f" +
         std::to_string(c.facts) + "_lr" + std::to_string(c.len_r) + "_ls" +
         std::to_string(c.len_s) + "_g" + std::to_string(c.gap);
}

class LawaPropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    const PropertyCase& c = GetParam();
    ctx_ = std::make_shared<TpContext>();
    // LAWA_TEST_SEED reruns every case shape under one seed; the case name
    // (CaseName) logs the seed on failure either way.
    seed_ = testing::PropertySeeds({c.seed})[0];
    Rng rng(seed_);
    SyntheticPairSpec spec;
    spec.num_tuples = c.tuples;
    spec.num_facts = c.facts;
    spec.max_interval_length_r = c.len_r;
    spec.max_interval_length_s = c.len_s;
    spec.max_time_distance = c.gap;
    auto pair = GenerateSyntheticPair(ctx_, spec, &rng);
    r_ = std::move(pair.first);
    s_ = std::move(pair.second);
    ASSERT_TRUE(ValidateSetOpInputs(r_, s_).ok());
  }

  std::shared_ptr<TpContext> ctx_;
  std::uint64_t seed_ = 0;
  TpRelation r_;
  TpRelation s_;
};

TEST_P(LawaPropertyTest, MatchesReferenceEvaluator) {
  for (SetOpKind op : kAllSetOps) {
    TpRelation expected = ReferenceSetOp(op, r_, s_);
    TpRelation actual = LawaSetOp(op, r_, s_);
    EXPECT_TRUE(RelationsEquivalent(expected, actual))
        << SetOpName(op) << ": expected " << expected.size() << " tuples, got "
        << actual.size();
  }
}

TEST_P(LawaPropertyTest, OutputsAreWellFormedDuplicateFreeRelations) {
  for (SetOpKind op : kAllSetOps) {
    TpRelation out = LawaSetOp(op, r_, s_);
    EXPECT_TRUE(ValidateWellFormed(out).ok()) << SetOpName(op);
    EXPECT_TRUE(ValidateDuplicateFree(out).ok()) << SetOpName(op);
    EXPECT_TRUE(out.IsSortedFactTime()) << SetOpName(op);
  }
}

TEST_P(LawaPropertyTest, ChangePreservation) {
  // Def. 2: no two adjacent same-fact output tuples carry equivalent
  // lineage (hash-consing makes syntactic equivalence an id comparison).
  for (SetOpKind op : kAllSetOps) {
    TpRelation out = LawaSetOp(op, r_, s_);
    for (std::size_t i = 1; i < out.size(); ++i) {
      if (out[i - 1].fact == out[i].fact &&
          out[i - 1].t.end == out[i].t.start) {
        EXPECT_NE(out[i - 1].lineage, out[i].lineage)
            << SetOpName(op) << " at tuple " << i << ": intervals not maximal";
      }
    }
  }
}

TEST_P(LawaPropertyTest, SnapshotReducibility) {
  // Def. 1: τt(op(r,s)) ≡ opp(τt(r), τt(s)) at sampled time points.
  LineageManager& mgr = ctx_->lineage();
  for (SetOpKind op : kAllSetOps) {
    TpRelation out = LawaSetOp(op, r_, s_);
    Rng rng(seed_ ^ 0xabcdef);
    TimePoint horizon = 1;
    for (const TpTuple& t : r_.tuples()) horizon = std::max(horizon, t.t.end);
    for (const TpTuple& t : s_.tuples()) horizon = std::max(horizon, t.t.end);
    for (int probe = 0; probe < 24; ++probe) {
      TimePoint t = rng.Uniform(0, horizon);
      // Left side: the output's snapshot at t.
      std::vector<std::pair<FactId, std::string>> left;
      for (const TpTuple& tup : out.tuples()) {
        if (tup.t.Contains(t)) left.emplace_back(tup.fact, mgr.CanonicalKey(tup.lineage));
      }
      // Right side: the probabilistic op over the input snapshots at t.
      std::vector<std::pair<FactId, std::string>> right;
      for (const auto& [fact, lin] : SnapshotSetOp(op, r_, s_, t)) {
        right.emplace_back(fact, mgr.CanonicalKey(lin));
      }
      std::sort(left.begin(), left.end());
      std::sort(right.begin(), right.end());
      EXPECT_EQ(left, right) << SetOpName(op) << " at t=" << t;
    }
  }
}

TEST_P(LawaPropertyTest, Proposition1WindowBound) {
  std::vector<TpTuple> rs = r_.tuples();
  std::vector<TpTuple> ss = s_.tuples();
  SortTuples(&rs, SortMode::kComparison);
  SortTuples(&ss, SortMode::kComparison);
  LineageAwareWindowAdvancer adv(rs, ss);
  LineageAwareWindow w;
  while (adv.Next(&w)) {
  }
  std::vector<FactId> facts;
  for (const TpTuple& t : rs) facts.push_back(t.fact);
  for (const TpTuple& t : ss) facts.push_back(t.fact);
  std::sort(facts.begin(), facts.end());
  facts.erase(std::unique(facts.begin(), facts.end()), facts.end());
  EXPECT_LE(adv.windows_produced(),
            2 * rs.size() + 2 * ss.size() - facts.size());
}

TEST_P(LawaPropertyTest, Theorem1OutputsAreReadOnce) {
  // A single set operation is trivially a non-repeating query; all output
  // lineages must be in 1OF, and the read-once valuation must equal the
  // exact Shannon valuation (Corollary 1's PTIME path is exact).
  LineageManager& mgr = ctx_->lineage();
  const VarTable& vars = ctx_->vars();
  for (SetOpKind op : kAllSetOps) {
    TpRelation out = LawaSetOp(op, r_, s_);
    std::size_t probes = 0;
    for (std::size_t i = 0; i < out.size() && probes < 50; i += 7, ++probes) {
      ASSERT_TRUE(mgr.IsReadOnce(out[i].lineage)) << SetOpName(op);
      EXPECT_NEAR(ProbabilityReadOnce(mgr, out[i].lineage, vars),
                  ProbabilityExact(mgr, out[i].lineage, vars), 1e-9);
    }
  }
}

TEST_P(LawaPropertyTest, AlgebraicIdentities) {
  auto project = [](const TpRelation& rel) {
    std::vector<std::tuple<FactId, TimePoint, TimePoint>> keys;
    for (const TpTuple& t : rel.tuples()) keys.emplace_back(t.fact, t.t.start, t.t.end);
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  // Union and intersection are symmetric on facts + intervals (lineage
  // operand order differs).
  EXPECT_EQ(project(LawaUnion(r_, s_)), project(LawaUnion(s_, r_)));
  EXPECT_EQ(project(LawaIntersect(r_, s_)), project(LawaIntersect(s_, r_)));
  // Idempotence: both valid tuples are the same tuple, and or(λ,λ)/and(λ,λ)
  // fold to λ, so r ∪ r ≡ r ∩ r ≡ r exactly (tuples and lineages).
  EXPECT_TRUE(RelationsEquivalent(LawaUnion(r_, r_), r_));
  EXPECT_TRUE(RelationsEquivalent(LawaIntersect(r_, r_), r_));
  // Note: r ∩ s and r − (r − s) are NOT interval-equivalent in TP
  // semantics — the −Tp filter keeps zero-probability tuples with lineage
  // λr∧¬λr wherever only r is valid (Def. 3 admits any non-null λr).
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LawaPropertyTest,
    ::testing::Values(
        PropertyCase{1, 60, 1, 3, 3, 3},       // paper's runtime setting
        PropertyCase{2, 60, 1, 10, 10, 3},     // heavy overlap
        PropertyCase{3, 80, 1, 100, 3, 3},     // Table III OF≈0.03 shape
        PropertyCase{4, 80, 1, 50, 10, 3},     // Table III OF≈0.4 shape
        PropertyCase{5, 90, 5, 3, 3, 3},       // few facts
        PropertyCase{6, 90, 30, 3, 3, 3},      // many facts, sparse
        PropertyCase{7, 120, 7, 1, 1, 0},      // unit intervals, dense adjacency
        PropertyCase{8, 100, 2, 20, 1, 1},     // long vs short
        PropertyCase{9, 100, 2, 1, 20, 1},     // short vs long
        PropertyCase{10, 150, 50, 5, 5, 5},    // facts ≈ tuples/3
        PropertyCase{11, 40, 40, 4, 4, 2},     // one tuple per fact
        PropertyCase{12, 200, 3, 7, 13, 4}),   // asymmetric mix
    CaseName);

}  // namespace
}  // namespace tpset
