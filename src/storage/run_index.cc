#include "storage/run_index.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <string>
#include <utility>

namespace tpset {

RunMergeIterator::RunMergeIterator(const std::vector<TupleSpan>& spans) {
  heap_.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].empty()) continue;
    heap_.push_back({spans[i].begin(), spans[i].end(), i});
  }
  std::make_heap(heap_.begin(), heap_.end(), After);
}

bool RunMergeIterator::After(const Cursor& a, const Cursor& b) {
  FactTimeOrder lt;
  if (lt(*b.cur, *a.cur)) return true;
  if (lt(*a.cur, *b.cur)) return false;
  return a.run > b.run;
}

void RunMergeIterator::Next() {
  assert(Valid());
  std::pop_heap(heap_.begin(), heap_.end(), After);
  Cursor& c = heap_.back();
  if (++c.cur == c.end) {
    heap_.pop_back();
  } else {
    std::push_heap(heap_.begin(), heap_.end(), After);
  }
}

std::size_t MergeRuns(const std::vector<TupleSpan>& spans, TimePoint watermark,
                      std::vector<TpTuple>* out) {
  std::size_t total = 0;
  for (const TupleSpan& s : spans) total += s.size;
  out->reserve(out->size() + total);
  std::size_t dropped = 0;
  for (RunMergeIterator it(spans); it.Valid(); it.Next()) {
    const TpTuple& t = it.Get();
    if (t.t.end <= watermark) {
      ++dropped;
      continue;
    }
    out->push_back(t);
  }
  return dropped;
}

Status RunIndex::Append(std::vector<TpTuple> batch, EpochId epoch,
                        StorageStats* stats, bool allow_roll) {
  if (epoch <= last_epoch_) {
    return Status::InvalidArgument(
        "stale or duplicate epoch " + std::to_string(epoch) +
        " (run index is at epoch " + std::to_string(last_epoch_) + ")");
  }
  assert(std::is_sorted(batch.begin(), batch.end(), FactTimeOrder()) &&
         "runs must be (fact, start, end)-sorted");
  last_epoch_ = epoch;
  if (batch.empty()) return Status::OK();

  total_ += batch.size();

  // Size-tiered roll: fold the incoming run into its predecessor while the
  // predecessor is less than twice its size. Every tuple is re-merged
  // O(log(appended / batch)) times before a compaction claims it, and the
  // run count stays logarithmic — the classic binary-counter amortization.
  // Published runs are immutable, so each roll builds a fresh merged run.
  if (allow_roll) {
    while (!runs_.empty() &&
           runs_.back()->tuples.size() < 2 * batch.size()) {
      const SortedRun& prev = *runs_.back();
      std::vector<TpTuple> merged;
      merged.reserve(prev.tuples.size() + batch.size());
      std::merge(prev.tuples.begin(), prev.tuples.end(), batch.begin(),
                 batch.end(), std::back_inserter(merged), FactTimeOrder());
      batch = std::move(merged);
      runs_.pop_back();
      if (stats != nullptr) stats->runs_merged += 2;
    }
  }
  runs_.push_back(
      std::make_shared<const SortedRun>(SortedRun{std::move(batch), epoch}));
  return Status::OK();
}

std::vector<TupleSpan> RunIndex::spans() const {
  std::vector<TupleSpan> out;
  out.reserve(runs_.size());
  for (const std::shared_ptr<const SortedRun>& r : runs_) {
    if (!r->tuples.empty()) out.push_back({r->tuples.data(), r->tuples.size()});
  }
  return out;
}

RunIndex RunIndex::WithoutPrefix(std::size_t k) const {
  assert(k <= runs_.size());
  RunIndex out;
  out.runs_.assign(runs_.begin() + static_cast<std::ptrdiff_t>(k),
                   runs_.end());
  out.last_epoch_ = last_epoch_;
  for (const std::shared_ptr<const SortedRun>& r : out.runs_) {
    out.total_ += r->tuples.size();
  }
  return out;
}

void RunIndex::Clear() {
  runs_.clear();
  total_ = 0;
}

}  // namespace tpset
