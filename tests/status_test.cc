// Status / Result error-handling types.
#include <gtest/gtest.h>

#include "common/status.h"

namespace tpset {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Helper(bool fail) {
  TPSET_RETURN_NOT_OK(fail ? Status::IoError("inner") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace tpset
