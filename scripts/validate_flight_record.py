#!/usr/bin/env python3
"""Validates a flight-record JSON dump against flight_record_schema.json.

Usage: validate_flight_record.py <flight_record.json> [schema.json]

Checks (any failure exits non-zero with a message per violation):
  * the file parses as one JSON object with every top-level field present
    and of the declared type (metrics/events/slow_queries are arrays);
  * every metric entry carries the declared fields, a known kind, a
    tpset_-prefixed name, samples == len(series) clamped to the trailing-
    series cap, and internally consistent window stats (min <= avg <= max
    for gauges; non-negative rate inputs for counters/histograms);
  * counter and histogram series are monotone non-decreasing (cumulative
    samples — a decreasing series means torn ring reads);
  * every event carries the declared fields, a known severity, and a
    positive seq; seqs are strictly increasing (emission order);
  * every slow-query exemplar carries the declared fields, a known kind,
    wall_ms >= threshold_ms (it was retained *because* it was slow), and a
    profile that is an object or null.

Run by scripts/ci.sh after the REPL-driven flight-record smoke; also the
oracle for the forked-child crash-dump test. Stdlib only.
"""

import json
import os
import sys

TYPE_CHECKS = {
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "str": lambda v: isinstance(v, str),
    "array": lambda v: isinstance(v, list),
    "object_or_null": lambda v: v is None or isinstance(v, dict),
}


def fail(errors):
    for e in errors:
        print(f"validate_flight_record: {e}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, label, errors):
    ok = True
    for name, kind in fields.items():
        if name not in obj:
            errors.append(f"{label}: missing field {name!r}")
            ok = False
        elif not TYPE_CHECKS[kind](obj[name]):
            errors.append(
                f"{label}: field {name!r} = {obj[name]!r} is not a {kind}"
            )
            ok = False
    return ok


def main():
    if len(sys.argv) < 2:
        fail(["usage: validate_flight_record.py <flight_record.json> [schema.json]"])
    record_path = sys.argv[1]
    schema_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(__file__), "flight_record_schema.json")
    )

    with open(schema_path) as f:
        schema = json.load(f)

    errors = []
    try:
        with open(record_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail([f"{record_path}: not valid JSON ({e})"])
    if not isinstance(doc, dict):
        fail([f"{record_path}: top level is not an object"])

    check_fields(doc, schema["top_level"], "top level", errors)
    if errors:
        fail(errors)

    if doc["flight_record"] != schema["version"]:
        errors.append(
            f"flight_record version {doc['flight_record']} != "
            f"schema version {schema['version']}"
        )

    for i, m in enumerate(doc["metrics"]):
        label = f"metrics[{i}]"
        if not isinstance(m, dict):
            errors.append(f"{label}: not an object")
            continue
        if not check_fields(m, schema["metric_fields"], label, errors):
            continue
        label = f"metrics[{i}] ({m['name']})"
        if not m["name"].startswith("tpset_"):
            errors.append(f"{label}: name lacks the tpset_ prefix")
        if m["kind"] not in schema["metric_kinds"]:
            errors.append(f"{label}: unknown kind {m['kind']!r}")
        if m["samples"] <= 0:
            errors.append(f"{label}: entry emitted with no samples")
        if len(m["series"]) > m["samples"]:
            errors.append(
                f"{label}: series longer than samples "
                f"({len(m['series'])} > {m['samples']})"
            )
        if m["kind"] == "gauge":
            if not (m["min"] <= m["avg"] <= m["max"]):
                errors.append(
                    f"{label}: avg {m['avg']} outside [min={m['min']}, "
                    f"max={m['max']}]"
                )
        else:
            # Cumulative series must be monotone; a dip means a torn read.
            series = m["series"]
            if any(a > b for a, b in zip(series, series[1:])):
                errors.append(f"{label}: cumulative series is not monotone")
            if m["last"] < m["first"]:
                errors.append(
                    f"{label}: last {m['last']} < first {m['first']} "
                    "(cumulative metric went backwards)"
                )

    prev_seq = 0
    for i, e in enumerate(doc["events"]):
        label = f"events[{i}]"
        if not isinstance(e, dict):
            errors.append(f"{label}: not an object")
            continue
        if not check_fields(e, schema["event_fields"], label, errors):
            continue
        if e["severity"] not in schema["event_severities"]:
            errors.append(f"{label}: unknown severity {e['severity']!r}")
        if e["seq"] <= prev_seq:
            errors.append(
                f"{label}: seq {e['seq']} not increasing (prev {prev_seq})"
            )
        prev_seq = e["seq"]

    for i, s in enumerate(doc["slow_queries"]):
        label = f"slow_queries[{i}]"
        if not isinstance(s, dict):
            errors.append(f"{label}: not an object")
            continue
        if not check_fields(s, schema["slow_query_fields"], label, errors):
            continue
        if s["kind"] not in schema["slow_query_kinds"]:
            errors.append(f"{label}: unknown kind {s['kind']!r}")
        if s["wall_ms"] < s["threshold_ms"]:
            errors.append(
                f"{label}: wall {s['wall_ms']}ms below its own threshold "
                f"{s['threshold_ms']}ms"
            )

    if errors:
        fail(errors)
    print(
        f"validate_flight_record: OK ({len(doc['metrics'])} metrics, "
        f"{len(doc['events'])} events, {len(doc['slow_queries'])} slow, "
        f"crash_signal={doc['crash_signal']})"
    )


if __name__ == "__main__":
    main()
