// Thread-scaling of the partitioned parallel engine: LAWA-P at 1/2/4/8
// threads against sequential LAWA on a 1M-tuple-per-relation synthetic pair
// (scaled by TPSET_BENCH_SCALE), all three operations, in both apply modes
// (bit-identical and staged; see parallel/parallel_set_op.h).
//
// Each LAWA-P measurement carries the per-phase wall-time breakdown
// (sort/split/advance/apply); `apply` is the sequential arena-mutating tail
// — the Amdahl term the staged mode attacks. The context uses hash-consing
// (the production default), which is what makes the bit-identical apply
// phase hash-heavy. Every rep runs against a freshly generated context and
// pair (same seed): a production operation builds lineage formulas the
// arena has not seen, so a warm-arena rerun — where every intern degrades
// to a cache hit — would systematically understate the apply phase.
//
// A second section benchmarks the morsel scheduler under *fact skew* —
// zipf(s=1.2) and a single 90%-weight fact — against the legacy static
// partitioner (MorselOptions{.enabled = false}). Each configuration runs
// for real (per-phase breakdown via ComputeTimed) and is additionally
// *modeled* at 8 workers: per-unit staged sweep and splice times are
// measured in isolation (this is exact — units run back to back on one
// core), then list-scheduled greedily onto 8 idealized workers. The model
// exists because wall-clock speedup at N threads saturates at the host's
// core count (CI containers often pin 1-2 cores); the modeled makespan
// isolates the scheduling effect the morsel design targets: static
// apply+sweep = makespan + serial apply (barrier), morsel apply+sweep =
// max(makespan, apply) (overlapped splice). Both real and modeled numbers
// land in the JSON.
//
// A third section A/Bs the sweep kernels (scalar vs columnar SoA, see
// DESIGN.md "Columnar sweep kernel"): pure t1 sweep walls (window
// enumeration only — the whole-op wall is dominated by lineage
// concatenation, which no sweep kernel can move), whole-op t1 walls,
// LAWA-P/8 bit-identical walls, with the window streams and outputs
// cross-checked — any scalar/columnar divergence exits non-zero. A radix
// vs comparison sort measurement on shuffled input rides along.
//
// Output: the harness CSV rows, one "# json {...}" summary line per
// operation, and a machine-readable summary written to BENCH_parallel.json
// (override with --json <path>) so the perf trajectory is tracked across
// PRs.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <random>

#include "bench/harness.h"
#include "datagen/synthetic.h"
#include "lawa/advancer.h"
#include "lawa/columnar_advancer.h"
#include "lawa/set_ops.h"
#include "lineage/staging.h"
#include "net/http_server.h"
#include "obs/export.h"
#include "obs/http_endpoints.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "parallel/parallel_set_op.h"
#include "parallel/partition.h"
#include "parallel/scheduler.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

struct Sample {
  double wall_ms = 0.0;
  PhaseTimings phases;
};

struct Workload {
  SyntheticPairSpec spec;

  // Fresh context + pair, deterministic across calls (fixed seed).
  std::pair<TpRelation, TpRelation> Fresh() const {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/true);
    Rng rng(0x9A7A11E1);
    return GenerateSyntheticPair(ctx, spec, &rng);
  }
};

// Best-of-reps wall time (with the fastest run's phase breakdown), each rep
// against a cold arena. Generation time is excluded from the measurement.
Sample BestTimedCold(int reps, const Workload& wl,
                     const ParallelSetOpAlgorithm& algo, SetOpKind op) {
  Sample best;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = wl.Fresh();
    PhaseTimings t;
    double ms = TimeMs([&]() {
      TpRelation out = algo.ComputeTimed(op, r, s, &t);
      (void)out;
    });
    if (i == 0 || ms < best.wall_ms) best = Sample{ms, t};
  }
  return best;
}

// Cold-arena best-of-reps for sequential LAWA.
double BestSequentialCold(int reps, const Workload& wl, SetOpKind op) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = wl.Fresh();
    double ms = TimeMs([&]() {
      TpRelation out = LawaSetOp(op, r, s);
      (void)out;
    });
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

void AppendPhaseJson(std::string* out, std::size_t threads, const Sample& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "\"t%zu\":{\"wall_ms\":%.3f,\"sort_ms\":%.3f,\"split_ms\":%.3f,"
                "\"advance_ms\":%.3f,\"apply_ms\":%.3f}",
                threads, s.wall_ms, s.phases.sort_ms, s.phases.split_ms,
                s.phases.advance_ms, s.phases.apply_ms);
  *out += buf;
}

// ---- Skewed scenarios (morsel scheduler vs static partitioner) ------------

constexpr std::size_t kSkewThreads = 8;
constexpr std::size_t kSkewPartitionsPerThread = 4;

// Fresh skewed pair, deterministic across calls.
std::pair<TpRelation, TpRelation> FreshSkewPair(const SkewedPairSpec& spec) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/true);
  Rng rng(0x5EED5EED);
  return GenerateSkewedPair(ctx, spec, &rng);
}

struct SkewSample {
  Sample run;
  LawaStats stats;
};

// Best-of-reps real execution with the given morsel config, cold arenas.
SkewSample BestSkewCold(int reps, const SkewedPairSpec& spec,
                        const MorselOptions& morsel, SetOpKind op) {
  SkewSample best;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = FreshSkewPair(spec);
    ParallelSetOpAlgorithm algo(kSkewThreads, SortMode::kComparison,
                                kSkewPartitionsPerThread, ApplyMode::kStaged,
                                morsel);
    PhaseTimings t;
    LawaStats stats;
    double ms = TimeMs([&]() {
      TpRelation out = algo.ComputeTimed(op, r, s, &t, &stats);
      (void)out;
    });
    if (i == 0 || ms < best.run.wall_ms) best = SkewSample{{ms, t}, stats};
  }
  return best;
}

// Per-unit staged sweep and serial splice times, measured in isolation (one
// unit at a time, which single-core hosts make exact). Mutates the pair's
// context — callers pass a fresh pair.
struct UnitTimes {
  std::vector<double> sweep_ms;  // per plan unit, plan order
  double apply_ms = 0.0;         // total serial splice + remap time
};

UnitTimes MeasureStagedUnits(SetOpKind op, const TpRelation& r,
                             const TpRelation& s,
                             const std::vector<FactPartition>& units) {
  const TpTuple* rdata = r.tuples().data();
  const TpTuple* sdata = s.tuples().data();
  LineageId frozen = 2;
  for (const TpTuple& t : r.tuples()) {
    if (t.lineage != kNullLineage && t.lineage >= frozen) frozen = t.lineage + 1;
  }
  for (const TpTuple& t : s.tuples()) {
    if (t.lineage != kNullLineage && t.lineage >= frozen) frozen = t.lineage + 1;
  }
  LineageManager& mgr = r.context()->lineage();
  UnitTimes out;
  out.sweep_ms.reserve(units.size());
  std::vector<LineageId> remap;
  for (const FactPartition& part : units) {
    StagingArena arena(frozen, mgr.hash_consing());
    std::vector<TpTuple> tuples;
    out.sweep_ms.push_back(TimeMs([&]() {
      LineageAwareWindowAdvancer adv(
          rdata + part.r_begin, part.r_end - part.r_begin,
          sdata + part.s_begin, part.s_end - part.s_begin);
      ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
        LineageId lin = kNullLineage;
        switch (op) {
          case SetOpKind::kIntersect:
            lin = arena.ConcatAnd(w.lr, w.ls);
            break;
          case SetOpKind::kUnion:
            lin = arena.ConcatOr(w.lr, w.ls);
            break;
          case SetOpKind::kExcept:
            lin = arena.ConcatAndNot(w.lr, w.ls);
            break;
        }
        tuples.push_back({w.fact, w.t, lin});
      });
    }));
    out.apply_ms += TimeMs([&]() {
      mgr.SpliceStaged(arena, &remap);
      for (TpTuple& t : tuples) {
        if (t.lineage != kNullLineage && t.lineage >= frozen) {
          t.lineage = remap[t.lineage - frozen];
        }
      }
    });
  }
  return out;
}

// ---- Kernel A/B (scalar vs columnar advance) ------------------------------

// One surviving window as the sweep emitted it, before lineage
// concatenation — the stream both kernels must produce identically.
struct KernelWindow {
  FactId fact;
  TimePoint start, end;
  LineageId lr, ls;
  bool operator==(const KernelWindow& o) const {
    return fact == o.fact && start == o.start && end == o.end && lr == o.lr &&
           ls == o.ls;
  }
};

// Whole-operation sequential wall with a pinned kernel, cold arena per rep.
double BestSequentialKernelCold(int reps, const Workload& wl, SetOpKind op,
                                SweepKernel kernel) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = wl.Fresh();
    double ms = TimeMs([&]() {
      TpRelation out = LawaSetOp(op, r, s, SortMode::kComparison,
                                 /*stats=*/nullptr, kernel);
      (void)out;
    });
    if (i == 0 || ms < best) best = ms;
  }
  return best;
}

// LAWA-P/8 bit-identical wall with a pinned kernel, cold arena per rep;
// `out` receives the result tuples (identical across reps — cold arena +
// bit-identical apply are deterministic), for the cross-kernel byte check.
Sample BestParallelKernelCold(int reps, const Workload& wl, SetOpKind op,
                              SweepKernel kernel, std::vector<TpTuple>* out) {
  Sample best;
  for (int i = 0; i < reps; ++i) {
    auto [r, s] = wl.Fresh();
    ParallelSetOpAlgorithm algo(8, SortMode::kComparison, 4,
                                ApplyMode::kBitIdentical, MorselOptions{},
                                kernel);
    PhaseTimings t;
    double ms = TimeMs([&]() {
      TpRelation res = algo.ComputeTimed(op, r, s, &t);
      if (i == 0) *out = res.tuples();
    });
    if (i == 0 || ms < best.wall_ms) best = Sample{ms, t};
  }
  return best;
}

// Greedy list scheduling of the units in plan order onto `workers`
// idealized workers (each unit lands on the least-loaded one) — what the
// stealing deques approximate. For the static plan this models the legacy
// pool; a single heavy unit dominates the result exactly as it pins a
// worker in practice.
double Makespan(const std::vector<double>& durations, std::size_t workers) {
  std::vector<double> load(workers, 0.0);
  for (double d : durations) {
    *std::min_element(load.begin(), load.end()) += d;
  }
  return *std::max_element(load.begin(), load.end());
}

// ---- Serving-overhead harness (--serve) -----------------------------------

// One blocking loopback GET, reading the response to EOF. Returns bytes
// received (0 on any failure — the bench does not care why a scrape missed,
// only that the server was under scrape load while it measured).
std::size_t ScrapeOnce(std::uint16_t port, const char* target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::size_t total = 0;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    std::string request = std::string("GET ") + target +
                          " HTTP/1.1\r\nHost: bench\r\n\r\n";
    if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) ==
        static_cast<ssize_t>(request.size())) {
      char buf[4096];
      ssize_t got;
      while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
        total += static_cast<std::size_t>(got);
      }
    }
  }
  ::close(fd);
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  // The bench runs with the flight recorder's collector live (as production
  // does): its sampling overhead is part of what the committed numbers
  // measure. DESIGN.md records the measured on/off delta.
  obs::Recorder::Global().Start();
  double scale = ScaleFactor(argc, argv);
  const char* json_path = "BENCH_parallel.json";
  const char* metrics_path = nullptr;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics_path = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    }
  }

  // --serve: run the introspection HTTP server on an ephemeral loopback
  // port for the whole bench, with a client thread scraping /metrics every
  // 100ms — the production "Prometheus is watching" configuration. Compare
  // the measured walls against a --serve-less run to put a number on
  // serving overhead (recorded in DESIGN.md; the gate is <= 3% on the
  // advance wall).
  std::unique_ptr<net::HttpServer> server;
  std::thread scraper;
  std::atomic<bool> scraping{false};
  std::uint64_t scrapes = 0;
  if (serve) {
    server = std::make_unique<net::HttpServer>();
    obs::RegisterIntrospectionEndpoints(server.get(), nullptr);
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "bench_parallel: --serve failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("# serving on http://%s (scraping /metrics every 100ms)\n",
                server->address().c_str());
    scraping.store(true, std::memory_order_release);
    const std::uint16_t port = server->port();
    scraper = std::thread([&scraping, &scrapes, port]() {
      while (scraping.load(std::memory_order_acquire)) {
        if (ScrapeOnce(port, "/metrics") > 0) ++scrapes;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
  }

  std::printf("# parallel scaling: LAWA-P threads=1/2/4/8 (bit-identical and "
              "staged apply) vs LAWA, 1M tuples/relation (scale=%.3g), 1K "
              "facts, hash-consing on\n", scale);
  PrintHeader("parallel");

  const std::size_t n = Scaled(1000000, scale);
  Workload wl;
  wl.spec = TableIIIPreset(0.6);
  wl.spec.num_tuples = n;
  wl.spec.num_facts = std::max<std::size_t>(1, n / 1000);

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  const int reps = 3;

  std::string json = "{\n  \"experiment\": \"parallel\",\n";
  json += ProvenanceJson(/*threads=*/8);
  {
    char head[256];
    std::snprintf(head, sizeof(head),
                  "  \"scale\": %.4g,\n  \"n_per_relation\": %zu,\n"
                  "  \"num_facts\": %zu,\n  \"reps\": %d,\n"
                  "  \"hash_consing\": true,\n  \"cold_arena\": true,\n"
                  "  \"operations\": [\n",
                  scale, n, wl.spec.num_facts, reps);
    json += head;
  }

  bool first_op = true;
  for (SetOpKind op : kAllSetOps) {
    const char* op_name = SetOpName(op);

    double seq_ms = BestSequentialCold(reps, wl, op);
    PrintRow("parallel", op_name, "LAWA", n, seq_ms);

    Sample bit_at[9], staged_at[9];
    for (std::size_t threads : thread_counts) {
      ParallelSetOpAlgorithm bit(threads, SortMode::kComparison, 4,
                                 ApplyMode::kBitIdentical);
      bit_at[threads] = BestTimedCold(reps, wl, bit, op);
      PrintRow("parallel", op_name, "LAWA-P/" + std::to_string(threads), n,
               bit_at[threads].wall_ms);

      ParallelSetOpAlgorithm staged(threads, SortMode::kComparison, 4,
                                    ApplyMode::kStaged);
      staged_at[threads] = BestTimedCold(reps, wl, staged, op);
      PrintRow("parallel", op_name, "LAWA-P-staged/" + std::to_string(threads),
               n, staged_at[threads].wall_ms);
    }

    const double apply_speedup =
        staged_at[8].phases.apply_ms > 0
            ? bit_at[8].phases.apply_ms / staged_at[8].phases.apply_ms
            : 0.0;
    std::printf(
        "# json {\"experiment\":\"parallel\",\"operation\":\"%s\",\"n\":%zu,"
        "\"lawa_ms\":%.3f,\"t8_bit_ms\":%.3f,\"t8_staged_ms\":%.3f,"
        "\"apply_ms_bit_t8\":%.3f,\"apply_ms_staged_t8\":%.3f,"
        "\"apply_speedup_staged_t8\":%.3f,"
        "\"speedup_8_over_1_bit\":%.3f,\"speedup_8_over_1_staged\":%.3f}\n",
        op_name, n, seq_ms, bit_at[8].wall_ms, staged_at[8].wall_ms,
        bit_at[8].phases.apply_ms, staged_at[8].phases.apply_ms, apply_speedup,
        bit_at[8].wall_ms > 0 ? bit_at[1].wall_ms / bit_at[8].wall_ms : 0.0,
        staged_at[8].wall_ms > 0 ? staged_at[1].wall_ms / staged_at[8].wall_ms
                                 : 0.0);

    if (!first_op) json += ",\n";
    first_op = false;
    char ophead[128];
    std::snprintf(ophead, sizeof(ophead),
                  "    {\"operation\": \"%s\", \"lawa_ms\": %.3f,\n", op_name,
                  seq_ms);
    json += ophead;
    json += "     \"bit_identical\": {";
    for (std::size_t i = 0; i < 4; ++i) {
      if (i > 0) json += ",";
      AppendPhaseJson(&json, thread_counts[i], bit_at[thread_counts[i]]);
    }
    json += "},\n     \"staged\": {";
    for (std::size_t i = 0; i < 4; ++i) {
      if (i > 0) json += ",";
      AppendPhaseJson(&json, thread_counts[i], staged_at[thread_counts[i]]);
    }
    json += "},\n";
    char optail[256];
    std::snprintf(optail, sizeof(optail),
                  "     \"apply_speedup_staged_t8\": %.3f,\n"
                  "     \"speedup_8_over_1_bit\": %.3f,\n"
                  "     \"speedup_8_over_1_staged\": %.3f}",
                  apply_speedup,
                  bit_at[8].wall_ms > 0 ? bit_at[1].wall_ms / bit_at[8].wall_ms
                                        : 0.0,
                  staged_at[8].wall_ms > 0
                      ? staged_at[1].wall_ms / staged_at[8].wall_ms
                      : 0.0);
    json += optail;
  }
  json += "\n  ],\n";

  // ---- Skewed scenarios: morsel scheduler vs static partitioner ----------
  std::printf("# skew: zipf(s=1.2) and one-hot(90%%) facts, staged apply, "
              "threads=%zu; real walls + modeled 8-worker makespan\n",
              kSkewThreads);
  PrintHeader("parallel-skew");

  struct SkewScenario {
    const char* name;
    SkewedPairSpec spec;
  };
  std::vector<SkewScenario> scenarios(2);
  scenarios[0].name = "zipf_1.2";
  scenarios[0].spec.zipf_s = 1.2;
  scenarios[0].spec.num_facts = 64;
  scenarios[1].name = "one_hot_90";
  scenarios[1].spec.hot_fact_share = 0.9;
  scenarios[1].spec.num_facts = 16;
  for (SkewScenario& sc : scenarios) sc.spec.num_tuples = n;

  json += "  \"skew\": [\n";
  const int skew_reps = 2;
  bool first_skew = true;
  for (const SkewScenario& sc : scenarios) {
    for (SetOpKind op : kAllSetOps) {
      const char* op_name = SetOpName(op);
      const std::string tag = std::string(sc.name) + "/" + op_name;

      double seq_ms = 0.0;
      for (int i = 0; i < skew_reps; ++i) {
        auto [r, s] = FreshSkewPair(sc.spec);
        double ms = TimeMs([&]() {
          TpRelation out = LawaSetOp(op, r, s);
          (void)out;
        });
        if (i == 0 || ms < seq_ms) seq_ms = ms;
      }
      PrintRow("parallel-skew", tag.c_str(), "LAWA", n, seq_ms);

      MorselOptions static_sched;
      static_sched.enabled = false;
      MorselOptions nosteal;
      nosteal.steal = false;
      SkewSample st = BestSkewCold(skew_reps, sc.spec, static_sched, op);
      SkewSample ns = BestSkewCold(skew_reps, sc.spec, nosteal, op);
      SkewSample mo = BestSkewCold(skew_reps, sc.spec, MorselOptions{}, op);
      PrintRow("parallel-skew", tag.c_str(), "static/8", n, st.run.wall_ms);
      PrintRow("parallel-skew", tag.c_str(), "morsel-nosteal/8", n,
               ns.run.wall_ms);
      PrintRow("parallel-skew", tag.c_str(), "morsel/8", n, mo.run.wall_ms);

      // Modeled 8-worker makespans from per-unit measurements.
      std::size_t units_static = 0, units_morsel = 0;
      double static_sweep8 = 0.0, static_apply = 0.0;
      double morsel_sweep8 = 0.0, morsel_apply = 0.0;
      {
        auto [r, s] = FreshSkewPair(sc.spec);
        const std::vector<FactPartition> parts = PartitionByFactRange(
            r.tuples().data(), r.tuples().size(), s.tuples().data(),
            s.tuples().size(), kSkewThreads * kSkewPartitionsPerThread);
        units_static = parts.size();
        UnitTimes ut = MeasureStagedUnits(op, r, s, parts);
        static_sweep8 = Makespan(ut.sweep_ms, kSkewThreads);
        static_apply = ut.apply_ms;
      }
      {
        auto [r, s] = FreshSkewPair(sc.spec);
        const std::vector<FactPartition> parts = PartitionByFactRange(
            r.tuples().data(), r.tuples().size(), s.tuples().data(),
            s.tuples().size(), kSkewThreads * kSkewPartitionsPerThread);
        MorselPlan plan = BuildMorsels(
            r.tuples().data(), s.tuples().data(), parts,
            MorselAutoBudget(r.tuples().size() + s.tuples().size(),
                             kSkewThreads, kSkewPartitionsPerThread));
        units_morsel = plan.morsels.size();
        UnitTimes ut = MeasureStagedUnits(op, r, s, plan.morsels);
        morsel_sweep8 = Makespan(ut.sweep_ms, kSkewThreads);
        morsel_apply = ut.apply_ms;
      }
      // Static: barrier, then serial apply. Morsel: splices overlap the
      // sweeps, so the phase pair costs max(makespan, total apply).
      const double static_total = static_sweep8 + static_apply;
      const double morsel_total = std::max(morsel_sweep8, morsel_apply);
      const double model_speedup =
          morsel_total > 0 ? static_total / morsel_total : 0.0;
      PrintRow("parallel-skew", tag.c_str(), "modeled-static/8", n,
               static_total);
      PrintRow("parallel-skew", tag.c_str(), "modeled-morsel/8", n,
               morsel_total);
      std::printf(
          "# json {\"experiment\":\"parallel-skew\",\"scenario\":\"%s\","
          "\"operation\":\"%s\",\"modeled8_apply_sweep_speedup\":%.3f,"
          "\"morsels\":%zu,\"stolen\":%zu,\"facts_split\":%zu}\n",
          sc.name, op_name, model_speedup, mo.stats.morsels_run,
          mo.stats.morsels_stolen, mo.stats.facts_split);

      if (!first_skew) json += ",\n";
      first_skew = false;
      char buf[1024];
      std::snprintf(
          buf, sizeof(buf),
          "    {\"scenario\": \"%s\", \"operation\": \"%s\", \"n\": %zu,\n"
          "     \"lawa_ms\": %.3f,\n     \"real\": {",
          sc.name, op_name, n, seq_ms);
      json += buf;
      json += "\"static\": {";
      AppendPhaseJson(&json, kSkewThreads, st.run);
      json += "}, \"morsel_nosteal\": {";
      AppendPhaseJson(&json, kSkewThreads, ns.run);
      json += "}, \"morsel\": {";
      AppendPhaseJson(&json, kSkewThreads, mo.run);
      json += "}},\n";
      std::snprintf(
          buf, sizeof(buf),
          "     \"morsels_run\": %zu, \"morsels_stolen\": %zu, "
          "\"facts_split\": %zu,\n"
          "     \"modeled8\": {\"units_static\": %zu, \"units_morsel\": %zu,\n"
          "       \"static_sweep_ms\": %.3f, \"static_apply_ms\": %.3f, "
          "\"static_total_ms\": %.3f,\n"
          "       \"morsel_sweep_ms\": %.3f, \"morsel_apply_ms\": %.3f, "
          "\"morsel_total_ms\": %.3f,\n"
          "       \"apply_sweep_speedup\": %.3f}}",
          mo.stats.morsels_run, mo.stats.morsels_stolen, mo.stats.facts_split,
          units_static, units_morsel, static_sweep8, static_apply,
          static_total, morsel_sweep8, morsel_apply, morsel_total,
          model_speedup);
      json += buf;
    }
  }
  json += "\n  ],\n";

  // ---- Kernel A/B: scalar vs columnar LAWA advance -----------------------
  // Pure sweep at t1 (advancer + window enumeration only — no lineage
  // concatenation, which dominates the whole-op sequential wall and would
  // bury the kernel difference), whole-op t1 walls for context, and
  // LAWA-P/8 bit-identical walls with byte-equality of the outputs.
  std::printf("# kernel A/B: scalar vs columnar advance — pure sweep t1, "
              "whole-op t1, LAWA-P/8 bit-identical (outputs byte-checked)\n");
  PrintHeader("kernel-ab");
  json += "  \"kernel_ab\": [\n";
  const int ab_reps = 5;
  bool first_ab = true;
  bool ab_diverged = false;
  for (SetOpKind op : kAllSetOps) {
    const char* op_name = SetOpName(op);
    const std::string tag = op_name;

    // Pure sweep over one shared sorted pair (no arena mutation, so reps
    // can reuse it); both kernels must emit the identical window stream.
    auto [r, s] = wl.Fresh();
    std::vector<KernelWindow> scalar_win, columnar_win;
    double sweep_scalar = 0.0, sweep_columnar = 0.0;
    for (int i = 0; i < ab_reps; ++i) {
      scalar_win.clear();
      double ms = TimeMs([&]() {
        LineageAwareWindowAdvancer adv(r.tuples().data(), r.size(),
                                       s.tuples().data(), s.size());
        ForEachSurvivingWindow(op, adv, [&](const LineageAwareWindow& w) {
          scalar_win.push_back({w.fact, w.t.start, w.t.end, w.lr, w.ls});
        });
      });
      if (i == 0 || ms < sweep_scalar) sweep_scalar = ms;
    }
    // First columnar() call builds the SoA projection; reported separately
    // because the relation caches it (one build amortizes over every sweep).
    const double build_ms = TimeMs([&]() {
      (void)r.columnar();
      (void)s.columnar();
    });
    for (int i = 0; i < ab_reps; ++i) {
      columnar_win.clear();
      double ms = TimeMs([&]() {
        ColumnarAdvancer adv(r.columnar(), s.columnar());
        adv.Sweep(op, [&](const LineageAwareWindow& w) {
          columnar_win.push_back({w.fact, w.t.start, w.t.end, w.lr, w.ls});
        });
      });
      if (i == 0 || ms < sweep_columnar) sweep_columnar = ms;
    }
    const bool stream_equal = scalar_win == columnar_win;
    if (!stream_equal) {
      std::fprintf(stderr,
                   "bench_parallel: kernel divergence (%s): scalar emitted "
                   "%zu windows, columnar %zu\n",
                   op_name, scalar_win.size(), columnar_win.size());
      ab_diverged = true;
    }
    PrintRow("kernel-ab", tag.c_str(), "sweep-scalar/1", n, sweep_scalar);
    PrintRow("kernel-ab", tag.c_str(), "sweep-columnar/1", n, sweep_columnar);

    const double whole_scalar =
        BestSequentialKernelCold(reps, wl, op, SweepKernel::kScalar);
    const double whole_columnar =
        BestSequentialKernelCold(reps, wl, op, SweepKernel::kColumnar);
    PrintRow("kernel-ab", tag.c_str(), "whole-scalar/1", n, whole_scalar);
    PrintRow("kernel-ab", tag.c_str(), "whole-columnar/1", n, whole_columnar);

    std::vector<TpTuple> out_scalar, out_columnar;
    Sample t8_scalar = BestParallelKernelCold(reps, wl, op,
                                              SweepKernel::kScalar,
                                              &out_scalar);
    Sample t8_columnar = BestParallelKernelCold(reps, wl, op,
                                                SweepKernel::kColumnar,
                                                &out_columnar);
    // Field-wise, not memcmp: TpTuple has alignment padding whose bytes
    // are indeterminate.
    const bool out_equal =
        out_scalar.size() == out_columnar.size() &&
        std::equal(out_scalar.begin(), out_scalar.end(),
                   out_columnar.begin());
    if (!out_equal) {
      std::fprintf(stderr,
                   "bench_parallel: kernel divergence (%s): LAWA-P/8 "
                   "bit-identical outputs differ (%zu vs %zu tuples)\n",
                   op_name, out_scalar.size(), out_columnar.size());
      ab_diverged = true;
    }
    PrintRow("kernel-ab", tag.c_str(), "t8-bit-scalar", n, t8_scalar.wall_ms);
    PrintRow("kernel-ab", tag.c_str(), "t8-bit-columnar", n,
             t8_columnar.wall_ms);

    const double sweep_speedup =
        sweep_columnar > 0 ? sweep_scalar / sweep_columnar : 0.0;
    std::printf(
        "# json {\"experiment\":\"kernel-ab\",\"operation\":\"%s\","
        "\"sweep_scalar_t1_ms\":%.3f,\"sweep_columnar_t1_ms\":%.3f,"
        "\"sweep_speedup_t1\":%.3f,\"build_ms\":%.3f,\"identical\":%s}\n",
        op_name, sweep_scalar, sweep_columnar, sweep_speedup, build_ms,
        stream_equal && out_equal ? "true" : "false");

    if (!first_ab) json += ",\n";
    first_ab = false;
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"operation\": \"%s\", \"n\": %zu, \"windows\": %zu,\n"
        "     \"sweep_scalar_t1_ms\": %.3f, \"sweep_columnar_t1_ms\": %.3f,\n"
        "     \"sweep_speedup_t1\": %.3f, \"build_ms\": %.3f,\n"
        "     \"whole_scalar_t1_ms\": %.3f, \"whole_columnar_t1_ms\": %.3f,\n"
        "     \"t8_bit_scalar_ms\": %.3f, \"t8_bit_columnar_ms\": %.3f,\n"
        "     \"identical\": %s}",
        op_name, n, scalar_win.size(), sweep_scalar, sweep_columnar,
        sweep_speedup, build_ms, whole_scalar, whole_columnar,
        t8_scalar.wall_ms, t8_columnar.wall_ms,
        stream_equal && out_equal ? "true" : "false");
    json += buf;
  }
  json += "\n  ],\n";

  // ---- Radix sort on unsorted input (hoisted counts + skipped passes) ----
  {
    auto [r, s] = wl.Fresh();
    std::vector<TpTuple> shuffled = r.tuples();
    std::mt19937 shuffle_rng(0xC0FFEE);
    std::shuffle(shuffled.begin(), shuffled.end(), shuffle_rng);
    double radix_ms = 0.0, cmp_ms = 0.0;
    for (int i = 0; i < ab_reps; ++i) {
      std::vector<TpTuple> copy = shuffled;
      double ms = TimeMs([&]() { SortTuples(&copy, SortMode::kCounting); });
      if (i == 0 || ms < radix_ms) radix_ms = ms;
    }
    for (int i = 0; i < ab_reps; ++i) {
      std::vector<TpTuple> copy = shuffled;
      double ms = TimeMs([&]() { SortTuples(&copy, SortMode::kComparison); });
      if (i == 0 || ms < cmp_ms) cmp_ms = ms;
    }
    PrintRow("kernel-ab", "sort-unsorted", "radix", shuffled.size(), radix_ms);
    PrintRow("kernel-ab", "sort-unsorted", "comparison", shuffled.size(),
             cmp_ms);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"sort_unsorted\": {\"n\": %zu, \"sort_radix_ms\": %.3f, "
                  "\"sort_comparison_ms\": %.3f}\n",
                  shuffled.size(), radix_ms, cmp_ms);
    json += buf;
  }
  json += "}\n";

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("# wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n", json_path);
    return 1;
  }

  // --metrics <path>: dump the process-wide registry as JSON lines after
  // the run — the CI stage validates this export against the checked-in
  // schema (scripts/metrics_schema.json).
  if (metrics_path != nullptr) {
    const std::string lines = obs::JsonLines(obs::TakeScrape());
    if (std::FILE* f = std::fopen(metrics_path, "w")) {
      std::fputs(lines.c_str(), f);
      std::fclose(f);
      std::printf("# wrote %s\n", metrics_path);
    } else {
      std::fprintf(stderr, "bench_parallel: cannot write %s\n", metrics_path);
      return 1;
    }
  }
  if (serve) {
    scraping.store(false, std::memory_order_release);
    scraper.join();
    const net::HttpServerStats stats = server->stats();
    server->Stop();
    std::printf("# serve: scrapes=%llu served=%llu shed=%llu\n",
                static_cast<unsigned long long>(scrapes),
                static_cast<unsigned long long>(stats.served),
                static_cast<unsigned long long>(stats.saturated));
  }
  if (ab_diverged) {
    std::fprintf(stderr,
                 "bench_parallel: FAILED — columnar kernel diverged from "
                 "scalar (see above)\n");
    return 1;
  }
  return 0;
}
