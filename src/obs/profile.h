// Trace spans: a per-execution QueryProfile recording a span tree (parse →
// analyze → per-node sweep → per-morsel advance → splice/apply; per-epoch
// delta propagation for continuous queries) with wall and thread-CPU times,
// free-form attributes, and the owning operation's LawaStats counters
// attached to each span.
//
// A profile is owned by one execution (the ExecOptions::profile hook, an
// EXPLAIN run, or a continuous query's last-epoch record). Span creation is
// not synchronized — the engine pre-builds the node-level tree on the
// coordinating thread and hands each concurrent task its own Span*, whose
// subtree that task alone touches (the same ownership discipline as the
// morsel result slots). Rendering/serialization must wait for the execution
// to finish.
//
// PhaseTimings (parallel/parallel_set_op.h) is now a thin adapter over this
// span tree: the engine records sort/split/advance/apply as child spans and
// PhaseTimings::FromSpan extracts the same four walls for callers (benches)
// that want plain numbers.
#ifndef TPSET_OBS_PROFILE_H_
#define TPSET_OBS_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lawa/set_ops.h"

namespace tpset::obs {

/// One node of the span tree. Plain data; owned through the parent chain.
struct Span {
  std::string name;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;  ///< thread CPU time of the recording thread
  /// Microseconds since the Unix epoch when the span started (0 = never
  /// timed). The root span's value is the query's admission timestamp — the
  /// hook a serving layer's fairness accounting needs.
  std::int64_t start_unix_us = 0;
  /// Engine counters attached by the owning operation (all-zero otherwise).
  LawaStats stats;
  bool has_stats = false;
  /// Free-form key=value annotations (out=5, windows=8, relation=a, ...).
  std::vector<std::pair<std::string, std::string>> attrs;
  std::vector<std::unique_ptr<Span>> children;

  /// Appends a child span. The returned pointer is stable (children are
  /// heap-allocated) for the profile's lifetime.
  Span* AddChild(std::string child_name);

  /// First child with `child_name`, or nullptr.
  const Span* FindChild(std::string_view child_name) const;

  /// Attribute value by key, or "".
  std::string Attr(std::string_view key) const;

  void SetAttr(std::string key, std::string value);
  void SetAttr(std::string key, std::size_t value);
  void SetAttr(std::string key, double value);

  void AttachStats(const LawaStats& s) {
    stats = s;
    has_stats = true;
  }
};

/// Fills a span's wall/CPU times over its lifetime (RAII). Null-safe: a
/// null span makes every operation a no-op, so call sites stay branch-free.
class SpanTimer {
 public:
  explicit SpanTimer(Span* span);
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() { Stop(); }

  /// Stops the clock early (idempotent).
  void Stop();

 private:
  Span* span_;
  std::chrono::steady_clock::time_point wall0_;
  double cpu0_ms_ = 0.0;
};

/// This thread's CPU time in milliseconds (0 where unsupported).
double ThreadCpuMs();

/// Microseconds since the Unix epoch.
std::int64_t NowUnixUs();

/// A per-execution profile: one root span plus bookkeeping. The root span
/// is created on construction with the admission timestamp already stamped.
class QueryProfile {
 public:
  explicit QueryProfile(std::string root_name = "query");

  Span& root() { return *root_; }
  const Span& root() const { return *root_; }

  /// Admission time (microseconds since the Unix epoch): when this profile
  /// — and therefore the execution it records — was created.
  std::int64_t admitted_unix_us() const { return root_->start_unix_us; }

  /// Resets to a fresh root (for reusable per-epoch profiles).
  void Reset(std::string root_name);

  /// Indented span tree:
  ///   query  [wall=1.23ms cpu=1.10ms]
  ///     node union  [wall=0.80ms out=6 windows=8]
  ///       advance  [wall=0.70ms]
  std::string Render() const;

  /// The span tree as one JSON object (spans nested under "children").
  std::string ToJson() const;

 private:
  std::unique_ptr<Span> root_;
};

}  // namespace tpset::obs

#endif  // TPSET_OBS_PROFILE_H_
