#include "lawa/set_ops.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

#include "lawa/advancer.h"
#include "lawa/columnar_advancer.h"
#include "obs/metrics.h"
#include "relation/columnar.h"
#include "relation/validate.h"

namespace tpset {

namespace {

// Stable LSD radix sort by the (fact, start, end) key using 16-bit counting
// passes — the §VI-B "counting-based sorting" variant, linear in input size.
//
// Keys are rebased to (value − observed minimum): that maps negative time
// points into unsigned space *and* shrinks every key to the range the data
// actually spans, so each component runs only the passes its range needs
// (fact ids and time points rarely need more than one or two 16-bit digits;
// a constant component sorts in zero passes — stability keeps the order).
// The prefix-sum table is allocated once and reused across passes.
void RadixSortTuples(std::vector<TpTuple>* tuples) {
  const std::size_t n = tuples->size();
  if (n < 2) return;
  std::vector<TpTuple> scratch(n);

  constexpr int kDigitBits = 16;
  constexpr std::size_t kBuckets = std::size_t{1} << kDigitBits;
  constexpr std::size_t kMask = kBuckets - 1;
  std::vector<std::size_t> count(kBuckets + 1);

  auto pass = [&](auto key_of, int shift) {
    std::fill(count.begin(), count.end(), std::size_t{0});
    for (const TpTuple& t : *tuples) {
      ++count[((key_of(t) >> shift) & kMask) + 1];
    }
    for (std::size_t b = 1; b <= kBuckets; ++b) count[b] += count[b - 1];
    for (const TpTuple& t : *tuples) {
      scratch[count[(key_of(t) >> shift) & kMask]++] = t;
    }
    tuples->swap(scratch);
  };

  // One scan for the observed extrema of every key component.
  TimePoint min_start = (*tuples)[0].t.start, max_start = min_start;
  TimePoint min_end = (*tuples)[0].t.end, max_end = min_end;
  FactId max_fact = (*tuples)[0].fact;
  for (const TpTuple& t : *tuples) {
    min_start = std::min(min_start, t.t.start);
    max_start = std::max(max_start, t.t.start);
    min_end = std::min(min_end, t.t.end);
    max_end = std::max(max_end, t.t.end);
    max_fact = std::max(max_fact, t.fact);
  }

  // Digits needed to cover [0, range]; 0 when the component is constant.
  auto digits_for = [](std::uint64_t range) {
    int d = 0;
    while (range != 0) {
      ++d;
      range >>= kDigitBits;
    }
    return d;
  };
  // Unsigned subtraction is exact here: value >= min, and the true range
  // always fits std::uint64_t.
  const std::uint64_t end_range = static_cast<std::uint64_t>(max_end) -
                                  static_cast<std::uint64_t>(min_end);
  const std::uint64_t start_range = static_cast<std::uint64_t>(max_start) -
                                    static_cast<std::uint64_t>(min_start);

  auto end_key = [min_end](const TpTuple& t) {
    return static_cast<std::uint64_t>(t.t.end) -
           static_cast<std::uint64_t>(min_end);
  };
  auto start_key = [min_start](const TpTuple& t) {
    return static_cast<std::uint64_t>(t.t.start) -
           static_cast<std::uint64_t>(min_start);
  };
  auto fact_key = [](const TpTuple& t) { return std::uint64_t{t.fact}; };

  // Least-significant component first; within each, least-significant digit
  // first (LSD). Stability makes the skipped high digits (and whole skipped
  // components) correct.
  const int end_digits = digits_for(end_range);
  for (int d = 0; d < end_digits; ++d) pass(end_key, d * kDigitBits);
  const int start_digits = digits_for(start_range);
  for (int d = 0; d < start_digits; ++d) pass(start_key, d * kDigitBits);
  const int fact_digits = digits_for(std::uint64_t{max_fact});
  for (int d = 0; d < fact_digits; ++d) pass(fact_key, d * kDigitBits);
}

}  // namespace

void SortTuples(std::vector<TpTuple>* tuples, SortMode mode) {
  switch (mode) {
    case SortMode::kComparison:
      std::sort(tuples->begin(), tuples->end(), FactTimeOrder());
      break;
    case SortMode::kCounting:
      RadixSortTuples(tuples);
      break;
  }
}

const char* SweepKernelName(SweepKernel kernel) {
  switch (kernel) {
    case SweepKernel::kAuto:
      return "auto";
    case SweepKernel::kScalar:
      return "scalar";
    case SweepKernel::kColumnar:
      return "columnar";
  }
  return "unknown";
}

void NoteSweepKernels(SweepKernel resolved, std::size_t count,
                      LawaStats* stats) {
  if (count == 0) return;
  assert(resolved != SweepKernel::kAuto && "record the resolved kernel");
  static obs::Counter& scalar_sweeps =
      obs::MetricsRegistry::Global().GetCounter(
          "tpset_lawa_sweep_kernel_scalar_total",
          "LAWA sweeps run by the scalar (tuple-at-a-time) kernel");
  static obs::Counter& columnar_sweeps =
      obs::MetricsRegistry::Global().GetCounter(
          "tpset_lawa_sweep_kernel_columnar_total",
          "LAWA sweeps run by the columnar (SoA) kernel");
  if (resolved == SweepKernel::kColumnar) {
    columnar_sweeps.Increment(count);
    if (stats != nullptr) stats->sweeps_columnar += count;
  } else {
    scalar_sweeps.Increment(count);
    if (stats != nullptr) stats->sweeps_scalar += count;
  }
}

TpRelation LawaSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                     SortMode sort_mode, LawaStats* stats,
                     SweepKernel kernel) {
  assert(ValidateSetOpInputs(r, s).ok());
  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(),
                 "(" + r.name() + " " + SetOpName(op) + " " + s.name() + ")");

  // Step 1 of Fig. 5: sort both inputs by (F, Ts). An input carrying the
  // sortedness witness (catalog relations, set-op outputs) is swept in
  // place — no copy, no sort.
  std::size_t sort_skipped = 0;
  std::vector<TpTuple> rs, ss;
  const std::vector<TpTuple>* rv = &r.tuples();
  const std::vector<TpTuple>* sv = &s.tuples();
  if (r.known_sorted()) {
    ++sort_skipped;
  } else {
    rs = r.tuples();
    SortTuples(&rs, sort_mode);
    rv = &rs;
  }
  if (s.known_sorted()) {
    ++sort_skipped;
  } else {
    ss = s.tuples();
    SortTuples(&ss, sort_mode);
    sv = &ss;
  }

  // Steps 2-4: advance windows; filter on (λr, λs); concatenate lineages.
  // The drain conditions and λ-filters live in ForEachSurvivingWindow /
  // ColumnarAdvancer::Sweep, shared with the parallel sweep kernels.
  auto concat_emit = [&](const LineageAwareWindow& w) {
    LineageId lineage = kNullLineage;
    switch (op) {
      case SetOpKind::kIntersect:
        lineage = mgr.ConcatAnd(w.lr, w.ls);
        break;
      case SetOpKind::kUnion:
        lineage = mgr.ConcatOr(w.lr, w.ls);
        break;
      case SetOpKind::kExcept:
        lineage = mgr.ConcatAndNot(w.lr, w.ls);
        break;
    }
    out.AddDerived(w.fact, w.t, lineage);
  };
  const SweepKernel resolved = ResolveSweepKernel(kernel, rv->size() + sv->size());
  std::size_t windows = 0;
  if (resolved == SweepKernel::kColumnar) {
    // Witnessed inputs reuse the relation's cached SoA view; a locally
    // sorted copy gets a local projection for the duration of the sweep.
    ColumnarView local_r, local_s;
    ColumnSpan rc, sc;
    if (r.known_sorted()) {
      rc = r.columnar();
    } else {
      local_r.Build(rv->data(), rv->size());
      rc = local_r.Columns();
    }
    if (s.known_sorted()) {
      sc = s.columnar();
    } else {
      local_s.Build(sv->data(), sv->size());
      sc = local_s.Columns();
    }
    ColumnarAdvancer adv(rc, sc);
    adv.Sweep(op, concat_emit);
    windows = adv.windows_produced();
  } else {
    LineageAwareWindowAdvancer adv(*rv, *sv);
    ForEachSurvivingWindow(op, adv, concat_emit);
    windows = adv.windows_produced();
  }
  NoteSweepKernels(resolved, 1, stats);
  if (stats != nullptr) {
    stats->windows_produced = windows;
    stats->output_tuples = out.size();
    stats->sort_skipped = sort_skipped;
  }
  return out;
}

Result<TpRelation> LawaSetOpChecked(SetOpKind op, const TpRelation& r,
                                    const TpRelation& s, SortMode sort_mode) {
  TPSET_RETURN_NOT_OK(ValidateSetOpInputs(r, s));
  return LawaSetOp(op, r, s, sort_mode);
}

}  // namespace tpset
