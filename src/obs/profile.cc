#include "obs/profile.h"

#include <cstdio>

#ifdef __linux__
#include <time.h>
#endif

namespace tpset::obs {

Span* Span::AddChild(std::string child_name) {
  children.push_back(std::make_unique<Span>());
  children.back()->name = std::move(child_name);
  return children.back().get();
}

const Span* Span::FindChild(std::string_view child_name) const {
  for (const std::unique_ptr<Span>& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::string Span::Attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return "";
}

void Span::SetAttr(std::string key, std::string value) {
  attrs.emplace_back(std::move(key), std::move(value));
}

void Span::SetAttr(std::string key, std::size_t value) {
  attrs.emplace_back(std::move(key), std::to_string(value));
}

void Span::SetAttr(std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  attrs.emplace_back(std::move(key), buf);
}

double ThreadCpuMs() {
#ifdef __linux__
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) * 1e3 +
         static_cast<double>(ts.tv_nsec) * 1e-6;
#else
  return 0.0;
#endif
}

std::int64_t NowUnixUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

SpanTimer::SpanTimer(Span* span) : span_(span) {
  if (span_ == nullptr) return;
  wall0_ = std::chrono::steady_clock::now();
  cpu0_ms_ = ThreadCpuMs();
  span_->start_unix_us = NowUnixUs();
}

void SpanTimer::Stop() {
  if (span_ == nullptr) return;
  span_->wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - wall0_)
                       .count();
  span_->cpu_ms = ThreadCpuMs() - cpu0_ms_;
  span_ = nullptr;
}

QueryProfile::QueryProfile(std::string root_name) {
  root_ = std::make_unique<Span>();
  root_->name = std::move(root_name);
  root_->start_unix_us = NowUnixUs();
}

void QueryProfile::Reset(std::string root_name) {
  root_ = std::make_unique<Span>();
  root_->name = std::move(root_name);
  root_->start_unix_us = NowUnixUs();
}

namespace {

void AppendStats(const LawaStats& s, std::string* out) {
  auto field = [out](const char* k, std::size_t v) {
    if (v == 0) return;  // render only the counters this span touched
    *out += ' ';
    *out += k;
    *out += '=';
    *out += std::to_string(v);
  };
  field("windows", s.windows_produced);
  field("out_tuples", s.output_tuples);
  field("sort_skipped", s.sort_skipped);
  field("morsels", s.morsels_run);
  field("stolen", s.morsels_stolen);
  field("facts_split", s.facts_split);
  field("facts_resumed", s.facts_resumed);
  field("facts_reswept", s.facts_reswept);
  field("epochs_applied", s.epochs_applied);
  field("runs_merged", s.runs_merged);
  field("tuples_retired", s.tuples_retired);
  field("tail_hits", s.tail_hits);
}

void RenderSpan(const Span& span, int depth, std::string* out) {
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  *out += span.name;
  char times[64];
  std::snprintf(times, sizeof(times), "  [wall=%.3fms cpu=%.3fms", span.wall_ms,
                span.cpu_ms);
  *out += times;
  for (const auto& [k, v] : span.attrs) {
    *out += ' ';
    *out += k;
    *out += '=';
    *out += v;
  }
  if (span.has_stats) AppendStats(span.stats, out);
  *out += "]\n";
  for (const std::unique_ptr<Span>& c : span.children) {
    RenderSpan(*c, depth + 1, out);
  }
}

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void SpanJson(const Span& span, std::string* out) {
  *out += "{\"name\":\"";
  AppendJsonEscaped(span.name, out);
  char times[128];
  std::snprintf(times, sizeof(times),
                "\",\"wall_ms\":%.3f,\"cpu_ms\":%.3f,\"start_unix_us\":%lld",
                span.wall_ms, span.cpu_ms,
                static_cast<long long>(span.start_unix_us));
  *out += times;
  if (!span.attrs.empty()) {
    *out += ",\"attrs\":{";
    bool first = true;
    for (const auto& [k, v] : span.attrs) {
      if (!first) *out += ',';
      first = false;
      *out += '"';
      AppendJsonEscaped(k, out);
      *out += "\":\"";
      AppendJsonEscaped(v, out);
      *out += '"';
    }
    *out += '}';
  }
  if (span.has_stats) {
    char stats[256];
    std::snprintf(stats, sizeof(stats),
                  ",\"stats\":{\"windows\":%zu,\"out_tuples\":%zu,"
                  "\"morsels\":%zu,\"stolen\":%zu,\"facts_split\":%zu,"
                  "\"facts_resumed\":%zu,\"facts_reswept\":%zu}",
                  span.stats.windows_produced, span.stats.output_tuples,
                  span.stats.morsels_run, span.stats.morsels_stolen,
                  span.stats.facts_split, span.stats.facts_resumed,
                  span.stats.facts_reswept);
    *out += stats;
  }
  if (!span.children.empty()) {
    *out += ",\"children\":[";
    for (std::size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) *out += ',';
      SpanJson(*span.children[i], out);
    }
    *out += ']';
  }
  *out += '}';
}

}  // namespace

std::string QueryProfile::Render() const {
  std::string out;
  RenderSpan(*root_, 0, &out);
  return out;
}

std::string QueryProfile::ToJson() const {
  std::string out;
  SpanJson(*root_, &out);
  out += '\n';
  return out;
}

}  // namespace tpset::obs
