#include "incremental/incremental_set_op.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <tuple>
#include <utility>

#include "lawa/columnar_advancer.h"
#include "parallel/partition.h"
#include "parallel/scheduler.h"
#include "relation/columnar.h"

namespace tpset {

namespace {

// Concatenates one surviving window's lineage pair per the operation's
// Table I function. Sink is LineageManager or StagingArena — both expose
// the same null-aware Concat* interface.
template <typename Sink>
LineageId Concat(SetOpKind op, Sink& sink, LineageId lr, LineageId ls) {
  switch (op) {
    case SetOpKind::kIntersect:
      return sink.ConcatAnd(lr, ls);
    case SetOpKind::kUnion:
      return sink.ConcatOr(lr, ls);
    case SetOpKind::kExcept:
      return sink.ConcatAndNot(lr, ls);
  }
  return kNullLineage;
}

// True iff `d` (possibly null) appends to `side` in time order: inserted
// tuples start at or after the side's last stored end (duplicate-freeness-
// preserving append). The inserted list itself is start-ordered and
// non-overlapping by construction (AppendLog / resumed child windows).
bool InOrderAppend(const std::vector<TpTuple>& side, const FactDelta* d) {
  if (d == nullptr || d->inserted.empty()) return true;
  if (side.empty()) return true;
  return d->inserted.front().t.start >= side.back().t.end;
}

// Earliest inserted start across both sides; only meaningful when at least
// one side inserts.
TimePoint MinInsertStart(const FactDelta* l, const FactDelta* r) {
  TimePoint ts = std::numeric_limits<TimePoint>::max();
  if (l != nullptr && !l->inserted.empty()) {
    ts = std::min(ts, l->inserted.front().t.start);
  }
  if (r != nullptr && !r->inserted.empty()) {
    ts = std::min(ts, r->inserted.front().t.start);
  }
  return ts;
}

// Patches one side input with a (possibly null) delta: removes retracted
// tuples (exact matches) and merges inserted ones in (start, end) order.
void ApplySideDelta(std::vector<TpTuple>* side, const FactDelta* d) {
  if (d == nullptr) return;
  if (!d->retracted.empty()) {
    std::vector<TpTuple> kept;
    kept.reserve(side->size() - d->retracted.size());
    std::size_t k = 0;
    for (const TpTuple& t : *side) {
      if (k < d->retracted.size() && t == d->retracted[k]) {
        ++k;
        continue;
      }
      kept.push_back(t);
    }
    assert(k == d->retracted.size() &&
           "retracted tuple missing from the side input");
    *side = std::move(kept);
  }
  if (!d->inserted.empty()) {
    const std::size_t old_size = side->size();
    side->insert(side->end(), d->inserted.begin(), d->inserted.end());
    std::inplace_merge(side->begin(),
                       side->begin() + static_cast<std::ptrdiff_t>(old_size),
                       side->end(), FactTimeOrder());
  }
}

}  // namespace

template <typename Sink>
IncrementalSetOp::FactApplyResult IncrementalSetOp::ApplyFact(
    FactId fact, const FactDelta* l, const FactDelta* r, Sink& sink) {
  FactApplyResult res;
  FactState& st = facts_.at(fact);

  // Resume admissibility: pure appends, in time order on each side, landing
  // at or after the fact's sweep frontier. A fact with no emitted window yet
  // has no frontier — restoring its (default or early-stopped) checkpoint is
  // always exact then, because nothing was emitted that a new tuple could
  // invalidate... except via the frontier itself, which the check covers.
  bool resumable = (l == nullptr || l->retracted.empty()) &&
                   (r == nullptr || r->retracted.empty()) &&
                   InOrderAppend(st.r, l) && InOrderAppend(st.s, r);
  if (resumable && st.ckpt.windows_produced > 0) {
    resumable = MinInsertStart(l, r) >= st.ckpt.prev_win_te;
  }

  if (resumable) {
    if (l != nullptr) {
      st.r.insert(st.r.end(), l->inserted.begin(), l->inserted.end());
    }
    if (r != nullptr) {
      st.s.insert(st.s.end(), r->inserted.begin(), r->inserted.end());
    }
    res.out_new_begin = st.out.size();
    const std::size_t windows_before = st.ckpt.windows_produced;
    auto emit = [&](const LineageAwareWindow& w) {
      LineageId lin = Concat(op_, sink, w.lr, w.ls);
      st.out.push_back({w.t, w.lr, w.ls, lin});
      res.delta.inserted.push_back({fact, w.t, lin});
    };
    // Kernel choice on the *unswept suffix* — the work a resume actually
    // does — so O(delta) resumes stay O(delta): the columnar path projects
    // only the suffix past the checkpoint cursors and shifts the cursors
    // into / out of suffix space around the sweep.
    const SweepKernel resolved = ResolveSweepKernel(
        kernel_, (st.r.size() - st.ckpt.ri) + (st.s.size() - st.ckpt.si));
    if (resolved == SweepKernel::kColumnar) {
      const std::size_t base_r = st.ckpt.ri;
      const std::size_t base_s = st.ckpt.si;
      ColumnarView rview, sview;
      rview.Build(st.r.data() + base_r, st.r.size() - base_r);
      sview.Build(st.s.data() + base_s, st.s.size() - base_s);
      ColumnarAdvancer adv(rview.Columns(), sview.Columns());
      AdvancerCheckpoint ck = st.ckpt;
      ck.ri -= base_r;
      ck.si -= base_s;
      adv.Restore(ck);
      adv.Sweep(op_, emit);
      st.ckpt = adv.Checkpoint();
      st.ckpt.ri += base_r;
      st.ckpt.si += base_s;
      res.columnar = true;
    } else {
      LineageAwareWindowAdvancer adv(st.r.data(), st.r.size(), st.s.data(),
                                     st.s.size());
      adv.Restore(st.ckpt);
      ForEachSurvivingWindow(op_, adv, emit);
      st.ckpt = adv.Checkpoint();
    }
    res.windows_produced = st.ckpt.windows_produced - windows_before;
    res.resumed = true;
    return res;
  }

  // Resweep: patch the inputs, sweep the whole fact afresh, diff the window
  // stream against the stored one. Both streams are strictly increasing in
  // start (windows of one fact never overlap), so a merge walk on the key
  // (start, end, λr, λs) yields the minimal retract/insert sets; matching
  // windows keep their old lineage verbatim.
  ApplySideDelta(&st.r, l);
  ApplySideDelta(&st.s, r);
  struct FreshWindow {
    Interval t;
    LineageId lr, ls;
  };
  std::vector<FreshWindow> fresh;
  auto fresh_emit = [&](const LineageAwareWindow& w) {
    fresh.push_back({w.t, w.lr, w.ls});
  };
  AdvancerCheckpoint swept_ckpt;
  const SweepKernel resolved =
      ResolveSweepKernel(kernel_, st.r.size() + st.s.size());
  if (resolved == SweepKernel::kColumnar) {
    ColumnarView rview, sview;
    rview.Build(st.r.data(), st.r.size());
    sview.Build(st.s.data(), st.s.size());
    ColumnarAdvancer adv(rview.Columns(), sview.Columns());
    adv.Sweep(op_, fresh_emit);
    res.windows_produced = adv.windows_produced();
    swept_ckpt = adv.Checkpoint();
    res.columnar = true;
  } else {
    LineageAwareWindowAdvancer adv(st.r.data(), st.r.size(), st.s.data(),
                                   st.s.size());
    ForEachSurvivingWindow(op_, adv, fresh_emit);
    res.windows_produced = adv.windows_produced();
    swept_ckpt = adv.Checkpoint();
  }

  auto key_old = [](const OutTuple& o) {
    return std::make_tuple(o.t.start, o.t.end, o.lr, o.ls);
  };
  auto key_new = [](const FreshWindow& w) {
    return std::make_tuple(w.t.start, w.t.end, w.lr, w.ls);
  };
  std::vector<OutTuple> next_out;
  next_out.reserve(fresh.size());
  std::size_t i = 0, j = 0;
  while (i < st.out.size() || j < fresh.size()) {
    if (i < st.out.size() && j < fresh.size() &&
        key_old(st.out[i]) == key_new(fresh[j])) {
      next_out.push_back(st.out[i]);
      ++i;
      ++j;
    } else if (j == fresh.size() ||
               (i < st.out.size() && key_old(st.out[i]) < key_new(fresh[j]))) {
      res.delta.retracted.push_back({fact, st.out[i].t, st.out[i].lineage});
      ++i;
    } else {
      LineageId lin = Concat(op_, sink, fresh[j].lr, fresh[j].ls);
      next_out.push_back({fresh[j].t, fresh[j].lr, fresh[j].ls, lin});
      res.delta.inserted.push_back({fact, fresh[j].t, lin});
      ++j;
    }
  }
  st.out = std::move(next_out);
  st.ckpt = swept_ckpt;
  res.out_new_begin = 0;
  res.resumed = false;
  return res;
}

void IncrementalSetOp::RemapFact(FactId fact, std::size_t out_new_begin,
                                 LineageId frozen,
                                 const std::vector<LineageId>& remap,
                                 FactDelta* delta) {
  FactState& st = facts_.at(fact);
  for (std::size_t i = out_new_begin; i < st.out.size(); ++i) {
    LineageId& lin = st.out[i].lineage;
    if (lin != kNullLineage && lin >= frozen) lin = remap[lin - frozen];
  }
  for (TpTuple& t : delta->inserted) {
    if (t.lineage != kNullLineage && t.lineage >= frozen) {
      t.lineage = remap[t.lineage - frozen];
    }
  }
}

void IncrementalSetOp::Fold(const FactApplyResult& res) {
  stats_.windows_produced += res.windows_produced;
  if (res.resumed) {
    ++stats_.facts_resumed;
  } else {
    ++stats_.facts_reswept;
  }
  NoteSweepKernels(
      res.columnar ? SweepKernel::kColumnar : SweepKernel::kScalar, 1,
      &stats_);
  accumulated_ += res.delta.inserted.size();
  accumulated_ -= res.delta.retracted.size();
  stats_.output_tuples = accumulated_;
}

DeltaMap IncrementalSetOp::Apply(const DeltaMap& left, const DeltaMap& right,
                                 LineageManager& mgr, ThreadPool* pool,
                                 std::size_t max_groups) {
  DeltaMap out;
  if (left.empty() && right.empty()) return out;
  ++stats_.epochs_applied;

  // Touched facts in FactId order; create their states up front so the
  // parallel path mutates only pre-existing map nodes.
  std::vector<FactId> touched;
  {
    auto li = left.begin();
    auto ri = right.begin();
    while (li != left.end() || ri != right.end()) {
      FactId f;
      if (ri == right.end() || (li != left.end() && li->first <= ri->first)) {
        f = li->first;
        if (ri != right.end() && ri->first == f) ++ri;
        ++li;
      } else {
        f = ri->first;
        ++ri;
      }
      touched.push_back(f);
      facts_.try_emplace(f);
    }
  }
  auto side_of = [](const DeltaMap& m, FactId f) -> const FactDelta* {
    auto it = m.find(f);
    return it == m.end() ? nullptr : &it->second;
  };

  const bool parallel = pool != nullptr && max_groups > 1 && touched.size() > 1;
  if (!parallel) {
    for (FactId f : touched) {
      FactApplyResult res = ApplyFact(f, side_of(left, f), side_of(right, f), mgr);
      Fold(res);
      if (!res.delta.empty()) out.emplace(f, std::move(res.delta));
    }
    return out;
  }

  // Parallel staged apply: fact ranges balanced by per-fact sweep cost (the
  // resweep worst case: stored inputs + delta), one StagingArena per range,
  // spliced in fact order. The ranges run as morsels on the work-stealing
  // batch (a hot fact's range no longer pins one worker while the others
  // idle — an idle worker steals the remaining ranges), and each range is
  // spliced as soon as it and its predecessors finish, overlapping the
  // remaining sweeps. Every lineage id a staged cell can reference was
  // interned before this epoch's apply began, so the frozen snapshot is
  // simply the arena size — and splicing range i while range i+1 is still
  // staging is safe, because staging arenas never read the base arena.
  std::vector<std::size_t> weights;
  weights.reserve(touched.size());
  for (FactId f : touched) {
    const FactState& st = facts_.at(f);
    std::size_t w = st.r.size() + st.s.size() + 1;
    if (const FactDelta* d = side_of(left, f)) {
      w += d->inserted.size() + d->retracted.size();
    }
    if (const FactDelta* d = side_of(right, f)) {
      w += d->inserted.size() + d->retracted.size();
    }
    weights.push_back(w);
  }
  const std::vector<WeightRange> groups = PartitionByWeight(weights, max_groups);
  const LineageId frozen = static_cast<LineageId>(mgr.size());
  const bool hash_consing = mgr.hash_consing();

  struct GroupResult {
    StagingArena arena{2, false};
    std::vector<std::pair<FactId, FactApplyResult>> facts;
  };
  std::vector<GroupResult> group_results(groups.size());
  MorselBatch batch(
      pool, groups.size(),
      [this, &groups, &group_results, &touched, &left, &right, frozen,
       hash_consing, &side_of](std::size_t gi) {
        const WeightRange& g = groups[gi];
        GroupResult gr{StagingArena(frozen, hash_consing), {}};
        gr.facts.reserve(g.end - g.begin);
        for (std::size_t i = g.begin; i < g.end; ++i) {
          FactId f = touched[i];
          gr.facts.emplace_back(
              f, ApplyFact(f, side_of(left, f), side_of(right, f), gr.arena));
        }
        group_results[gi] = std::move(gr);
      });
  std::vector<LineageId> remap;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    batch.WaitMorsel(gi);
    GroupResult& gr = group_results[gi];
    mgr.SpliceStaged(gr.arena, &remap);
    for (auto& [fact, res] : gr.facts) {
      RemapFact(fact, res.out_new_begin, frozen, remap, &res.delta);
      Fold(res);
      if (!res.delta.empty()) out.emplace(fact, std::move(res.delta));
    }
  }
  stats_.morsels_run += batch.morsels_run();
  stats_.morsels_stolen += batch.morsels_stolen();
  return out;
}

std::size_t IncrementalSetOp::Rebase(TimePoint watermark) {
  std::size_t retired = 0;
  for (auto it = facts_.begin(); it != facts_.end();) {
    FactState& st = it->second;

    // Per-fact side inputs and output windows are start-ordered and
    // non-overlapping (base-relation chains by the append contract, child
    // window streams by construction), so their interval ends increase and
    // "ends at or below the watermark" is a contiguous prefix.
    auto trim_side = [watermark](std::vector<TpTuple>* side, std::size_t* cursor) {
      std::size_t k = 0;
      while (k < side->size() && (*side)[k].t.end <= watermark) ++k;
      if (k == 0) return;
      side->erase(side->begin(), side->begin() + static_cast<std::ptrdiff_t>(k));
      // The checkpoint cursor indexes this array; dropping k leading tuples
      // shifts it. A cursor inside the retired prefix clamps to 0: the
      // still-pending retired tuples could only have produced windows ending
      // at or below the watermark, which retention forgets anyway.
      *cursor = *cursor > k ? *cursor - k : 0;
    };
    trim_side(&st.r, &st.ckpt.ri);
    trim_side(&st.s, &st.ckpt.si);

    std::size_t ko = 0;
    while (ko < st.out.size() && st.out[ko].t.end <= watermark) ++ko;
    if (ko > 0) {
      st.out.erase(st.out.begin(), st.out.begin() + static_cast<std::ptrdiff_t>(ko));
      retired += ko;
    }

    // A fact whose whole history fell below the watermark is forgotten;
    // its next delta starts from a fresh checkpoint (windows_produced = 0,
    // so resume admissibility imposes no stale frontier).
    if (st.r.empty() && st.s.empty() && st.out.empty()) {
      it = facts_.erase(it);
    } else {
      ++it;
    }
  }
  accumulated_ -= retired;
  stats_.output_tuples = accumulated_;
  stats_.tuples_retired += retired;
  return retired;
}

void IncrementalSetOp::AppendAccumulated(TpRelation* out) const {
  for (const auto& [fact, st] : facts_) {
    for (const OutTuple& t : st.out) {
      out->AddDerived(fact, t.t, t.lineage);
    }
  }
}

// The two sinks the continuous-query engine drives.
template IncrementalSetOp::FactApplyResult IncrementalSetOp::ApplyFact<LineageManager>(
    FactId, const FactDelta*, const FactDelta*, LineageManager&);
template IncrementalSetOp::FactApplyResult IncrementalSetOp::ApplyFact<StagingArena>(
    FactId, const FactDelta*, const FactDelta*, StagingArena&);

}  // namespace tpset
