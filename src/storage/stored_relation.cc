#include "storage/stored_relation.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <future>
#include <string>

#include "common/interval.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "parallel/partition.h"
#include "parallel/thread_pool.h"

namespace tpset {

namespace {

// Storage metrics, process-wide across every StoredRelation. Latencies are
// recorded per mutation (not per tuple); the resident/runs gauges track live
// relations via deltas — the destructor subtracts what is left, so dead
// relations do not pin the gauges.
obs::Histogram& AppendLatencyHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tpset_storage_append_usec",
      "wall microseconds per accepted AppendRun batch");
  return h;
}

obs::Histogram& CompactLatencyHistogram() {
  static obs::Histogram& h = obs::MetricsRegistry::Global().GetHistogram(
      "tpset_storage_compact_usec",
      "wall microseconds per compaction / View fold of tail runs");
  return h;
}

obs::Counter& TailLookupsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_storage_tail_lookups_total",
      "FactTail lookups served from the O(1) fact-tail map");
  return c;
}

obs::Counter& TailHitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_storage_tail_hits_total",
      "FactTail lookups that found the fact (hit rate vs ..._lookups_total)");
  return c;
}

obs::Counter& TuplesRetiredCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_storage_tuples_retired_total",
      "tuples dropped below the retention watermark by compactions");
  return c;
}

obs::Counter& RunsMergedCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Global().GetCounter(
      "tpset_storage_runs_merged_total",
      "physical runs folded together by compactions and roll merges");
  return c;
}

obs::Gauge& RunsGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tpset_storage_runs", "pending tail runs across live StoredRelations");
  return g;
}

obs::Gauge& ResidentTuplesGauge() {
  static obs::Gauge& g = obs::MetricsRegistry::Global().GetGauge(
      "tpset_storage_resident_tuples",
      "logical tuples (base + tails) across live StoredRelations");
  return g;
}

}  // namespace

StoredRelation::StoredRelation(TpRelation base) : base_(std::move(base)) {
  assert(base_.known_sorted() &&
         "the base level must carry the sortedness witness");
  for (const TpTuple& t : base_.tuples()) {
    // (fact, start, end) order makes the last tuple of a fact's run the one
    // with the maximal end, so plain assignment leaves the tail map right.
    fact_tails_[t.fact] = t.t.end;
    max_interval_end_ = std::max(max_interval_end_, t.t.end);
  }
  ResidentTuplesGauge().Add(static_cast<std::int64_t>(base_.size()));
}

StoredRelation::~StoredRelation() {
  ResidentTuplesGauge().Add(
      -static_cast<std::int64_t>(base_.size() + tail_.size()));
  RunsGauge().Add(-static_cast<std::int64_t>(tail_.run_count()));
}

std::size_t StoredRelation::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_.size() + tail_.size();
}

Status StoredRelation::AppendRun(std::vector<TpTuple> batch, EpochId epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(std::is_sorted(batch.begin(), batch.end(), FactTimeOrder()));
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t batch_size = batch.size();
  const std::size_t runs_before = tail_.run_count();
  // Validate the whole batch against a scratch copy of the affected tails
  // before mutating anything (all-or-nothing, like AppendLog).
  // (These internal defense-in-depth lookups are not counted as tail_hits —
  // that counter tracks lookups *served* to callers, i.e. FactTail.)
  std::unordered_map<FactId, TimePoint> new_tails;
  for (const TpTuple& t : batch) {
    auto scratch = new_tails.find(t.fact);
    TimePoint tail = 0;
    bool have_tail = false;
    if (scratch != new_tails.end()) {
      tail = scratch->second;
      have_tail = true;
    } else {
      auto stored = fact_tails_.find(t.fact);
      if (stored != fact_tails_.end()) {
        tail = stored->second;
        have_tail = true;
      }
    }
    if (have_tail && t.t.start < tail) {
      return Status::InvalidArgument(
          "append violates fact-time order: " + ToString(t.t) +
          " starts before the fact's tail (t=" + std::to_string(tail) + ")");
    }
    new_tails[t.fact] = t.t.end;
  }
  TPSET_RETURN_NOT_OK(tail_.Append(std::move(batch), epoch, &stats_));
  for (const auto& [fact, end] : new_tails) {
    fact_tails_[fact] = end;
    max_interval_end_ = std::max(max_interval_end_, end);
  }
  ++stats_.appends;
  AppendLatencyHistogram().Observe(obs::ElapsedUsec(t0));
  ResidentTuplesGauge().Add(static_cast<std::int64_t>(batch_size));
  RunsGauge().Add(static_cast<std::int64_t>(tail_.run_count()) -
                  static_cast<std::int64_t>(runs_before));
  return Status::OK();
}

std::pair<bool, TimePoint> StoredRelation::FactTail(FactId fact) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.tail_hits;
  TailLookupsCounter().Increment();
  auto it = fact_tails_.find(fact);
  if (it == fact_tails_.end()) return {false, 0};
  TailHitsCounter().Increment();
  return {true, it->second};
}

Status StoredRelation::SetWatermark(TimePoint watermark) {
  if (has_watermark() && watermark < watermark_) {
    return Status::InvalidArgument(
        "retention watermark must be monotone: " + std::to_string(watermark) +
        " < " + std::to_string(watermark_));
  }
  watermark_ = watermark;
  return Status::OK();
}

std::vector<TupleSpan> StoredRelation::SpansLocked() const {
  std::vector<TupleSpan> spans;
  spans.reserve(1 + tail_.run_count());
  if (!base_.empty()) {
    spans.push_back({base_.tuples().data(), base_.size()});
  }
  std::vector<TupleSpan> tail_spans = tail_.spans();
  spans.insert(spans.end(), tail_spans.begin(), tail_spans.end());
  return spans;
}

void StoredRelation::CompactLocked(TimePoint watermark,
                                   ThreadPool* pool) const {
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t runs_before = tail_.run_count();
  const std::vector<TupleSpan> spans = SpansLocked();
  std::vector<TpTuple> merged;
  std::size_t dropped = 0;

  if (pool != nullptr && spans.size() > 1) {
    // Fact-range parallel merge: each partition k-way-merges its slices of
    // every span independently; outputs concatenate in fact order.
    std::vector<std::pair<const TpTuple*, std::size_t>> run_args;
    run_args.reserve(spans.size());
    for (const TupleSpan& s : spans) run_args.emplace_back(s.data, s.size);
    const std::vector<RunPartition> parts =
        PartitionRunsByFact(run_args, pool->size() * 2);

    struct PartResult {
      std::vector<TpTuple> tuples;
      std::size_t dropped = 0;
    };
    std::vector<std::future<PartResult>> futures;
    futures.reserve(parts.size());
    for (const RunPartition& part : parts) {
      futures.push_back(pool->Submit([&spans, &part, watermark]() {
        std::vector<TupleSpan> slices;
        slices.reserve(part.slices.size());
        for (std::size_t r = 0; r < part.slices.size(); ++r) {
          const auto& [begin, end] = part.slices[r];
          if (begin < end) slices.push_back({spans[r].data + begin, end - begin});
        }
        PartResult res;
        res.dropped = MergeRuns(slices, watermark, &res.tuples);
        return res;
      }));
    }
    std::size_t total = 0;
    for (const TupleSpan& s : spans) total += s.size;
    merged.reserve(total);
    for (std::future<PartResult>& fut : futures) {
      PartResult res = fut.get();
      merged.insert(merged.end(), res.tuples.begin(), res.tuples.end());
      dropped += res.dropped;
    }
  } else {
    dropped = MergeRuns(spans, watermark, &merged);
  }

  if (spans.size() > 1) {
    stats_.runs_merged += spans.size();
    RunsMergedCounter().Increment(spans.size());
  }
  stats_.tuples_retired += dropped;
  ++stats_.compactions;
  base_.mutable_tuples() = std::move(merged);
  base_.MarkSortedUnchecked();
  tail_.Clear();
  CompactLatencyHistogram().Observe(obs::ElapsedUsec(t0));
  if (dropped > 0) TuplesRetiredCounter().Increment(dropped);
  ResidentTuplesGauge().Add(-static_cast<std::int64_t>(dropped));
  RunsGauge().Add(-static_cast<std::int64_t>(runs_before));
}

void StoredRelation::Compact(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  // Skip the O(n) re-merge when it cannot change anything: no pending
  // tails, the watermark already applied to the base, and no View fold
  // snuck unretained tuples in since.
  if (tail_.run_count() == 0 && watermark_ == compacted_watermark_ &&
      !base_unretained_) {
    return;
  }
  const std::size_t retired_before = stats_.tuples_retired;
  const std::size_t runs_before = tail_.run_count();
  CompactLocked(watermark_, pool);
  compacted_watermark_ = watermark_;
  base_unretained_ = false;
  obs::EmitEvent(obs::Severity::kInfo, "storage",
                 "compaction relation=%.32s runs=%zu retired=%zu",
                 base_.name().c_str(), runs_before,
                 stats_.tuples_retired - retired_before);
}

const TpRelation& StoredRelation::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Fold tails without retention: a read must not change logical content
  // (retiring below the watermark is Compact's explicit job).
  if (tail_.run_count() > 0) {
    CompactLocked(kNoWatermark, nullptr);
    if (has_watermark()) base_unretained_ = true;
  }
  return base_;
}

TpRelation StoredRelation::Materialize() const {
  std::lock_guard<std::mutex> lock(mu_);
  TpRelation out(base_.context(), base_.schema(), base_.name());
  MergeRuns(SpansLocked(), kNoWatermark, &out.mutable_tuples());
  out.MarkSortedUnchecked();
  return out;
}

std::size_t StoredRelation::run_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_.run_count();
}

EpochId StoredRelation::last_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_.last_epoch();
}

StorageStats StoredRelation::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tpset
