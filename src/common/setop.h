// The three TP set operations of Definition 3.
#ifndef TPSET_COMMON_SETOP_H_
#define TPSET_COMMON_SETOP_H_

namespace tpset {

/// Which TP set operation to compute.
enum class SetOpKind { kUnion = 0, kIntersect = 1, kExcept = 2 };

/// Human-readable operator name ("union" / "intersect" / "except").
inline const char* SetOpName(SetOpKind op) {
  switch (op) {
    case SetOpKind::kUnion: return "union";
    case SetOpKind::kIntersect: return "intersect";
    case SetOpKind::kExcept: return "except";
  }
  return "?";
}

/// The paper's operator symbol ("∪Tp" / "∩Tp" / "−Tp").
inline const char* SetOpSymbol(SetOpKind op) {
  switch (op) {
    case SetOpKind::kUnion: return "∪Tp";
    case SetOpKind::kIntersect: return "∩Tp";
    case SetOpKind::kExcept: return "−Tp";
  }
  return "?";
}

inline constexpr SetOpKind kAllSetOps[] = {SetOpKind::kUnion, SetOpKind::kIntersect,
                                           SetOpKind::kExcept};

}  // namespace tpset

#endif  // TPSET_COMMON_SETOP_H_
