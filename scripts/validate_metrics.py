#!/usr/bin/env python3
"""Validates an obs JSON-lines metrics export against metrics_schema.json.

Usage: validate_metrics.py <snapshot.jsonl> [schema.json]

Checks (any failure exits non-zero with a message per violation):
  * every line parses as a JSON object with string `name` and `type`;
  * names match the schema's `name_pattern` (tpset_<subsystem>_<name>);
  * unit suffixes match the metric type: counters end `_total`, time-valued
    histograms end `_usec` or `_ms`, and gauges are bare nouns (no counter
    or time suffix) — so new instrumentation cannot drift from the naming
    scheme documented in src/obs/metrics.h;
  * every exported metric is declared in the schema (`required` or `known`)
    with a matching type — an undeclared name means the schema and the code
    drifted apart;
  * every `required` metric is present — a missing one means instrumentation
    was dropped from a subsystem bench_parallel exercises;
  * counters have a non-negative integer `value` (gauges may be negative);
  * histograms have integer `count`/`sum`, equally long `bounds`/`buckets`
    arrays, a null (+Inf) last bound, strictly increasing finite bounds,
    non-negative bucket counts, and sum(buckets) == count.

Run by scripts/ci.sh after the bench smoke; stdlib only.
"""

import json
import os
import re
import sys


def fail(errors):
    for e in errors:
        print(f"validate_metrics: {e}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail(["usage: validate_metrics.py <snapshot.jsonl> [schema.json]"])
    snapshot_path = sys.argv[1]
    schema_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else os.path.join(os.path.dirname(__file__), "metrics_schema.json")
    )

    with open(schema_path) as f:
        schema = json.load(f)
    declared = dict(schema["required"])
    declared.update(schema["known"])
    name_re = re.compile(schema["name_pattern"])

    errors = []
    seen = {}
    with open(snapshot_path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                m = json.loads(line)
            except json.JSONDecodeError as e:
                errors.append(f"line {lineno}: not valid JSON ({e})")
                continue
            name, kind = m.get("name"), m.get("type")
            if not isinstance(name, str) or not isinstance(kind, str):
                errors.append(f"line {lineno}: missing string name/type")
                continue
            if not name_re.match(name):
                errors.append(f"{name}: does not match {schema['name_pattern']}")
            # Unit-suffix discipline per type (see src/obs/metrics.h).
            if kind == "counter" and not name.endswith("_total"):
                errors.append(f"{name}: counters must end in _total")
            elif kind == "histogram" and not name.endswith(("_usec", "_ms")):
                errors.append(f"{name}: histograms must end in _usec or _ms")
            elif kind == "gauge" and name.endswith(("_total", "_usec", "_ms")):
                errors.append(
                    f"{name}: gauges are bare nouns (no _total/_usec/_ms)"
                )
            if name in seen:
                errors.append(f"{name}: exported twice (lines {seen[name]}, {lineno})")
            seen[name] = lineno
            if name not in declared:
                errors.append(
                    f"{name}: not declared in {os.path.basename(schema_path)} "
                    "(add it, or fix the rename in the code)"
                )
            elif declared[name] != kind:
                errors.append(
                    f"{name}: type {kind!r}, schema says {declared[name]!r}"
                )

            if kind in ("counter", "gauge"):
                value = m.get("value")
                if not isinstance(value, int):
                    errors.append(f"{name}: {kind} value {value!r} is not an int")
                elif kind == "counter" and value < 0:
                    errors.append(f"{name}: counter is negative ({value})")
            elif kind == "histogram":
                count, total = m.get("count"), m.get("sum")
                bounds, buckets = m.get("bounds"), m.get("buckets")
                if not isinstance(count, int) or count < 0:
                    errors.append(f"{name}: bad histogram count {count!r}")
                if not isinstance(total, int) or total < 0:
                    errors.append(f"{name}: bad histogram sum {total!r}")
                if not isinstance(bounds, list) or not isinstance(buckets, list):
                    errors.append(f"{name}: bounds/buckets missing")
                    continue
                if len(bounds) != len(buckets) or not bounds:
                    errors.append(
                        f"{name}: {len(bounds)} bounds vs {len(buckets)} buckets"
                    )
                    continue
                if bounds[-1] is not None:
                    errors.append(f"{name}: last bound must be null (+Inf)")
                finite = bounds[:-1]
                if any(not isinstance(b, int) for b in finite) or any(
                    a >= b for a, b in zip(finite, finite[1:])
                ):
                    errors.append(f"{name}: bounds not strictly increasing ints")
                if any(not isinstance(b, int) or b < 0 for b in buckets):
                    errors.append(f"{name}: negative or non-int bucket count")
                elif isinstance(count, int) and sum(buckets) != count:
                    errors.append(
                        f"{name}: sum(buckets)={sum(buckets)} != count={count}"
                    )
            else:
                errors.append(f"{name}: unknown metric type {kind!r}")

    for name in schema["required"]:
        if name not in seen:
            errors.append(f"{name}: required metric missing from export")

    if errors:
        fail(errors)
    print(f"validate_metrics: OK ({len(seen)} metrics)")


if __name__ == "__main__":
    main()
