#include "relation/snapshot.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace tpset {

namespace {

// Applies the Def. 3 filter and Table I concatenation for one fact at one
// segment. Returns kNullLineage when the segment yields no output.
LineageId CombineOrReject(SetOpKind op, LineageManager& mgr, LineageId lr,
                          LineageId ls) {
  switch (op) {
    case SetOpKind::kUnion:
      if (lr == kNullLineage && ls == kNullLineage) return kNullLineage;
      return mgr.ConcatOr(lr, ls);
    case SetOpKind::kIntersect:
      if (lr == kNullLineage || ls == kNullLineage) return kNullLineage;
      return mgr.ConcatAnd(lr, ls);
    case SetOpKind::kExcept:
      if (lr == kNullLineage) return kNullLineage;
      return mgr.ConcatAndNot(lr, ls);
  }
  return kNullLineage;
}

// Per-fact inputs: the (interval, lineage) pairs of each side.
struct FactInputs {
  std::vector<std::pair<Interval, LineageId>> from_r;
  std::vector<std::pair<Interval, LineageId>> from_s;
};

// λ^{rel,f}_t: lineage of the unique tuple covering t, or null.
LineageId LineageAt(const std::vector<std::pair<Interval, LineageId>>& side,
                    TimePoint t) {
  for (const auto& [iv, lin] : side) {
    if (iv.Contains(t)) return lin;
  }
  return kNullLineage;
}

}  // namespace

TpRelation TimesliceRelation(const TpRelation& rel, TimePoint t) {
  TpRelation out(rel.context(), rel.schema(), rel.name() + "@" + std::to_string(t));
  for (const TpTuple& tup : rel.tuples()) {
    if (tup.t.Contains(t)) out.AddDerived(tup.fact, Interval(t, t + 1), tup.lineage);
  }
  return out;
}

std::vector<std::pair<FactId, LineageId>> SnapshotSetOp(SetOpKind op,
                                                        const TpRelation& r,
                                                        const TpRelation& s,
                                                        TimePoint t) {
  assert(r.context() == s.context());
  LineageManager& mgr = r.context()->lineage();
  // λ^{r,f}_t and λ^{s,f}_t per fact (duplicate-free inputs guarantee at
  // most one valid tuple per fact and side).
  std::vector<std::pair<FactId, LineageId>> out;
  std::map<FactId, LineageId> r_at, s_at;
  for (const TpTuple& tup : r.tuples()) {
    if (tup.t.Contains(t)) r_at[tup.fact] = tup.lineage;
  }
  for (const TpTuple& tup : s.tuples()) {
    if (tup.t.Contains(t)) s_at[tup.fact] = tup.lineage;
  }
  std::map<FactId, std::pair<LineageId, LineageId>> merged;
  for (const auto& [f, l] : r_at) merged[f] = {l, kNullLineage};
  for (const auto& [f, l] : s_at) {
    auto it = merged.find(f);
    if (it == merged.end()) {
      merged[f] = {kNullLineage, l};
    } else {
      it->second.second = l;
    }
  }
  for (const auto& [f, pair] : merged) {
    LineageId combined = CombineOrReject(op, mgr, pair.first, pair.second);
    if (combined != kNullLineage) out.emplace_back(f, combined);
  }
  return out;
}

TpRelation ReferenceSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s) {
  assert(r.context() == s.context());
  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(),
                 "(" + r.name() + " " + SetOpName(op) + " " + s.name() + ")");

  // Group both inputs by fact.
  std::map<FactId, FactInputs> by_fact;
  for (const TpTuple& tup : r.tuples()) {
    by_fact[tup.fact].from_r.emplace_back(tup.t, tup.lineage);
  }
  for (const TpTuple& tup : s.tuples()) {
    by_fact[tup.fact].from_s.emplace_back(tup.t, tup.lineage);
  }

  for (const auto& [fact, inputs] : by_fact) {
    // All boundary points of this fact, ascending and distinct.
    std::vector<TimePoint> bounds;
    for (const auto& [iv, lin] : inputs.from_r) {
      bounds.push_back(iv.start);
      bounds.push_back(iv.end);
    }
    for (const auto& [iv, lin] : inputs.from_s) {
      bounds.push_back(iv.start);
      bounds.push_back(iv.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    // Evaluate each elementary segment; merge adjacent segments whose output
    // lineage is syntactically equal (change preservation). Hash-consing
    // makes syntactic equality an id comparison.
    Interval pending;
    LineageId pending_lin = kNullLineage;
    bool have_pending = false;
    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      Interval seg(bounds[i], bounds[i + 1]);
      LineageId lr = LineageAt(inputs.from_r, seg.start);
      LineageId ls = LineageAt(inputs.from_s, seg.start);
      LineageId combined = CombineOrReject(op, mgr, lr, ls);
      if (combined == kNullLineage) {
        if (have_pending) {
          out.AddDerived(fact, pending, pending_lin);
          have_pending = false;
        }
        continue;
      }
      if (have_pending && pending.end == seg.start && pending_lin == combined) {
        pending.end = seg.end;  // merge (Def. 2)
      } else {
        if (have_pending) out.AddDerived(fact, pending, pending_lin);
        pending = seg;
        pending_lin = combined;
        have_pending = true;
      }
    }
    if (have_pending) out.AddDerived(fact, pending, pending_lin);
  }
  out.SortFactTime();
  return out;
}

}  // namespace tpset
