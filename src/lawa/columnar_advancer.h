// Columnar (SoA) sweep kernel for LAWA — the drop-in fast path for
// LineageAwareWindowAdvancer + ForEachSurvivingWindow.
//
// The scalar advancer is an out-of-line call per window over 24-byte AoS
// tuples: every boundary computation re-tests fact equality, re-loads
// endpoint fields through the tuple records, and spills its status to
// members between calls. This kernel sweeps the same input as contiguous
// endpoint columns (relation/columnar.h) with the whole drain loop fused
// into one function:
//
//  * per fact group, the group bounds are computed once, so the inner loop
//    does no fact comparisons at all — the boundary step is a branch-free
//    4-way min over two column loads and two registers (compiled to cmov;
//    see DESIGN.md "Columnar sweep kernel" for the -fopt-info-vec notes);
//  * the advancer status (cursors, valid endpoints, frontier) lives in
//    registers for the whole sweep and is written back to members only at
//    the drain point, keeping Checkpoint() exact;
//  * when one side of a fact group is exhausted (the tail of every except /
//    union group, and whole groups for facts present in only one input),
//    duplicate-freeness makes each remaining tuple exactly one window
//    [start, end) — emitted by a tight bulk loop with no status updates.
//
// Equivalence contract: for the same sorted duplicate-free inputs, Sweep(op)
// invokes emit with the identical window stream — same fact-group order,
// same boundaries, same (λr, λs) — that ForEachSurvivingWindow(op, scalar
// advancer) produces, and leaves the advancer status (Checkpoint()) equal to
// the scalar advancer's status at its drain point. tests/
// columnar_kernel_test.cc pins both, window-by-window and field-by-field.
// AdvancerCheckpoint round-trips between the kernels in either direction:
// cursors are indices into the same sorted arrays the columns project.
#ifndef TPSET_LAWA_COLUMNAR_ADVANCER_H_
#define TPSET_LAWA_COLUMNAR_ADVANCER_H_

#include <cassert>
#include <cstddef>
#include <limits>

#include "common/setop.h"
#include "lawa/advancer.h"
#include "lawa/window.h"
#include "relation/columnar.h"

namespace tpset {

class ColumnarAdvancer {
 public:
  /// Both spans must outlive the advancer and project duplicate-free
  /// (fact, start)-sorted tuples — the same contract as the scalar
  /// advancer's span constructor. A morsel passes column sub-spans
  /// (ColumnSpan::Slice of its fact partition).
  ColumnarAdvancer(ColumnSpan r, ColumnSpan s) : r_(r), s_(s) {}

  /// Runs the whole drain loop for `op` — the fused equivalent of
  /// ForEachSurvivingWindow(op, adv, emit) — invoking emit(w) for every
  /// window that survives the per-operation λ-filter. Resumable: sweeping
  /// after Restore() continues exactly where the checkpointed sweep
  /// stopped.
  template <typename Emit>
  void Sweep(SetOpKind op, Emit&& emit) {
    switch (op) {
      case SetOpKind::kIntersect:
        SweepImpl<SetOpKind::kIntersect>(emit);
        break;
      case SetOpKind::kUnion:
        SweepImpl<SetOpKind::kUnion>(emit);
        break;
      case SetOpKind::kExcept:
        SweepImpl<SetOpKind::kExcept>(emit);
        break;
    }
  }

  /// Windows produced so far, filtered or not (Proposition 1 bound).
  std::size_t windows_produced() const { return windows_produced_; }

  /// Snapshots the status — field-for-field what the scalar advancer's
  /// Checkpoint() returns at the same sweep point.
  AdvancerCheckpoint Checkpoint() const {
    AdvancerCheckpoint ckpt;
    ckpt.ri = ri_;
    ckpt.si = si_;
    ckpt.r_valid = r_valid_;
    ckpt.s_valid = s_valid_;
    ckpt.r_valid_tuple = r_valid_tuple_;
    ckpt.s_valid_tuple = s_valid_tuple_;
    ckpt.have_fact = have_fact_;
    ckpt.curr_fact = curr_fact_;
    ckpt.prev_win_te = prev_win_te_;
    ckpt.windows_produced = windows_produced_;
    return ckpt;
  }

  /// Restores a status saved from an advancer (either kernel) over a prefix
  /// of this advancer's inputs; see LineageAwareWindowAdvancer::Restore.
  void Restore(const AdvancerCheckpoint& ckpt) {
    assert(ckpt.ri <= r_.n && ckpt.si <= s_.n &&
           "checkpoint cursors must lie within the (grown) inputs");
    ri_ = ckpt.ri;
    si_ = ckpt.si;
    r_valid_ = ckpt.r_valid;
    s_valid_ = ckpt.s_valid;
    r_valid_tuple_ = ckpt.r_valid_tuple;
    s_valid_tuple_ = ckpt.s_valid_tuple;
    have_fact_ = ckpt.have_fact;
    curr_fact_ = ckpt.curr_fact;
    prev_win_te_ = ckpt.prev_win_te;
    windows_produced_ = ckpt.windows_produced;
  }

 private:
  template <SetOpKind kOp, typename Emit>
  void SweepImpl(Emit& emit) {
    constexpr TimePoint kInf = std::numeric_limits<TimePoint>::max();
    const TimePoint* const rs = r_.start;
    const TimePoint* const re = r_.end;
    const FactId* const rf = r_.fact;
    const LineageId* const rl = r_.lineage;
    const TimePoint* const ss = s_.start;
    const TimePoint* const se = s_.end;
    const FactId* const sf = s_.fact;
    const LineageId* const sl = s_.lineage;
    const std::size_t nr = r_.n;
    const std::size_t ns = s_.n;

    // Status in registers for the whole sweep; written back at the drain
    // point. The valid-tuple fields are loaded lazily (r_loaded/s_loaded)
    // so a sweep that never loads a tuple preserves the restored — possibly
    // stale, the scalar kernel never clears them on expiry — member values.
    std::size_t ri = ri_;
    std::size_t si = si_;
    bool rv = r_valid_;
    bool sv = s_valid_;
    TimePoint rv_start = r_valid_tuple_.t.start;
    TimePoint rv_end = r_valid_tuple_.t.end;
    LineageId rv_lin = r_valid_tuple_.lineage;
    FactId rv_fact = r_valid_tuple_.fact;
    TimePoint sv_start = s_valid_tuple_.t.start;
    TimePoint sv_end = s_valid_tuple_.t.end;
    LineageId sv_lin = s_valid_tuple_.lineage;
    FactId sv_fact = s_valid_tuple_.fact;
    bool r_loaded = false;
    bool s_loaded = false;
    bool have_fact = have_fact_;
    FactId f = curr_fact_;
    TimePoint prev_te = prev_win_te_;
    std::size_t windows = windows_produced_;

    // The per-operation drain condition of ForEachSurvivingWindow, on the
    // *global* cursors: sweeping continues while the operation can still
    // produce output.
    const auto drained = [&]() {
      if constexpr (kOp == SetOpKind::kIntersect) {
        return !((ri < nr || rv) && (si < ns || sv));
      } else if constexpr (kOp == SetOpKind::kUnion) {
        return !(ri < nr || si < ns || rv || sv);
      } else {
        return !(ri < nr || rv);
      }
    };

    LineageAwareWindow w;
    while (!drained()) {
      // ---- Fact-group selection (Alg. 1 lines 2-15). ----
      if (!rv && !sv) {
        const bool pr = ri < nr;
        const bool ps = si < ns;
        const bool r_match = pr && have_fact && rf[ri] == f;
        const bool s_match = ps && have_fact && sf[si] == f;
        if (r_match == s_match) {
          // Neither (or both) pending tuple continues the current fact:
          // advance to the lexicographically smallest pending (fact, start).
          // Within the selected group, the first window's left boundary is
          // the smallest in-group start — computed by the inner loop, which
          // makes the both-match and the new-fact case one code path.
          if (!ps) {
            f = rf[ri];
          } else if (!pr) {
            f = sf[si];
          } else {
            f = rf[ri] < sf[si] ? rf[ri] : sf[si];
          }
          have_fact = true;
        }
        // Exactly one side matching keeps the current fact: its start is the
        // group's only in-group pending start, so the inner loop's min
        // reproduces the scalar kernel's single-match left boundary.
      }
      // Group bounds: all remaining tuples of fact f are consecutive from
      // the cursors (inputs are fact-major sorted). After this, the inner
      // loop never compares facts again.
      std::size_t rg = ri;
      while (rg < nr && rf[rg] == f) ++rg;
      std::size_t sg = si;
      while (sg < ns && sf[sg] == f) ++sg;

      // ---- Fused sweep of one fact group. ----
      while (!drained()) {
        const bool pr = ri < rg;
        const bool ps = si < sg;
        if (!(pr || ps || rv || sv)) break;  // group exhausted → next fact

        if (!ps && !sv) {
          // r-only tail: no s tuple can bound a window anymore, and
          // duplicate-freeness means each remaining r tuple is exactly one
          // window [start, end). Reaching here under ∩Tp implies si < ns
          // (else drained), and si/sv don't move below, so the global drain
          // condition cannot trip mid-bulk — the bulk is exact for every op.
          if (rv) {
            // The carried-over tuple's closing window. No same-fact r tuple
            // may start before rv_end (intervals per fact are disjoint), so
            // the boundary is rv_end itself.
            assert(!pr || rs[ri] >= rv_end);
            assert(rv_end > prev_te && "windows advance strictly");
            if constexpr (kOp != SetOpKind::kIntersect) {
              w.fact = f;
              w.t = Interval(prev_te, rv_end);
              w.lr = rv_lin;
              w.ls = kNullLineage;
              emit(w);  // λr ≠ null: survives ∪Tp and −Tp
            }
            prev_te = rv_end;
            ++windows;
            rv = false;
          }
          if (pr) {
            if constexpr (kOp != SetOpKind::kIntersect) {
              for (std::size_t i = ri; i < rg; ++i) {
                w.fact = f;
                w.t = Interval(rs[i], re[i]);
                w.lr = rl[i];
                w.ls = kNullLineage;
                emit(w);
              }
            }
            windows += rg - ri;
            prev_te = re[rg - 1];
            // Mirror the scalar kernel's status: the last loaded tuple
            // stays in r_valid_tuple_ (stale after expiry) for checkpoint
            // equality.
            rv_start = rs[rg - 1];
            rv_end = re[rg - 1];
            rv_lin = rl[rg - 1];
            rv_fact = f;
            r_loaded = true;
            ri = rg;
          }
          break;
        }
        if (!pr && !rv) {
          // s-only tail, symmetric. Under ∩Tp and −Tp these windows carry
          // λr = null and are filtered — counted, not emitted (reaching
          // here implies ri < nr for both, else drained).
          if (sv) {
            assert(!ps || ss[si] >= sv_end);
            assert(sv_end > prev_te && "windows advance strictly");
            if constexpr (kOp == SetOpKind::kUnion) {
              w.fact = f;
              w.t = Interval(prev_te, sv_end);
              w.lr = kNullLineage;
              w.ls = sv_lin;
              emit(w);
            }
            prev_te = sv_end;
            ++windows;
            sv = false;
          }
          if (ps) {
            if constexpr (kOp == SetOpKind::kUnion) {
              for (std::size_t i = si; i < sg; ++i) {
                w.fact = f;
                w.t = Interval(ss[i], se[i]);
                w.lr = kNullLineage;
                w.ls = sl[i];
                emit(w);
              }
            }
            windows += sg - si;
            prev_te = se[sg - 1];
            sv_start = ss[sg - 1];
            sv_end = se[sg - 1];
            sv_lin = sl[sg - 1];
            sv_fact = f;
            s_loaded = true;
            si = sg;
          }
          break;
        }

        // ---- General step: one window (Alg. 1 lines 16-27). ----
        // Left boundary: adjacent to the previous window while a tuple is
        // valid, else the smallest in-group pending start.
        TimePoint win_ts;
        if (rv || sv) {
          win_ts = prev_te;
        } else {
          const TimePoint a = pr ? rs[ri] : kInf;
          const TimePoint b = ps ? ss[si] : kInf;
          win_ts = a < b ? a : b;
        }
        // Load tuples starting exactly at the left boundary (at most one
        // per side: duplicate-freeness). pr/ps already encode the fact
        // match.
        if (pr && rs[ri] == win_ts) {
          rv_start = rs[ri];
          rv_end = re[ri];
          rv_lin = rl[ri];
          rv_fact = f;
          rv = true;
          r_loaded = true;
          ++ri;
        }
        if (ps && ss[si] == win_ts) {
          sv_start = ss[si];
          sv_end = se[si];
          sv_lin = sl[si];
          sv_fact = f;
          sv = true;
          s_loaded = true;
          ++si;
        }
        // Right boundary: branch-free 4-way min over the next in-group
        // starts and the valid ends (∞-padded ternaries → cmov, no
        // data-dependent branches).
        const TimePoint c0 = ri < rg ? rs[ri] : kInf;
        const TimePoint c1 = si < sg ? ss[si] : kInf;
        const TimePoint c2 = rv ? rv_end : kInf;
        const TimePoint c3 = sv ? sv_end : kInf;
        const TimePoint m0 = c0 < c1 ? c0 : c1;
        const TimePoint m1 = c2 < c3 ? c2 : c3;
        const TimePoint win_te = m0 < m1 ? m0 : m1;
        assert(win_te != kInf && "window must be bounded by a valid tuple");
        assert(win_te > win_ts && "windows advance strictly");

        // Emit through the per-operation λ-filter (Algorithms 2-4).
        if constexpr (kOp == SetOpKind::kIntersect) {
          if (rv && sv) {
            w.fact = f;
            w.t = Interval(win_ts, win_te);
            w.lr = rv_lin;
            w.ls = sv_lin;
            emit(w);
          }
        } else if constexpr (kOp == SetOpKind::kUnion) {
          w.fact = f;
          w.t = Interval(win_ts, win_te);
          w.lr = rv ? rv_lin : kNullLineage;
          w.ls = sv ? sv_lin : kNullLineage;
          emit(w);
        } else {
          if (rv) {
            w.fact = f;
            w.t = Interval(win_ts, win_te);
            w.lr = rv_lin;
            w.ls = sv ? sv_lin : kNullLineage;
            emit(w);
          }
        }

        // Expire tuples ending exactly at the right boundary.
        rv = rv && rv_end != win_te;
        sv = sv && sv_end != win_te;
        prev_te = win_te;
        ++windows;
      }
    }

    // ---- Drain point: write the status back for Checkpoint(). ----
    ri_ = ri;
    si_ = si;
    r_valid_ = rv;
    s_valid_ = sv;
    if (r_loaded) {
      r_valid_tuple_ = TpTuple{rv_fact, Interval(rv_start, rv_end), rv_lin};
    }
    if (s_loaded) {
      s_valid_tuple_ = TpTuple{sv_fact, Interval(sv_start, sv_end), sv_lin};
    }
    have_fact_ = have_fact;
    curr_fact_ = f;
    prev_win_te_ = prev_te;
    windows_produced_ = windows;
  }

  ColumnSpan r_;
  ColumnSpan s_;
  // Status members mirror LineageAwareWindowAdvancer field-for-field so
  // checkpoints are interchangeable between the kernels.
  std::size_t ri_ = 0;
  std::size_t si_ = 0;
  bool r_valid_ = false;
  bool s_valid_ = false;
  TpTuple r_valid_tuple_{};
  TpTuple s_valid_tuple_{};
  bool have_fact_ = false;
  FactId curr_fact_ = kInvalidFact;
  TimePoint prev_win_te_ = -1;
  std::size_t windows_produced_ = 0;
};

}  // namespace tpset

#endif  // TPSET_LAWA_COLUMNAR_ADVANCER_H_
