// Validated delta appends on registered relations, with epoch assignment.
//
// A TP relation's tuples are sorted by (fact, start) and duplicate-free; the
// append contract that preserves both — and the one that makes per-fact
// sweep resume possible at all — is *fact-time order per fact*: a new tuple
// of fact f must start at or after the end of f's last stored interval. The
// AppendLog enforces that contract per batch, interns the new facts and
// Boolean variables, merges the tuples into the relation in O(n + batch)
// (TpRelation::MergeSortedAppend, which keeps the known_sorted witness
// armed), and stamps the batch with the next monotone epoch id. The applied
// tuples come back sorted by (fact, start) — they are the leaf delta the
// continuous-query DAG consumes.
#ifndef TPSET_INCREMENTAL_APPEND_LOG_H_
#define TPSET_INCREMENTAL_APPEND_LOG_H_

#include <vector>

#include "common/status.h"
#include "incremental/delta.h"
#include "relation/relation.h"

namespace tpset {

/// Assigns epochs and applies append batches. One AppendLog serves all
/// relations of one executor, so epoch ids are totally ordered across
/// relations. Not thread-safe: appends are single-writer, like every other
/// mutation of a shared context.
class AppendLog {
 public:
  AppendLog() = default;
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Validates `batch` against `rel` and applies it: every row must pass the
  /// schema, carry a non-empty interval and a probability in (0,1], and per
  /// fact the rows must form a start-ordered, non-overlapping chain starting
  /// at or after the fact's last stored interval end. On success the new
  /// tuples are merged into the relation (witness preserved), `*applied`
  /// (optional) receives them sorted by (fact, start), and the assigned
  /// epoch is returned. On failure the relation is untouched: all checks run
  /// before any variable is registered.
  Result<EpochId> Append(TpRelation* rel, const DeltaBatch& batch,
                         std::vector<TpTuple>* applied = nullptr);

  /// The most recently assigned epoch (0 before any append).
  EpochId last_epoch() const { return next_epoch_ - 1; }

 private:
  EpochId next_epoch_ = 1;
};

}  // namespace tpset

#endif  // TPSET_INCREMENTAL_APPEND_LOG_H_
