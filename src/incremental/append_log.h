// Validated delta appends on stored relations, with epoch assignment.
//
// A TP relation's tuples are sorted by (fact, start) and duplicate-free; the
// append contract that preserves both — and the one that makes per-fact
// sweep resume possible at all — is *fact-time order per fact*: a new tuple
// of fact f must start at or after the end of f's last stored interval. The
// AppendLog enforces that contract per batch, interns the new facts and
// Boolean variables, stamps the batch with the next monotone epoch ticket,
// and hands it to the relation's run index in O(batch) amortized
// (StoredRelation::AppendRun — the O(n) MergeSortedAppend of the pre-storage
// engine is gone from the append path). The applied tuples come back sorted
// by (fact, start) — they are the leaf delta the continuous-query DAG
// consumes.
//
// Multi-writer epoch fence: Append serializes internally (one mutex + the
// monotone ticket), so concurrent writers through one AppendLog get distinct,
// gapless epochs and never interleave their context mutations (variable and
// fact interning). Writers through *different* AppendLogs on one context are
// still undefined, as is racing Append against query execution — the
// executor adds its own fence that additionally keeps continuous-query
// propagation in epoch order (see QueryExecutor::Append).
#ifndef TPSET_INCREMENTAL_APPEND_LOG_H_
#define TPSET_INCREMENTAL_APPEND_LOG_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "incremental/delta.h"
#include "storage/stored_relation.h"

namespace tpset {

/// Assigns epochs and applies append batches. One AppendLog serves all
/// relations of one executor, so epoch ids are totally ordered across
/// relations.
class AppendLog {
 public:
  AppendLog() = default;
  AppendLog(const AppendLog&) = delete;
  AppendLog& operator=(const AppendLog&) = delete;

  /// Validates `batch` against `rel` and applies it: every row must pass the
  /// schema, carry a non-empty interval and a probability in (0,1], and per
  /// fact the rows must form a start-ordered, non-overlapping chain starting
  /// at or after the fact's last stored interval end (an O(1) tail-map
  /// lookup per fact). On success the tuples land as one epoch-stamped
  /// sorted run, `*applied` (optional) receives them sorted by
  /// (fact, start), and the assigned epoch is returned. On failure the
  /// relation and context are untouched: all checks run before any variable
  /// is registered. Thread-safe (the epoch fence).
  Result<EpochId> Append(StoredRelation* rel, const DeltaBatch& batch,
                         std::vector<TpTuple>* applied = nullptr);

  /// The most recently assigned epoch (0 before any append).
  EpochId last_epoch() const {
    return next_epoch_.load(std::memory_order_acquire) - 1;
  }

 private:
  std::mutex fence_;
  std::atomic<EpochId> next_epoch_{1};
};

}  // namespace tpset

#endif  // TPSET_INCREMENTAL_APPEND_LOG_H_
