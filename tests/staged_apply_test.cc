// Property tests for ApplyMode::kStaged: per-partition staging arenas +
// sequential splice must yield tuple-for-tuple equal (fact, interval) output
// in the same order as sequential LAWA, with probability-equal lineage
// (valuation via lineage/eval.cc) — across skewed, single-fact,
// shared-context/derived-input, and concurrent-subtree scenarios. Staged
// node *ids* may differ from the sequential interning order; everything
// observable through valuation and canonical keys may not.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "lineage/staging.h"
#include "parallel/parallel_set_op.h"
#include "query/executor.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

ParallelSetOpAlgorithm StagedAlgo(std::size_t threads) {
  return ParallelSetOpAlgorithm(threads, SortMode::kComparison,
                                /*partitions_per_thread=*/4,
                                ApplyMode::kStaged);
}

// Same tuples in the same order — (fact, interval) exactly; lineage up to
// probability (exact Shannon valuation) and canonical structure.
void ExpectValuationEqual(const TpRelation& expected, const TpRelation& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  const LineageManager& mgr = expected.context()->lineage();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].fact, actual[i].fact) << "tuple " << i;
    EXPECT_EQ(expected[i].t, actual[i].t) << "tuple " << i;
    // The set-operation algebra never builds the formulas that staging folds
    // differently (top-level ¬ inputs), so canonical keys must agree here.
    EXPECT_EQ(mgr.CanonicalKey(expected[i].lineage),
              mgr.CanonicalKey(actual[i].lineage))
        << "tuple " << i;
    EXPECT_NEAR(expected.TupleProbability(i, ProbabilityMethod::kExact),
                actual.TupleProbability(i, ProbabilityMethod::kExact), 1e-12)
        << "tuple " << i;
  }
}

void ExpectStagedMatchesSequential(const TpRelation& r, const TpRelation& s,
                                   std::size_t num_threads) {
  ParallelSetOpAlgorithm staged = StagedAlgo(num_threads);
  for (SetOpKind op : kAllSetOps) {
    TpRelation expected = LawaSetOp(op, r, s);
    TpRelation actual = staged.Compute(op, r, s);
    ExpectValuationEqual(expected, actual);
    EXPECT_TRUE(ValidateDuplicateFree(actual).ok());
    EXPECT_TRUE(actual.IsSortedFactTime());
    EXPECT_TRUE(actual.known_sorted());
  }
}

TEST(StagedApplyTest, PaperExampleAllOps) {
  SupermarketDb db;
  ExpectStagedMatchesSequential(db.a, db.c, 4);
}

TEST(StagedApplyTest, EmptyRelations) {
  SupermarketDb db;
  TpRelation empty(db.ctx, db.a.schema(), "empty");
  ExpectStagedMatchesSequential(db.a, empty, 4);
  ExpectStagedMatchesSequential(empty, db.a, 4);
  ExpectStagedMatchesSequential(empty, empty, 4);
}

TEST(StagedApplyTest, SingleFactInputs) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"milk", "r1", 0, 5, 0.5},
                               {"milk", "r2", 7, 9, 0.4},
                               {"milk", "r3", 12, 20, 0.9}});
  TpRelation s = MakeRelation(ctx, "s",
                              {{"milk", "s1", 3, 8, 0.6},
                               {"milk", "s2", 10, 14, 0.7}});
  // More threads (and partitions) than facts: one partition, one staging
  // arena, still equivalent.
  ExpectStagedMatchesSequential(r, s, 8);
}

TEST(StagedApplyTest, SkewedFactDistribution) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r(ctx, Schema::SingleString("Product"), "r");
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  FactId hot = ctx->facts().Intern({Value(std::string("hot"))});
  for (int i = 0; i < 180; ++i) {
    r.AddBaseFast(hot, Interval(3 * i, 3 * i + 2), 0.5);
  }
  for (int i = 0; i < 10; ++i) {
    FactId cold = ctx->facts().Intern({Value("cold" + std::to_string(i))});
    r.AddBaseFast(cold, Interval(i, i + 4), 0.3);
    s.AddBaseFast(cold, Interval(i + 2, i + 8), 0.6);
    s.AddBaseFast(hot, Interval(30 * i + 1, 30 * i + 7), 0.8);
  }
  r.SortFactTime();
  s.SortFactTime();
  ASSERT_TRUE(ValidateSetOpInputs(r, s).ok());
  ExpectStagedMatchesSequential(r, s, 4);
}

TEST(StagedApplyTest, SharedContextDerivedInputs) {
  // Inputs that are themselves set-operation outputs: the staged
  // concatenations then reference non-atomic base formulas, and sequential
  // and staged runs share one consing arena.
  SupermarketDb db;
  TpRelation u = LawaUnion(db.a, db.b);
  TpRelation x = LawaIntersect(db.a, db.c);
  ExpectStagedMatchesSequential(u, db.c, 4);
  ExpectStagedMatchesSequential(x, u, 4);
  ExpectStagedMatchesSequential(u, u, 3);
}

TEST(StagedApplyTest, RandomizedSyntheticSweep) {
  for (std::uint64_t seed : {21u, 22u, 23u, 24u, 25u, 26u}) {
    auto ctx = std::make_shared<TpContext>();
    Rng rng(seed);
    SyntheticPairSpec spec = TableIIIPreset(0.4 + 0.1 * (seed % 3));
    spec.num_tuples = 200 + rng.Below(400);
    spec.num_facts = 1 + rng.Below(30);
    auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
    ExpectStagedMatchesSequential(r, s, 2 + seed % 4);
  }
}

TEST(StagedApplyTest, WithoutHashConsing) {
  // Append-only arena: the splice takes the pure remap-and-append path.
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  Rng rng(99);
  SyntheticPairSpec spec;
  spec.num_tuples = 300;
  spec.num_facts = 12;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  ExpectStagedMatchesSequential(r, s, 4);
}

TEST(StagedApplyTest, DeterministicAcrossRuns) {
  // Same deterministic inputs in two fresh contexts, both run staged with
  // the same thread count: outputs must match bit for bit (ids included) —
  // staged mode is deterministic. Against a third, sequential context the
  // staged arena may only be *larger*: the bulk-append splice skips global
  // deduplication (local per-partition consing still applies), never the
  // other way around.
  auto make_pair = [](std::shared_ptr<TpContext> ctx) {
    Rng rng(321);
    SyntheticPairSpec spec;
    spec.num_tuples = 250;
    spec.num_facts = 12;
    return GenerateSyntheticPair(std::move(ctx), spec, &rng);
  };
  auto ctx1 = std::make_shared<TpContext>();
  auto ctx2 = std::make_shared<TpContext>();
  auto ctx_seq = std::make_shared<TpContext>();
  auto [r1, s1] = make_pair(ctx1);
  auto [r2, s2] = make_pair(ctx2);
  auto [rq, sq] = make_pair(ctx_seq);
  ParallelSetOpAlgorithm staged = StagedAlgo(4);
  for (SetOpKind op : kAllSetOps) {
    TpRelation a = staged.Compute(op, r1, s1);
    TpRelation b = staged.Compute(op, r2, s2);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "tuple " << i;
    }
    TpRelation seq = LawaSetOp(op, rq, sq);
    EXPECT_LE(ctx_seq->lineage().size(), ctx1->lineage().size());
  }
}

TEST(StagedApplyTest, StagingArenaLocalConsingAndFolds) {
  // Unit-level checks of the staging arena against the manager's algebra.
  LineageManager mgr(/*hash_consing=*/true);
  VarTable vars;
  LineageId x = mgr.MakeVar(vars.Add(0.5));
  LineageId y = mgr.MakeVar(vars.Add(0.5));
  const LineageId frozen = static_cast<LineageId>(mgr.size());

  StagingArena arena(frozen, /*hash_consing=*/true);
  LineageId a1 = arena.ConcatAnd(x, y);
  LineageId a2 = arena.ConcatAnd(x, y);
  EXPECT_EQ(a1, a2);  // local consing dedups
  EXPECT_GE(a1, frozen);
  EXPECT_EQ(arena.size(), 1u);

  // Null-aware Table I behavior.
  EXPECT_EQ(arena.ConcatOr(kNullLineage, x), x);
  EXPECT_EQ(arena.ConcatOr(x, kNullLineage), x);
  EXPECT_EQ(arena.ConcatAndNot(x, kNullLineage), x);
  // and(x, x) folds without a cell; andNot(x, y) stages ¬y then x∧¬y; the
  // double negation over the *staged* ¬y folds back to y.
  EXPECT_EQ(arena.ConcatAnd(x, x), x);
  LineageId an = arena.ConcatAndNot(x, y);
  EXPECT_GE(an, frozen);
  std::vector<LineageId> remap;
  mgr.SpliceStaged(arena, &remap);
  ASSERT_EQ(remap.size(), arena.size());

  // Spliced formulas valuate like directly-built ones. The splice bulk-
  // appends (no global consing), so the ids are fresh even though the
  // structures match.
  LineageId direct = mgr.ConcatAnd(x, y);
  EXPECT_EQ(mgr.CanonicalKey(remap[a1 - frozen]), mgr.CanonicalKey(direct));
  LineageId direct_an = mgr.ConcatAndNot(x, y);
  EXPECT_EQ(mgr.CanonicalKey(remap[an - frozen]), mgr.CanonicalKey(direct_an));
  EXPECT_NE(remap[a1 - frozen], direct);
}

// ---- Executor integration: concurrent subtrees under staged apply ----

class StagedExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(exec_.Register(db_.a).ok());
    ASSERT_TRUE(exec_.Register(db_.b).ok());
    ASSERT_TRUE(exec_.Register(db_.c).ok());
  }

  SupermarketDb db_;
  QueryExecutor exec_{db_.ctx};
};

TEST_F(StagedExecutorTest, WholeTreeEquivalentToSequentialExecution) {
  const char* queries[] = {
      "a",
      "a | b",
      "c - (a | b)",
      "(a | b) & (c | a)",
      "((a | b) - (b & c)) | (c - a)",
      "(a - b) | (b - c) | (c - a)",
  };
  for (const char* q : queries) {
    Result<TpRelation> sequential = exec_.Execute(q);
    ASSERT_TRUE(sequential.ok()) << q;
    for (std::size_t threads : {2u, 4u, 8u}) {
      ExecOptions options;
      options.num_threads = threads;
      options.apply_mode = ApplyMode::kStaged;
      Result<TpRelation> staged = exec_.Execute(q, options);
      ASSERT_TRUE(staged.ok()) << q;
      ExpectValuationEqual(*sequential, *staged);
      EXPECT_TRUE(RelationsEquivalent(*sequential, *staged)) << q;
    }
  }
}

TEST_F(StagedExecutorTest, RepeatedStagedRunsAreStable) {
  // Concurrent subtrees race on scheduling but the sequencer serializes all
  // arena mutations in ticket order — repeated staged runs in one context
  // must agree structurally (the bulk-append splice assigns fresh node ids
  // each run, since the arena has grown; the formulas themselves, and
  // therefore canonical keys and probabilities, may not change).
  ExecOptions options;
  options.num_threads = 4;
  options.apply_mode = ApplyMode::kStaged;
  const char* q = "((a | b) - (b & c)) | (c - a)";
  Result<TpRelation> first = exec_.Execute(q, options);
  ASSERT_TRUE(first.ok());
  const LineageManager& mgr = db_.ctx->lineage();
  for (int run = 0; run < 5; ++run) {
    Result<TpRelation> again = exec_.Execute(q, options);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(first->size(), again->size());
    for (std::size_t i = 0; i < first->size(); ++i) {
      EXPECT_EQ((*first)[i].fact, (*again)[i].fact) << "run " << run;
      EXPECT_EQ((*first)[i].t, (*again)[i].t) << "run " << run;
      EXPECT_EQ(mgr.CanonicalKey((*first)[i].lineage),
                mgr.CanonicalKey((*again)[i].lineage))
          << "run " << run << " tuple " << i;
    }
  }
}

}  // namespace
}  // namespace tpset
