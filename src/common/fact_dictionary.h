// Interning dictionary mapping facts to dense FactIds.
//
// All relations sharing one TpContext share one dictionary, so fact equality
// across relations is FactId equality, and LAWA's (F, Ts) sort order is the
// numeric (FactId, Ts) order.
#ifndef TPSET_COMMON_FACT_DICTIONARY_H_
#define TPSET_COMMON_FACT_DICTIONARY_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/value.h"

namespace tpset {

/// Bidirectional fact <-> FactId mapping with O(1) amortized interning.
class FactDictionary {
 public:
  FactDictionary() = default;

  // The index maps into facts_, so the dictionary must not be copied (the
  // context that owns it is heap-allocated and shared).
  FactDictionary(const FactDictionary&) = delete;
  FactDictionary& operator=(const FactDictionary&) = delete;

  /// Interns a fact, returning its id (existing id if already present).
  FactId Intern(const Fact& fact);

  /// Looks up an existing fact without interning.
  Result<FactId> Find(const Fact& fact) const;

  /// Returns the fact for an id; id must be valid.
  const Fact& Get(FactId id) const { return facts_[id]; }

  bool Contains(FactId id) const { return id < facts_.size(); }

  std::size_t size() const { return facts_.size(); }

 private:
  struct FactHash {
    std::size_t operator()(const Fact& f) const { return HashFact(f); }
  };

  std::vector<Fact> facts_;
  std::unordered_map<Fact, FactId, FactHash> index_;
};

}  // namespace tpset

#endif  // TPSET_COMMON_FACT_DICTIONARY_H_
