// Algebra extensions: selection, projection with OR-merging duplicate
// elimination, coalescing, and the streaming set-operation cursor.
#include <gtest/gtest.h>

#include "algebra/cursor.h"
#include "algebra/select_project.h"
#include "datagen/synthetic.h"
#include "lawa/set_ops.h"
#include "lineage/eval.h"
#include "relation/dedup.h"
#include "relation/validate.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

// ---- selection ----

TEST(SelectTest, FiltersByPredicate) {
  SupermarketDb db;
  TpRelation milk = Select(db.c, [](const Fact& f) {
    return std::get<std::string>(f[0]) == "milk";
  });
  EXPECT_EQ(milk.size(), 2u);
  for (std::size_t i = 0; i < milk.size(); ++i) {
    EXPECT_EQ(ToString(milk.FactOf(i)), "'milk'");
  }
}

TEST(SelectTest, SelectEqualsValidatesSchema) {
  SupermarketDb db;
  Result<TpRelation> ok = SelectEquals(db.c, 0, Value(std::string("chips")));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  EXPECT_FALSE(SelectEquals(db.c, 1, Value(std::string("x"))).ok())
      << "attribute out of range";
  EXPECT_FALSE(SelectEquals(db.c, 0, Value(std::int64_t{1})).ok())
      << "type mismatch";
}

TEST(SelectTest, PaperFig6ViaSelection) {
  SupermarketDb db;
  Value milk{std::string("milk")};
  TpRelation d = LawaExcept(*SelectEquals(db.c, 0, milk),
                            *SelectEquals(db.a, 0, milk));
  ASSERT_EQ(d.size(), 3u);
  EXPECT_EQ(d.LineageString(0), "c1");
  EXPECT_EQ(d.LineageString(1), "c1∧¬a1");
  EXPECT_EQ(d.LineageString(2), "c2∧¬a1");
}

// ---- dedup / projection ----

TEST(DedupTest, MergesOverlapsByOr) {
  auto ctx = std::make_shared<TpContext>();
  LineageManager& mgr = ctx->lineage();
  VarId x = ctx->vars().Add(0.5);
  VarId y = ctx->vars().Add(0.5);
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  std::vector<TpTuple> tuples = {
      {f, Interval(0, 10), mgr.MakeVar(x)},
      {f, Interval(5, 15), mgr.MakeVar(y)},
  };
  MergeDuplicatesByOr(&tuples, &mgr);
  ASSERT_EQ(tuples.size(), 3u);
  EXPECT_EQ(tuples[0].t, Interval(0, 5));
  EXPECT_EQ(tuples[0].lineage, mgr.MakeVar(x));
  EXPECT_EQ(tuples[1].t, Interval(5, 10));
  EXPECT_EQ(tuples[1].lineage, mgr.MakeOr(mgr.MakeVar(x), mgr.MakeVar(y)));
  EXPECT_EQ(tuples[2].t, Interval(10, 15));
  EXPECT_EQ(tuples[2].lineage, mgr.MakeVar(y));
}

TEST(DedupTest, DisjointFastPathKeepsTuples) {
  auto ctx = std::make_shared<TpContext>();
  LineageManager& mgr = ctx->lineage();
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  VarId x = ctx->vars().Add(0.5);
  VarId y = ctx->vars().Add(0.5);
  std::vector<TpTuple> tuples = {
      {f, Interval(5, 8), mgr.MakeVar(y)},
      {f, Interval(0, 5), mgr.MakeVar(x)},
  };
  MergeDuplicatesByOr(&tuples, &mgr);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].t, Interval(0, 5)) << "sorted";
  EXPECT_EQ(tuples[1].t, Interval(5, 8));
}

TEST(ProjectTest, CollapsingFactsOrTheirLineages) {
  // Two-attribute relation: (product, store). Projecting onto product makes
  // the two store-tuples collapse; where they overlap the lineage is OR-ed.
  auto ctx = std::make_shared<TpContext>();
  Schema schema({"product", "store"}, {ValueType::kString, ValueType::kString});
  TpRelation rel(ctx, schema, "sales");
  ASSERT_TRUE(rel.AddBase({Value(std::string("milk")), Value(std::string("s1"))},
                          Interval(0, 10), 0.5, "m1")
                  .ok());
  ASSERT_TRUE(rel.AddBase({Value(std::string("milk")), Value(std::string("s2"))},
                          Interval(5, 15), 0.5, "m2")
                  .ok());
  ASSERT_TRUE(rel.AddBase({Value(std::string("tea")), Value(std::string("s1"))},
                          Interval(0, 4), 0.5, "t1")
                  .ok());
  Result<TpRelation> projected = Project(rel, {0});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->schema().num_attributes(), 1u);
  EXPECT_TRUE(ValidateDuplicateFree(*projected).ok());
  ASSERT_EQ(projected->size(), 4u);  // milk [0,5),[5,10),[10,15); tea [0,4)
  bool found_or = false;
  for (std::size_t i = 0; i < projected->size(); ++i) {
    if (projected->LineageString(i) == "m1∨m2") {
      found_or = true;
      EXPECT_EQ((*projected)[i].t, Interval(5, 10));
    }
  }
  EXPECT_TRUE(found_or);
}

TEST(ProjectTest, ReordersAndValidates) {
  auto ctx = std::make_shared<TpContext>();
  Schema schema({"a", "b"}, {ValueType::kInt64, ValueType::kString});
  TpRelation rel(ctx, schema, "r");
  ASSERT_TRUE(rel.AddBase({Value(std::int64_t{1}), Value(std::string("x"))},
                          Interval(0, 5), 0.5)
                  .ok());
  Result<TpRelation> swapped = Project(rel, {1, 0});
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(swapped->schema().names(), (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(ToString(swapped->FactOf(0)), "('x', 1)");
  EXPECT_FALSE(Project(rel, {2}).ok()) << "index out of range";
}

TEST(CoalesceTest, MergesAdjacentEquivalentLineages) {
  auto ctx = std::make_shared<TpContext>();
  LineageManager& mgr = ctx->lineage();
  VarId x = ctx->vars().Add(0.5);
  VarId y = ctx->vars().Add(0.5);
  FactId f = ctx->facts().Intern({Value(std::string("f"))});
  TpRelation rel(ctx, Schema::SingleString("Product"), "r");
  // Same formula written with commuted operands: still merged (canonical
  // key comparison).
  rel.AddDerived(f, Interval(0, 5), mgr.MakeAnd(mgr.MakeVar(x), mgr.MakeVar(y)));
  rel.AddDerived(f, Interval(5, 9), mgr.MakeAnd(mgr.MakeVar(y), mgr.MakeVar(x)));
  rel.AddDerived(f, Interval(12, 20), mgr.MakeVar(x));  // gap: not merged
  TpRelation merged = CoalesceEquivalent(rel);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].t, Interval(0, 9));
  EXPECT_EQ(merged[1].t, Interval(12, 20));
}

// ---- streaming cursor ----

TEST(CursorTest, MatchesEagerEvaluationOnPaperExample) {
  SupermarketDb db;
  for (SetOpKind op : kAllSetOps) {
    TpRelation eager = LawaSetOp(op, db.a, db.c);
    SetOpCursor cursor(op, db.a, db.c);
    std::vector<TpTuple> streamed;
    TpTuple t;
    while (cursor.Next(&t)) streamed.push_back(t);
    ASSERT_EQ(streamed.size(), eager.size()) << SetOpName(op);
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i], eager[i]) << SetOpName(op) << " tuple " << i;
    }
    EXPECT_EQ(cursor.produced(), eager.size());
  }
}

TEST(CursorTest, MatchesEagerOnRandomData) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(31415);
  SyntheticPairSpec spec;
  spec.num_tuples = 300;
  spec.num_facts = 7;
  auto [r, s] = GenerateSyntheticPair(ctx, spec, &rng);
  for (SetOpKind op : kAllSetOps) {
    TpRelation eager = LawaSetOp(op, r, s);
    SetOpCursor cursor(op, r, s);
    std::size_t i = 0;
    TpTuple t;
    while (cursor.Next(&t)) {
      ASSERT_LT(i, eager.size()) << SetOpName(op);
      EXPECT_EQ(t, eager[i]) << SetOpName(op) << " tuple " << i;
      ++i;
    }
    EXPECT_EQ(i, eager.size()) << SetOpName(op);
  }
}

TEST(CursorTest, ExhaustedCursorStaysExhausted) {
  SupermarketDb db;
  SetOpCursor cursor(SetOpKind::kIntersect, db.a, db.c);
  TpTuple t;
  while (cursor.Next(&t)) {
  }
  EXPECT_FALSE(cursor.Next(&t));
  EXPECT_FALSE(cursor.Next(&t));
}

TEST(CursorTest, WindowCountRespectsProposition1) {
  SupermarketDb db;
  SetOpCursor cursor(SetOpKind::kUnion, db.a, db.c);
  TpTuple t;
  while (cursor.Next(&t)) {
  }
  EXPECT_LE(cursor.windows_examined(),
            2 * db.a.size() + 2 * db.c.size() - 3 /* distinct facts */);
}

// ---- interplay: projection output through set operations ----

TEST(ProjectTest, ProjectedRelationFeedsSetOps) {
  auto ctx = std::make_shared<TpContext>();
  Schema schema({"product", "store"}, {ValueType::kString, ValueType::kString});
  TpRelation sales(ctx, schema, "sales");
  ASSERT_TRUE(sales.AddBase({Value(std::string("milk")), Value(std::string("s1"))},
                            Interval(0, 10), 0.4, "m1")
                  .ok());
  ASSERT_TRUE(sales.AddBase({Value(std::string("milk")), Value(std::string("s2"))},
                            Interval(5, 15), 0.6, "m2")
                  .ok());
  TpRelation stock(ctx, Schema::SingleString("product"), "stock");
  ASSERT_TRUE(stock.AddBase({Value(std::string("milk"))}, Interval(0, 20), 0.9,
                            "k1")
                  .ok());
  Result<TpRelation> sold = Project(sales, {0});
  ASSERT_TRUE(sold.ok());
  TpRelation unsold = LawaExcept(stock, *sold);
  ASSERT_TRUE(ValidateDuplicateFree(unsold).ok());
  // [0,5): k1∧¬m1, [5,10): k1∧¬(m1∨m2), [10,15): k1∧¬m2, [15,20): k1.
  ASSERT_EQ(unsold.size(), 4u);
  EXPECT_EQ(unsold.LineageString(1), "k1∧¬(m1∨m2)");
  EXPECT_NEAR(unsold.TupleProbability(1), 0.9 * (1 - (0.4 + 0.6 - 0.24)), 1e-9);
}

}  // namespace
}  // namespace tpset
