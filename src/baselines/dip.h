// DIP baseline: Disjoint Interval Partitioning join (Cafagna & Böhlen,
// VLDB J. 2017 — the paper's ref [15], discussed in §II).
//
// DIP splits a relation into the minimum number of partitions such that the
// intervals *within* one partition are pairwise disjoint (greedy assignment
// to the first partition whose last interval ends before the new one
// starts). An overlap join then runs one sort-merge pass per partition
// pair — no backtracking, because within a partition at most one interval
// can overlap any probe point.
//
// The paper's §II observes that such partitioning "is not beneficial for
// our case, since TP relations are duplicate-free": per *fact* the inputs
// are already disjoint, so DIP's partition count is driven by the overlap
// across facts, and the per-partition-pair merge passes scan tuples of all
// facts — like TI, DIP pays for pairs that the fact filter later rejects.
// This implementation makes that claim testable (see bench_ablation and
// tests/baseline_dip_test.cc); DIP is kept out of the Table II registry
// because the paper does not evaluate it.
#ifndef TPSET_BASELINES_DIP_H_
#define TPSET_BASELINES_DIP_H_

#include <vector>

#include "common/setop.h"
#include "common/status.h"
#include "relation/relation.h"
#include "relation/tuple.h"

namespace tpset {

/// Greedy disjoint-interval partitioning of `tuples` (any order): returns
/// partitions, each a start-sorted vector of tuples with pairwise disjoint
/// intervals, using the minimal number of partitions.
std::vector<std::vector<TpTuple>> DipPartition(const std::vector<TpTuple>& tuples);

struct DipStats {
  std::size_t partitions_r = 0;
  std::size_t partitions_s = 0;
  std::size_t pairs_tested = 0;  ///< merge comparisons across partition pairs
};

/// Computes r ∩Tp s with DIP partitioning + per-partition-pair sort-merge.
/// Only kIntersect is supported (an overlap join, like OIP/TI).
Result<TpRelation> DipSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                            DipStats* stats = nullptr);

}  // namespace tpset

#endif  // TPSET_BASELINES_DIP_H_
