#include "incremental/append_log.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <string>

#include "common/interval.h"

namespace tpset {

namespace {

// Last stored interval end of `fact` in a (fact, start)-sorted relation, or
// nullopt-style pair {false, 0} when the fact has no tuples. Sorted order +
// duplicate-freeness make the last tuple of the fact's run the one with the
// maximal end.
std::pair<bool, TimePoint> FactTailEnd(const TpRelation& rel, FactId fact) {
  const std::vector<TpTuple>& tuples = rel.tuples();
  auto it = std::upper_bound(
      tuples.begin(), tuples.end(), fact,
      [](FactId f, const TpTuple& t) { return f < t.fact; });
  if (it == tuples.begin() || std::prev(it)->fact != fact) return {false, 0};
  return {true, std::prev(it)->t.end};
}

}  // namespace

Result<EpochId> AppendLog::Append(TpRelation* rel, const DeltaBatch& batch,
                                  std::vector<TpTuple>* applied) {
  assert(rel != nullptr && rel->context() != nullptr);
  if (!rel->known_sorted()) {
    return Status::InvalidArgument(
        "appends require the sortedness witness; register the relation or "
        "call SortFactTime first");
  }
  TpContext& ctx = *rel->context();

  // ---- Validation (no side effects on the context until it all passes) ---
  std::set<std::string> batch_vars;
  for (const DeltaRow& row : batch.rows) {
    TPSET_RETURN_NOT_OK(rel->schema().Validate(row.fact));
    if (!row.t.IsValid()) {
      return Status::InvalidArgument("empty interval " + ToString(row.t));
    }
    if (!(row.p > 0.0 && row.p <= 1.0)) {
      return Status::InvalidArgument("probability must be in (0,1]");
    }
    if (!row.var.empty()) {
      if (!batch_vars.insert(row.var).second ||
          ctx.vars().Find(row.var).ok()) {
        return Status::InvalidArgument("variable '" + row.var +
                                       "' already exists");
      }
    }
  }

  // Group row indices by fact value and check each fact's chain: start
  // ordered, non-overlapping, beginning at or after the stored tail.
  std::map<Fact, std::vector<std::size_t>> by_fact;
  for (std::size_t i = 0; i < batch.rows.size(); ++i) {
    by_fact[batch.rows[i].fact].push_back(i);
  }
  for (auto& [fact, rows] : by_fact) {
    std::stable_sort(rows.begin(), rows.end(), [&](std::size_t a, std::size_t b) {
      const Interval& ta = batch.rows[a].t;
      const Interval& tb = batch.rows[b].t;
      return ta.start != tb.start ? ta.start < tb.start : ta.end < tb.end;
    });
    TimePoint tail = 0;
    bool have_tail = false;
    Result<FactId> existing = ctx.facts().Find(fact);
    if (existing.ok()) {
      auto [found, end] = FactTailEnd(*rel, *existing);
      have_tail = found;
      tail = end;
    }
    for (std::size_t idx : rows) {
      const Interval& t = batch.rows[idx].t;
      if (have_tail && t.start < tail) {
        return Status::InvalidArgument(
            "append violates fact-time order: " + ToString(fact) + " " +
            ToString(t) + " starts before the fact's tail (t=" +
            std::to_string(tail) + ")");
      }
      tail = t.end;
      have_tail = true;
    }
  }

  // ---- Apply: intern variables and facts, merge, stamp the epoch --------
  std::vector<TpTuple> tuples;
  tuples.reserve(batch.rows.size());
  for (const DeltaRow& row : batch.rows) {
    VarId v;
    if (row.var.empty()) {
      v = ctx.vars().Add(row.p);
    } else {
      Result<VarId> named = ctx.vars().AddNamed(row.var, row.p);
      assert(named.ok() && "name collisions were rejected above");
      v = *named;
    }
    FactId f = ctx.facts().Intern(row.fact);
    tuples.push_back({f, row.t, ctx.lineage().MakeVar(v)});
  }
  std::sort(tuples.begin(), tuples.end(), FactTimeOrder());
  if (applied != nullptr) *applied = tuples;
  rel->MergeSortedAppend(std::move(tuples));
  return next_epoch_++;
}

}  // namespace tpset
