#include "lineage/simplify.h"

#include <cassert>
#include <unordered_map>

namespace tpset {

namespace {

// ¬a as a syntactic query: the id of Not(a) if it would fold, else match.
bool AreComplements(const LineageManager& mgr, LineageId a, LineageId b) {
  const LineageNode& na = mgr.node(a);
  const LineageNode& nb = mgr.node(b);
  return (na.kind == LineageKind::kNot && na.left == b) ||
         (nb.kind == LineageKind::kNot && nb.left == a);
}

// Whether `part` occurs as a direct operand of the (flattened) `op`-chain
// rooted at `id`.
bool ChainContains(const LineageManager& mgr, LineageId id, LineageKind op,
                   LineageId part) {
  if (id == part) return true;
  const LineageNode& n = mgr.node(id);
  if (n.kind != op) return false;
  return ChainContains(mgr, n.left, op, part) ||
         ChainContains(mgr, n.right, op, part);
}

LineageId Go(LineageManager& mgr, LineageId id,
             std::unordered_map<LineageId, LineageId>* memo) {
  const LineageNode n = mgr.node(id);  // copy: arena may grow below
  switch (n.kind) {
    case LineageKind::kFalse:
    case LineageKind::kTrue:
    case LineageKind::kVar:
      return id;
    default:
      break;
  }
  auto it = memo->find(id);
  if (it != memo->end()) return it->second;

  LineageId result;
  if (n.kind == LineageKind::kNot) {
    result = mgr.MakeNot(Go(mgr, n.left, memo));
  } else {
    LineageId a = Go(mgr, n.left, memo);
    LineageId b = Go(mgr, n.right, memo);
    const bool is_and = n.kind == LineageKind::kAnd;
    const LineageKind op = n.kind;
    const LineageKind dual = is_and ? LineageKind::kOr : LineageKind::kAnd;
    if (AreComplements(mgr, a, b)) {
      // x ∧ ¬x → ⊥;  x ∨ ¬x → ⊤.
      result = is_and ? mgr.False() : mgr.True();
    } else if (mgr.kind(b) == dual && ChainContains(mgr, b, dual, a)) {
      // x ∧ (… x …∨) → x;  x ∨ (… x …∧) → x.
      result = a;
    } else if (mgr.kind(a) == dual && ChainContains(mgr, a, dual, b)) {
      result = b;
    } else if (mgr.kind(b) == op && ChainContains(mgr, b, op, a)) {
      // x ∧ (x ∧ y) → x ∧ y (chain dedup), dito for ∨.
      result = b;
    } else if (mgr.kind(a) == op && ChainContains(mgr, a, op, b)) {
      result = a;
    } else {
      result = is_and ? mgr.MakeAnd(a, b) : mgr.MakeOr(a, b);
    }
  }
  memo->emplace(id, result);
  return result;
}

}  // namespace

LineageId Simplify(LineageManager& mgr, LineageId id) {
  if (id == kNullLineage) return id;
  assert(mgr.hash_consing() && "simplification requires hash-consing");
  std::unordered_map<LineageId, LineageId> memo;
  return Go(mgr, id, &memo);
}

}  // namespace tpset
