// Fact-range partitioning of a pair of (fact, start)-sorted TP relations.
//
// LAWA windows never span fact boundaries (the advancer's status resets
// whenever currFact changes), so a set operation over inputs sorted by
// (fact, start) decomposes into independent operations over disjoint fact
// ranges — the partition-then-merge structure of radix-partitioned joins,
// with the fact as the partitioning key. The partitioner cuts both inputs at
// common fact boundaries, balancing the combined tuple count per partition.
#ifndef TPSET_PARALLEL_PARTITION_H_
#define TPSET_PARALLEL_PARTITION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "relation/tuple.h"

namespace tpset {

/// One partition: a contiguous index range of each input. All tuples of a
/// fact land in exactly one partition, and the fact ranges of successive
/// partitions are disjoint and increasing.
struct FactPartition {
  std::size_t r_begin = 0, r_end = 0;
  std::size_t s_begin = 0, s_end = 0;

  /// Combined tuple count (the balancing weight).
  std::size_t size() const { return (r_end - r_begin) + (s_end - s_begin); }
};

/// Splits `r` and `s` (both sorted by (fact, start)) into at most
/// `max_partitions` non-empty partitions cut at fact boundaries, choosing
/// cuts so combined sizes are balanced up to fact granularity. Fewer
/// partitions come back when the inputs have fewer facts than requested or
/// when skew concentrates the weight (a single heavy fact is never split —
/// it ends up alone in one partition). Empty inputs yield no partitions.
std::vector<FactPartition> PartitionByFactRange(const std::vector<TpTuple>& r,
                                                const std::vector<TpTuple>& s,
                                                std::size_t max_partitions);

/// Span form of the same contract: partitions r[0..nr) and s[0..ns). Lets
/// the zero-sort fast path cut a registered relation's tuples in place
/// without materializing a copy.
std::vector<FactPartition> PartitionByFactRange(const TpTuple* r,
                                                std::size_t nr,
                                                const TpTuple* s,
                                                std::size_t ns,
                                                std::size_t max_partitions);

/// One partition of several parallel sorted runs: slices[i] is the index
/// range [begin, end) of run i covering the partition's fact range. As with
/// FactPartition, all tuples of a fact land in exactly one partition and the
/// fact ranges of successive partitions are disjoint and increasing.
struct RunPartition {
  std::vector<std::pair<std::size_t, std::size_t>> slices;
  std::size_t size = 0;  ///< combined tuple count (the balancing weight)
};

/// Generalizes PartitionByFactRange to any number of (fact, start)-sorted
/// runs: cuts all runs at common fact boundaries into at most
/// `max_partitions` non-empty partitions balanced by combined tuple count
/// (a single heavy fact is never split). The run-indexed storage engine
/// uses this to parallelize compaction — each partition k-way-merges its
/// slices independently and the outputs concatenate in fact order.
std::vector<RunPartition> PartitionRunsByFact(
    const std::vector<std::pair<const TpTuple*, std::size_t>>& runs,
    std::size_t max_partitions);

/// One contiguous index range [begin, end) of a weighted item sequence.
struct WeightRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Cuts [0, weights.size()) into at most `max_groups` non-empty contiguous
/// ranges balanced by total weight (an item is never split, so a single
/// heavy item ends up alone in its range). The incremental engine uses this
/// to partition the facts touched by a delta batch into fact ranges — the
/// items are touched facts in FactId order, weighted by their sweep cost —
/// before fanning the per-fact delta apply out to the pool.
std::vector<WeightRange> PartitionByWeight(const std::vector<std::size_t>& weights,
                                           std::size_t max_groups);

}  // namespace tpset

#endif  // TPSET_PARALLEL_PARTITION_H_
