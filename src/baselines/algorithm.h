// Common interface for TP set-operation algorithms, plus the registry that
// backs the paper's Table II (which approach supports which operation).
#ifndef TPSET_BASELINES_ALGORITHM_H_
#define TPSET_BASELINES_ALGORITHM_H_

#include <string>
#include <vector>

#include "common/setop.h"
#include "relation/relation.h"

namespace tpset {

/// One algorithm capable of computing some subset of the TP set operations.
/// Implementations: LAWA (the paper's contribution), NORM, TPDB, TI, OIP
/// (the paper's comparators, re-implemented in-memory; see DESIGN.md for the
/// substitution notes).
class SetOpAlgorithm {
 public:
  virtual ~SetOpAlgorithm() = default;

  /// Display name as used in the paper's plots ("LAWA", "NORM", ...).
  virtual std::string name() const = 0;

  /// Table II: can this approach compute `op` at all?
  virtual bool Supports(SetOpKind op) const = 0;

  /// Computes r opTp s. Preconditions as for LawaSetOp: duplicate-free,
  /// shared context, compatible schemas; `op` must be supported.
  virtual TpRelation Compute(SetOpKind op, const TpRelation& r,
                             const TpRelation& s) const = 0;
};

/// All registered algorithms, in the paper's Table II order with the
/// partitioned parallel variant next to its sequential base:
/// LAWA, LAWA-P, NORM, TPDB, OIP, TI. Pointers have static storage duration.
const std::vector<const SetOpAlgorithm*>& AllAlgorithms();

/// Looks up an algorithm by display name; nullptr if unknown.
const SetOpAlgorithm* FindAlgorithm(const std::string& name);

}  // namespace tpset

#endif  // TPSET_BASELINES_ALGORITHM_H_
