// Fig. 10 (a,b,c): TP set operations on the Meteo-Swiss-like dataset.
//
// The paper runs each operation over equally sized random subsets (20K-200K
// tuples) of the 10.2M-tuple Meteo dataset and a shifted counterpart. Paper
// shape: LAWA fastest everywhere; NORM/TPDB quadratic-ish (80 facts only);
// TI/OIP in between for intersection.
#include <algorithm>
#include <memory>

#include "baselines/algorithm.h"
#include "bench/harness.h"
#include "datagen/realworld.h"

using namespace tpset;
using namespace tpset::bench;

namespace {

// Random subset of `rel` with `n` tuples (new relation, same context).
TpRelation Subset(const TpRelation& rel, std::size_t n, Rng* rng) {
  TpRelation out(rel.context(), rel.schema(), rel.name() + "_subset");
  std::vector<std::size_t> idx(rel.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  // Partial Fisher-Yates.
  n = std::min(n, idx.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t j = i + rng->Below(idx.size() - i);
    std::swap(idx[i], idx[j]);
    out.AddDerived(rel[idx[i]].fact, rel[idx[i]].t, rel[idx[i]].lineage);
  }
  out.SortFactTime();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double scale = ScaleFactor(argc, argv);
  std::printf("# Fig. 10: Meteo-like dataset (80 stations), subsets 20K-200K, "
              "scale=%.3g\n", scale);
  PrintHeader("fig10");

  // Base dataset: scaled version of the 10.2M-tuple original (cap the
  // generation cost; subsets are what is measured).
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  Rng rng(0xF16010);
  MeteoSpec meteo;
  meteo.num_tuples = std::max<std::size_t>(Scaled(2000000, scale), 20000);
  TpRelation base = GenerateMeteoLike(ctx, meteo, "meteo", &rng);
  TpRelation shifted = ShiftedCopy(base, "meteo_shifted", &rng);

  const std::size_t paper_sizes[] = {20000, 60000, 100000, 140000, 200000};
  const struct {
    const char* sub;
    SetOpKind op;
  } subfigures[] = {{"fig10a", SetOpKind::kIntersect},
                    {"fig10b", SetOpKind::kExcept},
                    {"fig10c", SetOpKind::kUnion}};

  for (const auto& sub : subfigures) {
    for (std::size_t paper_n : paper_sizes) {
      std::size_t n = Scaled(paper_n, scale);
      TpRelation r = Subset(base, n, &rng);
      TpRelation s = Subset(shifted, n, &rng);
      for (const SetOpAlgorithm* algo : AllAlgorithms()) {
        if (!algo->Supports(sub.op)) continue;
        // 80 facts -> per-fact groups of n/80; quadratic baselines are
        // tolerable to ~n=40K at default scale, cap beyond that.
        if ((algo->name() == "NORM" || algo->name() == "TPDB") && n > 40000) {
          PrintCap(sub.sub, SetOpName(sub.op), algo->name(), n, 40000);
          continue;
        }
        double ms = TimeMs([&] {
          TpRelation out = algo->Compute(sub.op, r, s);
          (void)out;
        });
        PrintRow(sub.sub, SetOpName(sub.op), algo->name(), n, ms);
      }
    }
  }
  return 0;
}
