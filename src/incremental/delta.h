// Delta vocabulary of the incremental continuous-query subsystem.
//
// A DeltaBatch is what a producer appends to one registered relation: new
// base tuples, each with its fact, interval and probability. Applying a
// batch is one *epoch* — epochs are assigned monotonically across all
// relations of one executor, so "state as of epoch e" is well defined. A
// TupleDelta is what flows out of the maintenance DAG: the tuples a node's
// accumulated result gained and lost at one epoch. Inserted and retracted
// tuples carry their final lineage ids, so a subscriber that folds the
// stream into a multiset reconstructs the node's accumulated relation
// exactly.
#ifndef TPSET_INCREMENTAL_DELTA_H_
#define TPSET_INCREMENTAL_DELTA_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/types.h"
#include "common/value.h"
#include "relation/tuple.h"

namespace tpset {

// EpochId (the monotone id of one applied append batch; 0 means "before any
// append", i.e. the initial full computation of a continuous query) lives in
// common/types.h so the storage layer can stamp runs with it.

/// One base tuple to append: fact values, interval, probability, optional
/// variable name (anonymous if empty).
struct DeltaRow {
  Fact fact;
  Interval t;
  double p = 1.0;
  std::string var;
};

/// An ordered batch of appends for one relation. Rows may interleave facts
/// arbitrarily; per fact they must extend the relation's timeline (AppendLog
/// validates start-ordered, non-overlapping intervals beginning at or after
/// the fact's last stored end).
struct DeltaBatch {
  std::vector<DeltaRow> rows;

  void Add(Fact fact, Interval t, double p, std::string var = "") {
    rows.push_back({std::move(fact), t, p, std::move(var)});
  }
  std::size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
};

/// Tuples one accumulated result gained / lost at one epoch. Both lists are
/// sorted by (fact, start); a tuple never appears in both.
struct TupleDelta {
  std::vector<TpTuple> inserted;
  std::vector<TpTuple> retracted;

  bool empty() const { return inserted.empty() && retracted.empty(); }
};

/// What a Subscription receives per epoch: the epoch id and the root delta.
struct EpochDelta {
  EpochId epoch = 0;
  TupleDelta delta;
};

/// Per-fact slice of a delta as it propagates through the DAG: the tuples
/// added to / removed from one side of a set-op node for one fact, in
/// (start, end) order. Inserted tuples of a resumable delta extend the
/// fact's timeline; retracted tuples always name exact existing tuples.
struct FactDelta {
  std::vector<TpTuple> inserted;
  std::vector<TpTuple> retracted;

  bool empty() const { return inserted.empty() && retracted.empty(); }
};

/// A node-level delta keyed by fact, in FactId order (deterministic
/// propagation and splice order).
using DeltaMap = std::map<FactId, FactDelta>;

/// Groups a (fact, start)-sorted tuple batch into a per-fact insert delta —
/// the leaf delta the continuous-query DAG consumes.
inline DeltaMap GroupInsertsByFact(const std::vector<TpTuple>& tuples) {
  DeltaMap map;
  for (const TpTuple& t : tuples) {
    map[t.fact].inserted.push_back(t);
  }
  return map;
}

}  // namespace tpset

#endif  // TPSET_INCREMENTAL_DELTA_H_
