#include "baselines/dip.h"

#include <algorithm>
#include <map>

namespace tpset {

std::vector<std::vector<TpTuple>> DipPartition(const std::vector<TpTuple>& tuples) {
  // Sort by start; greedily place each tuple into the partition whose last
  // interval ends earliest among those that end at or before the tuple's
  // start (classic minimum-machines scheduling). A multimap keyed by each
  // partition's current end point gives O(n log k).
  std::vector<TpTuple> sorted = tuples;
  std::sort(sorted.begin(), sorted.end(), [](const TpTuple& a, const TpTuple& b) {
    if (a.t.start != b.t.start) return a.t.start < b.t.start;
    return a.t.end < b.t.end;
  });
  std::vector<std::vector<TpTuple>> partitions;
  std::multimap<TimePoint, std::size_t> by_end;  // partition end -> index
  for (const TpTuple& t : sorted) {
    auto it = by_end.begin();
    if (it != by_end.end() && it->first <= t.t.start) {
      std::size_t p = it->second;
      by_end.erase(it);
      partitions[p].push_back(t);
      by_end.emplace(t.t.end, p);
    } else {
      partitions.emplace_back();
      partitions.back().push_back(t);
      by_end.emplace(t.t.end, partitions.size() - 1);
    }
  }
  return partitions;
}

Result<TpRelation> DipSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                            DipStats* stats) {
  if (op != SetOpKind::kIntersect) {
    return Status::NotSupported(
        "DIP is an overlap join; TP set " + std::string(SetOpName(op)) +
        " requires windows an overlap join cannot produce");
  }
  LineageManager& mgr = r.context()->lineage();
  TpRelation out(r.context(), r.schema(),
                 "(" + r.name() + " intersect " + s.name() + ")");
  DipStats local;

  std::vector<std::vector<TpTuple>> rp = DipPartition(r.tuples());
  std::vector<std::vector<TpTuple>> sp = DipPartition(s.tuples());
  local.partitions_r = rp.size();
  local.partitions_s = sp.size();

  // One forward sort-merge pass per partition pair: within a partition the
  // intervals are disjoint and start-sorted, so two cursors suffice.
  for (const auto& pr : rp) {
    for (const auto& ps : sp) {
      std::size_t i = 0, j = 0;
      while (i < pr.size() && j < ps.size()) {
        ++local.pairs_tested;
        const TpTuple& x = pr[i];
        const TpTuple& y = ps[j];
        if (x.t.Overlaps(y.t) && x.fact == y.fact) {
          out.AddDerived(x.fact, Intersect(x.t, y.t),
                         mgr.ConcatAnd(x.lineage, y.lineage));
        }
        // Advance the cursor whose interval ends first.
        if (x.t.end <= y.t.end) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  out.SortFactTime();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace tpset
