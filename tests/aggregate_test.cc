// Expected-value temporal aggregation.
#include <gtest/gtest.h>

#include "algebra/aggregate.h"
#include "datagen/synthetic.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

// Brute-force expectation at a single time point.
double ExpectedAt(const TpRelation& rel, TimePoint t) {
  double sum = 0.0;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    if (rel[i].t.Contains(t)) sum += rel.TupleProbability(i);
  }
  return sum;
}

TEST(AggregateTest, SingleTuple) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 2, 6, 0.25}});
  auto series = ExpectedCountSeries(r);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].t, Interval(2, 6));
  EXPECT_NEAR(series[0].expected_count, 0.25, 1e-12);
}

TEST(AggregateTest, OverlapAddsExpectations) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 10, 0.5}, {"g", "r2", 5, 15, 0.25}});
  auto series = ExpectedCountSeries(r);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series[0].t, Interval(0, 5));
  EXPECT_NEAR(series[0].expected_count, 0.5, 1e-12);
  EXPECT_EQ(series[1].t, Interval(5, 10));
  EXPECT_NEAR(series[1].expected_count, 0.75, 1e-12);
  EXPECT_EQ(series[2].t, Interval(10, 15));
  EXPECT_NEAR(series[2].expected_count, 0.25, 1e-12);
}

TEST(AggregateTest, GapsAreOmitted) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 2, 0.5}, {"f", "r2", 8, 10, 0.5}});
  auto series = ExpectedCountSeries(r);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].t, Interval(0, 2));
  EXPECT_EQ(series[1].t, Interval(8, 10));
}

TEST(AggregateTest, EqualExpectationsMergeAcrossBoundaries) {
  // Two abutting tuples with the same probability: one step.
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 5, 0.5}, {"f", "r2", 5, 10, 0.5}});
  auto series = ExpectedCountSeries(r);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].t, Interval(0, 10));
  EXPECT_NEAR(series[0].expected_count, 0.5, 1e-12);
}

TEST(AggregateTest, MatchesBruteForceOnRandomData) {
  auto ctx = std::make_shared<TpContext>();
  Rng rng(2718);
  SyntheticSpec spec;
  spec.num_tuples = 300;
  spec.num_facts = 6;
  spec.max_interval_length = 9;
  spec.max_time_distance = 2;
  TpRelation rel = GenerateSynthetic(ctx, spec, "r", &rng);
  auto series = ExpectedCountSeries(rel);
  // Series steps are disjoint, sorted, non-zero, and agree with the
  // per-time-point brute force at sampled points.
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_LE(series[i - 1].t.end, series[i].t.start);
  }
  for (const ExpectedCountStep& step : series) {
    EXPECT_GT(step.expected_count, 0.0);
    EXPECT_NEAR(step.expected_count, ExpectedAt(rel, step.t.start), 1e-9);
    EXPECT_NEAR(step.expected_count, ExpectedAt(rel, step.t.end - 1), 1e-9);
  }
  // Points in gaps have expectation ~0.
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i - 1].t.end < series[i].t.start) {
      EXPECT_NEAR(ExpectedAt(rel, series[i - 1].t.end), 0.0, 1e-9);
    }
  }
}

TEST(AggregateTest, SupermarketSeries) {
  SupermarketDb db;
  auto series = ExpectedCountSeries(db.c);
  // c: milk .6 [1,4), milk .7 [6,8), chips .7 [4,5), chips .8 [7,9).
  ASSERT_EQ(series.size(), 5u);
  EXPECT_EQ(series[0].t, Interval(1, 4));
  EXPECT_NEAR(series[0].expected_count, 0.6, 1e-12);
  EXPECT_EQ(series[1].t, Interval(4, 5));
  EXPECT_NEAR(series[1].expected_count, 0.7, 1e-12);
  EXPECT_EQ(series[3].t, Interval(7, 8));
  EXPECT_NEAR(series[3].expected_count, 1.5, 1e-12) << "milk c2 + chips c4";
}

TEST(AggregateTest, ExpectedDurationPerFact) {
  SupermarketDb db;
  auto durations = ExpectedDurationPerFact(db.a);
  // a: milk .3 [2,10) -> 2.4; chips .8 [4,7) -> 2.4; dates .6 [1,3) -> 1.2.
  ASSERT_EQ(durations.size(), 3u);
  EXPECT_NEAR(durations[0].second, 0.3 * 8, 1e-12);
  EXPECT_NEAR(durations[1].second, 0.8 * 3, 1e-12);
  EXPECT_NEAR(durations[2].second, 0.6 * 2, 1e-12);
}

TEST(AggregateTest, EmptyRelation) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation rel(ctx, Schema::SingleString("Product"), "r");
  EXPECT_TRUE(ExpectedCountSeries(rel).empty());
  EXPECT_TRUE(ExpectedDurationPerFact(rel).empty());
}

}  // namespace
}  // namespace tpset
