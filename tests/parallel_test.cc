// ThreadPool and FactRangePartitioner units: task composition, coverage,
// fact-disjointness, balance, and the skew/degenerate cases.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

#include "common/random.h"
#include "parallel/partition.h"
#include "parallel/sequencer.h"
#include "parallel/thread_pool.h"

namespace tpset {
namespace {

// ---- ThreadPool ----

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrentlyWithCaller) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  auto f1 = pool.Submit([&]() { done.fetch_add(1); });
  auto f2 = pool.Submit([&]() { done.fetch_add(1); });
  f1.get();
  f2.get();
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The worker survives a throwing task.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&]() { ran.fetch_add(1); });
    }
  }  // join here
  EXPECT_EQ(ran.load(), 50);
}

// ---- ApplySequencer ----

TEST(ApplySequencerTest, AdmitsTicketsInOrder) {
  ApplySequencer seq;
  ThreadPool pool(4);
  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::future<void>> futures;
  // Submit out of order; the sequencer must still admit 0,1,2,3.
  for (std::size_t t : {3u, 1u, 0u, 2u}) {
    futures.push_back(pool.Submit([&, t]() {
      seq.WaitTurn(t);
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(static_cast<int>(t));
      }
      seq.Done(t);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// ---- FactRangePartitioner ----

// Builds a bare tuple vector (lineage ids are irrelevant to partitioning).
std::vector<TpTuple> Tuples(const std::vector<std::pair<FactId, TimePoint>>& fs) {
  std::vector<TpTuple> out;
  for (auto [fact, start] : fs) {
    out.push_back({fact, Interval(start, start + 1), 0});
  }
  return out;
}

// Structural invariants every partitioning must satisfy: contiguous coverage
// of both inputs, non-empty partitions, and disjoint increasing fact ranges.
void CheckInvariants(const std::vector<TpTuple>& r, const std::vector<TpTuple>& s,
                     const std::vector<FactPartition>& parts,
                     std::size_t max_partitions) {
  ASSERT_LE(parts.size(), max_partitions);
  std::size_t r_pos = 0, s_pos = 0;
  FactId prev_max = 0;
  bool have_prev = false;
  for (const FactPartition& p : parts) {
    EXPECT_EQ(p.r_begin, r_pos);
    EXPECT_EQ(p.s_begin, s_pos);
    EXPECT_GT(p.size(), 0u) << "empty partition";
    r_pos = p.r_end;
    s_pos = p.s_end;
    // All facts in this partition are above every fact of the previous one.
    FactId lo = kInvalidFact, hi = 0;
    for (std::size_t i = p.r_begin; i < p.r_end; ++i) {
      lo = std::min(lo, r[i].fact);
      hi = std::max(hi, r[i].fact);
    }
    for (std::size_t i = p.s_begin; i < p.s_end; ++i) {
      lo = std::min(lo, s[i].fact);
      hi = std::max(hi, s[i].fact);
    }
    if (have_prev) {
      EXPECT_GT(lo, prev_max) << "fact ranges must be disjoint and increasing";
    }
    prev_max = hi;
    have_prev = true;
  }
  EXPECT_EQ(r_pos, r.size());
  EXPECT_EQ(s_pos, s.size());
}

TEST(PartitionTest, EmptyInputsYieldNoPartitions) {
  std::vector<TpTuple> empty;
  EXPECT_TRUE(PartitionByFactRange(empty, empty, 4).empty());
}

TEST(PartitionTest, OneSideEmptyStillPartitions) {
  auto r = Tuples({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  std::vector<TpTuple> s;
  auto parts = PartitionByFactRange(r, s, 2);
  CheckInvariants(r, s, parts, 2);
  EXPECT_EQ(parts.size(), 2u);
}

TEST(PartitionTest, SingleFactIsNeverSplit) {
  auto r = Tuples({{7, 0}, {7, 2}, {7, 4}, {7, 6}});
  auto s = Tuples({{7, 1}, {7, 3}});
  auto parts = PartitionByFactRange(r, s, 8);
  CheckInvariants(r, s, parts, 8);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 6u);
}

TEST(PartitionTest, MorePartitionsThanFactsCollapses) {
  auto r = Tuples({{0, 0}, {1, 0}});
  auto s = Tuples({{1, 2}, {2, 0}});
  auto parts = PartitionByFactRange(r, s, 16);
  CheckInvariants(r, s, parts, 16);
  EXPECT_LE(parts.size(), 3u);  // at most one per fact
  EXPECT_GE(parts.size(), 2u);
}

TEST(PartitionTest, HeavyFactLandsAloneAndRestIsBalanced) {
  // 90 tuples of fact 5, ten other singleton facts.
  std::vector<std::pair<FactId, TimePoint>> spec;
  for (int i = 0; i < 90; ++i) spec.push_back({5, 2 * i});
  std::vector<TpTuple> s = Tuples({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0},
                                   {6, 0}, {7, 0}, {8, 0}, {9, 0}, {10, 0}});
  auto r = Tuples(spec);
  auto parts = PartitionByFactRange(r, s, 4);
  CheckInvariants(r, s, parts, 4);
  // Some partition must hold exactly the heavy fact's 90 r-tuples.
  bool heavy_isolated = false;
  for (const FactPartition& p : parts) {
    if (p.r_end - p.r_begin == 90) heavy_isolated = true;
  }
  EXPECT_TRUE(heavy_isolated);
}

TEST(PartitionTest, UniformFactsBalanceWithinFactGranularity) {
  std::vector<std::pair<FactId, TimePoint>> rs, ss;
  for (FactId f = 0; f < 64; ++f) {
    for (int j = 0; j < 4; ++j) {
      rs.push_back({f, 3 * j});
      ss.push_back({f, 3 * j + 1});
    }
  }
  auto r = Tuples(rs);
  auto s = Tuples(ss);
  const std::size_t k = 8;
  auto parts = PartitionByFactRange(r, s, k);
  CheckInvariants(r, s, parts, k);
  ASSERT_EQ(parts.size(), k);
  const std::size_t ideal = (r.size() + s.size()) / k;
  for (const FactPartition& p : parts) {
    EXPECT_GE(p.size(), ideal / 2);
    EXPECT_LE(p.size(), ideal * 2);
  }
}

TEST(PartitionTest, RandomizedInvariantSweep) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::pair<FactId, TimePoint>> rs, ss;
    const std::size_t num_facts = 1 + rng.Below(12);
    const std::size_t nr = rng.Below(60);
    const std::size_t ns = rng.Below(60);
    for (std::size_t i = 0; i < nr; ++i) {
      rs.push_back({static_cast<FactId>(rng.Below(num_facts)), 0});
    }
    for (std::size_t i = 0; i < ns; ++i) {
      ss.push_back({static_cast<FactId>(rng.Below(num_facts)), 0});
    }
    std::sort(rs.begin(), rs.end());
    std::sort(ss.begin(), ss.end());
    // Spread starts so tuples of one fact are distinct.
    for (std::size_t i = 0; i < rs.size(); ++i) rs[i].second = 2 * i;
    for (std::size_t i = 0; i < ss.size(); ++i) ss[i].second = 2 * i;
    auto r = Tuples(rs);
    auto s = Tuples(ss);
    const std::size_t k = 1 + rng.Below(10);
    CheckInvariants(r, s, PartitionByFactRange(r, s, k), k);
  }
}

}  // namespace
}  // namespace tpset
