#include "relation/dedup.h"

#include <algorithm>

namespace tpset {

void MergeDuplicatesByOr(std::vector<TpTuple>* tuples, LineageManager* mgr) {
  std::sort(tuples->begin(), tuples->end(), FactTimeOrder());
  std::vector<TpTuple> out;
  out.reserve(tuples->size());
  std::vector<TimePoint> bounds;
  std::vector<std::size_t> active;

  std::size_t i = 0;
  while (i < tuples->size()) {
    // One fact group [i, j).
    std::size_t j = i;
    while (j < tuples->size() && (*tuples)[j].fact == (*tuples)[i].fact) ++j;

    // Fast path: already disjoint (the common case).
    bool disjoint = true;
    for (std::size_t k = i + 1; k < j; ++k) {
      if ((*tuples)[k - 1].t.Overlaps((*tuples)[k].t)) {
        disjoint = false;
        break;
      }
    }
    if (disjoint) {
      for (std::size_t k = i; k < j; ++k) out.push_back((*tuples)[k]);
      i = j;
      continue;
    }

    bounds.clear();
    for (std::size_t k = i; k < j; ++k) {
      bounds.push_back((*tuples)[k].t.start);
      bounds.push_back((*tuples)[k].t.end);
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

    active.clear();
    std::size_t next = i;
    Interval pending;
    LineageId pending_lin = kNullLineage;
    bool have_pending = false;
    for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
      Interval seg(bounds[b], bounds[b + 1]);
      while (next < j && (*tuples)[next].t.start == seg.start) {
        active.push_back(next++);
      }
      std::erase_if(active, [&](std::size_t k) {
        return (*tuples)[k].t.end <= seg.start;
      });
      LineageId acc = kNullLineage;
      for (std::size_t k : active) acc = mgr->ConcatOr(acc, (*tuples)[k].lineage);
      if (acc == kNullLineage) {
        if (have_pending) {
          out.push_back({(*tuples)[i].fact, pending, pending_lin});
          have_pending = false;
        }
        continue;
      }
      if (have_pending && pending.end == seg.start && pending_lin == acc) {
        pending.end = seg.end;
      } else {
        if (have_pending) out.push_back({(*tuples)[i].fact, pending, pending_lin});
        pending = seg;
        pending_lin = acc;
        have_pending = true;
      }
    }
    if (have_pending) out.push_back({(*tuples)[i].fact, pending, pending_lin});
    i = j;
  }
  tuples->swap(out);
}

}  // namespace tpset
