#include "lawa/overlap_factor.h"

#include <vector>

#include "lawa/advancer.h"
#include "lawa/set_ops.h"

namespace tpset {

namespace {

struct OverlapCounts {
  std::size_t windows = 0;
  std::size_t overlap_windows = 0;
  double duration = 0.0;
  double overlap_duration = 0.0;
};

OverlapCounts SweepOverlap(const TpRelation& r, const TpRelation& s) {
  std::vector<TpTuple> rs = r.tuples();
  std::vector<TpTuple> ss = s.tuples();
  SortTuples(&rs, SortMode::kComparison);
  SortTuples(&ss, SortMode::kComparison);

  OverlapCounts c;
  LineageAwareWindowAdvancer adv(rs, ss);
  LineageAwareWindow w;
  while (adv.Next(&w)) {
    ++c.windows;
    c.duration += static_cast<double>(w.t.Duration());
    if (w.lr != kNullLineage && w.ls != kNullLineage) {
      ++c.overlap_windows;
      c.overlap_duration += static_cast<double>(w.t.Duration());
    }
  }
  return c;
}

}  // namespace

double OverlappingFactor(const TpRelation& r, const TpRelation& s) {
  OverlapCounts c = SweepOverlap(r, s);
  if (c.windows == 0) return 0.0;
  return static_cast<double>(c.overlap_windows) / static_cast<double>(c.windows);
}

double TimeWeightedOverlappingFactor(const TpRelation& r, const TpRelation& s) {
  OverlapCounts c = SweepOverlap(r, s);
  if (c.duration == 0.0) return 0.0;
  return c.overlap_duration / c.duration;
}

}  // namespace tpset
