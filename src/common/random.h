// Small deterministic PRNG used by generators, Monte-Carlo evaluation and
// property tests. splitmix64 core: fast, well distributed, trivially seedable.
#ifndef TPSET_COMMON_RANDOM_H_
#define TPSET_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace tpset {

/// Deterministic 64-bit PRNG (splitmix64). Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Uniform(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal draw (Box-Muller).
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = NextDouble();
    double u2 = NextDouble();
    // Guard against log(0).
    if (u1 <= 1e-300) u1 = 1e-300;
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(6.283185307179586 * u2);
    have_spare_ = true;
    return mag * std::cos(6.283185307179586 * u2);
  }

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tpset

#endif  // TPSET_COMMON_RANDOM_H_
