// Table II: which approach supports which TP set operation.
//
// Regenerated from the algorithms' capability declarations, which the test
// suite cross-checks against actual behaviour (unsupported ops return
// NotSupported, supported ops agree with the reference evaluator).
#include <cstdio>

#include "baselines/algorithm.h"

using namespace tpset;

int main() {
  std::printf("# Table II: approach overview\n");
  std::printf("%-10s %-8s %-8s %-8s\n", "Approach", "r∪Tp s", "r−Tp s",
              "r∩Tp s");
  for (const SetOpAlgorithm* algo : AllAlgorithms()) {
    std::printf("%-10s %-8s %-8s %-8s\n", algo->name().c_str(),
                algo->Supports(SetOpKind::kUnion) ? "yes" : "no",
                algo->Supports(SetOpKind::kExcept) ? "yes" : "no",
                algo->Supports(SetOpKind::kIntersect) ? "yes" : "no");
  }
  std::printf("\nPaper Table II:   union  diff  intersect\n");
  std::printf("  LAWA            yes    yes   yes\n");
  std::printf("  NORM            yes    yes   yes\n");
  std::printf("  TPDB            yes    no    yes\n");
  std::printf("  OIP             no     no    yes\n");
  std::printf("  TI              no     no    yes\n");
  return 0;
}
