// Micro-benchmarks (google-benchmark): LAWA sweep throughput, sort variants,
// lineage construction/valuation, window production rate, generators.
#include <benchmark/benchmark.h>

#include <memory>

#include "datagen/synthetic.h"
#include "lawa/advancer.h"
#include "lawa/set_ops.h"
#include "lineage/eval.h"

namespace tpset {
namespace {

std::pair<TpRelation, TpRelation> MakePair(std::shared_ptr<TpContext> ctx,
                                           std::size_t n, std::size_t facts) {
  Rng rng(42);
  SyntheticPairSpec spec = TableIIIPreset(0.6);
  spec.num_tuples = n;
  spec.num_facts = facts;
  return GenerateSyntheticPair(std::move(ctx), spec, &rng);
}

void BM_LawaIntersect(benchmark::State& state) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  auto [r, s] = MakePair(ctx, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    TpRelation out = LawaIntersect(r, s);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_LawaIntersect)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_LawaUnion(benchmark::State& state) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  auto [r, s] = MakePair(ctx, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    TpRelation out = LawaUnion(r, s);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_LawaUnion)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_LawaExcept(benchmark::State& state) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  auto [r, s] = MakePair(ctx, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    TpRelation out = LawaExcept(r, s);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_LawaExcept)->Arg(10000)->Arg(100000)->Arg(1000000);

// Window production alone (no output materialization): the O(|r|+|s|) core.
void BM_WindowAdvancer(benchmark::State& state) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  auto [r, s] = MakePair(ctx, static_cast<std::size_t>(state.range(0)), 1);
  std::vector<TpTuple> rs = r.tuples(), ss = s.tuples();
  SortTuples(&rs, SortMode::kComparison);
  SortTuples(&ss, SortMode::kComparison);
  for (auto _ : state) {
    LineageAwareWindowAdvancer adv(rs, ss);
    LineageAwareWindow w;
    std::size_t count = 0;
    while (adv.Next(&w)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_WindowAdvancer)->Arg(100000)->Arg(1000000);

void BM_SortComparison(benchmark::State& state) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  auto [r, s] = MakePair(ctx, static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<TpTuple> copy = r.tuples();
    Rng rng(1);
    for (std::size_t i = copy.size(); i > 1; --i) {
      std::swap(copy[i - 1], copy[rng.Below(i)]);
    }
    state.ResumeTiming();
    SortTuples(&copy, SortMode::kComparison);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SortComparison)->Arg(100000)->Arg(1000000);

void BM_SortCounting(benchmark::State& state) {
  auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
  auto [r, s] = MakePair(ctx, static_cast<std::size_t>(state.range(0)), 16);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<TpTuple> copy = r.tuples();
    Rng rng(1);
    for (std::size_t i = copy.size(); i > 1; --i) {
      std::swap(copy[i - 1], copy[rng.Below(i)]);
    }
    state.ResumeTiming();
    SortTuples(&copy, SortMode::kCounting);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_SortCounting)->Arg(100000)->Arg(1000000);

void BM_LineageConstruction(benchmark::State& state) {
  const bool consing = state.range(0) != 0;
  for (auto _ : state) {
    LineageManager mgr(consing);
    VarTable vars;
    LineageId acc = kNullLineage;
    for (int i = 0; i < 10000; ++i) {
      VarId v = vars.Add(0.5);
      acc = mgr.ConcatOr(acc, mgr.MakeVar(v));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(consing ? "hash-consing" : "append-only");
}
BENCHMARK(BM_LineageConstruction)->Arg(0)->Arg(1);

void BM_ProbabilityReadOnce(benchmark::State& state) {
  LineageManager mgr;
  VarTable vars;
  LineageId acc = kNullLineage;
  for (int i = 0; i < 64; ++i) {
    acc = mgr.ConcatOr(acc, mgr.MakeVar(vars.Add(0.3)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbabilityReadOnce(mgr, acc, vars));
  }
}
BENCHMARK(BM_ProbabilityReadOnce);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    auto ctx = std::make_shared<TpContext>(/*hash_consing=*/false);
    Rng rng(7);
    SyntheticSpec spec;
    spec.num_tuples = static_cast<std::size_t>(state.range(0));
    TpRelation rel = GenerateSynthetic(ctx, spec, "r", &rng);
    benchmark::DoNotOptimize(rel);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(100000);

}  // namespace
}  // namespace tpset

BENCHMARK_MAIN();
