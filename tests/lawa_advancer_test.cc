// LAWA window advancer: the paper's Fig. 4 trace, the window sequences of
// Fig. 6, Proposition 1's bound, and the pseudocode-defect regressions.
#include <gtest/gtest.h>

#include <vector>

#include "lawa/advancer.h"
#include "lawa/set_ops.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::MakeRelation;
using testing::SupermarketDb;

struct WindowSnapshot {
  FactId fact;
  Interval t;
  std::string lr;
  std::string ls;
};

// Runs the advancer to exhaustion and renders each window's lineages.
std::vector<WindowSnapshot> AllWindows(const TpRelation& r, const TpRelation& s) {
  std::vector<TpTuple> rs = r.tuples();
  std::vector<TpTuple> ss = s.tuples();
  SortTuples(&rs, SortMode::kComparison);
  SortTuples(&ss, SortMode::kComparison);
  LineageAwareWindowAdvancer adv(rs, ss);
  const LineageManager& mgr = r.context()->lineage();
  const VarTable& vars = r.context()->vars();
  std::vector<WindowSnapshot> out;
  LineageAwareWindow w;
  while (adv.Next(&w)) {
    out.push_back({w.fact, w.t, mgr.ToString(w.lr, vars), mgr.ToString(w.ls, vars)});
  }
  return out;
}

// ---- Fig. 4: LAWA calls for left input c, right input a ('milk' group) ----

TEST(AdvancerTest, PaperFig4MilkWindows) {
  SupermarketDb db;
  // Restrict to the 'milk' tuples as in the figure.
  TpRelation c_milk(db.ctx, Schema::SingleString("Product"), "c_milk");
  TpRelation a_milk(db.ctx, Schema::SingleString("Product"), "a_milk");
  for (std::size_t i = 0; i < db.c.size(); ++i) {
    if (ToString(db.c.FactOf(i)) == "'milk'") {
      c_milk.AddDerived(db.c[i].fact, db.c[i].t, db.c[i].lineage);
    }
  }
  for (std::size_t i = 0; i < db.a.size(); ++i) {
    if (ToString(db.a.FactOf(i)) == "'milk'") {
      a_milk.AddDerived(db.a[i].fact, db.a[i].t, db.a[i].lineage);
    }
  }
  std::vector<WindowSnapshot> windows = AllWindows(c_milk, a_milk);
  // The figure shows the first call yielding ('milk', [1,2), c1, null), the
  // second ('milk', [2,4), c1, a1), and the last ('milk', [8,10), null, a1).
  ASSERT_EQ(windows.size(), 5u);
  EXPECT_EQ(windows[0].t, Interval(1, 2));
  EXPECT_EQ(windows[0].lr, "c1");
  EXPECT_EQ(windows[0].ls, "null");
  EXPECT_EQ(windows[1].t, Interval(2, 4));
  EXPECT_EQ(windows[1].lr, "c1");
  EXPECT_EQ(windows[1].ls, "a1");
  EXPECT_EQ(windows[2].t, Interval(4, 6));
  EXPECT_EQ(windows[2].lr, "null");
  EXPECT_EQ(windows[2].ls, "a1");
  EXPECT_EQ(windows[3].t, Interval(6, 8));
  EXPECT_EQ(windows[3].lr, "c2");
  EXPECT_EQ(windows[3].ls, "a1");
  EXPECT_EQ(windows[4].t, Interval(8, 10));
  EXPECT_EQ(windows[4].lr, "null");
  EXPECT_EQ(windows[4].ls, "a1");
}

// ---- Fig. 6's ✓/✗ annotations are the −Tp filter over those windows ----

TEST(AdvancerTest, Fig6FilterDecisions) {
  SupermarketDb db;
  std::vector<WindowSnapshot> windows = AllWindows(db.c, db.a);
  int accepted = 0, rejected = 0;
  for (const WindowSnapshot& w : windows) {
    (w.lr != "null" ? accepted : rejected)++;
  }
  // Full c vs a sweep: milk 5 windows (3 accepted), chips 3 (2 accepted),
  // dates 1 (0 accepted).
  EXPECT_EQ(windows.size(), 9u);
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(rejected, 4);
}

TEST(AdvancerTest, WindowsAreAdjacentWithinRuns) {
  SupermarketDb db;
  std::vector<WindowSnapshot> windows = AllWindows(db.c, db.a);
  for (std::size_t i = 1; i < windows.size(); ++i) {
    // Within one fact's run, windows never overlap and never go backwards.
    if (windows[i - 1].fact == windows[i].fact) {
      EXPECT_LE(windows[i - 1].t.end, windows[i].t.start);
    }
  }
}

TEST(AdvancerTest, Proposition1WindowBound) {
  SupermarketDb db;
  std::vector<TpTuple> rs = db.c.tuples();
  std::vector<TpTuple> ss = db.a.tuples();
  SortTuples(&rs, SortMode::kComparison);
  SortTuples(&ss, SortMode::kComparison);
  LineageAwareWindowAdvancer adv(rs, ss);
  LineageAwareWindow w;
  while (adv.Next(&w)) {
  }
  // nr, ns = numbers of start and end points; fd = distinct facts.
  std::size_t nr = 2 * rs.size();
  std::size_t ns = 2 * ss.size();
  std::size_t fd = 3;  // milk, chips, dates
  EXPECT_LE(adv.windows_produced(), nr + ns - fd);
}

TEST(AdvancerTest, EmptyInputsProduceNoWindow) {
  auto ctx = std::make_shared<TpContext>();
  std::vector<TpTuple> empty;
  LineageAwareWindowAdvancer adv(empty, empty);
  LineageAwareWindow w;
  EXPECT_FALSE(adv.Next(&w));
  EXPECT_EQ(adv.windows_produced(), 0u);
}

TEST(AdvancerTest, SingleSidedInput) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 5, 0.5}, {"f", "r2", 8, 12, 0.5}});
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  std::vector<WindowSnapshot> windows = AllWindows(r, s);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].t, Interval(0, 5));
  EXPECT_EQ(windows[1].t, Interval(8, 12)) << "gap is skipped, not windowed";
  EXPECT_EQ(windows[0].ls, "null");
}

TEST(AdvancerTest, FactGroupSwitchWithInterleavedStarts) {
  // Regression for pseudocode defect 2: when neither pending tuple matches
  // currFact, the (fact, start) order decides — a later fact with an
  // earlier start must not hijack the sweep.
  auto ctx = std::make_shared<TpContext>();
  // Interning order fixes FactIds: f < g.
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 10, 20, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"g", "s1", 0, 30, 0.5}});
  std::vector<WindowSnapshot> windows = AllWindows(r, s);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].t, Interval(10, 20));
  EXPECT_EQ(windows[0].lr, "r1");
  EXPECT_EQ(windows[1].t, Interval(0, 30));
  EXPECT_EQ(windows[1].ls, "s1");
}

TEST(AdvancerTest, PendingTupleOfOtherFactDoesNotSplitWindow) {
  // Regression for the minTs repair: g's tuple starting at t=3 must not
  // split f's window [0,10).
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r",
                              {{"f", "r1", 0, 10, 0.5}, {"g", "r2", 3, 5, 0.5}});
  TpRelation s(ctx, Schema::SingleString("Product"), "s");
  std::vector<WindowSnapshot> windows = AllWindows(r, s);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].t, Interval(0, 10));
  EXPECT_EQ(windows[1].t, Interval(3, 5));
}

TEST(AdvancerTest, StatusAccessorsTrackProgress) {
  auto ctx = std::make_shared<TpContext>();
  TpRelation r = MakeRelation(ctx, "r", {{"f", "r1", 0, 10, 0.5}});
  TpRelation s = MakeRelation(ctx, "s", {{"f", "s1", 5, 15, 0.5}});
  std::vector<TpTuple> rs = r.tuples(), ss = s.tuples();
  LineageAwareWindowAdvancer adv(rs, ss);
  EXPECT_TRUE(adv.HasPendingR());
  EXPECT_TRUE(adv.HasPendingS());
  EXPECT_FALSE(adv.HasValidR());
  LineageAwareWindow w;
  ASSERT_TRUE(adv.Next(&w));  // [0,5): r1 valid, s still pending
  EXPECT_EQ(w.t, Interval(0, 5));
  EXPECT_FALSE(adv.HasPendingR());
  EXPECT_TRUE(adv.HasValidR());
  EXPECT_TRUE(adv.HasPendingS());
  ASSERT_TRUE(adv.Next(&w));  // [5,10): both valid
  EXPECT_EQ(w.t, Interval(5, 10));
  EXPECT_FALSE(adv.HasValidR()) << "r1 expired at 10";
  EXPECT_TRUE(adv.HasValidS());
  ASSERT_TRUE(adv.Next(&w));  // [10,15): s1 alone
  EXPECT_EQ(w.t, Interval(10, 15));
  EXPECT_FALSE(adv.Next(&w));
  EXPECT_EQ(adv.windows_produced(), 3u);
}

}  // namespace
}  // namespace tpset
