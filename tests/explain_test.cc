// EXPLAIN output for TP set queries.
#include <gtest/gtest.h>

#include "incremental/continuous_query.h"
#include "query/explain.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace tpset {
namespace {

using testing::SupermarketDb;

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : exec_(db_.ctx) {
    EXPECT_TRUE(exec_.Register(db_.a).ok());
    EXPECT_TRUE(exec_.Register(db_.b).ok());
    EXPECT_TRUE(exec_.Register(db_.c).ok());
  }
  SupermarketDb db_;
  QueryExecutor exec_;
};

TEST_F(ExplainTest, AnnotatesCardinalitiesAndWindows) {
  Result<std::string> plan = ExplainQuery(exec_, "c - (a | b)");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& text = *plan;
  EXPECT_NE(text.find("query: c - (a | b)"), std::string::npos) << text;
  EXPECT_NE(text.find("relation c  [4 tuples]"), std::string::npos) << text;
  EXPECT_NE(text.find("relation a  [3 tuples]"), std::string::npos) << text;
  EXPECT_NE(text.find("relation b  [2 tuples]"), std::string::npos) << text;
  // The final answer has 5 tuples (Fig. 1c).
  EXPECT_NE(text.find("except  [out=5"), std::string::npos) << text;
  EXPECT_NE(text.find("union  [out="), std::string::npos) << text;
  EXPECT_NE(text.find("non-repeating: yes"), std::string::npos) << text;
  EXPECT_NE(text.find("read-once"), std::string::npos) << text;
}

TEST_F(ExplainTest, FlagsRepeatingQueries) {
  Result<std::string> plan = ExplainQuery(exec_, "(a | b) - (a & c)");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("non-repeating: no"), std::string::npos);
  EXPECT_NE(plan->find("Shannon"), std::string::npos);
}

TEST_F(ExplainTest, WindowCountsRespectBound) {
  Result<std::string> plan = ExplainQuery(exec_, "a & c");
  ASSERT_TRUE(plan.ok());
  // windows=X/Y(bound) with X <= Y; extract and compare.
  std::size_t pos = plan->find("windows=");
  ASSERT_NE(pos, std::string::npos);
  std::size_t slash = plan->find('/', pos);
  ASSERT_NE(slash, std::string::npos);
  int windows = std::stoi(plan->substr(pos + 8, slash - pos - 8));
  int bound = std::stoi(plan->substr(slash + 1));
  EXPECT_LE(windows, bound);
  EXPECT_GT(windows, 0);
}

TEST_F(ExplainTest, ErrorsPropagate) {
  EXPECT_FALSE(ExplainQuery(exec_, "a & nope").ok());
  EXPECT_FALSE(ExplainQuery(exec_, "a &").ok());
}

TEST_F(ExplainTest, ParallelOptionsAnnotatePhaseTimings) {
  ExecOptions options;
  options.num_threads = 4;
  Result<std::string> plan = ExplainQuery(exec_, "c - (a | b)", options);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& text = *plan;
  EXPECT_NE(text.find("parallel: threads=4 apply=bit-identical"),
            std::string::npos) << text;
  EXPECT_NE(text.find("sort="), std::string::npos) << text;
  EXPECT_NE(text.find("split="), std::string::npos) << text;
  std::size_t advance_pos = text.find("advance=");
  ASSERT_NE(advance_pos, std::string::npos) << text;
  // The per-node apply timing, not the "apply=bit-identical" header.
  EXPECT_NE(text.find("apply=", advance_pos), std::string::npos) << text;
  EXPECT_NE(text.find("except  [out=5"), std::string::npos) << text;

  options.apply_mode = ApplyMode::kStaged;
  Result<std::string> staged = ExplainQuery(exec_, "c - (a | b)", options);
  ASSERT_TRUE(staged.ok());
  EXPECT_NE(staged->find("parallel: threads=4 apply=staged"),
            std::string::npos) << *staged;
  EXPECT_NE(staged->find("except  [out=5"), std::string::npos) << *staged;

  // num_threads <= 1 falls back to the plain sequential explain.
  options.num_threads = 1;
  Result<std::string> seq = ExplainQuery(exec_, "c - (a | b)", options);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->find("parallel:"), std::string::npos);
}

// Sequential explains carry the same sections as parallel ones (only the
// "parallel:" config header differs): per-node phase walls and scheduler
// counters come from the shared span recorder, not a parallel-only path.
TEST_F(ExplainTest, SequentialExplainCarriesPhaseSections) {
  Result<std::string> plan = ExplainQuery(exec_, "c - (a | b)");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& text = *plan;
  EXPECT_EQ(text.find("parallel:"), std::string::npos) << text;
  for (const char* section : {"sort=", "split=", "advance=", "apply=",
                              "morsels=", "windows=", "out="}) {
    EXPECT_NE(text.find(section), std::string::npos)
        << "missing " << section << " in:\n" << text;
  }
}

// The rendered text is a pure function of the recorded QueryProfile: the
// plan section re-rendered from the caller-owned span tree is byte-for-byte
// the one in the returned explain, sequentially and in parallel.
TEST_F(ExplainTest, RendersFromQueryProfile) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExecOptions options;
    options.num_threads = threads;
    obs::QueryProfile profile("explain");
    Result<QueryPtr> parsed = ParseQuery("c - (a | b)");
    ASSERT_TRUE(parsed.ok());
    Result<std::string> plan = ExplainQuery(exec_, **parsed, options, &profile);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const std::string replay = RenderExplainPlan(profile.root());
    EXPECT_FALSE(replay.empty());
    EXPECT_NE(plan->find(replay), std::string::npos)
        << "plan text:\n" << *plan << "\nreplay from profile:\n" << replay;
    // The profile carries the engine counters the text was rendered from.
    const obs::Span* node = profile.root().FindChild("except");
    ASSERT_NE(node, nullptr);
    EXPECT_TRUE(node->has_stats);
    EXPECT_EQ(node->Attr("out"), "5");
  }
}

// ExplainContinuous appends the last epoch's propagation span tree once an
// epoch has been applied.
TEST_F(ExplainTest, ContinuousExplainCarriesLastEpochProfile) {
  ContinuousOptions copt;
  Result<ContinuousQuery*> cq = exec_.RegisterContinuous("w", "a - b", copt);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();

  Result<std::string> before = ExplainContinuous(exec_, "w");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->find("last epoch:"), std::string::npos) << *before;

  DeltaBatch batch;
  batch.Add(Fact{Value(std::string("milk"))}, Interval(11, 15), 0.5);
  Result<EpochId> epoch = exec_.Append("a", batch);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();

  Result<std::string> after = ExplainContinuous(exec_, "w");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->find("last epoch:"), std::string::npos) << *after;
  // The appended section is the live profile's render, verbatim.
  EXPECT_NE(after->find((*cq)->last_profile().Render()), std::string::npos)
      << *after;
}

}  // namespace
}  // namespace tpset
