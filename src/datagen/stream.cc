#include "datagen/stream.h"

#include <cassert>

namespace tpset {

namespace {

double DrawProbability(Rng* rng, const ChainWorkloadSpec& spec) {
  return spec.min_p + (spec.max_p - spec.min_p) * rng->NextDouble();
}

}  // namespace

void SeedFactChains(TpRelation* rel, std::size_t num_tuples,
                    std::vector<TimePoint>* cursors, Rng* rng,
                    const ChainWorkloadSpec& spec) {
  assert(rel->context() != nullptr && !cursors->empty());
  FactDictionary& facts = rel->context()->facts();
  const std::size_t num_facts = cursors->size();
  for (std::size_t k = 0; k < num_tuples; ++k) {
    const std::size_t fact = k % num_facts;
    TimePoint& cur = (*cursors)[fact];
    cur += rng->Uniform(0, spec.max_gap);
    const TimePoint len = rng->Uniform(1, spec.max_len);
    FactId f = facts.Intern({Value(static_cast<std::int64_t>(fact))});
    rel->AddBaseFast(f, Interval(cur, cur + len), DrawProbability(rng, spec));
    cur += len;
  }
  rel->SortFactTime();
}

DeltaBatch NextChainBatch(std::vector<TimePoint>* cursors, std::size_t rows,
                          Rng* rng, const ChainWorkloadSpec& spec) {
  DeltaBatch batch;
  for (std::size_t k = 0; k < rows; ++k) {
    const std::size_t fact = rng->Below(cursors->size());
    TimePoint& cur = (*cursors)[fact];
    cur += rng->Uniform(0, spec.max_gap);
    const TimePoint len = rng->Uniform(1, spec.max_len);
    batch.Add({Value(static_cast<std::int64_t>(fact))},
              Interval(cur, cur + len), DrawProbability(rng, spec));
    cur += len;
  }
  return batch;
}

}  // namespace tpset
