// Lineage algebra: hash-consing, Table I concatenation functions, printing,
// canonical keys, variable analysis.
#include <gtest/gtest.h>

#include "lineage/lineage.h"

namespace tpset {
namespace {

class LineageTest : public ::testing::Test {
 protected:
  LineageManager mgr_;
  VarTable vars_;
  VarId a1_ = *vars_.AddNamed("a1", 0.3);
  VarId b1_ = *vars_.AddNamed("b1", 0.6);
  VarId c1_ = *vars_.AddNamed("c1", 0.6);
};

TEST_F(LineageTest, VarTableBasics) {
  EXPECT_EQ(vars_.size(), 3u);
  EXPECT_DOUBLE_EQ(vars_.probability(a1_), 0.3);
  EXPECT_EQ(vars_.name(a1_), "a1");
  EXPECT_EQ(*vars_.Find("b1"), b1_);
  EXPECT_FALSE(vars_.Find("nope").ok());
  EXPECT_FALSE(vars_.AddNamed("a1", 0.5).ok()) << "duplicate names rejected";
  EXPECT_FALSE(vars_.AddNamed("bad", 0.0).ok()) << "p must be in (0,1]";
  EXPECT_FALSE(vars_.AddNamed("bad2", 1.5).ok());
}

TEST_F(LineageTest, AnonymousVarsGetSynthesizedNames) {
  VarId v = vars_.Add(0.5);
  EXPECT_EQ(vars_.name(v), "x" + std::to_string(v));
}

TEST_F(LineageTest, HashConsingDeduplicates) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  EXPECT_EQ(va, mgr_.MakeVar(a1_));
  EXPECT_EQ(mgr_.MakeAnd(va, vb), mgr_.MakeAnd(va, vb));
  EXPECT_EQ(mgr_.MakeOr(va, vb), mgr_.MakeOr(va, vb));
  EXPECT_EQ(mgr_.MakeNot(va), mgr_.MakeNot(va));
  // And(a,b) and And(b,a) are syntactically different formulas.
  EXPECT_NE(mgr_.MakeAnd(va, vb), mgr_.MakeAnd(vb, va));
}

TEST_F(LineageTest, NoConsingStillBuildsCorrectNodes) {
  LineageManager mgr(false);
  LineageId va = mgr.MakeVar(a1_);
  LineageId vb = mgr.MakeVar(a1_);
  EXPECT_NE(va, vb) << "without consing, each construction appends";
  EXPECT_EQ(mgr.kind(va), LineageKind::kVar);
  EXPECT_EQ(mgr.node(va).var, a1_);
}

TEST_F(LineageTest, ConstantFolding) {
  LineageId va = mgr_.MakeVar(a1_);
  EXPECT_EQ(mgr_.MakeAnd(mgr_.True(), va), va);
  EXPECT_EQ(mgr_.MakeAnd(va, mgr_.True()), va);
  EXPECT_EQ(mgr_.MakeAnd(mgr_.False(), va), mgr_.False());
  EXPECT_EQ(mgr_.MakeOr(mgr_.False(), va), va);
  EXPECT_EQ(mgr_.MakeOr(mgr_.True(), va), mgr_.True());
  EXPECT_EQ(mgr_.MakeNot(mgr_.True()), mgr_.False());
  EXPECT_EQ(mgr_.MakeNot(mgr_.False()), mgr_.True());
  EXPECT_EQ(mgr_.MakeNot(mgr_.MakeNot(va)), va) << "double negation folds";
  EXPECT_EQ(mgr_.MakeAnd(va, va), va) << "idempotence folds";
  EXPECT_EQ(mgr_.MakeOr(va, va), va);
}

TEST_F(LineageTest, TableIAnd) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vc = mgr_.MakeVar(c1_);
  LineageId r = mgr_.ConcatAnd(va, vc);
  EXPECT_EQ(mgr_.ToString(r, vars_), "a1∧c1");
}

TEST_F(LineageTest, TableIAndNot) {
  LineageId vc = mgr_.MakeVar(c1_);
  LineageId va = mgr_.MakeVar(a1_);
  // andNot(λ1, null) = λ1
  EXPECT_EQ(mgr_.ConcatAndNot(vc, kNullLineage), vc);
  // andNot(λ1, λ2) = λ1 ∧ ¬λ2
  LineageId r = mgr_.ConcatAndNot(vc, va);
  EXPECT_EQ(mgr_.ToString(r, vars_), "c1∧¬a1");
}

TEST_F(LineageTest, TableIOr) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  EXPECT_EQ(mgr_.ConcatOr(va, kNullLineage), va);
  EXPECT_EQ(mgr_.ConcatOr(kNullLineage, vb), vb);
  EXPECT_EQ(mgr_.ToString(mgr_.ConcatOr(va, vb), vars_), "a1∨b1");
}

TEST_F(LineageTest, PrintingPrecedence) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  LineageId vc = mgr_.MakeVar(c1_);
  // c1 ∧ ¬(a1 ∨ b1): the paper's Fig. 1c lineage.
  LineageId f = mgr_.MakeAnd(vc, mgr_.MakeNot(mgr_.MakeOr(va, vb)));
  EXPECT_EQ(mgr_.ToString(f, vars_), "c1∧¬(a1∨b1)");
  EXPECT_EQ(mgr_.ToString(f, vars_, /*ascii=*/true), "c1&!(a1|b1)");
  // (a1 ∨ b1) ∧ c1 needs parentheses on the left.
  LineageId g = mgr_.MakeAnd(mgr_.MakeOr(va, vb), vc);
  EXPECT_EQ(mgr_.ToString(g, vars_), "(a1∨b1)∧c1");
  // a1 ∨ (b1 ∧ c1) does not need parentheses.
  LineageId h = mgr_.MakeOr(va, mgr_.MakeAnd(vb, vc));
  EXPECT_EQ(mgr_.ToString(h, vars_), "a1∨b1∧c1");
  EXPECT_EQ(mgr_.ToString(kNullLineage, vars_), "null");
}

TEST_F(LineageTest, CollectVarsDeduplicates) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  LineageId f = mgr_.MakeAnd(mgr_.MakeOr(va, vb), mgr_.MakeNot(va));
  std::vector<VarId> vars;
  mgr_.CollectVars(f, &vars);
  EXPECT_EQ(vars, (std::vector<VarId>{a1_, b1_}));
  vars.clear();
  mgr_.CollectVars(kNullLineage, &vars);
  EXPECT_TRUE(vars.empty());
}

TEST_F(LineageTest, ReadOnceDetection) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  LineageId vc = mgr_.MakeVar(c1_);
  EXPECT_TRUE(mgr_.IsReadOnce(va));
  EXPECT_TRUE(mgr_.IsReadOnce(mgr_.MakeAnd(va, mgr_.MakeNot(vb))));
  EXPECT_TRUE(mgr_.IsReadOnce(mgr_.MakeAnd(vc, mgr_.MakeNot(mgr_.MakeOr(va, vb)))));
  // a1 occurs twice: not 1OF.
  EXPECT_FALSE(mgr_.IsReadOnce(mgr_.MakeAnd(mgr_.MakeOr(va, vb), mgr_.MakeNot(va))));
  EXPECT_TRUE(mgr_.IsReadOnce(kNullLineage));
  EXPECT_EQ(mgr_.CountVarOccurrences(
                mgr_.MakeAnd(mgr_.MakeOr(va, vb), mgr_.MakeNot(va))),
            3u);
}

TEST_F(LineageTest, CanonicalKeyIsOrderInsensitive) {
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  LineageId vc = mgr_.MakeVar(c1_);
  EXPECT_EQ(mgr_.CanonicalKey(mgr_.MakeAnd(va, vb)),
            mgr_.CanonicalKey(mgr_.MakeAnd(vb, va)));
  EXPECT_EQ(mgr_.CanonicalKey(mgr_.MakeOr(mgr_.MakeOr(va, vb), vc)),
            mgr_.CanonicalKey(mgr_.MakeOr(vc, mgr_.MakeOr(vb, va))))
      << "associativity flattened";
  EXPECT_NE(mgr_.CanonicalKey(mgr_.MakeAnd(va, vb)),
            mgr_.CanonicalKey(mgr_.MakeOr(va, vb)));
  EXPECT_NE(mgr_.CanonicalKey(va), mgr_.CanonicalKey(mgr_.MakeNot(va)));
  EXPECT_EQ(mgr_.CanonicalKey(kNullLineage), "null");
}

TEST_F(LineageTest, ArenaGrowth) {
  std::size_t before = mgr_.size();
  LineageId va = mgr_.MakeVar(a1_);
  LineageId vb = mgr_.MakeVar(b1_);
  mgr_.MakeAnd(va, vb);
  mgr_.MakeAnd(va, vb);  // deduplicated
  EXPECT_EQ(mgr_.size(), before + 3);
}

}  // namespace
}  // namespace tpset
