// TP set operations via LAWA (paper Algorithms 2-4, process of Fig. 5:
// sort → LAWA → λ-filter → λ-concatenation).
#ifndef TPSET_LAWA_SET_OPS_H_
#define TPSET_LAWA_SET_OPS_H_

#include "common/setop.h"
#include "common/status.h"
#include "relation/relation.h"

namespace tpset {

/// How the inputs are brought into (fact, start) order before the sweep.
/// §VI-B: comparison sorting gives O(n log n) overall; a counting-based
/// (radix) sort makes the whole operation linear when applicable.
enum class SortMode { kComparison = 0, kCounting = 1 };

/// Per-run statistics for complexity checks and benchmarks.
struct LawaStats {
  std::size_t windows_produced = 0;  ///< candidate windows (Prop. 1 bound)
  std::size_t output_tuples = 0;     ///< windows that passed the λ-filter
};

/// Computes r opTp s with LAWA. Inputs must satisfy ValidateSetOpInputs
/// (asserted in debug builds, unchecked in release — use the Checked variant
/// for untrusted input). The result is duplicate-free, change-preserved and
/// sorted by (fact, start).
///
/// Change preservation additionally assumes that no input relation carries
/// two *adjacent* same-fact tuples with equivalent lineage — true for every
/// base relation (distinct tuples are distinct variables) and for every
/// output of these operations, but violable by hand-built derived
/// relations; normalize those with CoalesceEquivalent (algebra/) first.
TpRelation LawaSetOp(SetOpKind op, const TpRelation& r, const TpRelation& s,
                     SortMode sort_mode = SortMode::kComparison,
                     LawaStats* stats = nullptr);

/// Validating wrapper around LawaSetOp.
Result<TpRelation> LawaSetOpChecked(SetOpKind op, const TpRelation& r,
                                    const TpRelation& s,
                                    SortMode sort_mode = SortMode::kComparison);

/// r ∪Tp s (Algorithm 3).
inline TpRelation LawaUnion(const TpRelation& r, const TpRelation& s) {
  return LawaSetOp(SetOpKind::kUnion, r, s);
}
/// r ∩Tp s (Algorithm 2).
inline TpRelation LawaIntersect(const TpRelation& r, const TpRelation& s) {
  return LawaSetOp(SetOpKind::kIntersect, r, s);
}
/// r −Tp s (Algorithm 4).
inline TpRelation LawaExcept(const TpRelation& r, const TpRelation& s) {
  return LawaSetOp(SetOpKind::kExcept, r, s);
}

/// Sorts tuples by (fact, start, end). kComparison uses std::sort;
/// kCounting uses an LSD radix sort on (fact, start) — linear in the input,
/// the §VI-B counting-based alternative. Exposed for the ablation bench.
void SortTuples(std::vector<TpTuple>* tuples, SortMode mode);

}  // namespace tpset

#endif  // TPSET_LAWA_SET_OPS_H_
