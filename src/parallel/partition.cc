#include "parallel/partition.h"

#include <algorithm>
#include <utility>

#include "common/types.h"

namespace tpset {

namespace {

// First index of tuples[0..n) whose fact is >= f. Sorted-by-(fact, start)
// input makes this a pure fact lower bound.
std::size_t FactLowerBound(const TpTuple* tuples, std::size_t n, FactId f) {
  auto it = std::lower_bound(
      tuples, tuples + n, f,
      [](const TpTuple& t, FactId fact) { return t.fact < fact; });
  return static_cast<std::size_t>(it - tuples);
}

}  // namespace

std::vector<FactPartition> PartitionByFactRange(const std::vector<TpTuple>& r,
                                                const std::vector<TpTuple>& s,
                                                std::size_t max_partitions) {
  return PartitionByFactRange(r.data(), r.size(), s.data(), s.size(),
                              max_partitions);
}

std::vector<FactPartition> PartitionByFactRange(const TpTuple* r,
                                                std::size_t nr,
                                                const TpTuple* s,
                                                std::size_t ns,
                                                std::size_t max_partitions) {
  // The two-input partitioner is the 2-run special case of the generalized
  // cut search — one copy of the subtle boundary logic to maintain.
  const std::vector<RunPartition> parts =
      PartitionRunsByFact({{r, nr}, {s, ns}}, max_partitions);
  std::vector<FactPartition> out;
  out.reserve(parts.size());
  for (const RunPartition& p : parts) {
    out.push_back({p.slices[0].first, p.slices[0].second, p.slices[1].first,
                   p.slices[1].second});
  }
  return out;
}

std::vector<RunPartition> PartitionRunsByFact(
    const std::vector<std::pair<const TpTuple*, std::size_t>>& runs,
    std::size_t max_partitions) {
  std::size_t total = 0;
  for (const auto& [data, n] : runs) {
    (void)data;
    total += n;
  }
  std::vector<RunPartition> parts;
  if (total == 0) return parts;
  if (max_partitions == 0) max_partitions = 1;

  auto count_below = [&](FactId f) {
    std::size_t count = 0;
    for (const auto& [data, n] : runs) count += FactLowerBound(data, n, f);
    return count;
  };

  std::vector<std::size_t> prev(runs.size(), 0);
  std::size_t prev_total = 0;
  for (std::size_t i = 1; i < max_partitions; ++i) {
    const std::size_t target = total * i / max_partitions;
    FactId lo = 0, hi = kInvalidFact;  // no real fact is kInvalidFact
    while (lo < hi) {
      const FactId mid = lo + (hi - lo) / 2;
      if (count_below(mid) >= target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    RunPartition part;
    part.slices.reserve(runs.size());
    std::size_t cut_total = 0;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      const std::size_t cut = FactLowerBound(runs[r].first, runs[r].second, lo);
      part.slices.emplace_back(prev[r], cut);
      cut_total += cut;
    }
    if (cut_total == prev_total) continue;  // skewed fact: no split
    part.size = cut_total - prev_total;
    for (std::size_t r = 0; r < runs.size(); ++r) prev[r] = part.slices[r].second;
    prev_total = cut_total;
    parts.push_back(std::move(part));
    if (prev_total == total) break;
  }
  if (prev_total < total) {
    RunPartition part;
    part.slices.reserve(runs.size());
    for (std::size_t r = 0; r < runs.size(); ++r) {
      part.slices.emplace_back(prev[r], runs[r].second);
    }
    part.size = total - prev_total;
    parts.push_back(std::move(part));
  }
  return parts;
}

std::vector<WeightRange> PartitionByWeight(const std::vector<std::size_t>& weights,
                                           std::size_t max_groups) {
  std::vector<WeightRange> groups;
  const std::size_t n = weights.size();
  if (n == 0) return groups;
  if (max_groups == 0) max_groups = 1;

  std::size_t total = 0;
  for (std::size_t w : weights) total += w;

  // Greedy target walk, mirroring PartitionByFactRange: the k-th cut falls
  // where the running weight first reaches k/max_groups of the total.
  std::size_t begin = 0;
  std::size_t running = 0;
  std::size_t emitted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    running += weights[i];
    const std::size_t remaining_groups = max_groups - emitted;
    if (remaining_groups <= 1) continue;
    const std::size_t target = total * (emitted + 1) / max_groups;
    if (running >= target && i + 1 < n) {
      groups.push_back({begin, i + 1});
      begin = i + 1;
      ++emitted;
    }
  }
  groups.push_back({begin, n});
  return groups;
}

}  // namespace tpset
